//! SUNDIALS ReactEval-style stiff integration (paper §2.3): a miniature
//! BDF1 (implicit Euler) integrator advancing a batch of stiff
//! reaction systems, using the batched band solver for every Newton step —
//! the role the paper's solver plays inside SUNDIALS for the Pele suite.
//!
//! ```text
//! cargo run --release --example sundials_react
//! ```

use gbatch::core::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch::gpu_sim::DeviceSpec;
use gbatch::kernels::dispatch::{dgbsv_batch, GbsvOptions};
use gbatch::workloads::sundials::{react_eval_batch, ReactEvalConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A decaying linear "chemistry" right-hand side `y' = -K y` whose `K` is
/// extracted from the generated Newton matrices (so the integrator and the
/// matrices are consistent): `M = I - gamma*J` with `J = -K` means
/// `K = (M - I) / gamma`.
struct Chemistry {
    k: BandBatch,
}

impl Chemistry {
    fn rate(&self, id: usize, y: &[f64], out: &mut [f64]) {
        // out = -K y (band matvec).
        gbatch::core::blas2::gbmv(-1.0, self.k.matrix(id), y, 0.0, out);
    }
}

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    let cfg = ReactEvalConfig {
        species: 9,
        cells_per_system: 8,
        gamma: 0.05,
        stiffness_decades: 2.0,
    };
    let n = cfg.n();
    let batch = 512;
    let steps = 20;
    let h = cfg.gamma; // BDF1 with beta = 1: gamma = h

    // Newton matrices M = I - h*J for the whole batch (regenerated once;
    // the linear chemistry keeps J constant so M can be reused — mirroring
    // SUNDIALS' Jacobian reuse policy).
    let m0 = react_eval_batch(&mut rng, batch, &cfg);

    // Extract K = (M - I) / h to define the ODE consistently.
    let k = BandBatch::from_fn(batch, n, n, cfg.bandwidth(), cfg.bandwidth(), |id, out| {
        let src = m0.matrix(id);
        for j in 0..n {
            let (s, e) = out.layout.col_rows(j);
            for i in s..e {
                let mij = src.get(i, j);
                let iij = if i == j { 1.0 } else { 0.0 };
                out.set(i, j, (mij - iij) / h);
            }
        }
    })
    .expect("dims");
    let chem = Chemistry { k };

    // Initial state: sinusoidal "temperature" per system (paper: ReactEval
    // initializes from a sinusoidal temperature profile).
    let mut y: Vec<Vec<f64>> = (0..batch)
        .map(|id| {
            let phase = 2.0 * std::f64::consts::PI * id as f64 / batch as f64;
            (0..n)
                .map(|i| 1.0 + 0.5 * (phase + i as f64 * 0.1).sin())
                .collect()
        })
        .collect();

    let dev = DeviceSpec::h100_pcie();
    let mut total_ms = 0.0;
    let mut max_newton_residual = 0.0f64;

    for _step in 0..steps {
        // Implicit Euler: solve (I - h*J) * y_new = y_old  (linear problem:
        // one Newton iteration is exact).
        let mut a = m0.clone();
        let mut b = RhsBatch::zeros(batch, n, 1).expect("dims");
        for (id, yi) in y.iter().enumerate() {
            b.block_mut(id).copy_from_slice(yi);
        }
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = dgbsv_batch(
            &dev,
            &mut a,
            &mut piv,
            &mut b,
            &mut info,
            &GbsvOptions::default(),
        )
        .expect("launch");
        assert!(info.all_ok());
        total_ms += rep.time.ms();

        // Check the Newton residual: y_new - h*f(y_new) - y_old = 0.
        for (id, yi) in y.iter().enumerate().take(batch.min(8)) {
            let y_new = b.block(id);
            let mut f = vec![0.0; n];
            chem.rate(id, y_new, &mut f);
            let r = (0..n)
                .map(|i| (y_new[i] - h * f[i] - yi[i]).abs())
                .fold(0.0f64, f64::max);
            max_newton_residual = max_newton_residual.max(r);
        }

        for (id, yi) in y.iter_mut().enumerate() {
            yi.copy_from_slice(b.block(id));
        }
    }

    // Stability check: the decaying chemistry must not blow up.
    let max_state = y.iter().flatten().fold(0.0f64, |m, &v| m.max(v.abs()));
    println!(
        "ReactEval-like run: {batch} systems, n = {n}, band = {}",
        cfg.bandwidth()
    );
    println!(
        "  {steps} implicit steps, modeled solver time {total_ms:.3} ms on {}",
        dev.name
    );
    println!("  max Newton residual {max_newton_residual:.2e}, max |y| {max_state:.3}");
    assert!(max_newton_residual < 1e-10, "implicit steps solved exactly");
    assert!(max_state < 10.0, "integration stable");
    println!("done.");
}
