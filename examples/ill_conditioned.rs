//! The conditioning toolkit on a PELE-style batch (paper §2.1: "a large
//! range of condition numbers ... known numerical estimates and bounds"):
//! condition estimation, equilibration, iterative refinement, and
//! mixed-precision solving — end to end.
//!
//! ```text
//! cargo run --release --example ill_conditioned
//! ```

use gbatch::core::gbsvx::{gbsvx_checked, is_reliable};
use gbatch::core::mixed::{msgbsv, MixedOutcome};
use gbatch::core::residual::backward_error;
use gbatch::core::BandMatrix;

/// A band matrix graded over `decades` orders of magnitude — condition
/// number roughly `10^decades`.
fn graded(n: usize, kl: usize, ku: usize, decades: f64, seed: f64) -> BandMatrix {
    let mut a = BandMatrix::zeros_factor(n, n, kl, ku).unwrap();
    let mut v = seed;
    for j in 0..n {
        let s = 10f64.powf(-decades * j as f64 / (n - 1) as f64);
        let (lo, hi) = a.layout().col_rows(j);
        for i in lo..hi {
            v = (v * 1.9 + 0.17).fract();
            a.set(i, j, (v - 0.5) * s + if i == j { 2.0 * s } else { 0.0 });
        }
    }
    a
}

fn main() {
    let n = 50;
    println!("expert solves across a conditioning sweep (n = {n}, band (2,1)):\n");
    println!(
        "{:>8} {:>12} {:>12} {:>7} {:>10} {:>14} {:>12}",
        "decades", "rcond", "comp-berr", "equil", "refine-it", "mixed-path", "berr"
    );
    for decades in [0.0, 3.0, 6.0, 9.0, 12.0] {
        let a = graded(n, 2, 1, decades, 0.37);
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let mut b = vec![0.0; n];
        gbatch::core::blas2::gbmv(1.0, a.as_ref(), &x_true, 0.0, &mut b);

        // Expert driver: equilibrate + factor + rcond + refine.
        let (res, _x, worst) = gbsvx_checked(&a, &b, 1);
        assert_eq!(res.info, 0);
        assert!(worst < 1e-11, "expert solve certified: {worst:.2e}");

        // Mixed precision: f32 factorization with f64 refinement, falling
        // back automatically where f32 cannot reach.
        let mut xm = vec![0.0; n];
        let outcome = msgbsv(a.as_ref(), &b, &mut xm);
        let berr_m = backward_error(a.as_ref(), &xm, &b);
        assert!(berr_m < 1e-11, "mixed path certified: {berr_m:.2e}");
        let path = match outcome {
            MixedOutcome::Mixed(it) => format!("f32+{it} sweeps"),
            MixedOutcome::FellBackToF64 => "f64 fallback".to_string(),
            MixedOutcome::Singular(i) => format!("singular@{i}"),
        };

        println!(
            "{:>8} {:>12.2e} {:>12.2e} {:>7} {:>10} {:>14} {:>12.2e}",
            decades,
            res.rcond,
            res.berr[0],
            if res.equilibrated { "yes" } else { "no" },
            res.refine_iters[0],
            path,
            berr_m,
        );
        let _ = is_reliable(&res);
    }
    println!("\nevery solve certified by backward error < 1e-11. done.");
}
