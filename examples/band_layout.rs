//! The paper's Figure 2, live: LAPACK band storage with fill-in rows, and
//! what partial pivoting actually writes into them.
//!
//! ```text
//! cargo run --release --example band_layout
//! ```

use gbatch::core::display::{band_view, dense_view};
use gbatch::core::gbtf2::gbtf2;
use gbatch::core::layout::BandLayout;
use gbatch::core::BandMatrix;

fn main() {
    // The exact example of the paper's Figure 2: 9 x 9, kl = 2, ku = 3.
    let l = BandLayout::factor(9, 9, 2, 3).unwrap();
    println!(
        "column-major view (9 x 9, kl = 2, ku = 3):\n{}",
        dense_view(&l)
    );
    println!(
        "band storage ({} x 9; '+' rows reserved for fill-in):\n{}",
        l.ldab,
        band_view(&l)
    );

    // Build a matrix that *forces* pivoting, factorize, and show where the
    // fill-in landed.
    let mut a = BandMatrix::zeros_factor(9, 9, 2, 3).unwrap();
    let mut v = 0.9f64;
    for j in 0..9 {
        let (s, e) = a.layout().col_rows(j);
        for i in s..e {
            v = (v * 3.9).fract();
            // Tiny diagonal entries force row interchanges.
            a.set(i, j, if i == j { 0.01 * v } else { v + 0.2 });
        }
    }
    let mut ab = a.data().to_vec();
    let mut piv = vec![0i32; 9];
    let info = gbtf2(&l, &mut ab, &mut piv);
    assert_eq!(info, 0);

    let swaps: Vec<String> = piv
        .iter()
        .enumerate()
        .filter(|(j, &p)| p as usize != *j)
        .map(|(j, &p)| format!("{j}<->{p}"))
        .collect();
    println!("pivot interchanges: {}", swaps.join(", "));

    // Count nonzeros that landed in the reserved fill rows.
    let mut fill = 0;
    for j in 0..9 {
        for r in 0..l.kl {
            if ab[l.idx(r, j)] != 0.0 {
                fill += 1;
            }
        }
    }
    println!("fill-in entries created in the '+' rows: {fill}");
    assert!(fill > 0, "pivoting must have generated fill-in");
    println!("done.");
}
