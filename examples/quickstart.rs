//! Quickstart: factor and solve a batch of band systems on the simulated
//! H100, checking the result against the inputs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gbatch::core::residual::backward_error;
use gbatch::core::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch::gpu_sim::DeviceSpec;
use gbatch::kernels::dispatch::{dgbsv_batch, GbsvOptions};

fn main() {
    // 1. Describe the problem: 256 systems of order 48 with a pentadiagonal
    //    band (kl = ku = 2).
    let (batch, n, kl, ku) = (256, 48, 2, 2);

    // 2. Fill the batch. `BandBatch` stores every matrix in LAPACK band
    //    layout (paper Fig. 2) with the fill-in rows `gbtrf` needs.
    let a = BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
        for j in 0..n {
            m.set(j, j, 4.0 + (id as f64 * 0.01));
            for d in 1..=2usize {
                if j + d < n {
                    m.set(j + d, j, -1.0 / d as f64);
                }
                if j >= d {
                    m.set(j - d, j, -1.0 / d as f64);
                }
            }
        }
    })
    .expect("valid dimensions");

    // 3. One right-hand side per system.
    let b = RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id + i) as f64 * 0.1).sin())
        .expect("valid dimensions");

    // 4. Solve on the simulated H100. `dgbsv_batch` mirrors the paper's
    //    interface: pivots and per-system info codes come back to you, and
    //    the RHS batch is overwritten with the solutions.
    let dev = DeviceSpec::h100_pcie();
    let (orig_a, orig_b) = (a.clone(), b.clone());
    let (mut a, mut b) = (a, b);
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let report = dgbsv_batch(
        &dev,
        &mut a,
        &mut piv,
        &mut b,
        &mut info,
        &GbsvOptions::default(),
    )
    .expect("launch fits the device");

    assert!(info.all_ok(), "no singular systems in this batch");

    // 5. Certify the answers: normwise backward error per system.
    let worst = (0..batch)
        .map(|id| backward_error(orig_a.matrix(id), b.block(id), orig_b.block(id)))
        .fold(0.0f64, f64::max);
    println!("batch           : {batch} systems, n = {n}, (kl, ku) = ({kl}, {ku})");
    println!("kernel selected : {:?}", report.algo);
    println!(
        "modeled time    : {:.4} ms on {}",
        report.time.ms(),
        dev.name
    );
    println!(
        "worst backward error: {worst:.3e} (machine eps = {:.3e})",
        f64::EPSILON
    );
    assert!(worst < 1e-13, "solutions are numerically certified");
    println!("OK");
}
