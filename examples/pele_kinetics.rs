//! PELE-style chemical kinetics (paper §2.1): thousands of small, mostly
//! dense-in-band systems with wildly varying condition numbers, solved in
//! one batched call on each simulated GPU and on the CPU baseline.
//!
//! ```text
//! cargo run --release --example pele_kinetics
//! ```

use gbatch::core::residual::backward_error;
use gbatch::core::{InfoArray, PivotBatch, RhsBatch};
use gbatch::cpu::{cpu_gbsv_batch, CpuSpec};
use gbatch::gpu_sim::DeviceSpec;
use gbatch::kernels::dispatch::{dgbsv_batch, GbsvOptions};
use gbatch::workloads::pele::{pele_batch, PeleConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2023);
    // The paper: "typical matrix sizes in batches do not exceed 150 but
    // many are sized 50 or less", ~90% in-band density, conditioning
    // spanning many decades.
    let cfg = PeleConfig {
        n: 50,
        kl: 4,
        ku: 4,
        density: 0.9,
        spread_decades: 6.0,
    };
    let batch = 2048;
    let a0 = pele_batch(&mut rng, batch, &cfg);
    let b0 = RhsBatch::from_fn(batch, cfg.n, 1, |id, i, _| {
        ((id * 3 + i) as f64 * 0.21).cos()
    })
    .expect("dims");

    println!(
        "PELE-like batch: {batch} systems, n = {}, (kl, ku) = ({}, {})",
        cfg.n, cfg.kl, cfg.ku
    );

    for dev in [DeviceSpec::h100_pcie(), DeviceSpec::mi250x_gcd()] {
        let (mut a, mut b) = (a0.clone(), b0.clone());
        let mut piv = PivotBatch::new(batch, cfg.n, cfg.n);
        let mut info = InfoArray::new(batch);
        let rep = dgbsv_batch(
            &dev,
            &mut a,
            &mut piv,
            &mut b,
            &mut info,
            &GbsvOptions::default(),
        )
        .expect("launch");
        let failures = info.failures();
        let worst = (0..batch)
            .filter(|id| !failures.contains(id))
            .map(|id| backward_error(a0.matrix(id), b.block(id), b0.block(id)))
            .fold(0.0f64, f64::max);
        println!(
            "  {:<26} kernel {:?}: {:.4} ms, {} singular, worst backward error {:.2e}",
            dev.name,
            rep.algo,
            rep.time.ms(),
            failures.len(),
            worst
        );
    }

    // CPU baseline (the paper's mkl+openmp competitor).
    let cpu = CpuSpec::xeon_gold_6140();
    let (mut a, mut b) = (a0.clone(), b0.clone());
    let mut piv = PivotBatch::new(batch, cfg.n, cfg.n);
    let mut info = InfoArray::new(batch);
    let rep = cpu_gbsv_batch(&cpu, &mut a, &mut piv, &mut b, &mut info);
    println!(
        "  {:<26} {:.4} ms (modeled, 18 cores)",
        cpu.name,
        rep.model_time_s * 1e3
    );

    // Conditioning sanity: even the worst-conditioned systems solve with a
    // small *backward* error (forward error is governed by conditioning —
    // exactly why the paper's applications want a direct band solver with
    // partial pivoting).
    println!("done.");
}
