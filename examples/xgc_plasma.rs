//! XGC/WDMApp-style plasma batch (paper §2.2): 512 systems of order 193
//! from a Q3-FEM-like discretization, single- and multi-species, solved
//! with multiple right-hand sides.
//!
//! ```text
//! cargo run --release --example xgc_plasma
//! ```

use gbatch::core::residual::backward_error;
use gbatch::core::{InfoArray, PivotBatch, RhsBatch};
use gbatch::gpu_sim::DeviceSpec;
use gbatch::kernels::dispatch::{dgbsv_batch, GbsvOptions};
use gbatch::workloads::xgc::{xgc_batch, XgcConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run(dev: &DeviceSpec, cfg: &XgcConfig, batch: usize, nrhs: usize) {
    let mut rng = StdRng::seed_from_u64(193);
    let a0 = xgc_batch(&mut rng, batch, cfg);
    let n = cfg.n;
    let b0 = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
        ((id + c) as f64 * 0.13 + i as f64 * 0.07).sin()
    })
    .expect("dims");

    let (mut a, mut b) = (a0.clone(), b0.clone());
    let mut piv = PivotBatch::new(batch, n, n);
    let mut info = InfoArray::new(batch);
    let rep = dgbsv_batch(
        dev,
        &mut a,
        &mut piv,
        &mut b,
        &mut info,
        &GbsvOptions::default(),
    )
    .expect("launch");
    assert!(info.all_ok(), "FEM systems are well conditioned");
    let worst = (0..batch)
        .map(|id| {
            (0..nrhs)
                .map(|c| {
                    let x = &b.block(id)[c * n..(c + 1) * n];
                    let r = &b0.block(id)[c * n..(c + 1) * n];
                    backward_error(a0.matrix(id), x, r)
                })
                .fold(0.0f64, f64::max)
        })
        .fold(0.0f64, f64::max);
    println!(
        "  species={:<2} n={:<3} band={:<2} nrhs={:<2} on {:<26}: {:?}, {:.4} ms, berr {:.1e}",
        cfg.species,
        n,
        cfg.bandwidth(),
        nrhs,
        dev.name,
        rep.algo,
        rep.time.ms(),
        worst
    );
}

fn main() {
    // The paper's single-species configuration: 512 systems, M = N = 193.
    let (batch, single) = XgcConfig::paper_single_species();
    println!("XGC single-species batch ({batch} systems):");
    for dev in [DeviceSpec::h100_pcie(), DeviceSpec::mi250x_gcd()] {
        run(&dev, &single, batch, 1);
    }

    // Multi-RHS: gyrokinetic solves advance several moments per step.
    println!("with 10 right-hand sides:");
    for dev in [DeviceSpec::h100_pcie(), DeviceSpec::mi250x_gcd()] {
        run(&dev, &single, batch, 10);
    }

    // Multi-species runs widen the band (paper: "10 species models for the
    // WDMApp milestone") — exactly where the MI250x's small LDS hurts.
    println!("multi-species (wider bands):");
    for species in [2usize, 5, 10] {
        let cfg = XgcConfig {
            species,
            ..XgcConfig::default()
        };
        for dev in [DeviceSpec::h100_pcie(), DeviceSpec::mi250x_gcd()] {
            run(&dev, &cfg, 128, 1);
        }
    }
    println!("done.");
}
