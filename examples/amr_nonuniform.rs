//! Non-uniform batches and band-specialized kernels — the paper's future
//! work (Section 9: "support for non-uniform batches of different sizes
//! and/or different bandwidths") and its §8.1 JIT proposal, both
//! implemented in this reproduction.
//!
//! Scenario: an AMR hierarchy (as in the Pele/AMReX applications of §2.3)
//! produces reaction systems of *different sizes per refinement level* —
//! coarse patches yield small systems, fine patches larger ones — all
//! wanting one batched solve.
//!
//! ```text
//! cargo run --release --example amr_nonuniform
//! ```

use gbatch::core::layout::BandLayout;
use gbatch::core::residual::backward_error;
use gbatch::core::vbatch::{VarBandBatch, VarPivots, VarRhs};
use gbatch::core::{InfoArray, PivotBatch};
use gbatch::gpu_sim::DeviceSpec;
use gbatch::kernels::specialized::specialized_gbtrf;
use gbatch::kernels::vbatch::{dgbsv_vbatch, dgbtrf_vbatch};
use gbatch::workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let dev = DeviceSpec::h100_pcie();

    // --- Part 1: non-uniform batch across three AMR levels -------------
    // Level 0: 9-species cells (n = 36, band 9); level 1: refined patches
    // (n = 72); level 2: deep refinement with extra transport coupling
    // (n = 144, wider band).
    let mut layouts = Vec::new();
    for _ in 0..64 {
        layouts.push(BandLayout::factor(36, 36, 9, 9).unwrap());
    }
    for _ in 0..32 {
        layouts.push(BandLayout::factor(72, 72, 9, 9).unwrap());
    }
    for _ in 0..16 {
        layouts.push(BandLayout::factor(144, 144, 12, 12).unwrap());
    }
    let mut a = VarBandBatch::from_fn(layouts, |_, m| {
        let n = m.layout.n;
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            let mut row_sum = 0.0;
            for i in s..e {
                if i != j {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    m.set(i, j, v);
                    row_sum += v.abs();
                }
            }
            m.set(j, j, row_sum + 1.0);
        }
    })
    .expect("valid layouts");
    let orig = a.clone();

    let rhs0 = VarRhs::from_fn(&a, 1, |id, i, _| ((id + i) as f64 * 0.13).sin()).unwrap();
    let mut rhs = rhs0.clone();
    let mut piv = VarPivots::for_batch(&a);
    let mut info = InfoArray::new(a.batch());
    let rep = dgbsv_vbatch(&dev, &mut a, &mut piv, &mut rhs, &mut info, 8).expect("launch");
    assert!(info.all_ok());
    let worst = (0..orig.batch())
        .map(|id| backward_error(orig.matrix(id), rhs.block(id), rhs0.block(id)))
        .fold(0.0f64, f64::max);
    println!(
        "non-uniform batch: {} systems (n = 36/72/144, bands 9/9/12) in ONE launch",
        orig.batch()
    );
    println!(
        "  modeled time {:.4} ms, worst backward error {worst:.2e}",
        rep.time.ms()
    );

    // Compare against three separate uniform launches (what you'd do
    // without non-uniform support): three launch overheads instead of one.
    let mut t_separate = 0.0;
    for (count, n, k) in [(64usize, 36usize, 9usize), (32, 72, 9), (16, 144, 12)] {
        let mut rng2 = StdRng::seed_from_u64(n as u64);
        let mut ua = random_band_batch(
            &mut rng2,
            count,
            n,
            k,
            k,
            BandDistribution::DiagonallyDominant { margin: 1.0 },
        );
        let mut upiv = PivotBatch::new(count, n, n);
        let mut uinfo = InfoArray::new(count);
        let r = gbatch::kernels::dispatch::dgbtrf_batch(
            &dev,
            &mut ua,
            &mut upiv,
            &mut uinfo,
            &gbatch::kernels::dispatch::GbsvOptions::default(),
        )
        .unwrap();
        t_separate += r.time.ms();
    }
    let mut a2 = orig.clone();
    let mut piv2 = VarPivots::for_batch(&a2);
    let mut info2 = InfoArray::new(a2.batch());
    let t_joint = dgbtrf_vbatch(&dev, &mut a2, &mut piv2, &mut info2, 8)
        .unwrap()
        .time
        .ms();
    println!("  factorization: joint {t_joint:.4} ms vs three uniform launches {t_separate:.4} ms");

    // --- Part 2: band-specialized ("JIT") kernels -----------------------
    // The (2,3) shape from the paper's evaluation has a compiled
    // register-file instance; compare it to the generic window kernel.
    let (batch, n, kl, ku) = (512usize, 128usize, 2usize, 3usize);
    let mut rng3 = StdRng::seed_from_u64(7);
    let base = random_band_batch(&mut rng3, batch, n, kl, ku, BandDistribution::Uniform);

    let mut a_spec = base.clone();
    let mut p_spec = PivotBatch::new(batch, n, n);
    let mut i_spec = InfoArray::new(batch);
    let t_spec = specialized_gbtrf(&dev, &mut a_spec, &mut p_spec, &mut i_spec, 32)
        .expect("(2,3) has a compiled instance")
        .expect("launch")
        .time
        .ms();

    let mut a_gen = base.clone();
    let mut p_gen = PivotBatch::new(batch, n, n);
    let mut i_gen = InfoArray::new(batch);
    let t_gen = gbatch::kernels::window::gbtrf_batch_window(
        &dev,
        &mut a_gen,
        &mut p_gen,
        &mut i_gen,
        gbatch::kernels::window::WindowParams::auto(&dev, kl),
    )
    .unwrap()
    .time
    .ms();

    assert_eq!(a_spec.data(), a_gen.data(), "identical numerics");
    println!("specialized (2,3) register kernel: {t_spec:.4} ms vs generic window {t_gen:.4} ms");
    println!(
        "  -> {:.2}x from band specialization (the paper's §8.1 JIT payoff)",
        t_gen / t_spec
    );
    println!("done.");
}
