//! # gbatch — batched banded LU factorization and solve
//!
//! Facade crate for the `gbatch` workspace, a full reproduction of
//! *"GPU-based LU Factorization and Solve on Batches of Matrices with Band
//! Structure"* (Abdelfattah, Tomov, Luszczek, Anzt, Dongarra — SC-W 2023).
//!
//! The workspace implements the paper's three batched routines —
//! `dgbtrf_batch`, `dgbtrs_batch`, `dgbsv_batch` — in three GPU kernel
//! designs (reference fork–join, fully fused, sliding window) on top of a
//! software-simulated GPU, plus the multicore CPU baseline, the offline
//! tuner and a benchmark harness regenerating every figure and table of the
//! paper.
//!
//! ## Quick start
//!
//! ```
//! use gbatch::core::{BandBatch, PivotBatch, InfoArray, RhsBatch};
//! use gbatch::gpu_sim::DeviceSpec;
//! use gbatch::kernels::dispatch::{dgbsv_batch, GbsvOptions};
//!
//! // A batch of 8 tridiagonal systems of order 16.
//! let (n, kl, ku, batch) = (16, 1, 1, 8);
//! let mut a = BandBatch::from_fn(batch, n, n, kl, ku, |_, m| {
//!     for j in 0..n {
//!         m.set(j, j, 4.0);
//!         if j > 0 { m.set(j - 1, j, -1.0); m.set(j, j - 1, -1.0); }
//!     }
//! }).unwrap();
//! let mut b = RhsBatch::from_fn(batch, n, 1, |_, i, _| i as f64).unwrap();
//! let mut piv = PivotBatch::new(batch, n, n);
//! let mut info = InfoArray::new(batch);
//!
//! let dev = DeviceSpec::h100_pcie();
//! let report = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info,
//!                          &GbsvOptions::default()).unwrap();
//! assert!(info.all_ok());
//! println!("simulated time: {:.3} ms", report.time.ms());
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

/// Band storage, sequential LAPACK-style routines, batch containers.
pub use gbatch_core as core;
/// Multicore CPU baseline (the paper's "mkl + openmp" stand-in).
pub use gbatch_cpu as cpu;
/// Software-simulated GPU substrate.
pub use gbatch_gpu_sim as gpu_sim;
/// GPU kernel designs and the batched user interface.
pub use gbatch_kernels as kernels;
/// Dynamic-batching solve service (shape-bucketed admission, deadlines,
/// CPU spill-over).
pub use gbatch_serve as serve;
/// Offline tuning sweep for (nb, threads).
pub use gbatch_tuning as tuning;
/// Synthetic application workloads (PELE, XGC, SUNDIALS, random bands).
pub use gbatch_workloads as workloads;
