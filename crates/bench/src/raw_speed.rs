//! The "raw speed" perf trajectory: a small deterministic engine-mode
//! benchmark whose output is checked in as `BENCH_raw_speed.json` at the
//! repository root and replayed by the release perf-gate test.
//!
//! Four measurements at the serving sweet spot (batch 4096, order 16,
//! `(kl, ku) = (2, 3)`, one right-hand side), each under both
//! [`EngineMode`]s:
//!
//! 1. **factor** — `dgbtrf_batch` through the dispatcher;
//! 2. **solve** — `dgbtrs_batch` on the factored batch;
//! 3. **interleaved** — `dgbsv_batch` pinned to the interleaved layout;
//! 4. **serve flush** — one [`GpuBackend`] flush of the same batch, where
//!    the resident number is the *steady state* (second flush) and the
//!    one-time pool spin-up is reported separately as `serve_spinup_ms`;
//! 5. **factor cache** — the same flush cold (factorize + solve) versus
//!    warm (GBTRS-only over cached factors through
//!    [`SolveBackend::solve_with`]), plus the cache hit rate of a
//!    deterministic repeated-operator mini-soak through the [`Server`];
//! 6. **spike** — the large-`n` split regime: one `n = 65536`,
//!    `kl = ku = 8` system solved by the SPIKE driver at
//!    `P ∈ {1, 2, 4, 8, 16}` blocks in both precisions under the resident
//!    engine, against the unsplit window + blocked-solve baseline the
//!    split competes with. Floor-gated at 3.0x for `P = 8`, f64.
//!
//! Every time is the simulator's analytic model, so the report is exactly
//! reproducible on any machine: the perf gate replays the measurement and
//! compares against the checked-in trajectory to a tight relative
//! tolerance, then enforces the resident-vs-per-launch floors.

use gbatch_core::gbtrs::Transpose;
use gbatch_core::{BandBatch, InfoArray, PivotBatch, RhsBatch, Scalar, ShapeKey};
use gbatch_cpu::CpuSpec;
use gbatch_gpu_sim::multi::DeviceGroup;
use gbatch_gpu_sim::registry;
use gbatch_gpu_sim::{DeviceSpec, EngineMode, ParallelPolicy};
use gbatch_kernels::dispatch::{
    dgbsv_batch, dgbtrf_batch, dgbtrs_batch, gbsv_batch, ChosenAlgo, FactorAlgo, GbsvOptions,
    MatrixLayout,
};
use gbatch_kernels::spike::SpikeParams;
use gbatch_serve::{
    FleetSpec, FlushPolicy, GpuBackend, ServeReport, Server, ServerConfig, SolveBackend,
    SolveRequest,
};
use gbatch_workloads::{adversarial_traffic, timestep_traffic, AdversarialConfig, TimestepConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Batch size of the trajectory (the paper's serving-scale regime).
pub const RAW_BATCH: usize = 4096;
/// Matrix order.
pub const RAW_N: usize = 16;
/// Subdiagonals.
pub const RAW_KL: usize = 2;
/// Superdiagonals.
pub const RAW_KU: usize = 3;
/// Right-hand sides.
pub const RAW_NRHS: usize = 1;

/// One measurement under both engine modes, in model milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineSample {
    /// Cold per-launch engine.
    pub per_launch_ms: f64,
    /// Persistent resident engine (steady state — spin-up excluded).
    pub resident_ms: f64,
    /// `per_launch_ms / resident_ms`.
    pub speedup: f64,
}

impl EngineSample {
    fn new(per_launch_ms: f64, resident_ms: f64) -> Self {
        EngineSample {
            per_launch_ms,
            resident_ms,
            speedup: per_launch_ms / resident_ms,
        }
    }
}

/// Cold-versus-warm flush cost of the serve-layer factor cache, plus a
/// deterministic repeated-operator mini-soak's hit rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactorCacheSample {
    /// One cold flush of the trajectory batch: full factorize + solve
    /// (identical measurement to `serve_flush`).
    pub cold: EngineSample,
    /// One warm flush of the same batch: GBTRS-only over cached factors
    /// through [`SolveBackend::solve_with`].
    pub warm: EngineSample,
    /// `cold.resident_ms / warm.resident_ms` — what skipping `gbtrf`
    /// saves at steady state. Floor-gated at 1.8x.
    pub warm_speedup: f64,
    /// Cache hit rate of the mini-soak (`SOAK_REQUESTS` timestepping
    /// arrivals over `SOAK_POOL` operators at `SOAK_CHURN` churn) through
    /// the full [`Server`] admission path. Floor-gated at 0.85.
    pub soak_hit_rate: f64,
}

/// Matrix order of the spike (large-`n` split) measurement.
pub const SPIKE_N: usize = 65536;
/// Sub- and superdiagonals of the spike measurement.
pub const SPIKE_KL: usize = 8;
/// Superdiagonals of the spike measurement.
pub const SPIKE_KU: usize = 8;
/// Block counts swept by the spike measurement.
pub const SPIKE_PARTS: [usize; 5] = [1, 2, 4, 8, 16];
/// Acceptance floor: SPIKE at `P = 8`, f64, beats the unsplit solve by
/// at least this factor.
pub const SPIKE_FLOOR: f64 = 3.0;

/// One point of the spike sweep: the split solve at a given block count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikePoint {
    /// Requested block count `P`.
    pub parts: usize,
    /// Split solve, resident engine, in model milliseconds.
    pub split_ms: f64,
    /// `unsplit_ms / split_ms` of the owning line.
    pub speedup: f64,
}

/// The spike sweep at one precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeLine {
    /// `"f32"` or `"f64"`.
    pub precision: String,
    /// Unsplit window + blocked-solve baseline (the path the split
    /// competes with), resident engine, in model milliseconds.
    pub unsplit_ms: f64,
    /// One point per entry of [`SPIKE_PARTS`].
    pub points: Vec<SpikePoint>,
}

/// The large-`n` split-regime section of the trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpikeSection {
    /// Matrix order.
    pub n: usize,
    /// Subdiagonals.
    pub kl: usize,
    /// Superdiagonals.
    pub ku: usize,
    /// Right-hand sides.
    pub nrhs: usize,
    /// One sweep per precision, f64 first.
    pub lines: Vec<SpikeLine>,
}

impl SpikeSection {
    /// The floor-gated headline number: speedup at `P = 8`, f64.
    #[must_use]
    pub fn speedup_at_p8_f64(&self) -> f64 {
        self.lines
            .iter()
            .find(|l| l.precision == "f64")
            .and_then(|l| l.points.iter().find(|p| p.parts == 8))
            .map_or(0.0, |p| p.speedup)
    }
}

/// Mini-soak request count.
pub const SOAK_REQUESTS: usize = 2000;
/// Mini-soak live-operator pool.
pub const SOAK_POOL: usize = 8;
/// Mini-soak per-request operator-refresh probability.
pub const SOAK_CHURN: f64 = 0.02;

/// Requests of the fleet-versus-single-device comparison.
pub const FLEET_REQUESTS: usize = 4000;
/// Base arrival rate of the adversarial mix (Hz) — chosen so the best
/// single device saturates during bursts and the comparison measures
/// real parallel capacity, not idle-time absorption.
pub const FLEET_RATE_HZ: f64 = 1.0e7;
/// Per-request deadline budget of the fleet comparison.
pub const FLEET_DEADLINE_S: f64 = 2.0e-3;
/// The heterogeneous fleet of the comparison.
pub const FLEET_COMPOSITION: &str = "h100_pcie:1,mi250x_gcd:2";
/// The best single device of the composition, run alone as the baseline.
pub const FLEET_BASELINE: &str = "h100_pcie:1";
/// Acceptance floor: fleet throughput over best-single-device throughput
/// on the adversarial mix.
pub const FLEET_FLOOR: f64 = 1.5;

/// Fleet versus best-single-device throughput on the adversarial mix.
///
/// Both runs drain the *same* seeded arrival trace; the makespan is the
/// completion instant of the last response, so the ratio measures how
/// much of the fleet's aggregate capacity the router actually converts
/// into finished work under bursts, churn and poison storms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSample {
    /// Fleet composition string (registry catalog names).
    pub composition: String,
    /// Baseline composition (the best single device, alone).
    pub baseline: String,
    /// Requests in the trace.
    pub requests: usize,
    /// Baseline drained-schedule makespan, model milliseconds.
    pub baseline_makespan_ms: f64,
    /// Fleet drained-schedule makespan, model milliseconds.
    pub fleet_makespan_ms: f64,
    /// Baseline throughput, requests per model second.
    pub baseline_throughput_rps: f64,
    /// Fleet throughput, requests per model second.
    pub fleet_throughput_rps: f64,
    /// `fleet_throughput_rps / baseline_throughput_rps`. Floor-gated at
    /// [`FLEET_FLOOR`].
    pub speedup: f64,
    /// Max−min utilization over the fleet's GPU workers.
    pub utilization_spread: f64,
    /// Load-shed routing decisions in the fleet run.
    pub sheds: u64,
}

/// The checked-in trajectory (`BENCH_raw_speed.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawSpeedReport {
    /// Device the trajectory was modeled on.
    pub device: String,
    /// Batch size.
    pub batch: usize,
    /// Matrix order.
    pub n: usize,
    /// Subdiagonals.
    pub kl: usize,
    /// Superdiagonals.
    pub ku: usize,
    /// Right-hand sides.
    pub nrhs: usize,
    /// `dgbtrf_batch` through the dispatcher.
    pub factor: EngineSample,
    /// `dgbtrs_batch` on the factored batch.
    pub solve: EngineSample,
    /// `dgbsv_batch` pinned to the interleaved layout.
    pub interleaved: EngineSample,
    /// One `GpuBackend` flush (resident number = steady state).
    pub serve_flush: EngineSample,
    /// One-time resident premium observed on the first serve flush
    /// (pool spin-up), in model milliseconds.
    pub serve_spinup_ms: f64,
    /// Factor-cache economics: cold vs warm (GBTRS-only) flush cost and
    /// the repeated-operator mini-soak hit rate.
    pub factor_cache: FactorCacheSample,
    /// The large-`n` SPIKE split regime versus the unsplit solve.
    pub spike: SpikeSection,
    /// Fleet scheduler versus the best single device on the adversarial
    /// mix.
    pub fleet: FleetSample,
}

fn band(batch: usize) -> BandBatch {
    // Diagonally dominant so every lane factors without a zero pivot.
    BandBatch::from_fn(batch, RAW_N, RAW_N, RAW_KL, RAW_KU, |id, m| {
        for j in 0..RAW_N {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                m.set(i, j, ((i * 7 + j * 3 + id) % 5) as f64 * 0.1 + 0.05);
            }
            let sum: f64 = (s..e).filter(|&i| i != j).map(|i| m.get(i, j).abs()).sum();
            m.set(j, j, sum + 1.0);
        }
    })
    .unwrap()
}

fn rhs(batch: usize) -> RhsBatch {
    RhsBatch::from_fn(batch, RAW_N, RAW_NRHS, |id, i, c| {
        ((id * 13 + c * 5 + i) as f64 * 0.29).sin()
    })
    .unwrap()
}

fn opts(engine: EngineMode) -> GbsvOptions {
    GbsvOptions {
        parallel: Some(ParallelPolicy::threads(4)),
        engine: Some(engine),
        ..Default::default()
    }
}

/// Run the full trajectory on the paper's flagship device.
pub fn measure() -> RawSpeedReport {
    let dev = registry::device(registry::H100_PCIE).expect("catalog entry");
    let a0 = band(RAW_BATCH);
    let b0 = rhs(RAW_BATCH);

    let factor_under = |engine: EngineMode| {
        let mut a = a0.clone();
        let mut piv = PivotBatch::new(RAW_BATCH, RAW_N, RAW_N);
        let mut info = InfoArray::new(RAW_BATCH);
        let rep = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &opts(engine)).unwrap();
        assert!(info.all_ok());
        (a, piv, rep.time.ms())
    };
    let (fac, piv, factor_cold) = factor_under(EngineMode::PerLaunch);
    let (fac_r, piv_r, factor_warm) = factor_under(EngineMode::Resident);
    assert_eq!(fac.data(), fac_r.data(), "engine mode changed the factors");
    assert_eq!(piv, piv_r);
    let factor = EngineSample::new(factor_cold, factor_warm);

    let solve_under = |engine: EngineMode| {
        let mut b = b0.clone();
        let rep = dgbtrs_batch(
            &dev,
            Transpose::No,
            &fac.layout(),
            fac.data(),
            &piv,
            &mut b,
            &opts(engine),
        )
        .unwrap();
        (b, rep.time.ms())
    };
    let (x_cold, solve_cold) = solve_under(EngineMode::PerLaunch);
    let (x_warm, solve_warm) = solve_under(EngineMode::Resident);
    assert_eq!(
        x_cold.data(),
        x_warm.data(),
        "engine mode changed the solve"
    );
    let solve = EngineSample::new(solve_cold, solve_warm);

    let interleaved_under = |engine: EngineMode| {
        let mut a = a0.clone();
        let mut b = b0.clone();
        let mut piv = PivotBatch::new(RAW_BATCH, RAW_N, RAW_N);
        let mut info = InfoArray::new(RAW_BATCH);
        let mut o = opts(engine);
        o.layout = MatrixLayout::Interleaved;
        let rep = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &o).unwrap();
        assert!(info.all_ok());
        (b, rep.time.ms())
    };
    let (xi_cold, inter_cold) = interleaved_under(EngineMode::PerLaunch);
    let (xi_warm, inter_warm) = interleaved_under(EngineMode::Resident);
    assert_eq!(xi_cold.data(), xi_warm.data());
    let interleaved = EngineSample::new(inter_cold, inter_warm);

    // Serve flush: same geometry through the backend. The resident
    // backend's first flush carries the one-time pool spin-up; steady
    // state is the second flush.
    let shape = ShapeKey::gbsv(RAW_N, RAW_KL, RAW_KU, RAW_NRHS);
    let stride = a0.matrix_stride();
    let reqs: Vec<SolveRequest> = (0..RAW_BATCH)
        .map(|k| SolveRequest {
            id: k as u64,
            shape,
            ab: a0.data()[k * stride..(k + 1) * stride].to_vec(),
            rhs: b0.block(k).to_vec(),
            submitted_s: 0.0,
            deadline_s: 1.0,
        })
        .collect();
    let group = || DeviceGroup::new(vec![dev.clone()]);
    let par = ParallelPolicy::threads(4);
    let cold_backend = GpuBackend::new(group(), par);
    let warm_backend = GpuBackend::new(group(), par).with_engine(EngineMode::Resident);
    let cold_flush = cold_backend.solve(&shape, &reqs).unwrap();
    let first_flush = warm_backend.solve(&shape, &reqs).unwrap();
    let steady_flush = warm_backend.solve(&shape, &reqs).unwrap();
    assert_eq!(cold_flush.x, first_flush.x, "engine mode changed the flush");
    assert_eq!(first_flush.x, steady_flush.x);
    let serve_flush = EngineSample::new(cold_flush.service_s * 1e3, steady_flush.service_s * 1e3);
    let serve_spinup_ms = (first_flush.service_s - steady_flush.service_s) * 1e3;

    // Factor cache: the cold side *is* the serve flush above (one full
    // factorize-and-solve of the batch). The warm side re-solves the
    // identical batch as a GBTRS-only launch over factors cached by an
    // explicit factorize pass — the factorization cost is deliberately
    // outside the sample; amortizing it is the cache's whole point.
    let operators: Vec<&[f64]> = (0..RAW_BATCH)
        .map(|k| &a0.data()[k * stride..(k + 1) * stride])
        .collect();
    let warm_under = |backend: &GpuBackend| {
        let fac = backend.factorize(&shape, &operators).unwrap();
        let factors: Vec<_> = fac
            .factors
            .into_iter()
            .map(|f| f.expect("trajectory operators are nonsingular"))
            .collect();
        // Steady state: the second warm flush (the first one absorbs any
        // one-time resident spin-up not already consumed by factorize).
        let first = backend.solve_with(&shape, &reqs, &factors).unwrap();
        let steady = backend.solve_with(&shape, &reqs, &factors).unwrap();
        assert_eq!(first.x, steady.x);
        assert_eq!(
            first.x, cold_flush.x,
            "warm GBTRS-only flush diverged from the cold factorize+solve"
        );
        steady.service_s * 1e3
    };
    let warm = EngineSample::new(
        warm_under(&GpuBackend::new(group(), par)),
        warm_under(&GpuBackend::new(group(), par).with_engine(EngineMode::Resident)),
    );
    let factor_cache = FactorCacheSample {
        cold: serve_flush,
        warm,
        warm_speedup: serve_flush.resident_ms / warm.resident_ms,
        soak_hit_rate: soak_hit_rate(&dev),
    };

    let spike = SpikeSection {
        n: SPIKE_N,
        kl: SPIKE_KL,
        ku: SPIKE_KU,
        nrhs: 1,
        lines: vec![spike_line::<f64>(&dev), spike_line::<f32>(&dev)],
    };

    RawSpeedReport {
        device: dev.name.clone(),
        batch: RAW_BATCH,
        n: RAW_N,
        kl: RAW_KL,
        ku: RAW_KU,
        nrhs: RAW_NRHS,
        factor,
        solve,
        interleaved,
        serve_flush,
        serve_spinup_ms,
        factor_cache,
        spike,
        fleet: fleet_sample(),
    }
}

/// Drain the fleet comparison's adversarial trace through a fleet
/// composed from the registry; returns the drained-schedule makespan
/// (completion instant of the last response) and the report.
fn fleet_run(composition: &str) -> (f64, ServeReport) {
    let cfg = AdversarialConfig::fleet_mix(FLEET_RATE_HZ, FLEET_DEADLINE_S);
    let arrivals = adversarial_traffic(&mut StdRng::seed_from_u64(7), FLEET_REQUESTS, &cfg);
    let mut server = Server::simulated_fleet(
        &FleetSpec::parse(composition).expect("catalog names"),
        CpuSpec::xeon_gold_6140(),
        ParallelPolicy::threads(4),
        ServerConfig {
            queue_capacity: 8192,
            policy: FlushPolicy::default()
                .with_target_batch(64)
                .with_min_gpu_batch(16),
        },
    )
    .expect("fleet composition resolves");
    for a in arrivals {
        server
            .submit(SolveRequest {
                id: a.id,
                shape: a.shape,
                ab: a.ab,
                rhs: a.rhs,
                submitted_s: a.at_s,
                deadline_s: a.deadline_s,
            })
            .expect("fleet trace fits the admission queue");
    }
    server.drain();
    let makespan_s = server
        .take_responses()
        .iter()
        .map(|r| r.completed_s)
        .fold(0.0, f64::max);
    let report = server.report();
    assert!(report.is_conserved());
    assert_eq!(report.completed, FLEET_REQUESTS as u64);
    (makespan_s, report)
}

/// The fleet comparison: the same adversarial trace through the best
/// single device alone and through the heterogeneous fleet. Fully
/// deterministic (seeded trace, virtual-time scheduling), so the perf
/// gate replays it exactly.
fn fleet_sample() -> FleetSample {
    let (base_s, _) = fleet_run(FLEET_BASELINE);
    let (fleet_s, fleet_report) = fleet_run(FLEET_COMPOSITION);
    FleetSample {
        composition: FLEET_COMPOSITION.to_string(),
        baseline: FLEET_BASELINE.to_string(),
        requests: FLEET_REQUESTS,
        baseline_makespan_ms: base_s * 1e3,
        fleet_makespan_ms: fleet_s * 1e3,
        baseline_throughput_rps: FLEET_REQUESTS as f64 / base_s,
        fleet_throughput_rps: FLEET_REQUESTS as f64 / fleet_s,
        speedup: base_s / fleet_s,
        utilization_spread: fleet_report.utilization_spread(),
        sheds: fleet_report.sheds(),
    }
}

/// Sweep the SPIKE block count over one `n = 65536` diagonally dominant
/// system at precision `S`, resident engine. The baseline is the unsplit
/// window + blocked-solve path (`FactorAlgo::Window` disables `Auto`'s
/// split routing) — exactly what a large lone system cost before the
/// split regime existed. Every split answer is checked against the
/// unsplit one before its time is recorded.
fn spike_line<S: Scalar>(dev: &DeviceSpec) -> SpikeLine {
    let a0 = BandBatch::<S>::from_fn(1, SPIKE_N, SPIKE_N, SPIKE_KL, SPIKE_KU, |_, m| {
        for j in 0..SPIKE_N {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                m.set(i, j, S::from_f64(((i * 7 + j * 3) % 5) as f64 * 0.1 + 0.05));
            }
            let sum = (s..e)
                .filter(|&i| i != j)
                .fold(S::ZERO, |acc, i| acc + m.get(i, j).abs());
            m.set(j, j, sum + S::ONE);
        }
    })
    .unwrap();
    let b0 = RhsBatch::<S>::from_fn(1, SPIKE_N, 1, |_, i, c| {
        S::from_f64(((c * 5 + i) as f64 * 0.29).sin())
    })
    .unwrap();

    let run = |opts: &GbsvOptions, want: ChosenAlgo| -> (Vec<S>, f64) {
        let mut a = a0.clone();
        let mut b = b0.clone();
        let mut piv = PivotBatch::new(1, SPIKE_N, SPIKE_N);
        let mut info = InfoArray::new(1);
        let rep = gbsv_batch::<S>(dev, &mut a, &mut piv, &mut b, &mut info, opts).unwrap();
        assert!(info.all_ok(), "spike trajectory system is nonsingular");
        assert_eq!(rep.algo, want);
        (b.data().to_vec(), rep.time.ms())
    };

    let base = GbsvOptions {
        algo: FactorAlgo::Window,
        engine: Some(EngineMode::Resident),
        parallel: Some(ParallelPolicy::threads(4)),
        ..Default::default()
    };
    let (x_ref, unsplit_ms) = run(&base, ChosenAlgo::Window);

    let points = SPIKE_PARTS
        .iter()
        .map(|&parts| {
            let opts = GbsvOptions {
                spike: Some(SpikeParams::auto(dev, SPIKE_KL).with_parts(parts)),
                engine: Some(EngineMode::Resident),
                parallel: Some(ParallelPolicy::threads(4)),
                ..Default::default()
            };
            let (x, split_ms) = run(&opts, ChosenAlgo::Spike);
            // Refined truncated-SPIKE answers agree with the unsplit
            // solve to a small multiple of working precision.
            let (mut err, mut scale) = (0.0f64, 0.0f64);
            for (g, w) in x.iter().zip(&x_ref) {
                err = err.max((g.to_f64() - w.to_f64()).abs());
                scale = scale.max(w.to_f64().abs());
            }
            assert!(
                err <= 1e3 * S::EPSILON.to_f64() * scale.max(1.0),
                "P = {parts} split answer drifted from unsplit: |dx| = {err:.3e}"
            );
            SpikePoint {
                parts,
                split_ms,
                speedup: unsplit_ms / split_ms,
            }
        })
        .collect();

    SpikeLine {
        precision: S::PRECISION.name().to_string(),
        unsplit_ms,
        points,
    }
}

/// The repeated-operator mini-soak: `SOAK_REQUESTS` timestepping arrivals
/// over a pool of `SOAK_POOL` operators with `SOAK_CHURN` churn, served
/// through the full admission path on the trajectory device. Fully
/// deterministic (seeded traffic, analytic service model), so the
/// resulting hit rate is replayed exactly by the perf gate.
fn soak_hit_rate(dev: &DeviceSpec) -> f64 {
    let mut cfg = TimestepConfig::timestepper(
        ShapeKey::gbsv(RAW_N, RAW_KL, RAW_KU, RAW_NRHS),
        SOAK_POOL,
        SOAK_CHURN,
        2.0e5,
    );
    // Keep the cold-bucket flush cadence short against the repeat period:
    // factors enter the cache at flush time, so a lazy cold bucket would
    // charge every early repeat as a miss.
    cfg.deadline_s = 2.0e-4;
    let mut server = Server::simulated(
        DeviceGroup::new(vec![dev.clone()]),
        CpuSpec::xeon_gold_6140(),
        ParallelPolicy::threads(4),
        ServerConfig {
            queue_capacity: 8192,
            policy: FlushPolicy::default()
                .with_target_batch(16)
                .with_min_gpu_batch(8),
        },
    );
    for a in timestep_traffic(&mut StdRng::seed_from_u64(41), SOAK_REQUESTS, &cfg) {
        server
            .submit(SolveRequest {
                id: a.id,
                shape: a.shape,
                ab: a.ab,
                rhs: a.rhs,
                submitted_s: a.at_s,
                deadline_s: a.deadline_s,
            })
            .expect("mini-soak traffic fits the admission queue");
    }
    server.drain();
    let report = server.report();
    assert!(report.is_conserved());
    assert_eq!(report.completed, SOAK_REQUESTS as u64);
    report.hit_rate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_is_internally_consistent() {
        let r = measure();
        println!("{}", serde_json::to_string_pretty(&r).unwrap());
        // Resident never loses: every launch trades cold for warm overhead.
        for (name, s) in [
            ("factor", r.factor),
            ("solve", r.solve),
            ("interleaved", r.interleaved),
            ("serve_flush", r.serve_flush),
        ] {
            assert!(
                s.speedup > 1.0,
                "{name}: resident {} not faster than per-launch {}",
                s.resident_ms,
                s.per_launch_ms
            );
        }
        assert!(r.serve_spinup_ms > 0.0, "first flush must carry spin-up");
        // The headline acceptance floor.
        assert!(
            r.serve_flush.speedup >= 1.3,
            "serve flush speedup {} below the 1.3x floor",
            r.serve_flush.speedup
        );
        // Factor-cache economics: a warm (GBTRS-only) flush beats the
        // cold factorize-and-solve by the acceptance floor, and the
        // mini-soak keeps the cache hot.
        assert_eq!(r.factor_cache.cold, r.serve_flush);
        assert!(
            r.factor_cache.warm_speedup >= 1.8,
            "warm flush speedup {} below the 1.8x floor",
            r.factor_cache.warm_speedup
        );
        assert!(r.factor_cache.warm.resident_ms < r.factor_cache.cold.resident_ms);
        assert!(
            r.factor_cache.soak_hit_rate >= 0.85,
            "mini-soak hit rate {} below the 0.85 floor",
            r.factor_cache.soak_hit_rate
        );
        // The split regime: both precisions swept over every block count,
        // P = 1 is within noise of the unsplit baseline (the split driver
        // degenerates to the same kernels), and the headline floor holds.
        assert_eq!(r.spike.lines.len(), 2);
        for line in &r.spike.lines {
            assert_eq!(line.points.len(), SPIKE_PARTS.len());
            let p1 = &line.points[0];
            assert_eq!(p1.parts, 1);
            assert!(
                (p1.speedup - 1.0).abs() < 0.2,
                "{}: P = 1 should match the unsplit path, got {:.3}x",
                line.precision,
                p1.speedup
            );
        }
        assert!(
            r.spike.speedup_at_p8_f64() >= SPIKE_FLOOR,
            "spike P = 8 f64 speedup {:.3} below the {SPIKE_FLOOR}x floor",
            r.spike.speedup_at_p8_f64()
        );
        // The fleet comparison: the heterogeneous fleet converts its
        // aggregate capacity into throughput the single device cannot
        // match, and its utilization accounting stays physical.
        assert!(
            r.fleet.speedup >= FLEET_FLOOR,
            "fleet speedup {:.3} below the {FLEET_FLOOR}x floor",
            r.fleet.speedup
        );
        assert!(r.fleet.fleet_makespan_ms < r.fleet.baseline_makespan_ms);
        assert!(r.fleet.utilization_spread >= 0.0 && r.fleet.utilization_spread <= 1.0);
        // Determinism: a second measurement reproduces every bit.
        assert_eq!(r, measure());
    }
}
