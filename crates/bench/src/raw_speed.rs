//! The "raw speed" perf trajectory: a small deterministic engine-mode
//! benchmark whose output is checked in as `BENCH_raw_speed.json` at the
//! repository root and replayed by the release perf-gate test.
//!
//! Four measurements at the serving sweet spot (batch 4096, order 16,
//! `(kl, ku) = (2, 3)`, one right-hand side), each under both
//! [`EngineMode`]s:
//!
//! 1. **factor** — `dgbtrf_batch` through the dispatcher;
//! 2. **solve** — `dgbtrs_batch` on the factored batch;
//! 3. **interleaved** — `dgbsv_batch` pinned to the interleaved layout;
//! 4. **serve flush** — one [`GpuBackend`] flush of the same batch, where
//!    the resident number is the *steady state* (second flush) and the
//!    one-time pool spin-up is reported separately as `serve_spinup_ms`.
//!
//! Every time is the simulator's analytic model, so the report is exactly
//! reproducible on any machine: the perf gate replays the measurement and
//! compares against the checked-in trajectory to a tight relative
//! tolerance, then enforces the resident-vs-per-launch floors.

use gbatch_core::gbtrs::Transpose;
use gbatch_core::{BandBatch, InfoArray, PivotBatch, RhsBatch, ShapeKey};
use gbatch_gpu_sim::multi::DeviceGroup;
use gbatch_gpu_sim::{DeviceSpec, EngineMode, ParallelPolicy};
use gbatch_kernels::dispatch::{
    dgbsv_batch, dgbtrf_batch, dgbtrs_batch, GbsvOptions, MatrixLayout,
};
use gbatch_serve::{GpuBackend, SolveBackend, SolveRequest};
use serde::{Deserialize, Serialize};

/// Batch size of the trajectory (the paper's serving-scale regime).
pub const RAW_BATCH: usize = 4096;
/// Matrix order.
pub const RAW_N: usize = 16;
/// Subdiagonals.
pub const RAW_KL: usize = 2;
/// Superdiagonals.
pub const RAW_KU: usize = 3;
/// Right-hand sides.
pub const RAW_NRHS: usize = 1;

/// One measurement under both engine modes, in model milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineSample {
    /// Cold per-launch engine.
    pub per_launch_ms: f64,
    /// Persistent resident engine (steady state — spin-up excluded).
    pub resident_ms: f64,
    /// `per_launch_ms / resident_ms`.
    pub speedup: f64,
}

impl EngineSample {
    fn new(per_launch_ms: f64, resident_ms: f64) -> Self {
        EngineSample {
            per_launch_ms,
            resident_ms,
            speedup: per_launch_ms / resident_ms,
        }
    }
}

/// The checked-in trajectory (`BENCH_raw_speed.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawSpeedReport {
    /// Device the trajectory was modeled on.
    pub device: String,
    /// Batch size.
    pub batch: usize,
    /// Matrix order.
    pub n: usize,
    /// Subdiagonals.
    pub kl: usize,
    /// Superdiagonals.
    pub ku: usize,
    /// Right-hand sides.
    pub nrhs: usize,
    /// `dgbtrf_batch` through the dispatcher.
    pub factor: EngineSample,
    /// `dgbtrs_batch` on the factored batch.
    pub solve: EngineSample,
    /// `dgbsv_batch` pinned to the interleaved layout.
    pub interleaved: EngineSample,
    /// One `GpuBackend` flush (resident number = steady state).
    pub serve_flush: EngineSample,
    /// One-time resident premium observed on the first serve flush
    /// (pool spin-up), in model milliseconds.
    pub serve_spinup_ms: f64,
}

fn band(batch: usize) -> BandBatch {
    // Diagonally dominant so every lane factors without a zero pivot.
    BandBatch::from_fn(batch, RAW_N, RAW_N, RAW_KL, RAW_KU, |id, m| {
        for j in 0..RAW_N {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                m.set(i, j, ((i * 7 + j * 3 + id) % 5) as f64 * 0.1 + 0.05);
            }
            let sum: f64 = (s..e).filter(|&i| i != j).map(|i| m.get(i, j).abs()).sum();
            m.set(j, j, sum + 1.0);
        }
    })
    .unwrap()
}

fn rhs(batch: usize) -> RhsBatch {
    RhsBatch::from_fn(batch, RAW_N, RAW_NRHS, |id, i, c| {
        ((id * 13 + c * 5 + i) as f64 * 0.29).sin()
    })
    .unwrap()
}

fn opts(engine: EngineMode) -> GbsvOptions {
    GbsvOptions {
        parallel: Some(ParallelPolicy::threads(4)),
        engine: Some(engine),
        ..Default::default()
    }
}

/// Run the full trajectory on the paper's flagship device.
pub fn measure() -> RawSpeedReport {
    let dev = DeviceSpec::h100_pcie();
    let a0 = band(RAW_BATCH);
    let b0 = rhs(RAW_BATCH);

    let factor_under = |engine: EngineMode| {
        let mut a = a0.clone();
        let mut piv = PivotBatch::new(RAW_BATCH, RAW_N, RAW_N);
        let mut info = InfoArray::new(RAW_BATCH);
        let rep = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &opts(engine)).unwrap();
        assert!(info.all_ok());
        (a, piv, rep.time.ms())
    };
    let (fac, piv, factor_cold) = factor_under(EngineMode::PerLaunch);
    let (fac_r, piv_r, factor_warm) = factor_under(EngineMode::Resident);
    assert_eq!(fac.data(), fac_r.data(), "engine mode changed the factors");
    assert_eq!(piv, piv_r);
    let factor = EngineSample::new(factor_cold, factor_warm);

    let solve_under = |engine: EngineMode| {
        let mut b = b0.clone();
        let rep = dgbtrs_batch(
            &dev,
            Transpose::No,
            &fac.layout(),
            fac.data(),
            &piv,
            &mut b,
            &opts(engine),
        )
        .unwrap();
        (b, rep.time.ms())
    };
    let (x_cold, solve_cold) = solve_under(EngineMode::PerLaunch);
    let (x_warm, solve_warm) = solve_under(EngineMode::Resident);
    assert_eq!(
        x_cold.data(),
        x_warm.data(),
        "engine mode changed the solve"
    );
    let solve = EngineSample::new(solve_cold, solve_warm);

    let interleaved_under = |engine: EngineMode| {
        let mut a = a0.clone();
        let mut b = b0.clone();
        let mut piv = PivotBatch::new(RAW_BATCH, RAW_N, RAW_N);
        let mut info = InfoArray::new(RAW_BATCH);
        let mut o = opts(engine);
        o.layout = MatrixLayout::Interleaved;
        let rep = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &o).unwrap();
        assert!(info.all_ok());
        (b, rep.time.ms())
    };
    let (xi_cold, inter_cold) = interleaved_under(EngineMode::PerLaunch);
    let (xi_warm, inter_warm) = interleaved_under(EngineMode::Resident);
    assert_eq!(xi_cold.data(), xi_warm.data());
    let interleaved = EngineSample::new(inter_cold, inter_warm);

    // Serve flush: same geometry through the backend. The resident
    // backend's first flush carries the one-time pool spin-up; steady
    // state is the second flush.
    let shape = ShapeKey::gbsv(RAW_N, RAW_KL, RAW_KU, RAW_NRHS);
    let stride = a0.matrix_stride();
    let reqs: Vec<SolveRequest> = (0..RAW_BATCH)
        .map(|k| SolveRequest {
            id: k as u64,
            shape,
            ab: a0.data()[k * stride..(k + 1) * stride].to_vec(),
            rhs: b0.block(k).to_vec(),
            submitted_s: 0.0,
            deadline_s: 1.0,
        })
        .collect();
    let group = || DeviceGroup::new(vec![dev.clone()]);
    let par = ParallelPolicy::threads(4);
    let cold_backend = GpuBackend::new(group(), par);
    let warm_backend = GpuBackend::new(group(), par).with_engine(EngineMode::Resident);
    let cold_flush = cold_backend.solve(&shape, &reqs).unwrap();
    let first_flush = warm_backend.solve(&shape, &reqs).unwrap();
    let steady_flush = warm_backend.solve(&shape, &reqs).unwrap();
    assert_eq!(cold_flush.x, first_flush.x, "engine mode changed the flush");
    assert_eq!(first_flush.x, steady_flush.x);
    let serve_flush = EngineSample::new(cold_flush.service_s * 1e3, steady_flush.service_s * 1e3);
    let serve_spinup_ms = (first_flush.service_s - steady_flush.service_s) * 1e3;

    RawSpeedReport {
        device: dev.name.clone(),
        batch: RAW_BATCH,
        n: RAW_N,
        kl: RAW_KL,
        ku: RAW_KU,
        nrhs: RAW_NRHS,
        factor,
        solve,
        interleaved,
        serve_flush,
        serve_spinup_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_is_internally_consistent() {
        let r = measure();
        println!("{}", serde_json::to_string_pretty(&r).unwrap());
        // Resident never loses: every launch trades cold for warm overhead.
        for (name, s) in [
            ("factor", r.factor),
            ("solve", r.solve),
            ("interleaved", r.interleaved),
            ("serve_flush", r.serve_flush),
        ] {
            assert!(
                s.speedup > 1.0,
                "{name}: resident {} not faster than per-launch {}",
                s.resident_ms,
                s.per_launch_ms
            );
        }
        assert!(r.serve_spinup_ms > 0.0, "first flush must carry spin-up");
        // The headline acceptance floor.
        assert!(
            r.serve_flush.speedup >= 1.3,
            "serve flush speedup {} below the 1.3x floor",
            r.serve_flush.speedup
        );
        // Determinism: a second measurement reproduces every bit.
        assert_eq!(r, measure());
    }
}
