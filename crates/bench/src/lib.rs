//! # gbatch-bench
//!
//! The benchmark harness that regenerates **every table and figure** of the
//! paper (see DESIGN.md's experiment index):
//!
//! | Experiment | Runner |
//! |---|---|
//! | Fig. 1 (batch vs streams, gemm/gemv)     | [`experiments::fig1`] |
//! | Fig. 3 (fully fused GBTRF)               | [`experiments::fig3`] |
//! | Fig. 5 + Table 1 (final GBTRF + speedups)| [`experiments::fig5`], [`experiments::table1`] |
//! | Fig. 7 (fused vs standard GBSV)          | [`experiments::fig7`] |
//! | Fig. 8 + Table 2 (GBSV, 1 RHS)           | [`experiments::fig8`], [`experiments::table_gbsv`] |
//! | Fig. 9 + Table 3 (GBSV, 10 RHS)          | [`experiments::fig9`], [`experiments::table_gbsv`] |
//! | §5.3 tuning sweep                        | [`experiments::tuning_sweep`] |
//! | §8 bandwidth probe                       | [`experiments::bandwidth`] |
//! | Extensions (JIT, mixed, Cholesky, vbatch, multi-GCD, streamed-GBSV counterfactual) | [`experiments::extensions`] |
//!
//! Times for the GPU platforms come from the simulator's analytic model;
//! CPU times from the calibrated Skylake model; numerics execute for real
//! and every run asserts residual correctness before reporting times.

pub mod calibration;
pub mod experiments;
pub mod platforms;
pub mod raw_speed;
pub mod report;

pub use calibration::{calibrate_layout, LayoutCalibration};
pub use platforms::Platforms;
pub use raw_speed::{EngineSample, RawSpeedReport};
pub use report::{Series, SpeedupSummary};
