//! The three evaluation platforms of the paper, bundled with their tuning
//! tables.

use gbatch_cpu::CpuSpec;
use gbatch_gpu_sim::registry;
use gbatch_gpu_sim::DeviceSpec;
use gbatch_tuning::{sweep_device, SweepConfig, TuningTable};

/// The paper's platform trio: H100-PCIe, MI250x (one GCD), Xeon 6140.
#[derive(Debug, Clone)]
pub struct Platforms {
    /// NVIDIA H100-PCIe descriptor.
    pub h100: DeviceSpec,
    /// AMD MI250x single-GCD descriptor.
    pub mi250x: DeviceSpec,
    /// Intel Xeon Gold 6140 descriptor.
    pub cpu: CpuSpec,
    /// Tuning table from the H100 sweep.
    pub h100_tuning: TuningTable,
    /// Tuning table from the MI250x sweep.
    pub mi250x_tuning: TuningTable,
}

impl Platforms {
    /// Build the trio, running the model-cost tuning sweeps for the band
    /// shapes of interest (fast: pure arithmetic, no numerics).
    pub fn tuned(max_band: usize) -> Self {
        let h100 = registry::device(registry::H100_PCIE).expect("catalog entry");
        let mi250x = registry::device(registry::MI250X_GCD).expect("catalog entry");
        let cfg = SweepConfig {
            max_band,
            ..Default::default()
        };
        let h100_tuning = sweep_device(&h100, &cfg);
        let mi250x_tuning = sweep_device(&mi250x, &cfg);
        Platforms {
            h100,
            mi250x,
            cpu: CpuSpec::xeon_gold_6140(),
            h100_tuning,
            mi250x_tuning,
        }
    }

    /// The two GPUs with their tables, iterable.
    pub fn gpus(&self) -> [(&DeviceSpec, &TuningTable); 2] {
        [
            (&self.h100, &self.h100_tuning),
            (&self.mi250x, &self.mi250x_tuning),
        ]
    }

    /// Tuned window parameters for a device (falls back to nearest band).
    pub fn window_params(
        &self,
        dev: &DeviceSpec,
        kl: usize,
        ku: usize,
    ) -> Option<gbatch_kernels::window::WindowParams> {
        let table = if dev.name == self.h100.name {
            &self.h100_tuning
        } else {
            &self.mi250x_tuning
        };
        table
            .lookup(kl, ku)
            .map(|e| gbatch_kernels::window::WindowParams {
                nb: e.nb,
                threads: e.threads,
                ..Default::default()
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuned_platforms_cover_paper_bands() {
        let p = Platforms::tuned(10);
        assert!(p.window_params(&p.h100, 2, 3).is_some());
        assert!(p.window_params(&p.mi250x, 10, 7).is_some());
        // Out-of-grid shapes fall back to the nearest tuned one.
        assert!(p.window_params(&p.h100, 30, 30).is_some());
        assert_eq!(p.gpus().len(), 2);
    }
}
