//! Experiment runners — one per figure/table of the paper.
//!
//! Numerics always execute for real (and are residual-checked) on an
//! execution batch of up to [`EXEC_BATCH`] matrices; the reported time is
//! the modeled time of the *full* paper batch (default 1000), obtained by
//! re-pricing the measured per-block counters at the paper's grid size.
//! This keeps the repro binary fast without ever reporting a time for
//! numerics that did not run.

use crate::platforms::Platforms;
use crate::report::{Figure, Series, SpeedupSummary};
use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch_core::residual::backward_error;
use gbatch_cpu::{cpu_gbsv_batch, cpu_gbtrf_batch, CpuSpec};
use gbatch_gpu_sim::stream::simulate_streams;
use gbatch_gpu_sim::timing::estimate_aggregate;
use gbatch_gpu_sim::{DeviceSpec, KernelCounters, LaunchConfig};
use gbatch_kernels::dispatch::{dgbsv_batch, dgbtrf_batch, FactorAlgo, GbsvOptions, MatrixLayout};
use gbatch_kernels::fused::{fused_smem_bytes, gbtrf_batch_fused, FusedParams};
use gbatch_kernels::gemm::{gemm_block_counters, gemm_gflops, gemm_smem_bytes};
use gbatch_kernels::gemv::{gemv_block_counters, gemv_gflops, measure_sustained_bandwidth};
use gbatch_kernels::window::WindowParams;
use gbatch_workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Matrices actually executed per measurement (timing is re-priced to the
/// full paper batch).
pub const EXEC_BATCH: usize = 48;
/// The paper's batch size ("a batch of 1,000 matrices").
pub const PAPER_BATCH: usize = 1000;
/// The paper's two band shapes.
pub const PAPER_BANDS: [(usize, usize); 2] = [(2, 3), (10, 7)];
/// Size sweep matching the figures' x-range (up to 1024).
pub const PAPER_SIZES: [usize; 12] = [32, 64, 96, 128, 192, 256, 320, 448, 512, 640, 832, 1024];
/// Size sweep of the fused-GBSV comparison (Figure 7, small systems).
pub const FIG7_SIZES: [usize; 8] = [16, 32, 48, 64, 80, 96, 128, 160];

fn seeded(n: usize, kl: usize, ku: usize, nrhs: usize) -> StdRng {
    StdRng::seed_from_u64((n as u64) << 32 | (kl as u64) << 16 | (ku as u64) << 8 | nrhs as u64)
}

/// Re-price a launch at the paper's grid size: counters scale linearly in
/// the grid (uniform batches), the critical path stays per-block.
fn reprice(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    agg: &KernelCounters,
    exec_grid: usize,
    target_grid: usize,
) -> Option<f64> {
    let occ = gbatch_gpu_sim::engine::validate(dev, cfg).ok()?;
    let scale = target_grid as f64 / exec_grid as f64;
    let scaled = KernelCounters {
        global_read: (agg.global_read as f64 * scale) as u64,
        global_write: (agg.global_write as f64 * scale) as u64,
        flops: (agg.flops as f64 * scale) as u64,
        ..*agg
    };
    Some(estimate_aggregate(dev, &occ, target_grid, &scaled).ms())
}

/// GPU GBTRF measurement: runs the requested design on a seeded random
/// batch, validates one solve, returns the modeled full-batch time in ms
/// (`None` = the kernel cannot run, e.g. fused out of shared memory).
pub fn gbtrf_gpu_ms(
    dev: &DeviceSpec,
    n: usize,
    kl: usize,
    ku: usize,
    algo: FactorAlgo,
    window: Option<WindowParams>,
) -> Option<f64> {
    let mut rng = seeded(n, kl, ku, 0);
    let mut a = random_band_batch(&mut rng, EXEC_BATCH, n, kl, ku, BandDistribution::Uniform);
    let orig = a.matrix(0).to_owned();
    let l = a.layout();
    let mut piv = PivotBatch::new(EXEC_BATCH, n, n);
    let mut info = InfoArray::new(EXEC_BATCH);
    // The paper experiments measure the column-major designs; the layout
    // dimension has its own bench (`benches/interleaved_layout.rs`).
    let opts = GbsvOptions {
        algo,
        window,
        layout: MatrixLayout::ColumnMajor,
        ..Default::default()
    };

    // Validate the forced algorithm can launch before running.
    let (cfg, time_cfg) = match algo {
        FactorAlgo::Fused => {
            let p = FusedParams::auto(dev, kl);
            let c = LaunchConfig::new(p.threads, fused_smem_bytes::<f64>(l.ldab, n) as u32);
            (c, c)
        }
        _ => {
            let p = window.unwrap_or_else(|| WindowParams::auto(dev, kl));
            let c = LaunchConfig::new(
                p.threads,
                gbatch_kernels::window::window_smem_bytes::<f64>(&l, p.nb) as u32,
            );
            (c, c)
        }
    };
    gbatch_gpu_sim::engine::validate(dev, &cfg).ok()?;

    let rep = dgbtrf_batch(dev, &mut a, &mut piv, &mut info, &opts).ok()?;
    assert!(info.all_ok(), "factorization failed: {:?}", info.failures());

    // Residual spot check through a solve on matrix 0.
    let x_true: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
    let mut b = vec![0.0; n];
    gbatch_core::blas2::gbmv(1.0, orig.as_ref(), &x_true, 0.0, &mut b);
    let b0 = b.clone();
    gbatch_core::gbtrs::gbtrs(
        gbatch_core::gbtrs::Transpose::No,
        &l,
        a.matrix(0).data,
        piv.pivots(0),
        &mut b,
        n,
        1,
    );
    let berr = backward_error(orig.as_ref(), &b, &b0);
    assert!(berr < 1e-10, "n={n} kl={kl} ku={ku}: berr {berr:.2e}");

    // Multi-launch designs (reference) report their summed time directly —
    // per-launch overhead dominates and is batch-size independent;
    // single-launch designs are re-priced to the paper batch.
    if rep.launches > 2 {
        Some(rep.time.ms())
    } else {
        // Re-run pricing from the counters is not available through
        // BatchReport; recompute via a direct launch report. For
        // single-kernel paths the dispatcher's launch is the whole cost, so
        // we re-measure through the underlying kernel for exact counters.
        let mut a2 = random_band_batch(
            &mut seeded(n, kl, ku, 1),
            EXEC_BATCH,
            n,
            kl,
            ku,
            BandDistribution::Uniform,
        );
        let mut piv2 = PivotBatch::new(EXEC_BATCH, n, n);
        let mut info2 = InfoArray::new(EXEC_BATCH);
        let raw = match algo {
            FactorAlgo::Fused => gbtrf_batch_fused(
                dev,
                &mut a2,
                &mut piv2,
                &mut info2,
                FusedParams::auto(dev, kl),
            )
            .ok()?,
            _ => gbatch_kernels::window::gbtrf_batch_window(
                dev,
                &mut a2,
                &mut piv2,
                &mut info2,
                window.unwrap_or_else(|| WindowParams::auto(dev, kl)),
            )
            .ok()?,
        };
        reprice(dev, &time_cfg, &raw.counters, EXEC_BATCH, PAPER_BATCH)
    }
}

/// CPU GBTRF model time for the full paper batch, in ms (numerics execute
/// on the exec batch for validation).
pub fn gbtrf_cpu_ms(cpu: &CpuSpec, n: usize, kl: usize, ku: usize) -> f64 {
    let mut rng = seeded(n, kl, ku, 2);
    let mut a = random_band_batch(
        &mut rng,
        EXEC_BATCH.min(16),
        n,
        kl,
        ku,
        BandDistribution::Uniform,
    );
    let mut piv = PivotBatch::new(a.batch(), n, n);
    let mut info = InfoArray::new(a.batch());
    cpu_gbtrf_batch(cpu, &mut a, &mut piv, &mut info);
    assert!(info.all_ok());
    let l = a.layout();
    cpu.batch_time(
        PAPER_BATCH,
        gbatch_cpu::model::gbtrf_flops(&l),
        gbatch_cpu::model::gbtrf_bytes(&l),
    ) * 1e3
}

/// GPU GBSV measurement (auto dispatch), modeled full-batch ms.
pub fn gbsv_gpu_ms(
    dev: &DeviceSpec,
    n: usize,
    kl: usize,
    ku: usize,
    nrhs: usize,
    window: Option<WindowParams>,
    allow_fused_gbsv: bool,
) -> Option<f64> {
    let mut rng = seeded(n, kl, ku, nrhs);
    let mut a = random_band_batch(&mut rng, EXEC_BATCH, n, kl, ku, BandDistribution::Uniform);
    let orig = a.clone();
    let mut b = gbatch_workloads::rhs::manufactured_rhs(&mut rng, EXEC_BATCH, n, nrhs);
    let b0 = b.clone();
    let mut piv = PivotBatch::new(EXEC_BATCH, n, n);
    let mut info = InfoArray::new(EXEC_BATCH);
    let opts = GbsvOptions {
        window,
        allow_fused_gbsv: Some(allow_fused_gbsv),
        // Paper pipeline: column-major designs only (see above).
        layout: MatrixLayout::ColumnMajor,
        ..Default::default()
    };
    let rep = dgbsv_batch(dev, &mut a, &mut piv, &mut b, &mut info, &opts).ok()?;
    assert!(info.all_ok());
    for id in [0, EXEC_BATCH - 1] {
        for c in 0..nrhs {
            let x = &b.block(id)[c * n..c * n + n];
            let r0 = &b0.block(id)[c * n..c * n + n];
            let berr = backward_error(orig.matrix(id), x, r0);
            assert!(
                berr < 1e-10,
                "gbsv berr {berr:.2e} (n={n} kl={kl} ku={ku} nrhs={nrhs})"
            );
        }
    }
    // The dispatcher's modeled time is for EXEC_BATCH; scale the traffic
    // linearly by re-running cost at the paper grid. For the (at most two)
    // launches involved the time scales with the wave count, which is
    // linear in the batch once the device is full — measure directly at
    // both grids and extrapolate.
    let small = rep.time.ms();
    // Second measurement at half the exec batch to recover the linear
    // coefficient: time(batch) ~= a + b * batch.
    let half = EXEC_BATCH / 2;
    let mut a2 = BandBatch::from_fn(half, n, n, kl, ku, |id, m| {
        let src = orig.matrix(id);
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                m.set(i, j, src.get(i, j));
            }
        }
    })
    .ok()?;
    let mut b2 = RhsBatch::from_fn(half, n, nrhs, |id, i, c| b0.get(id, i, c)).ok()?;
    let mut piv2 = PivotBatch::new(half, n, n);
    let mut info2 = InfoArray::new(half);
    let rep2 = dgbsv_batch(dev, &mut a2, &mut piv2, &mut b2, &mut info2, &opts).ok()?;
    let slope = (small - rep2.time.ms()) / (EXEC_BATCH - half) as f64;
    let intercept = small - slope * EXEC_BATCH as f64;
    Some(intercept + slope * PAPER_BATCH as f64)
}

/// CPU GBSV model time, full batch, ms.
pub fn gbsv_cpu_ms(cpu: &CpuSpec, n: usize, kl: usize, ku: usize, nrhs: usize) -> f64 {
    let mut rng = seeded(n, kl, ku, nrhs + 100);
    let mut a = random_band_batch(&mut rng, 8, n, kl, ku, BandDistribution::Uniform);
    let mut b = gbatch_workloads::rhs::manufactured_rhs(&mut rng, 8, n, nrhs);
    let mut piv = PivotBatch::new(8, n, n);
    let mut info = InfoArray::new(8);
    cpu_gbsv_batch(cpu, &mut a, &mut piv, &mut b, &mut info);
    assert!(info.all_ok());
    let l = a.layout();
    let flops = gbatch_cpu::model::gbtrf_flops(&l) + gbatch_cpu::model::gbtrs_flops(&l, nrhs);
    let bytes = gbatch_cpu::model::gbtrf_bytes(&l) + gbatch_cpu::model::gbtrs_bytes(&l, nrhs);
    cpu.batch_time(PAPER_BATCH, flops, bytes) * 1e3
}

/// Figure 1: batched vs 16-stream gemm (top) and gemv (bottom), batch 500,
/// achieved Gflop/s.
pub fn fig1(p: &Platforms) -> Vec<Figure> {
    let dev = &p.h100;
    let batch = 500;
    let sizes: Vec<usize> = (1..=16).map(|k| k * 32).collect();
    let mut out = Vec::new();
    for kernel in ["dgemm", "dgemv"] {
        let mut batched = Series::new(format!("batch-{kernel}"));
        let mut streamed = Series::new(format!("streamed-{kernel} (16)"));
        for &n in &sizes {
            let (cfg, per_block) = if kernel == "dgemm" {
                (
                    LaunchConfig::new(256, gemm_smem_bytes() as u32),
                    gemm_block_counters(n, 256),
                )
            } else {
                (LaunchConfig::new(128, 0), gemv_block_counters(n, 128))
            };
            let occ = gbatch_gpu_sim::engine::validate(dev, &cfg).expect("cfg");
            let t_batch = gbatch_gpu_sim::timing::estimate(dev, &occ, batch, &per_block);
            let t_stream = simulate_streams(dev, &cfg, batch, 16, &per_block);
            let (gb, gs) = if kernel == "dgemm" {
                (
                    gemm_gflops(n, batch, t_batch.secs()),
                    gemm_gflops(n, batch, t_stream.secs()),
                )
            } else {
                (
                    gemv_gflops(n, batch, t_batch.secs()),
                    gemv_gflops(n, batch, t_stream.secs()),
                )
            };
            batched.push(n, gb);
            streamed.push(n, gs);
        }
        let mut f = Figure::with_unit(
            format!("Figure 1 ({kernel}): batched vs 16-stream, batch {batch}"),
            "n",
            "GF/s",
        );
        f.series.push(batched);
        f.series.push(streamed);
        out.push(f);
    }
    out
}

/// Figure 3: fully fused GBTRF across sizes, both bands, three platforms.
pub fn fig3(p: &Platforms) -> Vec<Figure> {
    PAPER_BANDS
        .iter()
        .map(|&(kl, ku)| {
            let mut f = Figure::new(
                format!("Figure 3: fully fused GBTRF, (kl,ku)=({kl},{ku}), batch {PAPER_BATCH}"),
                "n",
            );
            for (dev, _) in p.gpus() {
                let mut s = Series::new(dev.name.clone());
                for &n in &PAPER_SIZES {
                    match gbtrf_gpu_ms(dev, n, kl, ku, FactorAlgo::Fused, None) {
                        Some(ms) => s.push(n, ms),
                        None => s.push_fail(n),
                    }
                }
                f.series.push(s);
            }
            let mut c = Series::new("mkl+openmp (modeled)");
            for &n in &PAPER_SIZES {
                c.push(n, gbtrf_cpu_ms(&p.cpu, n, kl, ku));
            }
            f.series.push(c);
            f
        })
        .collect()
}

/// Figure 5: final (dispatched, tuned) GBTRF across sizes.
pub fn fig5(p: &Platforms) -> Vec<Figure> {
    PAPER_BANDS
        .iter()
        .map(|&(kl, ku)| {
            let mut f = Figure::new(
                format!("Figure 5: final GBTRF, (kl,ku)=({kl},{ku}), batch {PAPER_BATCH}"),
                "n",
            );
            for (dev, _) in p.gpus() {
                let params = p.window_params(dev, kl, ku);
                let mut s = Series::new(dev.name.clone());
                for &n in &PAPER_SIZES {
                    // §5.4: fused for small sizes, window otherwise.
                    let algo = if n <= 64 {
                        FactorAlgo::Fused
                    } else {
                        FactorAlgo::Window
                    };
                    match gbtrf_gpu_ms(dev, n, kl, ku, algo, params) {
                        Some(ms) => s.push(n, ms),
                        None => s.push_fail(n),
                    }
                }
                f.series.push(s);
            }
            let mut c = Series::new("mkl+openmp (modeled)");
            for &n in &PAPER_SIZES {
                c.push(n, gbtrf_cpu_ms(&p.cpu, n, kl, ku));
            }
            f.series.push(c);
            f
        })
        .collect()
}

/// Table 1: GBTRF speedups vs the CPU, per band, per GPU.
pub fn table1(p: &Platforms) -> Vec<(String, SpeedupSummary)> {
    speedup_table(fig5(p))
}

/// Figure 7: fused GBSV vs standard factor+solve, small systems, 1 RHS.
pub fn fig7(p: &Platforms) -> Vec<Figure> {
    PAPER_BANDS
        .iter()
        .map(|&(kl, ku)| {
            let mut f = Figure::new(
                format!("Figure 7: fused vs standard GBSV, (kl,ku)=({kl},{ku}), 1 RHS"),
                "n",
            );
            for (dev, _) in p.gpus() {
                let params = p.window_params(dev, kl, ku);
                let mut fused = Series::new(format!("Fused - {}", dev.name));
                let mut std = Series::new(format!("Std - {}", dev.name));
                for &n in &FIG7_SIZES {
                    // Fused path: force a generous cutoff so it covers the
                    // whole figure range (the paper plots both well past
                    // the production cutoff of 64).
                    let mut rng = seeded(n, kl, ku, 31);
                    let mut a = random_band_batch(
                        &mut rng,
                        EXEC_BATCH,
                        n,
                        kl,
                        ku,
                        BandDistribution::Uniform,
                    );
                    let mut b = gbatch_workloads::rhs::manufactured_rhs(&mut rng, EXEC_BATCH, n, 1);
                    let mut piv = PivotBatch::new(EXEC_BATCH, n, n);
                    let mut info = InfoArray::new(EXEC_BATCH);
                    match gbatch_kernels::gbsv_fused::gbsv_batch_fused(
                        dev,
                        &mut a,
                        &mut piv,
                        &mut b,
                        &mut info,
                        FusedParams::auto(dev, kl).threads,
                        gbatch_gpu_sim::ParallelPolicy::Serial,
                    ) {
                        Ok(rep) => {
                            let cfg = LaunchConfig::new(
                                FusedParams::auto(dev, kl).threads.max((kl + 1) as u32),
                                gbatch_kernels::gbsv_fused::gbsv_smem_bytes::<f64>(&a.layout(), 1)
                                    as u32,
                            );
                            match reprice(dev, &cfg, &rep.counters, EXEC_BATCH, PAPER_BATCH) {
                                Some(ms) => fused.push(n, ms),
                                None => fused.push_fail(n),
                            }
                        }
                        Err(_) => fused.push_fail(n),
                    }
                    match gbsv_gpu_ms(dev, n, kl, ku, 1, params, false) {
                        Some(ms) => std.push(n, ms),
                        None => std.push_fail(n),
                    }
                }
                f.series.push(fused);
                f.series.push(std);
            }
            f
        })
        .collect()
}

/// Figures 8/9: final GBSV across sizes, `nrhs` right-hand sides.
pub fn fig_gbsv(p: &Platforms, nrhs: usize) -> Vec<Figure> {
    PAPER_BANDS
        .iter()
        .map(|&(kl, ku)| {
            let mut f = Figure::new(
                format!(
                    "Figure {}: final GBSV, (kl,ku)=({kl},{ku}), #RHS={nrhs}, batch {PAPER_BATCH}",
                    if nrhs == 1 { 8 } else { 9 }
                ),
                "n",
            );
            for (dev, _) in p.gpus() {
                let params = p.window_params(dev, kl, ku);
                let mut s = Series::new(dev.name.clone());
                for &n in &PAPER_SIZES {
                    match gbsv_gpu_ms(dev, n, kl, ku, nrhs, params, true) {
                        Some(ms) => s.push(n, ms),
                        None => s.push_fail(n),
                    }
                }
                f.series.push(s);
            }
            let mut c = Series::new("mkl+openmp (modeled)");
            for &n in &PAPER_SIZES {
                c.push(n, gbsv_cpu_ms(&p.cpu, n, kl, ku, nrhs));
            }
            f.series.push(c);
            f
        })
        .collect()
}

/// Figure 8 (single RHS).
pub fn fig8(p: &Platforms) -> Vec<Figure> {
    fig_gbsv(p, 1)
}

/// Figure 9 (ten RHS).
pub fn fig9(p: &Platforms) -> Vec<Figure> {
    fig_gbsv(p, 10)
}

/// Tables 2/3: GBSV speedups vs the CPU.
pub fn table_gbsv(p: &Platforms, nrhs: usize) -> Vec<(String, SpeedupSummary)> {
    speedup_table(fig_gbsv(p, nrhs))
}

/// §8 bandwidth probe: sustained bandwidth of both GPUs via a large gemv.
pub fn bandwidth(p: &Platforms) -> Vec<(String, f64)> {
    [&p.h100, &p.mi250x]
        .iter()
        .map(|d| {
            let bw = measure_sustained_bandwidth(d, 16384).expect("probe");
            (d.name.clone(), bw)
        })
        .collect()
}

/// §5.3 tuning sweep summary for the paper's band shapes plus a sample of
/// the grid.
pub fn tuning_sweep(p: &Platforms) -> String {
    let mut out = String::new();
    for (dev, table) in p.gpus() {
        out.push_str(&format!(
            "# {} — calibrated n={}, batch={}\n",
            dev.name, 512, 1000
        ));
        for &(kl, ku) in &[(2, 3), (10, 7), (0, 0), (1, 1), (4, 4), (8, 8)] {
            if let Some(e) = table.lookup(kl, ku) {
                out.push_str(&format!(
                    "  gbtrf (kl={kl:>2}, ku={ku:>2}) -> nb={:>3}, threads={:>3}, predicted {:.4} ms\n",
                    e.nb, e.threads, e.predicted_ms
                ));
            }
        }
        // Solve-kernel tuning (Section 9's "more robust tuning framework").
        let cfg = gbatch_tuning::SweepConfig::default();
        for &(kl, ku, nrhs) in &[
            (2usize, 3usize, 1usize),
            (2, 3, 10),
            (10, 7, 1),
            (10, 7, 10),
        ] {
            if let Some(e) = gbatch_tuning::sweep::sweep_solve_band(dev, &cfg, kl, ku, nrhs) {
                out.push_str(&format!(
                    "  gbtrs (kl={kl:>2}, ku={ku:>2}, nrhs={nrhs:>2}) -> nb={:>3}, threads={:>3}, predicted {:.4} ms\n",
                    e.nb, e.threads, e.predicted_ms
                ));
            }
        }
    }
    out
}

/// Beyond-the-paper extensions report: specialized ("JIT") kernels,
/// mixed-precision GBSV, SPD Cholesky, non-uniform batches, multi-GCD.
pub fn extensions(p: &Platforms) -> String {
    use gbatch_core::layout::BandLayout;
    use gbatch_core::vbatch::{VarBandBatch, VarPivots};
    use gbatch_gpu_sim::multi::DeviceGroup;
    let mut out = String::new();

    // 1. Specialized register kernels vs the generic window (both GPUs).
    out.push_str(
        "# Band-specialized (JIT-style) kernels vs generic window, (kl,ku)=(2,3), n=256\n",
    );
    for (dev, _) in p.gpus() {
        let mut rng = seeded(256, 2, 3, 41);
        let a0 = random_band_batch(&mut rng, EXEC_BATCH, 256, 2, 3, BandDistribution::Uniform);
        let mut a1 = a0.clone();
        let mut p1 = PivotBatch::new(EXEC_BATCH, 256, 256);
        let mut i1 = InfoArray::new(EXEC_BATCH);
        let spec =
            gbatch_kernels::specialized::specialized_gbtrf(dev, &mut a1, &mut p1, &mut i1, 32)
                .expect("compiled shape")
                .expect("launch");
        let mut a2 = a0.clone();
        let mut p2 = PivotBatch::new(EXEC_BATCH, 256, 256);
        let mut i2 = InfoArray::new(EXEC_BATCH);
        let gen = gbatch_kernels::window::gbtrf_batch_window(
            dev,
            &mut a2,
            &mut p2,
            &mut i2,
            p.window_params(dev, 2, 3)
                .unwrap_or_else(|| WindowParams::auto(dev, 2)),
        )
        .expect("launch");
        assert_eq!(a1.data(), a2.data());
        out.push_str(&format!(
            "  {:<26} specialized {:.4} ms vs window {:.4} ms -> {:.2}x\n",
            dev.name,
            spec.time.ms(),
            gen.time.ms(),
            gen.time.secs() / spec.time.secs()
        ));
    }

    // 2. Mixed precision: occupancy + time on the capacity-starved MI250x.
    out.push_str("# Mixed-precision GBSV (f32 factor + f64 refinement), (2,3), n=96, 1 RHS\n");
    for (dev, _) in p.gpus() {
        let mut rng = seeded(96, 2, 3, 43);
        let a = random_band_batch(
            &mut rng,
            EXEC_BATCH,
            96,
            2,
            3,
            BandDistribution::DiagonallyDominant { margin: 1.0 },
        );
        let b0 = gbatch_workloads::rhs::manufactured_rhs(&mut rng, EXEC_BATCH, 96, 1);
        let mut b = b0.clone();
        let mut piv = PivotBatch::new(EXEC_BATCH, 96, 96);
        let mut info = InfoArray::new(EXEC_BATCH);
        let (mrep, status) =
            gbatch_kernels::mixed::msgbsv_batch_fused(dev, &a, &mut piv, &mut b, &mut info, 32)
                .expect("launch");
        let converged = status
            .iter()
            .filter(|s| matches!(s, gbatch_kernels::mixed::MixedStatus::Converged(_)))
            .count();
        let mut a64 = a.clone();
        let mut b64 = b0.clone();
        let mut piv64 = PivotBatch::new(EXEC_BATCH, 96, 96);
        let mut info64 = InfoArray::new(EXEC_BATCH);
        let frep = dgbsv_batch(
            dev,
            &mut a64,
            &mut piv64,
            &mut b64,
            &mut info64,
            &GbsvOptions::default(),
        )
        .expect("launch");
        out.push_str(&format!(
            "  {:<26} mixed {:.4} ms ({} of {} converged) vs f64 fused {:.4} ms\n",
            dev.name,
            mrep.time.ms(),
            converged,
            EXEC_BATCH,
            frep.time.ms()
        ));
    }

    // 3. SPD Cholesky vs LU on an XGC-like symmetric batch.
    out.push_str("# SPD Cholesky vs LU, n=192, kd=9 (XGC-like)\n");
    for (dev, _) in p.gpus() {
        let a0 = gbatch_kernels::pbtrf::PbBatch::from_fn(EXEC_BATCH, 192, 9, |id, l, ab| {
            let mut v = 0.17 + id as f64 * 1e-3;
            for j in 0..192 {
                let kn = 9usize.min(191 - j);
                let mut sum = 0.0;
                for k in 1..=kn {
                    v = (v * 2.3 + 0.083) % 1.0;
                    ab[l.idx(j + k, j)] = v - 0.5;
                    sum += (v - 0.5f64).abs();
                }
                ab[l.idx(j, j)] = 2.0 * sum + 2.0;
            }
        });
        let mut a = a0.clone();
        let mut info = InfoArray::new(EXEC_BATCH);
        let chol = gbatch_kernels::pbtrf::pbtrf_batch_window(dev, &mut a, &mut info, 8, 32)
            .expect("launch");
        let mut g = BandBatch::from_fn(EXEC_BATCH, 192, 192, 9, 9, |id, m| {
            let l = a0.layout();
            let ab = a0.matrix(id);
            for j in 0..192 {
                let kn = 9usize.min(191 - j);
                m.set(j, j, ab[l.idx(j, j)]);
                for k in 1..=kn {
                    m.set(j + k, j, ab[l.idx(j + k, j)]);
                    m.set(j, j + k, ab[l.idx(j + k, j)]);
                }
            }
        })
        .unwrap();
        let mut piv = PivotBatch::new(EXEC_BATCH, 192, 192);
        let mut ginfo = InfoArray::new(EXEC_BATCH);
        let lu = gbatch_kernels::window::gbtrf_batch_window(
            dev,
            &mut g,
            &mut piv,
            &mut ginfo,
            p.window_params(dev, 9, 9)
                .unwrap_or_else(|| WindowParams::auto(dev, 9)),
        )
        .expect("launch");
        out.push_str(&format!(
            "  {:<26} Cholesky {:.4} ms vs LU {:.4} ms -> {:.2}x\n",
            dev.name,
            chol.time.ms(),
            lu.time.ms(),
            lu.time.secs() / chol.time.secs()
        ));
    }

    // 4. Non-uniform batch vs per-size launches.
    out.push_str("# Non-uniform batch (one launch) vs per-size launches, (2,3)\n");
    {
        let dev = &p.h100;
        let sizes = [(24usize, 64usize), (16, 128), (8, 256)];
        let layouts: Vec<BandLayout> = sizes
            .iter()
            .flat_map(|&(count, n)| {
                std::iter::repeat_with(move || BandLayout::factor(n, n, 2, 3).unwrap()).take(count)
            })
            .collect();
        let mut v = 0.59f64;
        let a0 = VarBandBatch::from_fn(layouts, |_, m| {
            let n = m.layout.n;
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.1 + 0.033) % 1.0;
                    m.set(i, j, v - 0.5 + if i == j { 2.0 } else { 0.0 });
                }
            }
        })
        .unwrap();
        let mut a = a0.clone();
        let mut piv = VarPivots::for_batch(&a);
        let mut info = InfoArray::new(a.batch());
        let joint = gbatch_kernels::vbatch::dgbtrf_vbatch(dev, &mut a, &mut piv, &mut info, 8)
            .expect("launch");
        let mut separate = 0.0;
        for &(count, n) in &sizes {
            let mut rng = seeded(n, 2, 3, 47);
            let mut ua = random_band_batch(&mut rng, count, n, 2, 3, BandDistribution::Uniform);
            let mut upiv = PivotBatch::new(count, n, n);
            let mut uinfo = InfoArray::new(count);
            separate += dgbtrf_batch(dev, &mut ua, &mut upiv, &mut uinfo, &GbsvOptions::default())
                .expect("launch")
                .time
                .ms();
        }
        out.push_str(&format!(
            "  {:<26} joint {:.4} ms vs separate {:.4} ms\n",
            dev.name,
            joint.time.ms(),
            separate
        ));
    }

    // 5. The streamed counterfactual: the paper notes a stream-based
    // batched GBSV "is not possible since the band matrix processing is
    // absent from the single matrix API" — our simulator can price the
    // hypothetical anyway: one fused-GBSV kernel per matrix over 16
    // streams vs the real batched kernel.
    out.push_str("# Streamed-GBSV counterfactual (16 streams), (2,3), n=64, 1 RHS\n");
    for (dev, _) in p.gpus() {
        let n = 64usize;
        let mut rng = seeded(n, 2, 3, 53);
        let mut a = random_band_batch(&mut rng, EXEC_BATCH, n, 2, 3, BandDistribution::Uniform);
        let mut b = gbatch_workloads::rhs::manufactured_rhs(&mut rng, EXEC_BATCH, n, 1);
        let mut piv = PivotBatch::new(EXEC_BATCH, n, n);
        let mut info = InfoArray::new(EXEC_BATCH);
        let rep = gbatch_kernels::gbsv_fused::gbsv_batch_fused(
            dev,
            &mut a,
            &mut piv,
            &mut b,
            &mut info,
            FusedParams::auto(dev, 2).threads,
            gbatch_gpu_sim::ParallelPolicy::Serial,
        )
        .expect("launch");
        let l = a.layout();
        let cfg = LaunchConfig::new(
            FusedParams::auto(dev, 2).threads,
            gbatch_kernels::gbsv_fused::gbsv_smem_bytes::<f64>(&l, 1) as u32,
        );
        let batched = reprice(dev, &cfg, &rep.counters, EXEC_BATCH, PAPER_BATCH).expect("price");
        // Per-kernel counters = aggregate / grid (uniform batch).
        let per_block = KernelCounters {
            global_read: rep.counters.global_read / EXEC_BATCH as u64,
            global_write: rep.counters.global_write / EXEC_BATCH as u64,
            flops: rep.counters.flops / EXEC_BATCH as u64,
            ..rep.counters
        };
        let streamed = simulate_streams(dev, &cfg, PAPER_BATCH, 16, &per_block);
        out.push_str(&format!(
            "  {:<26} batched {batched:.4} ms vs hypothetical streamed {:.4} ms ({:.0}x)\n",
            dev.name,
            streamed.ms(),
            streamed.ms() / batched
        ));
    }

    // 6. Multi-GCD MI250x: visible once the batch needs multiple waves
    // (a wave-saturating configuration — big batch, wide band).
    out.push_str("# Full MI250x (2 GCDs) vs a single GCD, GBTRF (10,7), n=512, batch 8000\n");
    {
        let big_batch = 8 * PAPER_BATCH;
        let group = DeviceGroup::mi250x_full();
        let params = p
            .window_params(&p.mi250x, 10, 7)
            .unwrap_or_else(|| WindowParams::auto(&p.mi250x, 10));
        let l = BandLayout::factor(512, 512, 10, 7).unwrap();
        let cfg = LaunchConfig::new(
            params.threads,
            gbatch_kernels::window::window_smem_bytes::<f64>(&l, params.nb) as u32,
        );
        // Measure one partition's counters once and re-price per grid size.
        let mut rng = seeded(512, 10, 7, 3);
        let mut a = random_band_batch(&mut rng, EXEC_BATCH, 512, 10, 7, BandDistribution::Uniform);
        let mut piv = PivotBatch::new(EXEC_BATCH, 512, 512);
        let mut info = InfoArray::new(EXEC_BATCH);
        let raw = gbatch_kernels::window::gbtrf_batch_window(
            &p.mi250x, &mut a, &mut piv, &mut info, params,
        )
        .expect("launch");
        let price = |dev: &DeviceSpec, grid: usize| {
            let occ = gbatch_gpu_sim::engine::validate(dev, &cfg).expect("cfg");
            let scale = grid as f64 / EXEC_BATCH as f64;
            let scaled = KernelCounters {
                global_read: (raw.counters.global_read as f64 * scale) as u64,
                global_write: (raw.counters.global_write as f64 * scale) as u64,
                flops: (raw.counters.flops as f64 * scale) as u64,
                ..raw.counters
            };
            estimate_aggregate(dev, &occ, grid, &scaled)
        };
        let single = price(&p.mi250x, big_batch);
        let split = group
            .run_split::<std::convert::Infallible>(big_batch, |dev, lo, hi| Ok(price(dev, hi - lo)))
            .unwrap();
        out.push_str(&format!(
            "  single GCD {:.4} ms vs 2 GCDs {:.4} ms -> {:.2}x\n",
            single.ms(),
            split.ms(),
            single.secs() / split.secs()
        ));
    }
    out
}

/// Multi-GCD scaling figure: the full MI250x (both GCDs, split via
/// [`DeviceGroup::partition`](gbatch_gpu_sim::multi::DeviceGroup)) against
/// a single GCD on batched GBSV over the XGC-like shape, across a batch
/// sweep. Numerics execute for real at every point (each partition runs
/// its own `dgbsv_batch` dispatch) and are residual-checked; serialized to
/// `results/multi_gcd.json` by the `repro` binary.
pub fn multi_gcd(p: &Platforms) -> Figure {
    use gbatch_gpu_sim::multi::DeviceGroup;
    let (n, kl, ku, nrhs) = (192usize, 9usize, 9usize, 1usize);
    let mut fig = Figure::new(
        "Extension: full MI250x (2 GCDs) vs single GCD, GBSV (9,9), n=192, 1 RHS",
        "batch",
    );
    let mut single = Series::new("MI250x single GCD");
    let mut dual = Series::new("MI250x 2 GCDs (split batch)");
    let group = DeviceGroup::mi250x_full();
    let opts = GbsvOptions {
        window: p.window_params(&p.mi250x, kl, ku),
        ..Default::default()
    };
    for &batch in &[500usize, 1000, 2000, 4000, 8000] {
        let mut rng = seeded(n, kl, ku, nrhs);
        let a0 = random_band_batch(
            &mut rng,
            batch,
            n,
            kl,
            ku,
            BandDistribution::DiagonallyDominant { margin: 1.0 },
        );
        let b0 = gbatch_workloads::rhs::manufactured_rhs(&mut rng, batch, n, nrhs);

        // Single GCD: one dispatch over the whole batch.
        let mut a = a0.clone();
        let mut b = b0.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let t1 = dgbsv_batch(&p.mi250x, &mut a, &mut piv, &mut b, &mut info, &opts)
            .expect("launch")
            .time;
        assert!(info.all_ok(), "diagonally dominant batch factorizes");
        let berr = backward_error(a0.matrix(0), b.block(0), b0.block(0));
        assert!(berr < 1e-12, "residual check: berr {berr:e}");

        // Both GCDs: the bandwidth-proportional split, one dispatch per
        // partition, makespan of the group.
        let stride = a0.matrix_stride();
        let t2 = group
            .run_split(batch, |dev, lo, hi| {
                let count = hi - lo;
                let mut pa = BandBatch::zeros_with_layout(a0.layout(), count).unwrap();
                pa.data_mut()
                    .copy_from_slice(&a0.data()[lo * stride..hi * stride]);
                let mut pb = RhsBatch::zeros(count, n, nrhs).unwrap();
                pb.data_mut()
                    .copy_from_slice(&b0.data()[lo * b0.block_stride()..hi * b0.block_stride()]);
                let mut ppiv = PivotBatch::new(count, n, n);
                let mut pinfo = InfoArray::new(count);
                let rep = dgbsv_batch(dev, &mut pa, &mut ppiv, &mut pb, &mut pinfo, &opts)?;
                assert!(pinfo.all_ok());
                // The split must reproduce the single-GCD solution
                // bitwise: identical kernels on identical lanes.
                assert_eq!(
                    pb.data(),
                    &b.data()[lo * b.block_stride()..hi * b.block_stride()],
                    "partition [{lo}, {hi}) diverged from the unsplit solve"
                );
                Ok::<_, gbatch_gpu_sim::LaunchError>(rep.time)
            })
            .expect("launch");

        single.push(batch, t1.ms());
        dual.push(batch, t2.ms());
    }
    fig.series.push(single);
    fig.series.push(dual);
    fig
}

/// Turn GPU-vs-CPU figures into the paper's speedup tables. The CPU series
/// must be the last series of each figure.
fn speedup_table(figs: Vec<Figure>) -> Vec<(String, SpeedupSummary)> {
    let mut rows = Vec::new();
    for f in figs {
        let cpu = f.series.last().expect("cpu series").clone();
        for s in &f.series[..f.series.len() - 1] {
            if let Some(sum) = SpeedupSummary::from_series(&cpu, s) {
                rows.push((format!("{} | {}", f.title, s.label), sum));
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platforms() -> Platforms {
        // Small tuning grid keeps the tests quick; the paper bands are
        // covered by nearest-neighbour lookup.
        Platforms::tuned(3)
    }

    #[test]
    fn gbtrf_measurements_are_positive_and_validated() {
        let p = platforms();
        let ms = gbtrf_gpu_ms(&p.h100, 64, 2, 3, FactorAlgo::Fused, None).unwrap();
        assert!(ms > 0.0);
        let ms = gbtrf_gpu_ms(&p.h100, 128, 2, 3, FactorAlgo::Window, None).unwrap();
        assert!(ms > 0.0);
        assert!(gbtrf_cpu_ms(&p.cpu, 64, 2, 3) > 0.0);
    }

    #[test]
    fn fused_fails_gracefully_past_shared_memory() {
        let p = platforms();
        // (10, 7): ldab = 28; MI250x fits 65536 / (28 * 8) = 292 columns.
        assert!(gbtrf_gpu_ms(&p.mi250x, 256, 10, 7, FactorAlgo::Fused, None).is_some());
        assert!(gbtrf_gpu_ms(&p.mi250x, 320, 10, 7, FactorAlgo::Fused, None).is_none());
        // The H100 still runs it.
        assert!(gbtrf_gpu_ms(&p.h100, 320, 10, 7, FactorAlgo::Fused, None).is_some());
    }

    #[test]
    fn gbsv_measurement_scales_with_rhs() {
        let p = platforms();
        let t1 = gbsv_gpu_ms(&p.h100, 96, 2, 3, 1, None, true).unwrap();
        let t10 = gbsv_gpu_ms(&p.h100, 96, 2, 3, 10, None, true).unwrap();
        assert!(t10 > t1, "10 RHS should cost more: {t1} vs {t10}");
        let c1 = gbsv_cpu_ms(&p.cpu, 96, 2, 3, 1);
        let c10 = gbsv_cpu_ms(&p.cpu, 96, 2, 3, 10);
        assert!(c10 > 1.5 * c1);
    }

    #[test]
    fn fig1_produces_batch_advantage() {
        let p = platforms();
        let figs = fig1(&p);
        assert_eq!(figs.len(), 2);
        for f in &figs {
            let batched = &f.series[0];
            let streamed = &f.series[1];
            let n = 32;
            assert!(
                batched.at(n).unwrap() > 3.0 * streamed.at(n).unwrap(),
                "{}: batch should be much faster at n={n}",
                f.title
            );
        }
    }

    #[test]
    fn multi_gcd_splits_agree_and_scale() {
        let p = platforms();
        let fig = multi_gcd(&p);
        assert_eq!(fig.series.len(), 2);
        let single = &fig.series[0];
        let dual = &fig.series[1];
        for x in fig.xs() {
            let (t1, t2) = (single.at(x).unwrap(), dual.at(x).unwrap());
            assert!(t2 < t1, "batch {x}: 2 GCDs ({t2} ms) vs 1 ({t1} ms)");
        }
        // At the largest batch the split should approach 2x.
        let big = *fig.xs().last().unwrap();
        let speedup = single.at(big).unwrap() / dual.at(big).unwrap();
        assert!(speedup > 1.6, "large-batch multi-GCD speedup {speedup:.2}x");
    }

    #[test]
    fn bandwidth_probe_matches_paper() {
        let p = platforms();
        let bw = bandwidth(&p);
        let ratio = bw[0].1 / bw[1].1;
        assert!(
            (ratio - 1.47).abs() < 0.12,
            "H100/MI250x bandwidth ratio {ratio:.2}"
        );
    }
}
