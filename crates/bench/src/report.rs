//! Result containers and plain-text/JSON formatting for the experiment
//! runners.

use serde::{Deserialize, Serialize};

/// One line series of a figure: label + `(x, milliseconds)` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `"H100 GPU"`.
    pub label: String,
    /// `(matrix size, time ms)` points; `None` marks a failed run (the
    /// paper's fused kernel "failing to run" on large matrices).
    pub points: Vec<(usize, Option<f64>)>,
}

impl Series {
    /// New empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a successful measurement.
    pub fn push(&mut self, x: usize, ms: f64) {
        self.points.push((x, Some(ms)));
    }

    /// Append a failed run.
    pub fn push_fail(&mut self, x: usize) {
        self.points.push((x, None));
    }

    /// Time at a given x, if present and successful.
    pub fn at(&self, x: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| *px == x)
            .and_then(|(_, v)| *v)
    }
}

/// The paper's speedup-summary rows (Tables 1-3): min/max/avg of
/// `baseline / candidate` over the common sweep points.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedupSummary {
    /// Minimum speedup across the sweep.
    pub min: f64,
    /// Maximum speedup across the sweep.
    pub max: f64,
    /// Arithmetic mean speedup across the sweep.
    pub avg: f64,
}

impl SpeedupSummary {
    /// Summarize `baseline / candidate` over the points both series share.
    pub fn from_series(baseline: &Series, candidate: &Series) -> Option<SpeedupSummary> {
        let mut ratios = Vec::new();
        for &(x, base) in &baseline.points {
            if let (Some(b), Some(c)) = (base, candidate.at(x)) {
                if c > 0.0 {
                    ratios.push(b / c);
                }
            }
        }
        if ratios.is_empty() {
            return None;
        }
        let (mut lo, mut hi, mut sum) = (f64::MAX, f64::MIN, 0.0);
        for &r in &ratios {
            lo = lo.min(r);
            hi = hi.max(r);
            sum += r;
        }
        Some(SpeedupSummary {
            min: lo,
            max: hi,
            avg: sum / ratios.len() as f64,
        })
    }
}

impl std::fmt::Display for SpeedupSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "min {:.2}x | max {:.2}x | avg {:.2}x",
            self.min, self.max, self.avg
        )
    }
}

/// A complete figure: title plus its series, printable as an aligned table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure {
    /// Figure title (e.g. `"Figure 5: final GBTRF, (kl,ku)=(2,3)"`).
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Unit of the series values (e.g. `"ms"` or `"GF/s"`).
    pub unit: String,
    /// Data series.
    pub series: Vec<Series>,
}

impl Figure {
    /// New figure with values in milliseconds.
    pub fn new(title: impl Into<String>, xlabel: impl Into<String>) -> Self {
        Self::with_unit(title, xlabel, "ms")
    }

    /// New figure with an explicit value unit.
    pub fn with_unit(
        title: impl Into<String>,
        xlabel: impl Into<String>,
        unit: impl Into<String>,
    ) -> Self {
        Figure {
            title: title.into(),
            xlabel: xlabel.into(),
            unit: unit.into(),
            series: Vec::new(),
        }
    }

    /// All x values across the series, sorted and deduplicated.
    pub fn xs(&self) -> Vec<usize> {
        let mut xs: Vec<usize> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_unstable();
        xs.dedup();
        xs
    }

    /// Render as an aligned plain-text table (the repro binary's output).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        out.push_str(&format!("{:>8}", self.xlabel));
        for s in &self.series {
            out.push_str(&format!(" {:>18}", s.label));
        }
        out.push('\n');
        for x in self.xs() {
            out.push_str(&format!("{x:>8}"));
            for s in &self.series {
                match s.at(x) {
                    Some(v) => out.push_str(&format!(" {v:>15.4} {u}", u = self.unit)),
                    None => {
                        if s.points.iter().any(|(px, v)| *px == x && v.is_none()) {
                            out.push_str(&format!(" {:>18}", "FAIL"));
                        } else {
                            out.push_str(&format!(" {:>18}", "-"));
                        }
                    }
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> Figure {
        let mut f = Figure::new("test", "n");
        let mut a = Series::new("gpu");
        a.push(32, 1.0);
        a.push(64, 2.0);
        a.push_fail(128);
        let mut b = Series::new("cpu");
        b.push(32, 3.0);
        b.push(64, 5.0);
        b.push(128, 9.0);
        f.series.push(a);
        f.series.push(b);
        f
    }

    #[test]
    fn series_lookup() {
        let f = fig();
        assert_eq!(f.series[0].at(64), Some(2.0));
        assert_eq!(f.series[0].at(128), None);
        assert_eq!(f.series[0].at(999), None);
    }

    #[test]
    fn speedup_summary_over_common_points() {
        let f = fig();
        let s = SpeedupSummary::from_series(&f.series[1], &f.series[0]).unwrap();
        // Ratios: 3.0 and 2.5 (the failed 128 point is excluded).
        assert!((s.min - 2.5).abs() < 1e-12);
        assert!((s.max - 3.0).abs() < 1e-12);
        assert!((s.avg - 2.75).abs() < 1e-12);
        assert!(s.to_string().contains("avg 2.75x"));
    }

    #[test]
    fn empty_summary_is_none() {
        let a = Series::new("a");
        let b = Series::new("b");
        assert!(SpeedupSummary::from_series(&a, &b).is_none());
    }

    #[test]
    fn table_renders_fail_and_values() {
        let t = fig().to_table();
        assert!(t.contains("FAIL"));
        assert!(t.contains("1.0000 ms"));
        assert!(t.contains("## test"));
    }

    #[test]
    fn xs_sorted_unique() {
        assert_eq!(fig().xs(), vec![32, 64, 128]);
    }

    #[test]
    fn json_round_trip() {
        let f = fig();
        let s = serde_json::to_string(&f).unwrap();
        let back: Figure = serde_json::from_str(&s).unwrap();
        assert_eq!(f, back);
    }
}
