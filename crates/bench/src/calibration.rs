//! Layout-crossover calibration: fit the [`CrossoverModel`] scale
//! constants from *executed* dispatch runs and persist the table the
//! dispatch decision documents (`results/layout_calibration.json`).
//!
//! The simulated engine prices every launch through the same analytic
//! machinery the model uses, so the fitted scales land at unity — the
//! point of the table is (a) to prove that on the calibration grid, (b) to
//! record the measured crossover batch sizes for the docs, and (c) to give
//! a real-hardware port a place to drop measured constants.

use gbatch_core::batch::{InfoArray, PivotBatch};
use gbatch_core::{BandBatch, BandLayout};
use gbatch_gpu_sim::registry;
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::cost::CrossoverModel;
use gbatch_kernels::dispatch::{dgbtrf_batch, GbsvOptions, MatrixLayout};
use gbatch_kernels::interleaved::InterleavedParams;
use serde::{Deserialize, Serialize};

/// One grid point of the calibration run: measured (executed, modeled)
/// time per forced layout next to the model's prediction and verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationPoint {
    /// Device name (`h100_pcie` / `mi250x_gcd` spec label).
    pub device: String,
    /// Matrix order.
    pub n: usize,
    /// Sub-diagonals.
    pub kl: usize,
    /// Super-diagonals.
    pub ku: usize,
    /// Batch size.
    pub batch: usize,
    /// Executed column-major dispatch time (ms).
    pub column_ms: f64,
    /// Executed interleaved dispatch time (ms), conversion included.
    pub interleaved_ms: f64,
    /// Model-predicted interleaved time (ms), conversion included.
    pub predicted_interleaved_ms: f64,
    /// Layout the executed times favour.
    pub measured_winner: String,
    /// Layout `MatrixLayout::Auto` actually picked.
    pub auto_pick: String,
    /// Executed time of the auto pick divided by the best executed time
    /// (the ISSUE bound: never above 1.10 on this grid).
    pub auto_regret: f64,
}

/// The persisted calibration table: fitted scales + the grid evidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutCalibration {
    /// Fitted multiplier on the predicted interleaved time (geometric mean
    /// of executed / predicted over the grid).
    pub interleaved_scale: f64,
    /// Fitted multiplier on the predicted column-major time.
    pub column_scale: f64,
    /// Fraction of grid points where the model's winner matches the
    /// executed winner.
    pub agreement: f64,
    /// Largest `auto_regret` across the grid.
    pub max_auto_regret: f64,
    /// Per-point evidence.
    pub points: Vec<CalibrationPoint>,
}

impl LayoutCalibration {
    /// The [`CrossoverModel`] this table fits.
    pub fn model(&self) -> CrossoverModel {
        CrossoverModel {
            interleaved_scale: self.interleaved_scale,
            column_scale: self.column_scale,
            include_conversion: true,
        }
    }

    /// Serialize to pretty JSON (the `results/layout_calibration.json`
    /// format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("calibration serializes")
    }

    /// Parse the persisted table.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// The calibration grid: small-n/large-batch (interleaved territory),
/// mid-size bands (column territory), and band shapes near the measured
/// crossover.
const GRID: [(usize, usize, usize, usize); 6] = [
    (16, 1, 2, 2048),
    (24, 1, 1, 64),
    (96, 2, 3, 40),
    (200, 6, 6, 16),
    (256, 8, 8, 256),
    (96, 40, 40, 8),
];

fn deterministic_batch(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
    let mut v = 0.29f64;
    BandBatch::from_fn(batch, n, n, kl, ku, |_, m| {
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                v = (v * 1.93 + 0.17).fract();
                m.set(i, j, v - 0.5 + if i == j { 2.5 } else { 0.0 });
            }
        }
    })
    .expect("non-empty calibration batch")
}

fn run_ms(dev: &DeviceSpec, a0: &BandBatch, layout: MatrixLayout) -> (f64, MatrixLayout) {
    let l = a0.layout();
    let mut a = a0.clone();
    let mut piv = PivotBatch::new(a0.batch(), l.m, l.n);
    let mut info = InfoArray::new(a0.batch());
    let opts = GbsvOptions {
        layout,
        ..Default::default()
    };
    let rep = dgbtrf_batch(dev, &mut a, &mut piv, &mut info, &opts).expect("calibration launch");
    let picked = if rep.algo == gbatch_kernels::dispatch::ChosenAlgo::Interleaved {
        MatrixLayout::Interleaved
    } else {
        MatrixLayout::ColumnMajor
    };
    (rep.time.secs() * 1e3, picked)
}

fn predicted_interleaved_ms(dev: &DeviceSpec, l: &BandLayout, batch: usize) -> f64 {
    let params = InterleavedParams::auto(dev, l, 0);
    CrossoverModel::default()
        .interleaved_time::<f64>(dev, l, batch, 0, &params)
        .map(|t| t.secs() * 1e3)
        .unwrap_or(f64::INFINITY)
}

/// Run the calibration grid on both paper devices and fit the scales.
pub fn calibrate_layout() -> LayoutCalibration {
    let devices = [
        registry::device(registry::H100_PCIE).expect("catalog entry"),
        registry::device(registry::MI250X_GCD).expect("catalog entry"),
    ];
    let mut points = Vec::new();
    let mut log_ratio_sum = 0.0;
    let mut log_ratio_count = 0usize;
    let mut agree = 0usize;
    let mut max_auto_regret: f64 = 0.0;
    for dev in &devices {
        for &(n, kl, ku, batch) in &GRID {
            let a0 = deterministic_batch(batch, n, kl, ku);
            let (column_ms, _) = run_ms(dev, &a0, MatrixLayout::ColumnMajor);
            let (interleaved_ms, _) = run_ms(dev, &a0, MatrixLayout::Interleaved);
            let (auto_ms, auto_pick) = run_ms(dev, &a0, MatrixLayout::Auto);
            let predicted = predicted_interleaved_ms(dev, &a0.layout(), batch);
            if predicted.is_finite() && interleaved_ms > 0.0 {
                log_ratio_sum += (interleaved_ms / predicted).ln();
                log_ratio_count += 1;
            }
            let measured_winner = if interleaved_ms < column_ms {
                MatrixLayout::Interleaved
            } else {
                MatrixLayout::ColumnMajor
            };
            if measured_winner == auto_pick {
                agree += 1;
            }
            let best_ms = column_ms.min(interleaved_ms);
            let auto_regret = auto_ms / best_ms;
            max_auto_regret = max_auto_regret.max(auto_regret);
            points.push(CalibrationPoint {
                device: dev.name.to_string(),
                n,
                kl,
                ku,
                batch,
                column_ms,
                interleaved_ms,
                predicted_interleaved_ms: predicted,
                measured_winner: format!("{measured_winner:?}"),
                auto_pick: format!("{auto_pick:?}"),
                auto_regret,
            });
        }
    }
    let interleaved_scale = if log_ratio_count > 0 {
        (log_ratio_sum / log_ratio_count as f64).exp()
    } else {
        1.0
    };
    LayoutCalibration {
        interleaved_scale,
        column_scale: 1.0,
        agreement: agree as f64 / points.len() as f64,
        max_auto_regret,
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The simulated engine executes exactly what the model predicts, so
    /// the fit must land at unity, the model must agree with the measured
    /// winner everywhere, and auto must never lose by more than the ISSUE
    /// bound (10%) on the calibration grid.
    #[test]
    fn calibration_fits_unity_and_auto_is_never_much_slower() {
        let cal = calibrate_layout();
        assert!(
            (cal.interleaved_scale - 1.0).abs() < 1e-9,
            "interleaved_scale {} must be unity on the simulated engine",
            cal.interleaved_scale
        );
        assert!(
            (cal.agreement - 1.0).abs() < f64::EPSILON,
            "model/measurement winner disagreement: {:#?}",
            cal.points
        );
        assert!(
            cal.max_auto_regret <= 1.10,
            "auto picked a layout more than 10% slower: {:#?}",
            cal.points
        );
        let round: LayoutCalibration = LayoutCalibration::from_json(&cal.to_json()).unwrap();
        assert_eq!(round, cal, "JSON round-trip");
    }
}
