//! `calibrate` — fit the two free latency knobs of each simulated GPU
//! (`sync/trip` scale and `work_scale`) so that the modeled GBTRF speedups
//! against the modeled CPU land on the paper's Table 1. The winning values
//! are baked into `DeviceSpec::{h100_pcie, mi250x_gcd}`; this tool exists
//! to document and reproduce that fit.
//!
//! Paper targets (Table 1, avg speedup vs CPU):
//!   H100:  (2,3) -> 3.07x   (10,7) -> 3.56x
//!   MI250x:(2,3) -> 1.88x   (10,7) -> 1.16x

use gbatch_bench::experiments::{gbtrf_cpu_ms, gbtrf_gpu_ms};
use gbatch_cpu::CpuSpec;
use gbatch_gpu_sim::registry;
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::dispatch::FactorAlgo;
use gbatch_kernels::window::WindowParams;
use gbatch_tuning::{sweep_band, SweepConfig};

const SIZES: [usize; 4] = [128, 256, 512, 1024];

fn avg_speedup(dev: &DeviceSpec, cpu: &CpuSpec, kl: usize, ku: usize) -> f64 {
    let cfg = SweepConfig::default();
    let params = sweep_band(dev, &cfg, kl, ku).map(|e| WindowParams {
        nb: e.nb,
        threads: e.threads,
        ..Default::default()
    });
    let mut acc = 0.0;
    let mut count = 0;
    for &n in &SIZES {
        let algo = if n <= 64 {
            FactorAlgo::Fused
        } else {
            FactorAlgo::Window
        };
        if let Some(g) = gbtrf_gpu_ms(dev, n, kl, ku, algo, params) {
            acc += gbtrf_cpu_ms(cpu, n, kl, ku) / g;
            count += 1;
        }
    }
    acc / count.max(1) as f64
}

fn fit(base: &DeviceSpec, cpu: &CpuSpec, target23: f64, target107: f64) -> (f64, f64, f64) {
    let mut best = (1.0, 1.0, f64::MAX);
    for lat_scale in [2.0, 2.25, 2.5, 2.75, 3.0, 3.25, 3.5] {
        for work in [
            100.0, 120.0, 140.0, 150.0, 160.0, 175.0, 190.0, 200.0, 220.0,
        ] {
            let mut dev = base.clone();
            dev.sync_cycles *= lat_scale;
            dev.smem_latency_cycles *= lat_scale;
            dev.work_scale = work;
            let s23 = avg_speedup(&dev, cpu, 2, 3);
            let s107 = avg_speedup(&dev, cpu, 10, 7);
            let err = ((s23 / target23).ln().powi(2) + (s107 / target107).ln().powi(2)).sqrt();
            if err < best.2 {
                best = (lat_scale, work, err);
                eprintln!(
                    "  {}: lat x{lat_scale:.1} work x{work:.0} -> (2,3) {s23:.2}x (10,7) {s107:.2}x err {err:.3}",
                    base.name
                );
            }
        }
    }
    best
}

fn main() {
    let cpu = CpuSpec::xeon_gold_6140();
    println!("fitting H100 (targets 3.07x / 3.56x)...");
    let h100 = registry::device(registry::H100_PCIE).expect("catalog entry");
    let h = fit(&h100, &cpu, 3.07, 3.56);
    println!(
        "H100 best: lat_scale {:.2}, work_scale {:.1}, err {:.4}",
        h.0, h.1, h.2
    );
    println!("fitting MI250x (targets 1.88x / 1.16x)...");
    let mi250x = registry::device(registry::MI250X_GCD).expect("catalog entry");
    let m = fit(&mi250x, &cpu, 1.88, 1.16);
    println!(
        "MI250x best: lat_scale {:.2}, work_scale {:.1}, err {:.4}",
        m.0, m.1, m.2
    );

    println!("calibrating layout crossover (CrossoverModel scales)...");
    let cal = gbatch_bench::calibrate_layout();
    for p in &cal.points {
        println!(
            "  {} n {} (kl,ku)=({},{}) batch {}: column {:.4} ms, \
             interleaved {:.4} ms (model {:.4} ms) -> {} (auto: {}, regret {:.3})",
            p.device,
            p.n,
            p.kl,
            p.ku,
            p.batch,
            p.column_ms,
            p.interleaved_ms,
            p.predicted_interleaved_ms,
            p.measured_winner,
            p.auto_pick,
            p.auto_regret,
        );
    }
    println!(
        "layout fit: interleaved_scale {:.6}, column_scale {:.6}, \
         winner agreement {:.0}%, max auto regret {:.3}",
        cal.interleaved_scale,
        cal.column_scale,
        cal.agreement * 100.0,
        cal.max_auto_regret
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/layout_calibration.json"
    );
    std::fs::write(path, cal.to_json() + "\n").expect("write calibration table");
    println!("wrote {path}");
}
