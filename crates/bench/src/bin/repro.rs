//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//! ```text
//! repro [fig1|fig3|fig5|table1|fig7|fig8|table2|fig9|table3|tuning|bandwidth|extensions|multigcd|raw_speed|all]
//! ```
//!
//! `raw_speed` regenerates the checked-in perf trajectory
//! `BENCH_raw_speed.json` at the repository root (see
//! [`gbatch_bench::raw_speed`]); the release perf-gate test replays it.
//!
//! Times printed for the GPUs come from the simulator's analytic model;
//! CPU times from the calibrated Skylake model. Every measurement executes
//! the numerics for real and asserts residual correctness first.

use gbatch_bench::experiments as exp;
use gbatch_bench::Platforms;
use std::io::Write;

fn print_figures(out: &mut impl Write, figs: &[gbatch_bench::report::Figure]) {
    for f in figs {
        writeln!(out, "{}", f.to_table()).unwrap();
    }
}

fn print_speedups(
    out: &mut impl Write,
    title: &str,
    rows: &[(String, gbatch_bench::SpeedupSummary)],
) {
    writeln!(out, "## {title}").unwrap();
    for (label, s) in rows {
        writeln!(out, "  {label}\n      {s}").unwrap();
    }
    writeln!(out).unwrap();
}

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let stdout = std::io::stdout();
    let mut out = stdout.lock();

    let run = |name: &str| what == "all" || what == name;

    if run("raw_speed") {
        eprintln!("running raw_speed trajectory...");
        let r = gbatch_bench::raw_speed::measure();
        writeln!(out, "## Raw speed trajectory ({})", r.device).unwrap();
        for (name, s) in [
            ("factor", r.factor),
            ("solve", r.solve),
            ("interleaved", r.interleaved),
            ("serve_flush", r.serve_flush),
        ] {
            writeln!(
                out,
                "  {name:>12}: per-launch {:>9.4} ms | resident {:>9.4} ms | {:.3}x",
                s.per_launch_ms, s.resident_ms, s.speedup
            )
            .unwrap();
        }
        writeln!(out, "  one-time serve spin-up: {:.4} ms", r.serve_spinup_ms).unwrap();
        writeln!(
            out,
            "  factor cache: cold {:.4} ms | warm (GBTRS-only) {:.4} ms | {:.3}x (resident)",
            r.factor_cache.cold.resident_ms,
            r.factor_cache.warm.resident_ms,
            r.factor_cache.warm_speedup
        )
        .unwrap();
        writeln!(
            out,
            "  repeated-operator mini-soak hit rate: {:.4}",
            r.factor_cache.soak_hit_rate
        )
        .unwrap();
        writeln!(
            out,
            "  spike split regime (n = {}, kl = ku = {}):",
            r.spike.n, r.spike.kl
        )
        .unwrap();
        for line in &r.spike.lines {
            writeln!(
                out,
                "    {}: unsplit {:>9.4} ms | {}",
                line.precision,
                line.unsplit_ms,
                line.points
                    .iter()
                    .map(|p| format!("P={} {:.3}x", p.parts, p.speedup))
                    .collect::<Vec<_>>()
                    .join(" | ")
            )
            .unwrap();
        }
        writeln!(
            out,
            "  fleet ({} vs {}, {} adversarial requests):",
            r.fleet.composition, r.fleet.baseline, r.fleet.requests
        )
        .unwrap();
        writeln!(
            out,
            "    makespan {:.3} ms vs {:.3} ms | throughput {:.0} vs {:.0} req/s | {:.3}x",
            r.fleet.fleet_makespan_ms,
            r.fleet.baseline_makespan_ms,
            r.fleet.fleet_throughput_rps,
            r.fleet.baseline_throughput_rps,
            r.fleet.speedup
        )
        .unwrap();
        writeln!(
            out,
            "    utilization spread {:.1}% | {} sheds",
            r.fleet.utilization_spread * 100.0,
            r.fleet.sheds
        )
        .unwrap();
        writeln!(out).unwrap();
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_raw_speed.json");
        let json = serde_json::to_string_pretty(&r).unwrap();
        std::fs::write(path, json + "\n").unwrap();
        eprintln!("wrote {path}");
        if what == "raw_speed" {
            return;
        }
    }

    eprintln!("building platforms (tuning sweep)...");
    let p = Platforms::tuned(12);

    if run("bandwidth") {
        writeln!(out, "## Section 8: sustained bandwidth probe (large dgemv)").unwrap();
        for (name, bw) in exp::bandwidth(&p) {
            writeln!(out, "  {name}: {:.2} TB/s", bw / 1e12).unwrap();
        }
        writeln!(out).unwrap();
    }
    if run("fig1") {
        eprintln!("running fig1...");
        print_figures(&mut out, &exp::fig1(&p));
    }
    if run("fig3") {
        eprintln!("running fig3...");
        print_figures(&mut out, &exp::fig3(&p));
    }
    if run("fig5") || run("table1") {
        eprintln!("running fig5/table1...");
        let figs = exp::fig5(&p);
        if run("fig5") {
            print_figures(&mut out, &figs);
        }
        if run("table1") {
            print_speedups(
                &mut out,
                "Table 1: batch GBTRF speedup vs CPU",
                &exp::table1(&p),
            );
        }
    }
    if run("fig7") {
        eprintln!("running fig7...");
        print_figures(&mut out, &exp::fig7(&p));
    }
    if run("fig8") || run("table2") {
        eprintln!("running fig8/table2...");
        let figs = exp::fig8(&p);
        if run("fig8") {
            print_figures(&mut out, &figs);
        }
        if run("table2") {
            print_speedups(
                &mut out,
                "Table 2: GBSV speedup vs CPU (1 RHS)",
                &exp::table_gbsv(&p, 1),
            );
        }
    }
    if run("fig9") || run("table3") {
        eprintln!("running fig9/table3...");
        let figs = exp::fig9(&p);
        if run("fig9") {
            print_figures(&mut out, &figs);
        }
        if run("table3") {
            print_speedups(
                &mut out,
                "Table 3: GBSV speedup vs CPU (10 RHS)",
                &exp::table_gbsv(&p, 10),
            );
        }
    }
    if run("extensions") {
        eprintln!("running extensions...");
        writeln!(out, "## Extensions beyond the paper (see EXPERIMENTS.md)").unwrap();
        writeln!(out, "{}", exp::extensions(&p)).unwrap();
    }
    if run("multigcd") || run("extensions") {
        eprintln!("running multi-GCD batch sweep...");
        let fig = exp::multi_gcd(&p);
        writeln!(out, "{}", fig.to_table()).unwrap();
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/multi_gcd.json");
        let json = serde_json::to_string_pretty(&fig).unwrap();
        std::fs::write(path, json + "\n").unwrap();
        eprintln!("wrote {path}");
    }
    if run("tuning") {
        writeln!(
            out,
            "## Section 5.3: tuning sweep (best nb/threads per band)"
        )
        .unwrap();
        writeln!(out, "{}", exp::tuning_sweep(&p)).unwrap();
    }
}
