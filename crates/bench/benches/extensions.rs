//! Benches for the beyond-the-paper extensions: band-specialized
//! ("JIT") kernels, mixed-precision GBSV, SPD Cholesky, and non-uniform
//! batches. Host wall-clock of the real numerics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbatch_core::batch::{InfoArray, PivotBatch, RhsBatch};
use gbatch_core::layout::BandLayout;
use gbatch_core::vbatch::{VarBandBatch, VarPivots};
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::mixed::msgbsv_batch_fused;
use gbatch_kernels::pbtrf::{pbtrf_batch_window, PbBatch};
use gbatch_kernels::specialized::specialized_gbtrf;
use gbatch_kernels::vbatch::dgbtrf_vbatch;
use gbatch_kernels::window::{gbtrf_batch_window, WindowParams};
use gbatch_workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_specialized(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku) = (32usize, 128usize, 2usize, 3usize);
    let mut rng = StdRng::seed_from_u64(1);
    let a0 = random_band_batch(&mut rng, batch, n, kl, ku, BandDistribution::Uniform);
    let mut group = c.benchmark_group("ext_specialized_vs_window");
    group.bench_function("specialized_2_3", |b| {
        b.iter_batched(
            || {
                (
                    a0.clone(),
                    PivotBatch::new(batch, n, n),
                    InfoArray::new(batch),
                )
            },
            |(mut a, mut piv, mut info)| {
                specialized_gbtrf(&dev, &mut a, &mut piv, &mut info, 32)
                    .unwrap()
                    .unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("window_2_3", |b| {
        b.iter_batched(
            || {
                (
                    a0.clone(),
                    PivotBatch::new(batch, n, n),
                    InfoArray::new(batch),
                )
            },
            |(mut a, mut piv, mut info)| {
                gbtrf_batch_window(
                    &dev,
                    &mut a,
                    &mut piv,
                    &mut info,
                    WindowParams {
                        nb: 8,
                        threads: 32,
                        ..Default::default()
                    },
                )
                .unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_mixed(c: &mut Criterion) {
    let dev = DeviceSpec::mi250x_gcd();
    let (batch, n) = (24usize, 96usize);
    let mut rng = StdRng::seed_from_u64(2);
    let a = random_band_batch(
        &mut rng,
        batch,
        n,
        2,
        3,
        BandDistribution::DiagonallyDominant { margin: 1.0 },
    );
    let b0 = RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id + i) as f64 * 0.21).sin()).unwrap();
    c.bench_function("ext_mixed_precision_gbsv", |bench| {
        bench.iter_batched(
            || {
                (
                    b0.clone(),
                    PivotBatch::new(batch, n, n),
                    InfoArray::new(batch),
                )
            },
            |(mut b, mut piv, mut info)| {
                msgbsv_batch_fused(&dev, &a, &mut piv, &mut b, &mut info, 32).unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

fn bench_cholesky(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kd) = (24usize, 192usize, 9usize);
    let a0 = PbBatch::from_fn(batch, n, kd, |id, l, ab| {
        let mut v = 0.31 + id as f64 * 1e-3;
        for j in 0..n {
            let kn = kd.min(n - 1 - j);
            let mut sum = 0.0;
            for k in 1..=kn {
                v = (v * 2.1 + 0.07).fract();
                ab[l.idx(j + k, j)] = v - 0.5;
                sum += (v - 0.5).abs();
            }
            ab[l.idx(j, j)] = 2.0 * sum + 2.0;
        }
    });
    c.bench_function("ext_cholesky_window", |bench| {
        bench.iter_batched(
            || (a0.clone(), InfoArray::new(batch)),
            |(mut a, mut info)| pbtrf_batch_window(&dev, &mut a, &mut info, 8, 32).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });
}

fn bench_vbatch(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let layouts: Vec<BandLayout> = (0..24)
        .map(|k| {
            let n = 32 + (k % 4) * 48;
            BandLayout::factor(n, n, 2, 3).unwrap()
        })
        .collect();
    let mut v = 0.41f64;
    let a0 = VarBandBatch::from_fn(layouts, |_, m| {
        let n = m.layout.n;
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            for i in s..e {
                v = (v * 1.9 + 0.077).fract();
                m.set(i, j, v - 0.5 + if i == j { 2.0 } else { 0.0 });
            }
        }
    })
    .unwrap();
    let mut group = c.benchmark_group("ext_nonuniform_batch");
    for nb in [4usize, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(nb), &nb, |bench, &nb| {
            bench.iter_batched(
                || {
                    (
                        a0.clone(),
                        VarPivots::for_batch(&a0),
                        InfoArray::new(a0.batch()),
                    )
                },
                |(mut a, mut piv, mut info)| {
                    dgbtrf_vbatch(&dev, &mut a, &mut piv, &mut info, nb).unwrap()
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Bounded-time criterion config: the numerics are deterministic and the
/// host box is a single core, so small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = bench_specialized, bench_mixed, bench_cholesky, bench_vbatch);
criterion_main!(benches);
