//! §5.3 bench: cost of the offline tuning machinery itself — per-band sweep
//! and table lookup (the paper's "post-processing phase").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbatch_gpu_sim::DeviceSpec;
use gbatch_tuning::{sweep_band, sweep_device, SweepConfig, TuningTable};

fn bench_tuning(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let cfg = SweepConfig::default();

    let mut group = c.benchmark_group("tuning_sweep");
    for (kl, ku) in [(2usize, 3usize), (10, 7), (32, 32)] {
        group.bench_with_input(
            BenchmarkId::new("single_band", format!("{kl}_{ku}")),
            &(kl, ku),
            |bench, &(kl, ku)| {
                bench.iter(|| sweep_band(&dev, &cfg, kl, ku).unwrap());
            },
        );
    }
    group.bench_function("grid_8x8", |bench| {
        let small = SweepConfig {
            max_band: 8,
            ..SweepConfig::default()
        };
        bench.iter(|| sweep_device(&dev, &small));
    });
    group.finish();

    // Lookup path (hot in dispatch-heavy applications).
    let mut table = TuningTable::new("bench", 512, 1000);
    for kl in 0..=16usize {
        for ku in 0..=16usize {
            table.insert(
                kl,
                ku,
                gbatch_tuning::TuneEntry {
                    nb: 8,
                    threads: 64,
                    predicted_ms: 1.0,
                },
            );
        }
    }
    c.bench_function("tuning_lookup_nearest", |bench| {
        bench.iter(|| table.lookup(24, 19).unwrap());
    });
}

/// Bounded-time criterion config: the numerics are deterministic and the
/// host box is a single core, so small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = bench_tuning);
criterion_main!(benches);
