//! Figure 3 bench: the fully fused batched GBTRF across matrix sizes for
//! the paper's two band shapes. Measures host execution (real numerics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gbatch_core::batch::{InfoArray, PivotBatch};
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::fused::{gbtrf_batch_fused, FusedParams};
use gbatch_workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig3(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let batch = 32;
    for (kl, ku) in [(2usize, 3usize), (10, 7)] {
        let mut group = c.benchmark_group(format!("fig3_fused_gbtrf_kl{kl}_ku{ku}"));
        for n in [64usize, 256, 512] {
            let mut rng = StdRng::seed_from_u64(n as u64);
            let a0 = random_band_batch(&mut rng, batch, n, kl, ku, BandDistribution::Uniform);
            group.throughput(Throughput::Elements((batch * n) as u64));
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
                bench.iter_batched(
                    || {
                        (
                            a0.clone(),
                            PivotBatch::new(batch, n, n),
                            InfoArray::new(batch),
                        )
                    },
                    |(mut a, mut piv, mut info)| {
                        gbtrf_batch_fused(
                            &dev,
                            &mut a,
                            &mut piv,
                            &mut info,
                            FusedParams::auto(&dev, kl),
                        )
                        .unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        group.finish();
    }
}

/// Bounded-time criterion config: the numerics are deterministic and the
/// host box is a single core, so small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = bench_fig3);
criterion_main!(benches);
