//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! - in-kernel window shifting vs one launch per window step (§5.3);
//! - the fused-GBSV size cutoff (§7, paper picks 64);
//! - blocked vs unblocked CPU factorization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbatch_core::batch::{InfoArray, PivotBatch, RhsBatch};
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::dispatch::{dgbsv_batch, GbsvOptions};
use gbatch_kernels::window::{gbtrf_batch_window, gbtrf_batch_window_relaunch, WindowParams};
use gbatch_workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn ablation_window_shift(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let (batch, n, kl, ku) = (24usize, 256usize, 2usize, 3usize);
    let mut rng = StdRng::seed_from_u64(1);
    let a0 = random_band_batch(&mut rng, batch, n, kl, ku, BandDistribution::Uniform);
    let params = WindowParams {
        nb: 8,
        threads: 32,
        ..Default::default()
    };

    let mut group = c.benchmark_group("ablation_window_shift");
    group.bench_function("in_kernel_shift", |bench| {
        bench.iter_batched(
            || {
                (
                    a0.clone(),
                    PivotBatch::new(batch, n, n),
                    InfoArray::new(batch),
                )
            },
            |(mut a, mut piv, mut info)| {
                gbtrf_batch_window(&dev, &mut a, &mut piv, &mut info, params).unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.bench_function("relaunch_per_step", |bench| {
        bench.iter_batched(
            || {
                (
                    a0.clone(),
                    PivotBatch::new(batch, n, n),
                    InfoArray::new(batch),
                )
            },
            |(mut a, mut piv, mut info)| {
                gbtrf_batch_window_relaunch(&dev, &mut a, &mut piv, &mut info, params).unwrap()
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();

    // Also report the modeled times once (the actual ablation result).
    let mut a1 = a0.clone();
    let mut p1 = PivotBatch::new(batch, n, n);
    let mut i1 = InfoArray::new(batch);
    let single = gbtrf_batch_window(&dev, &mut a1, &mut p1, &mut i1, params).unwrap();
    let mut a2 = a0.clone();
    let mut p2 = PivotBatch::new(batch, n, n);
    let mut i2 = InfoArray::new(batch);
    let multi = gbtrf_batch_window_relaunch(&dev, &mut a2, &mut p2, &mut i2, params).unwrap();
    let multi_ms: f64 = multi.iter().map(|r| r.time.ms()).sum();
    eprintln!(
        "[ablation_window_shift modeled] in-kernel {:.4} ms vs relaunch {:.4} ms ({} launches)",
        single.time.ms(),
        multi_ms,
        multi.len()
    );
}

fn ablation_gbsv_cutoff(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let (batch, kl, ku) = (32usize, 2usize, 3usize);
    let mut group = c.benchmark_group("ablation_gbsv_cutoff");
    // Sweep the cutoff across the paper's decision point (64): for n = 48
    // a cutoff of 64 uses the fused driver, a cutoff of 32 does not.
    for cutoff in [32usize, 64, 128] {
        let n = 48;
        let mut rng = StdRng::seed_from_u64(2);
        let a0 = random_band_batch(&mut rng, batch, n, kl, ku, BandDistribution::Uniform);
        let b0 = RhsBatch::from_fn(batch, n, 1, |id, i, _| (id + i) as f64 * 0.01).unwrap();
        let opts = GbsvOptions {
            fused_cutoff: Some(cutoff),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(cutoff), &cutoff, |bench, _| {
            bench.iter_batched(
                || {
                    (
                        a0.clone(),
                        b0.clone(),
                        PivotBatch::new(batch, n, n),
                        InfoArray::new(batch),
                    )
                },
                |(mut a, mut b, mut piv, mut info)| {
                    dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &opts).unwrap()
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn ablation_cpu_blocked(c: &mut Criterion) {
    let (n, kl, ku) = (512usize, 10usize, 7usize);
    let mut rng = StdRng::seed_from_u64(3);
    let a0 = random_band_batch(&mut rng, 4, n, kl, ku, BandDistribution::Uniform);
    let l = a0.layout();
    let mut group = c.benchmark_group("ablation_cpu_blocked");
    group.bench_function("gbtf2_unblocked", |bench| {
        bench.iter_batched(
            || a0.matrix(0).data.to_vec(),
            |mut ab| {
                let mut piv = vec![0i32; n];
                gbatch_core::gbtf2::gbtf2(&l, &mut ab, &mut piv)
            },
            criterion::BatchSize::LargeInput,
        );
    });
    for nb in [8usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("gbtrf_blocked", nb), &nb, |bench, &nb| {
            bench.iter_batched(
                || a0.matrix(0).data.to_vec(),
                |mut ab| {
                    let mut piv = vec![0i32; n];
                    gbatch_core::gbtrf::gbtrf_blocked(&l, &mut ab, &mut piv, nb)
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Bounded-time criterion config: the numerics are deterministic and the
/// host box is a single core, so small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = ablation_window_shift, ablation_gbsv_cutoff, ablation_cpu_blocked);
criterion_main!(benches);
