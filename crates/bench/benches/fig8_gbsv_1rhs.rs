//! Figure 8 / Table 2 bench: the final GBSV with a single right-hand side,
//! GPU dispatch vs the CPU baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbatch_core::batch::{InfoArray, PivotBatch, RhsBatch};
use gbatch_cpu::{cpu_gbsv_batch, CpuSpec};
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::dispatch::{dgbsv_batch, GbsvOptions};
use gbatch_workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig8(c: &mut Criterion) {
    let cpu = CpuSpec::xeon_gold_6140();
    let batch = 32;
    for (kl, ku) in [(2usize, 3usize), (10, 7)] {
        let mut group = c.benchmark_group(format!("fig8_gbsv_1rhs_kl{kl}_ku{ku}"));
        for n in [64usize, 512] {
            let mut rng = StdRng::seed_from_u64((n * kl) as u64);
            let a0 = random_band_batch(&mut rng, batch, n, kl, ku, BandDistribution::Uniform);
            let b0 = RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id * 3 + i) as f64 * 0.11).cos())
                .unwrap();
            for dev in [DeviceSpec::h100_pcie(), DeviceSpec::mi250x_gcd()] {
                let tag = if dev.name.contains("H100") {
                    "h100"
                } else {
                    "mi250x"
                };
                let d = dev.clone();
                group.bench_with_input(BenchmarkId::new(tag, n), &n, |bench, _| {
                    bench.iter_batched(
                        || {
                            (
                                a0.clone(),
                                b0.clone(),
                                PivotBatch::new(batch, n, n),
                                InfoArray::new(batch),
                            )
                        },
                        |(mut a, mut b, mut piv, mut info)| {
                            dgbsv_batch(
                                &d,
                                &mut a,
                                &mut piv,
                                &mut b,
                                &mut info,
                                &GbsvOptions::default(),
                            )
                            .unwrap()
                        },
                        criterion::BatchSize::LargeInput,
                    );
                });
            }
            group.bench_with_input(BenchmarkId::new("cpu", n), &n, |bench, _| {
                bench.iter_batched(
                    || {
                        (
                            a0.clone(),
                            b0.clone(),
                            PivotBatch::new(batch, n, n),
                            InfoArray::new(batch),
                        )
                    },
                    |(mut a, mut b, mut piv, mut info)| {
                        cpu_gbsv_batch(&cpu, &mut a, &mut piv, &mut b, &mut info)
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        group.finish();
    }
}

/// Bounded-time criterion config: the numerics are deterministic and the
/// host box is a single core, so small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = bench_fig8);
criterion_main!(benches);
