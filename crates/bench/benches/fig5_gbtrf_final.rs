//! Figure 5 / Table 1 bench: the final dispatched GBTRF (fused below the
//! cutoff, sliding window above) against the multicore CPU baseline, both
//! executing real numerics on the host.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbatch_core::batch::{InfoArray, PivotBatch};
use gbatch_cpu::{cpu_gbtrf_batch, CpuSpec};
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::dispatch::{dgbtrf_batch, GbsvOptions};
use gbatch_workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig5(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let cpu = CpuSpec::xeon_gold_6140();
    let batch = 32;
    for (kl, ku) in [(2usize, 3usize), (10, 7)] {
        let mut group = c.benchmark_group(format!("fig5_final_gbtrf_kl{kl}_ku{ku}"));
        for n in [64usize, 512] {
            let mut rng = StdRng::seed_from_u64((n + kl) as u64);
            let a0 = random_band_batch(&mut rng, batch, n, kl, ku, BandDistribution::Uniform);
            group.bench_with_input(BenchmarkId::new("gpu_dispatch", n), &n, |bench, _| {
                bench.iter_batched(
                    || {
                        (
                            a0.clone(),
                            PivotBatch::new(batch, n, n),
                            InfoArray::new(batch),
                        )
                    },
                    |(mut a, mut piv, mut info)| {
                        dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &GbsvOptions::default())
                            .unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
            group.bench_with_input(BenchmarkId::new("cpu_baseline", n), &n, |bench, _| {
                bench.iter_batched(
                    || {
                        (
                            a0.clone(),
                            PivotBatch::new(batch, n, n),
                            InfoArray::new(batch),
                        )
                    },
                    |(mut a, mut piv, mut info)| cpu_gbtrf_batch(&cpu, &mut a, &mut piv, &mut info),
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        group.finish();
    }
}

/// Bounded-time criterion config: the numerics are deterministic and the
/// host box is a single core, so small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = bench_fig5);
criterion_main!(benches);
