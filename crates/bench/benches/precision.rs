//! Precision bench: `f32` versus `f64` instantiations of the fused and
//! window kernels at the paper's shapes.
//!
//! The shared-memory capacity is the binding resource of §8: halving the
//! element width halves every per-block footprint, so the occupancy of the
//! smem-limited kernels roughly doubles. Criterion measures the host
//! wall-clock of the two dispatched drivers (`sgbsv_batch` vs
//! `dgbsv_batch`); the deterministic summary records, per grid point and
//! per precision, the fused/window smem bytes per block, the modeled
//! occupancy, and the modeled driver time into `results/precision.json`,
//! and asserts the acceptance criterion: at `n = 512`, `kl = ku = 8`,
//! `batch = 1000`, the `f32` window occupancy is at least 1.5x the `f64`
//! one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch_gpu_sim::occupancy::occupancy;
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::dispatch::{dgbsv_batch, sgbsv_batch, GbsvOptions};
use gbatch_kernels::fused::fused_smem_bytes;
use gbatch_kernels::window::{window_smem_bytes, WindowParams};
use gbatch_workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `(batch, n, kl, ku)` grid: the acceptance shape plus the paper's two
/// headline bandwidths at the same order.
const GRID: [(usize, usize, usize, usize); 3] =
    [(1000, 512, 8, 8), (1000, 512, 2, 3), (1000, 512, 10, 7)];

/// The acceptance configuration (ISSUE): n = 512, kl = ku = 8, batch = 1000.
const ACCEPT: (usize, usize, usize, usize) = GRID[0];

/// Narrow an `f64` batch into `f32` storage element-wise.
fn narrow(a: &BandBatch) -> BandBatch<f32> {
    let mut out = BandBatch::<f32>::zeros_with_layout(a.layout(), a.batch()).unwrap();
    for (dst, &src) in out.data_mut().iter_mut().zip(a.data()) {
        *dst = src as f32;
    }
    out
}

fn rhs64(batch: usize, n: usize) -> RhsBatch {
    RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id * 3 + i) as f64 * 0.17).sin()).unwrap()
}

fn rhs32(batch: usize, n: usize) -> RhsBatch<f32> {
    RhsBatch::<f32>::from_fn(batch, n, 1, |id, i, _| {
        (((id * 3 + i) as f64 * 0.17).sin()) as f32
    })
    .unwrap()
}

/// Modeled `SimTime` (ms) of the dispatched f64 driver.
fn dgbsv_ms(dev: &DeviceSpec, a0: &BandBatch, b0: &RhsBatch) -> f64 {
    let (mut a, mut b) = (a0.clone(), b0.clone());
    let mut piv = PivotBatch::new(a0.batch(), a0.layout().m, a0.layout().n);
    let mut info = InfoArray::new(a0.batch());
    let rep = dgbsv_batch(
        dev,
        &mut a,
        &mut piv,
        &mut b,
        &mut info,
        &GbsvOptions::default(),
    )
    .unwrap();
    rep.time.secs() * 1e3
}

/// Modeled `SimTime` (ms) of the dispatched f32 driver.
fn sgbsv_ms(dev: &DeviceSpec, a0: &BandBatch<f32>, b0: &RhsBatch<f32>) -> f64 {
    let (mut a, mut b) = (a0.clone(), b0.clone());
    let mut piv = PivotBatch::new(a0.batch(), a0.layout().m, a0.layout().n);
    let mut info = InfoArray::new(a0.batch());
    let rep = sgbsv_batch(
        dev,
        &mut a,
        &mut piv,
        &mut b,
        &mut info,
        &GbsvOptions::default(),
    )
    .unwrap();
    rep.time.secs() * 1e3
}

/// Per-precision modeled capacity facts at one grid point.
#[derive(serde::Serialize)]
struct PrecisionCapacity {
    fused_smem_bytes_per_block: usize,
    window_smem_bytes_per_block: usize,
    window_nb: usize,
    threads: u32,
    /// `None` when the fused footprint exceeds the device's smem per
    /// block (the f64 case at the acceptance shape).
    fused_occupancy_blocks_per_sm: Option<u32>,
    window_occupancy_blocks_per_sm: Option<u32>,
    modeled_gbsv_ms: f64,
}

#[derive(serde::Serialize)]
struct PrecisionEntry {
    batch: usize,
    n: usize,
    kl: usize,
    ku: usize,
    f64: PrecisionCapacity,
    f32: PrecisionCapacity,
    window_occupancy_ratio_f32_over_f64: Option<f64>,
}

#[derive(serde::Serialize)]
struct PrecisionReport {
    title: String,
    device: String,
    entries: Vec<PrecisionEntry>,
}

fn capacity(
    dev: &DeviceSpec,
    kl: usize,
    fused_bytes: usize,
    window_bytes: usize,
    modeled_ms: f64,
) -> PrecisionCapacity {
    let params = WindowParams::auto(dev, kl);
    PrecisionCapacity {
        fused_smem_bytes_per_block: fused_bytes,
        window_smem_bytes_per_block: window_bytes,
        window_nb: params.nb,
        threads: params.threads,
        fused_occupancy_blocks_per_sm: occupancy(dev, params.threads, fused_bytes as u32)
            .map(|o| o.blocks_per_sm),
        window_occupancy_blocks_per_sm: occupancy(dev, params.threads, window_bytes as u32)
            .map(|o| o.blocks_per_sm),
        modeled_gbsv_ms: modeled_ms,
    }
}

fn bench_precision(c: &mut Criterion) {
    let dev = DeviceSpec::mi250x_gcd();
    let mut group = c.benchmark_group("precision_gbsv");
    // Criterion wall-clock at a reduced batch so each sample stays cheap;
    // the modeled summary below runs the full acceptance batch.
    let bench_batch = 64usize;
    for &(_, n, kl, ku) in &GRID {
        let mut rng = StdRng::seed_from_u64(11);
        let a64 = random_band_batch(
            &mut rng,
            bench_batch,
            n,
            kl,
            ku,
            BandDistribution::DiagonallyDominant { margin: 1.0 },
        );
        let a32 = narrow(&a64);
        let (b64, b32) = (rhs64(bench_batch, n), rhs32(bench_batch, n));
        let label = format!("n{n}_kl{kl}_ku{ku}");
        group.bench_with_input(BenchmarkId::new("f64", &label), &(), |bench, ()| {
            bench.iter(|| dgbsv_ms(&dev, &a64, &b64));
        });
        group.bench_with_input(BenchmarkId::new("f32", &label), &(), |bench, ()| {
            bench.iter(|| sgbsv_ms(&dev, &a32, &b32));
        });
    }
    group.finish();

    summarize(&dev);
}

/// Deterministic modeled summary: record `results/precision.json` and
/// enforce the acceptance criterion.
fn summarize(dev: &DeviceSpec) {
    let mut entries = Vec::new();
    let mut accept_ratio: Option<f64> = None;
    for &(batch, n, kl, ku) in &GRID {
        let mut rng = StdRng::seed_from_u64(11);
        let a64 = random_band_batch(
            &mut rng,
            batch,
            n,
            kl,
            ku,
            BandDistribution::DiagonallyDominant { margin: 1.0 },
        );
        let a32 = narrow(&a64);
        let l = a64.layout();
        let params = WindowParams::auto(dev, kl);

        let ms64 = dgbsv_ms(dev, &a64, &rhs64(batch, n));
        let ms32 = sgbsv_ms(dev, &a32, &rhs32(batch, n));
        let f64cap = capacity(
            dev,
            kl,
            fused_smem_bytes::<f64>(l.ldab, l.n),
            window_smem_bytes::<f64>(&l, params.nb),
            ms64,
        );
        let f32cap = capacity(
            dev,
            kl,
            fused_smem_bytes::<f32>(l.ldab, l.n),
            window_smem_bytes::<f32>(&l, params.nb),
            ms32,
        );
        let occ64 = f64cap.window_occupancy_blocks_per_sm;
        let occ32 = f32cap.window_occupancy_blocks_per_sm;
        let ratio = match (occ32, occ64) {
            (Some(a), Some(b)) if b > 0 => Some(f64::from(a) / f64::from(b)),
            _ => None,
        };
        eprintln!(
            "[precision] batch {batch} n {n} (kl,ku)=({kl},{ku}): \
             f64 {ms64:.4} ms (occ {occ64:?}), f32 {ms32:.4} ms (occ {occ32:?}), \
             window occupancy ratio {ratio:?}"
        );
        if (batch, n, kl, ku) == ACCEPT {
            accept_ratio = ratio;
        }
        entries.push(PrecisionEntry {
            batch,
            n,
            kl,
            ku,
            f64: f64cap,
            f32: f32cap,
            window_occupancy_ratio_f32_over_f64: ratio,
        });
    }

    let doc = PrecisionReport {
        title: format!(
            "f32 vs f64 fused/window capacity and modeled GBSV time, {}",
            dev.name
        ),
        device: dev.name.to_string(),
        entries,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/precision.json");
    let json = serde_json::to_string_pretty(&doc).unwrap();
    std::fs::write(path, json + "\n").unwrap();
    eprintln!("[precision] wrote {path}");

    let ratio = accept_ratio.expect("acceptance config must yield a valid occupancy ratio");
    assert!(
        ratio >= 1.5,
        "acceptance at (batch,n,kl,ku)={ACCEPT:?}: f32 window occupancy must be \
         >= 1.5x the f64 one, got {ratio:.2}x"
    );
    eprintln!("[precision] acceptance at {ACCEPT:?}: occupancy ratio {ratio:.2}x >= 1.5x");
}

/// Bounded-time criterion config: the numerics are deterministic and the
/// host box is a single core, so small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = bench_precision);
criterion_main!(benches);
