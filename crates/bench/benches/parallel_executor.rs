//! Serial vs parallel host execution of the simulated engine.
//!
//! The work-stealing executor (`gbatch_gpu_sim::executor`) fans the
//! per-matrix blocks of a launch across OS threads; modeled `SimTime` and
//! every counter stay bitwise-identical, so the only thing this bench can
//! (and should) show is host wall-clock. The acceptance configuration is
//! the paper's mid-size band: `batch = 256, n = 256, kl = ku = 8`.
//!
//! Wall-clock speedup obviously depends on the machine: on a 4-core host
//! `threads(4)` is expected to run the factorization >= 2x faster than
//! serial; on a single-core container (CI) the parallel policies only add
//! scheduling overhead and the bench degrades to a determinism smoke test.
//! The summary line printed at the end reports the measured ratio next to
//! `std::thread::available_parallelism` so the number can be judged.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbatch_core::batch::{InfoArray, PivotBatch};
use gbatch_gpu_sim::{DeviceSpec, ParallelPolicy};
use gbatch_kernels::window::{gbtrf_batch_window, WindowParams};
use gbatch_workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

const BATCH: usize = 256;
const N: usize = 256;
const KL: usize = 8;
const KU: usize = 8;

fn policies() -> Vec<(&'static str, ParallelPolicy)> {
    vec![
        ("serial", ParallelPolicy::Serial),
        ("threads2", ParallelPolicy::threads(2)),
        ("threads4", ParallelPolicy::threads(4)),
        ("auto", ParallelPolicy::Auto),
    ]
}

fn bench_factor_policies(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let mut rng = StdRng::seed_from_u64(42);
    let a0 = random_band_batch(&mut rng, BATCH, N, KL, KU, BandDistribution::Uniform);

    let mut group = c.benchmark_group("parallel_executor_gbtrf");
    for (name, policy) in policies() {
        let params = WindowParams::auto(&dev, KL).with_parallel(policy);
        group.bench_with_input(
            BenchmarkId::new("window", name),
            &params,
            |bench, params| {
                bench.iter_batched(
                    || {
                        (
                            a0.clone(),
                            PivotBatch::new(BATCH, N, N),
                            InfoArray::new(BATCH),
                        )
                    },
                    |(mut a, mut piv, mut info)| {
                        gbtrf_batch_window(&dev, &mut a, &mut piv, &mut info, *params).unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();

    // One-shot summary: measured wall-clock per policy, the serial/parallel
    // ratio, and a bitwise cross-check of the results while we are at it.
    let serial = run_once(&dev, &a0, ParallelPolicy::Serial);
    let mut lines = Vec::new();
    for (name, policy) in policies().into_iter().skip(1) {
        let par = run_once(&dev, &a0, policy);
        assert_eq!(
            serial.1, par.1,
            "{name}: factors must be bitwise-identical to serial"
        );
        assert_eq!(
            serial.2, par.2,
            "{name}: modeled SimTime must be bitwise-identical"
        );
        lines.push(format!(
            "{name} {:.1} ms ({:.2}x)",
            par.0 * 1e3,
            serial.0 / par.0
        ));
    }
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    eprintln!(
        "[parallel_executor wall-clock] host cores {cores}; serial {:.1} ms; {}",
        serial.0 * 1e3,
        lines.join("; ")
    );
}

fn run_once(
    dev: &DeviceSpec,
    a0: &gbatch_core::batch::BandBatch,
    policy: ParallelPolicy,
) -> (f64, Vec<f64>, u64) {
    let mut a = a0.clone();
    let mut piv = PivotBatch::new(BATCH, N, N);
    let mut info = InfoArray::new(BATCH);
    let params = WindowParams::auto(dev, KL).with_parallel(policy);
    let t0 = Instant::now();
    let rep = gbtrf_batch_window(dev, &mut a, &mut piv, &mut info, params).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    (secs, a.data().to_vec(), rep.time.secs().to_bits())
}

criterion_group!(benches, bench_factor_policies);
criterion_main!(benches);
