//! Figure 1 bench: host throughput of the batched `dgemm`/`dgemv` kernels
//! (the simulated-GPU execution engine really computes the products, so
//! this measures the library's real batch throughput) plus the modeled
//! batch-vs-streams comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::{gemm::gemm_batch, gemv::gemv_batch};

fn fill(len: usize, seed: f64) -> Vec<f64> {
    let mut v = seed;
    (0..len)
        .map(|_| {
            v = (v * 1.7 + 0.137).fract();
            v - 0.5
        })
        .collect()
}

fn bench_fig1(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let batch = 64;

    let mut group = c.benchmark_group("fig1_batched_gemm");
    for n in [32usize, 64, 128] {
        let a = fill(n * n * batch, 0.3);
        let b = fill(n * n * batch, 0.6);
        let mut out = vec![0.0; n * n * batch];
        group.throughput(Throughput::Elements((2 * n * n * n * batch) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| gemm_batch(&dev, n, &a, &b, &mut out, 256).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig1_batched_gemv");
    for n in [64usize, 256, 512] {
        let a = fill(n * n * batch, 0.4);
        let x = fill(n * batch, 0.8);
        let mut y = vec![0.0; n * batch];
        group.throughput(Throughput::Elements((2 * n * n * batch) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, &n| {
            bench.iter(|| gemv_batch(&dev, n, &a, &x, &mut y, 128).unwrap());
        });
    }
    group.finish();
}

/// Bounded-time criterion config: the numerics are deterministic and the
/// host box is a single core, so small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = bench_fig1);
criterion_main!(benches);
