//! Figure 9 / Table 3 bench: the final GBSV with ten right-hand sides.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbatch_core::batch::{InfoArray, PivotBatch, RhsBatch};
use gbatch_cpu::{cpu_gbsv_batch, CpuSpec};
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::dispatch::{dgbsv_batch, GbsvOptions};
use gbatch_workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig9(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let cpu = CpuSpec::xeon_gold_6140();
    let batch = 24;
    let nrhs = 10;
    for (kl, ku) in [(2usize, 3usize), (10, 7)] {
        let mut group = c.benchmark_group(format!("fig9_gbsv_10rhs_kl{kl}_ku{ku}"));
        for n in [64usize, 256] {
            let mut rng = StdRng::seed_from_u64((n + ku) as u64);
            let a0 = random_band_batch(&mut rng, batch, n, kl, ku, BandDistribution::Uniform);
            let b0 = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
                ((id + i * 2 + c * 3) as f64 * 0.07).sin()
            })
            .unwrap();
            group.bench_with_input(BenchmarkId::new("gpu_dispatch", n), &n, |bench, _| {
                bench.iter_batched(
                    || {
                        (
                            a0.clone(),
                            b0.clone(),
                            PivotBatch::new(batch, n, n),
                            InfoArray::new(batch),
                        )
                    },
                    |(mut a, mut b, mut piv, mut info)| {
                        dgbsv_batch(
                            &dev,
                            &mut a,
                            &mut piv,
                            &mut b,
                            &mut info,
                            &GbsvOptions::default(),
                        )
                        .unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
            group.bench_with_input(BenchmarkId::new("cpu_baseline", n), &n, |bench, _| {
                bench.iter_batched(
                    || {
                        (
                            a0.clone(),
                            b0.clone(),
                            PivotBatch::new(batch, n, n),
                            InfoArray::new(batch),
                        )
                    },
                    |(mut a, mut b, mut piv, mut info)| {
                        cpu_gbsv_batch(&cpu, &mut a, &mut piv, &mut b, &mut info)
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        group.finish();
    }
}

/// Bounded-time criterion config: the numerics are deterministic and the
/// host box is a single core, so small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = bench_fig9);
criterion_main!(benches);
