//! Serving-layer throughput bench: dynamic batching versus per-request
//! stream launches.
//!
//! Criterion measures the host wall-clock of the full serve loop (admit →
//! flush → solve → respond) over a fixed Poisson trace. The modeled
//! outcome is deterministic, so the summary at the end sweeps the flush
//! policy's `target_batch` across a grid, records served busy time and
//! p99 latency next to the per-request `simulate_streams` pricing of the
//! same trace into `results/serve_throughput.json`, and asserts the ISSUE
//! acceptance criterion: the served schedule clearly beats launching every
//! request as its own kernel over 16 streams (the paper's Figure 1
//! economics, lifted to the service level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbatch_bench::report::{Figure, Series};
use gbatch_core::ShapeKey;
use gbatch_cpu::model::{gbtrf_bytes, gbtrf_flops, gbtrs_bytes, gbtrs_flops};
use gbatch_cpu::CpuSpec;
use gbatch_gpu_sim::multi::DeviceGroup;
use gbatch_gpu_sim::stream::simulate_streams;
use gbatch_gpu_sim::{DeviceSpec, KernelCounters, LaunchConfig, ParallelPolicy};
use gbatch_serve::{FlushPolicy, ServeReport, Server, ServerConfig, SolveRequest};
use gbatch_workloads::{poisson_traffic, Arrival, ShapeMix, TrafficConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const N_REQUESTS: usize = 4000;
const TARGET_BATCHES: [usize; 4] = [8, 32, 64, 128];

/// A four-bucket mix of modest shapes: large enough that batching matters,
/// small enough that the bench stays quick in debug builds (`cargo test`
/// compiles and smoke-runs criterion benches once).
fn traffic() -> TrafficConfig {
    TrafficConfig {
        rate_hz: 2.0e5,
        deadline_s: 2.0e-3,
        mix: vec![
            ShapeMix {
                shape: ShapeKey::gbsv(48, 3, 3, 1),
                weight: 4.0,
            },
            ShapeMix {
                shape: ShapeKey::gbsv(64, 2, 3, 1),
                weight: 2.0,
            },
            ShapeMix {
                shape: ShapeKey::gbsv(32, 1, 1, 1),
                weight: 2.0,
            },
            ShapeMix {
                shape: ShapeKey::gbsv(40, 2, 2, 2),
                weight: 1.0,
            },
        ],
        poison_every: None,
    }
}

fn arrivals() -> Vec<Arrival> {
    poisson_traffic(&mut StdRng::seed_from_u64(2024), N_REQUESTS, &traffic())
}

/// Run the full serve loop over the trace and return the metrics report.
fn serve(trace: &[Arrival], target_batch: usize) -> ServeReport {
    let mut server = Server::simulated(
        DeviceGroup::mi250x_full(),
        CpuSpec::xeon_gold_6140(),
        ParallelPolicy::Serial,
        ServerConfig {
            queue_capacity: 8192,
            policy: FlushPolicy::default()
                .with_target_batch(target_batch)
                .with_min_gpu_batch(8),
        },
    );
    for a in trace {
        server
            .submit(SolveRequest {
                id: a.id,
                shape: a.shape,
                ab: a.ab.clone(),
                rhs: a.rhs.clone(),
                submitted_s: a.at_s,
                deadline_s: a.deadline_s,
            })
            .expect("bench traffic fits the admission queue");
    }
    server.drain();
    let responses = server.take_responses();
    assert_eq!(responses.len(), trace.len(), "conservation");
    server.report()
}

/// Price the same trace as per-request kernel launches over 16 streams on
/// a single GCD, per shape bucket (the naive no-batching alternative).
fn streams_pricing(trace: &[Arrival]) -> f64 {
    let dev = DeviceSpec::mi250x_gcd();
    let mut by_shape: BTreeMap<ShapeKey, usize> = BTreeMap::new();
    for a in trace {
        *by_shape.entry(a.shape).or_insert(0) += 1;
    }
    let mut total = 0.0;
    for (shape, count) in by_shape {
        let l = shape.layout().unwrap();
        let traffic_bytes = gbtrf_bytes(&l) + gbtrs_bytes(&l, shape.nrhs);
        let per_block = KernelCounters {
            global_read: traffic_bytes as u64 / 2,
            global_write: traffic_bytes as u64 / 2,
            flops: (gbtrf_flops(&l) + gbtrs_flops(&l, shape.nrhs)) as u64,
            cycles: (l.n * 30) as f64,
            ..Default::default()
        };
        let cfg = LaunchConfig::new(64, 0);
        total += simulate_streams(&dev, &cfg, count, 16, &per_block).secs();
    }
    total
}

fn bench_serve(c: &mut Criterion) {
    let trace = arrivals();
    let mut group = c.benchmark_group("serve_throughput");
    for &tb in &TARGET_BATCHES {
        group.bench_with_input(BenchmarkId::new("serve_loop", tb), &tb, |bench, &tb| {
            bench.iter(|| serve(&trace, tb));
        });
    }
    group.finish();

    summarize(&trace);
}

/// Deterministic modeled summary: record the figure JSON and enforce the
/// acceptance criterion.
fn summarize(trace: &[Arrival]) {
    let streams_s = streams_pricing(trace);
    let mut fig = Figure::with_unit(
        format!(
            "Dynamic-batching serve vs per-request streams, MI250x full — \
             {N_REQUESTS} Poisson requests, 4 shape buckets"
        ),
        "target_batch",
        "ms",
    );
    let mut served = Series::new("served busy time (gpu + cpu)");
    let mut baseline = Series::new("per-request simulate_streams (16 streams)");
    let mut p99 = Series::new("served p99 latency");
    let mut best = f64::INFINITY;
    for &tb in &TARGET_BATCHES {
        let report = serve(trace, tb);
        assert!(report.is_conserved());
        let busy_s = report.gpu_busy_s + report.cpu_busy_s;
        best = best.min(busy_s);
        served.push(tb, busy_s * 1e3);
        baseline.push(tb, streams_s * 1e3);
        p99.push(tb, report.p99_latency_s * 1e3);
        eprintln!(
            "[serve_throughput] target_batch {tb}: {} flushes (mean batch \
             {:.1}), busy {:.3} ms vs streams {:.3} ms, p99 {:.0} us",
            report.flushes(),
            report.mean_batch(),
            busy_s * 1e3,
            streams_s * 1e3,
            report.p99_latency_s * 1e6
        );
    }
    fig.series.push(served);
    fig.series.push(baseline);
    fig.series.push(p99);

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/serve_throughput.json"
    );
    let json = serde_json::to_string_pretty(&fig).unwrap();
    std::fs::write(path, json + "\n").unwrap();
    eprintln!("[serve_throughput] wrote {path}");

    assert!(
        best < streams_s / 2.0,
        "dynamic batching must clearly beat per-request streams: best served \
         busy {best:.6} s vs streams {streams_s:.6} s"
    );
    eprintln!(
        "[serve_throughput] acceptance: best served schedule is {:.1}x \
         cheaper than per-request streams",
        streams_s / best
    );
}

/// Bounded-time criterion config: the serve loop is deterministic, so
/// small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = bench_serve);
criterion_main!(benches);
