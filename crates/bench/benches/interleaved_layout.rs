//! Layout bench: interleaved (batch-major) versus column-major GBTRF
//! across a `(batch, n, kl, ku)` grid.
//!
//! Three contenders per grid point:
//!
//! - `column` — the dispatched column-major path (fused / window per §5.4),
//!   forced with [`MatrixLayout::ColumnMajor`];
//! - `interleaved+conv` — the dispatched interleaved path, forced with
//!   [`MatrixLayout::Interleaved`]: pack, factor, unpack (what a
//!   column-major caller actually pays);
//! - `interleaved` — the native kernel on pre-packed storage (what a
//!   caller keeping data interleaved end-to-end pays).
//!
//! Criterion measures host wall-clock; the modeled `SimTime` per contender
//! is deterministic, so the summary at the end records it into a
//! `report::Figure` (the same serde container `repro` uses) at
//! `results/interleaved_layout.json` and asserts the ISSUE acceptance
//! criterion: the interleaved layout beats column-major on the
//! large-batch/small-n configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbatch_bench::report::Figure;
use gbatch_core::batch::{InfoArray, PivotBatch};
use gbatch_core::InterleavedBandBatch;
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::dispatch::{dgbtrf_batch, GbsvOptions, MatrixLayout};
use gbatch_kernels::interleaved::{gbtrf_batch_interleaved, InterleavedParams};
use gbatch_workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `(batch, n, kl, ku)` grid: the Gloster-style large-batch/small-n corner
/// (where interleaving must win), the paper's mid-size band, and a
/// window-kernel corner (where column-major must win).
const GRID: [(usize, usize, usize, usize); 4] = [
    (4096, 16, 1, 2),
    (1024, 48, 2, 3),
    (256, 256, 8, 8),
    (64, 512, 8, 8),
];

/// The acceptance configuration: large batch, small n.
const ACCEPT: (usize, usize, usize, usize) = GRID[0];

fn opts(layout: MatrixLayout) -> GbsvOptions {
    GbsvOptions {
        layout,
        ..Default::default()
    }
}

/// Modeled `SimTime` (ms) of the dispatched factorization under a forced
/// layout.
fn dispatch_ms(dev: &DeviceSpec, a0: &gbatch_core::BandBatch, layout: MatrixLayout) -> f64 {
    let mut a = a0.clone();
    let mut piv = PivotBatch::new(a0.batch(), a0.layout().m, a0.layout().n);
    let mut info = InfoArray::new(a0.batch());
    let rep = dgbtrf_batch(dev, &mut a, &mut piv, &mut info, &opts(layout)).unwrap();
    rep.time.secs() * 1e3
}

/// Modeled `SimTime` (ms) of the native interleaved factorization on
/// pre-packed storage (no conversion passes).
fn native_ms(dev: &DeviceSpec, a0: &gbatch_core::BandBatch) -> f64 {
    let packed = InterleavedBandBatch::from_batch(a0);
    let params = InterleavedParams::auto(dev, &a0.layout(), 0);
    let mut a = packed;
    let mut piv = PivotBatch::new(a0.batch(), a0.layout().m, a0.layout().n);
    let mut info = InfoArray::new(a0.batch());
    let rep = gbtrf_batch_interleaved(dev, &mut a, &mut piv, &mut info, params).unwrap();
    rep.time.secs() * 1e3
}

fn bench_layouts(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let mut group = c.benchmark_group("interleaved_layout_gbtrf");
    for &(batch, n, kl, ku) in &GRID {
        let mut rng = StdRng::seed_from_u64(7);
        let a0 = random_band_batch(&mut rng, batch, n, kl, ku, BandDistribution::Uniform);
        let label = format!("b{batch}_n{n}_kl{kl}_ku{ku}");
        for (name, layout) in [
            ("column", MatrixLayout::ColumnMajor),
            ("interleaved+conv", MatrixLayout::Interleaved),
        ] {
            group.bench_with_input(BenchmarkId::new(name, &label), &layout, |bench, &layout| {
                bench.iter_batched(
                    || {
                        (
                            a0.clone(),
                            PivotBatch::new(batch, n, n),
                            InfoArray::new(batch),
                        )
                    },
                    |(mut a, mut piv, mut info)| {
                        dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &opts(layout)).unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            });
        }
        let packed0 = InterleavedBandBatch::from_batch(&a0);
        let params = InterleavedParams::auto(&dev, &a0.layout(), 0);
        group.bench_with_input(
            BenchmarkId::new("interleaved", &label),
            &params,
            |bench, params| {
                bench.iter_batched(
                    || {
                        (
                            packed0.clone(),
                            PivotBatch::new(batch, n, n),
                            InfoArray::new(batch),
                        )
                    },
                    |(mut a, mut piv, mut info)| {
                        gbtrf_batch_interleaved(&dev, &mut a, &mut piv, &mut info, *params).unwrap()
                    },
                    criterion::BatchSize::LargeInput,
                );
            },
        );
    }
    group.finish();

    summarize(&dev);
}

/// Deterministic modeled-time summary: record the figure JSON and enforce
/// the acceptance criterion.
fn summarize(dev: &DeviceSpec) {
    let mut fig = Figure::with_unit(
        format!(
            "Interleaved vs column-major GBTRF (modeled), {} — grid {:?}",
            dev.name, GRID
        ),
        "n",
        "ms",
    );
    let mut col = gbatch_bench::report::Series::new("column-major dispatch");
    let mut conv = gbatch_bench::report::Series::new("interleaved dispatch (+conversion)");
    let mut native = gbatch_bench::report::Series::new("interleaved native (pre-packed)");
    let mut accept: Option<(f64, f64)> = None;
    for &(batch, n, kl, ku) in &GRID {
        let mut rng = StdRng::seed_from_u64(7);
        let a0 = random_band_batch(&mut rng, batch, n, kl, ku, BandDistribution::Uniform);
        let c_ms = dispatch_ms(dev, &a0, MatrixLayout::ColumnMajor);
        let i_ms = dispatch_ms(dev, &a0, MatrixLayout::Interleaved);
        let n_ms = native_ms(dev, &a0);
        col.push(n, c_ms);
        conv.push(n, i_ms);
        native.push(n, n_ms);
        eprintln!(
            "[interleaved_layout] batch {batch} n {n} (kl,ku)=({kl},{ku}): \
             column {c_ms:.4} ms, interleaved+conv {i_ms:.4} ms, native {n_ms:.4} ms"
        );
        if (batch, n, kl, ku) == ACCEPT {
            accept = Some((c_ms, n_ms));
        }
    }
    fig.series.push(col);
    fig.series.push(conv);
    fig.series.push(native);

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/interleaved_layout.json"
    );
    let json = serde_json::to_string_pretty(&fig).unwrap();
    std::fs::write(path, json + "\n").unwrap();
    eprintln!("[interleaved_layout] wrote {path}");

    let (c_ms, n_ms) = accept.expect("acceptance config is in the grid");
    assert!(
        n_ms < c_ms,
        "large-batch/small-n acceptance: interleaved ({n_ms:.4} ms) must beat \
         column-major ({c_ms:.4} ms) at (batch,n,kl,ku)={ACCEPT:?}"
    );
    eprintln!(
        "[interleaved_layout] acceptance (batch,n,kl,ku)={ACCEPT:?}: \
         interleaved speedup {:.2}x over column-major",
        c_ms / n_ms
    );
}

/// Bounded-time criterion config: the numerics are deterministic and the
/// host box is a single core, so small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = bench_layouts);
criterion_main!(benches);
