//! Figure 7 bench: single-kernel fused GBSV versus the standard separate
//! factorization + solve, across small system orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gbatch_core::batch::{InfoArray, PivotBatch, RhsBatch};
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::dispatch::{dgbsv_batch, GbsvOptions};
use gbatch_kernels::fused::FusedParams;
use gbatch_kernels::gbsv_fused::gbsv_batch_fused;
use gbatch_workloads::random::{random_band_batch, BandDistribution};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fig7(c: &mut Criterion) {
    let dev = DeviceSpec::h100_pcie();
    let batch = 64;
    let (kl, ku) = (2usize, 3usize);
    let mut group = c.benchmark_group("fig7_fused_vs_standard_gbsv");
    for n in [16usize, 48, 96] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let a0 = random_band_batch(&mut rng, batch, n, kl, ku, BandDistribution::Uniform);
        let b0 = RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id + i) as f64 * 0.29).sin()).unwrap();
        group.bench_with_input(BenchmarkId::new("fused", n), &n, |bench, _| {
            bench.iter_batched(
                || {
                    (
                        a0.clone(),
                        b0.clone(),
                        PivotBatch::new(batch, n, n),
                        InfoArray::new(batch),
                    )
                },
                |(mut a, mut b, mut piv, mut info)| {
                    gbsv_batch_fused(
                        &dev,
                        &mut a,
                        &mut piv,
                        &mut b,
                        &mut info,
                        FusedParams::auto(&dev, kl).threads,
                        gbatch_gpu_sim::ParallelPolicy::Serial,
                    )
                    .unwrap()
                },
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("standard", n), &n, |bench, _| {
            let opts = GbsvOptions {
                allow_fused_gbsv: Some(false),
                ..Default::default()
            };
            bench.iter_batched(
                || {
                    (
                        a0.clone(),
                        b0.clone(),
                        PivotBatch::new(batch, n, n),
                        InfoArray::new(batch),
                    )
                },
                |(mut a, mut b, mut piv, mut info)| {
                    dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &opts).unwrap()
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

/// Bounded-time criterion config: the numerics are deterministic and the
/// host box is a single core, so small samples suffice.
fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group!(name = benches; config = quick(); targets = bench_fig7);
criterion_main!(benches);
