//! The perf gate: replay the checked-in raw-speed trajectory
//! (`BENCH_raw_speed.json` at the repository root) and fail if the current
//! tree has drifted from it or fallen below the resident-engine floors.
//!
//! Every time in the trajectory comes from the simulator's analytic model,
//! so a healthy tree reproduces the file *exactly* — the tolerance below
//! only absorbs the JSON decimal round-trip. A mismatch means a code
//! change moved the modeled performance: either fix the regression or
//! regenerate the trajectory deliberately via
//! `cargo run --release -p gbatch-bench --bin repro -- raw_speed`
//! and justify the new numbers in the PR.

use gbatch_bench::raw_speed::{self, EngineSample, RawSpeedReport};

const TRAJECTORY: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_raw_speed.json");

/// Relative tolerance for replayed-vs-checked-in times: the model is
/// deterministic, so this only needs to cover JSON f64 round-trip noise.
const REL_TOL: f64 = 1e-12;

fn assert_close(name: &str, got: f64, want: f64) {
    let rel = (got - want).abs() / want.abs().max(f64::MIN_POSITIVE);
    assert!(
        rel <= REL_TOL,
        "{name}: replayed {got:.17e} vs checked-in {want:.17e} (rel {rel:.2e}) — \
         the perf trajectory drifted; fix the regression or regenerate \
         BENCH_raw_speed.json deliberately"
    );
}

fn assert_sample(name: &str, got: EngineSample, want: EngineSample) {
    assert_close(
        &format!("{name}.per_launch_ms"),
        got.per_launch_ms,
        want.per_launch_ms,
    );
    assert_close(
        &format!("{name}.resident_ms"),
        got.resident_ms,
        want.resident_ms,
    );
    assert_close(&format!("{name}.speedup"), got.speedup, want.speedup);
}

#[test]
fn checked_in_trajectory_replays_exactly() {
    let json = std::fs::read_to_string(TRAJECTORY)
        .expect("BENCH_raw_speed.json missing at repo root — run `repro raw_speed`");
    let want: RawSpeedReport = serde_json::from_str(&json).expect("trajectory JSON invalid");
    assert_eq!(want.batch, raw_speed::RAW_BATCH, "trajectory shape drifted");
    assert_eq!(want.n, raw_speed::RAW_N);

    let got = raw_speed::measure();
    assert_eq!(got.device, want.device, "trajectory device drifted");
    assert_sample("factor", got.factor, want.factor);
    assert_sample("solve", got.solve, want.solve);
    assert_sample("interleaved", got.interleaved, want.interleaved);
    assert_sample("serve_flush", got.serve_flush, want.serve_flush);
    assert_close("serve_spinup_ms", got.serve_spinup_ms, want.serve_spinup_ms);
    assert_sample(
        "factor_cache.cold",
        got.factor_cache.cold,
        want.factor_cache.cold,
    );
    assert_sample(
        "factor_cache.warm",
        got.factor_cache.warm,
        want.factor_cache.warm,
    );
    assert_close(
        "factor_cache.warm_speedup",
        got.factor_cache.warm_speedup,
        want.factor_cache.warm_speedup,
    );
    assert_close(
        "factor_cache.soak_hit_rate",
        got.factor_cache.soak_hit_rate,
        want.factor_cache.soak_hit_rate,
    );
    assert_eq!(
        got.spike.lines.len(),
        want.spike.lines.len(),
        "spike sweep width drifted"
    );
    assert_eq!(got.fleet.composition, want.fleet.composition);
    assert_eq!(got.fleet.baseline, want.fleet.baseline);
    assert_eq!(got.fleet.requests, want.fleet.requests);
    assert_close(
        "fleet.baseline_makespan_ms",
        got.fleet.baseline_makespan_ms,
        want.fleet.baseline_makespan_ms,
    );
    assert_close(
        "fleet.fleet_makespan_ms",
        got.fleet.fleet_makespan_ms,
        want.fleet.fleet_makespan_ms,
    );
    assert_close("fleet.speedup", got.fleet.speedup, want.fleet.speedup);
    assert_close(
        "fleet.utilization_spread",
        got.fleet.utilization_spread,
        want.fleet.utilization_spread,
    );
    assert_eq!(got.fleet.sheds, want.fleet.sheds, "fleet routing drifted");
    for (g, w) in got.spike.lines.iter().zip(&want.spike.lines) {
        assert_eq!(g.precision, w.precision);
        assert_close(
            &format!("spike.{}.unsplit_ms", w.precision),
            g.unsplit_ms,
            w.unsplit_ms,
        );
        assert_eq!(g.points.len(), w.points.len());
        for (gp, wp) in g.points.iter().zip(&w.points) {
            assert_eq!(gp.parts, wp.parts);
            assert_close(
                &format!("spike.{}.p{}.split_ms", w.precision, wp.parts),
                gp.split_ms,
                wp.split_ms,
            );
            assert_close(
                &format!("spike.{}.p{}.speedup", w.precision, wp.parts),
                gp.speedup,
                wp.speedup,
            );
        }
    }
}

#[test]
fn resident_engine_floors_hold() {
    let json = std::fs::read_to_string(TRAJECTORY)
        .expect("BENCH_raw_speed.json missing at repo root — run `repro raw_speed`");
    let want: RawSpeedReport = serde_json::from_str(&json).expect("trajectory JSON invalid");
    // The headline acceptance floor: a resident serve flush at batch 4096,
    // n 16 beats per-launch by at least 1.3x.
    assert!(
        want.serve_flush.speedup >= 1.3,
        "serve flush speedup {} below the 1.3x floor",
        want.serve_flush.speedup
    );
    // Resident never loses anywhere on the trajectory.
    for (name, s) in [
        ("factor", want.factor),
        ("solve", want.solve),
        ("interleaved", want.interleaved),
        ("serve_flush", want.serve_flush),
    ] {
        assert!(s.speedup > 1.0, "{name}: resident slower than per-launch");
    }
    // Spin-up is priced honestly: visible, positive, and bounded by the
    // device's one-time cost (it can never recur per flush).
    assert!(want.serve_spinup_ms > 0.0);
    assert!(want.serve_spinup_ms < want.serve_flush.per_launch_ms * 10.0);
}

#[test]
fn factor_cache_floors_hold() {
    let json = std::fs::read_to_string(TRAJECTORY)
        .expect("BENCH_raw_speed.json missing at repo root — run `repro raw_speed`");
    let want: RawSpeedReport = serde_json::from_str(&json).expect("trajectory JSON invalid");
    // The cold side of the cache comparison is the serve flush itself:
    // one full factorize-and-solve of the trajectory batch.
    assert_eq!(want.factor_cache.cold, want.serve_flush);
    // Acceptance floor: a warm (GBTRS-only) resident flush at batch 4096,
    // n 16 is at least 1.8x cheaper than the cold flush.
    assert!(
        want.factor_cache.warm_speedup >= 1.8,
        "warm flush speedup {} below the 1.8x floor",
        want.factor_cache.warm_speedup
    );
    assert!(want.factor_cache.warm.resident_ms < want.factor_cache.cold.resident_ms);
    // Skipping gbtrf helps per-launch too, just less dramatically.
    assert!(want.factor_cache.warm.per_launch_ms < want.factor_cache.cold.per_launch_ms);
    // Acceptance floor: the repeated-operator mini-soak keeps the cache
    // hot through the real admission path.
    assert!(
        want.factor_cache.soak_hit_rate >= 0.85,
        "mini-soak hit rate {} below the 0.85 floor",
        want.factor_cache.soak_hit_rate
    );
    assert!(want.factor_cache.soak_hit_rate <= 1.0);
}

#[test]
fn spike_floors_hold() {
    let json = std::fs::read_to_string(TRAJECTORY)
        .expect("BENCH_raw_speed.json missing at repo root — run `repro raw_speed`");
    let want: RawSpeedReport = serde_json::from_str(&json).expect("trajectory JSON invalid");
    // The sweep shape is pinned: both precisions over every block count.
    assert_eq!(want.spike.n, raw_speed::SPIKE_N);
    assert_eq!(want.spike.kl, raw_speed::SPIKE_KL);
    assert_eq!(want.spike.ku, raw_speed::SPIKE_KU);
    assert_eq!(want.spike.lines.len(), 2, "both precisions must be swept");
    for line in &want.spike.lines {
        assert_eq!(
            line.points.iter().map(|p| p.parts).collect::<Vec<_>>(),
            raw_speed::SPIKE_PARTS.to_vec(),
            "spike sweep block counts drifted"
        );
        // A one-block "split" degenerates to the unsplit kernels, so its
        // speedup must be within noise of 1.0 — a drift here means the
        // split driver added overhead to the degenerate path.
        let p1 = &line.points[0];
        assert!(
            (p1.speedup - 1.0).abs() < 0.2,
            "{}: P = 1 speedup {:.3} should be ~1.0",
            line.precision,
            p1.speedup
        );
    }
    // Acceptance floor: the split solve at P = 8, f64, beats the unsplit
    // window + blocked-solve baseline by at least 3.0x.
    assert!(
        want.spike.speedup_at_p8_f64() >= raw_speed::SPIKE_FLOOR,
        "spike P = 8 f64 speedup {:.3} below the {}x floor",
        want.spike.speedup_at_p8_f64(),
        raw_speed::SPIKE_FLOOR
    );
}

#[test]
fn fleet_floors_hold() {
    let json = std::fs::read_to_string(TRAJECTORY)
        .expect("BENCH_raw_speed.json missing at repo root — run `repro raw_speed`");
    let want: RawSpeedReport = serde_json::from_str(&json).expect("trajectory JSON invalid");
    // The comparison runs the compositions the trajectory promises.
    assert_eq!(want.fleet.composition, raw_speed::FLEET_COMPOSITION);
    assert_eq!(want.fleet.baseline, raw_speed::FLEET_BASELINE);
    assert_eq!(want.fleet.requests, raw_speed::FLEET_REQUESTS);
    // Acceptance floor: the heterogeneous fleet beats the best single
    // device on the adversarial mix by at least FLEET_FLOOR.
    assert!(
        want.fleet.speedup >= raw_speed::FLEET_FLOOR,
        "fleet speedup {:.3} below the {}x floor",
        want.fleet.speedup,
        raw_speed::FLEET_FLOOR
    );
    // The throughput numbers are the makespan ratio, self-consistently.
    let tp_ratio = want.fleet.fleet_throughput_rps / want.fleet.baseline_throughput_rps;
    assert!((tp_ratio - want.fleet.speedup).abs() < 1e-9 * want.fleet.speedup);
    assert!(want.fleet.fleet_makespan_ms < want.fleet.baseline_makespan_ms);
    // Utilization accounting stays physical over the drained schedule.
    assert!(want.fleet.utilization_spread >= 0.0 && want.fleet.utilization_spread <= 1.0);
}
