//! The perf gate: replay the checked-in raw-speed trajectory
//! (`BENCH_raw_speed.json` at the repository root) and fail if the current
//! tree has drifted from it or fallen below the resident-engine floors.
//!
//! Every time in the trajectory comes from the simulator's analytic model,
//! so a healthy tree reproduces the file *exactly* — the tolerance below
//! only absorbs the JSON decimal round-trip. A mismatch means a code
//! change moved the modeled performance: either fix the regression or
//! regenerate the trajectory deliberately via
//! `cargo run --release -p gbatch-bench --bin repro -- raw_speed`
//! and justify the new numbers in the PR.

use gbatch_bench::raw_speed::{self, EngineSample, RawSpeedReport};

const TRAJECTORY: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_raw_speed.json");

/// Relative tolerance for replayed-vs-checked-in times: the model is
/// deterministic, so this only needs to cover JSON f64 round-trip noise.
const REL_TOL: f64 = 1e-12;

fn assert_close(name: &str, got: f64, want: f64) {
    let rel = (got - want).abs() / want.abs().max(f64::MIN_POSITIVE);
    assert!(
        rel <= REL_TOL,
        "{name}: replayed {got:.17e} vs checked-in {want:.17e} (rel {rel:.2e}) — \
         the perf trajectory drifted; fix the regression or regenerate \
         BENCH_raw_speed.json deliberately"
    );
}

fn assert_sample(name: &str, got: EngineSample, want: EngineSample) {
    assert_close(
        &format!("{name}.per_launch_ms"),
        got.per_launch_ms,
        want.per_launch_ms,
    );
    assert_close(
        &format!("{name}.resident_ms"),
        got.resident_ms,
        want.resident_ms,
    );
    assert_close(&format!("{name}.speedup"), got.speedup, want.speedup);
}

#[test]
fn checked_in_trajectory_replays_exactly() {
    let json = std::fs::read_to_string(TRAJECTORY)
        .expect("BENCH_raw_speed.json missing at repo root — run `repro raw_speed`");
    let want: RawSpeedReport = serde_json::from_str(&json).expect("trajectory JSON invalid");
    assert_eq!(want.batch, raw_speed::RAW_BATCH, "trajectory shape drifted");
    assert_eq!(want.n, raw_speed::RAW_N);

    let got = raw_speed::measure();
    assert_eq!(got.device, want.device, "trajectory device drifted");
    assert_sample("factor", got.factor, want.factor);
    assert_sample("solve", got.solve, want.solve);
    assert_sample("interleaved", got.interleaved, want.interleaved);
    assert_sample("serve_flush", got.serve_flush, want.serve_flush);
    assert_close("serve_spinup_ms", got.serve_spinup_ms, want.serve_spinup_ms);
}

#[test]
fn resident_engine_floors_hold() {
    let json = std::fs::read_to_string(TRAJECTORY)
        .expect("BENCH_raw_speed.json missing at repo root — run `repro raw_speed`");
    let want: RawSpeedReport = serde_json::from_str(&json).expect("trajectory JSON invalid");
    // The headline acceptance floor: a resident serve flush at batch 4096,
    // n 16 beats per-launch by at least 1.3x.
    assert!(
        want.serve_flush.speedup >= 1.3,
        "serve flush speedup {} below the 1.3x floor",
        want.serve_flush.speedup
    );
    // Resident never loses anywhere on the trajectory.
    for (name, s) in [
        ("factor", want.factor),
        ("solve", want.solve),
        ("interleaved", want.interleaved),
        ("serve_flush", want.serve_flush),
    ] {
        assert!(s.speedup > 1.0, "{name}: resident slower than per-launch");
    }
    // Spin-up is priced honestly: visible, positive, and bounded by the
    // device's one-time cost (it can never recur per flush).
    assert!(want.serve_spinup_ms > 0.0);
    assert!(want.serve_spinup_ms < want.serve_flush.per_launch_ms * 10.0);
}
