//! Shape-bucketed admission queue.
//!
//! Requests that can share one `dgbsv_batch` dispatch must agree on the
//! full geometry — order, bandwidths, right-hand-side count, storage — so
//! the queue is a map from a bucketing key to a FIFO bucket. The map is a
//! `BTreeMap` on purpose: keys are `Ord`, so every iteration order (and
//! therefore every tie-break between buckets with equal deadlines) is
//! deterministic.
//!
//! The queue is generic over the queued item through [`Bucketed`]: the
//! public serve API buckets plain [`SolveRequest`]s by [`ShapeKey`], while
//! the server internally buckets admitted records by `(ShapeKey, cache
//! tier)` so factor-cache hits flush as solve-only batches separate from
//! cold factorize-and-solve flushes.
//!
//! Capacity is bounded *globally* (total pending requests across all
//! buckets), which is the backpressure contract a caller can reason about:
//! a full service refuses work no matter which shape it is.

use std::collections::{BTreeMap, VecDeque};

use gbatch_core::ShapeKey;

use crate::request::SolveRequest;

/// An item the queue can bucket: a deterministic key plus the deadline
/// that drives the head-of-line flush trigger.
pub trait Bucketed {
    /// The bucketing key.
    type Key: Ord + Copy;
    /// This item's bucket.
    fn bucket_key(&self) -> Self::Key;
    /// Absolute response deadline, seconds on the virtual clock.
    fn deadline_s(&self) -> f64;
}

impl Bucketed for SolveRequest {
    type Key = ShapeKey;
    fn bucket_key(&self) -> ShapeKey {
        self.shape
    }
    fn deadline_s(&self) -> f64 {
        self.deadline_s
    }
}

/// One FIFO bucket of same-key items.
pub struct Bucket<R = SolveRequest> {
    reqs: VecDeque<R>,
}

impl<R> Default for Bucket<R> {
    fn default() -> Self {
        Bucket {
            reqs: VecDeque::new(),
        }
    }
}

impl<R> std::fmt::Debug for Bucket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bucket")
            .field("len", &self.reqs.len())
            .finish()
    }
}

impl<R: Bucketed> Bucket<R> {
    /// Requests currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Whether the bucket is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// Deadline of the oldest (front) request, if any. FIFO admission and
    /// a uniform per-request budget make the front request the most
    /// urgent one; with mixed budgets this is still the flush trigger the
    /// paper's serving analogues use (head-of-line deadline).
    #[must_use]
    pub fn oldest_deadline_s(&self) -> Option<f64> {
        self.reqs.front().map(Bucketed::deadline_s)
    }

    fn push(&mut self, req: R) {
        self.reqs.push_back(req);
    }

    fn take_all(&mut self) -> Vec<R> {
        self.reqs.drain(..).collect()
    }
}

/// The full admission queue: keyed buckets under one global bound.
pub struct BucketMap<R: Bucketed = SolveRequest> {
    buckets: BTreeMap<R::Key, Bucket<R>>,
    capacity: usize,
    pending: usize,
}

impl<R: Bucketed> std::fmt::Debug for BucketMap<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BucketMap")
            .field("pending", &self.pending)
            .field("capacity", &self.capacity)
            .field("buckets", &self.buckets.len())
            .finish()
    }
}

impl<R: Bucketed> BucketMap<R> {
    /// Empty queue with the given total capacity.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BucketMap {
            buckets: BTreeMap::new(),
            capacity,
            pending: 0,
        }
    }

    /// Total pending requests across all buckets.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Configured global capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether no request is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }

    /// Number of non-empty buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.buckets.values().filter(|b| !b.is_empty()).count()
    }

    /// Queue depth of one key's bucket.
    #[must_use]
    pub fn depth(&self, key: &R::Key) -> usize {
        self.buckets.get(key).map_or(0, Bucket::len)
    }

    /// Enqueue a request. Returns the new depth of its bucket, or hands
    /// the request back when the global capacity is reached (backpressure
    /// — the queue is untouched in that case).
    pub fn push(&mut self, req: R) -> Result<usize, R> {
        if self.pending >= self.capacity {
            return Err(req);
        }
        let bucket = self.buckets.entry(req.bucket_key()).or_default();
        bucket.push(req);
        self.pending += 1;
        Ok(bucket.len())
    }

    /// Remove and return every request of one bucket, in FIFO order.
    pub fn take(&mut self, key: &R::Key) -> Vec<R> {
        let Some(bucket) = self.buckets.get_mut(key) else {
            return Vec::new();
        };
        let reqs = bucket.take_all();
        self.pending -= reqs.len();
        reqs
    }

    /// The most urgent bucket: smallest head-of-line deadline over all
    /// non-empty buckets, ties broken by key order (the `BTreeMap`
    /// iteration order — strictly deterministic).
    #[must_use]
    pub fn next_deadline(&self) -> Option<(f64, R::Key)> {
        let mut best: Option<(f64, R::Key)> = None;
        for (key, bucket) in &self.buckets {
            if let Some(dl) = bucket.oldest_deadline_s() {
                if best.is_none_or(|(b, _)| dl < b) {
                    best = Some((dl, *key));
                }
            }
        }
        best
    }

    /// Keys of all non-empty buckets, in deterministic (`Ord`) order.
    #[must_use]
    pub fn occupied_keys(&self) -> Vec<R::Key> {
        self.buckets
            .iter()
            .filter(|(_, b)| !b.is_empty())
            .map(|(k, _)| *k)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, shape: ShapeKey, at: f64, dl: f64) -> SolveRequest {
        SolveRequest {
            id,
            shape,
            ab: vec![0.0; shape.ab_len()],
            rhs: vec![0.0; shape.rhs_len()],
            submitted_s: at,
            deadline_s: dl,
        }
    }

    #[test]
    fn fifo_within_bucket_and_capacity_bound() {
        let s = ShapeKey::gbsv(8, 1, 1, 1);
        let mut q = BucketMap::new(3);
        assert_eq!(q.push(req(0, s, 0.0, 1.0)).unwrap(), 1);
        assert_eq!(q.push(req(1, s, 0.1, 1.1)).unwrap(), 2);
        assert_eq!(q.push(req(2, s, 0.2, 1.2)).unwrap(), 3);
        // Full: the fourth request bounces back intact.
        let bounced = q.push(req(3, s, 0.3, 1.3)).unwrap_err();
        assert_eq!(bounced.id, 3);
        assert_eq!(q.pending(), 3);
        let drained = q.take(&s);
        assert_eq!(drained.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert!(q.is_empty());
        // Capacity freed: admission resumes.
        assert_eq!(q.push(req(3, s, 0.3, 1.3)).unwrap(), 1);
    }

    #[test]
    fn next_deadline_prefers_urgency_then_key_order() {
        let a = ShapeKey::gbsv(8, 1, 1, 1);
        let b = ShapeKey::gbsv(16, 2, 2, 1);
        let mut q = BucketMap::new(16);
        q.push(req(0, b, 0.0, 0.5)).unwrap();
        q.push(req(1, a, 0.0, 0.7)).unwrap();
        assert_eq!(q.next_deadline(), Some((0.5, b)));
        // Equal head deadlines: the smaller ShapeKey wins the tie.
        let mut q = BucketMap::new(16);
        q.push(req(0, b, 0.0, 0.5)).unwrap();
        q.push(req(1, a, 0.0, 0.5)).unwrap();
        assert_eq!(q.next_deadline(), Some((0.5, a.min(b))));
    }

    #[test]
    fn buckets_partition_by_shape() {
        let a = ShapeKey::gbsv(8, 1, 1, 1);
        let b = ShapeKey::gbsv(8, 1, 1, 2);
        let mut q = BucketMap::new(16);
        q.push(req(0, a, 0.0, 1.0)).unwrap();
        q.push(req(1, b, 0.0, 1.0)).unwrap();
        q.push(req(2, a, 0.0, 1.0)).unwrap();
        assert_eq!(q.depth(&a), 2);
        assert_eq!(q.depth(&b), 1);
        assert_eq!(q.bucket_count(), 2);
        assert_eq!(q.occupied_keys(), vec![a.min(b), a.max(b)]);
    }
}
