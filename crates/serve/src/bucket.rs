//! Shape-bucketed admission queue, sharded by key hash.
//!
//! Requests that can share one `dgbsv_batch` dispatch must agree on the
//! full geometry — order, bandwidths, right-hand-side count, storage — so
//! the queue is a map from a bucketing key to a FIFO bucket. Each shard is
//! a `BTreeMap` on purpose: keys are `Ord`, so every iteration order (and
//! therefore every tie-break between buckets with equal deadlines) is
//! deterministic.
//!
//! The map is split into independently locked **shards** selected by a
//! deterministic hash of the bucketing key, so concurrent admission
//! ([`BucketMap::push_shared`]) of different shapes contends only on the
//! global pending counter (one atomic), not on one big lock — admission
//! scales with cores while the drain side stays exactly as deterministic
//! as the unsharded queue: every cross-shard query ([`next_deadline`],
//! [`occupied_keys`]) merges shard results in key order, so sharding is
//! invisible to scheduling decisions.
//!
//! The queue is generic over the queued item through [`Bucketed`]: the
//! public serve API buckets plain [`SolveRequest`]s by [`ShapeKey`], while
//! the server internally buckets admitted records by `(ShapeKey, cache
//! tier)` so factor-cache hits flush as solve-only batches separate from
//! cold factorize-and-solve flushes.
//!
//! Capacity is bounded *globally* (total pending requests across all
//! buckets), which is the backpressure contract a caller can reason about:
//! a full service refuses work no matter which shape it is.
//!
//! [`next_deadline`]: BucketMap::next_deadline
//! [`occupied_keys`]: BucketMap::occupied_keys

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use gbatch_core::ShapeKey;

use crate::request::SolveRequest;

/// Default shard count: enough lock granularity for every host core this
/// workspace targets, small enough that cross-shard merges stay cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// An item the queue can bucket: a deterministic key plus the deadline
/// that drives the head-of-line flush trigger.
pub trait Bucketed {
    /// The bucketing key. `Hash` selects the shard; `Ord` keeps every
    /// cross-bucket tie-break deterministic.
    type Key: Ord + Copy + Hash;
    /// This item's bucket.
    fn bucket_key(&self) -> Self::Key;
    /// Absolute response deadline, seconds on the virtual clock.
    fn deadline_s(&self) -> f64;
}

impl Bucketed for SolveRequest {
    type Key = ShapeKey;
    fn bucket_key(&self) -> ShapeKey {
        self.shape
    }
    fn deadline_s(&self) -> f64 {
        self.deadline_s
    }
}

/// One FIFO bucket of same-key items.
pub struct Bucket<R = SolveRequest> {
    reqs: VecDeque<R>,
}

impl<R> Default for Bucket<R> {
    fn default() -> Self {
        Bucket {
            reqs: VecDeque::new(),
        }
    }
}

impl<R> std::fmt::Debug for Bucket<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bucket")
            .field("len", &self.reqs.len())
            .finish()
    }
}

impl<R: Bucketed> Bucket<R> {
    /// Requests currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// Whether the bucket is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// Deadline of the oldest (front) request, if any. FIFO admission and
    /// a uniform per-request budget make the front request the most
    /// urgent one; with mixed budgets this is still the flush trigger the
    /// paper's serving analogues use (head-of-line deadline).
    #[must_use]
    pub fn oldest_deadline_s(&self) -> Option<f64> {
        self.reqs.front().map(Bucketed::deadline_s)
    }

    fn push(&mut self, req: R) {
        self.reqs.push_back(req);
    }

    fn take_all(&mut self) -> Vec<R> {
        self.reqs.drain(..).collect()
    }
}

/// The full admission queue: keyed buckets under one global bound, split
/// into hash-selected shards with independent locks.
pub struct BucketMap<R: Bucketed = SolveRequest> {
    shards: Vec<Mutex<BTreeMap<R::Key, Bucket<R>>>>,
    capacity: usize,
    pending: AtomicUsize,
}

impl<R: Bucketed> std::fmt::Debug for BucketMap<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BucketMap")
            .field("pending", &self.pending())
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl<R: Bucketed> BucketMap<R> {
    /// Empty queue with the given total capacity and [`DEFAULT_SHARDS`]
    /// shards.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Empty queue with an explicit shard count. Shard count changes lock
    /// granularity only — every scheduling-visible query merges shards in
    /// key order, so behavior is identical for any count.
    #[must_use]
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        assert!(shards > 0, "need at least one shard");
        BucketMap {
            shards: (0..shards).map(|_| Mutex::new(BTreeMap::new())).collect(),
            capacity,
            pending: AtomicUsize::new(0),
        }
    }

    /// Which shard a key lives in: a deterministic hash (fixed-key
    /// SipHash), stable for the life of the process.
    fn shard_of(&self, key: &R::Key) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Total pending requests across all buckets.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// Configured global capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of shards (lock granularity).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether no request is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// Number of non-empty buckets.
    #[must_use]
    pub fn bucket_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().values().filter(|b| !b.is_empty()).count())
            .sum()
    }

    /// Queue depth of one key's bucket.
    #[must_use]
    pub fn depth(&self, key: &R::Key) -> usize {
        self.shards[self.shard_of(key)]
            .lock()
            .unwrap()
            .get(key)
            .map_or(0, Bucket::len)
    }

    /// Enqueue a request. Returns the new depth of its bucket, or hands
    /// the request back when the global capacity is reached (backpressure
    /// — the queue is untouched in that case).
    pub fn push(&mut self, req: R) -> Result<usize, R> {
        self.push_shared(req)
    }

    /// [`BucketMap::push`] through a shared reference: the concurrent
    /// admission path. Capacity is reserved on the global atomic first
    /// (exact — a rejected request never touches a shard lock), then only
    /// the key's own shard is locked, so admissions of different shapes
    /// from different threads proceed in parallel.
    pub fn push_shared(&self, req: R) -> Result<usize, R> {
        if self
            .pending
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |p| {
                (p < self.capacity).then_some(p + 1)
            })
            .is_err()
        {
            return Err(req);
        }
        let mut shard = self.shards[self.shard_of(&req.bucket_key())]
            .lock()
            .unwrap();
        let bucket = shard.entry(req.bucket_key()).or_default();
        bucket.push(req);
        Ok(bucket.len())
    }

    /// Remove and return every request of one bucket, in FIFO order.
    pub fn take(&mut self, key: &R::Key) -> Vec<R> {
        let mut shard = self.shards[self.shard_of(key)].lock().unwrap();
        let Some(bucket) = shard.get_mut(key) else {
            return Vec::new();
        };
        let reqs = bucket.take_all();
        drop(shard);
        self.pending.fetch_sub(reqs.len(), Ordering::SeqCst);
        reqs
    }

    /// The most urgent bucket: smallest head-of-line deadline over all
    /// non-empty buckets, ties broken by key order. Shard-local minima
    /// (each deterministic by `BTreeMap` iteration) merge under the same
    /// `(deadline, key)` order, so the answer is independent of the shard
    /// count and bitwise-stable.
    #[must_use]
    pub fn next_deadline(&self) -> Option<(f64, R::Key)> {
        let mut best: Option<(f64, R::Key)> = None;
        for s in &self.shards {
            for (key, bucket) in s.lock().unwrap().iter() {
                if let Some(dl) = bucket.oldest_deadline_s() {
                    if best.is_none_or(|(bd, bk)| dl < bd || (dl == bd && *key < bk)) {
                        best = Some((dl, *key));
                    }
                }
            }
        }
        best
    }

    /// Keys of all non-empty buckets, in deterministic (`Ord`) order —
    /// shard placement never leaks into the result.
    #[must_use]
    pub fn occupied_keys(&self) -> Vec<R::Key> {
        let mut keys: Vec<R::Key> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .unwrap()
                    .iter()
                    .filter(|(_, b)| !b.is_empty())
                    .map(|(k, _)| *k)
                    .collect::<Vec<_>>()
            })
            .collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, shape: ShapeKey, at: f64, dl: f64) -> SolveRequest {
        SolveRequest {
            id,
            shape,
            ab: vec![0.0; shape.ab_len()],
            rhs: vec![0.0; shape.rhs_len()],
            submitted_s: at,
            deadline_s: dl,
        }
    }

    #[test]
    fn fifo_within_bucket_and_capacity_bound() {
        let s = ShapeKey::gbsv(8, 1, 1, 1);
        let mut q = BucketMap::new(3);
        assert_eq!(q.push(req(0, s, 0.0, 1.0)).unwrap(), 1);
        assert_eq!(q.push(req(1, s, 0.1, 1.1)).unwrap(), 2);
        assert_eq!(q.push(req(2, s, 0.2, 1.2)).unwrap(), 3);
        // Full: the fourth request bounces back intact.
        let bounced = q.push(req(3, s, 0.3, 1.3)).unwrap_err();
        assert_eq!(bounced.id, 3);
        assert_eq!(q.pending(), 3);
        let drained = q.take(&s);
        assert_eq!(drained.iter().map(|r| r.id).collect::<Vec<_>>(), [0, 1, 2]);
        assert!(q.is_empty());
        // Capacity freed: admission resumes.
        assert_eq!(q.push(req(3, s, 0.3, 1.3)).unwrap(), 1);
    }

    #[test]
    fn next_deadline_prefers_urgency_then_key_order() {
        let a = ShapeKey::gbsv(8, 1, 1, 1);
        let b = ShapeKey::gbsv(16, 2, 2, 1);
        let mut q = BucketMap::new(16);
        q.push(req(0, b, 0.0, 0.5)).unwrap();
        q.push(req(1, a, 0.0, 0.7)).unwrap();
        assert_eq!(q.next_deadline(), Some((0.5, b)));
        // Equal head deadlines: the smaller ShapeKey wins the tie.
        let mut q = BucketMap::new(16);
        q.push(req(0, b, 0.0, 0.5)).unwrap();
        q.push(req(1, a, 0.0, 0.5)).unwrap();
        assert_eq!(q.next_deadline(), Some((0.5, a.min(b))));
    }

    #[test]
    fn buckets_partition_by_shape() {
        let a = ShapeKey::gbsv(8, 1, 1, 1);
        let b = ShapeKey::gbsv(8, 1, 1, 2);
        let mut q = BucketMap::new(16);
        q.push(req(0, a, 0.0, 1.0)).unwrap();
        q.push(req(1, b, 0.0, 1.0)).unwrap();
        q.push(req(2, a, 0.0, 1.0)).unwrap();
        assert_eq!(q.depth(&a), 2);
        assert_eq!(q.depth(&b), 1);
        assert_eq!(q.bucket_count(), 2);
        assert_eq!(q.occupied_keys(), vec![a.min(b), a.max(b)]);
    }

    #[test]
    fn behavior_is_invariant_under_shard_count() {
        // The same push sequence through 1, 3 and 16 shards yields
        // identical scheduling-visible state: sharding is lock
        // granularity, nothing else.
        type VisibleState = (Vec<ShapeKey>, Option<(f64, ShapeKey)>);
        let shapes: Vec<ShapeKey> = (1..8).map(|k| ShapeKey::gbsv(8 * k, 1, 1, 1)).collect();
        let runs: Vec<VisibleState> = [1usize, 3, 16]
            .into_iter()
            .map(|shards| {
                let mut q = BucketMap::with_shards(64, shards);
                for (i, s) in shapes.iter().cycle().take(21).enumerate() {
                    q.push(req(i as u64, *s, 0.0, 1.0 + (i % 5) as f64 * 0.1))
                        .unwrap();
                }
                assert_eq!(q.pending(), 21);
                (q.occupied_keys(), q.next_deadline())
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn concurrent_admission_conserves_and_respects_capacity() {
        let q = BucketMap::<SolveRequest>::with_shards(500, 8);
        let shapes: Vec<ShapeKey> = (1..9).map(|k| ShapeKey::gbsv(8 * k, 1, 1, 1)).collect();
        std::thread::scope(|scope| {
            for (t, &shape) in shapes.iter().enumerate() {
                let q = &q;
                scope.spawn(move || {
                    let mut rejected = 0usize;
                    for i in 0..100u64 {
                        if q.push_shared(req(t as u64 * 1000 + i, shape, 0.0, 1.0))
                            .is_err()
                        {
                            rejected += 1;
                        }
                    }
                    rejected
                });
            }
        });
        // 8 threads x 100 requests against capacity 500: exactly 500
        // admitted, the rest bounced, no lost updates.
        assert_eq!(q.pending(), 500);
        let total: usize = shapes.iter().map(|s| q.depth(s)).sum();
        assert_eq!(total, 500);
    }
}
