//! Flush policy: when a bucket stops waiting and becomes a dispatch.
//!
//! Dynamic batching trades latency for amortization. Each queued bucket
//! waits for more same-shape arrivals so one `dgbsv_batch` launch covers
//! them all; it stops waiting when either
//!
//! 1. the bucket reaches the **target batch size** (the launch overhead is
//!    amortized well enough that waiting longer buys nothing), or
//! 2. the **head-of-line deadline** is about to expire (waiting longer
//!    would break the oldest request's budget), or
//! 3. the service is **drained** (shutdown flushes everything).
//!
//! The target size is not arbitrary: a flush pays the simulated device's
//! kernel launch overhead plus the host's serialized dispatch cost (the
//! same [`DISPATCH_OVERHEAD_S`] constant that prices the paper's Figure 1
//! streams baseline), so [`FlushPolicy::suggested_target_batch`] picks the
//! smallest batch for which that per-flush cost is a bounded fraction of
//! the batch's own memory traffic.

use gbatch_core::ShapeKey;
use gbatch_gpu_sim::device::DeviceSpec;
use gbatch_gpu_sim::stream::DISPATCH_OVERHEAD_S;

/// Why a bucket was flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushReason {
    /// The bucket reached the target batch size.
    SizeReached,
    /// The head-of-line request's deadline budget was about to expire.
    DeadlineExpired,
    /// The service was drained.
    Drain,
}

impl std::fmt::Display for FlushReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlushReason::SizeReached => write!(f, "size"),
            FlushReason::DeadlineExpired => write!(f, "deadline"),
            FlushReason::Drain => write!(f, "drain"),
        }
    }
}

/// Tunable flush behavior.
#[derive(Debug, Clone, Copy)]
pub struct FlushPolicy {
    /// Flush a bucket as soon as it holds this many requests.
    pub target_batch: usize,
    /// Deadline and drain flushes smaller than this spill to the CPU
    /// backend: a sub-critical batch cannot amortize a device launch, and
    /// the multicore solver answers small batches with less added queueing.
    pub min_gpu_batch: usize,
    /// A deadline flush whose device start would lag the flush instant by
    /// more than this (the device is busy with earlier flushes — the
    /// engine is saturated) spills to the CPU backend instead of queueing
    /// behind the backlog.
    pub spill_slack_s: f64,
    /// Flush a bucket this long *before* its head-of-line deadline, so the
    /// solve has budget left to actually run.
    pub flush_margin_s: f64,
    /// Per-request timeout: a request whose batch would *start* later than
    /// `deadline + timeout_slack_s` is dropped with
    /// [`SolveStatus::TimedOut`](crate::SolveStatus::TimedOut) instead of
    /// being solved uselessly late. `INFINITY` (the default) disables the
    /// drop: late answers are still answers, and the deadline-miss counter
    /// records the damage.
    pub timeout_slack_s: f64,
}

impl Default for FlushPolicy {
    fn default() -> Self {
        FlushPolicy {
            target_batch: 64,
            min_gpu_batch: 8,
            spill_slack_s: 0.0,
            flush_margin_s: 1.0e-3,
            timeout_slack_s: f64::INFINITY,
        }
    }
}

impl FlushPolicy {
    /// Builder: set the target batch size.
    #[must_use]
    pub fn with_target_batch(mut self, target_batch: usize) -> Self {
        assert!(target_batch > 0, "target batch must be positive");
        self.target_batch = target_batch;
        self
    }

    /// Builder: set the minimum GPU-worthy batch.
    #[must_use]
    pub fn with_min_gpu_batch(mut self, min_gpu_batch: usize) -> Self {
        self.min_gpu_batch = min_gpu_batch;
        self
    }

    /// Builder: set the saturation spill slack.
    #[must_use]
    pub fn with_spill_slack_s(mut self, spill_slack_s: f64) -> Self {
        self.spill_slack_s = spill_slack_s;
        self
    }

    /// Builder: set the deadline flush margin.
    #[must_use]
    pub fn with_flush_margin_s(mut self, flush_margin_s: f64) -> Self {
        self.flush_margin_s = flush_margin_s;
        self
    }

    /// Builder: set the per-request timeout slack.
    #[must_use]
    pub fn with_timeout_slack_s(mut self, timeout_slack_s: f64) -> Self {
        self.timeout_slack_s = timeout_slack_s;
        self
    }

    /// Smallest batch size for which the per-flush launch cost (device
    /// kernel launch overhead + one serialized host dispatch) is at most
    /// `overhead_fraction` of the batch's own memory traffic on `dev`.
    ///
    /// The traffic estimate is the solve's unavoidable streaming volume —
    /// read the band payload, read and write the right-hand side — which
    /// is the right first-order scale for these memory-bound kernels. The
    /// result is clamped to `[1, 1024]`.
    ///
    /// # Panics
    /// Panics when `overhead_fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn suggested_target_batch(
        dev: &DeviceSpec,
        key: &ShapeKey,
        overhead_fraction: f64,
    ) -> usize {
        assert!(
            overhead_fraction > 0.0 && overhead_fraction <= 1.0,
            "overhead fraction must be in (0, 1]"
        );
        // Read + write the band payload, read + write the RHS — at the
        // key's own element width (F32-tagged keys stream half the bytes
        // of F64 ones, so they need proportionally deeper batching).
        let bytes = ((key.ab_len() + 2 * key.rhs_len()) * key.elem_bytes()) as f64;
        let per_req_s = bytes / dev.mem_bw;
        let launch_s = dev.launch_overhead_s + DISPATCH_OVERHEAD_S;
        let target = (launch_s / (overhead_fraction * per_req_s)).ceil();
        (target as usize).clamp(1, 1024)
    }

    /// [`FlushPolicy::suggested_target_batch`] for warm (cached-factor,
    /// GBTRS-only) traffic. A warm request streams the retained factors
    /// once — at the *cache's* element width, so F32-tagged keys count 4
    /// bytes per factor element — and its right-hand side twice, and it
    /// skips the factorization entirely. Less work per request means the
    /// launch cost looms larger, so the warm target is at least the cold
    /// one: a warm bucket should wait for *more* company before it is
    /// worth a device launch. Clamped to `[1, 1024]` like the cold
    /// variant.
    ///
    /// # Panics
    /// Panics when `overhead_fraction` is not in `(0, 1]`.
    #[must_use]
    pub fn suggested_warm_target_batch(
        dev: &DeviceSpec,
        key: &ShapeKey,
        overhead_fraction: f64,
    ) -> usize {
        assert!(
            overhead_fraction > 0.0 && overhead_fraction <= 1.0,
            "overhead fraction must be in (0, 1]"
        );
        // Read the factored band, read + write the RHS; no band writeback
        // and no factorization sweep.
        let bytes = ((key.ab_len() + 2 * key.rhs_len()) * key.elem_bytes()) as f64;
        let per_req_s = bytes / dev.mem_bw;
        let launch_s = dev.launch_overhead_s + DISPATCH_OVERHEAD_S;
        let target = (launch_s / (overhead_fraction * per_req_s)).ceil();
        (target as usize)
            .clamp(1, 1024)
            .max(Self::suggested_target_batch(dev, key, overhead_fraction))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggested_target_shrinks_with_request_size() {
        let dev = DeviceSpec::h100_pcie();
        let tiny = ShapeKey::gbsv(32, 1, 1, 1);
        let big = ShapeKey::gbsv(512, 30, 30, 4);
        let t_tiny = FlushPolicy::suggested_target_batch(&dev, &tiny, 0.1);
        let t_big = FlushPolicy::suggested_target_batch(&dev, &big, 0.1);
        assert!(
            t_tiny > t_big,
            "smaller requests need more batching: {t_tiny} vs {t_big}"
        );
        assert!(t_tiny > 1);
        // Looser overhead budgets tolerate smaller batches.
        let loose = FlushPolicy::suggested_target_batch(&dev, &tiny, 1.0);
        assert!(loose <= t_tiny);
    }

    #[test]
    fn cold_target_is_precision_aware() {
        // Regression: the cold estimate used to hardcode 8-byte elements,
        // so F32-tagged keys under-batched by 2x.
        let dev = DeviceSpec::h100_pcie();
        let t64 = FlushPolicy::suggested_target_batch(&dev, &ShapeKey::gbsv(512, 30, 30, 4), 0.1);
        let t32 = FlushPolicy::suggested_target_batch(&dev, &ShapeKey::sgbsv(512, 30, 30, 4), 0.1);
        assert!(
            t32 >= 2 * t64 - 1,
            "f32 requests stream half the bytes and need ~2x the batch: {t32} vs {t64}"
        );
    }

    #[test]
    fn warm_target_is_at_least_cold_and_precision_aware() {
        let dev = DeviceSpec::h100_pcie();
        let key = ShapeKey::gbsv(32, 1, 1, 1);
        let cold = FlushPolicy::suggested_target_batch(&dev, &key, 0.1);
        let warm = FlushPolicy::suggested_warm_target_batch(&dev, &key, 0.1);
        assert!(warm >= cold, "warm {warm} must not undercut cold {cold}");
        // F32-tagged traffic halves the streamed bytes, so the warm
        // target must grow (or stay at the clamp).
        let warm32 =
            FlushPolicy::suggested_warm_target_batch(&dev, &ShapeKey::sgbsv(32, 1, 1, 1), 0.1);
        assert!(warm32 >= warm, "f32 warm {warm32} vs f64 warm {warm}");
    }

    #[test]
    fn suggested_target_is_clamped() {
        let dev = DeviceSpec::test_device();
        let huge = ShapeKey::gbsv(4096, 200, 200, 16);
        assert!(FlushPolicy::suggested_target_batch(&dev, &huge, 1.0) >= 1);
        let tiny = ShapeKey::gbsv(2, 0, 0, 1);
        assert!(FlushPolicy::suggested_target_batch(&dev, &tiny, 1e-9) <= 1024);
    }
}
