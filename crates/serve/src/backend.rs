//! Solve backends: where a flushed batch actually runs.
//!
//! The server routes each flush to one of two engines:
//!
//! - [`GpuBackend`] — the simulated-GPU batch path: the flush is split
//!   across a [`DeviceGroup`] (one partition per device, e.g. the two GCDs
//!   of an MI250x) and each partition runs one `dgbsv_batch` dispatch.
//!   Service time is the group makespan, so the server's busy-tracking
//!   sees the same launch-overhead economics as the paper's Figure 1.
//! - [`CpuBackend`] — the multicore spill-over path (`cpu_gbsv_batch`),
//!   used for batches too small or too stale to be worth a device launch.
//!
//! Payloads travel in `f64` on the wire regardless of precision; a key
//! tagged [`Precision::F32`] means the client accepts single-precision
//! compute, so the flush is narrowed at assembly and runs on the `f32`
//! instantiation of the batch stack (`sgbsv_batch` on the GPU, the `f32`
//! core driver on the CPU) — half the shared-memory footprint, twice the
//! modeled fp32 lane throughput. Because [`ShapeKey`] carries the
//! precision, f32 and f64 traffic of the same geometry never share a
//! bucket or a launch.
//!
//! Both are behind the [`SolveBackend`] trait so tests can inject faulting
//! doubles to exercise the server's bisect-retry logic.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use gbatch_core::gbtrs::Transpose;
use gbatch_core::layout::BandLayout;
use gbatch_core::spike::{spike_factorize, spike_solve_retained};
use gbatch_core::{
    BandBatch, BandMatrixRef, FactorPayload, InfoArray, PivotBatch, Precision, RetainedFactor,
    RhsBatch, ShapeKey,
};
use gbatch_cpu::{cpu_gbsv_batch, CpuSpec};
use gbatch_gpu_sim::engine::LaunchError;
use gbatch_gpu_sim::multi::DeviceGroup;
use gbatch_gpu_sim::{DeviceSpec, EngineMode, MegabatchQueue, ParallelPolicy, SimTime};
use gbatch_kernels::cost::{predict_spike_time, CrossoverModel};
use gbatch_kernels::dispatch::{ChosenAlgo, GbsvOptions, MatrixLayout, SPIKE_MIN_N};
use gbatch_kernels::spike::SpikeParams;
use gbatch_kernels::window::WindowParams;
use gbatch_tuning::TuningTable;

use crate::request::SolveRequest;

/// Which engine a batch ran on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Simulated-GPU batch dispatch.
    Gpu,
    /// Multicore CPU spill-over.
    Cpu,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Gpu => write!(f, "gpu"),
            BackendKind::Cpu => write!(f, "cpu"),
        }
    }
}

/// A batch-level backend failure (the whole dispatch, not one lane —
/// singular lanes are per-lane data, reported through
/// [`BatchSolution::info`]).
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The simulated device refused the launch.
    Launch(LaunchError),
    /// An injected fault (test doubles) or other backend-specific failure.
    Fault(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::Launch(e) => write!(f, "launch rejected: {e}"),
            BackendError::Fault(why) => write!(f, "backend fault: {why}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// Result of one backend batch: per-request solutions and LAPACK `info`
/// codes (aligned with the request slice), plus the modeled busy time.
#[derive(Debug, Clone)]
pub struct BatchSolution {
    /// Per-request solution vectors; a singular lane's entry is its
    /// untouched right-hand side.
    pub x: Vec<Vec<f64>>,
    /// Per-request LAPACK `info` (0 = solved, `j > 0` = first zero pivot
    /// at 1-based column `j`).
    pub info: Vec<i32>,
    /// Modeled backend busy time for the batch, in seconds.
    pub service_s: f64,
}

/// Per-request retained factors aligned with a batch (`None` for lanes
/// whose factorization failed or was not harvested).
pub type RetainedLanes = Vec<Option<Arc<RetainedFactor>>>;

/// Result of a factor-only batch ([`SolveBackend::factorize`]).
#[derive(Debug, Clone)]
pub struct FactorOutcome {
    /// Per-operator retained factors; `None` for singular lanes.
    pub factors: RetainedLanes,
    /// Per-operator LAPACK `info` codes.
    pub info: Vec<i32>,
    /// Modeled backend busy time for the batch, in seconds.
    pub service_s: f64,
}

/// A batch solver the server can route flushes to.
pub trait SolveBackend {
    /// Which engine this is (stamped on responses).
    fn kind(&self) -> BackendKind;

    /// Solve every request of one same-shape batch. Implementations must
    /// be deterministic: identical inputs produce bitwise-identical
    /// solutions and service times.
    fn solve(&self, shape: &ShapeKey, reqs: &[SolveRequest])
        -> Result<BatchSolution, BackendError>;

    /// [`SolveBackend::solve`], additionally harvesting each healthy
    /// lane's factorization for a factor cache. The default never
    /// retains (`None` per lane), so simple test doubles keep compiling
    /// and simply opt out of caching.
    fn solve_retaining(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
    ) -> Result<(BatchSolution, RetainedLanes), BackendError> {
        let sol = self.solve(shape, reqs)?;
        let lanes = vec![None; sol.x.len()];
        Ok((sol, lanes))
    }

    /// Solve a batch over **cached factors** — the GBTRS-only fast path.
    /// `factors` is aligned with `reqs`. The default falls back to a full
    /// factorize-and-solve (correct, merely not fast), so test doubles
    /// and exotic backends need not implement the fast path.
    fn solve_with(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
        factors: &[Arc<RetainedFactor>],
    ) -> Result<BatchSolution, BackendError> {
        let _ = factors;
        self.solve(shape, reqs)
    }

    /// Factor a batch of operators without solving (the explicit
    /// `Factorize` entry point). `operators` are band payloads in wire
    /// (`f64`) form. Backends that cannot factor standalone return a
    /// fault; the server treats that as "no factor-ahead support".
    fn factorize(
        &self,
        shape: &ShapeKey,
        operators: &[&[f64]],
    ) -> Result<FactorOutcome, BackendError> {
        let _ = (shape, operators);
        Err(BackendError::Fault(
            "factor-only entry point unsupported by this backend".into(),
        ))
    }

    /// The simulated device this backend launches on, when it has one.
    /// The fleet router prices each bucket against this spec (shared
    /// memory decides fused eligibility, bandwidth and launch overhead
    /// decide the service-time estimate). `None` — the default, kept by
    /// CPU pools and test doubles — means "no device model": the router
    /// can still route there but estimates zero device time, which is
    /// exactly the pre-fleet behavior for the CPU spill path.
    fn device(&self) -> Option<&DeviceSpec> {
        None
    }
}

/// Copy the requests' payloads into freshly-allocated batch containers.
fn assemble(
    shape: &ShapeKey,
    reqs: &[SolveRequest],
) -> Result<(BandBatch, PivotBatch, RhsBatch, InfoArray), BackendError> {
    let l = shape
        .layout()
        .map_err(|e| BackendError::Fault(format!("invalid shape {shape}: {e}")))?;
    let batch = reqs.len();
    let mut a = BandBatch::zeros_with_layout(l, batch)
        .map_err(|e| BackendError::Fault(format!("band allocation failed: {e}")))?;
    let mut rhs = RhsBatch::zeros(batch, l.n, shape.nrhs)
        .map_err(|e| BackendError::Fault(format!("rhs allocation failed: {e}")))?;
    let stride = a.matrix_stride();
    for (k, r) in reqs.iter().enumerate() {
        a.data_mut()[k * stride..(k + 1) * stride].copy_from_slice(&r.ab);
        rhs.block_mut(k).copy_from_slice(&r.rhs);
    }
    let piv = PivotBatch::new(batch, l.m, l.n);
    let info = InfoArray::new(batch);
    Ok((a, piv, rhs, info))
}

/// [`assemble`] for an F32-tagged key: the `f64` wire payloads are
/// narrowed element-wise into `f32` batch containers.
fn assemble_f32(
    shape: &ShapeKey,
    reqs: &[SolveRequest],
) -> Result<(BandBatch<f32>, PivotBatch, RhsBatch<f32>, InfoArray), BackendError> {
    let l = shape
        .layout()
        .map_err(|e| BackendError::Fault(format!("invalid shape {shape}: {e}")))?;
    let batch = reqs.len();
    let mut a = BandBatch::<f32>::zeros_with_layout(l, batch)
        .map_err(|e| BackendError::Fault(format!("band allocation failed: {e}")))?;
    let mut rhs = RhsBatch::<f32>::zeros(batch, l.n, shape.nrhs)
        .map_err(|e| BackendError::Fault(format!("rhs allocation failed: {e}")))?;
    let stride = a.matrix_stride();
    for (k, r) in reqs.iter().enumerate() {
        for (dst, &src) in a.data_mut()[k * stride..(k + 1) * stride]
            .iter_mut()
            .zip(&r.ab)
        {
            *dst = src as f32;
        }
        for (dst, &src) in rhs.block_mut(k).iter_mut().zip(&r.rhs) {
            *dst = src as f32;
        }
    }
    let piv = PivotBatch::new(batch, l.m, l.n);
    let info = InfoArray::new(batch);
    Ok((a, piv, rhs, info))
}

/// Whether a shape is served by the SPIKE split regime on the device: at
/// or past the dispatch floor, with a band to actually split.
fn spike_worthy(shape: &ShapeKey) -> bool {
    shape.n >= SPIKE_MIN_N && shape.kl + shape.ku > 0
}

/// Harvest a large-`n` operator as a retained SPIKE factorization
/// (`f64`). `None` when any block or the reduced system factors singular
/// — callers skip retention and stay correct.
fn spike_retain_f64(dev: &DeviceSpec, l: &BandLayout, ab: &[f64]) -> Option<Arc<RetainedFactor>> {
    let parts = SpikeParams::auto(dev, l.kl).parts;
    let aref = BandMatrixRef {
        layout: *l,
        data: ab,
    };
    spike_factorize(&aref, parts).ok().map(|f| {
        Arc::new(RetainedFactor {
            layout: *l,
            payload: FactorPayload::SpikeF64(Box::new(f)),
            pivots: Vec::new(),
        })
    })
}

/// [`spike_retain_f64`] for F32-tagged traffic: the wire payload is
/// narrowed before the split factorization, matching the precision the
/// device solve ran at.
fn spike_retain_f32(dev: &DeviceSpec, l: &BandLayout, ab: &[f64]) -> Option<Arc<RetainedFactor>> {
    let parts = SpikeParams::auto(dev, l.kl).parts;
    let narrowed: Vec<f32> = ab.iter().map(|&v| v as f32).collect();
    let aref = BandMatrixRef {
        layout: *l,
        data: &narrowed[..],
    };
    spike_factorize(&aref, parts).ok().map(|f| {
        Arc::new(RetainedFactor {
            layout: *l,
            payload: FactorPayload::SpikeF32(Box::new(f)),
            pivots: Vec::new(),
        })
    })
}

/// Price the host-side split refactorization that retention runs when a
/// SPIKE-dispatched lane's factors are harvested ([`spike_retain_f64`] /
/// [`spike_retain_f32`] re-run `spike_factorize` from the original band),
/// using the same factor-phase cost terms as [`GpuBackend::factorize_spike`].
fn spike_retention_time(
    dev: &DeviceSpec,
    l: &BandLayout,
    precision: Precision,
    lanes: usize,
) -> SimTime {
    if lanes == 0 {
        return SimTime(0.0);
    }
    let params = SpikeParams::auto(dev, l.kl);
    let per = match precision {
        Precision::F32 => predict_spike_time::<f32>(dev, l, 0, &params),
        Precision::F64 => predict_spike_time::<f64>(dev, l, 0, &params),
    };
    per.map_or(SimTime(0.0), |p| SimTime(p.secs() * lanes as f64))
}

/// Simulated-GPU backend: one `dgbsv_batch` dispatch per device partition.
///
/// With [`EngineMode::Resident`] (see [`GpuBackend::with_engine`]) the
/// backend keeps a persistent worker pool alive across flushes: launches
/// pay the warm overhead, consecutive launches of one flush coalesce
/// through a [`MegabatchQueue`], and the first resident flush additionally
/// pays the one-time pool spin-up. Solutions, `info` codes, counters and
/// hazard reports are bitwise-identical across engine modes — only the
/// modeled service time changes.
pub struct GpuBackend {
    group: DeviceGroup,
    parallel: ParallelPolicy,
    tuning: Option<TuningTable>,
    engine: EngineMode,
    layout: MatrixLayout,
    megabatch: Mutex<MegabatchQueue>,
    spun_up: AtomicBool,
}

impl GpuBackend {
    /// Backend over a device group. `parallel` is the host scheduling of
    /// the simulated engine's per-matrix blocks — a throughput knob whose
    /// results are bitwise-identical for every policy.
    #[must_use]
    pub fn new(group: DeviceGroup, parallel: ParallelPolicy) -> Self {
        GpuBackend {
            group,
            parallel,
            tuning: None,
            engine: EngineMode::PerLaunch,
            layout: MatrixLayout::Auto,
            megabatch: Mutex::new(MegabatchQueue::new()),
            spun_up: AtomicBool::new(false),
        }
    }

    /// Builder: pin the storage-layout dimension of every dispatch
    /// ([`MatrixLayout::Auto`] — price and choose — is the default).
    #[must_use]
    pub fn with_layout(mut self, layout: MatrixLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Builder: consult a tuning table for window parameters per shape.
    #[must_use]
    pub fn with_tuning(mut self, tuning: TuningTable) -> Self {
        self.tuning = Some(tuning);
        self
    }

    /// Builder: select how launches source host threads and price their
    /// overhead ([`EngineMode::PerLaunch`] is the default).
    #[must_use]
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// The device group this backend dispatches to.
    #[must_use]
    pub fn group(&self) -> &DeviceGroup {
        &self.group
    }

    /// The engine mode flushes run under.
    #[must_use]
    pub fn engine(&self) -> EngineMode {
        self.engine
    }

    /// Snapshot of the megabatch coalescing statistics (groups priced,
    /// launches absorbed, overhead recovered). All zero under
    /// [`EngineMode::PerLaunch`].
    #[must_use]
    pub fn megabatch_stats(&self) -> MegabatchQueue {
        *self.megabatch.lock().unwrap()
    }

    fn options(&self, shape: &ShapeKey) -> GbsvOptions {
        let mut opts = GbsvOptions {
            parallel: Some(self.parallel),
            engine: Some(self.engine),
            layout: self.layout,
            ..Default::default()
        };
        if let Some(entry) = self.tuning.as_ref().and_then(|t| t.lookup_shape(shape)) {
            opts.window = Some(WindowParams {
                nb: entry.nb,
                threads: entry.threads,
                parallel: self.parallel,
            });
        }
        opts
    }

    /// Price one partition's flush under the backend's engine mode.
    ///
    /// Per-launch: the dispatch report's time, unchanged. Resident: the
    /// partition's consecutive launches coalesce through the megabatch
    /// queue (one warm overhead for the group), and the first partition of
    /// the first resident flush carries the one-time pool spin-up. Pools
    /// for all member devices spin concurrently during that flush, so the
    /// group makespan sees a single spin-up term — charged here, honestly,
    /// instead of being hidden outside the service time.
    fn flush_time(&self, dev: &DeviceSpec, time: SimTime, launches: usize) -> SimTime {
        if self.engine != EngineMode::Resident {
            return time;
        }
        let coalesced = self
            .megabatch
            .lock()
            .unwrap()
            .coalesce(time, launches as u64, dev);
        if self.spun_up.swap(true, Ordering::Relaxed) {
            coalesced
        } else {
            coalesced + self.engine.spinup(dev)
        }
    }
}

impl GpuBackend {
    /// The shared `gbsv` flush body. `retain` additionally harvests every
    /// healthy lane's factors. For monolithic lanes that is a host-side
    /// copy that leaves the modeled service time untouched, so `solve` and
    /// `solve_retaining` price identically; SPIKE-dispatched lanes refactor
    /// on the host during the harvest, and that work is priced into the
    /// flush via [`spike_retention_time`].
    fn run_gbsv(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
        retain: bool,
    ) -> Result<(BatchSolution, RetainedLanes), BackendError> {
        let batch = reqs.len();
        let mut x = vec![Vec::new(); batch];
        let mut info_out = vec![0i32; batch];
        let mut lanes: RetainedLanes = vec![None; batch];
        let opts = self.options(shape);
        let time = if shape.precision == Precision::F32 {
            // Single-precision traffic: narrow at assembly, dispatch the
            // f32 instantiation, widen the solutions back onto the f64
            // wire. A singular lane's response is the *original* f64
            // right-hand side, matching the f64 path's untouched-RHS
            // contract exactly (no f32 round-trip on the payload).
            self.group.run_split(batch, |dev, lo, hi| {
                let part = &reqs[lo..hi];
                let (mut a, mut piv, mut rhs, mut info) = assemble_f32(shape, part)?;
                let rep = gbatch_kernels::dispatch::sgbsv_batch(
                    dev, &mut a, &mut piv, &mut rhs, &mut info, &opts,
                )
                .map_err(BackendError::Launch)?;
                let mut spike_retained = 0usize;
                for (k, r) in part.iter().enumerate() {
                    info_out[lo + k] = info.get(k);
                    x[lo + k] = if info.get(k) > 0 {
                        r.rhs.clone()
                    } else {
                        rhs.block(k).iter().map(|&v| v as f64).collect()
                    };
                    if retain && info.get(k) == 0 {
                        // A SPIKE dispatch wrote *block-partitioned*
                        // factors back — harvest the split factorization
                        // itself, not a band that no monolithic GBTRS
                        // can consume.
                        lanes[lo + k] = if rep.algo == ChosenAlgo::Spike {
                            spike_retained += 1;
                            spike_retain_f32(dev, &a.layout(), &r.ab)
                        } else {
                            Some(Arc::new(RetainedFactor::from_lane_f32(
                                &a,
                                piv.pivots(k),
                                k,
                            )))
                        };
                    }
                }
                // The SPIKE retention harvest refactors each lane on the
                // host — priced into the flush, not hidden.
                let t = rep.time
                    + spike_retention_time(dev, &a.layout(), Precision::F32, spike_retained);
                Ok(self.flush_time(dev, t, rep.launches))
            })?
        } else {
            self.group.run_split(batch, |dev, lo, hi| {
                let part = &reqs[lo..hi];
                let (mut a, mut piv, mut rhs, mut info) = assemble(shape, part)?;
                let rep = gbatch_kernels::dispatch::dgbsv_batch(
                    dev, &mut a, &mut piv, &mut rhs, &mut info, &opts,
                )
                .map_err(BackendError::Launch)?;
                let mut spike_retained = 0usize;
                for (k, r) in part.iter().enumerate() {
                    x[lo + k] = rhs.block(k).to_vec();
                    info_out[lo + k] = info.get(k);
                    if retain && info.get(k) == 0 {
                        lanes[lo + k] = if rep.algo == ChosenAlgo::Spike {
                            spike_retained += 1;
                            spike_retain_f64(dev, &a.layout(), &r.ab)
                        } else {
                            Some(Arc::new(RetainedFactor::from_lane_f64(
                                &a,
                                piv.pivots(k),
                                k,
                            )))
                        };
                    }
                }
                let t = rep.time
                    + spike_retention_time(dev, &a.layout(), Precision::F64, spike_retained);
                Ok(self.flush_time(dev, t, rep.launches))
            })?
        };
        Ok((
            BatchSolution {
                x,
                info: info_out,
                service_s: time.secs(),
            },
            lanes,
        ))
    }

    /// The warm SPIKE solve body: every lane rides its retained split
    /// factorization ([`spike_solve_retained`] — block triangular solves,
    /// reduced back-substitution, combine), priced with the split cost
    /// model's solve-only terms and the backend's engine mode.
    fn solve_with_spike(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
        factors: &[Arc<RetainedFactor>],
        l: &BandLayout,
    ) -> Result<BatchSolution, BackendError> {
        let batch = reqs.len();
        let nrhs = shape.nrhs;
        let mut x = vec![Vec::new(); batch];
        let time = self.group.run_split(batch, |dev, lo, hi| {
            for k in lo..hi {
                let r = &reqs[k];
                let f = &factors[k];
                if shape.precision == Precision::F32 {
                    let sf = f.spike_f32().expect("all lanes SPIKE at shape precision");
                    let mut b: Vec<f32> = r.rhs.iter().map(|&v| v as f32).collect();
                    spike_solve_retained(sf, &mut b, nrhs);
                    x[k] = b.iter().map(|&v| v as f64).collect();
                } else {
                    let sf = f.spike_f64().expect("all lanes SPIKE at shape precision");
                    let mut b = r.rhs.clone();
                    spike_solve_retained(sf, &mut b, nrhs);
                    x[k] = b;
                }
            }
            let parts = match &factors[lo].payload {
                FactorPayload::SpikeF64(f) => f.partition.parts,
                FactorPayload::SpikeF32(f) => f.partition.parts,
                _ => unreachable!("all lanes checked SPIKE above"),
            };
            let params = SpikeParams::auto(dev, l.kl).with_parts(parts);
            let model = CrossoverModel::default();
            let t = if shape.precision == Precision::F32 {
                model.spike_warm_time::<f32>(dev, l, hi - lo, nrhs, &params)
            } else {
                model.spike_warm_time::<f64>(dev, l, hi - lo, nrhs, &params)
            }
            .ok_or_else(|| BackendError::Fault("warm SPIKE solve cannot be priced".into()))?;
            Ok(self.flush_time(dev, t, 2 * (hi - lo)))
        })?;
        Ok(BatchSolution {
            x,
            info: vec![0; batch],
            service_s: time.secs(),
        })
    }

    /// Factor-ahead body for large-`n` operators: each lane is split,
    /// block-factored and retained as a [`gbatch_core::spike::SpikeFactor`]
    /// payload, priced as the split driver's factor-phase launches.
    /// `Ok(None)` when the split cannot be priced on some group member —
    /// the caller falls back to the monolithic path.
    fn factorize_spike(
        &self,
        shape: &ShapeKey,
        operators: &[&[f64]],
        l: &BandLayout,
    ) -> Result<Option<FactorOutcome>, BackendError> {
        let f32_tagged = shape.precision == Precision::F32;
        let priceable = self.group.devices.iter().all(|dev| {
            let params = SpikeParams::auto(dev, l.kl);
            if f32_tagged {
                predict_spike_time::<f32>(dev, l, 0, &params).is_some()
            } else {
                predict_spike_time::<f64>(dev, l, 0, &params).is_some()
            }
        });
        if !priceable {
            return Ok(None);
        }
        let batch = operators.len();
        let mut factors: RetainedLanes = vec![None; batch];
        let mut info_out = vec![0i32; batch];
        let time = self.group.run_split(batch, |dev, lo, hi| {
            for (k, op) in operators[lo..hi].iter().enumerate() {
                if f32_tagged {
                    match spike_retain_f32(dev, l, op) {
                        Some(f) => factors[lo + k] = Some(f),
                        None => {
                            // A singular block (or reduced system): fall
                            // back to the monolithic host factorization
                            // for the honest info code.
                            let mut ab: Vec<f32> = op.iter().map(|&v| v as f32).collect();
                            let mut ipiv = vec![0i32; l.m.min(l.n)];
                            let code = gbatch_core::gbtrf::gbtrf::<f32>(l, &mut ab, &mut ipiv);
                            info_out[lo + k] = code;
                            if code == 0 {
                                factors[lo + k] = Some(Arc::new(RetainedFactor {
                                    layout: *l,
                                    payload: FactorPayload::F32(ab),
                                    pivots: ipiv,
                                }));
                            }
                        }
                    }
                } else {
                    match spike_retain_f64(dev, l, op) {
                        Some(f) => factors[lo + k] = Some(f),
                        None => {
                            let mut ab = op.to_vec();
                            let mut ipiv = vec![0i32; l.m.min(l.n)];
                            let code = gbatch_core::gbtrf::gbtrf::<f64>(l, &mut ab, &mut ipiv);
                            info_out[lo + k] = code;
                            if code == 0 {
                                factors[lo + k] = Some(Arc::new(RetainedFactor {
                                    layout: *l,
                                    payload: FactorPayload::F64(ab),
                                    pivots: ipiv,
                                }));
                            }
                        }
                    }
                }
            }
            let params = SpikeParams::auto(dev, l.kl);
            let per = if f32_tagged {
                predict_spike_time::<f32>(dev, l, 0, &params)
            } else {
                predict_spike_time::<f64>(dev, l, 0, &params)
            }
            .expect("priceability checked above");
            let t = SimTime(per.secs() * (hi - lo) as f64);
            Ok(self.flush_time(dev, t, 3 * (hi - lo)))
        })?;
        Ok(Some(FactorOutcome {
            factors,
            info: info_out,
            service_s: time.secs(),
        }))
    }
}

impl SolveBackend for GpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Gpu
    }

    /// The group's lead device. Fleet workers wrap one-device groups, so
    /// this is *the* device; for multi-device groups (`mi250x_full` run
    /// as a single worker) the lead device is the pricing representative
    /// — members of a group are identical-spec in every shipped catalog
    /// composite.
    fn device(&self) -> Option<&DeviceSpec> {
        self.group.devices.first()
    }

    fn solve(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
    ) -> Result<BatchSolution, BackendError> {
        self.run_gbsv(shape, reqs, false).map(|(sol, _)| sol)
    }

    fn solve_retaining(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
    ) -> Result<(BatchSolution, RetainedLanes), BackendError> {
        self.run_gbsv(shape, reqs, true)
    }

    /// The GBTRS-only fast path: gather each lane's retained factors and
    /// dispatch the batched triangular solve — no `gbtrf` launch at all.
    /// Priced under the backend's engine mode exactly like a full flush
    /// (megabatch coalescing, one-time spin-up on the first resident
    /// flush), so the serve layer sees honest warm-flush economics.
    fn solve_with(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
        factors: &[Arc<RetainedFactor>],
    ) -> Result<BatchSolution, BackendError> {
        let batch = reqs.len();
        assert_eq!(batch, factors.len(), "one retained factor per request");
        let l = shape
            .layout()
            .map_err(|e| BackendError::Fault(format!("invalid shape {shape}: {e}")))?;
        for (k, f) in factors.iter().enumerate() {
            if f.layout != l || f.precision() != shape.precision {
                return Err(BackendError::Fault(format!(
                    "lane {k}: retained factor does not match shape {shape}"
                )));
            }
        }
        // Retained SPIKE factorizations (large-n split operators) solve
        // through the split warm path: block triangular solves + reduced
        // back-substitution + combine, host math priced with the split
        // cost model. A mixed monolithic/SPIKE batch — or a SPIKE payload
        // whose precision disagrees with the shape tag — fails closed;
        // the server demotes the flush to the cold path, which is always
        // correct.
        let spike_any = factors
            .iter()
            .filter(|f| f.spike_f64().is_some() || f.spike_f32().is_some())
            .count();
        if spike_any > 0 {
            let spike_at_precision = match shape.precision {
                Precision::F32 => factors.iter().filter(|f| f.spike_f32().is_some()).count(),
                Precision::F64 => factors.iter().filter(|f| f.spike_f64().is_some()).count(),
            };
            if spike_at_precision != batch {
                return Err(BackendError::Fault(
                    "mixed monolithic/SPIKE warm batch or SPIKE precision mismatch".into(),
                ));
            }
            return self.solve_with_spike(shape, reqs, factors, &l);
        }
        let mut x = vec![Vec::new(); batch];
        let opts = self.options(shape);
        let time = if shape.precision == Precision::F32 {
            self.group.run_split(batch, |dev, lo, hi| {
                let part = &reqs[lo..hi];
                let (_, _, mut rhs, _) = assemble_f32(shape, part)?;
                let lanes: Vec<(&[f32], &[i32])> = factors[lo..hi]
                    .iter()
                    .map(|f| (f.factors_f32().expect("checked above"), &f.pivots[..]))
                    .collect();
                let rep = gbatch_kernels::dispatch::sgbtrs_batch_lanes(
                    dev,
                    Transpose::No,
                    &l,
                    &lanes,
                    &mut rhs,
                    &opts,
                )
                .map_err(BackendError::Launch)?;
                for k in 0..part.len() {
                    x[lo + k] = rhs.block(k).iter().map(|&v| v as f64).collect();
                }
                Ok(self.flush_time(dev, rep.time, rep.launches))
            })?
        } else {
            self.group.run_split(batch, |dev, lo, hi| {
                let part = &reqs[lo..hi];
                let (_, _, mut rhs, _) = assemble(shape, part)?;
                let lanes: Vec<(&[f64], &[i32])> = factors[lo..hi]
                    .iter()
                    .map(|f| (f.factors_f64().expect("checked above"), &f.pivots[..]))
                    .collect();
                let rep = gbatch_kernels::dispatch::dgbtrs_batch_lanes(
                    dev,
                    Transpose::No,
                    &l,
                    &lanes,
                    &mut rhs,
                    &opts,
                )
                .map_err(BackendError::Launch)?;
                for k in 0..part.len() {
                    x[lo + k] = rhs.block(k).to_vec();
                }
                Ok(self.flush_time(dev, rep.time, rep.launches))
            })?
        };
        Ok(BatchSolution {
            x,
            info: vec![0; batch],
            service_s: time.secs(),
        })
    }

    /// Factor-only dispatch for the explicit `Factorize` entry point.
    /// Large-`n` operators are retained as SPIKE split factorizations, so
    /// their warm solves ride the split path instead of a monolithic
    /// triangular solve the device could not batch.
    fn factorize(
        &self,
        shape: &ShapeKey,
        operators: &[&[f64]],
    ) -> Result<FactorOutcome, BackendError> {
        let l = shape
            .layout()
            .map_err(|e| BackendError::Fault(format!("invalid shape {shape}: {e}")))?;
        if spike_worthy(shape) {
            if let Some(out) = self.factorize_spike(shape, operators, &l)? {
                return Ok(out);
            }
        }
        let batch = operators.len();
        let mut factors: RetainedLanes = vec![None; batch];
        let mut info_out = vec![0i32; batch];
        let opts = self.options(shape);
        let time = if shape.precision == Precision::F32 {
            self.group.run_split(batch, |dev, lo, hi| {
                let mut a = BandBatch::<f32>::zeros_with_layout(l, hi - lo)
                    .map_err(|e| BackendError::Fault(format!("band allocation failed: {e}")))?;
                let stride = a.matrix_stride();
                for (k, op) in operators[lo..hi].iter().enumerate() {
                    for (dst, &src) in a.data_mut()[k * stride..(k + 1) * stride]
                        .iter_mut()
                        .zip(*op)
                    {
                        *dst = src as f32;
                    }
                }
                let mut piv = PivotBatch::new(hi - lo, l.m, l.n);
                let mut info = InfoArray::new(hi - lo);
                let rep =
                    gbatch_kernels::dispatch::sgbtrf_batch(dev, &mut a, &mut piv, &mut info, &opts)
                        .map_err(BackendError::Launch)?;
                for k in 0..hi - lo {
                    info_out[lo + k] = info.get(k);
                    if info.get(k) == 0 {
                        factors[lo + k] = Some(Arc::new(RetainedFactor::from_lane_f32(
                            &a,
                            piv.pivots(k),
                            k,
                        )));
                    }
                }
                Ok(self.flush_time(dev, rep.time, rep.launches))
            })?
        } else {
            self.group.run_split(batch, |dev, lo, hi| {
                let mut a = BandBatch::<f64>::zeros_with_layout(l, hi - lo)
                    .map_err(|e| BackendError::Fault(format!("band allocation failed: {e}")))?;
                let stride = a.matrix_stride();
                for (k, op) in operators[lo..hi].iter().enumerate() {
                    a.data_mut()[k * stride..(k + 1) * stride].copy_from_slice(op);
                }
                let mut piv = PivotBatch::new(hi - lo, l.m, l.n);
                let mut info = InfoArray::new(hi - lo);
                let rep =
                    gbatch_kernels::dispatch::dgbtrf_batch(dev, &mut a, &mut piv, &mut info, &opts)
                        .map_err(BackendError::Launch)?;
                for k in 0..hi - lo {
                    info_out[lo + k] = info.get(k);
                    if info.get(k) == 0 {
                        factors[lo + k] = Some(Arc::new(RetainedFactor::from_lane_f64(
                            &a,
                            piv.pivots(k),
                            k,
                        )));
                    }
                }
                Ok(self.flush_time(dev, rep.time, rep.launches))
            })?
        };
        Ok(FactorOutcome {
            factors,
            info: info_out,
            service_s: time.secs(),
        })
    }
}

/// Multicore CPU spill-over backend.
pub struct CpuBackend {
    cpu: CpuSpec,
}

impl CpuBackend {
    /// Backend over one CPU descriptor.
    #[must_use]
    pub fn new(cpu: CpuSpec) -> Self {
        CpuBackend { cpu }
    }

    /// The CPU descriptor this backend models.
    #[must_use]
    pub fn spec(&self) -> &CpuSpec {
        &self.cpu
    }

    /// Spill-over path for F32-tagged keys: each lane runs the `f32`
    /// instantiation of the core driver sequentially (deterministic), and
    /// the model charges half the `f64` memory traffic — the flop count is
    /// unchanged, the element bytes halve. `retain` harvests healthy
    /// lanes' factors without touching the modeled time.
    fn run_f32(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
        retain: bool,
    ) -> Result<(BatchSolution, RetainedLanes), BackendError> {
        let (mut a, mut piv, mut rhs, mut info) = assemble_f32(shape, reqs)?;
        let l = a.layout();
        let (nrhs, ldb) = (rhs.nrhs(), rhs.ldb());
        let stride = l.len();
        for k in 0..reqs.len() {
            let ab = &mut a.data_mut()[k * stride..(k + 1) * stride];
            let code = gbatch_core::gbsv::gbsv::<f32>(
                &l,
                ab,
                piv.pivots_mut(k),
                rhs.block_mut(k),
                ldb,
                nrhs,
            );
            info.set(k, code);
        }
        let flops = gbatch_cpu::model::gbtrf_flops(&l) + gbatch_cpu::model::gbtrs_flops(&l, nrhs);
        let bytes = gbatch_cpu::model::gbtrf_bytes(&l) + gbatch_cpu::model::gbtrs_bytes(&l, nrhs);
        let mut x = Vec::with_capacity(reqs.len());
        let mut info_out = Vec::with_capacity(reqs.len());
        let mut lanes: RetainedLanes = vec![None; reqs.len()];
        for (k, r) in reqs.iter().enumerate() {
            if info.get(k) > 0 {
                x.push(r.rhs.clone());
            } else {
                x.push(rhs.block(k).iter().map(|&v| v as f64).collect());
                if retain {
                    lanes[k] = Some(Arc::new(RetainedFactor::from_lane_f32(
                        &a,
                        piv.pivots(k),
                        k,
                    )));
                }
            }
            info_out.push(info.get(k));
        }
        Ok((
            BatchSolution {
                x,
                info: info_out,
                service_s: self.cpu.batch_time(reqs.len(), flops, bytes / 2.0),
            },
            lanes,
        ))
    }

    /// The `f64` spill body ([`cpu_gbsv_batch`]), optionally harvesting.
    fn run_f64(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
        retain: bool,
    ) -> Result<(BatchSolution, RetainedLanes), BackendError> {
        let (mut a, mut piv, mut rhs, mut info) = assemble(shape, reqs)?;
        let rep = cpu_gbsv_batch(&self.cpu, &mut a, &mut piv, &mut rhs, &mut info);
        let mut x = Vec::with_capacity(reqs.len());
        let mut info_out = Vec::with_capacity(reqs.len());
        let mut lanes: RetainedLanes = vec![None; reqs.len()];
        for (k, r) in reqs.iter().enumerate() {
            // Uniform contract with the GPU dispatcher: a singular lane
            // returns its right-hand side untouched.
            if info.get(k) > 0 {
                x.push(r.rhs.clone());
            } else {
                x.push(rhs.block(k).to_vec());
                if retain {
                    lanes[k] = Some(Arc::new(RetainedFactor::from_lane_f64(
                        &a,
                        piv.pivots(k),
                        k,
                    )));
                }
            }
            info_out.push(info.get(k));
        }
        Ok((
            BatchSolution {
                x,
                info: info_out,
                service_s: rep.model_time_s,
            },
            lanes,
        ))
    }
}

impl SolveBackend for CpuBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Cpu
    }

    fn solve(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
    ) -> Result<BatchSolution, BackendError> {
        if shape.precision == Precision::F32 {
            self.run_f32(shape, reqs, false).map(|(sol, _)| sol)
        } else {
            self.run_f64(shape, reqs, false).map(|(sol, _)| sol)
        }
    }

    fn solve_retaining(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
    ) -> Result<(BatchSolution, RetainedLanes), BackendError> {
        if shape.precision == Precision::F32 {
            self.run_f32(shape, reqs, true)
        } else {
            self.run_f64(shape, reqs, true)
        }
    }

    /// GBTRS-only spill path: each lane is one sequential `gbtrs` over its
    /// retained factors, priced with triangular-solve flops and bytes only
    /// — the spilled warm batch skips the factorization cost too.
    fn solve_with(
        &self,
        shape: &ShapeKey,
        reqs: &[SolveRequest],
        factors: &[Arc<RetainedFactor>],
    ) -> Result<BatchSolution, BackendError> {
        let batch = reqs.len();
        assert_eq!(batch, factors.len(), "one retained factor per request");
        let l = shape
            .layout()
            .map_err(|e| BackendError::Fault(format!("invalid shape {shape}: {e}")))?;
        for (k, f) in factors.iter().enumerate() {
            if f.layout != l || f.precision() != shape.precision {
                return Err(BackendError::Fault(format!(
                    "lane {k}: retained factor does not match shape {shape}"
                )));
            }
        }
        let (nrhs, ldb) = (shape.nrhs, l.n);
        let mut x = Vec::with_capacity(batch);
        if shape.precision == Precision::F32 {
            for (r, f) in reqs.iter().zip(factors) {
                let mut b: Vec<f32> = r.rhs.iter().map(|&v| v as f32).collect();
                // A retained SPIKE factorization (large-n split operator)
                // solves through the split warm path; monolithic factors
                // through the band triangular solve.
                if let Some(sf) = f.spike_f32() {
                    spike_solve_retained(sf, &mut b, nrhs);
                } else {
                    gbatch_core::gbtrs::gbtrs::<f32>(
                        Transpose::No,
                        &l,
                        f.factors_f32().expect("checked above"),
                        &f.pivots,
                        &mut b,
                        ldb,
                        nrhs,
                    );
                }
                x.push(b.iter().map(|&v| v as f64).collect());
            }
        } else {
            for (r, f) in reqs.iter().zip(factors) {
                let mut b = r.rhs.clone();
                if let Some(sf) = f.spike_f64() {
                    spike_solve_retained(sf, &mut b, nrhs);
                } else {
                    gbatch_core::gbtrs::gbtrs::<f64>(
                        Transpose::No,
                        &l,
                        f.factors_f64().expect("checked above"),
                        &f.pivots,
                        &mut b,
                        ldb,
                        nrhs,
                    );
                }
                x.push(b);
            }
        }
        let flops = gbatch_cpu::model::gbtrs_flops(&l, nrhs);
        let mut bytes = gbatch_cpu::model::gbtrs_bytes(&l, nrhs);
        if shape.precision == Precision::F32 {
            bytes /= 2.0;
        }
        Ok(BatchSolution {
            x,
            info: vec![0; batch],
            service_s: self.cpu.batch_time(batch, flops, bytes),
        })
    }

    /// Factor-only spill path: sequential `gbtrf` per operator, priced
    /// with factorization flops and bytes only.
    fn factorize(
        &self,
        shape: &ShapeKey,
        operators: &[&[f64]],
    ) -> Result<FactorOutcome, BackendError> {
        let l = shape
            .layout()
            .map_err(|e| BackendError::Fault(format!("invalid shape {shape}: {e}")))?;
        let batch = operators.len();
        let mut factors: RetainedLanes = vec![None; batch];
        let mut info_out = vec![0i32; batch];
        if shape.precision == Precision::F32 {
            for (k, op) in operators.iter().enumerate() {
                let mut ab: Vec<f32> = op.iter().map(|&v| v as f32).collect();
                let mut ipiv = vec![0i32; l.m.min(l.n)];
                let code = gbatch_core::gbtrf::gbtrf::<f32>(&l, &mut ab, &mut ipiv);
                info_out[k] = code;
                if code == 0 {
                    factors[k] = Some(Arc::new(RetainedFactor {
                        layout: l,
                        payload: gbatch_core::FactorPayload::F32(ab),
                        pivots: ipiv,
                    }));
                }
            }
        } else {
            for (k, op) in operators.iter().enumerate() {
                let mut ab = op.to_vec();
                let mut ipiv = vec![0i32; l.m.min(l.n)];
                let code = gbatch_core::gbtrf::gbtrf::<f64>(&l, &mut ab, &mut ipiv);
                info_out[k] = code;
                if code == 0 {
                    factors[k] = Some(Arc::new(RetainedFactor {
                        layout: l,
                        payload: gbatch_core::FactorPayload::F64(ab),
                        pivots: ipiv,
                    }));
                }
            }
        }
        let flops = gbatch_cpu::model::gbtrf_flops(&l);
        let mut bytes = gbatch_cpu::model::gbtrf_bytes(&l);
        if shape.precision == Precision::F32 {
            bytes /= 2.0;
        }
        Ok(FactorOutcome {
            factors,
            info: info_out,
            service_s: self.cpu.batch_time(batch, flops, bytes),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::gbtf2::gbtf2;

    fn healthy_request(id: u64, shape: ShapeKey, seed: f64) -> SolveRequest {
        let l = shape.layout().unwrap();
        let mut ab = vec![0.0; shape.ab_len()];
        {
            let mut m = gbatch_core::BandMatrixMut {
                layout: l,
                data: &mut ab,
            };
            for j in 0..l.n {
                let (s, e) = l.col_rows(j);
                for i in s..e {
                    m.set(i, j, ((i * 7 + j * 3) % 5) as f64 * 0.1 + seed);
                }
                let sum: f64 = (s..e).filter(|&i| i != j).map(|i| m.get(i, j).abs()).sum();
                m.set(j, j, sum + 1.0);
            }
        }
        SolveRequest {
            id,
            shape,
            ab,
            rhs: vec![1.0; shape.rhs_len()],
            submitted_s: 0.0,
            deadline_s: 1.0,
        }
    }

    #[test]
    fn gpu_and_cpu_backends_agree_on_residuals() {
        let shape = ShapeKey::gbsv(40, 3, 2, 1);
        let l = shape.layout().unwrap();
        let reqs: Vec<_> = (0..12)
            .map(|i| healthy_request(i, shape, 0.01 * i as f64))
            .collect();
        let gpu = GpuBackend::new(DeviceGroup::mi250x_full(), ParallelPolicy::Serial);
        let cpu = CpuBackend::new(CpuSpec::xeon_gold_6140());
        let gs = gpu.solve(&shape, &reqs).unwrap();
        let cs = cpu.solve(&shape, &reqs).unwrap();
        assert_eq!(gs.info, vec![0; 12]);
        assert_eq!(cs.info, vec![0; 12]);
        assert!(gs.service_s > 0.0 && cs.service_s > 0.0);
        for (k, r) in reqs.iter().enumerate() {
            for x in [&gs.x[k], &cs.x[k]] {
                // ‖Ax − b‖∞ small for both backends.
                let m = gbatch_core::BandMatrixRef {
                    layout: l,
                    data: &r.ab,
                };
                let mut worst: f64 = 0.0;
                for i in 0..l.n {
                    let lo = i.saturating_sub(l.kl);
                    let hi = (i + l.ku + 1).min(l.n);
                    let ax: f64 = x[lo..hi]
                        .iter()
                        .enumerate()
                        .map(|(k, xj)| m.get(i, lo + k) * xj)
                        .sum();
                    worst = worst.max((ax - r.rhs[i]).abs());
                }
                assert!(worst < 1e-10, "lane {k}: residual {worst:e}");
            }
        }
    }

    #[test]
    fn singular_lane_returns_rhs_untouched_on_both_backends() {
        let shape = ShapeKey::gbsv(24, 2, 2, 1);
        let l = shape.layout().unwrap();
        let mut reqs: Vec<_> = (0..6)
            .map(|i| healthy_request(i, shape, 0.02 * i as f64))
            .collect();
        // Poison lane 4: zero its first column.
        {
            let req = &mut reqs[4];
            let mut m = gbatch_core::BandMatrixMut {
                layout: l,
                data: &mut req.ab,
            };
            let (s, e) = l.col_rows(0);
            for i in s..e {
                m.set(i, 0, 0.0);
            }
            let mut ab = req.ab.clone();
            let mut piv = vec![0i32; l.n];
            assert_eq!(gbtf2(&l, &mut ab, &mut piv), 1);
        }
        let gpu = GpuBackend::new(DeviceGroup::mi250x_full(), ParallelPolicy::Serial);
        let cpu = CpuBackend::new(CpuSpec::xeon_gold_6140());
        for backend in [&gpu as &dyn SolveBackend, &cpu as &dyn SolveBackend] {
            let sol = backend.solve(&shape, &reqs).unwrap();
            assert_eq!(sol.info[4], 1, "{} backend info", backend.kind());
            assert_eq!(sol.x[4], reqs[4].rhs, "{} backend rhs", backend.kind());
            for k in [0, 1, 2, 3, 5] {
                assert_eq!(sol.info[k], 0);
                assert_ne!(sol.x[k], reqs[k].rhs, "healthy lane {k} solved");
            }
        }
    }

    #[test]
    fn f32_tagged_shapes_run_the_single_precision_stack() {
        let shape = ShapeKey::sgbsv(48, 3, 3, 1);
        let l = shape.layout().unwrap();
        let reqs: Vec<_> = (0..10)
            .map(|i| healthy_request(i, shape, 0.01 * i as f64))
            .collect();
        let gpu = GpuBackend::new(DeviceGroup::mi250x_full(), ParallelPolicy::Serial);
        let cpu = CpuBackend::new(CpuSpec::xeon_gold_6140());
        for backend in [&gpu as &dyn SolveBackend, &cpu as &dyn SolveBackend] {
            let sol = backend.solve(&shape, &reqs).unwrap();
            assert_eq!(sol.info, vec![0; 10], "{} backend", backend.kind());
            for (k, r) in reqs.iter().enumerate() {
                // Every solution coordinate is an exactly-widened f32 —
                // proof the lane ran the single-precision stack.
                for &v in &sol.x[k] {
                    assert_eq!(v, v as f32 as f64, "{} lane {k}", backend.kind());
                }
                // Residual at f32 accuracy against the f64 wire payload.
                let m = gbatch_core::BandMatrixRef {
                    layout: l,
                    data: &r.ab,
                };
                let mut worst: f64 = 0.0;
                for i in 0..l.n {
                    let lo = i.saturating_sub(l.kl);
                    let hi = (i + l.ku + 1).min(l.n);
                    let ax: f64 = sol.x[k][lo..hi]
                        .iter()
                        .enumerate()
                        .map(|(j, xj)| m.get(i, lo + j) * xj)
                        .sum();
                    worst = worst.max((ax - r.rhs[i]).abs());
                }
                assert!(
                    worst < 1e-3,
                    "{} lane {k}: f32 residual {worst:e}",
                    backend.kind()
                );
            }
        }
    }

    #[test]
    fn f32_singular_lane_returns_the_original_f64_rhs() {
        let shape = ShapeKey::sgbsv(24, 2, 2, 1);
        let l = shape.layout().unwrap();
        let mut reqs: Vec<_> = (0..5)
            .map(|i| healthy_request(i, shape, 0.02 * i as f64))
            .collect();
        {
            let req = &mut reqs[2];
            let mut m = gbatch_core::BandMatrixMut {
                layout: l,
                data: &mut req.ab,
            };
            let (s, e) = l.col_rows(0);
            for i in s..e {
                m.set(i, 0, 0.0);
            }
        }
        let gpu = GpuBackend::new(DeviceGroup::mi250x_full(), ParallelPolicy::Serial);
        let cpu = CpuBackend::new(CpuSpec::xeon_gold_6140());
        for backend in [&gpu as &dyn SolveBackend, &cpu as &dyn SolveBackend] {
            let sol = backend.solve(&shape, &reqs).unwrap();
            assert_eq!(sol.info[2], 1, "{} backend", backend.kind());
            // Bitwise the original f64 payload, not an f32 round-trip.
            assert_eq!(sol.x[2], reqs[2].rhs, "{} backend", backend.kind());
        }
    }

    #[test]
    fn large_n_factorize_retains_spike_payloads_and_warm_solves_match() {
        let shape = ShapeKey::gbsv(4096, 2, 2, 1);
        let l = shape.layout().unwrap();
        let gpu = GpuBackend::new(DeviceGroup::mi250x_full(), ParallelPolicy::Serial);
        let r = healthy_request(0, shape, 0.01);
        let out = gpu.factorize(&shape, &[&r.ab]).unwrap();
        assert_eq!(out.info, vec![0]);
        assert!(out.service_s > 0.0);
        let f = out.factors[0].clone().expect("healthy operator retained");
        assert!(
            f.spike_f64().is_some(),
            "large-n operator retained as a SPIKE split factorization"
        );
        let sol = gpu
            .solve_with(&shape, std::slice::from_ref(&r), std::slice::from_ref(&f))
            .unwrap();
        assert_eq!(sol.info, vec![0]);
        let m = gbatch_core::BandMatrixRef {
            layout: l,
            data: &r.ab,
        };
        let mut worst: f64 = 0.0;
        for i in 0..l.n {
            let lo = i.saturating_sub(l.kl);
            let hi = (i + l.ku + 1).min(l.n);
            let ax: f64 = sol.x[0][lo..hi]
                .iter()
                .enumerate()
                .map(|(j, xj)| m.get(i, lo + j) * xj)
                .sum();
            worst = worst.max((ax - r.rhs[i]).abs());
        }
        assert!(worst < 1e-9, "warm SPIKE residual {worst:e}");
        // The spilled warm path runs the identical host math: bitwise.
        let cpu = CpuBackend::new(CpuSpec::xeon_gold_6140());
        let cs = cpu
            .solve_with(&shape, std::slice::from_ref(&r), std::slice::from_ref(&f))
            .unwrap();
        assert_eq!(cs.x, sol.x, "GPU and CPU warm SPIKE paths agree bitwise");
        // A mixed monolithic/SPIKE warm batch fails closed on the GPU.
        let mono = {
            let mut ab = r.ab.clone();
            let mut ipiv = vec![0i32; l.n];
            assert_eq!(gbatch_core::gbtrf::gbtrf::<f64>(&l, &mut ab, &mut ipiv), 0);
            Arc::new(RetainedFactor {
                layout: l,
                payload: FactorPayload::F64(ab),
                pivots: ipiv,
            })
        };
        assert!(gpu
            .solve_with(&shape, &[r.clone(), r.clone()], &[f, mono])
            .is_err());
    }

    #[test]
    fn gpu_backend_is_deterministic_across_parallel_policies() {
        let shape = ShapeKey::gbsv(80, 4, 4, 1);
        let reqs: Vec<_> = (0..20)
            .map(|i| healthy_request(i, shape, 0.005 * i as f64))
            .collect();
        let base = GpuBackend::new(DeviceGroup::mi250x_full(), ParallelPolicy::Serial)
            .solve(&shape, &reqs)
            .unwrap();
        for workers in [2, 8] {
            let alt = GpuBackend::new(DeviceGroup::mi250x_full(), ParallelPolicy::threads(workers))
                .solve(&shape, &reqs)
                .unwrap();
            assert_eq!(alt.x, base.x, "{workers}-worker solutions differ");
            assert_eq!(alt.info, base.info);
            assert_eq!(alt.service_s, base.service_s);
        }
    }

    #[test]
    fn resident_backend_matches_per_launch_bitwise_and_prices_spinup_once() {
        let shape = ShapeKey::gbsv(16, 2, 2, 1);
        let reqs: Vec<_> = (0..64)
            .map(|i| healthy_request(i, shape, 0.003 * i as f64))
            .collect();
        let cold = GpuBackend::new(DeviceGroup::mi250x_full(), ParallelPolicy::threads(4));
        let warm = GpuBackend::new(DeviceGroup::mi250x_full(), ParallelPolicy::threads(4))
            .with_engine(EngineMode::Resident);
        assert_eq!(warm.engine(), EngineMode::Resident);
        let base = cold.solve(&shape, &reqs).unwrap();
        let first = warm.solve(&shape, &reqs).unwrap();
        let steady = warm.solve(&shape, &reqs).unwrap();
        // Engine mode is a pure timing dimension: payloads are bitwise
        // identical across modes and across warm flushes.
        assert_eq!(first.x, base.x);
        assert_eq!(first.info, base.info);
        assert_eq!(steady.x, base.x);
        // The first resident flush carries the one-time pool spin-up; the
        // spin-up never recurs, and the steady state beats per-launch
        // because every launch pays the warm overhead instead of the cold.
        assert!(
            first.service_s > steady.service_s,
            "first flush {} should carry spin-up over steady {}",
            first.service_s,
            steady.service_s
        );
        assert!(
            steady.service_s < base.service_s,
            "resident steady state {} should beat per-launch {}",
            steady.service_s,
            base.service_s
        );
        // Two flushes over two device partitions = four coalesced groups.
        let stats = warm.megabatch_stats();
        assert_eq!(stats.groups(), 4);
        assert!(stats.launches() >= stats.groups());
        // Per-launch mode never touches the megabatch queue.
        assert_eq!(cold.megabatch_stats().groups(), 0);
    }
}
