//! Request and response types of the solve service.

use gbatch_core::ShapeKey;

use crate::backend::BackendKind;
use crate::policy::FlushReason;

/// One solve request: a single `(AB, B)` system plus its timing envelope.
///
/// Payloads are the shape's minimal LAPACK factor storage (`ab`, length
/// [`ShapeKey::ab_len`]) and a column-major right-hand side (`rhs`, length
/// [`ShapeKey::rhs_len`]). Times are absolute seconds on the service's
/// virtual clock.
#[derive(Debug, Clone)]
pub struct SolveRequest {
    /// Caller-chosen identifier, echoed on the response.
    pub id: u64,
    /// Request geometry; the bucketing key.
    pub shape: ShapeKey,
    /// Band payload in the shape's minimal storage.
    pub ab: Vec<f64>,
    /// Right-hand side (`n * nrhs`, column-major).
    pub rhs: Vec<f64>,
    /// Submission time (seconds, virtual clock).
    pub submitted_s: f64,
    /// Absolute response deadline (seconds, virtual clock).
    pub deadline_s: f64,
}

/// Why a request was refused at admission. Admission errors are synchronous
/// and leave the service untouched (no partial enqueue).
#[derive(Debug, Clone, PartialEq)]
pub enum AdmitError {
    /// The bounded admission queue is at capacity — backpressure; the
    /// caller should retry later or shed load.
    QueueFull {
        /// Configured queue capacity (total pending across buckets).
        capacity: usize,
    },
    /// Payload lengths do not match the request's shape key.
    BadPayload {
        /// Expected `ab` length for the shape.
        expected_ab: usize,
        /// Provided `ab` length.
        got_ab: usize,
        /// Expected `rhs` length for the shape.
        expected_rhs: usize,
        /// Provided `rhs` length.
        got_rhs: usize,
    },
    /// The shape cannot be served (invalid layout, or `nrhs == 0`).
    UnsupportedShape(String),
    /// The submission time precedes an already-processed event; the
    /// virtual clock only moves forward.
    NonMonotonicTime {
        /// The submission time offered.
        now_s: f64,
        /// The service clock at the refusal.
        clock_s: f64,
    },
}

impl std::fmt::Display for AdmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmitError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            AdmitError::BadPayload {
                expected_ab,
                got_ab,
                expected_rhs,
                got_rhs,
            } => write!(
                f,
                "payload lengths (ab {got_ab}, rhs {got_rhs}) do not match shape \
                 (ab {expected_ab}, rhs {expected_rhs})"
            ),
            AdmitError::UnsupportedShape(why) => write!(f, "unsupported shape: {why}"),
            AdmitError::NonMonotonicTime { now_s, clock_s } => write!(
                f,
                "submission time {now_s:.6} s precedes the service clock {clock_s:.6} s"
            ),
        }
    }
}

impl std::error::Error for AdmitError {}

/// Terminal status of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// Solved; the response carries the solution.
    Solved,
    /// The matrix is exactly singular; `column` is the 1-based column of
    /// the first zero pivot (the LAPACK `info` convention). The response
    /// returns the right-hand side untouched.
    Singular {
        /// 1-based first zero-pivot column.
        column: i32,
    },
    /// The request could not start before `deadline + timeout slack`; it
    /// was dropped without solving (the response returns the right-hand
    /// side untouched).
    TimedOut,
    /// Both the routed backend and the singleton fallback refused the
    /// request (only reachable with a faulting backend).
    Failed,
}

/// One response: every admitted request produces exactly one.
#[derive(Debug, Clone)]
pub struct SolveResponse {
    /// The request's identifier.
    pub id: u64,
    /// The request's geometry.
    pub shape: ShapeKey,
    /// Terminal status.
    pub status: SolveStatus,
    /// Solution overwriting the right-hand side ([`SolveStatus::Solved`]),
    /// or the untouched right-hand side otherwise.
    pub x: Vec<f64>,
    /// Submission time echoed from the request.
    pub submitted_s: f64,
    /// Absolute deadline echoed from the request.
    pub deadline_s: f64,
    /// Completion time on the virtual clock.
    pub completed_s: f64,
    /// How many requests shared the flushed batch.
    pub batch_size: usize,
    /// Why the batch was flushed.
    pub reason: FlushReason,
    /// Which backend produced the answer.
    pub backend: BackendKind,
}

impl SolveResponse {
    /// End-to-end latency (submission to completion), in seconds.
    #[must_use]
    pub fn latency_s(&self) -> f64 {
        self.completed_s - self.submitted_s
    }

    /// Whether the response completed after its deadline.
    #[must_use]
    pub fn missed_deadline(&self) -> bool {
        self.completed_s > self.deadline_s
    }
}
