//! Service metrics: live counters plus the exported [`ServeReport`].

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::backend::BackendKind;
use crate::cache::CacheStats;
use crate::policy::FlushReason;

/// Live counters the server mutates as it runs. [`Metrics::report`]
/// freezes them into the serializable [`ServeReport`].
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub submitted: u64,
    pub rejected: u64,
    pub solved: u64,
    pub singular: u64,
    pub timed_out: u64,
    pub failed: u64,
    pub flush_size: u64,
    pub flush_deadline: u64,
    pub flush_drain: u64,
    pub spills: u64,
    pub bisect_retries: u64,
    pub fallback_singletons: u64,
    pub deadline_misses: u64,
    pub warm_requests: u64,
    pub warm_flushes: u64,
    pub warm_fallbacks: u64,
    pub stale_handles: u64,
    pub factorize_requests: u64,
    pub max_queue_depth: usize,
    pub gpu_busy_s: f64,
    pub cpu_busy_s: f64,
    pub gpu_requests: u64,
    pub cpu_requests: u64,
    pub batch_hist: BTreeMap<usize, u64>,
    pub latencies_s: Vec<f64>,
}

impl Metrics {
    pub(crate) fn note_flush(&mut self, reason: FlushReason, batch: usize) {
        match reason {
            FlushReason::SizeReached => self.flush_size += 1,
            FlushReason::DeadlineExpired => self.flush_deadline += 1,
            FlushReason::Drain => self.flush_drain += 1,
        }
        *self.batch_hist.entry(batch).or_insert(0) += 1;
    }

    pub(crate) fn note_served(&mut self, kind: BackendKind) {
        match kind {
            BackendKind::Gpu => self.gpu_requests += 1,
            BackendKind::Cpu => self.cpu_requests += 1,
        }
    }

    /// [`Metrics::report`] with the factor-cache dimensions filled in
    /// from a live cache snapshot.
    pub(crate) fn report_with_cache(
        &self,
        stats: CacheStats,
        entries: usize,
        bytes: usize,
    ) -> ServeReport {
        let mut r = self.report();
        r.cache_lookups = stats.lookups;
        r.cache_hits = stats.hits;
        r.cache_misses = stats.misses;
        r.cache_insertions = stats.insertions;
        r.cache_evictions = stats.evictions;
        r.cache_negative_hits = stats.negative_hits;
        r.cache_entries = entries;
        r.cache_bytes = bytes;
        r
    }

    pub(crate) fn report(&self) -> ServeReport {
        let mut sorted = self.latencies_s.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let quantile = |q: f64| -> f64 {
            if sorted.is_empty() {
                return 0.0;
            }
            // Nearest-rank on the sorted sample.
            let idx = (q * (sorted.len() - 1) as f64).round() as usize;
            sorted[idx]
        };
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        ServeReport {
            submitted: self.submitted,
            rejected: self.rejected,
            completed: self.solved + self.singular + self.timed_out + self.failed,
            solved: self.solved,
            singular: self.singular,
            timed_out: self.timed_out,
            failed: self.failed,
            flush_size: self.flush_size,
            flush_deadline: self.flush_deadline,
            flush_drain: self.flush_drain,
            spills: self.spills,
            bisect_retries: self.bisect_retries,
            fallback_singletons: self.fallback_singletons,
            deadline_misses: self.deadline_misses,
            warm_requests: self.warm_requests,
            warm_flushes: self.warm_flushes,
            warm_fallbacks: self.warm_fallbacks,
            stale_handles: self.stale_handles,
            factorize_requests: self.factorize_requests,
            cache_lookups: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_insertions: 0,
            cache_evictions: 0,
            cache_negative_hits: 0,
            cache_entries: 0,
            cache_bytes: 0,
            max_queue_depth: self.max_queue_depth,
            gpu_busy_s: self.gpu_busy_s,
            cpu_busy_s: self.cpu_busy_s,
            gpu_requests: self.gpu_requests,
            cpu_requests: self.cpu_requests,
            batch_hist: self.batch_hist.iter().map(|(&k, &v)| (k, v)).collect(),
            p50_latency_s: quantile(0.50),
            p99_latency_s: quantile(0.99),
            max_latency_s: sorted.last().copied().unwrap_or(0.0),
            mean_latency_s: mean,
            devices: Vec::new(),
        }
    }
}

/// Frozen, serializable snapshot of a service run. Everything is counted
/// on the virtual clock, so two runs over the same traffic produce equal
/// reports regardless of host parallelism (`PartialEq` is exact).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Requests offered to `submit` (admitted or rejected).
    pub submitted: u64,
    /// Requests refused with backpressure (`QueueFull`).
    pub rejected: u64,
    /// Responses emitted (every admitted request produces exactly one).
    pub completed: u64,
    /// Responses with a solution.
    pub solved: u64,
    /// Responses flagged exactly singular.
    pub singular: u64,
    /// Responses dropped by the per-request timeout.
    pub timed_out: u64,
    /// Responses refused by both backends (faulting doubles only).
    pub failed: u64,
    /// Flushes triggered by reaching the target batch size.
    pub flush_size: u64,
    /// Flushes triggered by a head-of-line deadline.
    pub flush_deadline: u64,
    /// Flushes triggered by draining the service.
    pub flush_drain: u64,
    /// Flushes routed to the CPU backend (small or stale buckets, or a
    /// saturated device).
    pub spills: u64,
    /// Batch-level backend failures recovered by bisection (each split
    /// counts once).
    pub bisect_retries: u64,
    /// Requests rescued one-by-one on the fallback backend after
    /// bisection isolated them.
    pub fallback_singletons: u64,
    /// Responses completed after their deadline.
    pub deadline_misses: u64,
    /// Requests admitted on the warm (cached-factor, GBTRS-only) tier.
    pub warm_requests: u64,
    /// Flushes that ran the GBTRS-only fast path end to end.
    pub warm_flushes: u64,
    /// Warm flushes demoted to the cold factorize-and-solve path because
    /// a retained factor was evicted between admission and flush.
    pub warm_fallbacks: u64,
    /// `submit_with` calls whose [`FactorHandle`](crate::FactorHandle)
    /// no longer resolved (evicted) — served via the ordinary path.
    pub stale_handles: u64,
    /// Operators factored through the explicit `factorize` entry point.
    pub factorize_requests: u64,
    /// Factor-cache admission probes (`hits + misses`).
    pub cache_lookups: u64,
    /// Admission probes that found a live retained factor.
    pub cache_hits: u64,
    /// Admission probes that missed.
    pub cache_misses: u64,
    /// Factors inserted into the cache.
    pub cache_insertions: u64,
    /// Factors evicted under the LRU capacity/byte budget.
    pub cache_evictions: u64,
    /// Admission probes answered by the negative (singular) cache.
    pub cache_negative_hits: u64,
    /// Live cache entries at report time.
    pub cache_entries: usize,
    /// Live cache footprint in bytes at report time.
    pub cache_bytes: usize,
    /// Peak total queue depth observed at admission.
    pub max_queue_depth: usize,
    /// Total modeled GPU busy time, seconds.
    pub gpu_busy_s: f64,
    /// Total modeled CPU busy time, seconds.
    pub cpu_busy_s: f64,
    /// Requests answered by the GPU backend.
    pub gpu_requests: u64,
    /// Requests answered by the CPU backend.
    pub cpu_requests: u64,
    /// Histogram of flushed batch sizes: `(size, count)`, ascending.
    pub batch_hist: Vec<(usize, u64)>,
    /// Median end-to-end latency, seconds (0 when nothing completed).
    pub p50_latency_s: f64,
    /// 99th-percentile end-to-end latency, seconds.
    pub p99_latency_s: f64,
    /// Worst end-to-end latency, seconds.
    pub max_latency_s: f64,
    /// Mean end-to-end latency, seconds.
    pub mean_latency_s: f64,
    /// Per-device breakdown, in worker order (GPU workers first, CPU
    /// pool last). Empty on reports frozen before the fleet refactor;
    /// `serde(default)` keeps those old JSON snapshots loadable.
    #[serde(default)]
    pub devices: Vec<DeviceReport>,
}

/// One fleet worker's slice of a [`ServeReport`]. All numbers live on
/// the virtual clock, so they are exactly reproducible run to run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceReport {
    /// Worker name (registry instance name, e.g. `"h100_pcie:0"`, or the
    /// device spec's own name for hand-built servers; `"cpu"` for the
    /// spill pool).
    pub name: String,
    /// Engine class: `"gpu"` or `"cpu"`.
    pub kind: String,
    /// Requests answered by this worker.
    pub requests: u64,
    /// Batches flushed to this worker.
    pub flushes: u64,
    /// Total modeled busy time, seconds.
    pub busy_s: f64,
    /// `busy_s` over the virtual-clock horizon at report time (0 when
    /// the clock never advanced).
    pub utilization: f64,
    /// Batches this worker would have owned by affinity but that the
    /// router shed elsewhere because the worker was saturated.
    pub sheds: u64,
    /// Peak number of flushed batches simultaneously in flight on this
    /// worker's virtual timeline.
    pub peak_inflight: usize,
}

impl ServeReport {
    /// Total flushes across all trigger reasons.
    #[must_use]
    pub fn flushes(&self) -> u64 {
        self.flush_size + self.flush_deadline + self.flush_drain
    }

    /// Mean flushed batch size (0 when nothing flushed).
    #[must_use]
    pub fn mean_batch(&self) -> f64 {
        let (reqs, flushes) = self
            .batch_hist
            .iter()
            .fold((0u64, 0u64), |(r, f), &(size, count)| {
                (r + size as u64 * count, f + count)
            });
        if flushes == 0 {
            0.0
        } else {
            reqs as f64 / flushes as f64
        }
    }

    /// Whether every admitted request was answered.
    #[must_use]
    pub fn is_conserved(&self) -> bool {
        self.submitted - self.rejected == self.completed
    }

    /// Factor-cache hit rate over admission probes (0 when no probes).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Mean modeled backend busy time per completed request, seconds —
    /// the amortized service cost a factor cache is supposed to push
    /// down (0 when nothing completed).
    #[must_use]
    pub fn amortized_cost_s(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            (self.gpu_busy_s + self.cpu_busy_s) / self.completed as f64
        }
    }

    /// Spread of GPU-worker utilization (`max − min`; 0 with fewer than
    /// two GPU workers). A router that load-balances well keeps this
    /// small on a homogeneous fleet; on a heterogeneous fleet it tracks
    /// how much the affinity policy concentrates work.
    #[must_use]
    pub fn utilization_spread(&self) -> f64 {
        let utils: Vec<f64> = self
            .devices
            .iter()
            .filter(|d| d.kind == "gpu")
            .map(|d| d.utilization)
            .collect();
        if utils.len() < 2 {
            return 0.0;
        }
        let max = utils.iter().copied().fold(f64::MIN, f64::max);
        let min = utils.iter().copied().fold(f64::MAX, f64::min);
        max - min
    }

    /// Total batches shed away from their affinity-preferred worker.
    #[must_use]
    pub fn sheds(&self) -> u64 {
        self.devices.iter().map(|d| d.sheds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_and_means() {
        let m = Metrics {
            latencies_s: (1..=100).map(|i| i as f64 * 1e-3).collect(),
            solved: 100,
            submitted: 100,
            ..Default::default()
        };
        let r = m.report();
        assert!((r.p50_latency_s - 0.051).abs() < 1e-12);
        assert!((r.p99_latency_s - 0.099).abs() < 1e-12);
        assert!((r.max_latency_s - 0.100).abs() < 1e-12);
        assert!((r.mean_latency_s - 0.0505).abs() < 1e-12);
        assert!(r.is_conserved());
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut m = Metrics {
            submitted: 7,
            solved: 5,
            singular: 2,
            latencies_s: vec![1e-3, 2e-3],
            ..Default::default()
        };
        m.note_flush(FlushReason::SizeReached, 4);
        m.note_flush(FlushReason::DeadlineExpired, 3);
        let r = m.report();
        let text = serde_json::to_string_pretty(&r).unwrap();
        let back: ServeReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.flushes(), 2);
        assert!((back.mean_batch() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_quiet() {
        let r = Metrics::default().report();
        assert_eq!(r.p50_latency_s, 0.0);
        assert_eq!(r.max_latency_s, 0.0);
        assert_eq!(r.mean_batch(), 0.0);
        assert_eq!(r.flushes(), 0);
        assert!(r.is_conserved());
    }
}
