//! The dynamic-batching server: a virtual-time discrete-event engine.
//!
//! The server runs on a **virtual clock** driven by the caller: `submit`
//! carries each request's arrival time, `advance` moves the clock, and all
//! service times come from the simulated backends' cost models. Nothing
//! here depends on wall-clock time or thread scheduling, so a traffic
//! trace replays to bitwise-identical responses and reports no matter how
//! many host worker threads the backends use — the serving-layer analogue
//! of the kernel determinism guarantee the rest of the workspace carries.
//!
//! Event model per flush:
//!
//! 1. a bucket trigger fires (size, deadline-minus-margin, or drain);
//! 2. the flush routes to the GPU unless it is small/stale or the device
//!    is saturated (busy past the spill slack), in which case it spills to
//!    the CPU backend;
//! 3. requests that could not start before `deadline + timeout slack` are
//!    answered `TimedOut` without being solved;
//! 4. the batch runs; a batch-level backend failure is bisected until the
//!    poisoned half is isolated, and stubborn singletons retry on the
//!    other backend;
//! 5. the routed backend's busy horizon moves forward by the modeled
//!    service time; every response completes at the new horizon.
//!
//! Admission additionally consults the [`FactorCache`]: every request's
//! operator is content-fingerprinted, and requests whose fingerprint maps
//! to a live retained factorization are bucketed on a separate **warm
//! tier** that flushes as a GBTRS-only batch (no `gbtrf` at all).
//! Known-singular fingerprints ride a **negative tier** that routes
//! straight to CPU spill. Cold flushes harvest every healthy lane's
//! factors back into the cache, so steady repeated-operator traffic
//! converges to solve-only device work.
//!
//! ## The fleet
//!
//! The primary route is a **fleet** of device workers, each wrapping one
//! [`SolveBackend`] with its own busy horizon, resident-engine state and
//! per-worker statistics. Every flush is priced against every worker by a
//! deterministic router (see [`Server::route`]): the bucket's estimated
//! service time on each device (bandwidth + launch-overhead floor from
//! the kernel cost model) is adjusted for fused-kernel shared-memory fit
//! (small-`n` buckets prefer devices whose smem holds the fused working
//! set) and factor-cache affinity (warm buckets prefer the worker that
//! harvested their factors), then added to the worker's earliest start.
//! Work sheds away from its affinity-preferred worker only when that
//! worker is loaded — counted per worker — and the existing CPU spill
//! rule applies against the *chosen* worker's horizon, so a one-worker
//! fleet reproduces the pre-fleet server bit for bit.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use gbatch_core::{operator_fingerprint, Fingerprint, Precision, RetainedFactor, ShapeKey};
use gbatch_cpu::CpuSpec;
use gbatch_gpu_sim::multi::DeviceGroup;
use gbatch_gpu_sim::registry::FleetSpec;
use gbatch_gpu_sim::{DeviceSpec, ParallelPolicy};
use gbatch_kernels::cost::predict_reference_floor;
use gbatch_kernels::gbsv_fused::gbsv_smem_bytes;

use crate::backend::{BackendKind, CpuBackend, GpuBackend, SolveBackend};
use crate::bucket::{BucketMap, Bucketed};
use crate::cache::{CacheConfig, FactorCache, FactorHandle};
use crate::metrics::{DeviceReport, Metrics, ServeReport};
use crate::policy::{FlushPolicy, FlushReason};
use crate::request::{AdmitError, SolveRequest, SolveResponse, SolveStatus};

/// Cache tier a request was admitted on. Part of the bucketing key, so
/// warm (solve-only) and cold (factorize-and-solve) work never share a
/// launch — they run different kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Tier {
    /// No cached factorization: full `gbsv`, factors harvested after.
    Cold,
    /// Live cached factorization: GBTRS-only fast path.
    Warm,
    /// Known-singular operator: served on the CPU spill path, never
    /// worth a device launch and never factor-cached.
    Negative,
}

/// Bucketing key of the internal admission queue: exact geometry plus
/// cache tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct BucketKey {
    shape: ShapeKey,
    tier: Tier,
}

/// An admitted request annotated with its operator fingerprint and tier.
struct Admitted {
    req: SolveRequest,
    fp: Fingerprint,
    tier: Tier,
}

impl Bucketed for Admitted {
    type Key = BucketKey;
    fn bucket_key(&self) -> BucketKey {
        BucketKey {
            shape: self.req.shape,
            tier: self.tier,
        }
    }
    fn deadline_s(&self) -> f64 {
        self.req.deadline_s
    }
}

/// Why [`Server::factorize`] refused to hand back a handle.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorizeError {
    /// The operator failed admission validation.
    Admit(AdmitError),
    /// The operator is exactly singular (first zero pivot at this
    /// 1-based column). The fingerprint is negatively cached.
    Singular {
        /// 1-based first zero-pivot column.
        column: i32,
    },
    /// Both backends refused the factorization batch.
    Backend(String),
}

impl std::fmt::Display for FactorizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorizeError::Admit(e) => write!(f, "{e}"),
            FactorizeError::Singular { column } => {
                write!(f, "operator is singular at column {column}")
            }
            FactorizeError::Backend(why) => write!(f, "factorization failed: {why}"),
        }
    }
}

impl std::error::Error for FactorizeError {}

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Bounded admission capacity: total pending requests across all
    /// buckets. Admission beyond it is refused with
    /// [`AdmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Flush policy.
    pub policy: FlushPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            queue_capacity: 4096,
            policy: FlushPolicy::default(),
        }
    }
}

/// Outcome of one request inside a flush, aligned with the batch order.
struct Outcome {
    x: Vec<f64>,
    info: i32,
    kind: BackendKind,
    failed: bool,
    /// Healthy lane's harvested factorization, when the backend retained
    /// one — inserted into the cache after the flush.
    retained: Option<Arc<RetainedFactor>>,
}

/// One fleet worker: a backend plus its own virtual timeline and stats.
/// A worker's busy horizon serializes its flushes, so per-worker service
/// is sequential exactly like the pre-fleet single device.
struct Worker {
    /// Report name: the device spec's name when the backend has one,
    /// otherwise a positional fallback (`"gpu:0"`, `"cpu"`).
    name: String,
    backend: Box<dyn SolveBackend>,
    /// Instant this worker's timeline is free, seconds.
    free_s: f64,
    requests: u64,
    flushes: u64,
    busy_s: f64,
    /// Batches this worker would have owned by affinity but the router
    /// placed elsewhere because this worker was loaded.
    sheds: u64,
    /// End instants of batches still running at the last assignment —
    /// nondecreasing, since the horizon serializes the worker.
    inflight_ends: VecDeque<f64>,
    peak_inflight: usize,
}

impl Worker {
    fn new(backend: Box<dyn SolveBackend>, fallback_name: String) -> Self {
        Worker {
            name: backend.device().map_or(fallback_name, |d| d.name.clone()),
            backend,
            free_s: 0.0,
            requests: 0,
            flushes: 0,
            busy_s: 0.0,
            sheds: 0,
            inflight_ends: VecDeque::new(),
            peak_inflight: 0,
        }
    }

    /// Record a batch assigned at `t` finishing at `end`; the live count
    /// of unfinished batches is this worker's queue depth.
    fn note_inflight(&mut self, t: f64, end: f64) {
        while self.inflight_ends.front().is_some_and(|&e| e <= t) {
            self.inflight_ends.pop_front();
        }
        self.inflight_ends.push_back(end);
        self.peak_inflight = self.peak_inflight.max(self.inflight_ends.len());
    }

    fn report(&self, horizon_s: f64) -> DeviceReport {
        DeviceReport {
            name: self.name.clone(),
            kind: self.backend.kind().to_string(),
            requests: self.requests,
            flushes: self.flushes,
            busy_s: self.busy_s,
            utilization: if horizon_s > 0.0 {
                self.busy_s / horizon_s
            } else {
                0.0
            },
            sheds: self.sheds,
            peak_inflight: self.peak_inflight,
        }
    }
}

/// Router pricing: estimated-service multiplier for a fused-eligible
/// bucket on a device whose shared memory cannot hold the fused working
/// set (the dispatcher would fall back to the slower window path there).
const FUSED_SMEM_PENALTY: f64 = 1.5;
/// Router pricing: multiplier for a warm bucket on a worker that did not
/// harvest its factors (no resident-state or cache-locality benefit).
const WARM_AFFINITY_PENALTY: f64 = 2.0;
/// Largest `n` the fused single-launch kernel targets; buckets at or
/// under it are "fused-eligible" for routing purposes.
const FUSED_MAX_N: usize = 64;

/// The dynamic-batching solve server.
pub struct Server {
    cfg: ServerConfig,
    buckets: BucketMap<Admitted>,
    cache: FactorCache,
    /// Device workers, the primary route. Never empty.
    gpus: Vec<Worker>,
    /// The spill pool and singleton-rescue route.
    cpu: Worker,
    /// Fingerprint → GPU-worker index that factored/harvested it last;
    /// warm buckets prefer that worker (its cache-resident factors).
    affinity: BTreeMap<Fingerprint, usize>,
    clock_s: f64,
    responses: Vec<SolveResponse>,
    metrics: Metrics,
}

impl Server {
    /// Server over explicit backends. `gpu` is the primary route; `cpu`
    /// receives spilled flushes and singleton retries. Equivalent to a
    /// one-worker [`Server::fleet`].
    #[must_use]
    pub fn new(cfg: ServerConfig, gpu: Box<dyn SolveBackend>, cpu: Box<dyn SolveBackend>) -> Self {
        Server::fleet(cfg, vec![gpu], cpu)
    }

    /// Server over a fleet of device workers plus one CPU spill pool.
    /// Every worker keeps its own busy horizon, resident-engine state and
    /// statistics; the router prices each flush against all of them.
    ///
    /// # Panics
    /// With an empty worker list — a fleet needs at least one device.
    #[must_use]
    pub fn fleet(
        cfg: ServerConfig,
        gpus: Vec<Box<dyn SolveBackend>>,
        cpu: Box<dyn SolveBackend>,
    ) -> Self {
        assert!(!gpus.is_empty(), "a fleet needs at least one device worker");
        Server {
            buckets: BucketMap::new(cfg.queue_capacity),
            cfg,
            cache: FactorCache::default(),
            gpus: gpus
                .into_iter()
                .enumerate()
                .map(|(i, b)| Worker::new(b, format!("gpu:{i}")))
                .collect(),
            cpu: Worker::new(cpu, "cpu".to_string()),
            affinity: BTreeMap::new(),
            clock_s: 0.0,
            responses: Vec::new(),
            metrics: Metrics::default(),
        }
    }

    /// Builder: replace the factor cache's budgets (empties the cache).
    #[must_use]
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = FactorCache::new(cache);
        self
    }

    /// The live factor cache (inspection only).
    #[must_use]
    pub fn cache(&self) -> &FactorCache {
        &self.cache
    }

    /// Convenience constructor over the simulated substrate: a device
    /// group for the batch path and a CPU descriptor for spill-over.
    /// `parallel` schedules the simulated engines' host-side block loops
    /// (results are bitwise-identical for every policy).
    #[must_use]
    pub fn simulated(
        group: DeviceGroup,
        cpu: CpuSpec,
        parallel: ParallelPolicy,
        cfg: ServerConfig,
    ) -> Self {
        Server::new(
            cfg,
            Box::new(GpuBackend::new(group, parallel)),
            Box::new(CpuBackend::new(cpu)),
        )
    }

    /// [`Server::simulated`] over a heterogeneous fleet composition: one
    /// worker per [`FleetSpec`] device instance (each a one-device group,
    /// so resident-engine state and megabatch queues are per worker),
    /// plus the CPU spill pool. Errors on an unknown catalog name or an
    /// empty composition.
    pub fn simulated_fleet(
        fleet: &FleetSpec,
        cpu: CpuSpec,
        parallel: ParallelPolicy,
        cfg: ServerConfig,
    ) -> Result<Self, String> {
        let devices = fleet.devices()?;
        if devices.is_empty() {
            return Err("empty fleet composition".to_string());
        }
        let gpus = devices
            .into_iter()
            .map(|d| {
                Box::new(GpuBackend::new(DeviceGroup::new(vec![d]), parallel))
                    as Box<dyn SolveBackend>
            })
            .collect();
        Ok(Server::fleet(cfg, gpus, Box::new(CpuBackend::new(cpu))))
    }

    /// Number of device workers in the fleet.
    #[must_use]
    pub fn fleet_size(&self) -> usize {
        self.gpus.len()
    }

    /// The virtual clock, seconds.
    #[must_use]
    pub fn clock_s(&self) -> f64 {
        self.clock_s
    }

    /// Requests currently queued.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.buckets.pending()
    }

    /// Responses accumulated since the last [`Server::take_responses`].
    #[must_use]
    pub fn ready(&self) -> usize {
        self.responses.len()
    }

    /// Submit one request at its `submitted_s` instant. The clock advances
    /// to that instant first (firing any deadline flushes due before it),
    /// then the request is validated, fingerprinted against the factor
    /// cache, and enqueued on its tier; a bucket reaching the target size
    /// flushes immediately. A fingerprint that matches a live cached
    /// factorization rides the warm (GBTRS-only) tier transparently — no
    /// handle needed.
    pub fn submit(&mut self, req: SolveRequest) -> Result<(), AdmitError> {
        self.admit(req, None)
    }

    /// [`Server::submit`] pinned to a cached factorization obtained from
    /// [`Server::factorize`]. The request still carries its full operator
    /// payload: the handle is an optimization hint, not a correctness
    /// dependency. A stale handle (evicted) or one whose fingerprint does
    /// not match the payload **fails closed** — the request is served
    /// through the ordinary path (re-factorizing if needed) and the
    /// mismatch is counted, never an error or a wrong answer.
    pub fn submit_with(
        &mut self,
        req: SolveRequest,
        handle: FactorHandle,
    ) -> Result<(), AdmitError> {
        self.admit(req, Some(handle))
    }

    fn admit(&mut self, req: SolveRequest, handle: Option<FactorHandle>) -> Result<(), AdmitError> {
        if req.submitted_s < self.clock_s {
            return Err(AdmitError::NonMonotonicTime {
                now_s: req.submitted_s,
                clock_s: self.clock_s,
            });
        }
        self.advance(req.submitted_s);
        self.metrics.submitted += 1;

        // Validate the shape and payload before touching the queue.
        if req.shape.nrhs == 0 {
            self.metrics.rejected += 1;
            return Err(AdmitError::UnsupportedShape(
                "nrhs must be at least 1".into(),
            ));
        }
        if let Err(e) = req.shape.layout() {
            self.metrics.rejected += 1;
            return Err(AdmitError::UnsupportedShape(e.to_string()));
        }
        let (want_ab, want_rhs) = (req.shape.ab_len(), req.shape.rhs_len());
        if req.ab.len() != want_ab || req.rhs.len() != want_rhs {
            self.metrics.rejected += 1;
            return Err(AdmitError::BadPayload {
                expected_ab: want_ab,
                got_ab: req.ab.len(),
                expected_rhs: want_rhs,
                got_rhs: req.rhs.len(),
            });
        }

        let fp = operator_fingerprint(&req.shape, &req.ab);
        let tier = match handle {
            Some(h) => match self.cache.resolve(h) {
                // The handle is honest (live, and it names this exact
                // operator): the lookup below necessarily hits, keeping
                // the hit-rate metric consistent with handle traffic.
                Some(hfp) if hfp == fp => {
                    let _ = self.cache.lookup(fp);
                    Tier::Warm
                }
                // Stale or mismatched: fail closed onto the ordinary
                // fingerprint path.
                _ => {
                    self.metrics.stale_handles += 1;
                    self.tier_of(fp)
                }
            },
            None => self.tier_of(fp),
        };
        if tier == Tier::Warm {
            self.metrics.warm_requests += 1;
        }
        let key = BucketKey {
            shape: req.shape,
            tier,
        };
        match self.buckets.push(Admitted { req, fp, tier }) {
            Err(_) => {
                self.metrics.rejected += 1;
                Err(AdmitError::QueueFull {
                    capacity: self.buckets.capacity(),
                })
            }
            Ok(depth) => {
                self.metrics.max_queue_depth =
                    self.metrics.max_queue_depth.max(self.buckets.pending());
                if depth >= self.cfg.policy.target_batch {
                    let t = self.clock_s;
                    self.flush(&key, t, FlushReason::SizeReached);
                }
                Ok(())
            }
        }
    }

    /// Which tier a fingerprint admits on right now.
    fn tier_of(&mut self, fp: Fingerprint) -> Tier {
        if self.cache.probe_negative(fp).is_some() {
            return Tier::Negative;
        }
        if self.cache.lookup(fp).is_some() {
            Tier::Warm
        } else {
            Tier::Cold
        }
    }

    /// Factor one operator ahead of its solves — the explicit entry point
    /// for timestepping clients that know an operator will be reused. The
    /// factorization runs synchronously on the GPU backend (CPU on a GPU
    /// fault), advances the clock to `now_s`, occupies the backend's busy
    /// horizon like any flush, and retains the factors in the cache. The
    /// returned [`FactorHandle`] can pin later [`Server::submit_with`]
    /// calls to the cached factors; an already-cached operator returns
    /// its existing handle without refactoring.
    pub fn factorize(
        &mut self,
        shape: ShapeKey,
        ab: &[f64],
        now_s: f64,
    ) -> Result<FactorHandle, FactorizeError> {
        if now_s < self.clock_s {
            return Err(FactorizeError::Admit(AdmitError::NonMonotonicTime {
                now_s,
                clock_s: self.clock_s,
            }));
        }
        self.advance(now_s);
        if shape.nrhs == 0 {
            return Err(FactorizeError::Admit(AdmitError::UnsupportedShape(
                "nrhs must be at least 1".into(),
            )));
        }
        if let Err(e) = shape.layout() {
            return Err(FactorizeError::Admit(AdmitError::UnsupportedShape(
                e.to_string(),
            )));
        }
        if ab.len() != shape.ab_len() {
            return Err(FactorizeError::Admit(AdmitError::BadPayload {
                expected_ab: shape.ab_len(),
                got_ab: ab.len(),
                expected_rhs: shape.rhs_len(),
                got_rhs: shape.rhs_len(),
            }));
        }
        let fp = operator_fingerprint(&shape, ab);
        if let Some(column) = self.cache.probe_negative(fp) {
            return Err(FactorizeError::Singular { column });
        }
        if let Some(handle) = self.cache.handle_of(fp) {
            // Already cached: refresh recency, reuse the handle.
            let _ = self.cache.fetch(fp);
            return Ok(handle);
        }
        self.metrics.factorize_requests += 1;
        let t = self.clock_s;
        // Route the factorization to the cheapest-to-start worker (the
        // sole worker on a one-device fleet), CPU on a device fault.
        let wi = self.cheapest_worker(&shape, 1, t);
        let (outcome, on_gpu) = match self.gpus[wi].backend.factorize(&shape, &[ab]) {
            Ok(o) => (o, true),
            Err(_) => match self.cpu.backend.factorize(&shape, &[ab]) {
                Ok(o) => (o, false),
                Err(e) => return Err(FactorizeError::Backend(e.to_string())),
            },
        };
        let w = if on_gpu {
            &mut self.gpus[wi]
        } else {
            &mut self.cpu
        };
        let start = w.free_s.max(t);
        let end = start + outcome.service_s;
        w.free_s = end;
        w.busy_s += outcome.service_s;
        w.note_inflight(t, end);
        if on_gpu {
            self.metrics.gpu_busy_s += outcome.service_s;
        } else {
            self.metrics.cpu_busy_s += outcome.service_s;
        }
        if outcome.info[0] > 0 {
            self.cache.insert_negative(fp, outcome.info[0]);
            return Err(FactorizeError::Singular {
                column: outcome.info[0],
            });
        }
        let factor = outcome
            .factors
            .into_iter()
            .next()
            .flatten()
            .ok_or_else(|| {
                FactorizeError::Backend("backend reported success without factors".into())
            })?;
        if on_gpu {
            self.affinity.insert(fp, wi);
        }
        Ok(self.cache.insert(fp, factor))
    }

    /// Advance the virtual clock to `now_s`, firing every deadline flush
    /// whose trigger instant (head-of-line deadline minus the flush
    /// margin) falls at or before it, in trigger order.
    pub fn advance(&mut self, now_s: f64) {
        let margin = self.cfg.policy.flush_margin_s;
        while let Some((deadline, key)) = self.buckets.next_deadline() {
            let trigger = deadline - margin;
            if trigger > now_s {
                break;
            }
            // The flush happens at its trigger instant (it may be in the
            // past relative to `now_s` — events replay in order), but the
            // clock never runs backwards.
            let t = trigger.max(self.clock_s);
            self.flush(&key, t, FlushReason::DeadlineExpired);
            self.clock_s = self.clock_s.max(t);
        }
        self.clock_s = self.clock_s.max(now_s);
    }

    /// Flush every remaining bucket at the current clock (deterministic
    /// `ShapeKey` order) — the shutdown path.
    pub fn drain(&mut self) {
        let t = self.clock_s;
        for key in self.buckets.occupied_keys() {
            self.flush(&key, t, FlushReason::Drain);
        }
    }

    /// Take every response produced so far, in completion order.
    pub fn take_responses(&mut self) -> Vec<SolveResponse> {
        std::mem::take(&mut self.responses)
    }

    /// Freeze the metrics into a serializable report, factor-cache
    /// dimensions included.
    #[must_use]
    pub fn report(&self) -> ServeReport {
        let mut r = self.metrics.report_with_cache(
            self.cache.stats(),
            self.cache.len(),
            self.cache.bytes(),
        );
        // The utilization horizon is the drained-schedule end: service
        // assigned by the last flush extends past the caller's clock, so
        // dividing by `clock_s` alone would over-report saturated fleets.
        let horizon = self
            .gpus
            .iter()
            .chain(std::iter::once(&self.cpu))
            .map(|w| w.free_s)
            .fold(self.clock_s, f64::max);
        r.devices = self
            .gpus
            .iter()
            .chain(std::iter::once(&self.cpu))
            .map(|w| w.report(horizon))
            .collect();
        r
    }

    /// Estimated service time of a `batch`-problem bucket on a worker's
    /// device: the memory-bound reference floor (launch overhead +
    /// bytes over sustained bandwidth) — exactly the relative quantity
    /// the cross-device routing decision needs. Workers without a device
    /// model (CPU pools, test doubles) price as zero, which reproduces
    /// the pre-fleet behavior of routing to them unconditionally.
    fn price_on(dev: &DeviceSpec, shape: &ShapeKey, batch: usize) -> f64 {
        let Ok(l) = shape.layout() else {
            return 0.0;
        };
        match shape.precision {
            Precision::F32 => predict_reference_floor::<f32>(dev, &l, batch).secs(),
            Precision::F64 => predict_reference_floor::<f64>(dev, &l, batch).secs(),
        }
    }

    /// Whether the fused single-launch kernel's working set for this
    /// shape fits the device's per-block shared memory — the §8 effect
    /// the router exploits: small-`n` fused buckets belong on smem-rich
    /// devices.
    fn fused_fits(dev: &DeviceSpec, shape: &ShapeKey) -> bool {
        let Ok(l) = shape.layout() else {
            return true;
        };
        let bytes = match shape.precision {
            Precision::F32 => gbsv_smem_bytes::<f32>(&l, shape.nrhs),
            Precision::F64 => gbsv_smem_bytes::<f64>(&l, shape.nrhs),
        };
        bytes <= dev.max_smem_per_block as usize
    }

    /// Affinity-adjusted service estimate of this bucket on worker `i`.
    fn worker_estimate(
        &self,
        i: usize,
        key: &BucketKey,
        batch: usize,
        affine: Option<usize>,
    ) -> f64 {
        let w = &self.gpus[i];
        let Some(dev) = w.backend.device() else {
            return 0.0;
        };
        let mut est = Self::price_on(dev, &key.shape, batch);
        if key.shape.n <= FUSED_MAX_N && !Self::fused_fits(dev, &key.shape) {
            est *= FUSED_SMEM_PENALTY;
        }
        if key.tier == Tier::Warm && affine.is_some_and(|a| a != i) {
            est *= WARM_AFFINITY_PENALTY;
        }
        est
    }

    /// The deterministic fleet router: pick the GPU worker minimizing
    /// `earliest_start + affinity_adjusted_estimate` for this bucket.
    /// Ties break to the lowest worker index; every input is virtual-time
    /// state, so the choice replays bitwise. When load steers the bucket
    /// away from the worker the load-blind policy prefers (the affinity
    /// holder, or the cheapest device), that preferred worker's shed
    /// count is incremented — the "cold overflow sheds to less-loaded
    /// devices" path of the fleet design.
    fn route(&mut self, key: &BucketKey, batch: usize, t: f64, fps: &[Fingerprint]) -> usize {
        if self.gpus.len() == 1 {
            return 0;
        }
        // Majority affinity vote over the bucket's fingerprints (ties to
        // the lowest worker index via ascending map order + strict >).
        let mut votes: BTreeMap<usize, usize> = BTreeMap::new();
        for fp in fps {
            if let Some(&w) = self.affinity.get(fp) {
                *votes.entry(w).or_insert(0) += 1;
            }
        }
        let mut affine: Option<usize> = None;
        let mut most = 0usize;
        for (&w, &v) in &votes {
            if v > most {
                most = v;
                affine = Some(w);
            }
        }
        let mut chosen = 0usize;
        let mut chosen_score = f64::INFINITY;
        let mut preferred = 0usize;
        let mut preferred_score = f64::INFINITY;
        for i in 0..self.gpus.len() {
            let est = self.worker_estimate(i, key, batch, affine);
            let score = self.gpus[i].free_s.max(t) + est;
            if score < chosen_score {
                chosen_score = score;
                chosen = i;
            }
            // The load-blind preference: where the bucket *belongs*.
            if est < preferred_score {
                preferred_score = est;
                preferred = i;
            }
        }
        if chosen != preferred {
            self.gpus[preferred].sheds += 1;
        }
        chosen
    }

    /// Worker with the earliest priced start for a single factorization.
    fn cheapest_worker(&self, shape: &ShapeKey, batch: usize, t: f64) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for (i, w) in self.gpus.iter().enumerate() {
            let est = w
                .backend
                .device()
                .map_or(0.0, |d| Self::price_on(d, shape, batch));
            let score = w.free_s.max(t) + est;
            if score < best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    fn flush(&mut self, key: &BucketKey, t: f64, reason: FlushReason) {
        let admitted = self.buckets.take(key);
        let batch = admitted.len();
        if batch == 0 {
            return;
        }
        self.metrics.note_flush(reason, batch);
        let shape = key.shape;

        // Fleet routing first: price the bucket against every device
        // worker (affinity-adjusted), then apply the spill rule against
        // the chosen worker's horizon. Route: size-triggered flushes
        // earned the device; deadline and drain flushes spill when too
        // small for a launch or when the device is saturated past the
        // slack. Known-singular (negative tier) flushes always spill:
        // re-running a singular operator is pure bookkeeping, never worth
        // a device launch. Large-`n` operators are exempt from the
        // min-batch spill: a single such system splits into `P`
        // intra-matrix blocks on the device (the SPIKE dispatch regime),
        // so even a lone request amortizes its launch.
        let fps_all: Vec<Fingerprint> = admitted.iter().map(|a| a.fp).collect();
        let wi = self.route(key, batch, t, &fps_all);
        let gpu_start = self.gpus[wi].free_s.max(t);
        let large_n = shape.n >= gbatch_kernels::dispatch::SPIKE_MIN_N && shape.kl + shape.ku > 0;
        let spill = key.tier == Tier::Negative
            || match reason {
                FlushReason::SizeReached => false,
                FlushReason::DeadlineExpired | FlushReason::Drain => {
                    (batch < self.cfg.policy.min_gpu_batch && !large_n)
                        || gpu_start > t + self.cfg.policy.spill_slack_s
                }
            };
        if spill {
            self.metrics.spills += 1;
        }
        let start = if spill {
            self.cpu.free_s.max(t)
        } else {
            gpu_start
        };

        // Per-request timeout: answer hopeless requests without solving.
        let slack = self.cfg.policy.timeout_slack_s;
        let (live, dead): (Vec<_>, Vec<_>) = admitted
            .into_iter()
            .partition(|a| start <= a.req.deadline_s + slack);
        for a in dead {
            self.metrics.timed_out += 1;
            self.push_response(
                a.req,
                SolveStatus::TimedOut,
                None,
                t,
                batch,
                reason,
                if spill {
                    BackendKind::Cpu
                } else {
                    BackendKind::Gpu
                },
            );
        }
        if live.is_empty() {
            return;
        }
        let (reqs, fps): (Vec<SolveRequest>, Vec<Fingerprint>) =
            live.into_iter().map(|a| (a.req, a.fp)).unzip();

        // Warm tier: gather the cached factors and run the GBTRS-only
        // fast path. Any factor evicted between admission and flush — or
        // a backend refusal — demotes the whole flush to the cold path
        // below (fail closed: correctness never depends on the cache).
        let mut service_s = 0.0;
        let mut outcomes: Option<Vec<Outcome>> = None;
        if key.tier == Tier::Warm {
            let factors: Vec<_> = fps.iter().map_while(|&fp| self.cache.fetch(fp)).collect();
            if factors.len() == reqs.len() {
                let primary: &dyn SolveBackend = if spill {
                    self.cpu.backend.as_ref()
                } else {
                    self.gpus[wi].backend.as_ref()
                };
                if let Ok(sol) = primary.solve_with(&shape, &reqs, &factors) {
                    service_s += sol.service_s;
                    self.metrics.warm_flushes += 1;
                    outcomes = Some(
                        sol.x
                            .into_iter()
                            .zip(sol.info)
                            .map(|(x, info)| Outcome {
                                x,
                                info,
                                kind: primary.kind(),
                                failed: false,
                                retained: None,
                            })
                            .collect(),
                    );
                    // The factors (SPIKE payloads included) just ran on
                    // this worker: refresh warm affinity there.
                    if !spill {
                        for &fp in &fps {
                            self.affinity.insert(fp, wi);
                        }
                    }
                }
            }
            if outcomes.is_none() {
                self.metrics.warm_fallbacks += 1;
            }
        }

        // Cold path (and warm demotions): factorize-and-solve with
        // bisect retry, harvesting factors for the cache.
        let outcomes = outcomes.unwrap_or_else(|| {
            let (primary, fallback): (&dyn SolveBackend, &dyn SolveBackend) = if spill {
                (self.cpu.backend.as_ref(), self.cpu.backend.as_ref())
            } else {
                (self.gpus[wi].backend.as_ref(), self.cpu.backend.as_ref())
            };
            run_with_bisect(
                primary,
                fallback,
                &shape,
                &reqs,
                &mut self.metrics,
                &mut service_s,
            )
        });

        // One busy-horizon step per flush: the host blocks on the flush's
        // whole retry sequence, so every response completes together.
        let end = start + service_s;
        {
            let w = if spill {
                &mut self.cpu
            } else {
                &mut self.gpus[wi]
            };
            w.free_s = end;
            w.busy_s += service_s;
            w.flushes += 1;
            w.note_inflight(t, end);
        }
        if spill {
            self.metrics.cpu_busy_s += service_s;
        } else {
            self.metrics.gpu_busy_s += service_s;
        }

        for ((r, fp), mut o) in reqs.into_iter().zip(fps).zip(outcomes) {
            // Cache maintenance. A lane the bisect retry rescued as
            // singular is *negatively* cached — its factors are never
            // retained, so a poisoned batch cannot seed the cache with a
            // singular factorization.
            if o.info > 0 {
                self.cache.insert_negative(fp, o.info);
            } else if !o.failed {
                if let Some(f) = o.retained.take() {
                    self.cache.insert(fp, f);
                    if !spill {
                        self.affinity.insert(fp, wi);
                    }
                }
            }
            let status = if o.failed {
                self.metrics.failed += 1;
                SolveStatus::Failed
            } else if o.info > 0 {
                self.metrics.singular += 1;
                SolveStatus::Singular { column: o.info }
            } else {
                self.metrics.solved += 1;
                SolveStatus::Solved
            };
            // Attribute the request to the worker that answered it: the
            // chosen device worker for its own kind, the CPU pool for
            // spills and singleton rescues.
            match o.kind {
                BackendKind::Gpu => self.gpus[wi].requests += 1,
                BackendKind::Cpu => self.cpu.requests += 1,
            }
            self.metrics.note_served(o.kind);
            self.push_response(r, status, Some(o.x), end, batch, reason, o.kind);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn push_response(
        &mut self,
        req: SolveRequest,
        status: SolveStatus,
        x: Option<Vec<f64>>,
        completed_s: f64,
        batch_size: usize,
        reason: FlushReason,
        backend: BackendKind,
    ) {
        if completed_s > req.deadline_s {
            self.metrics.deadline_misses += 1;
        }
        self.metrics.latencies_s.push(completed_s - req.submitted_s);
        self.responses.push(SolveResponse {
            id: req.id,
            shape: req.shape,
            status,
            x: x.unwrap_or(req.rhs),
            submitted_s: req.submitted_s,
            deadline_s: req.deadline_s,
            completed_s,
            batch_size,
            reason,
            backend,
        });
    }
}

/// Solve `reqs` on `primary`; on a batch-level failure bisect the batch
/// (the classic poisoned-batch retry) and rescue stubborn singletons on
/// `fallback`. Returns per-request outcomes aligned with `reqs` and
/// accumulates the modeled service time of every attempt into
/// `service_s`.
fn run_with_bisect(
    primary: &dyn SolveBackend,
    fallback: &dyn SolveBackend,
    shape: &ShapeKey,
    reqs: &[SolveRequest],
    metrics: &mut Metrics,
    service_s: &mut f64,
) -> Vec<Outcome> {
    let n = reqs.len();
    let mut out: Vec<Option<Outcome>> = (0..n).map(|_| None).collect();
    // LIFO with the right half pushed first, so ranges resolve
    // left-to-right — a fixed, data-independent order.
    let mut stack = vec![(0usize, n)];
    while let Some((lo, hi)) = stack.pop() {
        match primary.solve_retaining(shape, &reqs[lo..hi]) {
            Ok((sol, lanes)) => {
                *service_s += sol.service_s;
                for (k, ((x, info), retained)) in
                    sol.x.into_iter().zip(sol.info).zip(lanes).enumerate()
                {
                    out[lo + k] = Some(Outcome {
                        x,
                        info,
                        kind: primary.kind(),
                        failed: false,
                        retained,
                    });
                }
            }
            Err(_) if hi - lo > 1 => {
                metrics.bisect_retries += 1;
                let mid = lo + (hi - lo) / 2;
                stack.push((mid, hi));
                stack.push((lo, mid));
            }
            Err(_) => {
                // A single stubborn request: retry on the fallback. The
                // workspace determinism guarantee makes a CPU-harvested
                // factorization bitwise-identical to the GPU's, so the
                // rescue can still feed the cache.
                metrics.fallback_singletons += 1;
                match fallback.solve_retaining(shape, &reqs[lo..hi]) {
                    Ok((sol, lanes)) => {
                        *service_s += sol.service_s;
                        out[lo] = Some(Outcome {
                            x: sol.x.into_iter().next().expect("singleton solution"),
                            info: sol.info[0],
                            kind: fallback.kind(),
                            failed: false,
                            retained: lanes.into_iter().next().flatten(),
                        });
                    }
                    Err(_) => {
                        out[lo] = Some(Outcome {
                            x: reqs[lo].rhs.clone(),
                            info: 0,
                            kind: fallback.kind(),
                            failed: true,
                            retained: None,
                        });
                    }
                }
            }
        }
    }
    out.into_iter()
        .map(|o| o.expect("every request resolved"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{BackendError, BatchSolution};
    use gbatch_core::ShapeKey;

    fn req(id: u64, shape: ShapeKey, at: f64, dl: f64) -> SolveRequest {
        let l = shape.layout().unwrap();
        let mut ab = vec![0.0; shape.ab_len()];
        {
            let mut m = gbatch_core::BandMatrixMut {
                layout: l,
                data: &mut ab,
            };
            for j in 0..l.n {
                m.set(j, j, 4.0 + id as f64 * 0.01);
                let (s, e) = l.col_rows(j);
                for i in s..e {
                    if i != j {
                        m.set(i, j, 0.5);
                    }
                }
            }
        }
        SolveRequest {
            id,
            shape,
            ab,
            rhs: vec![1.0; shape.rhs_len()],
            submitted_s: at,
            deadline_s: dl,
        }
    }

    fn sim_server(cfg: ServerConfig) -> Server {
        Server::simulated(
            DeviceGroup::mi250x_full(),
            CpuSpec::xeon_gold_6140(),
            ParallelPolicy::Serial,
            cfg,
        )
    }

    #[test]
    fn size_trigger_flushes_exactly_at_target() {
        let shape = ShapeKey::gbsv(32, 2, 2, 1);
        let cfg = ServerConfig {
            queue_capacity: 64,
            policy: FlushPolicy::default().with_target_batch(4),
        };
        let mut s = sim_server(cfg);
        for i in 0..3u64 {
            s.submit(req(i, shape, i as f64 * 1e-5, 1.0)).unwrap();
            assert_eq!(s.ready(), 0, "no flush before the target");
        }
        s.submit(req(3, shape, 3e-5, 1.0)).unwrap();
        let resp = s.take_responses();
        assert_eq!(resp.len(), 4);
        assert!(resp.iter().all(|r| r.reason == FlushReason::SizeReached));
        assert!(resp.iter().all(|r| r.backend == BackendKind::Gpu));
        assert!(resp.iter().all(|r| r.status == SolveStatus::Solved));
        assert!(resp.iter().all(|r| r.batch_size == 4));
        let rep = s.report();
        assert_eq!(rep.flush_size, 1);
        assert!(rep.is_conserved());
    }

    #[test]
    fn deadline_trigger_fires_with_margin_and_small_buckets_spill() {
        let shape = ShapeKey::gbsv(32, 2, 2, 1);
        let cfg = ServerConfig {
            queue_capacity: 64,
            policy: FlushPolicy::default()
                .with_target_batch(100)
                .with_min_gpu_batch(8)
                .with_flush_margin_s(1e-3),
        };
        let mut s = sim_server(cfg);
        s.submit(req(0, shape, 0.0, 0.010)).unwrap();
        s.submit(req(1, shape, 0.001, 0.011)).unwrap();
        s.advance(0.008);
        assert_eq!(s.ready(), 0, "trigger is deadline - margin = 0.009");
        s.advance(0.0095);
        let resp = s.take_responses();
        assert_eq!(resp.len(), 2, "one deadline flush takes the whole bucket");
        assert!(resp
            .iter()
            .all(|r| r.reason == FlushReason::DeadlineExpired));
        // 2 < min_gpu_batch: spilled to the CPU.
        assert!(resp.iter().all(|r| r.backend == BackendKind::Cpu));
        assert!(resp.iter().all(|r| !r.missed_deadline()));
        let rep = s.report();
        assert_eq!(rep.flush_deadline, 1);
        assert_eq!(rep.spills, 1);
        assert_eq!(rep.cpu_requests, 2);
    }

    #[test]
    fn queue_full_backpressure_is_typed_and_recoverable() {
        let shape = ShapeKey::gbsv(16, 1, 1, 1);
        let cfg = ServerConfig {
            queue_capacity: 2,
            policy: FlushPolicy::default().with_target_batch(100),
        };
        let mut s = sim_server(cfg);
        s.submit(req(0, shape, 0.0, 1.0)).unwrap();
        s.submit(req(1, shape, 0.0, 1.0)).unwrap();
        let err = s.submit(req(2, shape, 0.0, 1.0)).unwrap_err();
        assert_eq!(err, AdmitError::QueueFull { capacity: 2 });
        // Drain frees capacity; admission resumes.
        s.drain();
        assert_eq!(s.take_responses().len(), 2);
        s.submit(req(2, shape, 0.1, 1.1)).unwrap();
        assert_eq!(s.pending(), 1);
        assert_eq!(s.report().rejected, 1);
    }

    #[test]
    fn bad_payload_and_unsupported_shape_are_rejected() {
        let shape = ShapeKey::gbsv(16, 1, 1, 1);
        let mut s = sim_server(ServerConfig::default());
        let mut r = req(0, shape, 0.0, 1.0);
        r.ab.pop();
        assert!(matches!(
            s.submit(r).unwrap_err(),
            AdmitError::BadPayload { .. }
        ));
        let mut r = req(1, shape, 0.0, 1.0);
        r.shape.nrhs = 0;
        assert!(matches!(
            s.submit(r).unwrap_err(),
            AdmitError::UnsupportedShape(_)
        ));
        // Clock only moves forward.
        s.advance(5.0);
        let r = req(2, shape, 1.0, 2.0);
        assert!(matches!(
            s.submit(r).unwrap_err(),
            AdmitError::NonMonotonicTime { .. }
        ));
        assert!(s.report().is_conserved());
    }

    #[test]
    fn per_request_timeout_drops_hopeless_requests() {
        let shape = ShapeKey::gbsv(16, 1, 1, 1);
        let cfg = ServerConfig {
            queue_capacity: 64,
            policy: FlushPolicy::default()
                .with_target_batch(100)
                .with_timeout_slack_s(0.0)
                .with_flush_margin_s(0.0),
        };
        let mut s = sim_server(cfg);
        s.submit(req(0, shape, 0.0, 0.5)).unwrap();
        // Drain long after the deadline: the flush starts at clock 2.0,
        // past deadline + slack, so the request times out unsolved.
        s.advance(2.0);
        // (The deadline flush already fired at t = 0.5 during advance —
        // with zero margin its start equals the deadline, which is allowed.
        // Submit a second hopeless request and drain late to hit the path.)
        s.submit(req(1, shape, 2.0, 2.1)).unwrap();
        s.advance(4.0);
        let resp = s.take_responses();
        assert_eq!(resp.len(), 2);
        // First request: flushed at its deadline instant, start == deadline,
        // allowed to run (late by margin 0 only).
        assert_eq!(resp[0].status, SolveStatus::Solved);
        // Second request: trigger fired at 2.1 during the second advance,
        // start == 2.1 > deadline? No — start == max(2.1, cpu_free) ==
        // 2.1 == deadline + 0, allowed. Timeout needs a *busy* backend, so
        // assert the non-timeout here and exercise the drop below.
        assert_eq!(resp[1].status, SolveStatus::Solved);

        // Now force a drop: drain at a clock far past the deadline.
        s.submit(req(2, shape, 5.0, 5.1)).unwrap();
        s.advance(10.0);
        // advance fired the deadline flush at 5.1 (on time). Use a fresh
        // request left only to drain:
        s.take_responses();
        s.submit(req(3, shape, 10.0, 10.05)).unwrap();
        s.clock_s = 20.0; // jump the clock directly (test-only)
        s.drain();
        let resp = s.take_responses();
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].status, SolveStatus::TimedOut);
        assert_eq!(resp[0].x, vec![1.0; shape.rhs_len()], "rhs untouched");
        assert_eq!(s.report().timed_out, 1);
        assert!(s.report().is_conserved());
    }

    #[test]
    fn singular_requests_are_flagged_not_fatal() {
        let shape = ShapeKey::gbsv(24, 2, 2, 1);
        let cfg = ServerConfig {
            queue_capacity: 64,
            policy: FlushPolicy::default().with_target_batch(4),
        };
        let mut s = sim_server(cfg);
        for i in 0..4u64 {
            let mut r = req(i, shape, i as f64 * 1e-6, 1.0);
            if i == 2 {
                let l = shape.layout().unwrap();
                let mut m = gbatch_core::BandMatrixMut {
                    layout: l,
                    data: &mut r.ab,
                };
                let (lo, hi) = l.col_rows(0);
                for row in lo..hi {
                    m.set(row, 0, 0.0);
                }
            }
            s.submit(r).unwrap();
        }
        let resp = s.take_responses();
        assert_eq!(resp.len(), 4);
        for r in &resp {
            if r.id == 2 {
                assert_eq!(r.status, SolveStatus::Singular { column: 1 });
                assert_eq!(r.x, vec![1.0; shape.rhs_len()], "rhs untouched");
            } else {
                assert_eq!(r.status, SolveStatus::Solved);
            }
        }
        let rep = s.report();
        assert_eq!(rep.singular, 1);
        assert_eq!(rep.solved, 3);
    }

    /// A backend that refuses any batch containing a poisoned id, to
    /// exercise bisect isolation.
    struct Poisoned {
        bad: u64,
    }
    impl SolveBackend for Poisoned {
        fn kind(&self) -> BackendKind {
            BackendKind::Gpu
        }
        fn solve(
            &self,
            _shape: &ShapeKey,
            reqs: &[SolveRequest],
        ) -> Result<BatchSolution, BackendError> {
            if reqs.iter().any(|r| r.id == self.bad) {
                return Err(BackendError::Fault("poisoned batch".into()));
            }
            Ok(BatchSolution {
                x: reqs.iter().map(|r| vec![r.id as f64]).collect(),
                info: vec![0; reqs.len()],
                service_s: 1e-6 * reqs.len() as f64,
            })
        }
    }

    #[test]
    fn bisect_isolates_a_poisoned_request_and_rescues_it_on_cpu() {
        let shape = ShapeKey::gbsv(4, 1, 1, 1);
        let cfg = ServerConfig {
            queue_capacity: 64,
            policy: FlushPolicy::default().with_target_batch(8),
        };
        let mut s = Server::new(
            cfg,
            Box::new(Poisoned { bad: 5 }),
            Box::new(CpuBackend::new(CpuSpec::xeon_gold_6140())),
        );
        for i in 0..8u64 {
            s.submit(req(i, shape, i as f64 * 1e-6, 1.0)).unwrap();
        }
        let resp = s.take_responses();
        assert_eq!(resp.len(), 8);
        for r in &resp {
            assert_eq!(r.status, SolveStatus::Solved);
            if r.id == 5 {
                assert_eq!(r.backend, BackendKind::Cpu, "rescued singleton");
            } else {
                assert_eq!(r.backend, BackendKind::Gpu);
                assert_eq!(r.x, vec![r.id as f64]);
            }
        }
        let rep = s.report();
        assert!(rep.bisect_retries >= 1, "at least one split happened");
        assert_eq!(rep.fallback_singletons, 1);
        assert_eq!(rep.failed, 0);
        assert!(rep.is_conserved());
    }

    /// A backend that always fails, to reach the Failed terminal status.
    struct AlwaysDown;
    impl SolveBackend for AlwaysDown {
        fn kind(&self) -> BackendKind {
            BackendKind::Gpu
        }
        fn solve(
            &self,
            _shape: &ShapeKey,
            _reqs: &[SolveRequest],
        ) -> Result<BatchSolution, BackendError> {
            Err(BackendError::Fault("down".into()))
        }
    }

    #[test]
    fn double_failure_yields_failed_status_with_rhs_back() {
        let shape = ShapeKey::gbsv(4, 1, 1, 1);
        let cfg = ServerConfig {
            queue_capacity: 8,
            policy: FlushPolicy::default().with_target_batch(2),
        };
        let mut s = Server::new(cfg, Box::new(AlwaysDown), Box::new(AlwaysDown));
        s.submit(req(0, shape, 0.0, 1.0)).unwrap();
        s.submit(req(1, shape, 1e-6, 1.0)).unwrap();
        let resp = s.take_responses();
        assert_eq!(resp.len(), 2);
        for r in &resp {
            assert_eq!(r.status, SolveStatus::Failed);
            assert_eq!(r.x, vec![1.0; shape.rhs_len()]);
        }
        assert_eq!(s.report().failed, 2);
        assert!(s.report().is_conserved());
    }

    #[test]
    fn large_systems_route_to_the_device_instead_of_spilling() {
        // A lone large-n request used to spill to the CPU (batch 1 <
        // min_gpu_batch); the SPIKE dispatch regime makes it GPU-worthy.
        let shape = ShapeKey::gbsv(4096, 2, 2, 1);
        let cfg = ServerConfig {
            queue_capacity: 8,
            policy: FlushPolicy::default()
                .with_target_batch(100)
                .with_min_gpu_batch(8),
        };
        let mut s = sim_server(cfg);
        s.submit(req(0, shape, 0.0, 0.5)).unwrap();
        s.advance(1.0);
        let resp = s.take_responses();
        assert_eq!(resp.len(), 1);
        assert_eq!(resp[0].status, SolveStatus::Solved);
        assert_eq!(
            resp[0].backend,
            BackendKind::Gpu,
            "large-n single request earns the device"
        );
        assert_eq!(s.report().spills, 0);
    }

    #[test]
    fn saturation_spills_deadline_flushes_to_cpu() {
        let shape = ShapeKey::gbsv(32, 2, 2, 1);
        let cfg = ServerConfig {
            queue_capacity: 256,
            policy: FlushPolicy::default()
                .with_target_batch(100)
                .with_min_gpu_batch(1)
                .with_spill_slack_s(0.0),
        };
        let mut s = sim_server(cfg);
        // Occupy the GPU far into the future.
        s.gpus[0].free_s = 100.0;
        for i in 0..10u64 {
            s.submit(req(i, shape, i as f64 * 1e-6, 0.01)).unwrap();
        }
        s.advance(1.0);
        let resp = s.take_responses();
        assert_eq!(resp.len(), 10);
        assert!(
            resp.iter().all(|r| r.backend == BackendKind::Cpu),
            "saturated device: flush spills even above min_gpu_batch"
        );
        assert_eq!(s.report().spills, 1);
    }
}
