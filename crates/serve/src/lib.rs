//! # gbatch-serve
//!
//! A dynamic-batching solve service over the batched band solver.
//!
//! The paper's kernels want *batches*; the paper's consumers (PELE cells,
//! XGC timesteps, SUNDIALS Newton iterations) produce *individual*
//! `(AB, B)` systems. This crate closes that gap: requests are admitted
//! one at a time, bucketed by their exact geometry ([`ShapeKey`]), and
//! each bucket is flushed into a single `dgbsv_batch` dispatch when it
//! reaches a target batch size **or** when its oldest request's deadline
//! budget is about to expire.
//!
//! The moving parts:
//!
//! - [`Server`] — the virtual-time engine: `submit` / `advance` / `drain`
//!   / `take_responses`, deterministic for a given trace regardless of
//!   host parallelism;
//! - [`BucketMap`] — shape-keyed FIFO buckets under one bounded admission
//!   capacity (backpressure via [`AdmitError::QueueFull`]);
//! - [`FlushPolicy`] — size/deadline/drain triggers, CPU spill-over rules,
//!   and launch-overhead-aware target-batch sizing;
//! - [`GpuBackend`] / [`CpuBackend`] — the simulated device group (split
//!   across GCDs) and the multicore spill path, behind [`SolveBackend`];
//! - the **fleet** — [`Server::fleet`] / [`Server::simulated_fleet`] run
//!   a heterogeneous set of device workers (composed by [`FleetSpec`]
//!   from the gpu-sim registry), each with its own busy horizon and
//!   resident state, behind a deterministic affinity-aware router;
//! - [`FactorCache`] — content-fingerprinted LU reuse: repeated operators
//!   skip `gbtrf` and flush as batched GBTRS-only launches, with an
//!   explicit [`Server::factorize`] / [`Server::submit_with`] fast path
//!   and transparent fingerprint matching on ordinary [`Server::submit`];
//! - [`ServeReport`] — serializable metrics: queue depth, batch-size
//!   histogram, flush-reason counts, latency quantiles, spill and retry
//!   counters, and cache hit/miss/eviction/amortized-cost accounting.
//!
//! ```
//! use gbatch_core::ShapeKey;
//! use gbatch_cpu::CpuSpec;
//! use gbatch_gpu_sim::multi::DeviceGroup;
//! use gbatch_gpu_sim::ParallelPolicy;
//! use gbatch_serve::{FlushPolicy, Server, ServerConfig, SolveRequest};
//!
//! let cfg = ServerConfig {
//!     queue_capacity: 1024,
//!     policy: FlushPolicy::default().with_target_batch(2),
//! };
//! let mut server = Server::simulated(
//!     DeviceGroup::mi250x_full(),
//!     CpuSpec::xeon_gold_6140(),
//!     ParallelPolicy::Serial,
//!     cfg,
//! );
//! let shape = ShapeKey::gbsv(8, 1, 1, 1);
//! for id in 0..2 {
//!     let mut ab = vec![0.0; shape.ab_len()];
//!     let l = shape.layout().unwrap();
//!     for j in 0..8 {
//!         ab[j * l.ldab + l.row_offset] = 4.0; // diagonal
//!     }
//!     server
//!         .submit(SolveRequest {
//!             id,
//!             shape,
//!             ab,
//!             rhs: vec![1.0; shape.rhs_len()],
//!             submitted_s: id as f64 * 1e-6,
//!             deadline_s: 1.0,
//!         })
//!         .unwrap();
//! }
//! let responses = server.take_responses();
//! assert_eq!(responses.len(), 2); // target batch reached => flushed
//! assert!(server.report().is_conserved());
//! ```

pub mod backend;
pub mod bucket;
pub mod cache;
pub mod metrics;
pub mod policy;
pub mod request;
pub mod server;

pub use backend::{
    BackendError, BackendKind, BatchSolution, CpuBackend, FactorOutcome, GpuBackend, RetainedLanes,
    SolveBackend,
};
pub use bucket::{Bucket, BucketMap, Bucketed};
pub use cache::{CacheConfig, CacheStats, FactorCache, FactorHandle};
pub use metrics::{DeviceReport, ServeReport};
pub use policy::{FlushPolicy, FlushReason};
pub use request::{AdmitError, SolveRequest, SolveResponse, SolveStatus};
pub use server::{FactorizeError, Server, ServerConfig};

// Re-exported so examples and tests can name the key without an extra dep.
pub use gbatch_core::ShapeKey;
// Re-exported so fleet consumers can compose a fleet without naming the
// gpu-sim crate.
pub use gbatch_gpu_sim::registry::FleetSpec;
