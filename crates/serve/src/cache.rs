//! The factor cache: content-fingerprinted LU reuse across requests.
//!
//! Timestepping traffic re-solves one operator for many right-hand
//! sides. The cache maps each operator's [`Fingerprint`] (band bytes +
//! factorization geometry + precision, right-hand-side count excluded)
//! to the [`RetainedFactor`] a previous flush produced, so later
//! requests of the same operator skip `gbtrf` entirely and flush as
//! batched GBTRS-only launches.
//!
//! Three lookup surfaces:
//!
//! - [`FactorCache::lookup`] — the admission-time probe. Counts into the
//!   hit/miss statistics (`hits + misses == lookups` always) and
//!   refreshes recency.
//! - [`FactorCache::fetch`] — the flush-time retrieval. Refreshes
//!   recency but does **not** count: the hit-rate metric reflects
//!   admission decisions, not the internal double-check a flush performs
//!   (an entry can be evicted between admission and flush — the server
//!   fails closed by re-factorizing).
//! - [`FactorCache::resolve`] — handle indirection for the explicit
//!   `Factorize` / `SolveWith` API. A stale handle (its entry was
//!   evicted) resolves to `None` and the server falls back to the
//!   ordinary solve path.
//!
//! Eviction is strict LRU under two budgets — entry count and retained
//! bytes — with recency advanced by every insert/lookup/fetch. A
//! bounded FIFO **negative cache** remembers singular fingerprints so
//! known-singular re-submissions route straight to CPU spill instead of
//! wasting a device flush (and are never cached as factors).

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use gbatch_core::{Fingerprint, RetainedFactor};

/// Opaque handle to a cached factorization, returned by `Factorize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactorHandle(u64);

impl std::fmt::Display for FactorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "factor#{}", self.0)
    }
}

/// Capacity budgets of the factor cache.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum live entries (LRU beyond it).
    pub max_entries: usize,
    /// Maximum retained payload bytes across all entries (LRU beyond it).
    pub max_bytes: usize,
    /// Maximum negatively-cached singular fingerprints (FIFO beyond it).
    pub max_negative: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 256,
            max_bytes: 64 << 20,
            max_negative: 1024,
        }
    }
}

impl CacheConfig {
    /// Builder: set the entry budget.
    #[must_use]
    pub fn with_max_entries(mut self, max_entries: usize) -> Self {
        assert!(max_entries > 0, "cache needs room for at least one entry");
        self.max_entries = max_entries;
        self
    }

    /// Builder: set the byte budget.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Builder: set the negative-cache budget.
    #[must_use]
    pub fn with_max_negative(mut self, max_negative: usize) -> Self {
        self.max_negative = max_negative;
        self
    }
}

/// Frozen cache statistics. `hits + misses == lookups` by construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Admission-time probes ([`FactorCache::lookup`] calls).
    pub lookups: u64,
    /// Probes that found a live entry.
    pub hits: u64,
    /// Probes that found nothing.
    pub misses: u64,
    /// New entries inserted (refreshes of live entries excluded).
    pub insertions: u64,
    /// Entries evicted by the LRU/byte budgets.
    pub evictions: u64,
    /// Singular fingerprints negatively cached.
    pub negative_insertions: u64,
    /// Admission-time probes answered by the negative cache.
    pub negative_hits: u64,
}

#[derive(Debug)]
struct Entry {
    handle: FactorHandle,
    factor: Arc<RetainedFactor>,
    tick: u64,
}

/// LRU cache of retained factorizations keyed by operator fingerprint.
///
/// Every collection is a `BTreeMap`/`VecDeque` so iteration, eviction
/// order, and therefore the whole serve layer stay deterministic.
#[derive(Debug)]
pub struct FactorCache {
    cfg: CacheConfig,
    entries: BTreeMap<Fingerprint, Entry>,
    /// Recency index: tick → fingerprint, oldest first.
    lru: BTreeMap<u64, Fingerprint>,
    handles: BTreeMap<FactorHandle, Fingerprint>,
    negative: BTreeMap<Fingerprint, i32>,
    negative_order: VecDeque<Fingerprint>,
    tick: u64,
    next_handle: u64,
    bytes: usize,
    stats: CacheStats,
}

impl Default for FactorCache {
    fn default() -> Self {
        FactorCache::new(CacheConfig::default())
    }
}

impl FactorCache {
    /// Empty cache under the given budgets.
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(
            cfg.max_entries > 0,
            "cache needs room for at least one entry"
        );
        FactorCache {
            cfg,
            entries: BTreeMap::new(),
            lru: BTreeMap::new(),
            handles: BTreeMap::new(),
            negative: BTreeMap::new(),
            negative_order: VecDeque::new(),
            tick: 0,
            next_handle: 0,
            bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no factorization is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Retained payload bytes across all live entries.
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Negatively-cached singular fingerprints.
    #[must_use]
    pub fn negative_len(&self) -> usize {
        self.negative.len()
    }

    /// The configured budgets.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Live fingerprints in recency order, least-recently-used first.
    #[must_use]
    pub fn lru_order(&self) -> Vec<Fingerprint> {
        self.lru.values().copied().collect()
    }

    fn touch(&mut self, fp: Fingerprint) {
        let Some(entry) = self.entries.get_mut(&fp) else {
            return;
        };
        self.lru.remove(&entry.tick);
        entry.tick = self.tick;
        self.lru.insert(self.tick, fp);
        self.tick += 1;
    }

    /// Admission-time probe: counted, recency-refreshing.
    pub fn lookup(&mut self, fp: Fingerprint) -> Option<Arc<RetainedFactor>> {
        self.stats.lookups += 1;
        if self.entries.contains_key(&fp) {
            self.stats.hits += 1;
            self.touch(fp);
            self.entries.get(&fp).map(|e| Arc::clone(&e.factor))
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Flush-time retrieval: recency-refreshing, not counted.
    pub fn fetch(&mut self, fp: Fingerprint) -> Option<Arc<RetainedFactor>> {
        if self.entries.contains_key(&fp) {
            self.touch(fp);
            self.entries.get(&fp).map(|e| Arc::clone(&e.factor))
        } else {
            None
        }
    }

    /// Whether a live entry exists, without counting or refreshing.
    #[must_use]
    pub fn contains(&self, fp: Fingerprint) -> bool {
        self.entries.contains_key(&fp)
    }

    /// The handle of a live entry, if cached.
    #[must_use]
    pub fn handle_of(&self, fp: Fingerprint) -> Option<FactorHandle> {
        self.entries.get(&fp).map(|e| e.handle)
    }

    /// Resolve a handle to its fingerprint — `None` once evicted (the
    /// fail-closed contract: stale handles fall back to re-factorization).
    #[must_use]
    pub fn resolve(&self, handle: FactorHandle) -> Option<Fingerprint> {
        self.handles.get(&handle).copied()
    }

    /// Insert (or refresh) a factorization. Returns the entry's handle —
    /// stable for as long as the entry stays live. Evicts least-recently
    /// used entries past either budget; the just-inserted entry is never
    /// evicted by its own insertion.
    pub fn insert(&mut self, fp: Fingerprint, factor: Arc<RetainedFactor>) -> FactorHandle {
        if let Some(e) = self.entries.get(&fp) {
            let handle = e.handle;
            self.touch(fp);
            return handle;
        }
        // A fingerprint that factors cannot be singular; clear any stale
        // negative record (unreachable for honest content, cheap to keep
        // consistent).
        if self.negative.remove(&fp).is_some() {
            self.negative_order.retain(|f| *f != fp);
        }
        let handle = FactorHandle(self.next_handle);
        self.next_handle += 1;
        self.bytes += factor.bytes();
        self.entries.insert(
            fp,
            Entry {
                handle,
                factor,
                tick: self.tick,
            },
        );
        self.lru.insert(self.tick, fp);
        self.tick += 1;
        self.handles.insert(handle, fp);
        self.stats.insertions += 1;
        while self.entries.len() > 1
            && (self.entries.len() > self.cfg.max_entries || self.bytes > self.cfg.max_bytes)
        {
            self.evict_lru();
        }
        handle
    }

    /// Negatively cache a singular fingerprint (`column` is the 1-based
    /// first zero-pivot column). Re-solves of it route straight to CPU
    /// spill and its factors are never retained.
    pub fn insert_negative(&mut self, fp: Fingerprint, column: i32) {
        if self.cfg.max_negative == 0 {
            return;
        }
        if self.negative.insert(fp, column).is_none() {
            self.negative_order.push_back(fp);
            self.stats.negative_insertions += 1;
            while self.negative.len() > self.cfg.max_negative {
                if let Some(old) = self.negative_order.pop_front() {
                    self.negative.remove(&old);
                }
            }
        }
    }

    /// Admission-time negative probe: counted as a negative hit when the
    /// fingerprint is a known-singular operator.
    pub fn probe_negative(&mut self, fp: Fingerprint) -> Option<i32> {
        let column = self.negative.get(&fp).copied();
        if column.is_some() {
            self.stats.negative_hits += 1;
        }
        column
    }

    fn evict_lru(&mut self) {
        let Some((&tick, &fp)) = self.lru.iter().next() else {
            return;
        };
        self.lru.remove(&tick);
        if let Some(entry) = self.entries.remove(&fp) {
            self.bytes -= entry.factor.bytes();
            self.handles.remove(&entry.handle);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::{BandLayout, FactorPayload};

    fn fp(seed: u64) -> Fingerprint {
        let mut h = gbatch_core::FingerprintHasher::new();
        h.write_u64(seed);
        h.finish()
    }

    fn factor(n: usize) -> Arc<RetainedFactor> {
        let l = BandLayout::factor(n, n, 1, 1).unwrap();
        Arc::new(RetainedFactor {
            layout: l,
            payload: FactorPayload::F64(vec![1.0; l.len()]),
            pivots: vec![0; n],
        })
    }

    #[test]
    fn lookup_counts_and_refreshes() {
        let mut c = FactorCache::new(CacheConfig::default().with_max_entries(2));
        assert!(c.lookup(fp(1)).is_none());
        let h = c.insert(fp(1), factor(4));
        assert!(c.lookup(fp(1)).is_some());
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
        assert_eq!(c.resolve(h), Some(fp(1)));
        assert_eq!(c.handle_of(fp(1)), Some(h));
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let mut c = FactorCache::new(CacheConfig::default().with_max_entries(2));
        c.insert(fp(1), factor(4));
        c.insert(fp(2), factor(4));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.fetch(fp(1)).is_some());
        let h3 = c.insert(fp(3), factor(4));
        assert_eq!(c.len(), 2);
        assert!(c.contains(fp(1)));
        assert!(!c.contains(fp(2)), "least-recently-used entry evicted");
        assert!(c.contains(fp(3)));
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.lru_order(), vec![fp(1), fp(3)]);
        // The evicted entry's handle is stale; the survivor's resolves.
        assert_eq!(c.resolve(h3), Some(fp(3)));
    }

    #[test]
    fn byte_budget_evicts_but_keeps_the_newest() {
        let one = factor(8).bytes();
        let mut c = FactorCache::new(
            CacheConfig::default()
                .with_max_entries(100)
                .with_max_bytes(one * 2),
        );
        c.insert(fp(1), factor(8));
        c.insert(fp(2), factor(8));
        c.insert(fp(3), factor(8));
        assert_eq!(c.len(), 2);
        assert!(c.bytes() <= one * 2);
        assert!(c.contains(fp(3)), "insertion never evicts itself");
        // Even a budget smaller than one entry keeps the newest entry.
        let mut tiny = FactorCache::new(CacheConfig::default().with_max_bytes(1));
        tiny.insert(fp(1), factor(8));
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn negative_cache_is_bounded_fifo() {
        let mut c = FactorCache::new(CacheConfig::default().with_max_negative(2));
        c.insert_negative(fp(1), 1);
        c.insert_negative(fp(2), 3);
        assert_eq!(c.probe_negative(fp(1)), Some(1));
        c.insert_negative(fp(3), 5);
        assert_eq!(c.negative_len(), 2);
        assert_eq!(c.probe_negative(fp(1)), None, "oldest negative dropped");
        assert_eq!(c.probe_negative(fp(3)), Some(5));
        assert_eq!(c.stats().negative_hits, 2);
        assert_eq!(c.stats().negative_insertions, 3);
    }

    #[test]
    fn stale_handles_resolve_to_none() {
        let mut c = FactorCache::new(CacheConfig::default().with_max_entries(1));
        let h1 = c.insert(fp(1), factor(4));
        let h2 = c.insert(fp(2), factor(4));
        assert_eq!(c.resolve(h1), None, "evicted handle is stale");
        assert_eq!(c.resolve(h2), Some(fp(2)));
        // Reinserting the first operator mints a fresh handle — the old
        // one stays stale forever (no ABA reuse).
        let h1b = c.insert(fp(1), factor(4));
        assert_ne!(h1, h1b);
        assert_eq!(c.resolve(h1), None);
    }

    #[test]
    fn accounting_is_conserved() {
        let mut c = FactorCache::new(CacheConfig::default().with_max_entries(3));
        for seed in 0..10u64 {
            let _ = c.lookup(fp(seed % 5));
            if seed % 2 == 0 {
                c.insert(fp(seed % 5), factor(4));
            }
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.lookups);
        assert!(c.len() <= 3);
    }
}
