//! Drive the dynamic-batching server with open-loop Poisson traffic and
//! print the serving report.
//!
//! ```text
//! cargo run --release -p gbatch-serve --example traffic_demo
//! ```

use gbatch_cpu::CpuSpec;
use gbatch_gpu_sim::multi::DeviceGroup;
use gbatch_gpu_sim::ParallelPolicy;
use gbatch_serve::{FlushPolicy, Server, ServerConfig, SolveRequest};
use gbatch_workloads::{poisson_traffic, TrafficConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 20k requests at 200 kHz over the Section-2 shape mix, 2 ms budgets,
    // one exactly singular request per 1000 to exercise lane isolation.
    let mut cfg = TrafficConfig::section2_mix(2.0e5, 2.0e-3);
    cfg.poison_every = Some(1000);
    let arrivals = poisson_traffic(&mut StdRng::seed_from_u64(42), 20_000, &cfg);

    let mut server = Server::simulated(
        DeviceGroup::mi250x_full(),
        CpuSpec::xeon_gold_6140(),
        ParallelPolicy::threads(8),
        ServerConfig {
            queue_capacity: 8192,
            policy: FlushPolicy::default()
                .with_target_batch(64)
                .with_min_gpu_batch(16),
        },
    );

    let mut rejected = 0usize;
    for a in arrivals {
        let req = SolveRequest {
            id: a.id,
            shape: a.shape,
            ab: a.ab,
            rhs: a.rhs,
            submitted_s: a.at_s,
            deadline_s: a.deadline_s,
        };
        if server.submit(req).is_err() {
            rejected += 1;
        }
    }
    server.drain();
    let responses = server.take_responses();
    let report = server.report();

    println!("responses: {}", responses.len());
    println!("rejected at admission: {rejected}");
    println!(
        "flushes: {} (size {}, deadline {}, drain {}), mean batch {:.1}",
        report.flushes(),
        report.flush_size,
        report.flush_deadline,
        report.flush_drain,
        report.mean_batch()
    );
    println!(
        "latency: p50 {:.1} us, p99 {:.1} us, max {:.1} us",
        report.p50_latency_s * 1e6,
        report.p99_latency_s * 1e6,
        report.max_latency_s * 1e6
    );
    println!(
        "gpu served {} ({:.1} ms busy), cpu served {} ({:.1} ms busy), spills {}",
        report.gpu_requests,
        report.gpu_busy_s * 1e3,
        report.cpu_requests,
        report.cpu_busy_s * 1e3,
        report.spills
    );
    println!();
    println!(
        "{}",
        serde_json::to_string_pretty(&report).expect("report serializes")
    );
    assert!(report.is_conserved(), "every admitted request was answered");
}
