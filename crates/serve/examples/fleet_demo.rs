//! Drive the adversarial fleet mix through a heterogeneous 1×H100 +
//! 4×GCD + CPU fleet and print the per-device utilization table.
//!
//! ```text
//! cargo run --release -p gbatch-serve --example fleet_demo
//! ```

use gbatch_cpu::CpuSpec;
use gbatch_gpu_sim::ParallelPolicy;
use gbatch_serve::{FleetSpec, FlushPolicy, Server, ServerConfig, SolveRequest};
use gbatch_workloads::{adversarial_traffic, AdversarialConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 20k adversarial requests: MMPP bursts at 8x the 200 kHz base rate,
    // shape churn, poison storms, interleaved f32/f64, and a rare
    // large-n SPIKE lane — the traffic the fleet router exists for.
    let cfg = AdversarialConfig::fleet_mix(2.0e5, 2.0e-3);
    let arrivals = adversarial_traffic(&mut StdRng::seed_from_u64(42), 20_000, &cfg);

    let fleet = FleetSpec::parse("h100_pcie:1,mi250x_gcd:4").expect("catalog names");
    let mut server = Server::simulated_fleet(
        &fleet,
        CpuSpec::xeon_gold_6140(),
        ParallelPolicy::threads(8),
        ServerConfig {
            queue_capacity: 8192,
            policy: FlushPolicy::default()
                .with_target_batch(64)
                .with_min_gpu_batch(16),
        },
    )
    .expect("fleet resolves");

    let mut rejected = 0usize;
    for a in arrivals {
        let req = SolveRequest {
            id: a.id,
            shape: a.shape,
            ab: a.ab,
            rhs: a.rhs,
            submitted_s: a.at_s,
            deadline_s: a.deadline_s,
        };
        if server.submit(req).is_err() {
            rejected += 1;
        }
    }
    server.drain();
    let responses = server.take_responses();
    let report = server.report();

    println!(
        "fleet: {} device workers + cpu, {} responses, {} rejected",
        server.fleet_size(),
        responses.len(),
        rejected
    );
    println!(
        "flushes: {} (size {}, deadline {}, drain {}), mean batch {:.1}, spills {}",
        report.flushes(),
        report.flush_size,
        report.flush_deadline,
        report.flush_drain,
        report.mean_batch(),
        report.spills
    );
    println!(
        "latency: p50 {:.1} us, p99 {:.1} us, max {:.1} us",
        report.p50_latency_s * 1e6,
        report.p99_latency_s * 1e6,
        report.max_latency_s * 1e6
    );
    println!();
    println!(
        "{:<16} {:>5} {:>9} {:>8} {:>11} {:>12} {:>6} {:>9}",
        "device", "kind", "requests", "flushes", "busy (ms)", "utilization", "sheds", "inflight"
    );
    for d in &report.devices {
        println!(
            "{:<16} {:>5} {:>9} {:>8} {:>11.3} {:>11.1}% {:>6} {:>9}",
            d.name,
            d.kind,
            d.requests,
            d.flushes,
            d.busy_s * 1e3,
            d.utilization * 100.0,
            d.sheds,
            d.peak_inflight
        );
    }
    println!();
    println!(
        "utilization spread (max-min over GPU workers): {:.1}%, total sheds {}",
        report.utilization_spread() * 100.0,
        report.sheds()
    );
    assert!(report.is_conserved(), "every admitted request was answered");
}
