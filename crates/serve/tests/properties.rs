//! Property tests over the serving layer's structural invariants:
//! shape-bucket conservation and FIFO order, admission backpressure,
//! bisect-retry isolation under arbitrary poison patterns, and the
//! factor cache's eviction-policy contract (budgets, LRU order, counter
//! conservation) under arbitrary lookup/insert/fetch interleavings.

use std::sync::Arc;

use gbatch_core::{
    BandLayout, FactorPayload, Fingerprint, FingerprintHasher, RetainedFactor, ShapeKey,
};
use gbatch_serve::{
    BackendError, BackendKind, BatchSolution, BucketMap, CacheConfig, FactorCache, FlushPolicy,
    Server, ServerConfig, SolveBackend, SolveRequest, SolveStatus,
};
use proptest::prelude::*;

/// Strategy: a small pool of distinct shapes (the bucket keys).
fn shape_pool() -> Vec<ShapeKey> {
    vec![
        ShapeKey::gbsv(8, 1, 1, 1),
        ShapeKey::gbsv(16, 2, 2, 1),
        ShapeKey::gbsv(16, 2, 2, 2),
        ShapeKey::gbsv(24, 3, 1, 1),
    ]
}

fn request(id: u64, shape: ShapeKey, at: f64, dl: f64) -> SolveRequest {
    SolveRequest {
        id,
        shape,
        ab: vec![0.0; shape.ab_len()],
        rhs: vec![0.0; shape.rhs_len()],
        submitted_s: at,
        deadline_s: dl,
    }
}

/// A deterministic mock backend: echoes request ids, refuses any batch
/// containing a poisoned id.
struct Mock {
    poisoned: Vec<u64>,
    kind: BackendKind,
}

impl SolveBackend for Mock {
    fn kind(&self) -> BackendKind {
        self.kind
    }
    fn solve(
        &self,
        _shape: &ShapeKey,
        reqs: &[SolveRequest],
    ) -> Result<BatchSolution, BackendError> {
        if reqs.iter().any(|r| self.poisoned.contains(&r.id)) {
            return Err(BackendError::Fault("poisoned".into()));
        }
        Ok(BatchSolution {
            x: reqs.iter().map(|r| vec![r.id as f64]).collect(),
            info: vec![0; reqs.len()],
            service_s: 1e-6 * reqs.len() as f64,
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every pushed request is taken exactly once, in FIFO order per
    /// bucket, and the global capacity is never exceeded.
    #[test]
    fn bucket_conservation_and_fifo(
        picks in proptest::collection::vec(0usize..4, 1..120),
        capacity in 1usize..96,
    ) {
        let shapes = shape_pool();
        let mut q = BucketMap::new(capacity);
        let mut admitted: Vec<(u64, ShapeKey)> = Vec::new();
        let mut bounced = 0usize;
        for (id, &p) in picks.iter().enumerate() {
            let shape = shapes[p];
            match q.push(request(id as u64, shape, id as f64, id as f64 + 1.0)) {
                Ok(depth) => {
                    prop_assert!(depth <= q.pending());
                    admitted.push((id as u64, shape));
                }
                Err(r) => {
                    prop_assert_eq!(r.id, id as u64, "bounced request intact");
                    bounced += 1;
                }
            }
            prop_assert!(q.pending() <= capacity, "capacity respected");
        }
        prop_assert_eq!(admitted.len() + bounced, picks.len());
        // Drain every bucket; ids must come back FIFO and exactly once.
        let mut drained: Vec<(u64, ShapeKey)> = Vec::new();
        for key in q.occupied_keys() {
            let reqs = q.take(&key);
            let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&ids, &sorted, "FIFO per bucket == ascending ids");
            drained.extend(reqs.iter().map(|r| (r.id, r.shape)));
        }
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.pending(), 0);
        drained.sort_by_key(|&(id, _)| id);
        admitted.sort_by_key(|&(id, _)| id);
        prop_assert_eq!(drained, admitted, "no loss, no duplication");
    }

    /// The urgency scan returns the globally smallest head-of-line
    /// deadline.
    #[test]
    fn next_deadline_is_global_minimum(
        entries in proptest::collection::vec((0usize..4, 0.0f64..100.0), 1..60),
    ) {
        let shapes = shape_pool();
        let mut q = BucketMap::new(1024);
        // Track the earliest deadline pushed into each bucket's *front*:
        // FIFO order means the first push per shape is the head.
        let mut head: std::collections::BTreeMap<ShapeKey, f64> = Default::default();
        for (id, &(p, dl)) in entries.iter().enumerate() {
            let shape = shapes[p];
            q.push(request(id as u64, shape, 0.0, dl)).unwrap();
            head.entry(shape).or_insert(dl);
        }
        let (got_dl, _) = q.next_deadline().unwrap();
        let want = head.values().fold(f64::INFINITY, |a, &b| a.min(b));
        prop_assert_eq!(got_dl, want);
    }

    /// Bisect retry: whatever subset of a flushed batch is poisoned, the
    /// server answers every request exactly once — poisoned ids land on
    /// the fallback backend, healthy ids keep their primary results.
    #[test]
    fn bisect_isolates_arbitrary_poison_patterns(
        batch in 2usize..24,
        poison_bits in proptest::collection::vec(0u8..2, 24),
    ) {
        let shape = ShapeKey::gbsv(8, 1, 1, 1);
        let poisoned: Vec<u64> = (0..batch as u64)
            .filter(|&i| poison_bits[i as usize] == 1)
            .collect();
        let cfg = ServerConfig {
            queue_capacity: 64,
            policy: FlushPolicy::default().with_target_batch(batch),
        };
        let mut server = Server::new(
            cfg,
            Box::new(Mock { poisoned: poisoned.clone(), kind: BackendKind::Gpu }),
            Box::new(Mock { poisoned: Vec::new(), kind: BackendKind::Cpu }),
        );
        for i in 0..batch as u64 {
            server
                .submit(request(i, shape, i as f64 * 1e-6, 1.0))
                .unwrap();
        }
        let resp = server.take_responses();
        prop_assert_eq!(resp.len(), batch, "every request answered");
        let mut ids: Vec<u64> = resp.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..batch as u64).collect::<Vec<_>>(), "once each");
        for r in &resp {
            prop_assert_eq!(r.status, SolveStatus::Solved);
            prop_assert_eq!(&r.x, &vec![r.id as f64], "payload routed correctly");
            if poisoned.contains(&r.id) {
                prop_assert_eq!(r.backend, BackendKind::Cpu, "poisoned -> fallback");
            } else {
                prop_assert_eq!(r.backend, BackendKind::Gpu, "healthy -> primary");
            }
        }
        let report = server.report();
        prop_assert!(report.is_conserved());
        prop_assert_eq!(report.fallback_singletons, poisoned.len() as u64);
        if poisoned.is_empty() {
            prop_assert_eq!(report.bisect_retries, 0);
        } else {
            prop_assert!(report.bisect_retries >= 1);
        }
    }
}

/// A synthetic fingerprint per integer key.
fn key_fp(seed: u64) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_u64(seed);
    h.finish()
}

/// A retained factor whose byte footprint scales with `n`.
fn sized_factor(n: usize) -> Arc<RetainedFactor> {
    let l = BandLayout::factor(n, n, 1, 1).unwrap();
    Arc::new(RetainedFactor {
        layout: l,
        payload: FactorPayload::F64(vec![1.0; l.len()]),
        pivots: vec![0; n],
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The eviction-policy contract, checked after every operation of an
    /// arbitrary lookup/insert/fetch interleaving against a shadow model:
    ///
    /// - the entry budget is never exceeded;
    /// - the byte budget is never exceeded while more than one entry is
    ///   live (a lone oversized entry is legal — insertion never evicts
    ///   itself);
    /// - the cache's recency order is exactly the model's LRU order, so
    ///   eviction always removes the least-recently-touched entry;
    /// - `hits + misses == lookups`, and evictions are counted one per
    ///   removed entry.
    #[test]
    fn cache_eviction_policy_matches_lru_model(
        max_entries in 1usize..6,
        byte_budget_entries in 1usize..6,
        ops in proptest::collection::vec((0u8..3, 0u64..8, 2usize..7), 1..160),
    ) {
        // Express the byte budget in units of a mid-sized factor so both
        // budgets bind in practice.
        let unit = sized_factor(4).bytes();
        let cfg = CacheConfig::default()
            .with_max_entries(max_entries)
            .with_max_bytes(byte_budget_entries * unit);
        let mut cache = FactorCache::new(cfg);

        // Shadow model: key order (LRU first) and per-key byte size.
        let mut order: Vec<u64> = Vec::new();
        let mut size_of: std::collections::BTreeMap<u64, usize> = Default::default();
        let (mut lookups, mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64, 0u64);

        for &(op, key, n) in &ops {
            match op {
                0 => {
                    // Counted, recency-refreshing admission probe.
                    let got = cache.lookup(key_fp(key));
                    lookups += 1;
                    if let Some(pos) = order.iter().position(|&k| k == key) {
                        hits += 1;
                        prop_assert!(got.is_some());
                        let k = order.remove(pos);
                        order.push(k);
                    } else {
                        misses += 1;
                        prop_assert!(got.is_none());
                    }
                }
                1 => {
                    // Insert: refresh if live, else admit then evict LRU
                    // past either budget (never the fresh entry itself).
                    let factor = sized_factor(n);
                    let bytes = factor.bytes();
                    cache.insert(key_fp(key), factor);
                    if let Some(pos) = order.iter().position(|&k| k == key) {
                        // Refresh keeps the original payload and size.
                        let k = order.remove(pos);
                        order.push(k);
                    } else {
                        order.push(key);
                        size_of.insert(key, bytes);
                        let total =
                            |o: &[u64], s: &std::collections::BTreeMap<u64, usize>| -> usize {
                                o.iter().map(|k| s[k]).sum()
                            };
                        while order.len() > 1
                            && (order.len() > max_entries
                                || total(&order, &size_of) > byte_budget_entries * unit)
                        {
                            let victim = order.remove(0);
                            size_of.remove(&victim);
                            evictions += 1;
                        }
                    }
                }
                _ => {
                    // Flush-time fetch: refreshes recency, not counted.
                    let got = cache.fetch(key_fp(key));
                    if let Some(pos) = order.iter().position(|&k| k == key) {
                        prop_assert!(got.is_some());
                        let k = order.remove(pos);
                        order.push(k);
                    } else {
                        prop_assert!(got.is_none());
                    }
                }
            }

            // Invariants, after every single operation.
            prop_assert!(cache.len() <= max_entries, "entry budget exceeded");
            if cache.len() > 1 {
                prop_assert!(
                    cache.bytes() <= byte_budget_entries * unit,
                    "byte budget exceeded with multiple entries"
                );
            }
            let want: Vec<Fingerprint> = order.iter().map(|&k| key_fp(k)).collect();
            prop_assert_eq!(cache.lru_order(), want, "recency order diverged");
            let expect_bytes: usize = order.iter().map(|k| size_of[k]).sum();
            prop_assert_eq!(cache.bytes(), expect_bytes);
            let s = cache.stats();
            prop_assert_eq!(s.lookups, lookups);
            prop_assert_eq!(s.hits, hits);
            prop_assert_eq!(s.misses, misses);
            prop_assert_eq!(s.hits + s.misses, s.lookups, "counter conservation");
            prop_assert_eq!(s.evictions, evictions);
        }
    }

    /// Handle lifecycle: a live entry's handle is stable across touches
    /// and refreshes; once evicted, the handle resolves to `None` forever
    /// (handles are minted from a monotonic counter, never reused).
    #[test]
    fn cache_handles_are_stable_then_dead(
        keys in proptest::collection::vec(0u64..6, 2..40),
    ) {
        let mut cache = FactorCache::new(CacheConfig::default().with_max_entries(2));
        let mut live: std::collections::BTreeMap<u64, gbatch_serve::FactorHandle> =
            Default::default();
        let mut dead: Vec<gbatch_serve::FactorHandle> = Vec::new();
        for &key in &keys {
            let handle = cache.insert(key_fp(key), sized_factor(3));
            if let Some(&prev) = live.get(&key) {
                prop_assert_eq!(handle, prev, "refresh keeps the handle");
            } else {
                live.insert(key, handle);
            }
            // Sync the model with whatever eviction just happened.
            let gone: Vec<u64> = live
                .iter()
                .filter(|(k, _)| !cache.contains(key_fp(**k)))
                .map(|(k, _)| *k)
                .collect();
            for k in gone {
                dead.push(live.remove(&k).unwrap());
            }
            for (k, h) in &live {
                prop_assert_eq!(cache.resolve(*h), Some(key_fp(*k)));
                prop_assert_eq!(cache.handle_of(key_fp(*k)), Some(*h));
            }
            for h in &dead {
                prop_assert_eq!(cache.resolve(*h), None, "stale handle stays dead");
            }
        }
    }

    /// The negative cache is a bounded FIFO: its population never exceeds
    /// the budget, and a successful insertion of the same fingerprint
    /// clears the stale negative record.
    #[test]
    fn negative_cache_is_bounded_and_cleared_by_insertion(
        max_negative in 1usize..8,
        keys in proptest::collection::vec(0u64..12, 1..60),
        promote in 0u64..12,
    ) {
        let mut cache =
            FactorCache::new(CacheConfig::default().with_max_negative(max_negative));
        for &key in &keys {
            cache.insert_negative(key_fp(key), 1);
            prop_assert!(cache.negative_len() <= max_negative);
        }
        let was_negative = cache.probe_negative(key_fp(promote)).is_some();
        cache.insert(key_fp(promote), sized_factor(3));
        prop_assert!(cache.probe_negative(key_fp(promote)).is_none(),
            "insertion clears the negative record");
        if was_negative {
            prop_assert!(cache.stats().negative_hits >= 1);
        }
    }
}
