//! Property tests over the serving layer's structural invariants:
//! shape-bucket conservation and FIFO order, admission backpressure, and
//! bisect-retry isolation under arbitrary poison patterns.

use gbatch_core::ShapeKey;
use gbatch_serve::{
    BackendError, BackendKind, BatchSolution, BucketMap, FlushPolicy, Server, ServerConfig,
    SolveBackend, SolveRequest, SolveStatus,
};
use proptest::prelude::*;

/// Strategy: a small pool of distinct shapes (the bucket keys).
fn shape_pool() -> Vec<ShapeKey> {
    vec![
        ShapeKey::gbsv(8, 1, 1, 1),
        ShapeKey::gbsv(16, 2, 2, 1),
        ShapeKey::gbsv(16, 2, 2, 2),
        ShapeKey::gbsv(24, 3, 1, 1),
    ]
}

fn request(id: u64, shape: ShapeKey, at: f64, dl: f64) -> SolveRequest {
    SolveRequest {
        id,
        shape,
        ab: vec![0.0; shape.ab_len()],
        rhs: vec![0.0; shape.rhs_len()],
        submitted_s: at,
        deadline_s: dl,
    }
}

/// A deterministic mock backend: echoes request ids, refuses any batch
/// containing a poisoned id.
struct Mock {
    poisoned: Vec<u64>,
    kind: BackendKind,
}

impl SolveBackend for Mock {
    fn kind(&self) -> BackendKind {
        self.kind
    }
    fn solve(
        &self,
        _shape: &ShapeKey,
        reqs: &[SolveRequest],
    ) -> Result<BatchSolution, BackendError> {
        if reqs.iter().any(|r| self.poisoned.contains(&r.id)) {
            return Err(BackendError::Fault("poisoned".into()));
        }
        Ok(BatchSolution {
            x: reqs.iter().map(|r| vec![r.id as f64]).collect(),
            info: vec![0; reqs.len()],
            service_s: 1e-6 * reqs.len() as f64,
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every pushed request is taken exactly once, in FIFO order per
    /// bucket, and the global capacity is never exceeded.
    #[test]
    fn bucket_conservation_and_fifo(
        picks in proptest::collection::vec(0usize..4, 1..120),
        capacity in 1usize..96,
    ) {
        let shapes = shape_pool();
        let mut q = BucketMap::new(capacity);
        let mut admitted: Vec<(u64, ShapeKey)> = Vec::new();
        let mut bounced = 0usize;
        for (id, &p) in picks.iter().enumerate() {
            let shape = shapes[p];
            match q.push(request(id as u64, shape, id as f64, id as f64 + 1.0)) {
                Ok(depth) => {
                    prop_assert!(depth <= q.pending());
                    admitted.push((id as u64, shape));
                }
                Err(r) => {
                    prop_assert_eq!(r.id, id as u64, "bounced request intact");
                    bounced += 1;
                }
            }
            prop_assert!(q.pending() <= capacity, "capacity respected");
        }
        prop_assert_eq!(admitted.len() + bounced, picks.len());
        // Drain every bucket; ids must come back FIFO and exactly once.
        let mut drained: Vec<(u64, ShapeKey)> = Vec::new();
        for key in q.occupied_keys() {
            let reqs = q.take(&key);
            let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&ids, &sorted, "FIFO per bucket == ascending ids");
            drained.extend(reqs.iter().map(|r| (r.id, r.shape)));
        }
        prop_assert!(q.is_empty());
        prop_assert_eq!(q.pending(), 0);
        drained.sort_by_key(|&(id, _)| id);
        admitted.sort_by_key(|&(id, _)| id);
        prop_assert_eq!(drained, admitted, "no loss, no duplication");
    }

    /// The urgency scan returns the globally smallest head-of-line
    /// deadline.
    #[test]
    fn next_deadline_is_global_minimum(
        entries in proptest::collection::vec((0usize..4, 0.0f64..100.0), 1..60),
    ) {
        let shapes = shape_pool();
        let mut q = BucketMap::new(1024);
        // Track the earliest deadline pushed into each bucket's *front*:
        // FIFO order means the first push per shape is the head.
        let mut head: std::collections::BTreeMap<ShapeKey, f64> = Default::default();
        for (id, &(p, dl)) in entries.iter().enumerate() {
            let shape = shapes[p];
            q.push(request(id as u64, shape, 0.0, dl)).unwrap();
            head.entry(shape).or_insert(dl);
        }
        let (got_dl, _) = q.next_deadline().unwrap();
        let want = head.values().fold(f64::INFINITY, |a, &b| a.min(b));
        prop_assert_eq!(got_dl, want);
    }

    /// Bisect retry: whatever subset of a flushed batch is poisoned, the
    /// server answers every request exactly once — poisoned ids land on
    /// the fallback backend, healthy ids keep their primary results.
    #[test]
    fn bisect_isolates_arbitrary_poison_patterns(
        batch in 2usize..24,
        poison_bits in proptest::collection::vec(0u8..2, 24),
    ) {
        let shape = ShapeKey::gbsv(8, 1, 1, 1);
        let poisoned: Vec<u64> = (0..batch as u64)
            .filter(|&i| poison_bits[i as usize] == 1)
            .collect();
        let cfg = ServerConfig {
            queue_capacity: 64,
            policy: FlushPolicy::default().with_target_batch(batch),
        };
        let mut server = Server::new(
            cfg,
            Box::new(Mock { poisoned: poisoned.clone(), kind: BackendKind::Gpu }),
            Box::new(Mock { poisoned: Vec::new(), kind: BackendKind::Cpu }),
        );
        for i in 0..batch as u64 {
            server
                .submit(request(i, shape, i as f64 * 1e-6, 1.0))
                .unwrap();
        }
        let resp = server.take_responses();
        prop_assert_eq!(resp.len(), batch, "every request answered");
        let mut ids: Vec<u64> = resp.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..batch as u64).collect::<Vec<_>>(), "once each");
        for r in &resp {
            prop_assert_eq!(r.status, SolveStatus::Solved);
            prop_assert_eq!(&r.x, &vec![r.id as f64], "payload routed correctly");
            if poisoned.contains(&r.id) {
                prop_assert_eq!(r.backend, BackendKind::Cpu, "poisoned -> fallback");
            } else {
                prop_assert_eq!(r.backend, BackendKind::Gpu, "healthy -> primary");
            }
        }
        let report = server.report();
        prop_assert!(report.is_conserved());
        prop_assert_eq!(report.fallback_singletons, poisoned.len() as u64);
        if poisoned.is_empty() {
            prop_assert_eq!(report.bisect_retries, 0);
        } else {
            prop_assert!(report.bisect_retries >= 1);
        }
    }
}
