//! Factor-cache integration tests at the server boundary: the warm
//! (GBTRS-only) fast path, the fail-closed stale-handle contract, and
//! the negative cache's routing of known-singular operators.

use gbatch_core::ShapeKey;
use gbatch_cpu::CpuSpec;
use gbatch_gpu_sim::multi::DeviceGroup;
use gbatch_gpu_sim::ParallelPolicy;
use gbatch_serve::{
    BackendKind, CacheConfig, FactorizeError, FlushPolicy, Server, ServerConfig, SolveRequest,
    SolveStatus,
};

fn shape() -> ShapeKey {
    ShapeKey::gbsv(24, 2, 2, 1)
}

/// A diagonally-dominant operator whose band bytes depend only on `seed`
/// — equal seeds mean equal fingerprints.
fn operator(seed: u64) -> Vec<f64> {
    let s = shape();
    let l = s.layout().unwrap();
    let mut ab = vec![0.0; s.ab_len()];
    let mut m = gbatch_core::BandMatrixMut {
        layout: l,
        data: &mut ab,
    };
    for j in 0..l.n {
        let (lo, hi) = l.col_rows(j);
        for i in lo..hi {
            m.set(i, j, ((i * 7 + j * 3 + seed as usize) % 5) as f64 * 0.1);
        }
        let sum: f64 = (lo..hi)
            .filter(|&i| i != j)
            .map(|i| m.get(i, j).abs())
            .sum();
        m.set(j, j, sum + 1.0 + seed as f64 * 0.01);
    }
    ab
}

/// An exactly singular operator (first column zeroed).
fn singular_operator() -> Vec<f64> {
    let s = shape();
    let l = s.layout().unwrap();
    let mut ab = operator(0);
    let mut m = gbatch_core::BandMatrixMut {
        layout: l,
        data: &mut ab,
    };
    let (lo, hi) = l.col_rows(0);
    for i in lo..hi {
        m.set(i, 0, 0.0);
    }
    ab
}

fn req(id: u64, ab: Vec<f64>, at: f64) -> SolveRequest {
    let s = shape();
    SolveRequest {
        id,
        shape: s,
        ab,
        rhs: (0..s.rhs_len()).map(|i| 1.0 + 0.125 * i as f64).collect(),
        submitted_s: at,
        deadline_s: at + 1.0,
    }
}

fn server(target_batch: usize) -> Server {
    Server::simulated(
        DeviceGroup::mi250x_full(),
        CpuSpec::xeon_gold_6140(),
        ParallelPolicy::Serial,
        ServerConfig {
            queue_capacity: 4096,
            policy: FlushPolicy::default().with_target_batch(target_batch),
        },
    )
}

#[test]
fn warm_solve_is_bitwise_identical_to_cold() {
    let mut s = server(1);
    s.submit(req(0, operator(1), 0.0)).unwrap();
    let cold = s.take_responses();
    assert_eq!(cold.len(), 1);
    assert_eq!(cold[0].status, SolveStatus::Solved);
    assert_eq!(s.cache().len(), 1, "cold flush retained the factors");

    // Same operator, same RHS, later instant: admitted warm, flushed as
    // a GBTRS-only launch — and the answer is bit-for-bit the cold one.
    s.submit(req(1, operator(1), 0.1)).unwrap();
    let warm = s.take_responses();
    assert_eq!(warm.len(), 1);
    assert_eq!(warm[0].status, SolveStatus::Solved);
    assert_eq!(warm[0].backend, BackendKind::Gpu);
    assert_eq!(warm[0].x, cold[0].x, "warm solve must be bitwise cold");

    let rep = s.report();
    assert_eq!(rep.warm_requests, 1);
    assert_eq!(rep.warm_flushes, 1);
    assert_eq!(rep.warm_fallbacks, 0);
    assert_eq!(rep.cache_hits, 1);
    assert!((rep.hit_rate() - 0.5).abs() < 1e-12, "1 hit / 2 lookups");
    assert!(rep.is_conserved());
}

#[test]
fn factorize_returns_a_stable_handle_and_submit_with_rides_warm() {
    let mut s = server(1);
    let h = s.factorize(shape(), &operator(3), 0.0).unwrap();
    // Idempotent: the cached operator returns its existing handle.
    assert_eq!(s.factorize(shape(), &operator(3), 0.1).unwrap(), h);
    assert_eq!(s.report().factorize_requests, 1, "second call was a no-op");
    assert!(
        s.report().gpu_busy_s > 0.0,
        "factorization occupied the GPU"
    );

    s.submit_with(req(0, operator(3), 0.2), h).unwrap();
    let resp = s.take_responses();
    assert_eq!(resp[0].status, SolveStatus::Solved);
    let rep = s.report();
    assert_eq!(rep.warm_requests, 1);
    assert_eq!(rep.warm_flushes, 1);
    assert_eq!(rep.stale_handles, 0);
}

#[test]
fn stale_handle_fails_closed_to_refactorization() {
    // A one-entry cache: factoring B evicts A, leaving A's handle stale.
    let mut s = server(1).with_cache(CacheConfig::default().with_max_entries(1));
    let ha = s.factorize(shape(), &operator(10), 0.0).unwrap();
    let hb = s.factorize(shape(), &operator(11), 0.1).unwrap();
    assert_ne!(ha, hb);
    assert_eq!(s.cache().len(), 1, "A evicted by B");

    // Solving with the stale handle must not panic and must not return a
    // wrong answer: the request re-factorizes through the ordinary path.
    s.submit_with(req(0, operator(10), 0.2), ha).unwrap();
    let resp = s.take_responses();
    assert_eq!(resp.len(), 1);
    assert_eq!(resp[0].status, SolveStatus::Solved);
    let rep = s.report();
    assert_eq!(rep.stale_handles, 1);
    assert_eq!(rep.warm_flushes, 0, "stale handle cannot ride warm");

    // The answer equals a fresh server's cold solve of the same request.
    let mut fresh = server(1);
    fresh.submit(req(0, operator(10), 0.0)).unwrap();
    assert_eq!(resp[0].x, fresh.take_responses()[0].x);
    assert!(rep.is_conserved());
}

#[test]
fn mismatched_handle_fails_closed_too() {
    let mut s = server(1);
    let hb = s.factorize(shape(), &operator(21), 0.0).unwrap();
    // Live handle, wrong operator: the payload's own fingerprint wins.
    s.submit_with(req(0, operator(22), 0.1), hb).unwrap();
    let resp = s.take_responses();
    assert_eq!(resp[0].status, SolveStatus::Solved);
    let rep = s.report();
    assert_eq!(rep.stale_handles, 1);
    // And the request was served through the cold path, caching the
    // *correct* operator.
    assert_eq!(s.cache().len(), 2);
}

#[test]
fn singular_operators_are_negatively_cached_and_spill_to_cpu() {
    let mut s = server(2);
    // Cold round: one singular and one healthy lane share a flush.
    s.submit(req(0, singular_operator(), 0.0)).unwrap();
    s.submit(req(1, operator(5), 1e-6)).unwrap();
    let first = s.take_responses();
    assert_eq!(first.len(), 2);
    let sing = first.iter().find(|r| r.id == 0).unwrap();
    assert_eq!(sing.status, SolveStatus::Singular { column: 1 });
    assert_eq!(
        s.cache().len(),
        1,
        "only the healthy lane's factors are retained"
    );
    assert_eq!(
        s.cache().negative_len(),
        1,
        "singular lane negatively cached"
    );

    // Re-solve of the singular operator: admission answers from the
    // negative cache and the flush routes straight to CPU spill — the
    // device never sees the known-singular operator again.
    s.submit(req(2, singular_operator(), 0.1)).unwrap();
    s.submit(req(3, singular_operator(), 0.1 + 1e-6)).unwrap();
    let second = s.take_responses();
    assert_eq!(second.len(), 2);
    for r in &second {
        assert_eq!(r.status, SolveStatus::Singular { column: 1 });
        assert_eq!(r.backend, BackendKind::Cpu, "negative tier spills");
        assert_eq!(r.x, req(r.id, singular_operator(), 0.0).rhs, "rhs back");
    }
    let rep = s.report();
    assert_eq!(rep.cache_negative_hits, 2);
    assert_eq!(s.cache().len(), 1, "singular factors never cached");
    assert!(rep.spills >= 1);
    assert!(rep.is_conserved());
}

#[test]
fn factorize_rejects_singular_operators_via_the_negative_cache() {
    let mut s = server(1);
    let err = s.factorize(shape(), &singular_operator(), 0.0).unwrap_err();
    assert_eq!(err, FactorizeError::Singular { column: 1 });
    assert_eq!(s.cache().negative_len(), 1);
    // The second attempt is answered by the negative cache without
    // touching a backend (busy time unchanged).
    let busy = s.report().gpu_busy_s + s.report().cpu_busy_s;
    let err = s.factorize(shape(), &singular_operator(), 0.1).unwrap_err();
    assert_eq!(err, FactorizeError::Singular { column: 1 });
    assert_eq!(s.report().gpu_busy_s + s.report().cpu_busy_s, busy);
}

#[test]
fn eviction_between_admission_and_flush_demotes_the_warm_bucket() {
    // Cache big enough to admit warm, then shrink pressure evicts the
    // entry before the bucket flushes (deadline flush).
    let mut s = Server::simulated(
        DeviceGroup::mi250x_full(),
        CpuSpec::xeon_gold_6140(),
        ParallelPolicy::Serial,
        ServerConfig {
            queue_capacity: 4096,
            // Target high enough that the warm bucket waits for its
            // deadline; min_gpu_batch 1 keeps the flush on the GPU.
            policy: FlushPolicy::default()
                .with_target_batch(100)
                .with_min_gpu_batch(1),
        },
    )
    .with_cache(CacheConfig::default().with_max_entries(1));

    let h = s.factorize(shape(), &operator(30), 0.0).unwrap();
    // Admit a warm request; it queues (target not reached).
    s.submit_with(req(0, operator(30), 0.1), h).unwrap();
    assert_eq!(s.report().warm_requests, 1);
    // Evict the factors while the request is still queued.
    let _ = s.factorize(shape(), &operator(31), 0.2).unwrap();
    assert_eq!(s.cache().len(), 1, "operator 30 evicted");
    // Deadline flush: the warm bucket finds its factors gone and fails
    // closed into a cold factorize-and-solve — correct answer, counted.
    s.advance(2.0);
    let resp = s.take_responses();
    assert_eq!(resp.len(), 1);
    assert_eq!(resp[0].status, SolveStatus::Solved);
    let rep = s.report();
    assert_eq!(rep.warm_fallbacks, 1);
    assert_eq!(rep.warm_flushes, 0);

    let mut fresh = server(1);
    fresh.submit(req(0, operator(30), 0.0)).unwrap();
    assert_eq!(resp[0].x, fresh.take_responses()[0].x, "bitwise cold");
    assert!(rep.is_conserved());
}

#[test]
fn warm_and_cold_buckets_of_one_shape_flush_separately() {
    let mut s = server(2);
    // Prime the cache with operator 40.
    s.submit(req(0, operator(40), 0.0)).unwrap();
    s.submit(req(1, operator(41), 1e-6)).unwrap();
    assert_eq!(s.take_responses().len(), 2);
    assert_eq!(s.cache().len(), 2);

    // One warm (repeat of 40) and one cold (fresh 42) request: same
    // ShapeKey, different tiers — neither bucket reaches the target of
    // 2, so both wait; a drain flushes them as two separate batches.
    s.submit(req(2, operator(40), 0.1)).unwrap();
    s.submit(req(3, operator(42), 0.1 + 1e-6)).unwrap();
    assert_eq!(s.ready(), 0, "tiers do not share a bucket");
    s.drain();
    let resp = s.take_responses();
    assert_eq!(resp.len(), 2);
    let rep = s.report();
    assert_eq!(rep.flush_drain, 2, "two tier-separated drain flushes");
    assert!(rep.is_conserved());
}
