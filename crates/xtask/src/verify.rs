//! `cargo xtask verify-kernels` — the static kernel-schedule verifier.
//!
//! Four passes, all driven off the same declarative models in
//! `gbatch_kernels::access_model`:
//!
//! 1. **Race proofs**: every registered family's epoch templates are
//!    proven free of inter-lane read/write and write/write overlap across
//!    the family's whole parameter envelope (Fourier–Motzkin over the
//!    lowered index expressions; `n` stays symbolic and unbounded).
//! 2. **Negative fixtures**: the two historical barrier bugs this stack
//!    shipped and fixed are re-introduced as standalone models; the
//!    verifier must reject both with concrete, replayed counterexample
//!    shapes (a silent pass here means the prover lost its teeth).
//! 3. **Shared-memory audit**: each family's symbolic byte formula is
//!    bisected into a max-feasible-`n` per device and precision, and the
//!    formula is cross-checked value-for-value against the kernel's own
//!    `*_smem_bytes` helper at and beyond the boundary.
//! 4. **Conformance**: every family's schedule is concretized and matched
//!    access-for-access against the real kernels' `HazardMode::Trace`
//!    footprints, at f32 and f64.

use std::process::ExitCode;

use gbatch_analyzer::{max_feasible_n, prove_model, Env, KernelModel, MaxN, RaceError};
use gbatch_core::layout::BandLayout;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::multi::DeviceGroup;
use gbatch_gpu_sim::DeviceSpec;
use gbatch_kernels::access_model::{fixtures, registry, Rigor};
use gbatch_kernels::conformance::run_conformance;
use gbatch_kernels::fused::fused_smem_bytes;
use gbatch_kernels::gbsv_fused::gbsv_smem_bytes;
use gbatch_kernels::gbtrs_blocked::{backward_smem_bytes, forward_smem_bytes};
use gbatch_kernels::interleaved::{factor_smem_bytes, solve_smem_bytes};
use gbatch_kernels::spike::{combine_smem_bytes, extract_smem_bytes};
use gbatch_kernels::window::window_smem_bytes;

/// Representative band parameters for the smem table (chosen inside every
/// family's envelope: `kl >= 1` for the forward solve).
const KL: usize = 2;
const KU: usize = 1;
const NB: usize = 4;
const NRHS: usize = 2;
const LANES: usize = 2;

pub fn verify_kernels(flag: Option<&str>) -> ExitCode {
    let rigor = match flag {
        Some("--quick") => Rigor::Quick,
        None => Rigor::Full,
        Some(other) => {
            eprintln!("unknown verify-kernels flag `{other}` (expected: --quick)");
            return ExitCode::FAILURE;
        }
    };
    let mut failed = false;

    println!("== race proofs ({rigor:?} envelope) ==");
    for model in registry(rigor) {
        match prove_model(&model) {
            Ok(stats) => println!(
                "  {:<18} OK  ({} groundings, {} pair systems, {} FM checks)",
                model.family, stats.groundings, stats.pair_systems, stats.fm_calls
            ),
            Err(e) => {
                failed = true;
                println!("  {:<18} FAILED", model.family);
                println!("{e}");
            }
        }
    }

    println!("== negative fixtures (must be rejected) ==");
    for fx in fixtures() {
        match prove_model(&fx) {
            Err(RaceError::Counterexample(ce)) => {
                println!("  {:<32} rejected, counterexample:", fx.family);
                println!("    {ce}");
            }
            Ok(_) => {
                failed = true;
                println!(
                    "  {:<32} WRONGLY PROVED RACE-FREE — the prover lost its teeth",
                    fx.family
                );
            }
            Err(other) => {
                failed = true;
                println!(
                    "  {:<32} rejected without a concrete counterexample: {other}",
                    fx.family
                );
            }
        }
    }

    println!("== shared-memory feasibility (kl={KL} ku={KU} nb={NB} nrhs={NRHS} lanes={LANES}) ==");
    if !smem_table() {
        failed = true;
    }

    println!("== conformance (model footprint vs HazardMode::Trace) ==");
    for (name, result) in [
        ("f64", run_conformance::<f64>(rigor)),
        ("f32", run_conformance::<f32>(rigor)),
    ] {
        match result {
            Ok(checks) => println!("  {name}: OK ({checks} block traces matched)"),
            Err(e) => {
                failed = true;
                println!("  {name}: FAILED\n    {e}");
            }
        }
    }

    if failed {
        eprintln!("verify-kernels: FAILED");
        ExitCode::FAILURE
    } else {
        println!("verify-kernels: all passes clean");
        ExitCode::SUCCESS
    }
}

fn devices() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec::h100_pcie(),
        DeviceGroup::mi250x_full().devices[0].clone(),
        DeviceSpec::test_device(),
    ]
}

/// The kernel's own byte formula for `family` at order `n`, as dispatch
/// computes it. The layout is rebuilt per `n` because `ldab`/`kv` live on
/// [`BandLayout`].
fn kernel_smem_bytes<S: Scalar>(family: &str, n: usize) -> usize {
    let l = BandLayout::factor(n, n, KL, KU).expect("representative layout");
    match family {
        "gbtrf_fused" => fused_smem_bytes::<S>(l.ldab, n),
        "gbtrf_window" => window_smem_bytes::<S>(&l, NB),
        "gbsv_fused" => gbsv_smem_bytes::<S>(&l, NRHS),
        "gbtrs_forward" => forward_smem_bytes::<S>(&l, NB, NRHS),
        "gbtrs_backward" => backward_smem_bytes::<S>(&l, NB, NRHS),
        "gbtrf_interleaved" => factor_smem_bytes::<S>(&l, LANES),
        "gbtrs_interleaved" => solve_smem_bytes::<S>(&l, NRHS, LANES),
        "spike_extract" => extract_smem_bytes::<S>(KL, KU),
        "spike_combine" => combine_smem_bytes::<S>(KL, KU, NRHS),
        "spike_residual" => 0,
        other => panic!("no kernel smem helper for family {other}"),
    }
}

fn representative_env(sbytes: usize) -> Env {
    Env::from([
        ("kl", KL as i64),
        ("ku", KU as i64),
        ("kv", (KL + KU) as i64),
        ("ldab", (2 * KL + KU + 1) as i64),
        ("nb", NB as i64),
        ("nrhs", NRHS as i64),
        ("lanes", LANES as i64),
        ("sbytes", sbytes as i64),
    ])
}

/// Check the model formula against the kernel helper at `n` (skipping
/// orders the band layout cannot represent).
fn cross_check<S: Scalar>(model: &KernelModel, env: &Env, n: i64) -> Result<(), String> {
    if n < 1 || (n as usize) <= KL.max(KU) {
        return Ok(());
    }
    let mut e = env.clone();
    e.insert("n", n);
    let model_bytes = model.smem_bytes.eval(&e);
    let kernel_bytes = kernel_smem_bytes::<S>(model.family, n as usize) as i64;
    if model_bytes != kernel_bytes {
        return Err(format!(
            "family {} at n = {n}: model formula gives {model_bytes} B, kernel helper {kernel_bytes} B",
            model.family
        ));
    }
    Ok(())
}

fn smem_table() -> bool {
    let mut ok = true;
    println!(
        "  {:<18} {:>6} {:>24} {:>24} {:>24}",
        "family", "prec", "H100-PCIe", "MI250X-GCD", "test-device"
    );
    for model in registry(Rigor::Quick) {
        for (prec, sbytes) in [("f32", 4usize), ("f64", 8usize)] {
            let env = representative_env(sbytes);
            let mut cells = Vec::new();
            for dev in devices() {
                let limit = dev.max_smem_per_block as usize;
                let max_n = max_feasible_n(&model.smem_bytes, &env, limit);
                // Cross-check the symbolic formula against the kernel's
                // own helper at the boundary (and just past it), plus a
                // small and a mid-size order.
                let mut probes = vec![4, 64];
                if let MaxN::Bounded(n) = max_n {
                    probes.extend([n, n + 1]);
                }
                for n in probes {
                    let res = match sbytes {
                        4 => cross_check::<f32>(&model, &env, n),
                        _ => cross_check::<f64>(&model, &env, n),
                    };
                    if let Err(e) = res {
                        ok = false;
                        println!("  CROSS-CHECK FAILED: {e}");
                    }
                }
                cells.push(format!("max n = {max_n}"));
            }
            println!(
                "  {:<18} {:>6} {:>24} {:>24} {:>24}",
                model.family, prec, cells[0], cells[1], cells[2]
            );
        }
    }
    ok
}
