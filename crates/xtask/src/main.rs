//! Workspace automation (`cargo xtask <command>`).
//!
//! `lint` enforces the unsafe-code policy that rustc cannot express: raw
//! slice construction (`from_raw_parts*`), unchecked indexing
//! (`get_unchecked*`), `transmute`, and `static mut` are confined to the
//! audited modules that carry the workspace's `// SAFETY:` contracts —
//! the parallel executor's pointer plumbing, the interleaved layout's
//! lane views, and the resident engine's completion plumbing. Everywhere
//! else must go through safe slices or the checked `BandLayout` accessors.
//!
//! `verify-kernels` runs the static kernel-schedule verifier end to end:
//! full-envelope race proofs for every registered kernel family, rejection
//! of the seeded historical-bug fixtures with concrete counterexamples, a
//! per-device shared-memory feasibility table cross-checked against the
//! kernels' own byte formulas, and the model-vs-trace conformance grid at
//! both precisions.

mod verify;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Modules audited for unsafe-access tokens. Everything else in the
/// workspace must not mention the forbidden tokens at all.
const WHITELIST: &[&str] = &[
    "crates/gpu-sim/src/executor.rs",
    "crates/gpu-sim/src/resident.rs",
    "crates/kernels/src/interleaved.rs",
];

/// Tokens forbidden outside the whitelist (matched on comment- and
/// string-stripped source, so prose and test fixtures don't trip it).
const FORBIDDEN: &[&str] = &["from_raw_parts", "get_unchecked", "transmute", "static mut"];

/// Source roots scanned by the lint. Vendored shims under `shims/` are
/// third-party API surface and are exempt.
const ROOTS: &[&str] = &["crates", "src", "tests", "benches", "examples"];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => lint(),
        Some("verify-kernels") => verify::verify_kernels(args.next().as_deref()),
        Some(other) => {
            eprintln!("unknown xtask command `{other}` (expected: lint | verify-kernels)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <lint | verify-kernels [--quick]>");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    for top in ROOTS {
        collect_rs_files(&root.join(top), &mut files);
    }
    files.sort();

    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        if WHITELIST.contains(&rel.as_str()) {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(path) else {
            continue;
        };
        let code = strip_comments_and_strings(&source);
        for (lineno, line) in code.lines().enumerate() {
            for token in FORBIDDEN {
                if line.contains(token) {
                    violations.push(format!("{rel}:{}: `{token}`", lineno + 1));
                }
            }
        }
    }

    if violations.is_empty() {
        println!(
            "xtask lint: OK ({} files scanned, raw-pointer use confined to {:?})",
            files.len(),
            WHITELIST
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: forbidden unsafe-access tokens outside the audited modules:");
        for v in &violations {
            eprintln!("  {v}");
        }
        eprintln!(
            "move the access into one of {WHITELIST:?} (with a `// SAFETY:` \
             contract) or use checked indexing"
        );
        ExitCode::FAILURE
    }
}

/// The lint runs from anywhere inside the workspace: walk up from the
/// manifest dir (or cwd) to the directory that has the workspace manifest.
fn workspace_root() -> PathBuf {
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir.to_path_buf();
                }
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return start,
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Replace comments and string/char literal contents with spaces, keeping
/// line structure so diagnostics stay line-accurate. Handles `//`, `/* */`
/// (nested), `"…"` with escapes, raw strings `r#"…"#`, and char literals
/// conservatively (lifetimes like `'a` are left alone).
fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                // Raw string: r"…" or r#…#"…"#…#.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < b.len() && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == b'"' {
                    out.resize(out.len() + (j + 1 - i), b' ');
                    i = j + 1;
                    'raw: while i < b.len() {
                        if b[i] == b'"' {
                            let mut k = i + 1;
                            let mut seen = 0;
                            while k < b.len() && b[k] == b'#' && seen < hashes {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                out.resize(out.len() + (k - i), b' ');
                                i = k;
                                break 'raw;
                            }
                        }
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                } else {
                    out.push(b[i]);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' && i + 1 < b.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'\'' => {
                // Char literal vs lifetime: 'x' or '\n' is a literal;
                // 'static (no closing quote within a few bytes) is not.
                if i + 2 < b.len() && b[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < b.len() && b[j] != b'\'' && j - i < 8 {
                        j += 1;
                    }
                    if j < b.len() && b[j] == b'\'' {
                        out.resize(out.len() + (j + 1 - i), b' ');
                        i = j + 1;
                        continue;
                    }
                } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                    out.extend_from_slice(b"   ");
                    i += 3;
                    continue;
                }
                out.push(b'\'');
                i += 1;
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = strip_comments_and_strings("a // from_raw_parts\nb /* get_unchecked */ c");
        assert!(!s.contains("from_raw_parts"));
        assert!(!s.contains("get_unchecked"));
        assert!(s.contains('a') && s.contains('b') && s.contains('c'));
    }

    #[test]
    fn strips_strings_but_keeps_code() {
        let s =
            strip_comments_and_strings("let x = \"from_raw_parts\"; slice.from_raw_parts(p, n);");
        assert_eq!(s.matches("from_raw_parts").count(), 1);
    }

    #[test]
    fn strips_raw_strings() {
        let s = strip_comments_and_strings("let x = r#\"get_unchecked \"# ; y");
        assert!(!s.contains("get_unchecked"));
        assert!(s.contains('y'));
    }

    #[test]
    fn preserves_line_numbers() {
        let s = strip_comments_and_strings("a\n/* x\n x */\nb");
        assert_eq!(s.lines().count(), 4);
        assert_eq!(s.lines().nth(3), Some("b"));
    }

    #[test]
    fn lifetimes_survive() {
        let s = strip_comments_and_strings("fn f<'a>(x: &'a str) {}");
        assert!(s.contains("'a"));
    }

    #[test]
    fn whitelist_names_the_audited_modules() {
        assert!(WHITELIST.contains(&"crates/gpu-sim/src/executor.rs"));
        assert!(WHITELIST.contains(&"crates/gpu-sim/src/resident.rs"));
        assert!(WHITELIST.contains(&"crates/kernels/src/interleaved.rs"));
    }

    #[test]
    fn forbidden_tokens_cover_reinterpretation_and_global_state() {
        assert!(FORBIDDEN.contains(&"transmute"));
        assert!(FORBIDDEN.contains(&"static mut"));
        assert!(ROOTS.contains(&"examples"));
    }
}
