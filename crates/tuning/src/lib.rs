//! # gbatch-tuning
//!
//! The offline tuning framework of paper §5.3: "we have conducted a
//! benchmark sweep for square matrices up to 1024, for any kl/ku in the
//! range \[0:32\]. The results of the benchmark sweep are then fed to a
//! post-processing phase that extracts the best tuning parameters for a
//! given band pattern. Separate test sweeps have been conducted for the
//! H100 GPU and the AMD MI250x GPU."
//!
//! Here the sweep evaluates the *model cost* of every `(nb, threads)`
//! candidate through `gbatch_kernels::cost` (exact traffic, worst-case
//! critical path), which makes the 33 x 33 band sweep cheap enough to run
//! in tests. Results persist as JSON ([`table::TuningTable`]) and feed the
//! dispatch layer's `WindowParams`.

pub mod sweep;
pub mod table;

pub use sweep::{sweep_band, sweep_device, SweepConfig};
pub use table::{TuneEntry, TuningTable};
