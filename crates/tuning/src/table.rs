//! Persistent tuning tables: best `(nb, threads)` per `(kl, ku)` per
//! device.

use gbatch_core::ShapeKey;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One tuned configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuneEntry {
    /// Window block size.
    pub nb: usize,
    /// Threads per matrix.
    pub threads: u32,
    /// Predicted batch-1000 time at the calibration size, milliseconds.
    pub predicted_ms: f64,
}

/// Best window parameters per band shape for one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuningTable {
    /// Device the sweep ran on.
    pub device: String,
    /// Calibration matrix size used by the sweep.
    pub calibrated_n: usize,
    /// Calibration batch size.
    pub calibrated_batch: usize,
    entries: BTreeMap<String, TuneEntry>,
}

fn key(kl: usize, ku: usize) -> String {
    format!("{kl}:{ku}")
}

impl TuningTable {
    /// Empty table for a device.
    pub fn new(device: impl Into<String>, calibrated_n: usize, calibrated_batch: usize) -> Self {
        TuningTable {
            device: device.into(),
            calibrated_n,
            calibrated_batch,
            entries: BTreeMap::new(),
        }
    }

    /// Record the winner for a band shape.
    pub fn insert(&mut self, kl: usize, ku: usize, entry: TuneEntry) {
        self.entries.insert(key(kl, ku), entry);
    }

    /// Exact lookup.
    pub fn get(&self, kl: usize, ku: usize) -> Option<TuneEntry> {
        self.entries.get(&key(kl, ku)).copied()
    }

    /// Lookup with nearest-neighbour fallback (Manhattan distance in
    /// `(kl, ku)`), used when an application asks for a band shape outside
    /// the sweep range.
    pub fn lookup(&self, kl: usize, ku: usize) -> Option<TuneEntry> {
        if let Some(e) = self.get(kl, ku) {
            return Some(e);
        }
        self.entries
            .iter()
            .min_by_key(|(k, _)| {
                let mut it = k.split(':');
                let tkl: isize = it.next().unwrap().parse().unwrap();
                let tku: isize = it.next().unwrap().parse().unwrap();
                (tkl - kl as isize).abs() + (tku - ku as isize).abs()
            })
            .map(|(_, e)| *e)
    }

    /// Lookup by the workspace-wide [`ShapeKey`] — the same key type the
    /// serving layer buckets admission on, so the tuner and the server can
    /// never disagree about which problems share a configuration. Tuning
    /// entries are swept per band shape (`kl`, `ku`); the key's `n`/`nrhs`
    /// fields do not narrow the match.
    #[must_use]
    pub fn lookup_shape(&self, key: &ShapeKey) -> Option<TuneEntry> {
        self.lookup(key.kl, key.ku)
    }

    /// Number of tuned band shapes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no shapes are tuned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("table serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TuningTable {
        let mut t = TuningTable::new("TestGPU", 512, 1000);
        t.insert(
            2,
            3,
            TuneEntry {
                nb: 8,
                threads: 32,
                predicted_ms: 0.5,
            },
        );
        t.insert(
            10,
            7,
            TuneEntry {
                nb: 16,
                threads: 64,
                predicted_ms: 1.5,
            },
        );
        t
    }

    #[test]
    fn exact_lookup() {
        let t = sample();
        assert_eq!(t.get(2, 3).unwrap().nb, 8);
        assert!(t.get(5, 5).is_none());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn nearest_fallback() {
        let t = sample();
        // (3, 3) is closer to (2, 3) than to (10, 7).
        assert_eq!(t.lookup(3, 3).unwrap().nb, 8);
        // (12, 8) is closer to (10, 7).
        assert_eq!(t.lookup(12, 8).unwrap().nb, 16);
        let empty = TuningTable::new("X", 512, 1000);
        assert!(empty.lookup(1, 1).is_none());
    }

    #[test]
    fn shape_key_lookup_matches_band_lookup() {
        let t = sample();
        let k = ShapeKey::gbsv(512, 2, 3, 1);
        assert_eq!(t.lookup_shape(&k), t.lookup(2, 3));
        // Nearest-neighbour fallback flows through too.
        let far = ShapeKey::gbsv(64, 12, 8, 4);
        assert_eq!(t.lookup_shape(&far), t.lookup(12, 8));
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let s = t.to_json();
        let back = TuningTable::from_json(&s).unwrap();
        assert_eq!(t, back);
        assert!(s.contains("TestGPU"));
    }
}
