//! The tuning sweep: evaluate every `(nb, threads)` candidate for a band
//! shape via the analytic cost model and keep the winner.

use crate::table::{TuneEntry, TuningTable};
use gbatch_core::layout::BandLayout;
use gbatch_gpu_sim::{DeviceSpec, LaunchConfig};
use gbatch_kernels::cost::{predict_gbtrs_blocked, predict_time, predict_window};
use gbatch_kernels::gbtrs_blocked::{backward_smem_bytes, forward_smem_bytes};
use gbatch_kernels::window::window_smem_bytes;

/// Sweep configuration (defaults follow the paper: square matrices sized
/// up to 1024 — the window cost is near-linear in `n`, so one calibration
/// size suffices — and `kl, ku` in `[0, 32]`).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Calibration matrix order.
    pub n: usize,
    /// Calibration batch size.
    pub batch: usize,
    /// Candidate window block sizes.
    pub nb_candidates: Vec<usize>,
    /// Candidate thread counts (filtered to >= kl + 1 and warp-rounded).
    pub thread_candidates: Vec<u32>,
    /// Maximum lower/upper bandwidth of the sweep grid (inclusive).
    pub max_band: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            n: 512,
            batch: 1000,
            nb_candidates: vec![1, 2, 4, 8, 16, 32, 64],
            thread_candidates: vec![32, 64, 128, 256],
            max_band: 32,
        }
    }
}

/// Find the best `(nb, threads)` for one band shape on one device.
/// Returns `None` when no candidate can launch (no window fits shared
/// memory).
pub fn sweep_band(dev: &DeviceSpec, cfg: &SweepConfig, kl: usize, ku: usize) -> Option<TuneEntry> {
    let l = BandLayout::factor(cfg.n, cfg.n, kl, ku).ok()?;
    let mut best: Option<TuneEntry> = None;
    for &nb in &cfg.nb_candidates {
        let smem = window_smem_bytes::<f64>(&l, nb) as u32;
        let per_block_base = predict_window::<f64>(&l, nb, 1); // threads folded below
        let _ = per_block_base;
        for &t in &cfg.thread_candidates {
            let threads = t.max((kl + 1) as u32).div_ceil(dev.warp_size) * dev.warp_size;
            if threads > dev.max_threads_per_block {
                continue;
            }
            let per_block = predict_window::<f64>(&l, nb, threads.min(dev.lds_lanes));
            let lcfg = LaunchConfig::new(threads, smem);
            let Some(time) = predict_time(dev, &lcfg, cfg.batch, &per_block) else {
                continue;
            };
            let entry = TuneEntry {
                nb,
                threads,
                predicted_ms: time.ms(),
            };
            if best
                .map(|b| entry.predicted_ms < b.predicted_ms)
                .unwrap_or(true)
            {
                best = Some(entry);
            }
        }
    }
    best
}

/// Find the best `(nb, threads)` for the blocked triangular solves of one
/// band shape and RHS count ("a more robust tuning framework" — the
/// paper's Section 9 future work: the published tuner only covers the
/// factorization).
pub fn sweep_solve_band(
    dev: &DeviceSpec,
    cfg: &SweepConfig,
    kl: usize,
    ku: usize,
    nrhs: usize,
) -> Option<TuneEntry> {
    let l = BandLayout::factor(cfg.n, cfg.n, kl, ku).ok()?;
    let mut best: Option<TuneEntry> = None;
    for &nb in &cfg.nb_candidates {
        // Both sweeps must fit; configuration is sized by the larger cache.
        let smem = forward_smem_bytes::<f64>(&l, nb, nrhs)
            .max(backward_smem_bytes::<f64>(&l, nb, nrhs)) as u32;
        for &t in &cfg.thread_candidates {
            let threads = t.max((kl + 1) as u32).div_ceil(dev.warp_size) * dev.warp_size;
            if threads > dev.max_threads_per_block {
                continue;
            }
            let per_block = predict_gbtrs_blocked::<f64>(&l, nb, nrhs, threads.min(dev.lds_lanes));
            let lcfg = LaunchConfig::new(threads, smem);
            let Some(time) = predict_time(dev, &lcfg, cfg.batch, &per_block) else {
                continue;
            };
            let entry = TuneEntry {
                nb,
                threads,
                predicted_ms: time.ms(),
            };
            if best
                .map(|b| entry.predicted_ms < b.predicted_ms)
                .unwrap_or(true)
            {
                best = Some(entry);
            }
        }
    }
    best
}

/// Run the full sweep grid for a device (the paper's separate H100 and
/// MI250x sweeps), producing a persistent tuning table.
pub fn sweep_device(dev: &DeviceSpec, cfg: &SweepConfig) -> TuningTable {
    let mut table = TuningTable::new(dev.name.clone(), cfg.n, cfg.batch);
    for kl in 0..=cfg.max_band {
        for ku in 0..=cfg.max_band {
            if let Some(e) = sweep_band(dev, cfg, kl, ku) {
                table.insert(kl, ku, e);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_finds_a_configuration_for_paper_bands() {
        let dev = DeviceSpec::h100_pcie();
        let cfg = SweepConfig::default();
        for (kl, ku) in [(2, 3), (10, 7)] {
            let e = sweep_band(&dev, &cfg, kl, ku).expect("tunable");
            assert!(e.nb >= 1 && e.threads >= (kl + 1) as u32);
            assert!(e.predicted_ms > 0.0);
        }
    }

    #[test]
    fn tuned_beats_naive_defaults() {
        let dev = DeviceSpec::mi250x_gcd();
        let cfg = SweepConfig::default();
        let (kl, ku) = (10usize, 7usize);
        let best = sweep_band(&dev, &cfg, kl, ku).unwrap();
        // Compare against the worst candidate to prove the sweep
        // discriminates.
        let l = BandLayout::factor(cfg.n, cfg.n, kl, ku).unwrap();
        let mut worst = 0.0f64;
        let dev = DeviceSpec::mi250x_gcd();
        for &nb in &cfg.nb_candidates {
            for &t in &cfg.thread_candidates {
                let threads = t.max((kl + 1) as u32);
                let per_block = predict_window::<f64>(&l, nb, threads.min(dev.lds_lanes));
                let lcfg = LaunchConfig::new(threads, window_smem_bytes::<f64>(&l, nb) as u32);
                if let Some(time) = predict_time(&dev, &lcfg, cfg.batch, &per_block) {
                    worst = worst.max(time.ms());
                }
            }
        }
        assert!(
            best.predicted_ms < worst * 0.8,
            "sweep should separate configs: best {:.3} worst {:.3}",
            best.predicted_ms,
            worst
        );
    }

    #[test]
    fn device_sweep_covers_grid() {
        // A small grid to keep the test fast.
        let dev = DeviceSpec::h100_pcie();
        let cfg = SweepConfig {
            n: 128,
            batch: 100,
            nb_candidates: vec![4, 8],
            thread_candidates: vec![32, 64],
            max_band: 4,
        };
        let table = sweep_device(&dev, &cfg);
        assert_eq!(table.len(), 25, "5 x 5 grid");
        assert!(table.get(0, 0).is_some());
        assert!(table.get(4, 4).is_some());
    }

    #[test]
    fn solve_sweep_finds_configurations() {
        let dev = DeviceSpec::h100_pcie();
        let cfg = SweepConfig::default();
        for nrhs in [1usize, 10] {
            for (kl, ku) in [(2usize, 3usize), (10, 7)] {
                let e = sweep_solve_band(&dev, &cfg, kl, ku, nrhs).expect("tunable");
                assert!(e.predicted_ms > 0.0);
                assert!(e.threads >= (kl + 1) as u32);
            }
        }
    }

    #[test]
    fn solve_sweep_prefers_smaller_cache_under_rhs_pressure() {
        // With 10 RHS on the MI250x, big nb inflates the RHS cache and
        // costs occupancy; the tuner should not pick the largest nb.
        let dev = DeviceSpec::mi250x_gcd();
        let cfg = SweepConfig::default();
        let e1 = sweep_solve_band(&dev, &cfg, 10, 7, 1).unwrap();
        let e10 = sweep_solve_band(&dev, &cfg, 10, 7, 10).unwrap();
        assert!(
            e10.predicted_ms > e1.predicted_ms,
            "10 RHS must cost more: {} vs {}",
            e10.predicted_ms,
            e1.predicted_ms
        );
    }

    #[test]
    fn per_device_tables_differ() {
        // The paper runs separate sweeps per GPU; with 3.5x less shared
        // memory the MI250x must sometimes pick different parameters, and
        // its predicted times must be slower for the large bands.
        let cfg = SweepConfig {
            n: 256,
            batch: 500,
            nb_candidates: vec![2, 8, 32],
            thread_candidates: vec![32, 128],
            max_band: 0,
        };
        let h = sweep_band(&DeviceSpec::h100_pcie(), &cfg, 24, 24).unwrap();
        let m = sweep_band(&DeviceSpec::mi250x_gcd(), &cfg, 24, 24).unwrap();
        assert!(
            m.predicted_ms > h.predicted_ms,
            "MI250x should be slower on wide bands: {} vs {}",
            m.predicted_ms,
            h.predicted_ms
        );
    }
}
