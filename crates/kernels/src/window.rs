//! Sliding-window band LU factorization (paper §5.3, Figure 4).
//!
//! Instead of caching the whole matrix, each block caches only the columns
//! the current iteration can touch: a *factor window* of `nb` columns plus
//! the widest possible *update window*, `kv + 1` more columns (`kv = kl +
//! ku`, the worst case when the pivot sits at offset `kl`). The shared
//! footprint is therefore `(nb + kv + 1) * ldab * size_of::<S>()` bytes
//! (half as large for `f32` as for `f64`) — **constant in
//! the matrix size** — which removes the fused kernel's occupancy staircase
//! and its launch failures.
//!
//! After factoring `nb` columns the kernel writes them back, shifts the
//! remaining resident columns left in shared memory, and loads the next
//! `nb` columns — all inside one kernel, avoiding both per-iteration launch
//! overhead and redundant global traffic (the paper found in-kernel
//! shifting faster than one launch per window step; the multi-launch
//! variant is kept as [`gbtrf_batch_window_relaunch`] for the ablation
//! benchmark).

use crate::step::{smem_bytes_for_cols, smem_column_step, smem_fillin_prologue, SmemBand};
use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch};
use gbatch_core::gbtf2::ColumnStepState;
use gbatch_core::layout::BandLayout;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::{
    launch, BlockContext, DeviceSpec, LaunchConfig, LaunchError, LaunchReport, ParallelPolicy,
};

/// Tunable parameters of the sliding-window kernel: the paper's two tuning
/// knobs (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowParams {
    /// Columns factored per window iteration (`nb`).
    pub nb: usize,
    /// Threads per block (per matrix); minimum `kl + 1`.
    pub threads: u32,
    /// Host scheduling of the per-matrix blocks (results are
    /// bitwise-identical for every policy).
    pub parallel: ParallelPolicy,
}

impl Default for WindowParams {
    fn default() -> Self {
        WindowParams {
            nb: 8,
            threads: 32,
            parallel: ParallelPolicy::Serial,
        }
    }
}

impl WindowParams {
    /// Reasonable untuned defaults: `nb = 8`, one warp (or enough warps to
    /// cover `kl + 1` threads).
    pub fn auto(dev: &DeviceSpec, kl: usize) -> Self {
        let min = (kl + 1) as u32;
        let warp = dev.warp_size;
        WindowParams {
            nb: 8,
            threads: min.div_ceil(warp) * warp,
            ..Default::default()
        }
    }

    /// Builder: set the host scheduling policy.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Number of columns the sliding window holds: `nb + kv + 1`.
pub fn window_cols(kl: usize, ku: usize, nb: usize) -> usize {
    nb + kl + ku + 1
}

/// Shared-memory bytes of the sliding window — constant in `n`
/// (`(nb + kv + 1) x ldab` elements of `S`).
pub fn window_smem_bytes<S: Scalar>(l: &BandLayout, nb: usize) -> usize {
    smem_bytes_for_cols::<S>(l.ldab, window_cols(l.kl, l.ku, nb).min(l.n))
}

struct Problem<'a, S> {
    ab: &'a mut [S],
    piv: &'a mut [i32],
    info: &'a mut i32,
}

fn make_problems<'a, S: Scalar>(
    a: &'a mut BandBatch<S>,
    piv: &'a mut PivotBatch,
    info: &'a mut InfoArray,
) -> Vec<Problem<'a, S>> {
    a.chunks_mut()
        .zip(piv.chunks_mut())
        .zip(info.as_mut_slice().iter_mut())
        .map(|((ab, piv), info)| Problem { ab, piv, info })
        .collect()
}

/// Load global band columns `[c0, c1)` into window-local positions starting
/// at local offset `dst_local` of `buf`.
fn load_cols<S: Scalar>(
    l: &BandLayout,
    ab: &[S],
    buf: &mut [S],
    dst_local: usize,
    c0: usize,
    c1: usize,
    ctx: &mut BlockContext,
) {
    let ldab = l.ldab;
    for (k, c) in (c0..c1).enumerate() {
        let dst = (dst_local + k) * ldab;
        buf[dst..dst + ldab].copy_from_slice(&ab[c * ldab..(c + 1) * ldab]);
    }
    let elems = (c1 - c0) * ldab;
    if let Some(t) = ctx.smem.tracker() {
        t.striped_write(dst_local * ldab, elems, ctx.threads);
    }
    ctx.gld(elems * S::BYTES);
}

/// Store window-local columns back to global band columns `[c0, c1)`.
fn store_cols<S: Scalar>(
    l: &BandLayout,
    ab: &mut [S],
    buf: &[S],
    src_local: usize,
    c0: usize,
    c1: usize,
    ctx: &mut BlockContext,
) {
    let ldab = l.ldab;
    for (k, c) in (c0..c1).enumerate() {
        let src = (src_local + k) * ldab;
        ab[c * ldab..(c + 1) * ldab].copy_from_slice(&buf[src..src + ldab]);
    }
    let elems = (c1 - c0) * ldab;
    if let Some(t) = ctx.smem.tracker() {
        t.striped_read(src_local * ldab, elems, ctx.threads);
    }
    ctx.gst(elems * S::BYTES);
}

/// The per-matrix sliding-window factorization body (shared by the
/// single-kernel and multi-launch variants via the `relaunch` flag handled
/// by the callers).
fn window_body<S: Scalar>(
    l: &BandLayout,
    nb: usize,
    p: &mut Problem<'_, S>,
    ctx: &mut BlockContext,
) {
    let ldab = l.ldab;
    let _kv = l.kv();
    let n = l.n;
    let kmin = l.m.min(l.n);
    let wcols = window_cols(l.kl, l.ku, nb).min(n);
    let wlen = wcols * ldab;

    let _off = ctx.smem.alloc_scalar(wlen, S::BYTES);
    let mut buf = vec![S::ZERO; wlen];

    // Initial fill of the window.
    let mut loaded_end = wcols.min(n);
    load_cols(l, p.ab, &mut buf, 0, 0, loaded_end, ctx);
    ctx.sync();
    {
        let mut w = SmemBand {
            data: &mut buf,
            ldab,
            col0: 0,
            width: loaded_end,
            provenance: Some(*l),
        };
        smem_fillin_prologue(l, &mut w, ctx);
    }

    let mut st = ColumnStepState::default();
    let mut j0 = 0usize;
    while j0 < kmin {
        let jb = nb.min(kmin - j0);
        {
            let mut w = SmemBand {
                data: &mut buf,
                ldab,
                col0: j0,
                width: loaded_end - j0,
                provenance: Some(*l),
            };
            for j in j0..j0 + jb {
                smem_column_step(l, &mut w, p.piv, j, &mut st, ctx);
            }
        }
        // Write the factored columns back.
        store_cols(l, p.ab, &buf, 0, j0, j0 + jb, ctx);
        ctx.sync();

        let next_j0 = j0 + jb;
        if next_j0 >= kmin {
            // Flush trailing resident columns that received updates or
            // fill-in zeroing but will not themselves be factored (the
            // wide-matrix case, n > m).
            if loaded_end > next_j0 {
                store_cols(l, p.ab, &buf, jb, next_j0, loaded_end, ctx);
            }
            break;
        }

        // Shift the remaining resident columns left by jb (in-kernel shift,
        // §5.3: cheaper than relaunching and reloading the overlap).
        let resident = loaded_end - j0;
        let keep = resident - jb;
        if let Some(t) = ctx.smem.tracker() {
            t.striped_read(jb * ldab, keep * ldab, ctx.threads);
        }
        if keep > jb {
            // Source and destination ranges overlap: each lane reads its
            // elements into registers, a barrier drains the reads, then
            // the lanes write — a single-epoch in-place shift would race.
            ctx.sync();
        }
        buf.copy_within(jb * ldab..resident * ldab, 0);
        if let Some(t) = ctx.smem.tracker() {
            t.striped_write(0, keep * ldab, ctx.threads);
        }
        ctx.smem_work(keep * ldab, 0); // in-shared shift: LDS traffic
        ctx.sync();

        // Load the next columns into the tail of the window.
        let new_end = (next_j0 + wcols).min(n);
        if new_end > loaded_end {
            load_cols(
                l,
                p.ab,
                &mut buf,
                loaded_end - next_j0,
                loaded_end,
                new_end,
                ctx,
            );
            loaded_end = new_end;
        }
        ctx.sync();
        j0 = next_j0;
    }
    *p.info = st.info;
    ctx.gst(kmin * std::mem::size_of::<i32>()); // pivot vector write-back
}

/// Batched sliding-window band LU factorization (single kernel, in-kernel
/// window shifting — the paper's preferred variant).
pub fn gbtrf_batch_window<S: Scalar>(
    dev: &DeviceSpec,
    a: &mut BandBatch<S>,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
    params: WindowParams,
) -> Result<LaunchReport, LaunchError> {
    let l = a.layout();
    assert!(params.nb > 0, "nb must be positive");
    assert_eq!(piv.batch(), a.batch());
    assert_eq!(info.len(), a.batch());
    let smem = window_smem_bytes::<S>(&l, params.nb);
    let cfg = LaunchConfig::new(params.threads.max((l.kl + 1) as u32), smem as u32)
        .with_parallel(params.parallel)
        .with_label("gbtrf_window")
        .with_precision(crate::flop_class::<S>());
    let mut problems = make_problems(a, piv, info);
    launch(dev, &cfg, &mut problems, |p, ctx| {
        window_body(&l, params.nb, p, ctx)
    })
}

/// Ablation variant: one kernel launch per window iteration, reloading the
/// whole window from global memory each time (no in-kernel shift). The
/// paper reports this is slower due to launch overhead and redundant
/// traffic; kept for the `ablation_window_shift` benchmark.
pub fn gbtrf_batch_window_relaunch<S: Scalar>(
    dev: &DeviceSpec,
    a: &mut BandBatch<S>,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
    params: WindowParams,
) -> Result<Vec<LaunchReport>, LaunchError> {
    let l = a.layout();
    assert!(params.nb > 0);
    let batch = a.batch();
    let smem = window_smem_bytes::<S>(&l, params.nb);
    let cfg = LaunchConfig::new(params.threads.max((l.kl + 1) as u32), smem as u32)
        .with_parallel(params.parallel)
        .with_label("gbtrf_window_relaunch")
        .with_precision(crate::flop_class::<S>());
    let kmin = l.m.min(l.n);
    let n_iters = kmin.div_ceil(params.nb);
    let mut reports = Vec::with_capacity(n_iters);

    // Persistent per-matrix factorization state across launches.
    let mut states = vec![ColumnStepState::default(); batch];

    let mut j0 = 0usize;
    while j0 < kmin {
        let jb = params.nb.min(kmin - j0);
        struct Iter<'a, S> {
            ab: &'a mut [S],
            piv: &'a mut [i32],
            st: &'a mut ColumnStepState,
        }
        let mut problems: Vec<Iter<'_, S>> = a
            .chunks_mut()
            .zip(piv.chunks_mut())
            .zip(states.iter_mut())
            .map(|((ab, piv), st)| Iter { ab, piv, st })
            .collect();
        let rep = launch(dev, &cfg, &mut problems, |p, ctx| {
            let ldab = l.ldab;
            let kv = l.kv();
            let wcols = window_cols(l.kl, l.ku, params.nb).min(l.n - j0);
            let wlen = wcols * ldab;
            let _off = ctx.smem.alloc_scalar(wlen, S::BYTES);
            let mut buf = vec![S::ZERO; wlen];
            let loaded_end = (j0 + wcols).min(l.n);
            load_cols(&l, p.ab, &mut buf, 0, j0, loaded_end, ctx);
            ctx.sync();
            {
                let mut w = SmemBand {
                    data: &mut buf,
                    ldab,
                    col0: j0,
                    width: loaded_end - j0,
                    provenance: Some(l),
                };
                if j0 == 0 {
                    smem_fillin_prologue(&l, &mut w, ctx);
                }
                for j in j0..j0 + jb {
                    smem_column_step(&l, &mut w, p.piv, j, p.st, ctx);
                }
            }
            // Without a persistent window, everything loaded must go back
            // (updates and fill-in zeroing may have touched any resident
            // column) — the redundant traffic the in-kernel shift avoids.
            store_cols(&l, p.ab, &buf, 0, j0, loaded_end, ctx);
            ctx.sync();
            let _ = kv;
        })?;
        reports.push(rep);
        j0 += jb;
    }
    for (id, st) in states.iter().enumerate() {
        info.set(id, st.info);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::gbtf2::gbtf2;
    use gbatch_core::gbtrs::{gbtrs, Transpose};

    fn random_batch(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
        let mut v = 0.61f64;
        BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.3 + 0.029 + id as f64 * 3e-4).fract();
                    m.set(i, j, v - 0.5);
                }
            }
        })
        .unwrap()
    }

    fn check_bitwise(n: usize, kl: usize, ku: usize, nb: usize) {
        let dev = DeviceSpec::h100_pcie();
        let batch = 4;
        let mut a = random_batch(batch, n, kl, ku);
        let expected: Vec<(Vec<f64>, Vec<i32>, i32)> = (0..batch)
            .map(|id| {
                let mut ab = a.matrix(id).data.to_vec();
                let mut p = vec![0i32; n];
                let info = gbtf2(&a.layout(), &mut ab, &mut p);
                (ab, p, info)
            })
            .collect();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let params = WindowParams {
            nb,
            threads: 32,
            ..Default::default()
        };
        let _ = gbtrf_batch_window(&dev, &mut a, &mut piv, &mut info, params).unwrap();
        for id in 0..batch {
            assert_eq!(
                piv.pivots(id),
                &expected[id].1[..],
                "pivots n={n} kl={kl} ku={ku} nb={nb}"
            );
            assert_eq!(info.get(id), expected[id].2, "info");
            assert_eq!(
                a.matrix(id).data,
                &expected[id].0[..],
                "factors n={n} kl={kl} ku={ku} nb={nb}"
            );
        }
    }

    #[test]
    fn matches_sequential_reference_bitwise() {
        for nb in [1, 2, 3, 8, 16] {
            check_bitwise(32, 2, 3, nb);
        }
        check_bitwise(48, 10, 7, 8);
        check_bitwise(17, 1, 1, 4);
        check_bitwise(9, 2, 3, 4);
        check_bitwise(40, 0, 3, 8); // no subdiagonals
        check_bitwise(40, 3, 0, 8); // no superdiagonals
        check_bitwise(33, 2, 3, 32); // nb close to n
        check_bitwise(8, 2, 3, 16); // nb > n
    }

    #[test]
    fn constant_shared_memory_in_matrix_size() {
        let l512 = BandLayout::factor(512, 512, 2, 3).unwrap();
        let l1024 = BandLayout::factor(1024, 1024, 2, 3).unwrap();
        assert_eq!(
            window_smem_bytes::<f64>(&l512, 8),
            window_smem_bytes::<f64>(&l1024, 8)
        );
        // And it is dramatically smaller than the fused footprint.
        let fused = crate::fused::fused_smem_bytes::<f64>(l1024.ldab, 1024);
        assert!(window_smem_bytes::<f64>(&l1024, 8) * 10 < fused);
    }

    #[test]
    fn factors_are_usable_for_solves() {
        let dev = DeviceSpec::mi250x_gcd();
        let n = 200;
        let (kl, ku) = (10usize, 7usize);
        let batch = 3;
        let mut a = random_batch(batch, n, kl, ku);
        let orig = a.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let _ = gbtrf_batch_window(
            &dev,
            &mut a,
            &mut piv,
            &mut info,
            WindowParams::auto(&dev, kl),
        )
        .unwrap();
        assert!(info.all_ok());
        for id in 0..batch {
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.17).sin()).collect();
            let mut b = vec![0.0; n];
            gbatch_core::blas2::gbmv(1.0, orig.matrix(id), &x_true, 0.0, &mut b);
            gbtrs(
                Transpose::No,
                &a.layout(),
                a.matrix(id).data,
                piv.pivots(id),
                &mut b,
                n,
                1,
            );
            for i in 0..n {
                assert!((b[i] - x_true[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn relaunch_variant_matches_and_costs_more_launches() {
        let dev = DeviceSpec::h100_pcie();
        let n = 64;
        let (kl, ku, nb) = (2usize, 3usize, 8usize);
        let batch = 4;
        let mut a1 = random_batch(batch, n, kl, ku);
        let mut a2 = a1.clone();
        let mut p1 = PivotBatch::new(batch, n, n);
        let mut p2 = PivotBatch::new(batch, n, n);
        let mut i1 = InfoArray::new(batch);
        let mut i2 = InfoArray::new(batch);
        let params = WindowParams {
            nb,
            threads: 32,
            ..Default::default()
        };
        let single = gbtrf_batch_window(&dev, &mut a1, &mut p1, &mut i1, params).unwrap();
        let multi = gbtrf_batch_window_relaunch(&dev, &mut a2, &mut p2, &mut i2, params).unwrap();
        // Numerics identical.
        assert_eq!(a1.data(), a2.data());
        assert_eq!(p1, p2);
        // One launch vs ceil(n / nb) launches; total modeled time larger.
        assert_eq!(multi.len(), n.div_ceil(nb));
        let multi_time: f64 = multi.iter().map(|r| r.time.secs()).sum();
        assert!(
            multi_time > single.time.secs(),
            "relaunch {multi_time} should exceed single {s}",
            s = single.time.secs()
        );
    }

    #[test]
    fn window_occupancy_beats_fused_for_large_matrices() {
        // On the MI250x the fused kernel at n = 448 (kl, ku) = (2, 3) drops
        // to 1 block/CU; the window kernel keeps much higher residency.
        let dev = DeviceSpec::mi250x_gcd();
        let n = 448;
        let batch = 100;
        let mut a = random_batch(batch, n, 2, 3);
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = gbtrf_batch_window(
            &dev,
            &mut a,
            &mut piv,
            &mut info,
            WindowParams {
                nb: 8,
                threads: 64,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            rep.occupancy.blocks_per_sm >= 8,
            "got {}",
            rep.occupancy.blocks_per_sm
        );
    }
}
