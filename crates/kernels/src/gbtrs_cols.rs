//! Column-wise batched band triangular solve — the reference GBTRS of
//! paper §6.
//!
//! The lower factor is applied by re-playing the pivots progressively on
//! the RHS: "for each column j in the lower factor, two GPU kernels perform
//! a pair of (row swap, rank-1 updates) operations on the RHS matrix". The
//! upper factor is solved with a column-wise backward kernel, one column
//! per launch. Launch overhead therefore scales with `3n` — the blocked
//! variant in [`crate::gbtrs_blocked`] exists to fix exactly that.

use gbatch_core::batch::{PivotBatch, RhsBatch};
use gbatch_core::layout::BandLayout;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::{launch, DeviceSpec, LaunchConfig, LaunchError, ParallelPolicy, SimTime};

/// Result of the multi-launch column-wise solve.
#[derive(Debug, Clone)]
pub struct ColsReport {
    /// Total modeled time over all launches.
    pub time: SimTime,
    /// Number of kernel launches issued.
    pub launches: usize,
}

/// Batched column-wise `GBTRS` (no-transpose): `factors` is the batch of
/// factored band arrays (from any of the factorization kernels), `rhs` is
/// overwritten with the solutions. `parallel` selects the host-side
/// scheduling of the per-matrix blocks inside every launch (results are
/// bitwise-identical for every policy).
pub fn gbtrs_batch_cols<S: Scalar>(
    dev: &DeviceSpec,
    l: &BandLayout,
    factors: &[S],
    piv: &PivotBatch,
    rhs: &mut RhsBatch<S>,
    parallel: ParallelPolicy,
) -> Result<ColsReport, LaunchError> {
    let n = l.n;
    assert_eq!(l.m, n, "gbtrs requires square factors");
    let batch = rhs.batch();
    assert_eq!(piv.batch(), batch);
    let stride = l.len();
    assert_eq!(factors.len(), stride * batch, "factor batch length");
    let nrhs = rhs.nrhs();
    let ldb = rhs.ldb();
    let kv = l.kv();
    let threads = ((l.kl + 1) as u32).div_ceil(dev.warp_size) * dev.warp_size;
    let cfg = LaunchConfig::new(threads, 0)
        .with_parallel(parallel)
        .with_label("gbtrs_cols")
        .with_precision(crate::flop_class::<S>());

    let mut time = SimTime::ZERO;
    let mut launches = 0usize;

    // Forward: pivots + rank-1 updates, two launches per column.
    if l.kl > 0 {
        for j in 0..n.saturating_sub(1) {
            // Launch 1: row swap on the RHS block.
            {
                let mut probs: Vec<(usize, &mut [S])> = rhs.blocks_mut().enumerate().collect();
                let rep = launch(dev, &cfg, &mut probs, |(id, b), ctx| {
                    let p = piv.pivots(*id)[j] as usize;
                    if p != j {
                        for c in 0..nrhs {
                            b.swap(c * ldb + p, c * ldb + j);
                        }
                        ctx.gld(2 * nrhs * S::BYTES);
                        ctx.gst(2 * nrhs * S::BYTES);
                    }
                    ctx.par_work(nrhs, 0);
                })?;
                time += rep.time;
                launches += 1;
            }
            // Launch 2: rank-1 update with the stored multipliers.
            {
                let lm = l.kl.min(n - 1 - j);
                let mut probs: Vec<(usize, &mut [S])> = rhs.blocks_mut().enumerate().collect();
                let rep = launch(dev, &cfg, &mut probs, |(id, b), ctx| {
                    let ab = &factors[*id * stride..(*id + 1) * stride];
                    let base = l.idx(kv, j);
                    for c in 0..nrhs {
                        let bj = b[c * ldb + j];
                        if bj == S::ZERO {
                            continue;
                        }
                        for i in 1..=lm {
                            b[c * ldb + j + i] -= ab[base + i] * bj;
                        }
                    }
                    ctx.gld((lm + nrhs * (lm + 1)) * S::BYTES);
                    ctx.gst(nrhs * lm * S::BYTES);
                    ctx.par_work(nrhs * lm, 2);
                })?;
                time += rep.time;
                launches += 1;
            }
        }
    }

    // Backward: one launch per column, right-looking column updates.
    for j in (0..n).rev() {
        let mut probs: Vec<(usize, &mut [S])> = rhs.blocks_mut().enumerate().collect();
        let rep = launch(dev, &cfg, &mut probs, |(id, b), ctx| {
            let ab = &factors[*id * stride..(*id + 1) * stride];
            let reach = kv.min(j);
            for c in 0..nrhs {
                let bj = b[c * ldb + j] / ab[l.idx(kv, j)];
                b[c * ldb + j] = bj;
                if bj != S::ZERO {
                    for i in 1..=reach {
                        b[c * ldb + j - i] -= ab[l.idx(kv - i, j)] * bj;
                    }
                }
            }
            ctx.gld((reach + 1 + nrhs * (reach + 1)) * S::BYTES);
            ctx.gst(nrhs * (reach + 1) * S::BYTES);
            ctx.par_work(nrhs * (reach + 1), 2);
        })?;
        time += rep.time;
        launches += 1;
    }

    Ok(ColsReport { time, launches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::batch::{BandBatch, InfoArray};
    use gbatch_core::gbtrs::{gbtrs, Transpose};

    fn factored_batch(
        batch: usize,
        n: usize,
        kl: usize,
        ku: usize,
    ) -> (BandBatch, BandBatch, PivotBatch) {
        let mut v = 0.91f64;
        let orig = BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 1.7 + 0.037 + id as f64 * 1e-3).fract();
                    m.set(i, j, v - 0.5 + if i == j { 1.5 } else { 0.0 });
                }
            }
        })
        .unwrap();
        let mut fac = orig.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let dev = DeviceSpec::h100_pcie();
        let _ = crate::fused::gbtrf_batch_fused(
            &dev,
            &mut fac,
            &mut piv,
            &mut info,
            crate::fused::FusedParams::auto(&dev, kl),
        )
        .unwrap();
        assert!(info.all_ok());
        (orig, fac, piv)
    }

    #[test]
    fn matches_core_gbtrs_bitwise() {
        let dev = DeviceSpec::h100_pcie();
        for (n, kl, ku, nrhs) in [(12, 2, 3, 1), (20, 10, 7, 3), (9, 1, 0, 2), (9, 0, 2, 1)] {
            let batch = 3;
            let (_orig, fac, piv) = factored_batch(batch, n, kl, ku);
            let l = fac.layout();
            let mut rhs = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
                ((id * 31 + c * 7 + i) as f64 * 0.13).sin()
            })
            .unwrap();
            let mut expect = rhs.clone();
            for id in 0..batch {
                gbtrs(
                    Transpose::No,
                    &l,
                    fac.matrix(id).data,
                    piv.pivots(id),
                    expect.block_mut(id),
                    n,
                    nrhs,
                );
            }
            gbtrs_batch_cols(&dev, &l, fac.data(), &piv, &mut rhs, ParallelPolicy::Serial).unwrap();
            assert_eq!(
                rhs.data(),
                expect.data(),
                "n={n} kl={kl} ku={ku} nrhs={nrhs}"
            );
        }
    }

    #[test]
    fn launch_count_scales_with_columns() {
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku) = (16usize, 2usize, 3usize);
        let (_o, fac, piv) = factored_batch(2, n, kl, ku);
        let mut rhs = RhsBatch::<f64>::zeros(2, n, 1).unwrap();
        let rep = gbtrs_batch_cols(
            &dev,
            &fac.layout(),
            fac.data(),
            &piv,
            &mut rhs,
            ParallelPolicy::Serial,
        )
        .unwrap();
        assert_eq!(rep.launches, 2 * (n - 1) + n);
    }
}
