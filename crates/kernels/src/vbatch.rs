//! Non-uniform batched factorization and solve — the paper's future work
//! ("support for non-uniform batches of different sizes and/or different
//! bandwidths", Section 9), built from the same sliding-window column step
//! as the uniform kernels.
//!
//! One block still owns one matrix; each block runs the window algorithm
//! against **its own** layout. The launch configuration must satisfy the
//! worst block: threads covering the largest `kl + 1`, shared memory
//! covering the largest per-matrix window — exactly how a real non-uniform
//! kernel would size its dynamic shared memory. The timing model's
//! critical path is the slowest block of a wave, which is the right
//! first-order cost for skewed batches.

use crate::step::{smem_column_step, smem_fillin_prologue, SmemBand};
use crate::window::{window_cols, window_smem_bytes, WindowParams};
use gbatch_core::batch::InfoArray;
use gbatch_core::gbtf2::ColumnStepState;
use gbatch_core::gbtrs::{gbtrs, Transpose};
use gbatch_core::layout::BandLayout;
use gbatch_core::vbatch::{VarBandBatch, VarPivots, VarRhs};
use gbatch_gpu_sim::{launch, BlockContext, DeviceSpec, LaunchConfig, LaunchError, LaunchReport};

/// Launch configuration for a non-uniform batch: worst-case threads and
/// shared memory over the batch.
pub fn vbatch_config(dev: &DeviceSpec, a: &VarBandBatch, nb: usize) -> LaunchConfig {
    let max_kl = a.max_kl();
    let threads = WindowParams::auto(dev, max_kl).threads;
    let smem = a
        .layouts()
        .iter()
        .map(|l| window_smem_bytes::<f64>(l, nb))
        .max()
        .unwrap_or(0);
    LaunchConfig::new(threads, smem as u32).with_label("gbtrf_vbatch")
}

fn window_body_var(
    l: &BandLayout,
    nb: usize,
    ab: &mut [f64],
    piv: &mut [i32],
    info: &mut i32,
    ctx: &mut BlockContext,
) {
    let ldab = l.ldab;
    let n = l.n;
    let kmin = l.m.min(n);
    let wcols = window_cols(l.kl, l.ku, nb).min(n);
    let wlen = wcols * ldab;
    let off = ctx.smem.alloc(wlen);
    let mut buf = vec![0.0f64; wlen];

    let mut loaded_end = wcols.min(n);
    for c in 0..loaded_end {
        buf[c * ldab..(c + 1) * ldab].copy_from_slice(&ab[c * ldab..(c + 1) * ldab]);
    }
    ctx.gld(loaded_end * ldab * 8);
    ctx.sync();
    {
        let mut w = SmemBand {
            data: &mut buf,
            ldab,
            col0: 0,
            width: loaded_end,
            provenance: Some(*l),
        };
        smem_fillin_prologue(l, &mut w, ctx);
    }

    let mut st = ColumnStepState::default();
    let mut j0 = 0usize;
    while j0 < kmin {
        let jb = nb.min(kmin - j0);
        {
            let mut w = SmemBand {
                data: &mut buf,
                ldab,
                col0: j0,
                width: loaded_end - j0,
                provenance: Some(*l),
            };
            for j in j0..j0 + jb {
                smem_column_step(l, &mut w, piv, j, &mut st, ctx);
            }
        }
        for (k, c) in (j0..j0 + jb).enumerate() {
            ab[c * ldab..(c + 1) * ldab].copy_from_slice(&buf[k * ldab..(k + 1) * ldab]);
        }
        ctx.gst(jb * ldab * 8);
        ctx.sync();

        let next_j0 = j0 + jb;
        if next_j0 >= kmin {
            if loaded_end > next_j0 {
                for (k, c) in (next_j0..loaded_end).enumerate() {
                    ab[c * ldab..(c + 1) * ldab]
                        .copy_from_slice(&buf[(jb + k) * ldab..(jb + k + 1) * ldab]);
                }
                ctx.gst((loaded_end - next_j0) * ldab * 8);
            }
            break;
        }
        let resident = loaded_end - j0;
        let keep = resident - jb;
        buf.copy_within(jb * ldab..resident * ldab, 0);
        ctx.smem_work(keep * ldab, 0);
        ctx.sync();
        let new_end = (next_j0 + wcols).min(n);
        if new_end > loaded_end {
            for (k, c) in (loaded_end..new_end).enumerate() {
                let dst = (loaded_end - next_j0 + k) * ldab;
                buf[dst..dst + ldab].copy_from_slice(&ab[c * ldab..(c + 1) * ldab]);
            }
            ctx.gld((new_end - loaded_end) * ldab * 8);
            loaded_end = new_end;
        }
        ctx.sync();
        j0 = next_j0;
    }
    *info = st.info;
    ctx.gst(kmin * std::mem::size_of::<i32>());
    let arena = ctx.smem.slice_mut(off, wlen);
    arena.copy_from_slice(&buf);
}

/// Non-uniform batched band LU factorization (sliding window per block).
pub fn dgbtrf_vbatch(
    dev: &DeviceSpec,
    a: &mut VarBandBatch,
    piv: &mut VarPivots,
    info: &mut InfoArray,
    nb: usize,
) -> Result<LaunchReport, LaunchError> {
    assert!(nb > 0);
    assert_eq!(info.len(), a.batch());
    let cfg = vbatch_config(dev, a, nb);
    struct Prob<'a> {
        l: BandLayout,
        ab: &'a mut [f64],
        piv: &'a mut [i32],
        info: &'a mut i32,
    }
    let mut probs: Vec<Prob<'_>> = a
        .iter_mut()
        .zip(piv.iter_mut())
        .zip(info.as_mut_slice().iter_mut())
        .map(|(((l, ab), piv), info)| Prob { l, ab, piv, info })
        .collect();
    launch(dev, &cfg, &mut probs, |p, ctx| {
        window_body_var(&p.l, nb, p.ab, p.piv, p.info, ctx)
    })
}

/// Non-uniform batched factorize-and-solve: window factorization followed
/// by an in-block triangular solve per matrix (the solve reuses the
/// sequential kernels on global memory with the RHS staged through shared
/// memory-sized chunks; for the small heterogeneous systems this targets,
/// the whole RHS fits).
pub fn dgbsv_vbatch(
    dev: &DeviceSpec,
    a: &mut VarBandBatch,
    piv: &mut VarPivots,
    rhs: &mut VarRhs,
    info: &mut InfoArray,
    nb: usize,
) -> Result<LaunchReport, LaunchError> {
    let nrhs = rhs.nrhs();
    let mut cfg = vbatch_config(dev, a, nb);
    // Extra shared space for the largest RHS block.
    let max_rhs = a
        .layouts()
        .iter()
        .map(|l| l.n * nrhs * 8)
        .max()
        .unwrap_or(0);
    cfg.smem_bytes += max_rhs as u32;
    struct Prob<'a> {
        l: BandLayout,
        ab: &'a mut [f64],
        piv: &'a mut [i32],
        b: &'a mut [f64],
        info: &'a mut i32,
    }
    let mut probs: Vec<Prob<'_>> = a
        .iter_mut()
        .zip(piv.iter_mut())
        .zip(rhs.iter_mut())
        .zip(info.as_mut_slice().iter_mut())
        .map(|((((l, ab), piv), (_, b)), info)| Prob {
            l,
            ab,
            piv,
            b,
            info,
        })
        .collect();
    launch(dev, &cfg, &mut probs, |p, ctx| {
        window_body_var(&p.l, nb, p.ab, p.piv, p.info, ctx);
        if *p.info == 0 {
            let n = p.l.n;
            // Stage the RHS through shared memory, solve, write back.
            let off = ctx.smem.alloc(n * nrhs);
            ctx.smem.slice_mut(off, n * nrhs).copy_from_slice(p.b);
            ctx.gld(n * nrhs * 8);
            gbtrs(Transpose::No, &p.l, p.ab, p.piv, p.b, n, nrhs);
            ctx.gld(p.l.len() * 8); // factors re-read by the solve
            ctx.smem_work(n * nrhs * (p.l.kv() + p.l.kl + 2), 2);
            ctx.gst(n * nrhs * 8);
            ctx.sync();
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::gbtf2::gbtf2;
    use gbatch_core::residual::backward_error;

    fn mixed_batch() -> VarBandBatch {
        let layouts = vec![
            BandLayout::factor(12, 12, 1, 1).unwrap(),
            BandLayout::factor(40, 40, 2, 3).unwrap(),
            BandLayout::factor(25, 25, 10, 7).unwrap(),
            BandLayout::factor(7, 7, 0, 2).unwrap(),
            BandLayout::factor(64, 64, 3, 0).unwrap(),
        ];
        let mut v = 0.57f64;
        VarBandBatch::from_fn(layouts, |_, m| {
            let n = m.layout.n;
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.7 + 0.031).fract();
                    m.set(i, j, v - 0.5 + if i == j { 1.5 } else { 0.0 });
                }
            }
        })
        .unwrap()
    }

    #[test]
    fn vbatch_factorization_matches_per_matrix_gbtf2() {
        let dev = DeviceSpec::h100_pcie();
        let mut a = mixed_batch();
        let orig = a.clone();
        let mut piv = VarPivots::for_batch(&a);
        let mut info = InfoArray::new(a.batch());
        let rep = dgbtrf_vbatch(&dev, &mut a, &mut piv, &mut info, 8).unwrap();
        assert!(info.all_ok());
        assert_eq!(rep.grid, 5);
        for id in 0..a.batch() {
            let l = orig.layout(id);
            let mut expect = orig.matrix(id).data.to_vec();
            let mut p = vec![0i32; l.m.min(l.n)];
            let i = gbtf2(&l, &mut expect, &mut p);
            assert_eq!(info.get(id), i);
            assert_eq!(piv.pivots(id), &p[..], "pivots of matrix {id}");
            assert_eq!(a.matrix(id).data, &expect[..], "factors of matrix {id}");
        }
    }

    #[test]
    fn vbatch_solve_end_to_end() {
        let dev = DeviceSpec::mi250x_gcd();
        let mut a = mixed_batch();
        let orig = a.clone();
        let rhs0 =
            VarRhs::from_fn(&a, 2, |id, i, c| ((id * 7 + i + c * 3) as f64 * 0.19).sin()).unwrap();
        let mut rhs = rhs0.clone();
        let mut piv = VarPivots::for_batch(&a);
        let mut info = InfoArray::new(a.batch());
        let _ = dgbsv_vbatch(&dev, &mut a, &mut piv, &mut rhs, &mut info, 8).unwrap();
        assert!(info.all_ok());
        for id in 0..a.batch() {
            let n = orig.layout(id).n;
            for c in 0..2 {
                let x = &rhs.block(id)[c * n..(c + 1) * n];
                let b = &rhs0.block(id)[c * n..(c + 1) * n];
                let berr = backward_error(orig.matrix(id), x, b);
                assert!(berr < 1e-11, "matrix {id} rhs {c}: berr {berr:.2e}");
            }
        }
    }

    #[test]
    fn config_covers_worst_matrix() {
        let dev = DeviceSpec::h100_pcie();
        let a = mixed_batch();
        let cfg = vbatch_config(&dev, &a, 8);
        // threads must cover max kl + 1 = 11 -> one warp of 32.
        assert!(cfg.threads >= 11);
        // smem must cover the widest band's window: (10,7) -> ldab 28.
        let widest = BandLayout::factor(25, 25, 10, 7).unwrap();
        assert!(cfg.smem_bytes as usize >= window_smem_bytes::<f64>(&widest, 8));
    }

    #[test]
    fn skewed_sizes_price_by_the_slowest_block() {
        // A batch with one big matrix should cost at least as much as the
        // big matrix alone.
        let dev = DeviceSpec::h100_pcie();
        let make = |layouts: Vec<BandLayout>| -> f64 {
            let mut v = 0.41f64;
            let mut a = VarBandBatch::from_fn(layouts, |_, m| {
                let n = m.layout.n;
                for j in 0..n {
                    let (s, e) = m.layout.col_rows(j);
                    for i in s..e {
                        v = (v * 1.9 + 0.077).fract();
                        m.set(i, j, v - 0.5 + if i == j { 2.0 } else { 0.0 });
                    }
                }
            })
            .unwrap();
            let mut piv = VarPivots::for_batch(&a);
            let mut info = InfoArray::new(a.batch());
            dgbtrf_vbatch(&dev, &mut a, &mut piv, &mut info, 8)
                .unwrap()
                .time
                .secs()
        };
        let big = BandLayout::factor(512, 512, 2, 3).unwrap();
        let small = BandLayout::factor(16, 16, 2, 3).unwrap();
        let t_big_alone = make(vec![big]);
        let t_mixed = make(vec![small, big, small, small]);
        assert!(t_mixed >= t_big_alone * 0.95, "{t_mixed} vs {t_big_alone}");
    }
}
