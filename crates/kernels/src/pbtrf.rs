//! Batched SPD band Cholesky kernels — the natural extension of the
//! paper's design space for the symmetric positive definite systems of
//! §2.2 (XGC's elliptic collision operator).
//!
//! Cholesky needs no pivoting: no fill-in rows (`kd + 1` band rows instead
//! of `2*kl + ku + 1`), no row swaps, no `ju` bookkeeping — so both the
//! shared-memory footprint and the per-column critical path are roughly
//! half of the LU kernels'. The same two designs are provided:
//!
//! - [`pbtrf_batch_fused`] — whole matrix in shared memory;
//! - [`pbtrf_batch_window`] — sliding window of `nb + kd` columns
//!   (a step's rank-1 update reaches only `kd` columns ahead);
//! - [`pbsv_batch_fused`] — factor+solve in one kernel, like §7's GBSV.

use gbatch_core::batch::InfoArray;
use gbatch_core::pb::PbLayout;
use gbatch_gpu_sim::{launch, BlockContext, DeviceSpec, LaunchConfig, LaunchError, LaunchReport};

/// A uniform batch of SPD band matrices (lower storage).
#[derive(Debug, Clone, PartialEq)]
pub struct PbBatch {
    layout: PbLayout,
    batch: usize,
    data: Vec<f64>,
}

impl PbBatch {
    /// Build from a closure writing each matrix's lower band
    /// (`set(i, j, v)` with `j <= i <= j + kd`).
    pub fn from_fn(
        batch: usize,
        n: usize,
        kd: usize,
        mut fill: impl FnMut(usize, &PbLayout, &mut [f64]),
    ) -> Self {
        let layout = PbLayout::new(n, kd);
        let mut data = vec![0.0; layout.len() * batch];
        for (id, chunk) in data.chunks_mut(layout.len()).enumerate() {
            fill(id, &layout, chunk);
        }
        PbBatch {
            layout,
            batch,
            data,
        }
    }

    /// Shared layout.
    pub fn layout(&self) -> PbLayout {
        self.layout
    }

    /// Number of matrices.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Band array of matrix `id`.
    pub fn matrix(&self, id: usize) -> &[f64] {
        let s = self.layout.len();
        &self.data[id * s..(id + 1) * s]
    }

    /// Mutable per-matrix chunks.
    pub fn chunks_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        let s = self.layout.len();
        self.data.chunks_mut(s)
    }

    /// Whole storage.
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

/// Shared bytes for the fused Cholesky (whole matrix).
pub fn pb_fused_smem_bytes(l: &PbLayout) -> usize {
    l.len() * 8
}

fn chol_column_steps(
    l: &PbLayout,
    buf: &mut [f64],
    col0: usize,
    j_range: std::ops::Range<usize>,
    info: &mut i32,
    ctx: &mut BlockContext,
) {
    let (n, kd, ldab) = (l.n, l.kd, l.ldab);
    for j in j_range {
        if *info != 0 {
            break;
        }
        let base = (j - col0) * ldab;
        let ajj = buf[base];
        ctx.smem_trip(); // read + sqrt of the pivot, broadcast
        if ajj <= 0.0 {
            *info = (j + 1) as i32;
            break;
        }
        let ajj = ajj.sqrt();
        buf[base] = ajj;
        let kn = kd.min(n - 1 - j);
        if kn > 0 {
            for k in 1..=kn {
                buf[base + k] /= ajj;
            }
            ctx.smem_work(kn, 1);
            for c in 1..=kn {
                let xc = buf[base + c];
                if xc == 0.0 {
                    continue;
                }
                let col = (j + c - col0) * ldab;
                for r in c..=kn {
                    buf[col + (r - c)] -= buf[base + r] * xc;
                }
            }
            ctx.smem_work(kn * (kn + 1) / 2, 2);
            ctx.sync();
        }
    }
}

/// Batched fully fused band Cholesky. Numerically identical to
/// [`gbatch_core::pb::pbtf2`] per matrix.
pub fn pbtrf_batch_fused(
    dev: &DeviceSpec,
    a: &mut PbBatch,
    info: &mut InfoArray,
    threads: u32,
) -> Result<LaunchReport, LaunchError> {
    let l = a.layout();
    assert_eq!(info.len(), a.batch());
    let cfg = LaunchConfig::new(
        threads.max((l.kd + 1) as u32),
        pb_fused_smem_bytes(&l) as u32,
    )
    .with_label("pbtrf_fused");
    struct Prob<'a> {
        ab: &'a mut [f64],
        info: &'a mut i32,
    }
    let mut probs: Vec<Prob<'_>> = a
        .chunks_mut()
        .zip(info.as_mut_slice().iter_mut())
        .map(|(ab, info)| Prob { ab, info })
        .collect();
    launch(dev, &cfg, &mut probs, |p, ctx| {
        let len = l.len();
        let off = ctx.smem.alloc(len);
        let mut buf = p.ab.to_vec();
        ctx.gld(len * 8);
        ctx.sync();
        let mut infoc = 0i32;
        chol_column_steps(&l, &mut buf, 0, 0..l.n, &mut infoc, ctx);
        *p.info = infoc;
        p.ab.copy_from_slice(&buf);
        ctx.gst(len * 8);
        ctx.sync();
        ctx.smem.slice_mut(off, len).copy_from_slice(&buf);
    })
}

/// Shared bytes for the sliding-window Cholesky: `nb + kd` columns of
/// `kd + 1` rows — constant in `n`.
pub fn pb_window_smem_bytes(l: &PbLayout, nb: usize) -> usize {
    (nb + l.kd).min(l.n) * l.ldab * 8
}

/// Batched sliding-window band Cholesky.
pub fn pbtrf_batch_window(
    dev: &DeviceSpec,
    a: &mut PbBatch,
    info: &mut InfoArray,
    nb: usize,
    threads: u32,
) -> Result<LaunchReport, LaunchError> {
    let l = a.layout();
    assert!(nb > 0);
    assert_eq!(info.len(), a.batch());
    let (n, kd, ldab) = (l.n, l.kd, l.ldab);
    let wcols = (nb + kd).min(n);
    let cfg = LaunchConfig::new(
        threads.max((kd + 1) as u32),
        pb_window_smem_bytes(&l, nb) as u32,
    )
    .with_label("pbtrf_window");
    struct Prob<'a> {
        ab: &'a mut [f64],
        info: &'a mut i32,
    }
    let mut probs: Vec<Prob<'_>> = a
        .chunks_mut()
        .zip(info.as_mut_slice().iter_mut())
        .map(|(ab, info)| Prob { ab, info })
        .collect();
    launch(dev, &cfg, &mut probs, |p, ctx| {
        let wlen = wcols * ldab;
        let off = ctx.smem.alloc(wlen);
        let mut buf = vec![0.0; wlen];
        let mut loaded_end = wcols.min(n);
        buf[..loaded_end * ldab].copy_from_slice(&p.ab[..loaded_end * ldab]);
        ctx.gld(loaded_end * ldab * 8);
        ctx.sync();
        let mut infoc = 0i32;
        let mut j0 = 0usize;
        while j0 < n && infoc == 0 {
            let jb = nb.min(n - j0);
            chol_column_steps(&l, &mut buf, j0, j0..j0 + jb, &mut infoc, ctx);
            p.ab[j0 * ldab..(j0 + jb) * ldab].copy_from_slice(&buf[..jb * ldab]);
            ctx.gst(jb * ldab * 8);
            ctx.sync();
            let next_j0 = j0 + jb;
            if next_j0 >= n {
                break;
            }
            let resident = loaded_end - j0;
            let keep = resident - jb;
            buf.copy_within(jb * ldab..resident * ldab, 0);
            ctx.smem_work(keep * ldab, 0);
            let new_end = (next_j0 + wcols).min(n);
            if new_end > loaded_end {
                let dst = (loaded_end - next_j0) * ldab;
                buf[dst..dst + (new_end - loaded_end) * ldab]
                    .copy_from_slice(&p.ab[loaded_end * ldab..new_end * ldab]);
                ctx.gld((new_end - loaded_end) * ldab * 8);
                loaded_end = new_end;
            }
            ctx.sync();
            j0 = next_j0;
        }
        *p.info = infoc;
        ctx.smem.slice_mut(off, wlen).copy_from_slice(&buf);
    })
}

/// Batched fused Cholesky factor-and-solve (`PBSV`), one RHS block per
/// matrix held alongside the factor in shared memory.
pub fn pbsv_batch_fused(
    dev: &DeviceSpec,
    a: &mut PbBatch,
    rhs: &mut [f64],
    nrhs: usize,
    info: &mut InfoArray,
    threads: u32,
) -> Result<LaunchReport, LaunchError> {
    let l = a.layout();
    let n = l.n;
    let batch = a.batch();
    assert_eq!(rhs.len(), batch * n * nrhs);
    assert_eq!(info.len(), batch);
    let smem = pb_fused_smem_bytes(&l) + n * nrhs * 8;
    let cfg =
        LaunchConfig::new(threads.max((l.kd + 1) as u32), smem as u32).with_label("pbsv_fused");
    struct Prob<'a> {
        ab: &'a mut [f64],
        b: &'a mut [f64],
        info: &'a mut i32,
    }
    let mut probs: Vec<Prob<'_>> = a
        .chunks_mut()
        .zip(rhs.chunks_mut(n * nrhs))
        .zip(info.as_mut_slice().iter_mut())
        .map(|((ab, b), info)| Prob { ab, b, info })
        .collect();
    launch(dev, &cfg, &mut probs, |p, ctx| {
        let len = l.len();
        let a_off = ctx.smem.alloc(len);
        let b_off = ctx.smem.alloc(n * nrhs);
        let mut buf = p.ab.to_vec();
        ctx.gld((len + n * nrhs) * 8);
        ctx.sync();
        let mut infoc = 0i32;
        chol_column_steps(&l, &mut buf, 0, 0..n, &mut infoc, ctx);
        *p.info = infoc;
        if infoc == 0 {
            gbatch_core::pb::pbtrs(&l, &buf, p.b, n, nrhs);
            ctx.smem_work(2 * n * (l.kd + 1) * nrhs, 2);
            ctx.seq_cycles(2.0 * n as f64);
            ctx.sync();
        }
        p.ab.copy_from_slice(&buf);
        ctx.gst((len + n * nrhs) * 8);
        ctx.sync();
        ctx.smem.slice_mut(a_off, len).copy_from_slice(&buf);
        let _ = b_off;
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::pb::{pbmv, pbtf2};

    fn spd_batch(batch: usize, n: usize, kd: usize) -> PbBatch {
        let mut v = 0.61f64;
        PbBatch::from_fn(batch, n, kd, |id, l, ab| {
            for j in 0..n {
                let kn = kd.min(n - 1 - j);
                let mut sum = 0.0;
                for k in 1..=kn {
                    v = (v * 2.7 + 0.083 + id as f64 * 1e-4).fract();
                    let w = v - 0.5;
                    ab[l.idx(j + k, j)] = w;
                    sum += w.abs();
                }
                ab[l.idx(j, j)] = 2.0 * (sum + 1.0) + kd as f64;
            }
        })
    }

    #[test]
    fn fused_and_window_match_sequential_bitwise() {
        let dev = DeviceSpec::h100_pcie();
        for (n, kd, nb) in [(24usize, 3usize, 4usize), (40, 9, 8), (9, 1, 2), (16, 0, 4)] {
            let a0 = spd_batch(3, n, kd);
            let expected: Vec<(Vec<f64>, i32)> = (0..3)
                .map(|id| {
                    let mut ab = a0.matrix(id).to_vec();
                    let i = pbtf2(&a0.layout(), &mut ab);
                    (ab, i)
                })
                .collect();
            let mut a1 = a0.clone();
            let mut i1 = InfoArray::new(3);
            let _ = pbtrf_batch_fused(&dev, &mut a1, &mut i1, 32).unwrap();
            let mut a2 = a0.clone();
            let mut i2 = InfoArray::new(3);
            let _ = pbtrf_batch_window(&dev, &mut a2, &mut i2, nb, 32).unwrap();
            for id in 0..3 {
                assert_eq!(i1.get(id), expected[id].1);
                assert_eq!(i2.get(id), expected[id].1);
                assert_eq!(a1.matrix(id), &expected[id].0[..], "fused n={n} kd={kd}");
                assert_eq!(
                    a2.matrix(id),
                    &expected[id].0[..],
                    "window n={n} kd={kd} nb={nb}"
                );
            }
        }
    }

    #[test]
    fn pbsv_solves_batch() {
        let dev = DeviceSpec::mi250x_gcd();
        let (batch, n, kd, nrhs) = (8usize, 32usize, 4usize, 2usize);
        let a0 = spd_batch(batch, n, kd);
        let mut xs = vec![0.0; batch * n * nrhs];
        for (k, v) in xs.iter_mut().enumerate() {
            *v = ((k * 3 % 17) as f64) - 8.0;
        }
        let mut rhs = vec![0.0; batch * n * nrhs];
        for id in 0..batch {
            for c in 0..nrhs {
                let x = &xs[(id * nrhs + c) * n..(id * nrhs + c + 1) * n];
                let mut y = vec![0.0; n];
                pbmv(&a0.layout(), a0.matrix(id), x, &mut y);
                rhs[(id * nrhs + c) * n..(id * nrhs + c + 1) * n].copy_from_slice(&y);
            }
        }
        let mut a = a0.clone();
        let mut info = InfoArray::new(batch);
        let _ = pbsv_batch_fused(&dev, &mut a, &mut rhs, nrhs, &mut info, 32).unwrap();
        assert!(info.all_ok());
        for k in 0..batch * n * nrhs {
            assert!((rhs[k] - xs[k]).abs() < 1e-9, "element {k}");
        }
    }

    #[test]
    fn cholesky_beats_lu_in_modeled_time() {
        // Same SPD systems through the LU path: Cholesky must be cheaper
        // (half the flops, ~40% of the shared footprint, no pivot path).
        let dev = DeviceSpec::mi250x_gcd();
        let (batch, n, kd) = (200usize, 192usize, 9usize);
        let a0 = spd_batch(batch, n, kd);
        let mut a = a0.clone();
        let mut info = InfoArray::new(batch);
        let chol = pbtrf_batch_window(&dev, &mut a, &mut info, 8, 32).unwrap();
        assert!(info.all_ok());

        // Equivalent general-band batch (kl = ku = kd).
        let mut g = gbatch_core::batch::BandBatch::from_fn(batch, n, n, kd, kd, |id, m| {
            let l = a0.layout();
            let ab = a0.matrix(id);
            for j in 0..n {
                let kn = kd.min(n - 1 - j);
                m.set(j, j, ab[l.idx(j, j)]);
                for k in 1..=kn {
                    m.set(j + k, j, ab[l.idx(j + k, j)]);
                    m.set(j, j + k, ab[l.idx(j + k, j)]);
                }
            }
        })
        .unwrap();
        let mut piv = gbatch_core::batch::PivotBatch::new(batch, n, n);
        let mut ginfo = InfoArray::new(batch);
        let lu = crate::window::gbtrf_batch_window(
            &dev,
            &mut g,
            &mut piv,
            &mut ginfo,
            crate::window::WindowParams {
                nb: 8,
                threads: 32,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            chol.time.secs() < 0.7 * lu.time.secs(),
            "Cholesky {:.3e}s should clearly beat LU {:.3e}s on SPD systems",
            chol.time.secs(),
            lu.time.secs()
        );
    }

    #[test]
    fn indefinite_matrix_flagged() {
        let dev = DeviceSpec::h100_pcie();
        let mut a = spd_batch(2, 10, 2);
        {
            let l = a.layout();
            let chunk = a.chunks_mut().nth(1).unwrap();
            chunk[l.idx(5, 5)] = -1.0;
        }
        let mut info = InfoArray::new(2);
        let _ = pbtrf_batch_fused(&dev, &mut a, &mut info, 32).unwrap();
        assert_eq!(info.get(0), 0);
        assert_eq!(info.get(1), 6);
    }
}
