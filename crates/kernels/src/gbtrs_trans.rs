//! Blocked batched *transpose* band triangular solve (`A^T x = b`).
//!
//! The paper's user interface (Section 4) takes `transpose_t transA`; the
//! transpose path solves `U^T y = b` first (a *lower*-triangular banded
//! sweep, ascending) and then applies `L^T` with the pivots replayed in
//! reverse (descending). Both sweeps use the same shared-memory RHS-window
//! technique as the no-transpose kernels of [`crate::gbtrs_blocked`]:
//!
//! - **`U^T` sweep** (ascending blocks): solving row `j` needs the `kv`
//!   previously-solved rows above it, so the cache holds `nb + kv` rows
//!   ending at the current block;
//! - **`L^T` sweep** (descending blocks): step `j` combines rows
//!   `j+1 ..= j+kl` and may swap row `j` with any row down to `j + kl`,
//!   so a row is only final once the sweep has passed `kl` rows below it —
//!   the cache holds `nb + kl` rows and rows `[j0 + kl, j1 + kl)` are
//!   written back after each block.
//!
//! Numerically identical (bit-for-bit) to
//! `gbatch_core::gbtrs::gbtrs(Transpose::Yes, ..)`.

use gbatch_core::batch::{PivotBatch, RhsBatch};
use gbatch_core::layout::BandLayout;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::{launch, DeviceSpec, LaunchConfig, LaunchError, LaunchReport, SimTime};

use crate::gbtrs_blocked::SolveParams;

/// Shared bytes for the `U^T` sweep cache (`S` elements).
pub fn ut_smem_bytes<S: Scalar>(l: &BandLayout, nb: usize, nrhs: usize) -> usize {
    (nb + l.kv()).min(l.n) * nrhs * S::BYTES
}

/// Shared bytes for the `L^T` sweep cache (`S` elements).
pub fn lt_smem_bytes<S: Scalar>(l: &BandLayout, nb: usize, nrhs: usize) -> usize {
    (nb + l.kl).min(l.n) * nrhs * S::BYTES
}

/// Report for the two transpose-solve launches.
#[derive(Debug, Clone)]
pub struct TransSolveReport {
    /// `U^T` sweep launch.
    pub ut: LaunchReport,
    /// `L^T` sweep launch (absent when `kl == 0`).
    pub lt: Option<LaunchReport>,
}

impl TransSolveReport {
    /// Total modeled time.
    pub fn time(&self) -> SimTime {
        self.ut.time + self.lt.as_ref().map(|r| r.time).unwrap_or(SimTime::ZERO)
    }
}

struct Prob<'a, S> {
    id: usize,
    b: &'a mut [S],
}

/// Batched blocked transpose solve: overwrite `rhs` with `A^{-T} rhs`.
pub fn gbtrs_batch_blocked_trans<S: Scalar>(
    dev: &DeviceSpec,
    l: &BandLayout,
    factors: &[S],
    piv: &PivotBatch,
    rhs: &mut RhsBatch<S>,
    params: SolveParams,
) -> Result<TransSolveReport, LaunchError> {
    let n = l.n;
    assert_eq!(l.m, n, "transpose solve requires square factors");
    let batch = rhs.batch();
    assert_eq!(piv.batch(), batch);
    let stride = l.len();
    assert_eq!(factors.len(), stride * batch);
    assert!(params.nb > 0);
    let nrhs = rhs.nrhs();
    let ldb = rhs.ldb();
    let kv = l.kv();
    let kl = l.kl;
    let nb = params.nb;
    let threads = params.threads.max((kl + 1) as u32);

    // ---------------- U^T sweep (ascending) ----------------
    let ut = {
        let cfg = LaunchConfig::new(threads, ut_smem_bytes::<S>(l, nb, nrhs) as u32)
            .with_parallel(params.parallel)
            .with_label("gbtrs_trans_ut")
            .with_precision(crate::flop_class::<S>());
        let cache_rows = (nb + kv).min(n);
        let mut probs: Vec<Prob<'_, S>> = rhs
            .blocks_mut()
            .enumerate()
            .map(|(id, b)| Prob { id, b })
            .collect();
        launch(dev, &cfg, &mut probs, |p, ctx| {
            let ab = &factors[p.id * stride..(p.id + 1) * stride];
            let _off = ctx.smem.alloc_scalar(cache_rows * nrhs, S::BYTES);
            let mut cache = vec![S::ZERO; cache_rows * nrhs];
            // Cache covers absolute rows [lo, abs_end); starts at the top.
            let mut lo = 0usize;
            let mut abs_end = cache_rows.min(n);
            for c in 0..nrhs {
                for r in lo..abs_end {
                    cache[c * cache_rows + (r - lo)] = p.b[c * ldb + r];
                }
            }
            ctx.gld((abs_end - lo) * nrhs * S::BYTES);
            ctx.sync();

            let mut j0 = 0usize;
            while j0 < n {
                let jb = nb.min(n - j0);
                debug_assert!(lo <= j0.saturating_sub(kv) && abs_end >= j0 + jb);
                for j in j0..j0 + jb {
                    let reach = kv.min(j);
                    ctx.gld((reach + 1) * S::BYTES); // the U column (register file)
                    let diag = ab[l.idx(kv, j)];
                    let lj = j - lo;
                    for c in 0..nrhs {
                        let mut acc = cache[c * cache_rows + lj];
                        for i in 1..=reach {
                            acc -= ab[l.idx(kv - i, j)] * cache[c * cache_rows + lj - i];
                        }
                        cache[c * cache_rows + lj] = acc / diag;
                    }
                    ctx.smem_work(nrhs * (reach + 1), 2);
                    ctx.sync();
                }
                // Rows [j0, j0 + jb) are final.
                for c in 0..nrhs {
                    for r in 0..jb {
                        p.b[c * ldb + j0 + r] = cache[c * cache_rows + (j0 - lo) + r];
                    }
                }
                ctx.gst(jb * nrhs * S::BYTES);
                let next_j0 = j0 + jb;
                if next_j0 >= n {
                    break;
                }
                // Slide the window: keep the kv most recent solved rows.
                let new_lo = next_j0.saturating_sub(kv);
                let shift = new_lo - lo;
                if shift > 0 {
                    let keep = abs_end - new_lo;
                    for c in 0..nrhs {
                        let colbase = c * cache_rows;
                        cache.copy_within(colbase + shift..colbase + shift + keep, colbase);
                    }
                    ctx.smem_work(keep * nrhs, 0);
                    lo = new_lo;
                }
                // Load the next rows into the tail of the window.
                let new_end = (lo + cache_rows).min(n);
                if new_end > abs_end {
                    for c in 0..nrhs {
                        for r in abs_end..new_end {
                            cache[c * cache_rows + (r - lo)] = p.b[c * ldb + r];
                        }
                    }
                    ctx.gld((new_end - abs_end) * nrhs * S::BYTES);
                    abs_end = new_end;
                }
                ctx.sync();
                j0 = next_j0;
            }
        })?
    };

    // ---------------- L^T sweep (descending) ----------------
    let lt = if kl > 0 && n > 1 {
        let cfg = LaunchConfig::new(threads, lt_smem_bytes::<S>(l, nb, nrhs) as u32)
            .with_parallel(params.parallel)
            .with_label("gbtrs_trans_lt")
            .with_precision(crate::flop_class::<S>());
        let cache_rows = (nb + kl).min(n);
        let mut probs: Vec<Prob<'_, S>> = rhs
            .blocks_mut()
            .enumerate()
            .map(|(id, b)| Prob { id, b })
            .collect();
        let rep = launch(dev, &cfg, &mut probs, |p, ctx| {
            let ab = &factors[p.id * stride..(p.id + 1) * stride];
            let ipiv = piv.pivots(p.id);
            let _off = ctx.smem.alloc_scalar(cache_rows * nrhs, S::BYTES);
            let mut cache = vec![S::ZERO; cache_rows * nrhs];
            // Cache covers rows [lo, hi); start with the bottom rows.
            let mut lo = n.saturating_sub(cache_rows);
            let hi = n;
            for c in 0..nrhs {
                for r in lo..hi {
                    cache[c * cache_rows + (r - lo)] = p.b[c * ldb + r];
                }
            }
            ctx.gld((hi - lo) * nrhs * S::BYTES);
            ctx.sync();

            // Steps j = n-2 .. 0 in blocks [j0, j1).
            let mut j1 = n - 1; // exclusive end of the step range handled so far
            loop {
                let jb = nb.min(j1);
                let j0 = j1 - jb;
                for j in (j0..j1).rev() {
                    let lm = kl.min(n - 1 - j);
                    debug_assert!(j >= lo && j + lm < lo + cache_rows);
                    if lm > 0 {
                        let base = l.idx(kv, j);
                        ctx.gld(lm * S::BYTES);
                        for c in 0..nrhs {
                            let mut acc = S::ZERO;
                            for i in 1..=lm {
                                acc += ab[base + i] * cache[c * cache_rows + (j - lo) + i];
                            }
                            cache[c * cache_rows + (j - lo)] -= acc;
                        }
                        ctx.smem_work(nrhs * lm, 2);
                    }
                    let pr = ipiv[j] as usize;
                    if pr != j {
                        for c in 0..nrhs {
                            cache.swap(c * cache_rows + (j - lo), c * cache_rows + (pr - lo));
                        }
                        ctx.smem_work(nrhs, 0);
                    }
                    ctx.sync();
                }
                // Rows >= j0 + kl are final (no later step can reach them).
                let final_start = j0 + kl;
                let final_end = (j1 + kl).min(n);
                if final_end > final_start {
                    for c in 0..nrhs {
                        for r in final_start..final_end {
                            p.b[c * ldb + r] = cache[c * cache_rows + (r - lo)];
                        }
                    }
                    ctx.gst((final_end - final_start) * nrhs * S::BYTES);
                }
                if j0 == 0 {
                    // Flush the remaining top rows [0, min(kl, n)).
                    debug_assert_eq!(lo, 0, "window must end at the top");
                    let top_end = kl.min(n);
                    for c in 0..nrhs {
                        for r in 0..top_end {
                            p.b[c * ldb + r] = cache[c * cache_rows + (r - lo)];
                        }
                    }
                    ctx.gst(top_end * nrhs * S::BYTES);
                    break;
                }
                // Slide down: the next block is [j0', j0) with
                // j0' = j0 - min(nb, j0); its steps touch rows
                // [j0', min(j0 - 1 + kl, n - 1)]. The window origin moves
                // monotonically downward (never up — when kl > nb the
                // current origin may already be below the next block start).
                let next_jb = nb.min(j0);
                let next_j0 = j0 - next_jb;
                let new_lo = next_j0.min(lo);
                debug_assert!(
                    (j0 + kl).min(n) <= new_lo + cache_rows,
                    "window too small: need [{next_j0}, {}) in [{new_lo}, {})",
                    (j0 + kl).min(n),
                    new_lo + cache_rows
                );
                let shift = lo - new_lo; // cache content moves up by `shift`
                if shift > 0 {
                    // Keep the still-needed rows [lo, min(j0 + kl, n)).
                    let keep_end = (j0 + kl).min(lo + cache_rows).min(n);
                    let keep = keep_end.saturating_sub(lo);
                    for c in 0..nrhs {
                        let colbase = c * cache_rows;
                        for r in (0..keep).rev() {
                            cache[colbase + shift + r] = cache[colbase + r];
                        }
                    }
                    ctx.smem_work(keep * nrhs, 0);
                    // Load the fresh rows [new_lo, lo).
                    for c in 0..nrhs {
                        for r in new_lo..lo {
                            cache[c * cache_rows + (r - new_lo)] = p.b[c * ldb + r];
                        }
                    }
                    ctx.gld((lo - new_lo) * nrhs * S::BYTES);
                    lo = new_lo;
                }
                ctx.sync();
                j1 = j0;
            }
        })?;
        Some(rep)
    } else {
        None
    };

    Ok(TransSolveReport { ut, lt })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::batch::{BandBatch, InfoArray};
    use gbatch_core::gbtrs::{gbtrs, Transpose};

    fn factored(batch: usize, n: usize, kl: usize, ku: usize) -> (BandBatch, PivotBatch) {
        let mut v = 0.29f64;
        let mut fac = BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.9 + 0.047 + id as f64 * 4e-4).fract();
                    m.set(i, j, v - 0.5 + if i == j { 1.2 } else { 0.0 });
                }
            }
        })
        .unwrap();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let dev = DeviceSpec::h100_pcie();
        let _ = crate::fused::gbtrf_batch_fused(
            &dev,
            &mut fac,
            &mut piv,
            &mut info,
            crate::fused::FusedParams::auto(&dev, kl),
        )
        .unwrap();
        assert!(info.all_ok());
        (fac, piv)
    }

    fn check(n: usize, kl: usize, ku: usize, nrhs: usize, nb: usize) {
        let dev = DeviceSpec::h100_pcie();
        let batch = 3;
        let (fac, piv) = factored(batch, n, kl, ku);
        let l = fac.layout();
        let mut rhs = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
            ((id * 11 + c * 3 + i) as f64 * 0.37).sin()
        })
        .unwrap();
        let mut expect = rhs.clone();
        for id in 0..batch {
            gbtrs(
                Transpose::Yes,
                &l,
                fac.matrix(id).data,
                piv.pivots(id),
                expect.block_mut(id),
                n,
                nrhs,
            );
        }
        let params = SolveParams {
            nb,
            threads: 32,
            ..Default::default()
        };
        gbtrs_batch_blocked_trans(&dev, &l, fac.data(), &piv, &mut rhs, params).unwrap();
        assert_eq!(
            rhs.data(),
            expect.data(),
            "n={n} kl={kl} ku={ku} nrhs={nrhs} nb={nb}"
        );
    }

    #[test]
    fn matches_core_transpose_solve_bitwise() {
        for nb in [1, 2, 4, 8, 32] {
            check(20, 2, 3, 1, nb);
        }
        check(20, 10, 7, 1, 8);
        check(20, 2, 3, 10, 8);
        check(33, 1, 1, 3, 5);
        check(8, 0, 3, 2, 4); // kl = 0: U^T sweep only
        check(8, 3, 0, 2, 4);
        check(64, 2, 3, 1, 64); // nb >= n
        check(3, 2, 2, 1, 2); // kv >= n
        check(2, 1, 1, 1, 1); // minimal
    }

    #[test]
    fn transpose_solves_transposed_system() {
        // End-to-end: build b = A^T x, solve with the kernel, compare x.
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku) = (40usize, 3usize, 2usize);
        let (orig, _) = {
            let mut v = 0.7f64;
            let o = BandBatch::from_fn(2, n, n, kl, ku, |_, m| {
                for j in 0..n {
                    let (s, e) = m.layout.col_rows(j);
                    for i in s..e {
                        v = (v * 1.9 + 0.21).fract();
                        m.set(i, j, v - 0.5 + if i == j { 2.0 } else { 0.0 });
                    }
                }
            })
            .unwrap();
            (o, ())
        };
        let mut fac = orig.clone();
        let mut piv = PivotBatch::new(2, n, n);
        let mut info = InfoArray::new(2);
        let _ = crate::fused::gbtrf_batch_fused(
            &dev,
            &mut fac,
            &mut piv,
            &mut info,
            crate::fused::FusedParams::auto(&dev, kl),
        )
        .unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.23).cos()).collect();
        let mut rhs = RhsBatch::<f64>::zeros(2, n, 1).unwrap();
        for id in 0..2 {
            let mut b = vec![0.0; n];
            gbatch_core::blas2::gbmv_t(1.0, orig.matrix(id), &x_true, 0.0, &mut b);
            rhs.block_mut(id).copy_from_slice(&b);
        }
        gbtrs_batch_blocked_trans(
            &dev,
            &fac.layout(),
            fac.data(),
            &piv,
            &mut rhs,
            SolveParams {
                nb: 8,
                threads: 32,
                ..Default::default()
            },
        )
        .unwrap();
        for id in 0..2 {
            for i in 0..n {
                assert!((rhs.block(id)[i] - x_true[i]).abs() < 1e-9);
            }
        }
    }
}
