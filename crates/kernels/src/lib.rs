//! # gbatch-kernels
//!
//! GPU-style batched band LU kernels, ported from the paper onto the
//! simulated GPU substrate of `gbatch-gpu-sim`:
//!
//! - [`mod@reference`] — the fork–join reference implementation (§5.1): the
//!   host drives the column loop and launches per-column building-block
//!   kernels; numerically identical to `gbatch_core::gbtf2`, and slow by
//!   design (launch overhead × columns).
//! - [`fused`] — the fully fused factorization (§5.2): each matrix is
//!   loaded into shared memory once, factorized column-by-column, and
//!   written back; fails for matrices exceeding the shared-memory capacity
//!   and shows the occupancy staircase.
//! - [`window`] — the sliding-window factorization (§5.3): caches only
//!   `(nb + kv + 1)` columns, shifting the window in shared memory between
//!   iterations; constant footprint in the matrix size.
//! - [`gbtrs_cols`] / [`gbtrs_blocked`] / [`gbtrs_trans`] — the band
//!   triangular solves (§6), column-wise and blocked (RHS cache shifted
//!   through shared memory), plus the transpose path of the Section 4
//!   interface (`transpose_t transA`).
//! - [`gbsv_fused`] — the single-kernel factorize-and-solve on the
//!   augmented system `[A|B]` for small matrices (§7).
//! - [`dispatch`] — the paper's user interface (Section 4): `dgbtrf_batch`,
//!   `dgbtrs_batch`, `dgbsv_batch`, with the §5.4 selection logic (fused
//!   below the size cutoff, sliding window otherwise, reference as the
//!   safety net).
//! - [`vbatch`] — non-uniform batches (per-matrix sizes and bandwidths),
//!   the paper's stated future work (Section 9).
//! - [`specialized`] — compile-time band-specialized register-file kernels,
//!   emulating the paper's §8.1 JIT-compilation proposal.
//! - [`pbtrf`] — batched SPD band Cholesky (fused + window), extending the
//!   design space to the symmetric systems of §2.2.
//! - [`tridiag`] — parallel cyclic reduction for tridiagonal batches: the
//!   `O(log n)` critical-path counterpoint to §8's "not enough parallelism
//!   within a single problem".
//! - [`mod@spike`] — SPIKE-style split solver for *large* single systems
//!   (Li/Serban/Negrut, arXiv:1509.07919): P diagonal blocks factor
//!   concurrently as an intra-matrix batch, a tiny dense reduced system
//!   couples the cuts, and a truncated mode trades coupling for
//!   iterative refinement; the third regime of the dispatch crossover.
//! - [`mod@interleaved`] — batch-major (interleaved) GBTRF/GBTRS whose
//!   column-step primitives sweep contiguous batch lanes innermost: no
//!   shared memory, no barriers, bitwise-identical numerics per lane, and
//!   the coalesced access pattern of Gloster et al. (arXiv:1909.04539);
//!   the layout dimension of the dispatch crossover model.
//! - [`gemm`] / [`gemv`] — simple batched dense kernels used by the
//!   Figure 1 motivation experiment.
//! - [`cost`] — analytic counter prediction (dry-run cost model) used by
//!   the offline tuner.
//!
//! Every kernel *really computes*: the numerics of each design are tested
//! bit-for-bit (where the operation order is identical) against the
//! sequential LAPACK-style reference.

// LAPACK-style numerical kernels are clearest with explicit indexed
// loops over band rows/columns; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

pub mod access_model;
pub mod conformance;
pub mod cost;
pub mod dispatch;
pub mod fused;
pub mod gbsv_fused;
pub mod gbtrs_blocked;
pub mod gbtrs_cols;
pub mod gbtrs_trans;
pub mod gemm;
pub mod gemv;
pub mod interleaved;
pub mod mixed;
pub mod pbtrf;
pub mod reference;
pub mod specialized;
pub mod spike;
pub mod step;
pub mod tridiag;
pub mod vbatch;
pub mod window;

pub use dispatch::{
    dgbsv_batch, dgbtrf_batch, dgbtrs_batch, gbsv_batch, gbtrf_batch, gbtrs_batch, sgbsv_batch,
    sgbtrf_batch, sgbtrs_batch, BatchReport, ChosenAlgo, GbsvOptions, MatrixLayout,
};

/// gpu-sim throughput class of a core scalar type: every launch in this
/// crate tags its configuration so the timing model prices fp32 on the
/// wider lane group.
#[must_use]
pub fn flop_class<S: gbatch_core::scalar::Scalar>() -> gbatch_gpu_sim::FlopPrecision {
    match S::PRECISION {
        gbatch_core::scalar::Precision::F32 => gbatch_gpu_sim::FlopPrecision::Fp32,
        gbatch_core::scalar::Precision::F64 => gbatch_gpu_sim::FlopPrecision::Fp64,
    }
}
