//! Analytic cost prediction (dry-run counters) for the factorization
//! kernels.
//!
//! The offline tuner (paper §5.3: "a benchmark sweep ... fed to a
//! post-processing phase that extracts the best tuning parameters") needs
//! kernel costs for hundreds of `(kl, ku, nb, threads)` combinations; this
//! module predicts the per-block counters *without executing numerics*,
//! assuming worst-case pivoting (`jp = kl`, so every column updates the
//! full `kv + 1`-column window). Global traffic predictions are exact;
//! critical-path cycles are an upper bound on what the executing kernels
//! record.

use crate::interleaved::InterleavedParams;
use gbatch_core::layout::BandLayout;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::{BlockContext, DeviceSpec, KernelCounters, LaunchConfig, SimTime};

#[inline]
fn frac(a: usize, t: usize) -> f64 {
    a as f64 / t as f64
}

/// Worst-case per-column factorization cost, matching the recording calls
/// of [`crate::step::smem_column_step`] one for one.
fn column_cost(l: &BandLayout, j: usize, threads: usize, c: &mut KernelCounters) {
    let n = l.n;
    let kv = l.kv();
    let km = l.km(j);
    // SET_FILLIN
    if j + kv < n {
        c.smem_elems += frac(l.kl, threads);
    }
    // IAMAX + winner broadcast + barrier
    c.smem_elems += frac(km + 1, threads);
    c.smem_trips += 1;
    c.syncs += 1;
    // Worst-case update reach.
    let ju = (j + kv).min(n - 1);
    let w = ju - j;
    // SWAP (assume a pivot interchange every column)
    if km > 0 {
        c.smem_elems += frac(w + 1, threads);
    }
    c.syncs += 1;
    if km > 0 {
        // SCAL
        c.smem_elems += frac(km, threads);
        c.flops += km as u64;
        c.smem_trips += 1;
        // RANK-1 UPDATE
        if w > 0 {
            c.smem_elems += frac(w * km, threads);
            c.flops += (2 * w * km) as u64;
        }
        c.syncs += 1;
    }
}

/// Predicted per-block counters of the fully fused kernel (§5.2).
/// `lanes` is the effective shared-memory parallelism:
/// `min(threads, device.lds_lanes)`.
pub fn predict_fused<S: Scalar>(l: &BandLayout, lanes: u32) -> KernelCounters {
    let t = lanes as usize;
    let mut c = KernelCounters::default();
    let bytes = l.len() * S::BYTES;
    c.global_read += bytes as u64;
    c.syncs += 1;
    for j in 0..l.m.min(l.n) {
        column_cost(l, j, t, &mut c);
    }
    c.global_write += (bytes + l.m.min(l.n) * 4) as u64;
    c.syncs += 1;
    c
}

/// Predicted per-block counters of the sliding-window kernel (§5.3).
/// `lanes` is the effective shared-memory parallelism:
/// `min(threads, device.lds_lanes)`.
pub fn predict_window<S: Scalar>(l: &BandLayout, nb: usize, lanes: u32) -> KernelCounters {
    let t = lanes as usize;
    let ldab = l.ldab;
    let n = l.n;
    let kmin = l.m.min(n);
    let wcols = crate::window::window_cols(l.kl, l.ku, nb).min(n);
    let mut c = KernelCounters::default();

    // Initial load.
    let mut loaded_end = wcols.min(n);
    c.global_read += (loaded_end * ldab * S::BYTES) as u64;
    c.syncs += 1;

    let mut j0 = 0usize;
    while j0 < kmin {
        let jb = nb.min(kmin - j0);
        for j in j0..j0 + jb {
            column_cost(l, j, t, &mut c);
        }
        // Store the factored block.
        c.global_write += (jb * ldab * S::BYTES) as u64;
        c.syncs += 1;
        let next_j0 = j0 + jb;
        if next_j0 >= kmin {
            if loaded_end > next_j0 {
                c.global_write += ((loaded_end - next_j0) * ldab * S::BYTES) as u64;
            }
            break;
        }
        // Shift + tail load.
        let keep = loaded_end - next_j0;
        c.smem_elems += frac(keep * ldab, t);
        c.syncs += 1;
        let new_end = (next_j0 + wcols).min(n);
        if new_end > loaded_end {
            c.global_read += ((new_end - loaded_end) * ldab * S::BYTES) as u64;
            loaded_end = new_end;
        }
        c.syncs += 1;
        j0 = next_j0;
    }
    c.global_write += (kmin * 4) as u64; // pivots
    c
}

/// Predicted per-block counters of the blocked forward+backward solve
/// (`gbtrs_batch_blocked`), single launch pair combined. `lanes` is
/// `min(threads, device.lds_lanes)`.
pub fn predict_gbtrs_blocked<S: Scalar>(
    l: &BandLayout,
    nb: usize,
    nrhs: usize,
    lanes: u32,
) -> KernelCounters {
    let t = lanes as usize;
    let n = l.n;
    let kv = l.kv();
    let kl = l.kl;
    let mut c = KernelCounters::default();

    // ---- forward sweep (skipped when kl == 0) ----
    if kl > 0 && n > 1 {
        let cache_rows = (nb + kl).min(n);
        c.global_read += (cache_rows.min(n) * nrhs * S::BYTES) as u64;
        c.syncs += 1;
        let mut j0 = 0usize;
        let mut loaded = cache_rows.min(n);
        while j0 < n {
            let jb = nb.min(n - j0);
            for j in j0..j0 + jb {
                if j >= n - 1 {
                    break;
                }
                let lm = kl.min(n - 1 - j);
                c.smem_elems += frac(nrhs, t); // pivot swap (worst case)
                if lm > 0 {
                    c.global_read += (lm * S::BYTES) as u64;
                    c.smem_elems += frac(nrhs * lm, t);
                    c.flops += (2 * nrhs * lm) as u64;
                }
                c.syncs += 1;
            }
            c.global_write += (jb * nrhs * S::BYTES) as u64;
            let next_j0 = j0 + jb;
            if next_j0 >= n {
                break;
            }
            let keep = loaded - next_j0;
            c.smem_elems += frac(keep * nrhs, t);
            let new_end = (next_j0 + cache_rows).min(n);
            if new_end > loaded {
                c.global_read += ((new_end - loaded) * nrhs * S::BYTES) as u64;
                loaded = new_end;
            }
            c.syncs += 1;
            j0 = next_j0;
        }
    }

    // ---- backward sweep ----
    let cache_rows = (nb + kv).min(n);
    c.global_read += (cache_rows.min(n) * nrhs * S::BYTES) as u64;
    c.syncs += 1;
    let mut j1 = n;
    while j1 > 0 {
        let jb = nb.min(j1);
        let j0 = j1 - jb;
        for j in (j0..j1).rev() {
            let reach = kv.min(j);
            c.global_read += ((reach + 1) * S::BYTES) as u64;
            c.smem_elems += frac(nrhs * (reach + 1), t);
            c.flops += (2 * nrhs * (reach + 1)) as u64;
            c.syncs += 1;
        }
        c.global_write += (jb * nrhs * S::BYTES) as u64;
        if j0 == 0 {
            break;
        }
        let keep = jb.min(cache_rows);
        c.smem_elems += frac(keep * nrhs, t);
        c.global_read += (nb.min(j0) * nrhs * S::BYTES) as u64;
        c.syncs += 1;
        j1 = j0;
    }
    c
}

/// Mirror of [`BlockContext::vec_work`] recording into a plain counter
/// struct (the interleaved kernels are barrier-free, so their whole
/// critical path is vector-sweep cycles).
fn vec(c: &mut KernelCounters, lanes: usize, flops_per_item: usize, threads: u32) {
    if lanes == 0 {
        return;
    }
    c.flops += (lanes * flops_per_item) as u64;
    c.cycles += lanes as f64 / threads as f64;
    c.lane_sweeps += lanes.div_ceil(BlockContext::SIMD_WIDTH as usize) as u64;
    c.lane_elems += lanes as u64;
}

/// Predicted per-block counters of the interleaved factorization
/// ([`crate::interleaved::gbtrf_batch_interleaved`]) for a chunk of
/// `lanes` batch lanes in the given traffic mode (`windowed = true` for
/// [`crate::interleaved::LaneTrafficMode::Windowed`]). The kernel's
/// recording is *structural* (mask-independent), so this prediction is
/// **exact**, not a bound.
pub fn predict_interleaved_factor<S: Scalar>(
    l: &BandLayout,
    lanes: usize,
    threads: u32,
    windowed: bool,
) -> KernelCounters {
    let mut c = KernelCounters::default();
    let kv = l.kv();
    let (n, kl) = (l.n, l.kl);
    if windowed {
        // Stream the band panel in.
        c.global_read += (l.len() * lanes * S::BYTES) as u64;
        vec(&mut c, l.len() * lanes, 0, threads);
    }
    // Prologue fill.
    let mut fill_items = 0usize;
    for j in (l.ku + 1)..kv.min(n) {
        fill_items += kl.saturating_sub(kv - j);
    }
    vec(&mut c, fill_items * lanes, 0, threads);
    if !windowed {
        c.global_write += (fill_items * lanes * S::BYTES) as u64;
    }
    for j in 0..l.m.min(n) {
        let km = l.km(j);
        let w = kv.min(n - 1 - j);
        if j + kv < n {
            vec(&mut c, kl * lanes, 0, threads); // fill-in column
            if !windowed {
                c.global_write += (kl * lanes * S::BYTES) as u64;
            }
        }
        // IAMAX + pivot store.
        vec(&mut c, (km + 1) * lanes, 0, threads);
        if !windowed {
            c.global_read += ((km + 1) * lanes * S::BYTES) as u64;
        }
        c.global_write += (lanes * 4) as u64;
        if !windowed {
            c.global_read += (lanes * S::BYTES) as u64; // pivot value re-read
        }
        // SWAP sweep.
        vec(&mut c, (w + 1) * lanes, 0, threads);
        if !windowed {
            c.global_read += (2 * (w + 1) * lanes * S::BYTES) as u64;
            c.global_write += (2 * (w + 1) * lanes * S::BYTES) as u64;
        }
        if km > 0 {
            vec(&mut c, km * lanes, 1, threads); // SCAL
            if !windowed {
                c.global_read += (km * lanes * S::BYTES) as u64;
                c.global_write += (km * lanes * S::BYTES) as u64;
            }
            vec(&mut c, w * lanes, 0, threads); // u-row loads
            vec(&mut c, w * km * lanes, 2, threads); // RANK-1
            if !windowed {
                c.global_read += (w * (1 + 2 * km) * lanes * S::BYTES) as u64;
                c.global_write += (w * km * lanes * S::BYTES) as u64;
            }
        }
    }
    if windowed {
        // Stream the factored panel out.
        c.global_write += (l.len() * lanes * S::BYTES) as u64;
        vec(&mut c, l.len() * lanes, 0, threads);
    }
    c.global_write += (lanes * 4) as u64; // info codes
    c
}

/// Predicted per-block counters of the interleaved solve
/// ([`crate::interleaved::gbtrs_batch_interleaved`]) for a chunk of
/// `lanes` batch lanes in the given traffic mode. Exact, like the factor
/// prediction.
pub fn predict_interleaved_solve<S: Scalar>(
    l: &BandLayout,
    nrhs: usize,
    lanes: usize,
    threads: u32,
    windowed: bool,
) -> KernelCounters {
    let mut c = KernelCounters::default();
    let kv = l.kv();
    let (n, kl) = (l.n, l.kl);
    if windowed {
        // Transposing gather of the RHS blocks into the resident scratch.
        c.global_read += (n * nrhs * lanes * S::BYTES) as u64;
        vec(&mut c, n * nrhs * lanes, 0, threads);
    }
    if kl > 0 {
        for j in 0..n - 1 {
            let lm = kl.min(n - 1 - j);
            c.global_read += (lanes * 4) as u64; // pivot row
            vec(&mut c, nrhs * lanes, 0, threads);
            if !windowed {
                c.global_read += (2 * nrhs * lanes * S::BYTES) as u64; // swap rows
                c.global_write += (2 * nrhs * lanes * S::BYTES) as u64;
            }
            if lm > 0 {
                c.global_read += (lm * lanes * S::BYTES) as u64; // L multipliers
                vec(&mut c, lm * nrhs * lanes, 2, threads);
                if !windowed {
                    c.global_read += ((1 + lm) * nrhs * lanes * S::BYTES) as u64;
                    c.global_write += (lm * nrhs * lanes * S::BYTES) as u64;
                }
            }
        }
    }
    for _c_rhs in 0..nrhs {
        for j in (0..n).rev() {
            let reach = kv.min(j);
            c.global_read += (lanes * S::BYTES) as u64; // diagonal of U
            vec(&mut c, lanes, 1, threads);
            if !windowed {
                c.global_read += (lanes * S::BYTES) as u64; // x[j] RMW
                c.global_write += (lanes * S::BYTES) as u64;
            }
            if reach > 0 {
                c.global_read += (reach * lanes * S::BYTES) as u64; // U column
                vec(&mut c, reach * lanes, 2, threads);
                if !windowed {
                    c.global_read += (reach * lanes * S::BYTES) as u64; // dst RMW
                    c.global_write += (reach * lanes * S::BYTES) as u64;
                }
            }
        }
    }
    if windowed {
        // Scatter back.
        c.global_write += (n * nrhs * lanes * S::BYTES) as u64;
        vec(&mut c, n * nrhs * lanes, 0, threads);
    }
    c
}

/// Predicted per-block counters of one layout-conversion pass
/// ([`crate::interleaved::interleave_launch`] /
/// [`crate::interleaved::deinterleave_launch`]) over `lanes` lanes.
pub fn predict_interleave_pass<S: Scalar>(
    l: &BandLayout,
    lanes: usize,
    threads: u32,
) -> KernelCounters {
    let mut c = KernelCounters::default();
    let elems = l.len();
    c.global_read += (elems * lanes * S::BYTES) as u64;
    c.global_write += (elems * lanes * S::BYTES) as u64;
    vec(&mut c, elems * lanes, 0, threads);
    c
}

/// Aggregate a per-chunk prediction over the lane chunks of a whole batch
/// (the grid has `ceil(batch / lanes_per_block)` blocks; the last one may
/// be partial) and price the launch exactly as the engine would.
pub fn predict_interleaved_time<S: Scalar>(
    dev: &DeviceSpec,
    batch: usize,
    params: &InterleavedParams,
    smem_bytes: u32,
    per_chunk: impl Fn(usize) -> KernelCounters,
) -> Option<SimTime> {
    let lpb = params.lanes_clamped(batch);
    let cfg = LaunchConfig::new(params.threads, smem_bytes);
    let occ = gbatch_gpu_sim::engine::validate(dev, &cfg).ok()?;
    let grid = batch.div_ceil(lpb);
    let full = per_chunk(lpb);
    let mut total = KernelCounters::default();
    for _ in 0..batch / lpb {
        total.merge_wave(&full);
    }
    let rem = batch % lpb;
    if rem > 0 {
        total.merge_wave(&per_chunk(rem));
    }
    Some(gbatch_gpu_sim::timing::estimate_aggregate_with_precision(
        dev,
        &occ,
        grid,
        &total,
        crate::flop_class::<S>(),
    ))
}

/// Fitted constants of the layout crossover model (§5.4 extended with a
/// storage-layout dimension). Both layouts are priced through the same
/// analytic launch model; the scales absorb whatever the byte-count model
/// underprices on a given machine (e.g. the strided conversion gathers)
/// and are refreshed by `bench/src/bin/calibrate.rs` from measured
/// crossovers, persisted in `results/layout_calibration.json`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossoverModel {
    /// Multiplier on the predicted interleaved time (factor + solve).
    pub interleaved_scale: f64,
    /// Multiplier on the predicted column-major time.
    pub column_scale: f64,
    /// Price the pack/unpack conversion passes into the interleaved side
    /// (true for the dispatch path, which must accept and return
    /// column-major storage).
    pub include_conversion: bool,
}

impl Default for CrossoverModel {
    /// Constants fitted from the shipped calibration run
    /// (`results/layout_calibration.json`): the analytic model prices both
    /// layouts through the same machinery, so the fitted scales are unity.
    fn default() -> Self {
        CrossoverModel {
            interleaved_scale: 1.0,
            column_scale: 1.0,
            include_conversion: true,
        }
    }
}

impl CrossoverModel {
    /// Predicted cost of factoring (and, with `nrhs > 0`, solving) the
    /// batch in interleaved layout, including the conversion passes when
    /// the model says so. `None` when the configuration cannot launch.
    pub fn interleaved_time<S: Scalar>(
        &self,
        dev: &DeviceSpec,
        l: &BandLayout,
        batch: usize,
        nrhs: usize,
        params: &InterleavedParams,
    ) -> Option<SimTime> {
        use crate::interleaved::{factor_mode, solve_mode, LaneTrafficMode};
        let t = params.threads;
        let lpb = params.lanes_clamped(batch);
        let fwin = factor_mode::<S>(dev, l, lpb) == LaneTrafficMode::Windowed;
        let fsmem = if fwin {
            u32::try_from(crate::interleaved::factor_smem_bytes::<S>(l, lpb)).ok()?
        } else {
            0
        };
        let mut total = predict_interleaved_time::<S>(dev, batch, params, fsmem, |lanes| {
            predict_interleaved_factor::<S>(l, lanes, t, fwin)
        })?;
        if nrhs > 0 {
            let swin = solve_mode::<S>(dev, l, nrhs, lpb) == LaneTrafficMode::Windowed;
            let ssmem = if swin {
                u32::try_from(crate::interleaved::solve_smem_bytes::<S>(l, nrhs, lpb)).ok()?
            } else {
                0
            };
            total += predict_interleaved_time::<S>(dev, batch, params, ssmem, |lanes| {
                predict_interleaved_solve::<S>(l, nrhs, lanes, t, swin)
            })?;
        }
        if self.include_conversion {
            let pass = predict_interleaved_time::<S>(dev, batch, params, 0, |lanes| {
                predict_interleave_pass::<S>(l, lanes, t)
            })?;
            total += pass; // pack
            total += pass; // unpack factors
        }
        Some(SimTime(total.secs() * self.interleaved_scale))
    }

    /// Decide whether the interleaved layout wins against a column-major
    /// price the caller computed with the dispatch's own algorithm choice.
    pub fn interleaved_wins(&self, interleaved: SimTime, column_major: SimTime) -> bool {
        interleaved.secs() < column_major.secs() * self.column_scale
    }

    /// Predicted cost of solving `batch` lanes through the SPIKE split
    /// driver (lanes run sequentially, so the per-lane price scales
    /// linearly). `None` when the split degenerates or cannot launch.
    pub fn spike_time<S: Scalar>(
        &self,
        dev: &DeviceSpec,
        l: &BandLayout,
        batch: usize,
        nrhs: usize,
        params: &crate::spike::SpikeParams,
    ) -> Option<SimTime> {
        let lane = predict_spike_time::<S>(dev, l, nrhs, params)?;
        Some(SimTime(lane.secs() * batch as f64))
    }

    /// Decide whether the SPIKE split wins against the unsplit
    /// column-major window + blocked-solve price. Both sides are priced
    /// by the same column family, so `column_scale` cancels; a 10%
    /// safety margin keeps marginal splits on the proven unsplit path.
    pub fn spike_wins(&self, spike: SimTime, column_major: SimTime) -> bool {
        spike.secs() < 0.9 * column_major.secs()
    }

    /// Predicted cost of a **warm** (factor-reusing) SPIKE solve of
    /// `batch` lanes: the block triangular solves over the true RHS
    /// columns plus the combine sweep — no extraction, no factorization,
    /// no refinement. This is what a serve-layer warm flush over a
    /// retained [`gbatch_core::spike::SpikeFactor`] pays.
    pub fn spike_warm_time<S: Scalar>(
        &self,
        dev: &DeviceSpec,
        l: &BandLayout,
        batch: usize,
        nrhs: usize,
        params: &crate::spike::SpikeParams,
    ) -> Option<SimTime> {
        let lane = predict_spike_warm_time::<S>(dev, l, nrhs, params)?;
        Some(SimTime(lane.secs() * batch as f64))
    }
}

/// Predicted modeled time of the SPIKE split solve of **one** lane
/// ([`crate::spike::spike_gbsv_batch`]): the extract launch, the window
/// factorization of the `P` diagonal blocks (riding one batched launch),
/// the blocked solve over the augmented RHS (`nrhs + kl + ku` columns),
/// the combine launch and the residual guard. Truncated mode adds two
/// assumed refinement rounds (residual + block solve + combine) — a
/// conservative stand-in for the data-dependent iteration count. `None`
/// when the partition degenerates to one block or a launch cannot fit.
pub fn predict_spike_time<S: Scalar>(
    dev: &DeviceSpec,
    l: &BandLayout,
    nrhs: usize,
    params: &crate::spike::SpikeParams,
) -> Option<SimTime> {
    use gbatch_core::spike::SpikePartition;
    let part = SpikePartition::new(l.n, l.kl, l.ku, params.parts);
    if part.parts < 2 {
        return None;
    }
    let bl = part.block_layout().ok()?;
    let (kl, ku, blk) = (l.kl, l.ku, part.block);
    let t = params.threads;
    let prec = crate::flop_class::<S>();
    let mut total = SimTime::ZERO;

    // Coupling extraction: one block per interface, corners staged through
    // shared memory.
    {
        let elems = kl * kl + ku * ku;
        let mut c = KernelCounters::default();
        c.global_read += (elems * S::BYTES) as u64;
        c.global_write += (elems * S::BYTES) as u64;
        c.smem_elems += 2.0 * frac(elems, t as usize);
        c.syncs += 2;
        let cfg = LaunchConfig::new(t, crate::spike::extract_smem_bytes::<S>(kl, ku) as u32)
            .with_precision(prec);
        total += predict_time(dev, &cfg, part.interfaces(), &c)?;
    }

    // All P diagonal blocks factor concurrently as one window launch.
    {
        let cfg = LaunchConfig::new(
            t,
            crate::window::window_smem_bytes::<S>(&bl, params.nb) as u32,
        )
        .with_precision(prec);
        total += predict_time(
            dev,
            &cfg,
            part.parts,
            &predict_window::<S>(&bl, params.nb, t),
        )?;
    }

    // Blocked solve over the augmented RHS (true columns + both spikes).
    let solve_time = |cols: usize| -> Option<SimTime> {
        let smem = crate::gbtrs_blocked::forward_smem_bytes::<S>(&bl, params.nb, cols).max(
            crate::gbtrs_blocked::backward_smem_bytes::<S>(&bl, params.nb, cols),
        );
        let cfg = LaunchConfig::new(t, smem as u32).with_precision(prec);
        predict_time(
            dev,
            &cfg,
            part.parts,
            &predict_gbtrs_blocked::<S>(&bl, params.nb, cols, t),
        )
    };
    total += solve_time(nrhs + kl + ku)?;

    // Combine: stage the interface slice, broadcast it, sweep owned rows.
    let combine = |c: &mut KernelCounters| {
        let slice = (kl + ku) * nrhs;
        c.global_read += ((slice + blk * (nrhs + ku + kl)) * S::BYTES) as u64;
        c.global_write += (blk * nrhs * S::BYTES) as u64;
        c.smem_elems += 2.0 * frac(slice, t as usize);
        c.syncs += 2;
        c.flops += (2 * blk * nrhs * (ku + kl)) as u64;
        c.cycles += frac(blk * nrhs * (ku + kl), t as usize);
    };
    let combine_time = |dev: &DeviceSpec| -> Option<SimTime> {
        let mut c = KernelCounters::default();
        combine(&mut c);
        let cfg = LaunchConfig::new(
            t,
            crate::spike::combine_smem_bytes::<S>(kl, ku, nrhs) as u32,
        )
        .with_precision(prec);
        predict_time(dev, &cfg, part.parts, &c)
    };
    // Residual: lane-private row sweep over the block rows.
    let residual_time = |dev: &DeviceSpec| -> Option<SimTime> {
        let w = kl + ku + 1;
        let mut c = KernelCounters::default();
        c.global_read += (blk * (w * (1 + nrhs) + nrhs) * S::BYTES) as u64;
        c.global_write += (blk * nrhs * S::BYTES) as u64;
        c.flops += (2 * blk * w * nrhs) as u64;
        c.cycles += frac(blk * w * nrhs, t as usize);
        let cfg = LaunchConfig::new(t, 0).with_precision(prec);
        predict_time(dev, &cfg, part.parts, &c)
    };
    total += combine_time(dev)?;
    total += residual_time(dev)?; // residual guard / first refinement check
    if params.mode == crate::spike::SpikeMode::Truncated {
        // Two assumed refinement rounds.
        for _ in 0..2 {
            total += residual_time(dev)?;
            total += solve_time(nrhs)?;
            total += combine_time(dev)?;
        }
    }
    Some(total)
}

/// Predicted modeled time of one lane's warm SPIKE solve over retained
/// factors: the blocked triangular solve of the `P` diagonal blocks over
/// the true RHS columns, then the combine sweep. `None` when the
/// partition degenerates to one block or a launch cannot fit.
pub fn predict_spike_warm_time<S: Scalar>(
    dev: &DeviceSpec,
    l: &BandLayout,
    nrhs: usize,
    params: &crate::spike::SpikeParams,
) -> Option<SimTime> {
    use gbatch_core::spike::SpikePartition;
    let part = SpikePartition::new(l.n, l.kl, l.ku, params.parts);
    if part.parts < 2 {
        return None;
    }
    let bl = part.block_layout().ok()?;
    let (kl, ku, blk) = (l.kl, l.ku, part.block);
    let t = params.threads;
    let prec = crate::flop_class::<S>();

    let smem = crate::gbtrs_blocked::forward_smem_bytes::<S>(&bl, params.nb, nrhs).max(
        crate::gbtrs_blocked::backward_smem_bytes::<S>(&bl, params.nb, nrhs),
    );
    let cfg = LaunchConfig::new(t, smem as u32).with_precision(prec);
    let mut total = predict_time(
        dev,
        &cfg,
        part.parts,
        &predict_gbtrs_blocked::<S>(&bl, params.nb, nrhs, t),
    )?;

    let slice = (kl + ku) * nrhs;
    let mut c = KernelCounters::default();
    c.global_read += ((slice + blk * (nrhs + ku + kl)) * S::BYTES) as u64;
    c.global_write += (blk * nrhs * S::BYTES) as u64;
    c.smem_elems += 2.0 * frac(slice, t as usize);
    c.syncs += 2;
    c.flops += (2 * blk * nrhs * (ku + kl)) as u64;
    c.cycles += frac(blk * nrhs * (ku + kl), t as usize);
    let ccfg = LaunchConfig::new(
        t,
        crate::spike::combine_smem_bytes::<S>(kl, ku, nrhs) as u32,
    )
    .with_precision(prec);
    total += predict_time(dev, &ccfg, part.parts, &c)?;
    Some(total)
}

/// Lower bound on the §5.1 fork–join reference factorization:
/// `2 * min(m, n) + 1` launch overheads plus one once-through pass over
/// the band panels at full bandwidth. The real path is data-dependent and
/// strictly slower (per-column traffic, partial-bandwidth launches), so a
/// floor is all the layout decision needs — it only ever compares a
/// candidate *against* this path, and beating the floor beats the path.
pub fn predict_reference_floor<S: Scalar>(
    dev: &DeviceSpec,
    l: &BandLayout,
    batch: usize,
) -> SimTime {
    let launches = 2 * l.m.min(l.n) + 1;
    let bytes = (2 * l.len() * batch * S::BYTES) as f64;
    SimTime(launches as f64 * dev.launch_overhead_s + bytes / dev.mem_bw)
}

/// Predicted modeled time of a batched launch of either factorization
/// kernel: validates the configuration and prices the launch exactly as the
/// engine would. Returns `None` when the launch cannot run (shared memory).
pub fn predict_time(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    batch: usize,
    per_block: &KernelCounters,
) -> Option<gbatch_gpu_sim::SimTime> {
    let occ = gbatch_gpu_sim::engine::validate(dev, cfg).ok()?;
    Some(gbatch_gpu_sim::timing::estimate_with_precision(
        dev,
        &occ,
        batch,
        per_block,
        cfg.precision,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch};
    use gbatch_gpu_sim::DeviceSpec;

    fn random_batch(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
        let mut v = 0.37f64;
        BandBatch::from_fn(batch, n, n, kl, ku, |_, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.2 + 0.111).fract();
                    m.set(i, j, v - 0.5);
                }
            }
        })
        .unwrap()
    }

    #[test]
    fn fused_traffic_prediction_is_exact() {
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku, batch) = (32usize, 2usize, 3usize, 4usize);
        let mut a = random_batch(batch, n, kl, ku);
        let l = a.layout();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = crate::fused::gbtrf_batch_fused(
            &dev,
            &mut a,
            &mut piv,
            &mut info,
            crate::fused::FusedParams {
                threads: 32,
                ..Default::default()
            },
        )
        .unwrap();
        let pred = predict_fused::<f64>(&l, 32);
        assert_eq!(rep.counters.global_read, pred.global_read * batch as u64);
        assert_eq!(rep.counters.global_write, pred.global_write * batch as u64);
    }

    #[test]
    fn window_traffic_prediction_is_exact() {
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku, nb, batch) = (48usize, 2usize, 3usize, 8usize, 3usize);
        let mut a = random_batch(batch, n, kl, ku);
        let l = a.layout();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = crate::window::gbtrf_batch_window(
            &dev,
            &mut a,
            &mut piv,
            &mut info,
            crate::window::WindowParams {
                nb,
                threads: 32,
                ..Default::default()
            },
        )
        .unwrap();
        let pred = predict_window::<f64>(&l, nb, 32);
        assert_eq!(rep.counters.global_read, pred.global_read * batch as u64);
        assert_eq!(rep.counters.global_write, pred.global_write * batch as u64);
    }

    #[test]
    fn predicted_cycles_upper_bound_actual() {
        // Worst-case pivoting assumption => predicted critical path must be
        // at least the recorded one, and not absurdly larger.
        let dev = DeviceSpec::h100_pcie();
        for (n, kl, ku) in [(32usize, 2usize, 3usize), (48, 10, 7)] {
            let batch = 3;
            let mut a = random_batch(batch, n, kl, ku);
            let l = a.layout();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let rep = crate::fused::gbtrf_batch_fused(
                &dev,
                &mut a,
                &mut piv,
                &mut info,
                crate::fused::FusedParams {
                    threads: 32,
                    ..Default::default()
                },
            )
            .unwrap();
            let pred = predict_fused::<f64>(&l, 32.min(dev.lds_lanes));
            assert!(
                pred.smem_elems >= rep.counters.smem_elems,
                "prediction must upper-bound"
            );
            assert!(
                pred.smem_elems <= 3.0 * rep.counters.smem_elems,
                "prediction too loose"
            );
            assert!(pred.syncs >= rep.counters.syncs);
        }
    }

    #[test]
    fn interleaved_predictions_are_exact() {
        // The interleaved kernels record structurally (mask-independent),
        // so the analytic model must reproduce the launch report *exactly*
        // — counters and modeled time — even with a partial tail chunk.
        use crate::interleaved::{
            gbtrf_batch_interleaved, gbtrs_batch_interleaved, interleave_launch, InterleavedParams,
        };
        use gbatch_core::batch::RhsBatch;
        use gbatch_core::interleaved::InterleavedBandBatch;
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku, batch, nrhs) = (20usize, 2usize, 3usize, 11usize, 2usize);
        let a = random_batch(batch, n, kl, ku);
        let l = a.layout();
        let params = InterleavedParams {
            lanes_per_block: 4, // chunks of 4, 4, 3
            threads: 32,
            ..Default::default()
        };
        let t = params.threads;

        let (mut ia, conv_rep) = interleave_launch(&dev, &a, params).unwrap();
        let conv_time = predict_interleaved_time::<f64>(&dev, batch, &params, 0, |lanes| {
            predict_interleave_pass::<f64>(&l, lanes, t)
        })
        .unwrap();
        assert_eq!(conv_time, conv_rep.time, "conversion time exact");

        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params).unwrap();
        let mut agg = KernelCounters::default();
        for lanes in [4usize, 4, 3] {
            agg.merge_wave(&predict_interleaved_factor::<f64>(&l, lanes, t, true));
        }
        assert_eq!(agg, rep.counters, "factor counters exact");
        let fsmem = crate::interleaved::factor_smem_bytes::<f64>(&l, 4) as u32;
        let time = predict_interleaved_time::<f64>(&dev, batch, &params, fsmem, |lanes| {
            predict_interleaved_factor::<f64>(&l, lanes, t, true)
        })
        .unwrap();
        assert_eq!(time, rep.time, "factor time exact");

        let mut rhs = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
            (id + i * 3 + c) as f64 * 0.01 + 0.5
        })
        .unwrap();
        let srep = gbtrs_batch_interleaved(&dev, &ia, &piv, &mut rhs, &info, params).unwrap();
        let mut sagg = KernelCounters::default();
        for lanes in [4usize, 4, 3] {
            sagg.merge_wave(&predict_interleaved_solve::<f64>(&l, nrhs, lanes, t, true));
        }
        assert_eq!(sagg, srep.counters, "solve counters exact");

        // Sanity on the exported batch type (prediction path does not
        // depend on the data): a fresh conversion agrees with from_batch.
        assert_eq!(InterleavedBandBatch::from_batch(&a).layout(), ia.layout());
    }

    #[test]
    fn streaming_predictions_are_exact() {
        // Same exactness claim for the streaming traffic mode: a band too
        // wide for the test device's 16 KiB shared memory drops both
        // kernels to per-primitive DRAM traffic, and the model follows.
        use crate::interleaved::{
            factor_mode, gbtrf_batch_interleaved, gbtrs_batch_interleaved, solve_mode,
            InterleavedParams, LaneTrafficMode,
        };
        use gbatch_core::batch::RhsBatch;
        use gbatch_core::interleaved::InterleavedBandBatch;
        let dev = DeviceSpec::test_device();
        let (n, kl, ku, batch, nrhs) = (64usize, 12usize, 12usize, 6usize, 16usize);
        let a = random_batch(batch, n, kl, ku);
        let l = a.layout();
        let params = InterleavedParams {
            lanes_per_block: 4, // chunks of 4, 2
            threads: 32,
            ..Default::default()
        };
        let t = params.threads;
        assert_eq!(factor_mode::<f64>(&dev, &l, 4), LaneTrafficMode::Streaming);
        assert_eq!(
            solve_mode::<f64>(&dev, &l, nrhs, 4),
            LaneTrafficMode::Streaming
        );

        let mut ia = InterleavedBandBatch::from_batch(&a);
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params).unwrap();
        let mut agg = KernelCounters::default();
        for lanes in [4usize, 2] {
            agg.merge_wave(&predict_interleaved_factor::<f64>(&l, lanes, t, false));
        }
        assert_eq!(agg, rep.counters, "streaming factor counters exact");
        let time = predict_interleaved_time::<f64>(&dev, batch, &params, 0, |lanes| {
            predict_interleaved_factor::<f64>(&l, lanes, t, false)
        })
        .unwrap();
        assert_eq!(time, rep.time, "streaming factor time exact");

        let mut rhs = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
            (id + i * 3 + c) as f64 * 0.01 + 0.5
        })
        .unwrap();
        let srep = gbtrs_batch_interleaved(&dev, &ia, &piv, &mut rhs, &info, params).unwrap();
        let mut sagg = KernelCounters::default();
        for lanes in [4usize, 2] {
            sagg.merge_wave(&predict_interleaved_solve::<f64>(&l, nrhs, lanes, t, false));
        }
        assert_eq!(sagg, srep.counters, "streaming solve counters exact");
    }

    #[test]
    fn crossover_has_three_regimes() {
        // The layout dimension of the §5.4 selection logic has three
        // regimes on the calibration grid:
        //
        // 1. small n, large batch, *native* interleaved storage: the fused
        //    kernel pays 3 barriers per column, the interleaved kernel pays
        //    none — interleaved wins (this is the Gloster et al. regime the
        //    bench measures on native layouts);
        // 2. mid-size bands, column-major API: the pack/unpack conversion
        //    (~3x the once-through traffic plus two extra launches) hands
        //    the win back to the sliding window;
        // 3. very wide bands: no column-major kernel fits shared memory, so
        //    the column path is the 2n+1-launch reference fallback, and
        //    streaming interleaved wins *despite* paying the conversion.
        let dev = DeviceSpec::h100_pcie();

        // Regime 1: native layouts, no conversion priced.
        let native = CrossoverModel {
            include_conversion: false,
            ..Default::default()
        };
        let small = BandLayout::factor(16, 16, 1, 1).unwrap();
        let params = InterleavedParams::auto(&dev, &small, 0);
        let fused_cfg = LaunchConfig::new(32, (small.len() * 8) as u32);
        let column =
            predict_time(&dev, &fused_cfg, 10_000, &predict_fused::<f64>(&small, 32)).unwrap();
        let inter = native
            .interleaved_time::<f64>(&dev, &small, 10_000, 0, &params)
            .unwrap();
        assert!(
            native.interleaved_wins(inter, column),
            "batch=10000 n=16 tridiagonal (native): interleaved {:.1}us should beat fused {:.1}us",
            inter.us(),
            column.us()
        );

        // Regime 2: conversion included, mid-size band at large batch —
        // the sliding window wins. Its per-block barrier/LDS latency is
        // paid once per occupancy wave, so it amortizes across a full
        // device, while the interleaved side keeps paying the ~3x
        // conversion traffic per matrix.
        let model = CrossoverModel::default();
        let big = BandLayout::factor(512, 512, 8, 8).unwrap();
        let params_big = InterleavedParams::auto(&dev, &big, 0);
        let wide_cfg = LaunchConfig::new(
            128,
            crate::window::window_smem_bytes::<f64>(&big, 16) as u32,
        );
        let column_big =
            predict_time(&dev, &wide_cfg, 4000, &predict_window::<f64>(&big, 16, 128)).unwrap();
        let inter_big = model
            .interleaved_time::<f64>(&dev, &big, 4000, 0, &params_big)
            .unwrap();
        assert!(
            !model.interleaved_wins(inter_big, column_big),
            "batch=4000 n=512 kl=ku=8: window {:.1}us should beat interleaved {:.1}us",
            column_big.us(),
            inter_big.us()
        );
        // ... and regime 2 also holds at the small-n point: through the
        // column-major API the conversion eats the native win there.
        let inter_conv = model
            .interleaved_time::<f64>(&dev, &small, 10_000, 0, &params)
            .unwrap();
        assert!(
            !model.interleaved_wins(inter_conv, column),
            "batch=10000 n=16 with conversion: fused {:.1}us should beat interleaved {:.1}us",
            column.us(),
            inter_conv.us()
        );

        // Regime 3: band too wide for any column-major kernel (fused and
        // window both exceed shared memory), so the column side is the
        // reference fallback paying 2n+1 launch overheads — which never
        // amortize over a small batch. Streaming interleaved (one launch)
        // wins despite the conversion and its ~3x per-primitive traffic.
        let huge = BandLayout::factor(512, 512, 200, 200).unwrap();
        let fused_huge = LaunchConfig::new(
            128,
            crate::fused::fused_smem_bytes::<f64>(huge.ldab, huge.n) as u32,
        );
        assert!(gbatch_gpu_sim::engine::validate(&dev, &fused_huge).is_err());
        let window_huge = LaunchConfig::new(
            128,
            crate::window::window_smem_bytes::<f64>(&huge, 1) as u32,
        );
        assert!(gbatch_gpu_sim::engine::validate(&dev, &window_huge).is_err());
        let params_huge = InterleavedParams::auto(&dev, &huge, 0);
        let inter_huge = model
            .interleaved_time::<f64>(&dev, &huge, 4, 0, &params_huge)
            .unwrap();
        let reference_floor = predict_reference_floor::<f64>(&dev, &huge, 4);
        assert!(
            model.interleaved_wins(inter_huge, reference_floor),
            "batch=4 n=512 kl=ku=200: streaming interleaved {:.1}us should beat the \
             reference floor {:.1}us",
            inter_huge.us(),
            reference_floor.us()
        );
        // At large batch the traffic term takes over and the ranking flips
        // back — the crossover model sees both sides of the regime.
        let inter_many = model
            .interleaved_time::<f64>(&dev, &huge, 256, 0, &params_huge)
            .unwrap();
        let floor_many = predict_reference_floor::<f64>(&dev, &huge, 256);
        assert!(
            !model.interleaved_wins(inter_many, floor_many),
            "batch=256 n=512 kl=ku=200: the reference floor {:.1}us should beat \
             streaming interleaved {:.1}us",
            floor_many.us(),
            inter_many.us()
        );
    }

    #[test]
    fn predict_time_rejects_impossible_configs() {
        let dev = DeviceSpec::mi250x_gcd();
        let c = KernelCounters::default();
        let bad = LaunchConfig::new(32, dev.max_smem_per_block + 1);
        assert!(predict_time(&dev, &bad, 10, &c).is_none());
        let ok = LaunchConfig::new(32, 1024);
        assert!(predict_time(&dev, &ok, 10, &c).is_some());
    }

    #[test]
    fn window_cost_grows_linearly_with_n() {
        let l1 = BandLayout::factor(256, 256, 2, 3).unwrap();
        let l2 = BandLayout::factor(512, 512, 2, 3).unwrap();
        let c1 = predict_window::<f64>(&l1, 8, 32);
        let c2 = predict_window::<f64>(&l2, 8, 32);
        let r = c2.smem_elems / c1.smem_elems;
        assert!(
            (r - 2.0).abs() < 0.15,
            "smem work should scale ~linearly, got {r:.2}"
        );
        let rt = c2.global_bytes() as f64 / c1.global_bytes() as f64;
        assert!(
            (rt - 2.0).abs() < 0.15,
            "traffic should scale ~linearly, got {rt:.2}"
        );
    }
}
