//! Analytic cost prediction (dry-run counters) for the factorization
//! kernels.
//!
//! The offline tuner (paper §5.3: "a benchmark sweep ... fed to a
//! post-processing phase that extracts the best tuning parameters") needs
//! kernel costs for hundreds of `(kl, ku, nb, threads)` combinations; this
//! module predicts the per-block counters *without executing numerics*,
//! assuming worst-case pivoting (`jp = kl`, so every column updates the
//! full `kv + 1`-column window). Global traffic predictions are exact;
//! critical-path cycles are an upper bound on what the executing kernels
//! record.

use gbatch_core::layout::BandLayout;
use gbatch_gpu_sim::{DeviceSpec, KernelCounters, LaunchConfig};

#[inline]
fn frac(a: usize, t: usize) -> f64 {
    a as f64 / t as f64
}

/// Worst-case per-column factorization cost, matching the recording calls
/// of [`crate::step::smem_column_step`] one for one.
fn column_cost(l: &BandLayout, j: usize, threads: usize, c: &mut KernelCounters) {
    let n = l.n;
    let kv = l.kv();
    let km = l.km(j);
    // SET_FILLIN
    if j + kv < n {
        c.smem_elems += frac(l.kl, threads);
    }
    // IAMAX + winner broadcast + barrier
    c.smem_elems += frac(km + 1, threads);
    c.smem_trips += 1;
    c.syncs += 1;
    // Worst-case update reach.
    let ju = (j + kv).min(n - 1);
    let w = ju - j;
    // SWAP (assume a pivot interchange every column)
    if km > 0 {
        c.smem_elems += frac(w + 1, threads);
    }
    c.syncs += 1;
    if km > 0 {
        // SCAL
        c.smem_elems += frac(km, threads);
        c.flops += km as u64;
        c.smem_trips += 1;
        // RANK-1 UPDATE
        if w > 0 {
            c.smem_elems += frac(w * km, threads);
            c.flops += (2 * w * km) as u64;
        }
        c.syncs += 1;
    }
}

/// Predicted per-block counters of the fully fused kernel (§5.2).
/// `lanes` is the effective shared-memory parallelism:
/// `min(threads, device.lds_lanes)`.
pub fn predict_fused(l: &BandLayout, lanes: u32) -> KernelCounters {
    let t = lanes as usize;
    let mut c = KernelCounters::default();
    let bytes = l.len() * 8;
    c.global_read += bytes as u64;
    c.syncs += 1;
    for j in 0..l.m.min(l.n) {
        column_cost(l, j, t, &mut c);
    }
    c.global_write += (bytes + l.m.min(l.n) * 4) as u64;
    c.syncs += 1;
    c
}

/// Predicted per-block counters of the sliding-window kernel (§5.3).
/// `lanes` is the effective shared-memory parallelism:
/// `min(threads, device.lds_lanes)`.
pub fn predict_window(l: &BandLayout, nb: usize, lanes: u32) -> KernelCounters {
    let t = lanes as usize;
    let ldab = l.ldab;
    let n = l.n;
    let kmin = l.m.min(n);
    let wcols = crate::window::window_cols(l.kl, l.ku, nb).min(n);
    let mut c = KernelCounters::default();

    // Initial load.
    let mut loaded_end = wcols.min(n);
    c.global_read += (loaded_end * ldab * 8) as u64;
    c.syncs += 1;

    let mut j0 = 0usize;
    while j0 < kmin {
        let jb = nb.min(kmin - j0);
        for j in j0..j0 + jb {
            column_cost(l, j, t, &mut c);
        }
        // Store the factored block.
        c.global_write += (jb * ldab * 8) as u64;
        c.syncs += 1;
        let next_j0 = j0 + jb;
        if next_j0 >= kmin {
            if loaded_end > next_j0 {
                c.global_write += ((loaded_end - next_j0) * ldab * 8) as u64;
            }
            break;
        }
        // Shift + tail load.
        let keep = loaded_end - next_j0;
        c.smem_elems += frac(keep * ldab, t);
        c.syncs += 1;
        let new_end = (next_j0 + wcols).min(n);
        if new_end > loaded_end {
            c.global_read += ((new_end - loaded_end) * ldab * 8) as u64;
            loaded_end = new_end;
        }
        c.syncs += 1;
        j0 = next_j0;
    }
    c.global_write += (kmin * 4) as u64; // pivots
    c
}

/// Predicted per-block counters of the blocked forward+backward solve
/// (`gbtrs_batch_blocked`), single launch pair combined. `lanes` is
/// `min(threads, device.lds_lanes)`.
pub fn predict_gbtrs_blocked(l: &BandLayout, nb: usize, nrhs: usize, lanes: u32) -> KernelCounters {
    let t = lanes as usize;
    let n = l.n;
    let kv = l.kv();
    let kl = l.kl;
    let mut c = KernelCounters::default();

    // ---- forward sweep (skipped when kl == 0) ----
    if kl > 0 && n > 1 {
        let cache_rows = (nb + kl).min(n);
        c.global_read += (cache_rows.min(n) * nrhs * 8) as u64;
        c.syncs += 1;
        let mut j0 = 0usize;
        let mut loaded = cache_rows.min(n);
        while j0 < n {
            let jb = nb.min(n - j0);
            for j in j0..j0 + jb {
                if j >= n - 1 {
                    break;
                }
                let lm = kl.min(n - 1 - j);
                c.smem_elems += frac(nrhs, t); // pivot swap (worst case)
                if lm > 0 {
                    c.global_read += (lm * 8) as u64;
                    c.smem_elems += frac(nrhs * lm, t);
                    c.flops += (2 * nrhs * lm) as u64;
                }
                c.syncs += 1;
            }
            c.global_write += (jb * nrhs * 8) as u64;
            let next_j0 = j0 + jb;
            if next_j0 >= n {
                break;
            }
            let keep = loaded - next_j0;
            c.smem_elems += frac(keep * nrhs, t);
            let new_end = (next_j0 + cache_rows).min(n);
            if new_end > loaded {
                c.global_read += ((new_end - loaded) * nrhs * 8) as u64;
                loaded = new_end;
            }
            c.syncs += 1;
            j0 = next_j0;
        }
    }

    // ---- backward sweep ----
    let cache_rows = (nb + kv).min(n);
    c.global_read += (cache_rows.min(n) * nrhs * 8) as u64;
    c.syncs += 1;
    let mut j1 = n;
    while j1 > 0 {
        let jb = nb.min(j1);
        let j0 = j1 - jb;
        for j in (j0..j1).rev() {
            let reach = kv.min(j);
            c.global_read += ((reach + 1) * 8) as u64;
            c.smem_elems += frac(nrhs * (reach + 1), t);
            c.flops += (2 * nrhs * (reach + 1)) as u64;
            c.syncs += 1;
        }
        c.global_write += (jb * nrhs * 8) as u64;
        if j0 == 0 {
            break;
        }
        let keep = jb.min(cache_rows);
        c.smem_elems += frac(keep * nrhs, t);
        c.global_read += (nb.min(j0) * nrhs * 8) as u64;
        c.syncs += 1;
        j1 = j0;
    }
    c
}

/// Predicted modeled time of a batched launch of either factorization
/// kernel: validates the configuration and prices the launch exactly as the
/// engine would. Returns `None` when the launch cannot run (shared memory).
pub fn predict_time(
    dev: &DeviceSpec,
    cfg: &LaunchConfig,
    batch: usize,
    per_block: &KernelCounters,
) -> Option<gbatch_gpu_sim::SimTime> {
    let occ = gbatch_gpu_sim::engine::validate(dev, cfg).ok()?;
    Some(gbatch_gpu_sim::timing::estimate(
        dev, &occ, batch, per_block,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch};
    use gbatch_gpu_sim::DeviceSpec;

    fn random_batch(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
        let mut v = 0.37f64;
        BandBatch::from_fn(batch, n, n, kl, ku, |_, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.2 + 0.111).fract();
                    m.set(i, j, v - 0.5);
                }
            }
        })
        .unwrap()
    }

    #[test]
    fn fused_traffic_prediction_is_exact() {
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku, batch) = (32usize, 2usize, 3usize, 4usize);
        let mut a = random_batch(batch, n, kl, ku);
        let l = a.layout();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = crate::fused::gbtrf_batch_fused(
            &dev,
            &mut a,
            &mut piv,
            &mut info,
            crate::fused::FusedParams {
                threads: 32,
                ..Default::default()
            },
        )
        .unwrap();
        let pred = predict_fused(&l, 32);
        assert_eq!(rep.counters.global_read, pred.global_read * batch as u64);
        assert_eq!(rep.counters.global_write, pred.global_write * batch as u64);
    }

    #[test]
    fn window_traffic_prediction_is_exact() {
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku, nb, batch) = (48usize, 2usize, 3usize, 8usize, 3usize);
        let mut a = random_batch(batch, n, kl, ku);
        let l = a.layout();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = crate::window::gbtrf_batch_window(
            &dev,
            &mut a,
            &mut piv,
            &mut info,
            crate::window::WindowParams {
                nb,
                threads: 32,
                ..Default::default()
            },
        )
        .unwrap();
        let pred = predict_window(&l, nb, 32);
        assert_eq!(rep.counters.global_read, pred.global_read * batch as u64);
        assert_eq!(rep.counters.global_write, pred.global_write * batch as u64);
    }

    #[test]
    fn predicted_cycles_upper_bound_actual() {
        // Worst-case pivoting assumption => predicted critical path must be
        // at least the recorded one, and not absurdly larger.
        let dev = DeviceSpec::h100_pcie();
        for (n, kl, ku) in [(32usize, 2usize, 3usize), (48, 10, 7)] {
            let batch = 3;
            let mut a = random_batch(batch, n, kl, ku);
            let l = a.layout();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let rep = crate::fused::gbtrf_batch_fused(
                &dev,
                &mut a,
                &mut piv,
                &mut info,
                crate::fused::FusedParams {
                    threads: 32,
                    ..Default::default()
                },
            )
            .unwrap();
            let pred = predict_fused(&l, 32.min(dev.lds_lanes));
            assert!(
                pred.smem_elems >= rep.counters.smem_elems,
                "prediction must upper-bound"
            );
            assert!(
                pred.smem_elems <= 3.0 * rep.counters.smem_elems,
                "prediction too loose"
            );
            assert!(pred.syncs >= rep.counters.syncs);
        }
    }

    #[test]
    fn predict_time_rejects_impossible_configs() {
        let dev = DeviceSpec::mi250x_gcd();
        let c = KernelCounters::default();
        let bad = LaunchConfig::new(32, dev.max_smem_per_block + 1);
        assert!(predict_time(&dev, &bad, 10, &c).is_none());
        let ok = LaunchConfig::new(32, 1024);
        assert!(predict_time(&dev, &ok, 10, &c).is_some());
    }

    #[test]
    fn window_cost_grows_linearly_with_n() {
        let l1 = BandLayout::factor(256, 256, 2, 3).unwrap();
        let l2 = BandLayout::factor(512, 512, 2, 3).unwrap();
        let c1 = predict_window(&l1, 8, 32);
        let c2 = predict_window(&l2, 8, 32);
        let r = c2.smem_elems / c1.smem_elems;
        assert!(
            (r - 2.0).abs() < 0.15,
            "smem work should scale ~linearly, got {r:.2}"
        );
        let rt = c2.global_bytes() as f64 / c1.global_bytes() as f64;
        assert!(
            (rt - 2.0).abs() < 0.15,
            "traffic should scale ~linearly, got {rt:.2}"
        );
    }
}
