//! Batched tridiagonal solve by parallel cyclic reduction (PCR).
//!
//! The paper's §8 diagnosis is that "band matrices do not have sufficient
//! parallelism within a single problem" — every design in the paper
//! processes columns *sequentially* and extracts parallelism across the
//! batch only. For the narrowest band (`kl = ku = 1`) there is a classic
//! counterexample: cyclic reduction exposes `n/2` independent eliminations
//! per step and finishes in `ceil(log2 n)` steps, turning the per-matrix
//! critical path from `O(n)` into `O(log n)`.
//!
//! PCR does not pivot, so it is restricted to diagonally dominant (or
//! otherwise pivot-free) systems — exactly the implicit-integrator
//! matrices `I - gamma*J` of the SUNDIALS workload (§2.3). The dispatch
//! contract: use [`pcr_solve_batch`] when
//! [`is_diagonally_dominant`] holds, fall back to the pivoted band LU
//! otherwise.

use gbatch_core::batch::RhsBatch;
use gbatch_gpu_sim::{launch, DeviceSpec, LaunchConfig, LaunchError, LaunchReport};

/// A uniform batch of tridiagonal systems stored as three diagonals
/// (`lower[0]` and `upper[n-1]` are unused).
#[derive(Debug, Clone, PartialEq)]
pub struct TridiagBatch {
    n: usize,
    batch: usize,
    /// Sub-diagonal, `n` entries per system (`lower[0] = 0`).
    pub lower: Vec<f64>,
    /// Diagonal, `n` entries per system.
    pub diag: Vec<f64>,
    /// Super-diagonal, `n` entries per system (`upper[n-1] = 0`).
    pub upper: Vec<f64>,
}

impl TridiagBatch {
    /// Build from closures `(id, i) -> value`.
    pub fn from_fn(
        batch: usize,
        n: usize,
        mut lo: impl FnMut(usize, usize) -> f64,
        mut d: impl FnMut(usize, usize) -> f64,
        mut up: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut lower = vec![0.0; batch * n];
        let mut diag = vec![0.0; batch * n];
        let mut upper = vec![0.0; batch * n];
        for id in 0..batch {
            for i in 0..n {
                if i > 0 {
                    lower[id * n + i] = lo(id, i);
                }
                diag[id * n + i] = d(id, i);
                if i + 1 < n {
                    upper[id * n + i] = up(id, i);
                }
            }
        }
        TridiagBatch {
            n,
            batch,
            lower,
            diag,
            upper,
        }
    }

    /// System order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of systems.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// `y = A x` for system `id` (test/residual helper).
    pub fn matvec(&self, id: usize, x: &[f64], y: &mut [f64]) {
        let n = self.n;
        let (lo, d, up) = (
            &self.lower[id * n..],
            &self.diag[id * n..],
            &self.upper[id * n..],
        );
        for i in 0..n {
            let mut acc = d[i] * x[i];
            if i > 0 {
                acc += lo[i] * x[i - 1];
            }
            if i + 1 < n {
                acc += up[i] * x[i + 1];
            }
            y[i] = acc;
        }
    }

    /// Row-wise diagonal dominance check for system `id` (the PCR safety
    /// condition).
    pub fn is_diagonally_dominant(&self, id: usize) -> bool {
        let n = self.n;
        (0..n).all(|i| {
            let off = self.lower[id * n + i].abs() + self.upper[id * n + i].abs();
            self.diag[id * n + i].abs() >= off
        })
    }
}

/// Shared bytes of the PCR kernel: three diagonals + RHS, double buffered.
pub fn pcr_smem_bytes(n: usize) -> usize {
    2 * 4 * n * 8
}

/// Batched PCR solve: one block per system, `ceil(log2 n)` elimination
/// steps, each fully parallel over the `n` equations. Overwrites `rhs`
/// with the solutions.
///
/// The cost recording shows PCR's trade: `O(n log n)` total work (more
/// flops than the Thomas/LU `O(n)`) for an `O(log n)` critical path —
/// the classic latency-for-work exchange the paper's LU kernels cannot
/// make because of pivoting.
pub fn pcr_solve_batch(
    dev: &DeviceSpec,
    a: &TridiagBatch,
    rhs: &mut RhsBatch,
    threads: u32,
) -> Result<LaunchReport, LaunchError> {
    let n = a.n();
    let batch = a.batch();
    assert_eq!(rhs.batch(), batch);
    assert_eq!(rhs.n(), n);
    assert_eq!(rhs.nrhs(), 1, "PCR kernel targets single-RHS batches");
    let cfg = LaunchConfig::new(threads, pcr_smem_bytes(n) as u32).with_label("pcr_solve");

    struct Prob<'a> {
        lo: &'a [f64],
        d: &'a [f64],
        up: &'a [f64],
        b: &'a mut [f64],
    }
    let mut probs: Vec<Prob<'_>> = rhs
        .blocks_mut()
        .enumerate()
        .map(|(id, b)| Prob {
            lo: &a.lower[id * n..(id + 1) * n],
            d: &a.diag[id * n..(id + 1) * n],
            up: &a.upper[id * n..(id + 1) * n],
            b,
        })
        .collect();

    launch(dev, &cfg, &mut probs, |p, ctx| {
        let off = ctx.smem.alloc(2 * 4 * n);
        let mut lo = p.lo.to_vec();
        let mut d = p.d.to_vec();
        let mut up = p.up.to_vec();
        let mut b = p.b[..n].to_vec();
        ctx.gld(4 * n * 8);
        ctx.sync();

        let mut stride = 1usize;
        while stride < n {
            let mut nlo = vec![0.0; n];
            let mut nd = vec![0.0; n];
            let mut nup = vec![0.0; n];
            let mut nb = vec![0.0; n];
            for i in 0..n {
                // Eliminate neighbours at distance `stride`.
                let (mut l2, mut d2, mut u2, mut b2) = (0.0, d[i], 0.0, b[i]);
                if i >= stride {
                    let k = i - stride;
                    let alpha = -lo[i] / d[k];
                    d2 += alpha * up[k];
                    l2 = alpha * lo[k];
                    b2 += alpha * b[k];
                }
                if i + stride < n {
                    let k = i + stride;
                    let beta = -up[i] / d[k];
                    d2 += beta * lo[k];
                    u2 = beta * up[k];
                    b2 += beta * b[k];
                }
                nlo[i] = l2;
                nd[i] = d2;
                nup[i] = u2;
                nb[i] = b2;
            }
            lo = nlo;
            d = nd;
            up = nup;
            b = nb;
            // One fully-parallel step: n equations, ~12 flops each.
            ctx.smem_work(n, 12);
            ctx.sync();
            stride *= 2;
        }
        for i in 0..n {
            b[i] /= d[i];
        }
        ctx.smem_work(n, 1);
        p.b[..n].copy_from_slice(&b);
        ctx.gst(n * 8);
        ctx.sync();
        let _ = off;
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch};

    fn dominant(batch: usize, n: usize) -> TridiagBatch {
        let mut v = 0.37f64;
        let mut next = move || {
            v = (v * 2.1 + 0.13).fract();
            v - 0.5
        };
        let offs: Vec<f64> = (0..2 * batch * n).map(|_| next()).collect();
        TridiagBatch::from_fn(
            batch,
            n,
            |id, i| offs[id * n + i],
            |_, _| 3.0,
            |id, i| offs[batch * n + id * n + i],
        )
    }

    #[test]
    fn pcr_solves_dominant_batches() {
        let dev = DeviceSpec::h100_pcie();
        for n in [2usize, 3, 7, 16, 33, 128, 193] {
            let batch = 4;
            let a = dominant(batch, n);
            assert!((0..batch).all(|id| a.is_diagonally_dominant(id)));
            let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).sin()).collect();
            let mut rhs = RhsBatch::zeros(batch, n, 1).unwrap();
            for id in 0..batch {
                let mut y = vec![0.0; n];
                a.matvec(id, &x_true, &mut y);
                rhs.block_mut(id).copy_from_slice(&y);
            }
            let _ = pcr_solve_batch(&dev, &a, &mut rhs, 64).unwrap();
            for id in 0..batch {
                for i in 0..n {
                    let err = (rhs.block(id)[i] - x_true[i]).abs();
                    assert!(err < 1e-10, "n={n} id={id} row {i}: err {err:.2e}");
                }
            }
        }
    }

    #[test]
    fn pcr_matches_band_lu_solutions() {
        let dev = DeviceSpec::h100_pcie();
        let (batch, n) = (3usize, 64usize);
        let a = dominant(batch, n);
        let mut rhs =
            RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id + i) as f64 * 0.17).cos()).unwrap();
        let rhs0 = rhs.clone();
        let _ = pcr_solve_batch(&dev, &a, &mut rhs, 64).unwrap();

        // Same systems through the pivoted band LU.
        let mut g = BandBatch::from_fn(batch, n, n, 1, 1, |id, m| {
            for i in 0..n {
                m.set(i, i, a.diag[id * n + i]);
                if i > 0 {
                    m.set(i, i - 1, a.lower[id * n + i]);
                }
                if i + 1 < n {
                    m.set(i, i + 1, a.upper[id * n + i]);
                }
            }
        })
        .unwrap();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let mut b2 = rhs0.clone();
        let _ = crate::dispatch::dgbsv_batch(
            &dev,
            &mut g,
            &mut piv,
            &mut b2,
            &mut info,
            &crate::dispatch::GbsvOptions::default(),
        )
        .unwrap();
        for id in 0..batch {
            for i in 0..n {
                let (x1, x2) = (rhs.block(id)[i], b2.block(id)[i]);
                assert!((x1 - x2).abs() < 1e-10, "id={id} row {i}: {x1} vs {x2}");
            }
        }
    }

    #[test]
    fn log_depth_critical_path_beats_lu_for_large_n() {
        // PCR's modeled critical path is O(log n) vs the LU kernels' O(n):
        // for large single-wave batches PCR must win despite doing more
        // total work.
        let dev = DeviceSpec::h100_pcie();
        let (batch, n) = (100usize, 1024usize);
        let a = dominant(batch, n);
        let mut rhs =
            RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id + i) as f64 * 0.11).sin()).unwrap();
        let pcr = pcr_solve_batch(&dev, &a, &mut rhs, 256).unwrap();

        let mut g = BandBatch::from_fn(batch, n, n, 1, 1, |id, m| {
            for i in 0..n {
                m.set(i, i, a.diag[id * n + i]);
                if i > 0 {
                    m.set(i, i - 1, a.lower[id * n + i]);
                }
                if i + 1 < n {
                    m.set(i, i + 1, a.upper[id * n + i]);
                }
            }
        })
        .unwrap();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let mut b2 = rhs.clone();
        // Pin the column-major layout: the claim is about the O(n)
        // sequential-column designs (the batch-major interleaved LU has no
        // per-column barriers and is itself competitive with PCR here).
        let lu = crate::dispatch::dgbsv_batch(
            &dev,
            &mut g,
            &mut piv,
            &mut b2,
            &mut info,
            &crate::dispatch::GbsvOptions {
                layout: crate::dispatch::MatrixLayout::ColumnMajor,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            pcr.time.secs() < lu.time.secs() / 4.0,
            "PCR {:.3e}s should crush the sequential-column LU {:.3e}s at n=1024",
            pcr.time.secs(),
            lu.time.secs()
        );
    }

    #[test]
    fn dominance_check_flags_bad_rows() {
        let a = TridiagBatch::from_fn(1, 4, |_, _| 2.0, |_, _| 1.0, |_, _| 2.0);
        assert!(!a.is_diagonally_dominant(0));
        let b = TridiagBatch::from_fn(1, 4, |_, _| 1.0, |_, _| 3.0, |_, _| 1.0);
        assert!(b.is_diagonally_dominant(0));
    }
}
