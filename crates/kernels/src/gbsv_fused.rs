//! Fully fused batched factorize-and-solve (paper Section 7).
//!
//! For small systems a single kernel performs the band LU on the augmented
//! system `[A|B]` in shared memory: applying each column's pivot swap and
//! rank-1 update to `B` as soon as the column is factored implicitly
//! performs the forward triangular solve; the backward solve then runs in
//! shared memory as well, and each matrix plus its RHS moves through global
//! memory exactly once. Following the paper's empirical cutoff, the
//! dispatch layer enables this kernel for systems of order 64 or less with
//! a single right-hand side; the kernel itself supports any `nrhs`.
//!
//! Numerically identical (bit-for-bit) to the separate factorization and
//! solve, because the forward updates use exactly the values the separate
//! `GBTRS` would read.

use crate::step::{smem_bytes_for_cols, smem_column_step, smem_fillin_prologue, SmemBand};
use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch_core::gbtf2::ColumnStepState;
use gbatch_core::layout::BandLayout;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::{launch, DeviceSpec, LaunchConfig, LaunchError, LaunchReport, ParallelPolicy};

/// System-order cutoff below which the dispatch layer uses this kernel
/// ("we enable the fused kernel for systems of order 64 or less, and for a
/// single right hand side" — paper §7).
pub const FUSED_GBSV_MAX_N: usize = 64;

/// Shared bytes for the augmented system `[A|B]` in `S` elements.
///
/// The band and RHS are two distinct allocations, and the simulated arena
/// hands out whole 8-byte grains per allocation — so each component is
/// aligned up to the grain here. For `f64` both terms are already
/// grain-multiples and the formula is unchanged.
pub fn gbsv_smem_bytes<S: Scalar>(l: &BandLayout, nrhs: usize) -> usize {
    let grain = std::mem::size_of::<f64>();
    smem_bytes_for_cols::<S>(l.ldab, l.n).div_ceil(grain) * grain
        + (l.n * nrhs * S::BYTES).div_ceil(grain) * grain
}

/// Batched fused `GBSV`: factorizes every matrix (factors and pivots are
/// returned, like `DGBSV`) and overwrites `rhs` with the solutions.
/// Matrices with a zero pivot get their `info` code set and their RHS is
/// left in the partially-updated state (the solve is not completed), like
/// LAPACK. `parallel` selects the host-side scheduling of the per-matrix
/// blocks (results are bitwise-identical for every policy).
pub fn gbsv_batch_fused<S: Scalar>(
    dev: &DeviceSpec,
    a: &mut BandBatch<S>,
    piv: &mut PivotBatch,
    rhs: &mut RhsBatch<S>,
    info: &mut InfoArray,
    threads: u32,
    parallel: ParallelPolicy,
) -> Result<LaunchReport, LaunchError> {
    let l = a.layout();
    assert_eq!(l.m, l.n, "gbsv requires square systems");
    let n = l.n;
    let batch = a.batch();
    assert_eq!(piv.batch(), batch);
    assert_eq!(rhs.batch(), batch);
    assert_eq!(rhs.n(), n);
    assert_eq!(info.len(), batch);
    let nrhs = rhs.nrhs();
    let ldb = rhs.ldb();
    let kv = l.kv();
    let kl = l.kl;

    let smem = gbsv_smem_bytes::<S>(&l, nrhs);
    let cfg = LaunchConfig::new(threads.max((kl + 1) as u32), smem as u32)
        .with_parallel(parallel)
        .with_label("gbsv_fused")
        .with_precision(crate::flop_class::<S>());

    struct Problem<'a, S> {
        ab: &'a mut [S],
        piv: &'a mut [i32],
        b: &'a mut [S],
        info: &'a mut i32,
    }
    let mut problems: Vec<Problem<'_, S>> = a
        .chunks_mut()
        .zip(piv.chunks_mut())
        .zip(rhs.blocks_mut())
        .zip(info.as_mut_slice().iter_mut())
        .map(|(((ab, piv), b), info)| Problem { ab, piv, b, info })
        .collect();

    launch(dev, &cfg, &mut problems, |p, ctx| {
        let band_len = l.len();
        let rhs_len = n * nrhs;
        let a_off = ctx.smem.alloc_scalar(band_len, S::BYTES);
        let b_off = ctx.smem.alloc_scalar(rhs_len, S::BYTES);

        // Load the augmented system.
        let mut band = p.ab.to_vec();
        let mut bx = vec![S::ZERO; rhs_len];
        for c in 0..nrhs {
            bx[c * n..(c + 1) * n].copy_from_slice(&p.b[c * ldb..c * ldb + n]);
        }
        if let Some(t) = ctx.smem.tracker() {
            t.striped_write(a_off, band_len, ctx.threads);
            t.striped_write(b_off, rhs_len, ctx.threads);
        }
        ctx.gld((band_len + rhs_len) * S::BYTES);
        ctx.sync();

        // Factorize, forward-solving B on the fly.
        let mut st = ColumnStepState::default();
        {
            let mut w = SmemBand {
                data: &mut band,
                ldab: l.ldab,
                col0: 0,
                width: n,
                provenance: Some(l),
            };
            smem_fillin_prologue(&l, &mut w, ctx);
            for j in 0..n {
                smem_column_step(&l, &mut w, p.piv, j, &mut st, ctx);
                if st.info != 0 && st.info as usize == j + 1 {
                    continue; // zero pivot: no forward update from this column
                }
                if j < n - 1 && kl > 0 {
                    // Forward step on B: swap + rank-1 with the multipliers.
                    let pr = p.piv[j] as usize;
                    if pr != j {
                        if let Some(t) = ctx.smem.tracker() {
                            // RHS column c is swapped entirely by lane c.
                            for c in 0..nrhs {
                                let lane = (c % ctx.threads as usize) as u32;
                                t.read(lane, b_off + c * n + pr);
                                t.read(lane, b_off + c * n + j);
                                t.write(lane, b_off + c * n + pr);
                                t.write(lane, b_off + c * n + j);
                            }
                        }
                        for c in 0..nrhs {
                            bx.swap(c * n + pr, c * n + j);
                        }
                        ctx.smem_work(nrhs, 0);
                        // The rank-1 update below broadcast-reads b[j],
                        // which the swap just wrote from another lane — on
                        // hardware the swap must drain first. `pr != j` is
                        // uniform across the block (one matrix per block),
                        // so the conditional barrier is legal.
                        ctx.sync();
                    }
                    let lm = kl.min(n - 1 - j);
                    if lm > 0 {
                        let base = w.idx(kv, j);
                        if let Some(t) = ctx.smem.tracker() {
                            for c in 0..nrhs {
                                // Every row lane needs the pivot RHS value;
                                // row j + i is updated by lane (i - 1) —
                                // the lane that scaled multiplier i, so the
                                // multiplier read stays lane-local.
                                t.broadcast_read(b_off + c * n + j);
                                if bx[c * n + j] != S::ZERO {
                                    t.striped_read(a_off + base + 1, lm, ctx.threads);
                                    t.striped_read(b_off + c * n + j + 1, lm, ctx.threads);
                                    t.striped_write(b_off + c * n + j + 1, lm, ctx.threads);
                                }
                            }
                        }
                        for c in 0..nrhs {
                            let bj = bx[c * n + j];
                            if bj == S::ZERO {
                                continue;
                            }
                            for i in 1..=lm {
                                bx[c * n + j + i] -= w.data[base + i] * bj;
                            }
                        }
                        ctx.smem_work(nrhs * lm, 2);
                    }
                    ctx.sync();
                }
            }
        }
        *p.info = st.info;

        // Backward solve in shared memory (skipped on singular systems,
        // like DGBSV).
        if st.info == 0 {
            if let Some(t) = ctx.smem.tracker() {
                // The backward recurrence is sequential in j but parallel
                // over right-hand sides: lane c owns RHS column c outright
                // (its reads and writes never cross lanes), and the factor
                // columns are shared read-only.
                for c in 0..nrhs {
                    let lane = (c % ctx.threads as usize) as u32;
                    t.range_read(lane, b_off + c * n, n);
                    t.range_write(lane, b_off + c * n, n);
                    t.range_read(lane, a_off, band_len);
                }
            }
            for c in 0..nrhs {
                for j in (0..n).rev() {
                    let bj = bx[c * n + j] / band[j * l.ldab + kv];
                    bx[c * n + j] = bj;
                    if bj != S::ZERO {
                        let reach = kv.min(j);
                        for i in 1..=reach {
                            bx[c * n + j - i] -= band[j * l.ldab + kv - i] * bj;
                        }
                    }
                }
            }
            ctx.smem_work(nrhs * n * (kv + 1), 2);
            ctx.seq_cycles(n as f64); // the column recurrence is sequential
            ctx.sync();
        }

        // Write everything back: factors, pivots, solution.
        p.ab.copy_from_slice(&band);
        for c in 0..nrhs {
            p.b[c * ldb..c * ldb + n].copy_from_slice(&bx[c * n..(c + 1) * n]);
        }
        if let Some(t) = ctx.smem.tracker() {
            t.striped_read(a_off, band_len, ctx.threads);
            t.striped_read(b_off, rhs_len, ctx.threads);
        }
        ctx.gst((band_len + rhs_len) * S::BYTES + n * 4);
        ctx.sync();
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::gbsv::gbsv;

    fn random_batch(batch: usize, n: usize, kl: usize, ku: usize) -> (BandBatch, RhsBatch) {
        let mut v = 0.71f64;
        let a = BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 3.3 + 0.019 + id as f64 * 7e-4).fract();
                    m.set(i, j, v - 0.5);
                }
            }
        })
        .unwrap();
        let b = RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id + i) as f64 * 0.37).sin()).unwrap();
        (a, b)
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn matches_separate_factor_and_solve_bitwise() {
        let dev = DeviceSpec::h100_pcie();
        for (n, kl, ku) in [(8, 2, 3), (32, 2, 3), (64, 10, 7), (16, 1, 0), (16, 0, 2)] {
            let batch = 4;
            let (mut a, mut b) = random_batch(batch, n, kl, ku);
            let expected: Vec<(Vec<f64>, Vec<i32>, Vec<f64>, i32)> = (0..batch)
                .map(|id| {
                    let mut ab = a.matrix(id).data.to_vec();
                    let mut p = vec![0i32; n];
                    let mut x = b.block(id).to_vec();
                    let info = gbsv(&a.layout(), &mut ab, &mut p, &mut x, n, 1);
                    (ab, p, x, info)
                })
                .collect();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let _ = gbsv_batch_fused(
                &dev,
                &mut a,
                &mut piv,
                &mut b,
                &mut info,
                32,
                ParallelPolicy::Serial,
            )
            .unwrap();
            for id in 0..batch {
                assert_eq!(
                    a.matrix(id).data,
                    &expected[id].0[..],
                    "factors n={n} kl={kl} ku={ku}"
                );
                assert_eq!(piv.pivots(id), &expected[id].1[..]);
                assert_eq!(
                    b.block(id),
                    &expected[id].2[..],
                    "solution n={n} kl={kl} ku={ku}"
                );
                assert_eq!(info.get(id), expected[id].3);
            }
        }
    }

    #[test]
    fn multiple_rhs_supported() {
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku, nrhs, batch) = (24, 2, 3, 5, 3);
        let (mut a, _) = random_batch(batch, n, kl, ku);
        let mut b = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
            ((id * 3 + c * 11 + i) as f64 * 0.21).cos()
        })
        .unwrap();
        let expected: Vec<Vec<f64>> = (0..batch)
            .map(|id| {
                let mut ab = a.matrix(id).data.to_vec();
                let mut p = vec![0i32; n];
                let mut x = b.block(id).to_vec();
                assert_eq!(gbsv(&a.layout(), &mut ab, &mut p, &mut x, n, nrhs), 0);
                x
            })
            .collect();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let _ = gbsv_batch_fused(
            &dev,
            &mut a,
            &mut piv,
            &mut b,
            &mut info,
            32,
            ParallelPolicy::Serial,
        )
        .unwrap();
        assert!(info.all_ok());
        for id in 0..batch {
            assert_eq!(b.block(id), &expected[id][..]);
        }
    }

    #[test]
    fn singular_system_skips_backward_solve() {
        let dev = DeviceSpec::h100_pcie();
        let n = 8;
        let (mut a, mut b) = random_batch(2, n, 1, 1);
        {
            let mut m = a.matrix_mut(0);
            m.set(0, 0, 0.0);
            m.set(1, 0, 0.0);
        }
        let mut piv = PivotBatch::new(2, n, n);
        let mut info = InfoArray::new(2);
        let _ = gbsv_batch_fused(
            &dev,
            &mut a,
            &mut piv,
            &mut b,
            &mut info,
            32,
            ParallelPolicy::Serial,
        )
        .unwrap();
        assert_eq!(info.get(0), 1);
        assert_eq!(info.get(1), 0);
    }

    #[test]
    fn smem_footprint_includes_rhs() {
        let l = BandLayout::factor(64, 64, 2, 3).unwrap();
        assert_eq!(gbsv_smem_bytes::<f64>(&l, 1), l.ldab * 64 * 8 + 64 * 8);
        assert_eq!(
            gbsv_smem_bytes::<f64>(&l, 10),
            l.ldab * 64 * 8 + 64 * 10 * 8
        );
        assert_eq!(
            gbsv_smem_bytes::<f32>(&l, 1),
            gbsv_smem_bytes::<f64>(&l, 1) / 2,
            "f32 halves the augmented footprint"
        );
    }
}
