//! Blocked batched band triangular solves (paper §6, Figure 6).
//!
//! One kernel per direction. At each iteration `nb` columns of the factor
//! are processed while a window of the RHS lives in shared memory:
//!
//! - **forward**: the solver caches `nb + kl` RHS rows — enough for all the
//!   pivot swaps (`ipiv[j] <= j + kl`) and rank-1 updates of the `nb`
//!   columns of `L`; finished rows are written back and the remainder is
//!   shifted up;
//! - **backward**: starts from the *last* `nb` columns of `U` with the
//!   bottom RHS rows cached; each iteration solves `nb` rows, updating up
//!   to `kv = kl + ku` rows above them (`nb + kv` cached), writes the
//!   solved rows back and shifts the remainder down.
//!
//! Numerically identical (bit-for-bit) to `gbatch_core::gbtrs::gbtrs`.

use gbatch_core::batch::{PivotBatch, RhsBatch};
use gbatch_core::layout::BandLayout;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::{
    launch, DeviceSpec, LaunchConfig, LaunchError, LaunchReport, ParallelPolicy, SimTime,
};

/// Tunables for the blocked solve kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveParams {
    /// Factor columns processed per window iteration.
    pub nb: usize,
    /// Threads per block (per matrix).
    pub threads: u32,
    /// Host scheduling of the per-matrix blocks (results are
    /// bitwise-identical for every policy).
    pub parallel: ParallelPolicy,
}

impl Default for SolveParams {
    fn default() -> Self {
        SolveParams {
            nb: 8,
            threads: 32,
            parallel: ParallelPolicy::Serial,
        }
    }
}

impl SolveParams {
    /// Defaults mirroring [`crate::window::WindowParams::auto`].
    pub fn auto(dev: &DeviceSpec, kl: usize) -> Self {
        let min = (kl + 1) as u32;
        SolveParams {
            nb: 8,
            threads: min.div_ceil(dev.warp_size) * dev.warp_size,
            ..Default::default()
        }
    }

    /// Builder: set the host scheduling policy.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Shared bytes for the forward RHS cache (`S` elements).
pub fn forward_smem_bytes<S: Scalar>(l: &BandLayout, nb: usize, nrhs: usize) -> usize {
    (nb + l.kl).min(l.n) * nrhs * S::BYTES
}

/// Shared bytes for the backward RHS cache (`S` elements).
pub fn backward_smem_bytes<S: Scalar>(l: &BandLayout, nb: usize, nrhs: usize) -> usize {
    (nb + l.kv()).min(l.n) * nrhs * S::BYTES
}

/// Combined report for the two blocked-solve launches.
#[derive(Debug, Clone)]
pub struct BlockedSolveReport {
    /// Forward launch (absent when `kl == 0`: `L` is the identity).
    pub forward: Option<LaunchReport>,
    /// Backward launch.
    pub backward: LaunchReport,
}

impl BlockedSolveReport {
    /// Total modeled time.
    pub fn time(&self) -> SimTime {
        let f = self
            .forward
            .as_ref()
            .map(|r| r.time)
            .unwrap_or(SimTime::ZERO);
        f + self.backward.time
    }
}

struct Prob<'a, S> {
    id: usize,
    b: &'a mut [S],
}

/// Batched blocked `GBTRS` (no transpose). `factors` holds the batch of
/// factored band arrays contiguously; `rhs` is overwritten with solutions.
pub fn gbtrs_batch_blocked<S: Scalar>(
    dev: &DeviceSpec,
    l: &BandLayout,
    factors: &[S],
    piv: &PivotBatch,
    rhs: &mut RhsBatch<S>,
    params: SolveParams,
) -> Result<BlockedSolveReport, LaunchError> {
    let n = l.n;
    assert_eq!(l.m, n, "gbtrs requires square factors");
    let batch = rhs.batch();
    assert_eq!(piv.batch(), batch);
    let stride = l.len();
    assert_eq!(factors.len(), stride * batch);
    assert!(params.nb > 0);
    let nrhs = rhs.nrhs();
    let ldb = rhs.ldb();
    let kv = l.kv();
    let kl = l.kl;
    let nb = params.nb;
    let threads = params.threads.max((kl + 1) as u32);

    // Hazard-model lane attribution for both solve directions: lane
    // `c % threads` owns RHS column `c` outright (cache column `c` is a
    // disjoint shared region, and the factor columns stay in registers),
    // so the solver is race-free with only the per-iteration barriers.
    let owner = move |c: usize| (c % threads as usize) as u32;

    // ---------------- forward ----------------
    let forward = if kl > 0 && n > 1 {
        let cfg = LaunchConfig::new(threads, forward_smem_bytes::<S>(l, nb, nrhs) as u32)
            .with_parallel(params.parallel)
            .with_label("gbtrs_forward")
            .with_precision(crate::flop_class::<S>());
        let cache_rows = (nb + kl).min(n);
        let mut probs: Vec<Prob<'_, S>> = rhs
            .blocks_mut()
            .enumerate()
            .map(|(id, b)| Prob { id, b })
            .collect();
        let rep = launch(dev, &cfg, &mut probs, |p, ctx| {
            let ab = &factors[p.id * stride..(p.id + 1) * stride];
            let ipiv = piv.pivots(p.id);
            let off = ctx.smem.alloc_scalar(cache_rows * nrhs, S::BYTES);
            let mut cache = vec![S::ZERO; cache_rows * nrhs];
            // Initial fill: rows [0, loaded).
            let mut loaded = cache_rows.min(n);
            for c in 0..nrhs {
                for r in 0..loaded {
                    cache[c * cache_rows + r] = p.b[c * ldb + r];
                }
            }
            if let Some(t) = ctx.smem.tracker() {
                for c in 0..nrhs {
                    t.range_write(owner(c), off + c * cache_rows, loaded);
                }
            }
            ctx.gld(loaded * nrhs * S::BYTES);
            ctx.sync();

            let mut j0 = 0usize;
            while j0 < n {
                let jb = nb.min(n - j0);
                for j in j0..j0 + jb {
                    if j >= n - 1 {
                        break; // the last row is never a forward pivot row
                    }
                    let pr = ipiv[j] as usize;
                    let (lj, lp) = (j - j0, pr - j0);
                    debug_assert!(lp < cache_rows, "pivot outside cache");
                    if pr != j {
                        if let Some(t) = ctx.smem.tracker() {
                            for c in 0..nrhs {
                                let (lane, colbase) = (owner(c), off + c * cache_rows);
                                t.read(lane, colbase + lj);
                                t.read(lane, colbase + lp);
                                t.write(lane, colbase + lj);
                                t.write(lane, colbase + lp);
                            }
                        }
                        for c in 0..nrhs {
                            cache.swap(c * cache_rows + lj, c * cache_rows + lp);
                        }
                        ctx.smem_work(nrhs, 0);
                    }
                    let lm = kl.min(n - 1 - j);
                    if lm > 0 {
                        let base = l.idx(kv, j);
                        ctx.gld(lm * S::BYTES); // the multiplier column (register file)
                        if let Some(t) = ctx.smem.tracker() {
                            // The swap above and this update touch the cache
                            // through the same owning lane, so no extra
                            // barrier is needed between them.
                            for c in 0..nrhs {
                                let (lane, colbase) = (owner(c), off + c * cache_rows);
                                t.read(lane, colbase + lj);
                                if cache[c * cache_rows + lj] != S::ZERO {
                                    t.range_read(lane, colbase + lj + 1, lm);
                                    t.range_write(lane, colbase + lj + 1, lm);
                                }
                            }
                        }
                        for c in 0..nrhs {
                            let bj = cache[c * cache_rows + lj];
                            if bj == S::ZERO {
                                continue;
                            }
                            for i in 1..=lm {
                                cache[c * cache_rows + lj + i] -= ab[base + i] * bj;
                            }
                        }
                        ctx.smem_work(nrhs * lm, 2);
                    }
                    ctx.sync();
                }
                // Write the finished top jb rows back.
                if let Some(t) = ctx.smem.tracker() {
                    for c in 0..nrhs {
                        t.range_read(owner(c), off + c * cache_rows, jb);
                    }
                }
                for c in 0..nrhs {
                    for r in 0..jb {
                        p.b[c * ldb + j0 + r] = cache[c * cache_rows + r];
                    }
                }
                ctx.gst(jb * nrhs * S::BYTES);
                let next_j0 = j0 + jb;
                if next_j0 >= n {
                    break;
                }
                // Shift the remaining rows up and load the next rows.
                let keep = loaded - next_j0;
                if let Some(t) = ctx.smem.tracker() {
                    // The shift ranges overlap, but the owning lane both
                    // reads and writes its own column, so the in-place move
                    // is ordered within that thread — no barrier required
                    // (unlike the cross-lane striped shift in `window`).
                    for c in 0..nrhs {
                        let (lane, colbase) = (owner(c), off + c * cache_rows);
                        t.range_read(lane, colbase + jb, keep);
                        t.range_write(lane, colbase, keep);
                    }
                }
                for c in 0..nrhs {
                    let colbase = c * cache_rows;
                    cache.copy_within(colbase + jb..colbase + jb + keep, colbase);
                }
                ctx.smem_work(keep * nrhs, 0);
                let new_end = (next_j0 + cache_rows).min(n);
                if new_end > loaded {
                    if let Some(t) = ctx.smem.tracker() {
                        for c in 0..nrhs {
                            t.range_write(
                                owner(c),
                                off + c * cache_rows + (loaded - next_j0),
                                new_end - loaded,
                            );
                        }
                    }
                    for c in 0..nrhs {
                        for r in loaded..new_end {
                            cache[c * cache_rows + (r - next_j0)] = p.b[c * ldb + r];
                        }
                    }
                    ctx.gld((new_end - loaded) * nrhs * S::BYTES);
                    loaded = new_end;
                }
                ctx.sync();
                j0 = next_j0;
            }
        })?;
        Some(rep)
    } else {
        None
    };

    // ---------------- backward ----------------
    let cfg = LaunchConfig::new(threads, backward_smem_bytes::<S>(l, nb, nrhs) as u32)
        .with_parallel(params.parallel)
        .with_label("gbtrs_backward")
        .with_precision(crate::flop_class::<S>());
    let cache_rows = (nb + kv).min(n);
    let mut probs: Vec<Prob<'_, S>> = rhs
        .blocks_mut()
        .enumerate()
        .map(|(id, b)| Prob { id, b })
        .collect();
    let backward = launch(dev, &cfg, &mut probs, |p, ctx| {
        let ab = &factors[p.id * stride..(p.id + 1) * stride];
        let off = ctx.smem.alloc_scalar(cache_rows * nrhs, S::BYTES);
        let mut cache = vec![S::ZERO; cache_rows * nrhs];
        // Cache covers global rows [lo, lo + cache_rows_eff); start at the
        // bottom of the RHS.
        let mut lo = n.saturating_sub(cache_rows);
        let have = n - lo;
        for c in 0..nrhs {
            for r in 0..have {
                cache[c * cache_rows + r] = p.b[c * ldb + lo + r];
            }
        }
        if let Some(t) = ctx.smem.tracker() {
            for c in 0..nrhs {
                t.range_write(owner(c), off + c * cache_rows, have);
            }
        }
        ctx.gld(have * nrhs * S::BYTES);
        ctx.sync();

        // Blocks of rows [j0, j0 + jb), processed last-first.
        let mut j1 = n; // exclusive end of the current block
        while j1 > 0 {
            let jb = nb.min(j1);
            let j0 = j1 - jb;
            debug_assert!(j0 >= lo, "block escapes the cache");
            for j in (j0..j1).rev() {
                let diag = ab[l.idx(kv, j)];
                ctx.gld((kv.min(j) + 1) * S::BYTES); // U column (register file)
                let lj = j - lo;
                if let Some(t) = ctx.smem.tracker() {
                    // Division result and the axpy into the rows above both
                    // stay inside the owning lane's column.
                    let reach = kv.min(j);
                    for c in 0..nrhs {
                        let (lane, colbase) = (owner(c), off + c * cache_rows);
                        t.read(lane, colbase + lj);
                        t.write(lane, colbase + lj);
                        if cache[c * cache_rows + lj] != S::ZERO && reach > 0 {
                            t.range_read(lane, colbase + lj - reach, reach);
                            t.range_write(lane, colbase + lj - reach, reach);
                        }
                    }
                }
                for c in 0..nrhs {
                    let bj = cache[c * cache_rows + lj] / diag;
                    cache[c * cache_rows + lj] = bj;
                    if bj != S::ZERO {
                        let reach = kv.min(j);
                        for i in 1..=reach {
                            cache[c * cache_rows + lj - i] -= ab[l.idx(kv - i, j)] * bj;
                        }
                    }
                }
                ctx.smem_work(nrhs * (kv.min(j) + 1), 2);
                ctx.sync();
            }
            // Write the solved bottom jb rows back.
            if let Some(t) = ctx.smem.tracker() {
                for c in 0..nrhs {
                    t.range_read(owner(c), off + c * cache_rows + (j0 - lo), jb);
                }
            }
            for c in 0..nrhs {
                for r in 0..jb {
                    p.b[c * ldb + j0 + r] = cache[c * cache_rows + (j0 - lo) + r];
                }
            }
            ctx.gst(jb * nrhs * S::BYTES);
            if j0 == 0 {
                break;
            }
            // Shift the remaining rows down to the bottom of the cache and
            // load the rows the next block needs: the new window ends at
            // `j0` (everything above is solved) and spans `cache_rows` rows.
            let new_lo = j0.saturating_sub(cache_rows);
            // Rows still needed: [new_lo, j0). Move existing [lo, j0) to the
            // tail of the new window, then load [new_lo, lo).
            let keep = j0 - lo;
            let shift_to = lo - new_lo; // how far down the kept rows move
            if keep > 0 && shift_to > 0 {
                if let Some(t) = ctx.smem.tracker() {
                    // In-place downward move, ordered within the owning lane.
                    for c in 0..nrhs {
                        let (lane, colbase) = (owner(c), off + c * cache_rows);
                        t.range_read(lane, colbase, keep);
                        t.range_write(lane, colbase + shift_to, keep);
                    }
                }
                for c in 0..nrhs {
                    let colbase = c * cache_rows;
                    // Move within the column: src [0, keep) -> dst [shift_to, shift_to + keep).
                    for r in (0..keep).rev() {
                        cache[colbase + shift_to + r] = cache[colbase + r];
                    }
                }
                ctx.smem_work(keep * nrhs, 0);
            }
            if lo > new_lo {
                if let Some(t) = ctx.smem.tracker() {
                    for c in 0..nrhs {
                        t.range_write(owner(c), off + c * cache_rows, lo - new_lo);
                    }
                }
                for c in 0..nrhs {
                    for r in new_lo..lo {
                        cache[c * cache_rows + (r - new_lo)] = p.b[c * ldb + r];
                    }
                }
                ctx.gld((lo - new_lo) * nrhs * S::BYTES);
            }
            lo = new_lo;
            ctx.sync();
            j1 = j0;
        }
    })?;

    Ok(BlockedSolveReport { forward, backward })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::batch::{BandBatch, InfoArray};
    use gbatch_core::gbtrs::{gbtrs, Transpose};

    fn factored(batch: usize, n: usize, kl: usize, ku: usize) -> (BandBatch, PivotBatch) {
        let mut v = 0.13f64;
        let mut fac = BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.7 + 0.093 + id as f64 * 5e-4).fract();
                    m.set(i, j, v - 0.5 + if i == j { 1.0 } else { 0.0 });
                }
            }
        })
        .unwrap();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let dev = DeviceSpec::h100_pcie();
        let _ = crate::fused::gbtrf_batch_fused(
            &dev,
            &mut fac,
            &mut piv,
            &mut info,
            crate::fused::FusedParams::auto(&dev, kl),
        )
        .unwrap();
        assert!(info.all_ok());
        (fac, piv)
    }

    fn check(n: usize, kl: usize, ku: usize, nrhs: usize, nb: usize) {
        let dev = DeviceSpec::h100_pcie();
        let batch = 3;
        let (fac, piv) = factored(batch, n, kl, ku);
        let l = fac.layout();
        let mut rhs = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
            ((id * 17 + c * 5 + i) as f64 * 0.29).cos()
        })
        .unwrap();
        let mut expect = rhs.clone();
        for id in 0..batch {
            gbtrs(
                Transpose::No,
                &l,
                fac.matrix(id).data,
                piv.pivots(id),
                expect.block_mut(id),
                n,
                nrhs,
            );
        }
        let params = SolveParams {
            nb,
            threads: 32,
            ..Default::default()
        };
        gbtrs_batch_blocked(&dev, &l, fac.data(), &piv, &mut rhs, params).unwrap();
        assert_eq!(
            rhs.data(),
            expect.data(),
            "n={n} kl={kl} ku={ku} nrhs={nrhs} nb={nb}"
        );
    }

    #[test]
    fn matches_core_gbtrs_bitwise() {
        for nb in [1, 2, 4, 8, 32] {
            check(20, 2, 3, 1, nb);
        }
        check(20, 10, 7, 1, 8);
        check(20, 2, 3, 10, 8); // the paper's ten-RHS configuration
        check(33, 1, 1, 3, 5);
        check(8, 0, 3, 2, 4); // kl = 0: no forward pass at all
        check(8, 3, 0, 2, 4);
        check(64, 2, 3, 1, 64); // nb >= n: single iteration
        check(3, 2, 2, 1, 2); // kv >= n: full-width reach
    }

    #[test]
    fn forward_skipped_for_upper_triangular() {
        let dev = DeviceSpec::h100_pcie();
        let (fac, piv) = factored(2, 12, 0, 3);
        let l = fac.layout();
        let mut rhs = RhsBatch::from_fn(2, 12, 1, |_, i, _| i as f64).unwrap();
        let rep = gbtrs_batch_blocked(
            &dev,
            &l,
            fac.data(),
            &piv,
            &mut rhs,
            SolveParams {
                nb: 4,
                threads: 32,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(rep.forward.is_none());
        assert!(rep.time().secs() > 0.0);
    }

    #[test]
    fn smem_sizes_follow_paper_formulas() {
        let l = BandLayout::factor(100, 100, 10, 7).unwrap();
        // forward: (nb + kl) elements per RHS; backward: (nb + kv).
        assert_eq!(forward_smem_bytes::<f64>(&l, 8, 1), (8 + 10) * 8);
        assert_eq!(backward_smem_bytes::<f64>(&l, 8, 1), (8 + 17) * 8);
        assert_eq!(backward_smem_bytes::<f32>(&l, 8, 1), (8 + 17) * 4);
        assert_eq!(forward_smem_bytes::<f64>(&l, 8, 10), (8 + 10) * 10 * 8);
    }

    #[test]
    fn blocked_beats_columnwise_in_modeled_time() {
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku) = (128usize, 2usize, 3usize);
        let batch = 200;
        let (fac, piv) = factored(batch, n, kl, ku);
        let l = fac.layout();
        let mut r1 = RhsBatch::from_fn(batch, n, 1, |_, i, _| i as f64).unwrap();
        let mut r2 = r1.clone();
        let blocked = gbtrs_batch_blocked(
            &dev,
            &l,
            fac.data(),
            &piv,
            &mut r1,
            SolveParams {
                nb: 8,
                threads: 32,
                ..Default::default()
            },
        )
        .unwrap();
        let cols = crate::gbtrs_cols::gbtrs_batch_cols(
            &dev,
            &l,
            fac.data(),
            &piv,
            &mut r2,
            ParallelPolicy::Serial,
        )
        .unwrap();
        assert_eq!(r1.data(), r2.data(), "both designs agree numerically");
        assert!(
            cols.time.secs() > 3.0 * blocked.time().secs(),
            "columnwise {:.3} ms should dwarf blocked {:.3} ms",
            cols.time.ms(),
            blocked.time().ms()
        );
    }
}
