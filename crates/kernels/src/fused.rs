//! Fully fused band LU factorization (paper §5.2).
//!
//! One kernel launch factors the whole batch: each block loads its entire
//! band matrix into shared memory, factors it column by column, and writes
//! it back — optimal global traffic (each matrix moves exactly once in each
//! direction). The shared-memory footprint is `ldab * n * size_of::<S>()`
//! bytes (half as large for `f32` as for `f64`) and
//! therefore **grows with the matrix size**: occupancy decreases in steps
//! (the Fig. 3 staircase) and the launch eventually fails when one matrix
//! no longer fits — which is precisely what motivates the sliding-window
//! design of [`crate::window`].

use crate::step::{smem_bytes_for_cols, smem_column_step, smem_fillin_prologue, SmemBand};
use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch};
use gbatch_core::gbtf2::ColumnStepState;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::{launch, DeviceSpec, LaunchConfig, LaunchError, LaunchReport, ParallelPolicy};

/// Tunable parameters of the fused kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedParams {
    /// Threads per block (per matrix). Minimum `kl + 1` (the paper's
    /// constraint: the longest column has `kl + 1` pivot candidates).
    pub threads: u32,
    /// Host scheduling of the per-matrix blocks (results are
    /// bitwise-identical for every policy).
    pub parallel: ParallelPolicy,
}

impl Default for FusedParams {
    fn default() -> Self {
        FusedParams {
            threads: 32,
            parallel: ParallelPolicy::Serial,
        }
    }
}

impl FusedParams {
    /// Paper-minimum thread count rounded up to a full warp.
    pub fn auto(dev: &DeviceSpec, kl: usize) -> Self {
        let min = (kl + 1) as u32;
        let warp = dev.warp_size;
        FusedParams {
            threads: min.div_ceil(warp) * warp,
            parallel: ParallelPolicy::Serial,
        }
    }

    /// Builder: set the host scheduling policy.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }
}

/// Shared-memory bytes the fused kernel needs for one matrix of `S`
/// elements.
pub fn fused_smem_bytes<S: Scalar>(ldab: usize, n: usize) -> usize {
    smem_bytes_for_cols::<S>(ldab, n)
}

/// Batched fully fused band LU factorization.
///
/// Factors every matrix of `a` in place (LAPACK factor storage), filling
/// `piv` and `info`. Fails with [`LaunchError::SharedMemExceeded`] when one
/// matrix does not fit in shared memory — callers (the §5.4 dispatch layer)
/// fall back to the sliding-window kernel.
pub fn gbtrf_batch_fused<S: Scalar>(
    dev: &DeviceSpec,
    a: &mut BandBatch<S>,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
    params: FusedParams,
) -> Result<LaunchReport, LaunchError> {
    let l = a.layout();
    assert_eq!(piv.batch(), a.batch(), "pivot batch mismatch");
    assert_eq!(info.len(), a.batch(), "info batch mismatch");
    let smem = fused_smem_bytes::<S>(l.ldab, l.n);
    let cfg = LaunchConfig::new(params.threads.max((l.kl + 1) as u32), smem as u32)
        .with_parallel(params.parallel)
        .with_label("gbtrf_fused")
        .with_precision(crate::flop_class::<S>());

    struct Problem<'a, S> {
        ab: &'a mut [S],
        piv: &'a mut [i32],
        info: &'a mut i32,
    }

    let mut problems: Vec<Problem<'_, S>> = a
        .chunks_mut()
        .zip(piv.chunks_mut())
        .zip(info.as_mut_slice().iter_mut())
        .map(|((ab, piv), info)| Problem { ab, piv, info })
        .collect();

    launch(dev, &cfg, &mut problems, |p, ctx| {
        let bytes = l.len() * S::BYTES;
        // Load the whole band matrix to shared memory (one coalesced pass).
        // The arena stays f64-grained; the scalar allocation reserves the
        // same capacity the launch declared, the tracker sees the striped
        // store, and the block factors a working copy of the band.
        let off = ctx.smem.alloc_scalar(l.len(), S::BYTES);
        let mut local: Vec<S> = p.ab.to_vec();
        if let Some(t) = ctx.smem.tracker() {
            t.striped_write(off, l.len(), ctx.threads);
        }
        ctx.gld(bytes);
        ctx.sync();

        {
            let mut w = SmemBand {
                data: &mut local,
                ldab: l.ldab,
                col0: 0,
                width: l.n,
                provenance: Some(l),
            };
            let mut st = ColumnStepState::default();
            smem_fillin_prologue(&l, &mut w, ctx);
            for j in 0..l.m.min(l.n) {
                smem_column_step(&l, &mut w, p.piv, j, &mut st, ctx);
            }
            *p.info = st.info;
        }

        // Write the factors (and pivots) back to global memory.
        p.ab.copy_from_slice(&local);
        if let Some(t) = ctx.smem.tracker() {
            t.striped_read(off, l.len(), ctx.threads);
        }
        ctx.gst(bytes);
        ctx.gst(l.m.min(l.n) * std::mem::size_of::<i32>());
        ctx.sync();
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::gbtf2::gbtf2;
    use gbatch_gpu_sim::engine::validate;

    fn random_batch(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
        let mut v = 0.23f64;
        BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 1.9 + 0.083 + id as f64 * 1e-4).fract();
                    m.set(i, j, v - 0.5);
                }
            }
        })
        .unwrap()
    }

    #[test]
    fn matches_sequential_reference_bitwise() {
        for (n, kl, ku) in [(9, 2, 3), (32, 2, 3), (24, 10, 7), (16, 0, 3), (16, 3, 0)] {
            let dev = DeviceSpec::h100_pcie();
            let batch = 5;
            let mut a = random_batch(batch, n, kl, ku);
            let expected: Vec<(Vec<f64>, Vec<i32>, i32)> = (0..batch)
                .map(|id| {
                    let mut ab = a.matrix(id).data.to_vec();
                    let mut p = vec![0i32; n];
                    let info = gbtf2(&a.layout(), &mut ab, &mut p);
                    (ab, p, info)
                })
                .collect();

            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let rep = gbtrf_batch_fused(
                &dev,
                &mut a,
                &mut piv,
                &mut info,
                FusedParams::auto(&dev, kl),
            )
            .unwrap();
            assert_eq!(rep.grid, batch);
            for id in 0..batch {
                assert_eq!(
                    a.matrix(id).data,
                    &expected[id].0[..],
                    "factors (n={n},kl={kl},ku={ku})"
                );
                assert_eq!(piv.pivots(id), &expected[id].1[..], "pivots");
                assert_eq!(info.get(id), expected[id].2, "info");
            }
        }
    }

    #[test]
    fn large_matrix_fails_on_small_shared_memory() {
        // (kl, ku) = (2, 3): ldab = 8; MI250x LDS = 64 KB -> fails above
        // n = 1024 columns (8 * 1024 * 8 B = 64 KB exactly fills it, and
        // H100 still fits). This is the paper's "failing to run" regime.
        let mi = DeviceSpec::mi250x_gcd();
        let h100 = DeviceSpec::h100_pcie();
        let n_fail = 1056; // 8 * 1056 * 8 = 67.6 KB > 64 KB
        let smem = fused_smem_bytes::<f64>(8, n_fail) as u32;
        assert!(validate(&mi, &LaunchConfig::new(32, smem)).is_err());
        assert!(validate(&h100, &LaunchConfig::new(32, smem)).is_ok());
    }

    #[test]
    fn staircase_when_occupancy_drops() {
        // Same batch, growing n: crossing the half-LDS boundary on MI250x
        // must produce a superlinear jump in modeled time. The paper sees
        // this between n = 416 and 448 for (2, 3); with our exact
        // `ldab * n * 8` footprint (no extra per-block workspace) the
        // boundary sits at n = 512 -> 544 — same mechanism, same shape.
        let dev = DeviceSpec::mi250x_gcd();
        let (kl, ku) = (2usize, 3usize);
        let batch = 1000;
        let mut times = Vec::new();
        for n in [512, 544] {
            let mut a = random_batch(batch, n, kl, ku);
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let rep = gbtrf_batch_fused(
                &dev,
                &mut a,
                &mut piv,
                &mut info,
                FusedParams::auto(&dev, kl),
            )
            .unwrap();
            times.push((n, rep.time.secs(), rep.occupancy.blocks_per_sm));
        }
        let (n1, t1, o1) = times[0];
        let (n2, t2, o2) = times[1];
        assert_eq!(o1, 2, "n={n1} should fit 2 blocks/CU");
        assert_eq!(o2, 1, "n={n2} should fit 1 block/CU");
        let jump = t2 / t1;
        let size_ratio = n2 as f64 / n1 as f64;
        assert!(
            jump > 1.5 * size_ratio,
            "expected a staircase jump, got {jump:.2}x for a {size_ratio:.2}x size increase"
        );
    }

    #[test]
    fn auto_threads_respects_minimum_and_warp() {
        let h = DeviceSpec::h100_pcie();
        assert_eq!(FusedParams::auto(&h, 2).threads, 32);
        assert_eq!(FusedParams::auto(&h, 33).threads, 64);
        let m = DeviceSpec::mi250x_gcd();
        assert_eq!(FusedParams::auto(&m, 10).threads, 64);
    }

    #[test]
    fn singular_matrix_reports_info() {
        let dev = DeviceSpec::h100_pcie();
        let n = 8;
        let mut a = random_batch(3, n, 1, 1);
        // Zero out the entire pivot-candidate column 0 of matrix 1.
        {
            let mut m = a.matrix_mut(1);
            m.set(0, 0, 0.0);
            m.set(1, 0, 0.0);
        }
        let mut piv = PivotBatch::new(3, n, n);
        let mut info = InfoArray::new(3);
        let _ = gbtrf_batch_fused(
            &dev,
            &mut a,
            &mut piv,
            &mut info,
            FusedParams::auto(&dev, 1),
        )
        .unwrap();
        assert_eq!(info.get(0), 0);
        assert_eq!(info.get(1), 1);
        assert_eq!(info.get(2), 0);
        assert_eq!(info.failures(), vec![1]);
    }
}
