//! SPIKE-style split solve of one large band system on the device
//! (Li/Serban/Negrut, arXiv:1509.07919) — the workspace's third dispatch
//! regime, parallelizing *inside* a matrix instead of across the batch.
//!
//! The host-side math (partitioning, reduced-system assembly, dense
//! reduced LU) lives in [`gbatch_core::spike`]; this module adds the
//! device choreography:
//!
//! 1. the `P` diagonal blocks of one operator ride a single
//!    [`gbtrf_batch_window`] launch as an intra-matrix batch, so the
//!    existing window kernel factors all blocks concurrently;
//! 2. one [`gbtrs_batch_blocked`] launch over the **augmented** RHS
//!    (`nrhs` true columns + the coupling corners) produces every block
//!    solution `g_p` and both spikes `V_p`, `W_p` at once;
//! 3. two small coupling kernels — `spike_extract` (stages the cut
//!    corners through shared memory) and `spike_combine` (broadcasts the
//!    solved interface values and back-substitutes) — carry the new
//!    communication pattern, with lane annotations for the runtime
//!    hazard detector and declarative access models for
//!    `cargo xtask verify-kernels`;
//! 4. a lane-private `spike_residual` kernel prices the refinement
//!    residuals of the truncated mode.
//!
//! **Truncated mode** drops the interface-to-interface coupling of the
//! reduced system (keeping only each cut's own `kl + ku` square block —
//! the classic truncated-SPIKE `DS` approximation, accurate when the
//! spikes decay, i.e. for diagonally dominant operators) and wraps the
//! approximate solve in iterative refinement. A residual-based guarantee
//! makes the API never worse than the sequential driver: refinement that
//! stalls falls back to the exact reduced system (reusing the factored
//! blocks and spikes), and any remaining failure falls back to the
//! unsplit window+blocked path that dispatch would have run anyway.
//! `P = 1` *is* that unsplit path, bit for bit.

use crate::gbtrs_blocked::{gbtrs_batch_blocked, SolveParams};
use crate::window::{gbtrf_batch_window, WindowParams};
use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch_core::layout::BandLayout;
use gbatch_core::scalar::Scalar;
use gbatch_core::spike::{
    augmented_rhs, dense_getrf, dense_getrs, extract_blocks, SpikeCoupling, SpikePartition,
};
use gbatch_gpu_sim::{
    launch, DeviceSpec, LaunchConfig, LaunchError, LaunchReport, ParallelPolicy, SimTime,
};

/// Whether the reduced system keeps the full interface coupling or the
/// truncated block-diagonal approximation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpikeMode {
    /// Solve the exact reduced system: the answer matches the sequential
    /// driver to working accuracy.
    Exact,
    /// Truncated-SPIKE preconditioner + iterative refinement, with
    /// fallback to [`SpikeMode::Exact`] (and then to the unsplit path)
    /// when refinement stalls.
    Truncated,
}

/// Tunables of the split solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpikeParams {
    /// Requested number of diagonal blocks (clamped by
    /// [`SpikePartition::new`]).
    pub parts: usize,
    /// Reduced-system treatment.
    pub mode: SpikeMode,
    /// Refinement-iteration cap of the truncated mode.
    pub max_refine: usize,
    /// Window/solve block size forwarded to the per-block kernels.
    pub nb: usize,
    /// Threads per block for every launch.
    pub threads: u32,
    /// Host scheduling of the per-block lanes (results are
    /// bitwise-identical for every policy).
    pub parallel: ParallelPolicy,
}

impl Default for SpikeParams {
    fn default() -> Self {
        SpikeParams {
            parts: 8,
            mode: SpikeMode::Truncated,
            max_refine: 8,
            nb: 8,
            threads: 32,
            parallel: ParallelPolicy::Serial,
        }
    }
}

impl SpikeParams {
    /// Untuned defaults for a bandwidth: one warp (or enough to cover
    /// `kl + 1` threads), eight blocks, truncated mode with refinement.
    pub fn auto(dev: &DeviceSpec, kl: usize) -> Self {
        SpikeParams {
            threads: ((kl + 1) as u32).div_ceil(dev.warp_size) * dev.warp_size,
            ..Default::default()
        }
    }

    /// Builder: set the block count.
    pub fn with_parts(mut self, parts: usize) -> Self {
        self.parts = parts;
        self
    }

    /// Builder: set the reduced-system mode.
    pub fn with_mode(mut self, mode: SpikeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Builder: set the host scheduling policy.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    fn window(&self) -> WindowParams {
        WindowParams {
            nb: self.nb,
            threads: self.threads,
            parallel: self.parallel,
        }
    }

    fn solve(&self) -> SolveParams {
        SolveParams {
            nb: self.nb,
            threads: self.threads,
            parallel: self.parallel,
        }
    }
}

/// Which path answered for one lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpikeOutcome {
    /// Exact reduced system, split solve.
    Exact,
    /// Truncated preconditioner converged after this many refinement
    /// iterations.
    Truncated {
        /// Refinement iterations taken.
        refine_iters: usize,
    },
    /// Truncated refinement stalled; the exact reduced system answered.
    ExactFallback {
        /// Refinement iterations spent before falling back.
        refine_iters: usize,
    },
    /// Split solve unavailable (one-block partition, a singular block, or
    /// a singular reduced system): the unsplit window+blocked path
    /// answered — bitwise what dispatch runs today.
    Unsplit,
}

/// Aggregate report of a [`spike_gbsv_batch`] call.
#[derive(Debug, Clone)]
pub struct SpikeReport {
    /// Effective block count after partition clamping.
    pub parts: usize,
    /// Per-lane outcome.
    pub outcomes: Vec<SpikeOutcome>,
    /// Total modeled time across every launch of every lane.
    pub time: SimTime,
    /// Number of device launches issued.
    pub launches: usize,
}

/// Shared bytes of the `spike_extract` kernel: both coupling corners of
/// one interface (`kl^2 + ku^2` elements of `S`).
pub fn extract_smem_bytes<S: Scalar>(kl: usize, ku: usize) -> usize {
    (kl * kl + ku * ku) * S::BYTES
}

/// Shared bytes of the `spike_combine` kernel: the interface slice one
/// block consumes (`(kl + ku) * nrhs` elements of `S`).
pub fn combine_smem_bytes<S: Scalar>(kl: usize, ku: usize, nrhs: usize) -> usize {
    (kl + ku) * nrhs * S::BYTES
}

struct ExtractProb<'a, S> {
    iface: usize,
    b: &'a mut [S],
    c: &'a mut [S],
}

/// Split a corner array into one chunk per interface, tolerating the
/// zero-width side of a one-sided band (`kl == 0` or `ku == 0`).
fn corner_chunks<S>(v: &mut [S], size: usize, count: usize) -> Vec<&mut [S]> {
    if size == 0 {
        (0..count).map(|_| -> &mut [S] { &mut [] }).collect()
    } else {
        v.chunks_mut(size).take(count).collect()
    }
}

/// Device extraction of the coupling corners: one block per interface
/// stages its `B`/`C` corner entries through shared memory (a
/// striped-write / barrier / striped-read echo of the real kernel's
/// gather-then-scatter) and writes them to the corner arrays.
pub(crate) fn spike_extract_launch<S: Scalar>(
    dev: &DeviceSpec,
    a: &BandBatch<S>,
    lane: usize,
    part: &SpikePartition,
    params: &SpikeParams,
) -> Result<(SpikeCoupling<S>, LaunchReport), LaunchError> {
    let (kl, ku) = (part.kl, part.ku);
    let ifaces = part.interfaces();
    let mut b = vec![S::ZERO; ifaces * ku * ku];
    let mut c = vec![S::ZERO; ifaces * kl * kl];
    let aref = a.matrix(lane);
    let elems = kl * kl + ku * ku;
    let cfg = LaunchConfig::new(params.threads, extract_smem_bytes::<S>(kl, ku) as u32)
        .with_parallel(params.parallel)
        .with_label("spike_extract")
        .with_precision(crate::flop_class::<S>());
    let mut probs: Vec<ExtractProb<'_, S>> = corner_chunks(&mut b, ku * ku, ifaces)
        .into_iter()
        .zip(corner_chunks(&mut c, kl * kl, ifaces))
        .enumerate()
        .map(|(iface, (b, c))| ExtractProb { iface, b, c })
        .collect();
    let rep = launch(dev, &cfg, &mut probs, |p, ctx| {
        let e = part.start(p.iface + 1);
        // Gather the cut corners from the global band and stage them.
        for cc in 0..ku {
            for r in 0..ku {
                p.b[cc * ku + r] = aref.get(e - ku + r, e + cc);
            }
        }
        for cc in 0..kl {
            for r in 0..kl {
                p.c[cc * kl + r] = aref.get(e + r, e - kl + cc);
            }
        }
        let _off = ctx.smem.alloc_scalar(elems, S::BYTES);
        ctx.gld(elems * S::BYTES);
        if let Some(t) = ctx.smem.tracker() {
            t.striped_write(0, ku * ku, ctx.threads);
            t.striped_write(ku * ku, kl * kl, ctx.threads);
        }
        ctx.smem_work(elems, 0);
        ctx.sync();
        // Drain the staged corners to the coupling arrays.
        if let Some(t) = ctx.smem.tracker() {
            t.striped_read(0, ku * ku, ctx.threads);
            t.striped_read(ku * ku, kl * kl, ctx.threads);
        }
        ctx.smem_work(elems, 0);
        ctx.gst(elems * S::BYTES);
        ctx.sync();
    })?;
    Ok((
        SpikeCoupling {
            kl,
            ku,
            interfaces: ifaces,
            b,
            c,
        },
        rep,
    ))
}

struct CombineProb<'a, S> {
    p: usize,
    x: &'a mut [S],
}

/// Device back-substitution `x_p = g_p - V_p t_{p+1} - W_p b_{p-1}`: one
/// block per partition stages its interface slice of the solved reduced
/// vector in shared memory (each element broadcast-read once into
/// registers), then runs the owned global row work. `g` supplies the
/// block solutions (columns `0..nrhs`); `spikes` supplies the spike
/// columns starting at `spike_off` (`ku` right then `kl` left). Returns
/// the block solutions as one contiguous `block * nrhs` lane per
/// partition.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spike_combine_launch<S: Scalar>(
    dev: &DeviceSpec,
    part: &SpikePartition,
    g: &RhsBatch<S>,
    spikes: &RhsBatch<S>,
    spike_off: usize,
    nrhs: usize,
    y: &[S],
    params: &SpikeParams,
) -> Result<(Vec<S>, LaunchReport), LaunchError> {
    let (kl, ku, blk) = (part.kl, part.ku, part.block);
    let kb = kl + ku;
    let r = part.reduced_order();
    let slice_elems = kb * nrhs;
    let mut x = vec![S::ZERO; part.parts * blk * nrhs];
    let cfg = LaunchConfig::new(params.threads, combine_smem_bytes::<S>(kl, ku, nrhs) as u32)
        .with_parallel(params.parallel)
        .with_label("spike_combine")
        .with_precision(crate::flop_class::<S>());
    let mut probs: Vec<CombineProb<'_, S>> = x
        .chunks_mut(blk * nrhs)
        .enumerate()
        .map(|(p, x)| CombineProb { p, x })
        .collect();
    let rep = launch(dev, &cfg, &mut probs, |pr, ctx| {
        let p = pr.p;
        let len = part.len(p);
        let gb = g.block(p);
        let gl = g.ldb();
        let sb = spikes.block(p);
        let sl = spikes.ldb();
        // Stage the interface values this block consumes — `b_{p-1}` then
        // `t_{p+1}` per RHS column, zero-padded at the outer blocks so
        // every lane stages the same uniform slice.
        let mut slice = vec![S::ZERO; slice_elems];
        for cc in 0..nrhs {
            if p > 0 {
                for e in 0..kl {
                    slice[cc * kb + e] = y[cc * r + (p - 1) * kb + e];
                }
            }
            if p + 1 < part.parts {
                for e in 0..ku {
                    slice[cc * kb + kl + e] = y[cc * r + p * kb + kl + e];
                }
            }
        }
        let _off = ctx.smem.alloc_scalar(slice_elems, S::BYTES);
        ctx.gld(slice_elems * S::BYTES);
        if let Some(t) = ctx.smem.tracker() {
            for cc in 0..nrhs {
                t.striped_write(cc * kb, kb, ctx.threads);
            }
        }
        ctx.smem_work(slice_elems, 0);
        ctx.sync();
        // Every thread broadcast-reads each staged element once into
        // registers, then sweeps its owned rows against the spikes.
        if let Some(t) = ctx.smem.tracker() {
            for off in 0..slice_elems {
                t.broadcast_read(off);
            }
        }
        ctx.smem_work(slice_elems, 0);
        for row in 0..len {
            for cc in 0..nrhs {
                let mut val = gb[cc * gl + row];
                if p + 1 < part.parts {
                    for e in 0..ku {
                        val -= sb[(spike_off + e) * sl + row] * slice[cc * kb + kl + e];
                    }
                }
                if p > 0 {
                    for e in 0..kl {
                        val -= sb[(spike_off + ku + e) * sl + row] * slice[cc * kb + e];
                    }
                }
                pr.x[cc * blk + row] = val;
            }
        }
        ctx.gld(len * (nrhs + ku + kl) * S::BYTES);
        ctx.par_work(len * nrhs * (ku + kl), 2);
        ctx.gst(len * nrhs * S::BYTES);
        ctx.sync();
    })?;
    Ok((x, rep))
}

struct ResidProb<'a, S> {
    p: usize,
    r: &'a mut [S],
}

/// Device residual `r = f - A x` over the block rows: one block per
/// partition, entirely lane-private (no shared memory, no barriers — the
/// access-model registry records it template-free). `x` and `f` are
/// column-major `n x nrhs`; the residual comes back as one contiguous
/// `block * nrhs` lane per partition.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spike_residual_launch<S: Scalar>(
    dev: &DeviceSpec,
    a: &BandBatch<S>,
    lane: usize,
    part: &SpikePartition,
    x: &[S],
    f: &[S],
    nrhs: usize,
    params: &SpikeParams,
) -> Result<(Vec<S>, LaunchReport), LaunchError> {
    let (kl, ku, blk, n) = (part.kl, part.ku, part.block, part.n);
    let aref = a.matrix(lane);
    let mut res = vec![S::ZERO; part.parts * blk * nrhs];
    let cfg = LaunchConfig::new(params.threads, 0)
        .with_parallel(params.parallel)
        .with_label("spike_residual")
        .with_precision(crate::flop_class::<S>());
    let mut probs: Vec<ResidProb<'_, S>> = res
        .chunks_mut(blk * nrhs)
        .enumerate()
        .map(|(p, r)| ResidProb { p, r })
        .collect();
    let rep = launch(dev, &cfg, &mut probs, |pr, ctx| {
        let s = part.start(pr.p);
        let len = part.len(pr.p);
        for row in 0..len {
            let i = s + row;
            let j0 = i.saturating_sub(kl);
            let j1 = (i + ku + 1).min(n);
            for cc in 0..nrhs {
                let mut acc = f[cc * n + i];
                for j in j0..j1 {
                    acc -= aref.get(i, j) * x[cc * n + j];
                }
                pr.r[cc * blk + row] = acc;
            }
            ctx.gld(((j1 - j0) * (1 + nrhs) + nrhs) * S::BYTES);
            ctx.par_work((j1 - j0) * nrhs, 2);
        }
        ctx.gst(len * nrhs * S::BYTES);
    })?;
    Ok((res, rep))
}

/// Truncated reduced solve: per interface `i`, solve the `(kl + ku)`
/// square diagonal block `[I, V_i^bot; W_{i+1}^top, I]` against that
/// interface's rows of `rhs`, ignoring the coupling to neighbouring
/// interfaces (the `DS` approximation). `lus`/`pivs` hold one factored
/// block per interface.
fn truncated_reduced_solve<S: Scalar>(
    part: &SpikePartition,
    lus: &[S],
    pivs: &[i32],
    rhs: &mut [S],
    nrhs: usize,
) {
    let kb = part.kl + part.ku;
    let r = part.reduced_order();
    let mut col = vec![S::ZERO; kb];
    for i in 0..part.interfaces() {
        for c in 0..nrhs {
            col.copy_from_slice(&rhs[c * r + i * kb..c * r + (i + 1) * kb]);
            dense_getrs(
                kb,
                1,
                &lus[i * kb * kb..(i + 1) * kb * kb],
                &pivs[i * kb..(i + 1) * kb],
                &mut col,
            );
            rhs[c * r + i * kb..c * r + (i + 1) * kb].copy_from_slice(&col);
        }
    }
}

/// Assemble and factor the truncated (block-diagonal) reduced system.
/// `Err(())` when an interface block is singular.
fn factor_truncated<S: Scalar>(
    part: &SpikePartition,
    v: impl Fn(usize, usize, usize) -> S,
    w: impl Fn(usize, usize, usize) -> S,
) -> Result<(Vec<S>, Vec<i32>), ()> {
    let (kl, ku) = (part.kl, part.ku);
    let kb = kl + ku;
    let ifaces = part.interfaces();
    let mut lus = vec![S::ZERO; ifaces * kb * kb];
    let mut pivs = vec![0i32; ifaces * kb];
    for i in 0..ifaces {
        let m = &mut lus[i * kb * kb..(i + 1) * kb * kb];
        for d in 0..kb {
            m[d * kb + d] = S::ONE;
        }
        for rr in 0..kl {
            let brow = part.len(i) - kl + rr;
            for c in 0..ku {
                m[(kl + c) * kb + rr] = v(i, brow, c);
            }
        }
        for rr in 0..ku {
            for c in 0..kl {
                m[c * kb + kl + rr] = w(i + 1, rr, c);
            }
        }
        if dense_getrf(kb, m, &mut pivs[i * kb..(i + 1) * kb]) != 0 {
            return Err(());
        }
    }
    Ok((lus, pivs))
}

/// One lane's bookkeeping shared by the split paths.
struct LaneState<S: Scalar> {
    part: SpikePartition,
    blocks: BandBatch<S>,
    bpiv: PivotBatch,
    /// Augmented solve output: columns `0..nrhs` hold `g_p`, then `ku`
    /// right-spike and `kl` left-spike columns.
    aug: RhsBatch<S>,
    nrhs: usize,
}

impl<S: Scalar> LaneState<S> {
    fn g(&self, p: usize, row: usize, c: usize) -> S {
        self.aug.get(p, row, c)
    }
    fn v(&self, p: usize, row: usize, c: usize) -> S {
        self.aug.get(p, row, self.nrhs + c)
    }
    fn w(&self, p: usize, row: usize, c: usize) -> S {
        self.aug.get(p, row, self.nrhs + self.part.ku + c)
    }
}

/// Infinity norm of a column-major panel.
fn inf_norm<S: Scalar>(v: &[S]) -> S {
    v.iter().fold(S::ZERO, |m, &x| m.max(x.abs()))
}

/// Split-solve driver: factor and solve every lane of `a` against `rhs`
/// through the SPIKE decomposition, falling back per lane to the unsplit
/// window+blocked path whenever the split cannot answer (so the result is
/// never worse than dispatch's column-major path — and `P = 1` *is* that
/// path, bitwise). On success each lane's band storage holds its block
/// factors column-for-column (block-partitioned, same minimal `ldab`) and
/// `piv` holds globally-indexed block-local pivots; `info` follows the
/// `gbsv` convention per lane.
pub fn spike_gbsv_batch<S: Scalar>(
    dev: &DeviceSpec,
    a: &mut BandBatch<S>,
    piv: &mut PivotBatch,
    rhs: &mut RhsBatch<S>,
    info: &mut InfoArray,
    params: SpikeParams,
) -> Result<SpikeReport, LaunchError> {
    let l = a.layout();
    assert_eq!(l.m, l.n, "spike requires square systems");
    assert_eq!(
        l.row_offset,
        l.kv(),
        "spike requires factor band storage (fill-in rows present)"
    );
    assert!(
        l.kl + l.ku >= 1,
        "diagonal systems have no coupling to split"
    );
    assert!(rhs.nrhs() >= 1, "spike solve needs at least one RHS column");
    let batch = a.batch();
    assert_eq!(piv.batch(), batch);
    assert_eq!(info.len(), batch);
    assert_eq!(rhs.batch(), batch);
    let nrhs = rhs.nrhs();
    let part = SpikePartition::new(l.n, l.kl, l.ku, params.parts);
    let bl = part.block_layout().expect("valid block layout");
    assert_eq!(
        bl.ldab, l.ldab,
        "spike requires the minimal factor ldab (block columns must tile the band)"
    );

    let mut outcomes = Vec::with_capacity(batch);
    let mut time = SimTime::ZERO;
    let mut launches = 0usize;
    for lane in 0..batch {
        let outcome = solve_lane(
            dev,
            a,
            piv,
            rhs,
            info,
            lane,
            &part,
            &bl,
            nrhs,
            &params,
            &mut time,
            &mut launches,
        )?;
        outcomes.push(outcome);
    }
    Ok(SpikeReport {
        parts: part.parts,
        outcomes,
        time,
        launches,
    })
}

#[allow(clippy::too_many_arguments)]
fn solve_lane<S: Scalar>(
    dev: &DeviceSpec,
    a: &mut BandBatch<S>,
    piv: &mut PivotBatch,
    rhs: &mut RhsBatch<S>,
    info: &mut InfoArray,
    lane: usize,
    part: &SpikePartition,
    bl: &BandLayout,
    nrhs: usize,
    params: &SpikeParams,
    time: &mut SimTime,
    launches: &mut usize,
) -> Result<SpikeOutcome, LaunchError> {
    let l = a.layout();
    let n = l.n;
    if part.parts == 1 {
        unsplit_lane(dev, a, piv, rhs, info, lane, params, time, launches)?;
        return Ok(SpikeOutcome::Unsplit);
    }

    // Gather the lane's RHS as a dense column-major n x nrhs panel (host
    // assembly pass, unpriced — same convention as the serve lane gather).
    let mut f = vec![S::ZERO; n * nrhs];
    {
        let b = rhs.block(lane);
        let ldb = rhs.ldb();
        for c in 0..nrhs {
            f[c * n..(c + 1) * n].copy_from_slice(&b[c * ldb..c * ldb + n]);
        }
    }

    // (1) Coupling corners through the extract kernel.
    let (coupling, t) = spike_extract_launch(dev, a, lane, part, params)?;
    let t = t.time;
    *time += t;
    *launches += 1;

    // (2) All P diagonal blocks factor concurrently as one batched
    // window launch.
    let mut blocks = extract_blocks(&a.matrix(lane), part).expect("valid block batch");
    let mut bpiv = PivotBatch::new(part.parts, part.block, part.block);
    let mut binfo = InfoArray::new(part.parts);
    let rep = gbtrf_batch_window(dev, &mut blocks, &mut bpiv, &mut binfo, params.window())?;
    *time += rep.time;
    *launches += 1;
    if !binfo.all_ok() {
        unsplit_lane(dev, a, piv, rhs, info, lane, params, time, launches)?;
        return Ok(SpikeOutcome::Unsplit);
    }

    // (3) One blocked solve over the augmented RHS yields g, V and W.
    let mut aug = augmented_rhs(part, &coupling, &f, nrhs).expect("valid augmented rhs");
    let srep = gbtrs_batch_blocked(dev, bl, blocks.data(), &bpiv, &mut aug, params.solve())?;
    *time += srep.time();
    *launches += 2;

    let st = LaneState {
        part: *part,
        blocks,
        bpiv,
        aug,
        nrhs,
    };

    let outcome = match params.mode {
        SpikeMode::Exact => exact_solve(dev, a, rhs, lane, &st, &f, params, time, launches)?,
        SpikeMode::Truncated => {
            truncated_solve(dev, a, rhs, lane, &st, &f, params, time, launches)?
        }
    };
    match outcome {
        Some(oc) => {
            write_back(a, piv, info, lane, part, &st);
            Ok(oc)
        }
        None => {
            unsplit_lane(dev, a, piv, rhs, info, lane, params, time, launches)?;
            Ok(SpikeOutcome::Unsplit)
        }
    }
}

/// Exact reduced solve + combine; `None` when the reduced system is
/// singular or the answer fails the residual guard.
#[allow(clippy::too_many_arguments)]
fn exact_solve<S: Scalar>(
    dev: &DeviceSpec,
    a: &BandBatch<S>,
    rhs: &mut RhsBatch<S>,
    lane: usize,
    st: &LaneState<S>,
    f: &[S],
    params: &SpikeParams,
    time: &mut SimTime,
    launches: &mut usize,
) -> Result<Option<SpikeOutcome>, LaunchError> {
    let part = &st.part;
    let r = part.reduced_order();
    let mut reduced = gbatch_core::spike::assemble_reduced_matrix(
        part,
        |p, row, c| st.v(p, row, c),
        |p, row, c| st.w(p, row, c),
    );
    let mut rpiv = vec![0i32; r];
    if dense_getrf(r, &mut reduced, &mut rpiv) != 0 {
        return Ok(None);
    }
    let mut y =
        gbatch_core::spike::assemble_reduced_rhs(part, |p, row, c| st.g(p, row, c), st.nrhs);
    dense_getrs(r, st.nrhs, &reduced, &rpiv, &mut y);
    let (xb, t) = spike_combine_launch(dev, part, &st.aug, &st.aug, st.nrhs, st.nrhs, &y, params)?;
    let t = t.time;
    *time += t;
    *launches += 1;
    // Residual guard on a scratch panel: the exact split answer must be
    // as good as a direct solve before it is committed. The lane's RHS
    // still holds the original right-hand side on the `None` path, which
    // the unsplit fallback consumes verbatim.
    let x = unpack_block_solution(part, st.nrhs, &xb);
    let (res, t) = spike_residual_launch(dev, a, lane, part, &x, f, st.nrhs, params)?;
    let t = t.time;
    *time += t;
    *launches += 1;
    let tol = S::EPSILON.sqrt() * inf_norm(f).max(S::ONE);
    if inf_norm(&res) > tol {
        return Ok(None);
    }
    write_lane(rhs, lane, st.nrhs, &x);
    Ok(Some(SpikeOutcome::Exact))
}

/// Truncated preconditioner + iterative refinement; falls back to the
/// exact reduced system on stall, `None` when that fails too.
#[allow(clippy::too_many_arguments)]
fn truncated_solve<S: Scalar>(
    dev: &DeviceSpec,
    a: &BandBatch<S>,
    rhs: &mut RhsBatch<S>,
    lane: usize,
    st: &LaneState<S>,
    f: &[S],
    params: &SpikeParams,
    time: &mut SimTime,
    launches: &mut usize,
) -> Result<Option<SpikeOutcome>, LaunchError> {
    let part = &st.part;
    let (n, blk) = (part.n, part.block);
    let nrhs = st.nrhs;
    let Ok((lus, pivs)) = factor_truncated(
        part,
        |p, row, c| st.v(p, row, c),
        |p, row, c| st.w(p, row, c),
    ) else {
        return exact_solve(dev, a, rhs, lane, st, f, params, time, launches)
            .map(|oc| oc.map(|_| SpikeOutcome::ExactFallback { refine_iters: 0 }));
    };

    // Initial truncated solve from the already-computed g.
    let mut y = gbatch_core::spike::assemble_reduced_rhs(part, |p, row, c| st.g(p, row, c), nrhs);
    truncated_reduced_solve(part, &lus, &pivs, &mut y, nrhs);
    let (xb, t) = spike_combine_launch(dev, part, &st.aug, &st.aug, nrhs, nrhs, &y, params)?;
    let t = t.time;
    *time += t;
    *launches += 1;
    let mut x = unpack_block_solution(part, nrhs, &xb);

    let bnorm = inf_norm(f);
    let bnorm = if bnorm == S::ZERO { S::ONE } else { bnorm };
    let tol = S::from_f64(10.0) * S::EPSILON * bnorm;
    let mut prev = S::from_f64(f64::INFINITY);
    for iter in 0..=params.max_refine {
        let (res, t) = spike_residual_launch(dev, a, lane, part, &x, f, nrhs, params)?;
        let t = t.time;
        *time += t;
        *launches += 1;
        let rnorm = inf_norm(&res);
        if rnorm <= tol {
            write_lane(rhs, lane, nrhs, &x);
            return Ok(Some(SpikeOutcome::Truncated { refine_iters: iter }));
        }
        // Stall detection: refinement must keep contracting or we bail to
        // the exact reduced system. The negated comparison is deliberate:
        // a NaN residual must read as "stalled" and take the fallback.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if iter == params.max_refine || !(rnorm.to_f64() < 0.5 * prev.to_f64()) {
            let oc = exact_solve(dev, a, rhs, lane, st, f, params, time, launches)?;
            return Ok(oc.map(|_| SpikeOutcome::ExactFallback { refine_iters: iter }));
        }
        prev = rnorm;
        // Preconditioner application: dx = M^{-1} r.
        let mut rb = RhsBatch::zeros(part.parts, blk, nrhs).expect("valid refinement rhs");
        for p in 0..part.parts {
            let len = part.len(p);
            let dst = rb.block_mut(p);
            for c in 0..nrhs {
                dst[c * blk..c * blk + len].copy_from_slice(
                    &res[p * blk * nrhs + c * blk..p * blk * nrhs + c * blk + len],
                );
            }
        }
        let bl = st.blocks.layout();
        let srep = gbtrs_batch_blocked(
            dev,
            &bl,
            st.blocks.data(),
            &st.bpiv,
            &mut rb,
            params.solve(),
        )?;
        *time += srep.time();
        *launches += 2;
        let mut yr =
            gbatch_core::spike::assemble_reduced_rhs(part, |p, row, c| rb.get(p, row, c), nrhs);
        truncated_reduced_solve(part, &lus, &pivs, &mut yr, nrhs);
        let (dxb, t) = spike_combine_launch(dev, part, &rb, &st.aug, nrhs, nrhs, &yr, params)?;
        let t = t.time;
        *time += t;
        *launches += 1;
        for p in 0..part.parts {
            let s = part.start(p);
            let len = part.len(p);
            for c in 0..nrhs {
                for row in 0..len {
                    x[c * n + s + row] += dxb[p * blk * nrhs + c * blk + row];
                }
            }
        }
    }
    unreachable!("loop exits via convergence or fallback");
}

/// Unsplit fallback: the window factorization + blocked solve dispatch
/// runs today, on this lane alone — copied out so the lane's numerics are
/// untouched by any partial split state.
#[allow(clippy::too_many_arguments)]
fn unsplit_lane<S: Scalar>(
    dev: &DeviceSpec,
    a: &mut BandBatch<S>,
    piv: &mut PivotBatch,
    rhs: &mut RhsBatch<S>,
    info: &mut InfoArray,
    lane: usize,
    params: &SpikeParams,
    time: &mut SimTime,
    launches: &mut usize,
) -> Result<(), LaunchError> {
    let l = a.layout();
    let n = l.n;
    let nrhs = rhs.nrhs();
    let stride = a.matrix_stride();
    let mut one = BandBatch::zeros_with_layout(l, 1).expect("valid lane batch");
    one.data_mut()
        .copy_from_slice(&a.data()[lane * stride..(lane + 1) * stride]);
    let mut opiv = PivotBatch::new(1, n, n);
    let mut oinfo = InfoArray::new(1);
    let rep = gbtrf_batch_window(dev, &mut one, &mut opiv, &mut oinfo, params.window())?;
    *time += rep.time;
    *launches += 1;
    a.data_mut()[lane * stride..(lane + 1) * stride].copy_from_slice(one.data());
    piv.pivots_mut(lane).copy_from_slice(opiv.pivots(0));
    info.set(lane, oinfo.get(0));
    if oinfo.get(0) != 0 {
        return Ok(()); // gbsv convention: no solve over singular factors
    }
    let mut orhs = RhsBatch::zeros(1, n, nrhs).expect("valid lane rhs");
    {
        let src = rhs.block(lane);
        let ldb = rhs.ldb();
        let dst = orhs.block_mut(0);
        for c in 0..nrhs {
            dst[c * n..(c + 1) * n].copy_from_slice(&src[c * ldb..c * ldb + n]);
        }
    }
    let srep = gbtrs_batch_blocked(dev, &l, one.data(), &opiv, &mut orhs, params.solve())?;
    *time += srep.time();
    *launches += 2;
    let ldb = rhs.ldb();
    let dst = rhs.block_mut(lane);
    let src = orhs.block(0);
    for c in 0..nrhs {
        dst[c * ldb..c * ldb + n].copy_from_slice(&src[c * n..(c + 1) * n]);
    }
    Ok(())
}

/// Unpack per-block combine output (stride `block` per part) into a
/// dense column-major `n x nrhs` panel.
fn unpack_block_solution<S: Scalar>(part: &SpikePartition, nrhs: usize, xb: &[S]) -> Vec<S> {
    let (n, blk) = (part.n, part.block);
    let mut x = vec![S::ZERO; n * nrhs];
    for p in 0..part.parts {
        let s = part.start(p);
        let len = part.len(p);
        for c in 0..nrhs {
            x[c * n + s..c * n + s + len]
                .copy_from_slice(&xb[p * blk * nrhs + c * blk..p * blk * nrhs + c * blk + len]);
        }
    }
    x
}

/// Write a dense column-major panel into a lane's RHS columns.
fn write_lane<S: Scalar>(rhs: &mut RhsBatch<S>, lane: usize, nrhs: usize, x: &[S]) {
    let n = rhs.n();
    let ldb = rhs.ldb();
    let dst = rhs.block_mut(lane);
    for c in 0..nrhs {
        dst[c * ldb..c * ldb + n].copy_from_slice(&x[c * n..(c + 1) * n]);
    }
}

/// Write block factors back into the lane's band storage column for
/// column (identical minimal `ldab`, pad columns dropped) and the
/// block-local pivots as global row indices.
fn write_back<S: Scalar>(
    a: &mut BandBatch<S>,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
    lane: usize,
    part: &SpikePartition,
    st: &LaneState<S>,
) {
    let ldab = a.layout().ldab;
    let stride = a.matrix_stride();
    let dst = &mut a.data_mut()[lane * stride..(lane + 1) * stride];
    let bdata = st.blocks.data();
    let bstride = part.block * ldab;
    for p in 0..part.parts {
        let s = part.start(p);
        let len = part.len(p);
        dst[s * ldab..(s + len) * ldab]
            .copy_from_slice(&bdata[p * bstride..p * bstride + len * ldab]);
    }
    let pv = piv.pivots_mut(lane);
    for p in 0..part.parts {
        let s = part.start(p);
        let len = part.len(p);
        let bp = st.bpiv.pivots(p);
        for j in 0..len {
            pv[s + j] = s as i32 + bp[j];
        }
    }
    info.set(lane, 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::residual::backward_error;

    fn random_batch(batch: usize, n: usize, kl: usize, ku: usize, dominant: bool) -> BandBatch {
        let mut v = 0.29f64;
        BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 1.9 + 0.113 + id as f64 * 2e-4).fract();
                    let boost = if i == j && dominant { 4.0 } else { 0.0 };
                    m.set(i, j, v - 0.5 + boost);
                }
            }
        })
        .unwrap()
    }

    fn random_rhs(batch: usize, n: usize, nrhs: usize) -> RhsBatch {
        RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
            ((id * 31 + i * 7 + c * 13) % 23) as f64 * 0.1 - 1.0
        })
        .unwrap()
    }

    fn run_spike(
        a: &BandBatch,
        rhs: &RhsBatch,
        params: SpikeParams,
    ) -> (BandBatch, PivotBatch, RhsBatch, InfoArray, SpikeReport) {
        let dev = DeviceSpec::h100_pcie();
        let mut a = a.clone();
        let n = a.layout().n;
        let mut piv = PivotBatch::new(a.batch(), n, n);
        let mut rhs = rhs.clone();
        let mut info = InfoArray::new(a.batch());
        let rep = spike_gbsv_batch(&dev, &mut a, &mut piv, &mut rhs, &mut info, params).unwrap();
        (a, piv, rhs, info, rep)
    }

    fn check_residuals(a: &BandBatch, rhs0: &RhsBatch, x: &RhsBatch, tol: f64) {
        let n = a.layout().n;
        for id in 0..a.batch() {
            for c in 0..x.nrhs() {
                let xs: Vec<f64> = (0..n).map(|i| x.get(id, i, c)).collect();
                let bs: Vec<f64> = (0..n).map(|i| rhs0.get(id, i, c)).collect();
                let berr = backward_error(a.matrix(id), &xs, &bs);
                assert!(berr < tol, "lane {id} col {c}: berr {berr:.2e}");
            }
        }
    }

    #[test]
    fn exact_mode_matches_direct_solve() {
        for (n, kl, ku, parts, nrhs) in [(96, 2, 3, 4, 2), (129, 3, 2, 8, 1), (200, 5, 5, 3, 3)] {
            let a = random_batch(2, n, kl, ku, true);
            let rhs = random_rhs(2, n, nrhs);
            let params = SpikeParams {
                parts,
                mode: SpikeMode::Exact,
                ..Default::default()
            };
            let (_, _, x, info, rep) = run_spike(&a, &rhs, params);
            assert!(info.all_ok());
            assert!(rep
                .outcomes
                .iter()
                .all(|o| matches!(o, SpikeOutcome::Exact)));
            check_residuals(&a, &rhs, &x, 1e-12);
        }
    }

    #[test]
    fn one_part_is_bitwise_unsplit() {
        let (n, kl, ku, nrhs) = (64, 2, 3, 2);
        let dev = DeviceSpec::h100_pcie();
        let a0 = random_batch(3, n, kl, ku, false);
        let rhs0 = random_rhs(3, n, nrhs);
        // Reference: plain window factor + blocked solve over the batch.
        let mut ar = a0.clone();
        let mut pr = PivotBatch::new(3, n, n);
        let mut ir = InfoArray::new(3);
        let wp = WindowParams {
            nb: 8,
            threads: 32,
            ..Default::default()
        };
        let _ = gbtrf_batch_window(&dev, &mut ar, &mut pr, &mut ir, wp).unwrap();
        let mut xr = rhs0.clone();
        gbtrs_batch_blocked(
            &dev,
            &ar.layout(),
            ar.data(),
            &pr,
            &mut xr,
            SolveParams {
                nb: 8,
                threads: 32,
                ..Default::default()
            },
        )
        .unwrap();
        // Spike at P=1 (clamped by a tiny n/parts ratio would also do it).
        let params = SpikeParams {
            parts: 1,
            ..Default::default()
        };
        let (a1, p1, x1, i1, rep) = run_spike(&a0, &rhs0, params);
        assert_eq!(rep.parts, 1);
        assert!(rep
            .outcomes
            .iter()
            .all(|o| matches!(o, SpikeOutcome::Unsplit)));
        assert!(i1.all_ok() && ir.all_ok());
        assert_eq!(a1.data(), ar.data(), "factors bitwise");
        assert_eq!(p1.as_slice(), pr.as_slice(), "pivots bitwise");
        assert_eq!(x1.data(), xr.data(), "solutions bitwise");
    }

    #[test]
    fn truncated_mode_converges_on_dominant_operators() {
        let (n, kl, ku, nrhs) = (160, 2, 2, 2);
        let a = random_batch(2, n, kl, ku, true);
        let rhs = random_rhs(2, n, nrhs);
        let params = SpikeParams {
            parts: 4,
            mode: SpikeMode::Truncated,
            ..Default::default()
        };
        let (_, _, x, info, rep) = run_spike(&a, &rhs, params);
        assert!(info.all_ok());
        for o in &rep.outcomes {
            assert!(
                matches!(o, SpikeOutcome::Truncated { .. }),
                "expected truncated convergence, got {o:?}"
            );
        }
        check_residuals(&a, &rhs, &x, 1e-13);
    }

    #[test]
    fn truncated_mode_falls_back_on_non_dominant_operators() {
        // Without dominance the spikes do not decay; refinement may stall
        // and the driver must still answer exactly.
        let (n, kl, ku, nrhs) = (120, 3, 3, 1);
        let a = random_batch(2, n, kl, ku, false);
        let rhs = random_rhs(2, n, nrhs);
        let params = SpikeParams {
            parts: 4,
            mode: SpikeMode::Truncated,
            max_refine: 2,
            ..Default::default()
        };
        let (_, _, x, info, _rep) = run_spike(&a, &rhs, params);
        assert!(info.all_ok());
        check_residuals(&a, &rhs, &x, 1e-10);
    }

    #[test]
    fn singular_block_falls_back_to_unsplit() {
        let (n, kl, ku) = (64, 1, 1);
        let mut a = random_batch(1, n, kl, ku, true);
        let part = SpikePartition::new(n, kl, ku, 2);
        let s = part.start(1);
        {
            let mut m = a.matrix_mut(0);
            m.set(s, s, 0.0);
            m.set(s + 1, s, 0.0);
        }
        let rhs = random_rhs(1, n, 1);
        let params = SpikeParams {
            parts: 2,
            mode: SpikeMode::Exact,
            ..Default::default()
        };
        let (_, _, x, info, rep) = run_spike(&a, &rhs, params);
        assert!(info.all_ok(), "unsplit fallback must answer");
        assert!(matches!(rep.outcomes[0], SpikeOutcome::Unsplit));
        check_residuals(&a, &rhs, &x, 1e-12);
    }

    #[test]
    fn factors_and_pivots_write_back_block_partitioned() {
        let (n, kl, ku, parts) = (96, 2, 3, 4);
        let a0 = random_batch(1, n, kl, ku, true);
        let rhs = random_rhs(1, n, 1);
        let params = SpikeParams {
            parts,
            mode: SpikeMode::Exact,
            ..Default::default()
        };
        let (a1, p1, _, info, rep) = run_spike(&a0, &rhs, params);
        assert!(info.all_ok());
        assert_eq!(rep.parts, parts);
        // Factors must equal an independent per-block factorization.
        let part = SpikePartition::new(n, kl, ku, parts);
        let mut blocks = extract_blocks(&a0.matrix(0), &part).unwrap();
        let bl = blocks.layout();
        let mut bp = PivotBatch::new(part.parts, part.block, part.block);
        for p in 0..part.parts {
            let info = gbatch_core::gbtrf::gbtrf(&bl, blocks.matrix_mut(p).data, bp.pivots_mut(p));
            assert_eq!(info, 0);
        }
        let ldab = a1.layout().ldab;
        for p in 0..part.parts {
            let s = part.start(p);
            let len = part.len(p);
            let lane = &a1.data()[s * ldab..(s + len) * ldab];
            let blk = &blocks.data()[p * part.block * ldab..p * part.block * ldab + len * ldab];
            assert_eq!(lane, blk, "block {p} factors");
            for j in 0..len {
                assert_eq!(p1.pivots(0)[s + j], s as i32 + bp.pivots(p)[j]);
            }
        }
    }

    #[test]
    fn f32_lanes_solve() {
        let (n, kl, ku, nrhs) = (128usize, 2usize, 2usize, 1usize);
        let mut v = 0.41f32;
        let a0 = BandBatch::<f32>::from_fn(2, n, n, kl, ku, |_, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 1.7 + 0.219).fract();
                    m.set(i, j, v - 0.5 + if i == j { 4.0 } else { 0.0 });
                }
            }
        })
        .unwrap();
        let mut a = a0.clone();
        let mut rhs = RhsBatch::<f32>::from_fn(2, n, nrhs, |id, i, c| {
            ((id + i * 3 + c) % 11) as f32 * 0.2 - 1.0
        })
        .unwrap();
        let rhs0 = rhs.clone();
        let dev = DeviceSpec::h100_pcie();
        let mut piv = PivotBatch::new(2, n, n);
        let mut info = InfoArray::new(2);
        let params = SpikeParams {
            parts: 4,
            ..Default::default()
        };
        let rep = spike_gbsv_batch(&dev, &mut a, &mut piv, &mut rhs, &mut info, params).unwrap();
        assert!(info.all_ok());
        assert!(rep.time.secs() > 0.0);
        for id in 0..2 {
            for c in 0..nrhs {
                let x: Vec<f32> = (0..n).map(|i| rhs.get(id, i, c)).collect();
                let mut ax = vec![0.0f32; n];
                gbatch_core::blas2::gbmv(1.0, a0.matrix(id), &x, 0.0, &mut ax);
                let err = (0..n)
                    .map(|i| (ax[i] - rhs0.get(id, i, c)).abs())
                    .fold(0.0f32, f32::max);
                assert!(err < 1e-4, "lane {id} col {c}: residual {err}");
            }
        }
    }

    #[test]
    fn report_accounts_time_and_launches() {
        let (n, kl, ku) = (96, 2, 2);
        let a = random_batch(1, n, kl, ku, true);
        let rhs = random_rhs(1, n, 1);
        let params = SpikeParams {
            parts: 4,
            mode: SpikeMode::Exact,
            ..Default::default()
        };
        let (_, _, _, _, rep) = run_spike(&a, &rhs, params);
        // extract + factor + fwd/bwd solve + combine + residual = 6.
        assert_eq!(rep.launches, 6);
        assert!(rep.time.secs() > 0.0);
    }
}
