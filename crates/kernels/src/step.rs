//! In-shared-memory column step of the band LU factorization.
//!
//! Both the fully fused kernel (§5.2) and the sliding-window kernel (§5.3)
//! factor one column at a time inside shared memory ("the factorization can
//! be efficiently implemented by factorizing one column at a time — no
//! blocking techniques necessary"). This module implements that shared
//! column step over a [`SmemBand`] view, with the cost-recording calls that
//! drive the timing model, and with **exactly** the operation order of
//! `gbatch_core::gbtf2` so the factors are bit-for-bit identical.

use gbatch_core::gbtf2::ColumnStepState;
use gbatch_core::layout::{update_bound, BandLayout, RowClass};
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::BlockContext;

/// A window of band columns resident in shared memory.
///
/// Local column `c - col0` of the buffer holds global band column `c`
/// (full `ldab` rows, identical row semantics to the global layout).
#[derive(Debug)]
pub struct SmemBand<'a, S: Scalar = f64> {
    /// Shared-memory buffer, column-major `ldab x width`.
    pub data: &'a mut [S],
    /// Rows per column (same `ldab` as the global band array).
    pub ldab: usize,
    /// Global column index mapped to local column 0.
    pub col0: usize,
    /// Number of columns resident.
    pub width: usize,
    /// Band geometry for provenance checking: when set, debug/`verify`
    /// builds classify every `idx` access against the layout and panic on
    /// touches outside the band + fill-in region. `None` disables the check
    /// (synthetic buffers without band semantics).
    pub provenance: Option<BandLayout>,
}

impl<'a, S: Scalar> SmemBand<'a, S> {
    /// Flat index of band row `r` of *global* column `c`.
    #[inline(always)]
    pub fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(
            c >= self.col0 && c < self.col0 + self.width,
            "col {c} outside window"
        );
        debug_assert!(r < self.ldab);
        if cfg!(any(debug_assertions, feature = "verify")) {
            if let Some(l) = &self.provenance {
                if l.classify(r, c) == RowClass::OutOfRange {
                    panic!(
                        "out-of-range band access in shared window: band_row {r}, \
                         column {c} (kl={}, ku={}, ldab={}, m={}, n={})",
                        l.kl, l.ku, l.ldab, l.m, l.n
                    );
                }
            }
        }
        (c - self.col0) * self.ldab + r
    }

    /// Band element (band row `r`, global column `c`).
    #[inline(always)]
    pub fn get(&self, r: usize, c: usize) -> S {
        self.data[self.idx(r, c)]
    }

    /// Set band element.
    #[inline(always)]
    pub fn set(&mut self, r: usize, c: usize, v: S) {
        let k = self.idx(r, c);
        self.data[k] = v;
    }
}

/// `DGBTF2` prologue inside shared memory: zero the partially-reachable
/// fill rows of columns `ku+1 .. min(kv, n)` (global indices). Only valid
/// while those columns are resident.
pub fn smem_fillin_prologue<S: Scalar>(
    l: &BandLayout,
    w: &mut SmemBand<'_, S>,
    ctx: &mut BlockContext,
) {
    let kv = l.kv();
    let hi = kv.min(l.n);
    let threads = ctx.threads;
    let mut items = 0usize;
    for j in (l.ku + 1)..hi {
        if j < w.col0 || j >= w.col0 + w.width {
            continue;
        }
        if let Some(t) = ctx.smem.tracker() {
            t.striped_write(w.idx(kv - j, j), l.kl - (kv - j), threads);
        }
        for i in (kv - j)..l.kl {
            w.set(i, j, S::ZERO);
            items += 1;
        }
    }
    ctx.smem_work(items, 0);
}

/// `SET_FILLIN` for the main loop: zero the `kl` fill rows of column
/// `j + kv` when it is inside the window.
#[inline]
pub fn smem_fillin_step<S: Scalar>(
    l: &BandLayout,
    w: &mut SmemBand<'_, S>,
    j: usize,
    ctx: &mut BlockContext,
) {
    let kv = l.kv();
    if j + kv < l.n && j + kv >= w.col0 && j + kv < w.col0 + w.width {
        if l.kl > 0 {
            if let Some(t) = ctx.smem.tracker() {
                t.striped_write(w.idx(0, j + kv), l.kl, ctx.threads);
            }
        }
        for i in 0..l.kl {
            w.set(i, j + kv, S::ZERO);
        }
        ctx.smem_work(l.kl, 0);
    }
}

/// One column step of the factorization at global column `j`, operating on
/// the shared-memory window. Identical operation order to
/// [`gbatch_core::gbtf2::column_step`]. Returns the chosen pivot offset.
pub fn smem_column_step<S: Scalar>(
    l: &BandLayout,
    w: &mut SmemBand<'_, S>,
    ipiv: &mut [i32],
    j: usize,
    state: &mut ColumnStepState,
    ctx: &mut BlockContext,
) -> usize {
    let kv = l.kv();
    let km = l.km(j);
    let threads = ctx.threads;

    smem_fillin_step(l, w, j, ctx);

    // IAMAX over km + 1 candidates: parallel tree reduction in shared
    // memory — one strided scan plus a dependent read of the winner.
    let base = w.idx(kv, j);
    let mut jp = 0usize;
    let mut best = S::from_f64(-1.0);
    for k in 0..=km {
        let a = w.data[base + k].abs();
        if a > best {
            best = a;
            jp = k;
        }
    }
    if let Some(t) = ctx.smem.tracker() {
        // Candidates stripe over lanes; the reduction then hands the
        // winning value to every lane (a broadcast read) *before* the
        // barrier — which is why SWAP may overwrite it afterwards.
        t.striped_read(base, km + 1, threads);
        t.broadcast_read(base + jp);
    }
    ctx.smem_work(km + 1, 0);
    ctx.smem_trip();
    ctx.sync();

    ipiv[j] = (j + jp) as i32;
    let piv = w.data[base + jp];
    if piv != S::ZERO {
        state.ju = update_bound(state.ju.max(j), j, l.ku, jp, l.n);
        let ju = state.ju;
        debug_assert!(
            ju < w.col0 + w.width,
            "update bound {ju} escapes the window"
        );

        // SWAP to the right only (row swap walks band rows upward).
        if jp != 0 {
            if let Some(t) = ctx.smem.tracker() {
                // Column c = j + k is swapped entirely by lane k: both
                // elements read then written by the same lane.
                for (k, c) in (j..=ju).enumerate() {
                    let lane = (k % threads as usize) as u32;
                    let i1 = w.idx(kv + jp - k, c);
                    let i2 = w.idx(kv - k, c);
                    t.read(lane, i1);
                    t.read(lane, i2);
                    t.write(lane, i1);
                    t.write(lane, i2);
                }
            }
            for (k, c) in (j..=ju).enumerate() {
                let i1 = w.idx(kv + jp - k, c);
                let i2 = w.idx(kv - k, c);
                w.data.swap(i1, i2);
            }
            ctx.smem_work(ju - j + 1, 0);
        }
        ctx.sync();

        if km > 0 {
            // SCAL by the reciprocal pivot.
            if let Some(t) = ctx.smem.tracker() {
                // Every lane needs the reciprocal (broadcast); element
                // base + k is scaled in place by lane (k - 1) % threads —
                // the same lane that consumes it as a multiplier in the
                // rank-one update below, so SCAL and GER legally share
                // one epoch.
                t.broadcast_read(base);
                t.striped_read(base + 1, km, threads);
                t.striped_write(base + 1, km, threads);
            }
            let inv = S::ONE / w.data[base];
            for k in 1..=km {
                w.data[base + k] *= inv;
            }
            ctx.smem_work(km, 1);
            ctx.smem_trip();

            // RANK_ONE_UPDATE over columns j+1 ..= ju.
            if ju > j {
                let src = w.idx(kv, j);
                if let Some(t) = ctx.smem.tracker() {
                    for c in 1..=(ju - j) {
                        let dst = w.idx(kv - c, j + c);
                        // The row-j multiplier u is read by every lane.
                        t.broadcast_read(dst);
                        if w.data[dst] != S::ZERO {
                            t.striped_read(src + 1, km, threads);
                            t.striped_read(dst + 1, km, threads);
                            t.striped_write(dst + 1, km, threads);
                        }
                    }
                }
                for c in 1..=(ju - j) {
                    let u = w.get(kv - c, j + c);
                    if u == S::ZERO {
                        continue;
                    }
                    let dst = w.idx(kv - c, j + c);
                    for i in 1..=km {
                        w.data[dst + i] -= w.data[src + i] * u;
                    }
                }
                ctx.smem_work((ju - j) * km, 2);
            }
            ctx.sync();
        }
    } else if state.info == 0 {
        state.info = (j + 1) as i32;
    }
    jp
}

/// Shared-memory bytes needed to hold `cols` full band columns of `S`
/// elements — `ldab * cols * size_of::<S>()`.
#[inline]
pub fn smem_bytes_for_cols<S: Scalar>(ldab: usize, cols: usize) -> usize {
    ldab * cols * S::BYTES
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::band::BandMatrix;
    use gbatch_core::gbtf2::{gbtf2, ColumnStepState};
    use gbatch_gpu_sim::BlockContext;

    fn random_band(n: usize, kl: usize, ku: usize, seed: f64) -> BandMatrix {
        let mut a = BandMatrix::zeros_factor(n, n, kl, ku).unwrap();
        let mut v = seed;
        for j in 0..n {
            let (s, e) = a.layout().col_rows(j);
            for i in s..e {
                v = (v * 2.9 + 0.07).fract();
                a.set(i, j, v - 0.5);
            }
        }
        a
    }

    #[test]
    fn full_window_step_matches_gbtf2_bitwise() {
        // Window = whole matrix (the fused kernel's configuration).
        for (n, kl, ku) in [(12, 2, 3), (16, 10, 7), (9, 1, 0), (8, 0, 2)] {
            let a = random_band(n, kl, ku, 0.17 + n as f64 * 0.01);
            let l = a.layout();
            let mut expect = a.data().to_vec();
            let mut p1 = vec![0i32; n];
            let info1 = gbtf2(&l, &mut expect, &mut p1);

            let mut buf = a.data().to_vec();
            let mut w = SmemBand {
                data: &mut buf,
                ldab: l.ldab,
                col0: 0,
                width: n,
                provenance: Some(l),
            };
            let mut ctx = BlockContext::new(0, 4, 0);
            let mut p2 = vec![0i32; n];
            let mut st = ColumnStepState::default();
            smem_fillin_prologue(&l, &mut w, &mut ctx);
            for j in 0..n {
                smem_column_step(&l, &mut w, &mut p2, j, &mut st, &mut ctx);
            }
            assert_eq!(st.info, info1);
            assert_eq!(p1, p2);
            assert_eq!(expect, buf, "n={n} kl={kl} ku={ku}");
        }
    }

    #[test]
    fn records_costs() {
        let n = 10;
        let a = random_band(n, 2, 1, 0.5);
        let l = a.layout();
        let mut buf = a.data().to_vec();
        let mut w = SmemBand {
            data: &mut buf,
            ldab: l.ldab,
            col0: 0,
            width: n,
            provenance: Some(l),
        };
        let mut ctx = BlockContext::new(0, 4, 0);
        let mut p = vec![0i32; n];
        let mut st = ColumnStepState::default();
        for j in 0..n {
            smem_column_step(&l, &mut w, &mut p, j, &mut st, &mut ctx);
        }
        let c = ctx.counters();
        assert!(
            c.smem_elems > 0.0,
            "factorization work is shared-memory work"
        );
        assert!(c.syncs >= 2 * n as u64, "at least two barriers per column");
        assert!(c.flops > 0);
    }

    #[test]
    fn smem_band_offset_addressing() {
        let mut buf = vec![0.0; 4 * 3]; // ldab 4, width 3, col0 = 5
        let mut w = SmemBand {
            data: &mut buf,
            ldab: 4,
            col0: 5,
            width: 3,
            provenance: None,
        };
        w.set(2, 6, 9.0); // local col 1
        assert_eq!(w.get(2, 6), 9.0);
        assert_eq!(w.data[4 + 2], 9.0); // col 1, row 2 of the window
        assert_eq!(w.idx(0, 5), 0);
        assert_eq!(w.idx(3, 7), 2 * 4 + 3);
    }

    #[test]
    fn smem_bytes_helper() {
        assert_eq!(smem_bytes_for_cols::<f64>(8, 10), 640);
        assert_eq!(
            smem_bytes_for_cols::<f32>(8, 10),
            320,
            "f32 halves the footprint"
        );
    }

    #[test]
    #[cfg(any(debug_assertions, feature = "verify"))]
    #[should_panic(expected = "out-of-range band access in shared window: band_row 7, column 8")]
    fn provenance_rejects_out_of_band_write() {
        // 9x9, kl = 2, ku = 3: band row 7 of column 8 would be full-matrix
        // row 10 — past the bottom of the matrix.
        let l = BandLayout::factor(9, 9, 2, 3).unwrap();
        let mut buf = vec![0.0; l.len()];
        let mut w = SmemBand {
            data: &mut buf,
            ldab: l.ldab,
            col0: 0,
            width: l.n,
            provenance: Some(l),
        };
        w.set(7, 8, 1.0);
    }

    #[test]
    fn provenance_allows_fillin_touches() {
        let l = BandLayout::factor(9, 9, 2, 3).unwrap();
        let mut buf = vec![0.0; l.len()];
        let mut w = SmemBand {
            data: &mut buf,
            ldab: l.ldab,
            col0: 0,
            width: l.n,
            provenance: Some(l),
        };
        // (0, 5) is pivoting fill-in — legal for gbtrf-family kernels.
        w.set(0, 5, 3.5);
        assert_eq!(w.get(0, 5), 3.5);
    }
}
