//! Band-structure-specialized kernels — the paper's §8.1 discussion made
//! concrete.
//!
//! The paper observes that caching the matrix in the *register file* needs
//! `(kl, ku)` known at compile time ("efficient indexing and avoid
//! spilling"), that compiling all `KL x KU` instances is impractical, and
//! that JIT compilation (nvrtc/hiprtc) could build "a more optimized
//! kernel for a specific band structure" on demand. Rust's monomorphization
//! plays the role of the JIT here: [`gbtrf_batch_registers`] is generic
//! over `const KL: usize, const KU: usize`, so its inner loops have
//! compile-time bounds (genuinely unrolled by LLVM), and its working set
//! is a register block rather than shared memory — modeled as ALU-rate
//! work with a single cross-lane broadcast per column instead of
//! LDS-rate work plus three barriers.
//!
//! A small registry ([`specialized_gbtrf`]) instantiates the band shapes
//! the applications of Section 2 actually use, mirroring how a JIT cache
//! holds a handful of hot specializations; unknown shapes return `None`
//! and callers fall back to the generic sliding-window kernel.
//!
//! Numerics: identical to `gbtf2` for inputs whose fill rows are zero
//! (which [`gbatch_core::batch::BandBatch`] guarantees by construction) —
//! this kernel zeroes fill rows eagerly at column load, whereas LAPACK
//! zeroes them lazily at the owning step; both see the same values at
//! every arithmetic operation.

use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch};
use gbatch_core::layout::update_bound;
use gbatch_gpu_sim::{launch, DeviceSpec, LaunchConfig, LaunchError, LaunchReport};

/// Register budget per block, in `f64` values: covers a
/// `(kv + 1) x ldab` working window up to `(kl, ku) = (10, 7)`
/// (18 x 28 = 504 values).
pub const REG_BUDGET: usize = 512;

/// Register-blocked, band-specialized fused factorization.
///
/// Requires `a.layout() == (KL, KU)` and a working window within
/// [`REG_BUDGET`]. See the module docs for the numerics contract.
pub fn gbtrf_batch_registers<const KL: usize, const KU: usize>(
    dev: &DeviceSpec,
    a: &mut BandBatch,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
    threads: u32,
) -> Result<LaunchReport, LaunchError> {
    let l = a.layout();
    assert_eq!(l.kl, KL, "layout kl must match the specialization");
    assert_eq!(l.ku, KU, "layout ku must match the specialization");
    let kv = KL + KU;
    let ldab = 2 * KL + KU + 1;
    debug_assert_eq!(l.ldab, ldab);
    let n = l.n;
    let kmin = l.m.min(n);
    let reg_cols = (kv + 1).min(n);
    assert!(
        reg_cols * ldab <= REG_BUDGET,
        "band ({KL}, {KU}) exceeds the register budget — use the window kernel"
    );
    // Declare the register pressure: the window's f64 values (2 x 32-bit
    // registers each) are striped across the block's threads — exactly the
    // occupancy cost a real register-blocked kernel pays (§8.1's
    // "avoid spilling" trade-off).
    let t = threads.max((KL + 1) as u32);
    let regs_per_thread = ((reg_cols * ldab * 2) as u32).div_ceil(t) + 32;
    let cfg = LaunchConfig::with_registers(t, 0, regs_per_thread);

    struct Problem<'a> {
        ab: &'a mut [f64],
        piv: &'a mut [i32],
        info: &'a mut i32,
    }
    let mut problems: Vec<Problem<'_>> = a
        .chunks_mut()
        .zip(piv.chunks_mut())
        .zip(info.as_mut_slice().iter_mut())
        .map(|((ab, piv), info)| Problem { ab, piv, info })
        .collect();

    launch(dev, &cfg, &mut problems, |p, ctx| {
        let mut reg = [0.0f64; REG_BUDGET];

        // The register window holds global columns [col0, col0 + resident).
        // Steady state: col0 == j at the start of step j.
        let mut col0 = 0usize;
        let mut resident = 0usize;
        let load_col = |reg: &mut [f64],
                        dst_local: usize,
                        c: usize,
                        p_ab: &[f64],
                        ctx: &mut gbatch_gpu_sim::BlockContext| {
            let dst = dst_local * ldab;
            reg[dst..dst + ldab].copy_from_slice(&p_ab[c * ldab..(c + 1) * ldab]);
            // Eager fill-row zeroing (see module docs).
            for r in 0..KL {
                reg[dst + r] = 0.0;
            }
            ctx.gld(ldab * 8);
        };
        while resident < reg_cols {
            load_col(&mut reg, resident, resident, p.ab, ctx);
            resident += 1;
        }

        let mut ju = 0usize;
        let mut infoc = 0i32;
        for j in 0..kmin {
            debug_assert_eq!(col0, j, "window must start at the pivot column");
            let km = KL.min(l.m - j - 1);
            let base = kv; // local column 0, diagonal row

            // IAMAX, unrolled to the compile-time bound KL + 1.
            let mut jp = 0usize;
            let mut best = -1.0f64;
            for k in 0..=KL {
                if k <= km {
                    let v = reg[base + k].abs();
                    if v > best {
                        best = v;
                        jp = k;
                    }
                }
            }
            ctx.par_work(KL + 1, 0);
            ctx.smem_trip(); // single cross-lane broadcast of the winner

            p.piv[j] = (j + jp) as i32;
            let pivv = reg[base + jp];
            if pivv != 0.0 {
                ju = update_bound(ju.max(j), j, KU, jp, n);
                debug_assert!(ju < col0 + resident, "update escapes the register window");
                // SWAP (register shuffle along the row).
                if jp != 0 {
                    for (k, c) in (j..=ju).enumerate() {
                        let lc = c - col0;
                        reg.swap(lc * ldab + kv + jp - k, lc * ldab + kv - k);
                    }
                    ctx.par_work(ju - j + 1, 0);
                }
                if km > 0 {
                    // SCAL, compile-time trip count.
                    let inv = 1.0 / reg[base];
                    for k in 1..=KL {
                        if k <= km {
                            reg[base + k] *= inv;
                        }
                    }
                    ctx.par_work(KL, 1);
                    // RANK-1 update, compile-time trip counts.
                    if ju > j {
                        for c in 1..=(KL + KU) {
                            if c <= ju - j {
                                let lc = c; // local: column j is local 0
                                let u = reg[lc * ldab + kv - c];
                                if u != 0.0 {
                                    for i in 1..=KL {
                                        if i <= km {
                                            reg[lc * ldab + kv - c + i] -= reg[base + i] * u;
                                        }
                                    }
                                }
                            }
                        }
                        ctx.par_work((ju - j) * km, 2);
                    }
                }
            } else if infoc == 0 {
                infoc = (j + 1) as i32;
            }

            // Retire column j to global memory and slide by one.
            p.ab[j * ldab..(j + 1) * ldab].copy_from_slice(&reg[..ldab]);
            ctx.gst(ldab * 8);
            reg.copy_within(ldab..resident * ldab, 0);
            col0 += 1;
            resident -= 1;
            // Stream the next column in, if any.
            let next_global = col0 + resident;
            if next_global < n && resident < reg_cols {
                load_col(&mut reg, resident, next_global, p.ab, ctx);
                resident += 1;
            }
        }
        // Flush trailing updated columns (wide-matrix case, n > m).
        for lc in 0..resident {
            let c = col0 + lc;
            if c < n {
                p.ab[c * ldab..(c + 1) * ldab].copy_from_slice(&reg[lc * ldab..(lc + 1) * ldab]);
            }
        }
        if resident > 0 {
            ctx.gst(resident * ldab * 8);
        }
        ctx.gst(kmin * 4);
        *p.info = infoc;
    })
}

/// The "JIT cache": specializations for the band shapes of Section 2 and
/// the evaluation. Returns `None` for shapes without a compiled instance.
pub fn specialized_gbtrf(
    dev: &DeviceSpec,
    a: &mut BandBatch,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
    threads: u32,
) -> Option<Result<LaunchReport, LaunchError>> {
    let l = a.layout();
    match (l.kl, l.ku) {
        (1, 1) => Some(gbtrf_batch_registers::<1, 1>(dev, a, piv, info, threads)),
        (2, 2) => Some(gbtrf_batch_registers::<2, 2>(dev, a, piv, info, threads)),
        (2, 3) => Some(gbtrf_batch_registers::<2, 3>(dev, a, piv, info, threads)),
        (3, 3) => Some(gbtrf_batch_registers::<3, 3>(dev, a, piv, info, threads)),
        (10, 7) => Some(gbtrf_batch_registers::<10, 7>(dev, a, piv, info, threads)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::gbtf2::gbtf2;

    fn random_batch(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
        let mut v = 0.73f64;
        BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.1 + 0.067 + id as f64 * 2e-4).fract();
                    m.set(i, j, v - 0.5);
                }
            }
        })
        .unwrap()
    }

    fn check<const KL: usize, const KU: usize>(n: usize) {
        let dev = DeviceSpec::h100_pcie();
        let batch = 4;
        let mut a = random_batch(batch, n, KL, KU);
        let expected: Vec<(Vec<f64>, Vec<i32>, i32)> = (0..batch)
            .map(|id| {
                let mut ab = a.matrix(id).data.to_vec();
                let mut p = vec![0i32; n];
                let info = gbtf2(&a.layout(), &mut ab, &mut p);
                (ab, p, info)
            })
            .collect();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let _ = gbtrf_batch_registers::<KL, KU>(&dev, &mut a, &mut piv, &mut info, 32).unwrap();
        for id in 0..batch {
            assert_eq!(
                piv.pivots(id),
                &expected[id].1[..],
                "pivots KL={KL} KU={KU} n={n}"
            );
            assert_eq!(info.get(id), expected[id].2);
            assert_eq!(
                a.matrix(id).data,
                &expected[id].0[..],
                "factors KL={KL} KU={KU} n={n}"
            );
        }
    }

    #[test]
    fn specialized_matches_gbtf2_bitwise() {
        check::<1, 1>(24);
        check::<2, 3>(40);
        check::<2, 2>(17);
        check::<3, 3>(9);
        check::<10, 7>(48);
        check::<2, 3>(6); // n <= kv + 1: window never slides
        check::<1, 1>(2);
    }

    #[test]
    fn registry_covers_paper_shapes_and_rejects_others() {
        let dev = DeviceSpec::h100_pcie();
        let mut a = random_batch(2, 16, 2, 3);
        let mut piv = PivotBatch::new(2, 16, 16);
        let mut info = InfoArray::new(2);
        assert!(specialized_gbtrf(&dev, &mut a, &mut piv, &mut info, 32).is_some());
        assert!(info.all_ok());
        let mut a = random_batch(2, 16, 5, 6);
        let mut piv = PivotBatch::new(2, 16, 16);
        let mut info = InfoArray::new(2);
        assert!(specialized_gbtrf(&dev, &mut a, &mut piv, &mut info, 32).is_none());
    }

    #[test]
    fn specialization_is_faster_in_modeled_time() {
        // The register-file variant avoids LDS-rate work and barriers; the
        // model must price it below the generic window kernel (the paper's
        // expected JIT payoff).
        let dev = DeviceSpec::mi250x_gcd();
        let (batch, n) = (200, 256);
        let mut a1 = random_batch(batch, n, 2, 3);
        let mut a2 = a1.clone();
        let mut p1 = PivotBatch::new(batch, n, n);
        let mut p2 = PivotBatch::new(batch, n, n);
        let mut i1 = InfoArray::new(batch);
        let mut i2 = InfoArray::new(batch);
        let spec = gbtrf_batch_registers::<2, 3>(&dev, &mut a1, &mut p1, &mut i1, 64).unwrap();
        let generic = crate::window::gbtrf_batch_window(
            &dev,
            &mut a2,
            &mut p2,
            &mut i2,
            crate::window::WindowParams {
                nb: 8,
                threads: 64,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(a1.data(), a2.data(), "same numerics");
        assert!(
            spec.time.secs() < generic.time.secs(),
            "specialized {:.3e}s should beat generic {:.3e}s",
            spec.time.secs(),
            generic.time.secs()
        );
    }

    #[test]
    fn register_pressure_shows_in_occupancy() {
        // The wide (10,7) specialization carries a big register window; its
        // occupancy must be register-limited but still positive.
        let dev = DeviceSpec::h100_pcie();
        let mut a = random_batch(2, 32, 10, 7);
        let mut piv = PivotBatch::new(2, 32, 32);
        let mut info = InfoArray::new(2);
        let rep = gbtrf_batch_registers::<10, 7>(&dev, &mut a, &mut piv, &mut info, 32).unwrap();
        assert!(rep.occupancy.blocks_per_sm >= 1);
        assert_eq!(
            rep.occupancy.limiter,
            gbatch_gpu_sim::occupancy::Limiter::Registers,
            "the register file must be the binding resource"
        );
    }

    #[test]
    fn singular_input_flagged() {
        let dev = DeviceSpec::h100_pcie();
        let n = 12;
        let mut a = random_batch(2, n, 1, 1);
        {
            let mut m = a.matrix_mut(0);
            let (s, e) = m.layout.col_rows(3);
            for i in s..e {
                m.set(i, 3, 0.0);
            }
        }
        let mut piv = PivotBatch::new(2, n, n);
        let mut info = InfoArray::new(2);
        let _ = gbtrf_batch_registers::<1, 1>(&dev, &mut a, &mut piv, &mut info, 32).unwrap();
        assert_eq!(info.get(0), 4);
        assert_eq!(info.get(1), 0);
    }
}
