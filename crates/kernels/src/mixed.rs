//! Batched mixed-precision GBSV on the simulated GPU.
//!
//! The shared-memory capacity is the paper's binding resource (§8); an
//! `f32` working set *halves* the per-block footprint, doubling the
//! occupancy of the fused kernel — exactly the lever the paper says the
//! MI250x lacks. Each block factors and solves its system in `f32` inside
//! shared memory, then runs double-precision iterative refinement against
//! the original matrix in global memory (one extra read of the `f64` band
//! per sweep). Systems whose refinement stagnates are flagged so the host
//! can re-solve them with the `f64` path ([`crate::dispatch::dgbsv_batch`]).
//!
//! The `f32` leg runs on the precision-generic core LU
//! ([`gbatch_core::gbtf2::gbtf2`] / [`gbatch_core::gbtrs::gbtrs`]
//! instantiated at `f32`) — the same kernels behind
//! [`crate::dispatch::sgbsv_batch`].

use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch_core::gbtf2::gbtf2;
use gbatch_core::gbtrs::{gbtrs, Transpose};
use gbatch_gpu_sim::{launch, DeviceSpec, LaunchConfig, LaunchError, LaunchReport};

/// Per-system refinement outcome codes stored in the `status` array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixedStatus {
    /// Converged to `f64` accuracy; payload = sweeps used.
    Converged(u8),
    /// Stagnated: the host must re-solve this system in `f64`.
    NeedsF64,
    /// Zero pivot in the `f32` factorization.
    Singular,
}

/// Shared bytes of the mixed-precision fused kernel: the band and RHS in
/// `f32`, plus an `f64` residual buffer of `n` entries.
pub fn mixed_smem_bytes(l: &gbatch_core::layout::BandLayout, _nrhs: usize) -> usize {
    (l.len() + l.n) * std::mem::size_of::<f32>() + l.n * std::mem::size_of::<f64>()
}

/// Maximum refinement sweeps inside the kernel.
pub const KERNEL_ITERMAX: usize = 8;

/// Batched mixed-precision factorize-and-solve, single RHS.
///
/// `a` is **not** overwritten (the `f64` matrix is needed for residuals);
/// `rhs` is overwritten with solutions for converged systems and left
/// with the best iterate otherwise. `piv` receives the `f32` pivots.
pub fn msgbsv_batch_fused(
    dev: &DeviceSpec,
    a: &BandBatch,
    piv: &mut PivotBatch,
    rhs: &mut RhsBatch,
    info: &mut InfoArray,
    threads: u32,
) -> Result<(LaunchReport, Vec<MixedStatus>), LaunchError> {
    let l = a.layout();
    let n = l.n;
    assert_eq!(l.m, n);
    assert_eq!(
        rhs.nrhs(),
        1,
        "mixed kernel currently targets single-RHS batches"
    );
    let batch = a.batch();
    assert_eq!(piv.batch(), batch);
    assert_eq!(rhs.batch(), batch);
    assert_eq!(info.len(), batch);

    let cfg = LaunchConfig::new(
        threads.max((l.kl + 1) as u32),
        mixed_smem_bytes(&l, 1) as u32,
    )
    .with_label("msgbsv_fused");
    let tol = (n as f64).sqrt() * f64::EPSILON;

    struct Prob<'a> {
        ab: &'a [f64],
        piv: &'a mut [i32],
        b: &'a mut [f64],
        info: &'a mut i32,
        status: MixedStatus,
    }
    let stride = l.len();
    let mut probs: Vec<Prob<'_>> = (0..batch)
        .map(|_| ())
        .zip(piv.chunks_mut())
        .zip(rhs.blocks_mut())
        .zip(info.as_mut_slice().iter_mut())
        .enumerate()
        .map(|(id, ((((), piv), b), info))| Prob {
            ab: &a.data()[id * stride..(id + 1) * stride],
            piv,
            b,
            info,
            status: MixedStatus::NeedsF64,
        })
        .collect();

    let rep = launch(dev, &cfg, &mut probs, |p, ctx| {
        // f32 copies in "shared memory" (the arena models capacity; the
        // numerics live in typed locals).
        let smem_words = mixed_smem_bytes(&l, 1) / 8; // arena is f64-grained
        let off = ctx.smem.alloc(smem_words);
        let mut ab32: Vec<f32> = p.ab.iter().map(|&v| v as f32).collect();
        ctx.gld(l.len() * 8); // the f64 band is read once to downconvert
        ctx.sync();

        let finfo = gbtf2::<f32>(&l, &mut ab32, p.piv);
        // Cost: same column structure as the fused kernel but f32 LDS
        // traffic (half the bytes per element -> half the element groups).
        // The prediction's smem element counts are precision-independent;
        // the explicit halving below applies the f32 byte discount.
        let pred = crate::cost::predict_fused::<f64>(&l, ctx.threads.min(ctx.lds_lanes));
        ctx.smem_work(
            (pred.smem_elems * ctx.threads.min(ctx.lds_lanes) as f64 / 2.0) as usize,
            0,
        );
        for _ in 0..(2 * n) {
            ctx.sync();
        }
        if finfo != 0 {
            *p.info = finfo;
            p.status = MixedStatus::Singular;
            return;
        }
        *p.info = 0;

        // Initial f32 solve.
        let mut x32: Vec<f32> = p.b.iter().take(n).map(|&v| v as f32).collect();
        gbtrs::<f32>(Transpose::No, &l, &ab32, p.piv, &mut x32, n, 1);
        ctx.smem_work(n * (l.kv() + l.kl + 2) / 2, 2);
        let mut x: Vec<f64> = x32.iter().map(|&v| v as f64).collect();

        // Refinement sweeps: the f64 residual reads A from global memory.
        let anorm = {
            let mut row = vec![0.0f64; n];
            for j in 0..n {
                let (s, e) = l.col_rows(j);
                for i in s..e {
                    row[i] += p.ab[l.idx(l.kv() + i - j, j)].abs();
                }
            }
            row.into_iter().fold(0.0, f64::max)
        };
        let bnorm = p.b.iter().take(n).fold(0.0f64, |m, &v| m.max(v.abs()));
        let mut prev = f64::INFINITY;
        let mut converged = None;
        for iter in 0..KERNEL_ITERMAX {
            // r = b - A x in f64.
            let mut r: Vec<f64> = p.b[..n].to_vec();
            for j in 0..n {
                let xj = x[j];
                if xj == 0.0 {
                    continue;
                }
                let (s, e) = l.col_rows(j);
                for i in s..e {
                    r[i] -= p.ab[l.idx(l.kv() + i - j, j)] * xj;
                }
            }
            ctx.gld(l.nnz() * 8); // re-read the f64 band
            ctx.par_work(2 * l.nnz(), 2);
            let rnorm = r.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            let xnorm = x.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
            let denom = anorm * xnorm + bnorm;
            if denom == 0.0 || rnorm <= tol * denom {
                converged = Some(iter);
                break;
            }
            if rnorm >= prev * 0.5 {
                break;
            }
            prev = rnorm;
            let mut d32: Vec<f32> = r.iter().map(|&v| v as f32).collect();
            gbtrs::<f32>(Transpose::No, &l, &ab32, p.piv, &mut d32, n, 1);
            ctx.smem_work(n * (l.kv() + l.kl + 2) / 2, 2);
            for (xi, &d) in x.iter_mut().zip(&d32) {
                *xi += d as f64;
            }
            ctx.sync();
        }
        p.b[..n].copy_from_slice(&x);
        ctx.gst(n * 8 + n * 4);
        p.status = match converged {
            Some(it) => MixedStatus::Converged(it as u8),
            None => MixedStatus::NeedsF64,
        };
        let _ = off;
    })?;
    let statuses = probs.into_iter().map(|p| p.status).collect();
    Ok((rep, statuses))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::residual::backward_error;
    use gbatch_workloads::random::{random_band_batch, BandDistribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn system(batch: usize, n: usize, kl: usize, ku: usize) -> (BandBatch, RhsBatch) {
        let mut rng = StdRng::seed_from_u64(99);
        let a = random_band_batch(
            &mut rng,
            batch,
            n,
            kl,
            ku,
            BandDistribution::DiagonallyDominant { margin: 1.0 },
        );
        let b = RhsBatch::from_fn(batch, n, 1, |id, i, _| ((id + i) as f64 * 0.29).sin()).unwrap();
        (a, b)
    }

    #[test]
    fn converges_to_f64_accuracy_on_well_conditioned_batches() {
        let dev = DeviceSpec::h100_pcie();
        let (batch, n, kl, ku) = (16usize, 96usize, 2usize, 3usize);
        let (a, b0) = system(batch, n, kl, ku);
        let mut b = b0.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let (_, status) = msgbsv_batch_fused(&dev, &a, &mut piv, &mut b, &mut info, 32).unwrap();
        for id in 0..batch {
            assert!(
                matches!(status[id], MixedStatus::Converged(_)),
                "system {id}: {:?}",
                status[id]
            );
            let berr = backward_error(a.matrix(id), b.block(id), b0.block(id));
            assert!(berr < 1e-13, "system {id}: berr {berr:.2e}");
        }
    }

    #[test]
    fn smem_footprint_halves_vs_f64_fused_gbsv() {
        let l = gbatch_core::layout::BandLayout::factor(256, 256, 2, 3).unwrap();
        let f64_bytes = crate::gbsv_fused::gbsv_smem_bytes::<f64>(&l, 1);
        let f32_bytes = mixed_smem_bytes(&l, 1);
        assert!(
            (f32_bytes as f64) < 0.75 * f64_bytes as f64,
            "mixed {f32_bytes} B vs f64 {f64_bytes} B"
        );
    }

    #[test]
    fn occupancy_doubles_on_the_mi250x() {
        // The paper's capacity-starved device benefits most.
        let dev = DeviceSpec::mi250x_gcd();
        let n = 512;
        let l = gbatch_core::layout::BandLayout::factor(n, n, 2, 3).unwrap();
        let occ64 = gbatch_gpu_sim::occupancy::occupancy(
            &dev,
            64,
            crate::gbsv_fused::gbsv_smem_bytes::<f64>(&l, 1) as u32,
        )
        .unwrap();
        let occ32 =
            gbatch_gpu_sim::occupancy::occupancy(&dev, 64, mixed_smem_bytes(&l, 1) as u32).unwrap();
        assert!(
            occ32.blocks_per_sm >= 2 * occ64.blocks_per_sm,
            "f32 {} vs f64 {} blocks/CU",
            occ32.blocks_per_sm,
            occ64.blocks_per_sm
        );
    }

    #[test]
    fn singular_systems_flagged() {
        let dev = DeviceSpec::h100_pcie();
        let (batch, n) = (3usize, 20usize);
        let (mut a, b0) = system(batch, n, 1, 1);
        {
            let mut m = a.matrix_mut(1);
            let (s, e) = m.layout.col_rows(4);
            for i in s..e {
                m.set(i, 4, 0.0);
            }
        }
        let mut b = b0.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let (_, status) = msgbsv_batch_fused(&dev, &a, &mut piv, &mut b, &mut info, 32).unwrap();
        assert_eq!(status[1], MixedStatus::Singular);
        assert_eq!(info.get(1), 5);
        assert!(matches!(status[0], MixedStatus::Converged(_)));
        assert!(matches!(status[2], MixedStatus::Converged(_)));
    }
}
