//! Model-vs-kernel conformance driver.
//!
//! For every modeled family and a grid of concrete shapes, this module
//! runs the *real* kernel under
//! [`HazardMode::Trace`](gbatch_gpu_sim::hazard::HazardMode::Trace),
//! harvests the data-dependent facts the model's schedule needs (pivot
//! offsets, nonzero flags) by replaying the numerics on the host, and
//! asserts that the model's predicted footprint
//! ([`gbatch_analyzer::concretize`]) matches the kernel's recorded one
//! epoch by epoch and access by access. A model that drifts from its
//! kernel — a missed access, a wrong guard, an extra barrier — fails here
//! with a located divergence, which is what makes the race proof in
//! [`crate::access_model`] trustworthy.
//!
//! The batches are seeded so the data-dependent paths all fire: a
//! diagonally dominant block (`jp = 0` everywhere), a bottom-heavy block
//! (pivoting on every column with `kl > 0`), a mixed block with genuine
//! in-band zeros (exercising the `u_nz`/`bx_nz`/`fwd_nz` skip paths), and
//! a block whose first column is zero (exercising the zero-pivot
//! head-only epoch and the GBSV `info` machine).

use crate::access_model::{registry, Rigor};
use crate::fused::{gbtrf_batch_fused, FusedParams};
use crate::gbsv_fused::gbsv_batch_fused;
use crate::gbtrs_blocked::{gbtrs_batch_blocked, SolveParams};
use crate::interleaved::{
    gbtrf_batch_interleaved, gbtrs_batch_interleaved, interleave_launch, InterleavedParams,
};
use crate::window::{gbtrf_batch_window, WindowParams};
use gbatch_analyzer::{compare_trace, concretize, KernelModel, Oracle, Shape};
use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch_core::gbtf2::gbtf2;
use gbatch_core::layout::BandLayout;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::hazard::{self, HazardMode};
use gbatch_gpu_sim::{DeviceSpec, HazardReport, ParallelPolicy};

/// Restores the process-wide hazard mode on drop, so a failed conformance
/// check cannot leak `Trace` mode into unrelated tests.
struct ModeGuard(HazardMode);

impl Drop for ModeGuard {
    fn drop(&mut self) {
        hazard::set_global_mode(self.0);
    }
}

fn trace_mode() -> ModeGuard {
    let guard = ModeGuard(hazard::global_mode());
    hazard::set_global_mode(HazardMode::Trace);
    guard
}

/// Number of matrices in each conformance batch.
pub const CONFORMANCE_BATCH: usize = 4;

/// Deterministic band seed covering all four data regimes (see module
/// docs). `id` is taken modulo 4.
fn seed_band<S: Scalar>(id: usize, i: usize, j: usize) -> S {
    let base = (((i * 7 + j * 3 + id) % 11) as f64) * 0.25 - 1.0;
    let x = match id % 4 {
        // Diagonally dominant: |diag| >= 3 vs off-diag <= 0.375 — the
        // pivot search never leaves the diagonal on the original matrix.
        0 => {
            if i == j {
                base + 4.0
            } else {
                base * 0.25
            }
        }
        // Bottom-heavy: the subdiagonal dominates, forcing jp != 0
        // whenever kl > 0.
        1 => {
            if i > j {
                base + 3.0
            } else {
                base
            }
        }
        // Mixed magnitudes with genuine in-band zeros: exercises the
        // nonzero-gated update skips.
        2 => {
            if (i * 5 + j * 2).is_multiple_of(7) {
                0.0
            } else if i == j {
                base + 0.4
            } else {
                base
            }
        }
        // First column identically zero: info = 1, zero-pivot epochs.
        _ => {
            if j == 0 {
                0.0
            } else if i == j {
                base + 1.5
            } else {
                base
            }
        }
    };
    S::from_f64(x)
}

fn seed_rhs<S: Scalar>(id: usize, row: usize, col: usize) -> S {
    if (row + col + id).is_multiple_of(5) {
        S::ZERO
    } else {
        S::from_f64((((row * 3 + col * 7 + id) % 9) as f64) * 0.5 - 1.0)
    }
}

fn factor_batch<S: Scalar>(shape: &Shape, batch: usize) -> BandBatch<S> {
    BandBatch::from_fn(batch, shape.n, shape.n, shape.kl, shape.ku, |id, m| {
        for j in 0..shape.n {
            for i in j.saturating_sub(shape.ku)..=(j + shape.kl).min(shape.n - 1) {
                m.set(i, j, seed_band::<S>(id, i, j));
            }
        }
    })
    .expect("conformance shape must be a valid band layout")
}

/// Host-factor one band block and harvest the factor-family oracle:
/// pivot offsets `jp`, the `piv_nz` flags, and the `u_nz` flags gating the
/// rank-1 update columns. Returns the factored band and pivots too (the
/// GBSV and GBTRS oracles replay against the final factors).
fn factor_oracle<S: Scalar>(l: &BandLayout, band: &[S]) -> (Vec<S>, Vec<i32>, Oracle) {
    let n = l.n;
    let kv = l.kv();
    let mut ab = band.to_vec();
    let mut ipiv = vec![0i32; n];
    gbtf2(l, &mut ab, &mut ipiv);
    let mut oracle = Oracle {
        jp: (0..n).map(|j| i64::from(ipiv[j]) - j as i64).collect(),
        ..Oracle::default()
    };
    for j in 0..n {
        // Column j is final after step j, so the *final* factors give the
        // exact values the kernel saw mid-run.
        oracle
            .flags
            .insert(("piv_nz", vec![j as i64]), ab[l.idx(kv, j)] != S::ZERO);
        for c in 1..=kv.min(n - 1 - j) {
            oracle.flags.insert(
                ("u_nz", vec![j as i64, c as i64]),
                ab[l.idx(kv - c, j + c)] != S::ZERO,
            );
        }
    }
    (ab, ipiv, oracle)
}

/// Extend a factor oracle with the GBSV forward-solve flags `bx_nz(c, j)`
/// by mirroring the kernel's interleaved factor/forward machine — the same
/// first-zero-pivot skip, the same swap, the same update order — against
/// the final factors (exact: column `j` is final by the time the kernel's
/// forward step reads it).
fn gbsv_extend_oracle<S: Scalar>(
    l: &BandLayout,
    ab_f: &[S],
    ipiv: &[i32],
    rhs_block: &[S],
    nrhs: usize,
    oracle: &mut Oracle,
) {
    let n = l.n;
    let kl = l.kl;
    let kv = l.kv();
    if kl == 0 || n < 2 {
        return;
    }
    let mut bx = rhs_block.to_vec();
    let mut info = 0usize;
    for j in 0..n - 1 {
        if ab_f[l.idx(kv, j)] == S::ZERO && info == 0 {
            info = j + 1;
        }
        if info != 0 && info == j + 1 {
            continue; // first zero-pivot column: kernel skips its forward step
        }
        let pr = ipiv[j] as usize;
        if pr != j {
            for c in 0..nrhs {
                bx.swap(c * n + pr, c * n + j);
            }
        }
        let lm = kl.min(n - 1 - j);
        for c in 0..nrhs {
            let bj = bx[c * n + j];
            oracle
                .flags
                .insert(("bx_nz", vec![c as i64, j as i64]), bj != S::ZERO);
            if bj != S::ZERO {
                for i in 1..=lm {
                    let m = ab_f[l.idx(kv + i, j)];
                    bx[c * n + j + i] -= m * bj;
                }
            }
        }
    }
}

/// Harvest the GBTRS oracle for one block: `jp` from the host pivots,
/// `fwd_nz(c, j)` (the post-swap RHS value driving the forward rank-1) and
/// `bwd_nz(c, j)` (the pre-division value driving the backward column
/// step), by replaying both substitutions on the host.
fn gbtrs_oracle<S: Scalar>(
    l: &BandLayout,
    ab_f: &[S],
    ipiv: &[i32],
    rhs_block: &[S],
    nrhs: usize,
) -> Oracle {
    let n = l.n;
    let kl = l.kl;
    let kv = l.kv();
    let mut oracle = Oracle {
        jp: (0..n).map(|j| i64::from(ipiv[j]) - j as i64).collect(),
        ..Oracle::default()
    };
    for c in 0..nrhs {
        let mut y = rhs_block[c * n..(c + 1) * n].to_vec();
        if kl > 0 && n > 1 {
            for j in 0..n - 1 {
                y.swap(j, ipiv[j] as usize);
                let flag = y[j] != S::ZERO;
                oracle
                    .flags
                    .insert(("fwd_nz", vec![c as i64, j as i64]), flag);
                if flag {
                    for i in 1..=kl.min(n - 1 - j) {
                        let m = ab_f[l.idx(kv + i, j)];
                        y[j + i] = y[j + i] - m * y[j];
                    }
                }
            }
        }
        for j in (0..n).rev() {
            oracle
                .flags
                .insert(("bwd_nz", vec![c as i64, j as i64]), y[j] != S::ZERO);
            let bj = y[j] / ab_f[l.idx(kv, j)];
            y[j] = bj;
            if bj != S::ZERO {
                for i in 1..=kv.min(j) {
                    let m = ab_f[l.idx(kv - i, j)];
                    y[j - i] -= m * bj;
                }
            }
        }
    }
    oracle
}

/// Check one launch's per-block traces against per-block oracles.
fn check_blocks(
    model: &KernelModel,
    shape: &Shape,
    sbytes: usize,
    reports: &[HazardReport],
    oracles: &[Oracle],
) -> Result<usize, String> {
    if reports.len() != oracles.len() {
        return Err(format!(
            "{} at {:?}: {} traced blocks for {} matrices",
            model.family,
            shape,
            reports.len(),
            oracles.len()
        ));
    }
    for (id, rep) in reports.iter().enumerate() {
        if rep.block_id != id {
            return Err(format!(
                "{} at {:?}: trace {} has block id {}",
                model.family, shape, id, rep.block_id
            ));
        }
        if rep.label != model.label {
            return Err(format!(
                "{} at {:?}: kernel label `{}` != model label `{}`",
                model.family, shape, rep.label, model.label
            ));
        }
        if rep.total_hazards != 0 {
            return Err(format!(
                "{} at {:?}: block {} recorded {} hazards",
                model.family, shape, id, rep.total_hazards
            ));
        }
        let predicted = concretize(model, shape, &oracles[id], sbytes);
        compare_trace(&predicted, rep)
            .map_err(|e| format!("{} at {:?}: {}", model.family, shape, e))?;
    }
    Ok(reports.len())
}

fn conform_factor<S: Scalar>(
    dev: &DeviceSpec,
    model: &KernelModel,
    shape: &Shape,
) -> Result<usize, String> {
    let mut a = factor_batch::<S>(shape, CONFORMANCE_BATCH);
    let l = a.layout();
    let pristine = a.data().to_vec();
    let stride = a.matrix_stride();
    let mut piv = PivotBatch::new(CONFORMANCE_BATCH, shape.n, shape.n);
    let mut info = InfoArray::new(CONFORMANCE_BATCH);
    let rep = {
        let _guard = trace_mode();
        match model.family {
            "gbtrf_fused" => gbtrf_batch_fused(
                dev,
                &mut a,
                &mut piv,
                &mut info,
                FusedParams {
                    threads: shape.threads as u32,
                    parallel: ParallelPolicy::Serial,
                },
            ),
            "gbtrf_window" => gbtrf_batch_window(
                dev,
                &mut a,
                &mut piv,
                &mut info,
                WindowParams {
                    nb: shape.nb,
                    threads: shape.threads as u32,
                    parallel: ParallelPolicy::Serial,
                },
            ),
            other => panic!("not a factor family: {other}"),
        }
        .map_err(|e| format!("{} at {shape:?}: launch failed: {e}", model.family))?
    };
    let oracles: Vec<Oracle> = (0..CONFORMANCE_BATCH)
        .map(|id| factor_oracle::<S>(&l, &pristine[id * stride..(id + 1) * stride]).2)
        .collect();
    check_blocks(model, shape, S::BYTES, &rep.hazards, &oracles)
}

fn conform_gbsv<S: Scalar>(
    dev: &DeviceSpec,
    model: &KernelModel,
    shape: &Shape,
) -> Result<usize, String> {
    let mut a = factor_batch::<S>(shape, CONFORMANCE_BATCH);
    let l = a.layout();
    let pristine = a.data().to_vec();
    let stride = a.matrix_stride();
    let mut rhs = RhsBatch::<S>::from_fn(CONFORMANCE_BATCH, shape.n, shape.nrhs, seed_rhs::<S>)
        .expect("valid rhs shape");
    let pristine_rhs = rhs.block(0).len();
    debug_assert_eq!(
        pristine_rhs,
        shape.n * shape.nrhs,
        "gbsv oracle assumes ldb == n"
    );
    let rhs_blocks: Vec<Vec<S>> = (0..CONFORMANCE_BATCH)
        .map(|id| rhs.block(id).to_vec())
        .collect();
    let mut piv = PivotBatch::new(CONFORMANCE_BATCH, shape.n, shape.n);
    let mut info = InfoArray::new(CONFORMANCE_BATCH);
    let rep = {
        let _guard = trace_mode();
        gbsv_batch_fused(
            dev,
            &mut a,
            &mut piv,
            &mut rhs,
            &mut info,
            shape.threads as u32,
            ParallelPolicy::Serial,
        )
        .map_err(|e| format!("{} at {shape:?}: launch failed: {e}", model.family))?
    };
    let oracles: Vec<Oracle> = (0..CONFORMANCE_BATCH)
        .map(|id| {
            let (ab_f, ipiv, mut oracle) =
                factor_oracle::<S>(&l, &pristine[id * stride..(id + 1) * stride]);
            gbsv_extend_oracle::<S>(&l, &ab_f, &ipiv, &rhs_blocks[id], shape.nrhs, &mut oracle);
            oracle
        })
        .collect();
    check_blocks(model, shape, S::BYTES, &rep.hazards, &oracles)
}

fn conform_gbtrs<S: Scalar>(
    dev: &DeviceSpec,
    forward: &KernelModel,
    backward: &KernelModel,
    shape: &Shape,
) -> Result<usize, String> {
    // GBTRS wants (mostly) nonsingular factors: reuse the first three band
    // regimes and skip the singular one.
    let batch = 3usize;
    let a = factor_batch::<S>(shape, batch);
    let l = a.layout();
    let stride = a.matrix_stride();
    let mut factors = a.data().to_vec();
    let mut piv = PivotBatch::new(batch, shape.n, shape.n);
    for id in 0..batch {
        gbtf2(
            &l,
            &mut factors[id * stride..(id + 1) * stride],
            piv.pivots_mut(id),
        );
    }
    let mut rhs =
        RhsBatch::<S>::from_fn(batch, shape.n, shape.nrhs, seed_rhs::<S>).expect("valid rhs shape");
    let rhs_blocks: Vec<Vec<S>> = (0..batch).map(|id| rhs.block(id).to_vec()).collect();
    let rep = {
        let _guard = trace_mode();
        gbtrs_batch_blocked(
            dev,
            &l,
            &factors,
            &piv,
            &mut rhs,
            SolveParams {
                nb: shape.nb,
                threads: shape.threads as u32,
                parallel: ParallelPolicy::Serial,
            },
        )
        .map_err(|e| format!("gbtrs at {shape:?}: launch failed: {e}"))?
    };
    let oracles: Vec<Oracle> = (0..batch)
        .map(|id| {
            gbtrs_oracle::<S>(
                &l,
                &factors[id * stride..(id + 1) * stride],
                piv.pivots(id),
                &rhs_blocks[id],
                shape.nrhs,
            )
        })
        .collect();
    let mut checks = 0;
    match (&rep.forward, shape.kl > 0 && shape.n > 1) {
        (Some(f), true) => {
            checks += check_blocks(forward, shape, S::BYTES, &f.hazards, &oracles)?;
        }
        (None, false) => {}
        (Some(_), false) => {
            return Err(format!("gbtrs at {shape:?}: unexpected forward launch"));
        }
        (None, true) => {
            return Err(format!("gbtrs at {shape:?}: forward launch missing"));
        }
    }
    checks += check_blocks(backward, shape, S::BYTES, &rep.backward.hazards, &oracles)?;
    Ok(checks)
}

/// The interleaved kernels are lane-private: they must make *no* tracked
/// shared-memory accesses at all. Run relayout + factor + solve under
/// `Trace` and require completely empty hazard reports.
fn conform_interleaved<S: Scalar>(dev: &DeviceSpec, shape: &Shape) -> Result<usize, String> {
    let src = factor_batch::<S>(shape, CONFORMANCE_BATCH);
    let params = InterleavedParams {
        lanes_per_block: shape.lanes,
        threads: shape.threads as u32,
        parallel: ParallelPolicy::Serial,
        ..InterleavedParams::default()
    };
    let _guard = trace_mode();
    let (mut il, rep0) = interleave_launch(dev, &src, params)
        .map_err(|e| format!("interleave at {shape:?}: launch failed: {e}"))?;
    let mut piv = PivotBatch::new(CONFORMANCE_BATCH, shape.n, shape.n);
    let mut info = InfoArray::new(CONFORMANCE_BATCH);
    let rep1 = gbtrf_batch_interleaved(dev, &mut il, &mut piv, &mut info, params)
        .map_err(|e| format!("gbtrf_interleaved at {shape:?}: launch failed: {e}"))?;
    let mut rhs = RhsBatch::<S>::from_fn(CONFORMANCE_BATCH, shape.n, shape.nrhs, seed_rhs::<S>)
        .expect("valid rhs shape");
    let rep2 = gbtrs_batch_interleaved(dev, &il, &piv, &mut rhs, &info, params)
        .map_err(|e| format!("gbtrs_interleaved at {shape:?}: launch failed: {e}"))?;
    for (rep, which) in [(&rep0, "relayout"), (&rep1, "factor"), (&rep2, "solve")] {
        if !rep.hazards.is_empty() {
            return Err(format!(
                "interleaved {which} at {shape:?}: lane-private kernel produced {} trace reports",
                rep.hazards.len()
            ));
        }
    }
    Ok(3)
}

/// Conform the SPIKE coupling kernels: run extract / combine / residual
/// over a 3-way partition of a single matrix under `Trace` and match the
/// staged-slice epochs against the models. The residual kernel is
/// lane-private and must leave an empty trace. Shapes with an empty band
/// (`kl + ku == 0`) are outside the split driver's domain and are
/// skipped.
fn conform_spike<S: Scalar>(
    dev: &DeviceSpec,
    extract: &KernelModel,
    combine: &KernelModel,
    shape: &Shape,
) -> Result<usize, String> {
    use crate::spike::{
        spike_combine_launch, spike_extract_launch, spike_residual_launch, SpikeMode, SpikeParams,
    };
    use gbatch_core::spike::SpikePartition;
    let (kl, ku, nrhs) = (shape.kl, shape.ku, shape.nrhs);
    if kl + ku == 0 {
        return Ok(0);
    }
    // Three blocks, with the shape's own `n` perturbing the remainder so
    // the identity-padded last block is exercised too.
    let n = 3 * (kl + ku + 1) + shape.n;
    let sshape = Shape { n, ..*shape };
    let part = SpikePartition::new(n, kl, ku, 3);
    if part.interfaces() == 0 {
        return Ok(0);
    }
    let a = factor_batch::<S>(&sshape, 1);
    let params = SpikeParams {
        parts: part.parts,
        mode: SpikeMode::Exact,
        max_refine: 0,
        nb: shape.nb,
        threads: shape.threads as u32,
        parallel: ParallelPolicy::Serial,
    };
    let _guard = trace_mode();
    let (_, rep) = spike_extract_launch(dev, &a, 0, &part, &params)
        .map_err(|e| format!("spike_extract at {shape:?}: launch failed: {e}"))?;
    let oracles = vec![Oracle::default(); part.interfaces()];
    let mut checks = check_blocks(extract, &sshape, S::BYTES, &rep.hazards, &oracles)?;

    let aug = RhsBatch::<S>::from_fn(part.parts, part.block, nrhs + ku + kl, seed_rhs::<S>)
        .expect("valid augmented rhs shape");
    let y: Vec<S> = (0..part.reduced_order() * nrhs)
        .map(|i| seed_rhs::<S>(0, i % 7, i / 7))
        .collect();
    let (_, rep) = spike_combine_launch(dev, &part, &aug, &aug, nrhs, nrhs, &y, &params)
        .map_err(|e| format!("spike_combine at {shape:?}: launch failed: {e}"))?;
    let oracles = vec![Oracle::default(); part.parts];
    checks += check_blocks(combine, &sshape, S::BYTES, &rep.hazards, &oracles)?;

    let x: Vec<S> = (0..n * nrhs)
        .map(|i| seed_rhs::<S>(1, i % 9, i / 9))
        .collect();
    let f: Vec<S> = (0..n * nrhs)
        .map(|i| seed_rhs::<S>(2, i % 8, i / 8))
        .collect();
    let (_, rep) = spike_residual_launch(dev, &a, 0, &part, &x, &f, nrhs, &params)
        .map_err(|e| format!("spike_residual at {shape:?}: launch failed: {e}"))?;
    if !rep.hazards.is_empty() {
        return Err(format!(
            "spike_residual at {shape:?}: lane-private kernel produced {} trace reports",
            rep.hazards.len()
        ));
    }
    Ok(checks + 1)
}

/// The conformance shape grid. Every shape keeps `threads >= kl + 1` so
/// the requested thread count is also the effective one the models stripe
/// over. The grid covers both window shift paths (`keep <= jb` merged,
/// `keep > jb` split), `kl = 0`, tall bands, and `n = 1`.
pub fn conformance_shapes(rigor: Rigor) -> Vec<Shape> {
    let mk = |(n, kl, ku, nb, nrhs, threads): (usize, usize, usize, usize, usize, usize)| Shape {
        n,
        kl,
        ku,
        nrhs,
        nb,
        threads,
        lanes: 2,
    };
    let mut raw = vec![
        (1, 0, 0, 1, 1, 4),
        (3, 1, 0, 1, 1, 2),
        (4, 1, 1, 2, 2, 4),
        // kl=2, ku=1, nb=1: window keep = 4 > jb = 1 — the split shift.
        (5, 2, 1, 1, 2, 4),
        (6, 0, 2, 2, 1, 3),
        (7, 2, 2, 3, 2, 8),
        (8, 3, 1, 2, 3, 4),
        (9, 2, 3, 4, 2, 8),
    ];
    if rigor == Rigor::Full {
        raw.extend([
            (2, 0, 1, 1, 1, 4),
            (5, 4, 0, 2, 1, 8),
            (6, 1, 1, 1, 2, 2),
            (9, 4, 2, 3, 2, 8),
            (10, 3, 3, 3, 3, 4),
            (10, 2, 1, 1, 1, 3),
            (11, 1, 2, 2, 2, 3),
            (12, 0, 3, 2, 2, 4),
            (12, 3, 2, 4, 3, 8),
        ]);
    }
    raw.into_iter().map(mk).collect()
}

/// Run the full conformance pass for scalar type `S`: every modeled family
/// at every applicable shape. Returns the number of per-block trace
/// matches performed, or the first located divergence.
pub fn run_conformance<S: Scalar>(rigor: Rigor) -> Result<usize, String> {
    let dev = DeviceSpec::h100_pcie();
    let models = registry(rigor);
    let by_family = |name: &str| -> &KernelModel {
        models
            .iter()
            .find(|m| m.family == name)
            .unwrap_or_else(|| panic!("registry has no family {name}"))
    };
    let mut checks = 0;
    for shape in conformance_shapes(rigor) {
        assert!(
            shape.threads > shape.kl,
            "conformance shape {shape:?} must keep threads >= kl + 1"
        );
        checks += conform_factor::<S>(&dev, by_family("gbtrf_fused"), &shape)?;
        checks += conform_factor::<S>(&dev, by_family("gbtrf_window"), &shape)?;
        checks += conform_gbsv::<S>(&dev, by_family("gbsv_fused"), &shape)?;
        checks += conform_gbtrs::<S>(
            &dev,
            by_family("gbtrs_forward"),
            by_family("gbtrs_backward"),
            &shape,
        )?;
        checks += conform_interleaved::<S>(&dev, &shape)?;
        checks += conform_spike::<S>(
            &dev,
            by_family("spike_extract"),
            by_family("spike_combine"),
            &shape,
        )?;
    }
    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_oracle_marks_singular_first_column() {
        let shape = Shape {
            n: 4,
            kl: 1,
            ku: 1,
            nrhs: 1,
            nb: 1,
            threads: 4,
            lanes: 1,
        };
        let a = factor_batch::<f64>(&shape, 4);
        let l = a.layout();
        let stride = a.matrix_stride();
        let (_, _, oracle) = factor_oracle::<f64>(&l, &a.data()[3 * stride..4 * stride]);
        assert!(
            !oracle.flag("piv_nz", &[0]),
            "seed 3 has a zero first column"
        );
        assert_eq!(oracle.jp[0], 0);
        let (_, _, dom) = factor_oracle::<f64>(&l, &a.data()[..stride]);
        assert!((0..4).all(|j| dom.jp[j] == 0), "dominant seed never pivots");
    }

    #[test]
    fn bottom_heavy_seed_actually_pivots() {
        let shape = Shape {
            n: 5,
            kl: 2,
            ku: 1,
            nrhs: 1,
            nb: 1,
            threads: 4,
            lanes: 1,
        };
        let a = factor_batch::<f64>(&shape, 4);
        let l = a.layout();
        let stride = a.matrix_stride();
        let (_, _, oracle) = factor_oracle::<f64>(&l, &a.data()[stride..2 * stride]);
        assert!(oracle.jp.iter().any(|&jp| jp != 0), "no pivoting exercised");
    }
}
