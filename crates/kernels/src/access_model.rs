//! Declarative [`KernelModel`]s for every shared-memory kernel family.
//!
//! Each model states, per barrier epoch, exactly which shared-memory
//! elements each lane touches — as symbolic expressions over the shape
//! parameters — plus the family's shared-memory byte formula and the
//! parameter envelope it is verified over. The analyzer proves the
//! templates race-free across the whole envelope ([`prove_model`]), audits
//! the byte formula against device limits, and replays the
//! [`schedule`](KernelModel::schedule) against the real kernel's
//! `HazardMode::Trace` footprint so model and kernel cannot drift apart.
//!
//! The factor families (fused, window, gbsv) share one column-step
//! sub-model ([`col_templates`]) because they share the real column step
//! ([`crate::step::smem_column_step`]): an IAMAX *head* epoch (which also
//! carries the fill-in writes and, on the very first column, the `DGBTF2`
//! prologue), a pivot-row *swap* epoch, and a fused *scal + rank-1* epoch.
//!
//! [`fixtures`] re-introduces, as standalone negative models, the two
//! historical barrier bugs this stack actually shipped and fixed: the
//! single-epoch window shift (reads and writes of overlapping ranges in
//! one epoch) and the GBSV RHS swap merged with the broadcast-consuming
//! forward update. The verifier must reject both with concrete
//! counterexample shapes.

use gbatch_analyzer::{
    ceil8, emax, emin, k, v, Access, AccessKind, AllocModel, Envelope, EpochInstance,
    EpochTemplate, Expr, KernelModel, Oracle, Pattern, Shape, VarDef,
};
use gbatch_analyzer::{Env, Pred};
use gbatch_core::layout::update_bound;

/// How much of the parameter envelope to enumerate: `Quick` for tier-1
/// tests, `Full` for `cargo xtask verify-kernels` / CI.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Rigor {
    /// Small grids — seconds, run in the test suite.
    Quick,
    /// The full supported envelope — the release gate.
    Full,
}

impl Rigor {
    fn pick(self, quick: &[i64], full: &[i64]) -> Vec<i64> {
        match self {
            Rigor::Quick => quick.to_vec(),
            Rigor::Full => full.to_vec(),
        }
    }
}

fn derived_band() -> Vec<(&'static str, Expr)> {
    vec![
        ("kv", v("kl") + v("ku")),
        ("ldab", k(2) * v("kl") + v("ku") + k(1)),
    ]
}

fn envelope(grid: Vec<(&'static str, Vec<i64>)>) -> Envelope {
    Envelope {
        grid,
        derived: derived_band(),
        frees: vec![("n", 1, 1 << 20)],
        threads: vec![2, 3, 4, 8],
        search_n: vec![1, 2, 3, 4, 6, 8],
    }
}

/// Schedule-epoch constructor: template `tpl` with the given concrete
/// epoch variables.
fn inst(tpl: usize, env: &[(&'static str, i64)]) -> EpochInstance {
    EpochInstance {
        template: Some(tpl),
        env: env.iter().copied().collect(),
    }
}

/// A barrier epoch in which the kernel touches no shared memory.
fn empty() -> EpochInstance {
    EpochInstance {
        template: None,
        env: Env::new(),
    }
}

// ---------------------------------------------------------------------------
// Shared column-step sub-model (fused / window / gbsv factor path)
// ---------------------------------------------------------------------------

/// Context distinguishing the column-step hosts: which allocation the band
/// window lives in, which global column maps to local column 0, and the
/// column range one epoch's `j` may take.
struct ColCtx {
    alloc: usize,
    col0: Expr,
    /// Extra template variables (the window family's `j0`).
    extra: Vec<VarDef>,
    j_lo: Expr,
    j_hi: Expr,
    /// Extra guards for the first-column prologue (window: `j0 == 0`).
    prologue_guards: Vec<Expr>,
}

impl ColCtx {
    /// Flat window offset of band row `r` of global column `c`
    /// (mirrors `SmemBand::idx`).
    fn lidx(&self, r: Expr, c: Expr) -> Expr {
        (c - self.col0.clone()) * v("ldab") + r
    }

    fn base_vars(&self) -> Vec<VarDef> {
        let mut vars = self.extra.clone();
        vars.push(VarDef::new("j", self.j_lo.clone(), self.j_hi.clone()));
        vars.push(VarDef::fixed("km", emin(v("kl"), v("n") - k(1) - v("j"))));
        vars
    }
}

fn striped(alloc: usize, kind: AccessKind, base: Expr, len: Expr) -> Access {
    Access {
        alloc,
        kind,
        pattern: Pattern::Striped { base, len },
        vars: Vec::new(),
        guards: Vec::new(),
        preds: Vec::new(),
    }
}

fn owned(alloc: usize, kind: AccessKind, owner: Expr, base: Expr, len: Expr) -> Access {
    Access {
        alloc,
        kind,
        pattern: Pattern::Owned { owner, base, len },
        vars: Vec::new(),
        guards: Vec::new(),
        preds: Vec::new(),
    }
}

/// Head epoch of one column step: the `SET_FILLIN` write of column
/// `j + kv`, the striped IAMAX scan of the `km + 1` pivot candidates and
/// the broadcast read of the winner — plus, merged into the very first
/// column's head epoch, the `DGBTF2` fill-in prologue
/// ([`crate::step::smem_fillin_prologue`] runs after the load barrier and
/// before the first column's own barrier).
fn col_head(cx: &ColCtx) -> EpochTemplate {
    let mut vars = cx.base_vars();
    vars.push(VarDef::new("jp", k(0), v("km")));
    let base = cx.lidx(v("kv"), v("j"));
    let mut prologue_guards = vec![k(0) - v("j")];
    prologue_guards.extend(cx.prologue_guards.iter().cloned());
    EpochTemplate {
        name: "head",
        vars,
        guards: Vec::new(),
        accesses: vec![
            // Prologue: zero the partially-reachable fill rows of columns
            // ku+1 .. min(kv, n)  (first head epoch only).
            Access {
                alloc: cx.alloc,
                kind: AccessKind::Write,
                pattern: Pattern::Striped {
                    base: cx.lidx(v("kv") - v("q"), v("q")),
                    len: v("kl") - (v("kv") - v("q")),
                },
                vars: vec![VarDef::new(
                    "q",
                    v("ku") + k(1),
                    emin(v("kv"), v("n")) - k(1),
                )],
                guards: prologue_guards,
                preds: Vec::new(),
            },
            // SET_FILLIN: zero the kl fill rows of column j + kv.
            Access {
                alloc: cx.alloc,
                kind: AccessKind::Write,
                pattern: Pattern::Striped {
                    base: cx.lidx(k(0), v("j") + v("kv")),
                    len: v("kl"),
                },
                vars: Vec::new(),
                guards: vec![v("n") - k(1) - v("j") - v("kv"), v("kl") - k(1)],
                preds: Vec::new(),
            },
            // IAMAX candidate scan + broadcast of the winner.
            striped(cx.alloc, AccessKind::Read, base.clone(), v("km") + k(1)),
            Access {
                alloc: cx.alloc,
                kind: AccessKind::Read,
                pattern: Pattern::Broadcast {
                    off: base + v("jp"),
                },
                vars: Vec::new(),
                guards: Vec::new(),
                preds: Vec::new(),
            },
        ],
    }
}

/// Pivot-row swap epoch (`jp != 0`): column `j + kk` is swapped entirely
/// by lane `kk`, for `kk in 0 ..= ju - j`.
fn col_swap(cx: &ColCtx) -> EpochTemplate {
    let mut vars = cx.base_vars();
    vars.push(VarDef::new("jp", k(1), v("km")));
    vars.push(VarDef::new(
        "ju",
        v("j"),
        emin(v("j") + v("kv"), v("n") - k(1)),
    ));
    let kk = || VarDef::new("kk", k(0), v("ju") - v("j"));
    let i1 = cx.lidx(v("kv") + v("jp") - v("kk"), v("j") + v("kk"));
    let i2 = cx.lidx(v("kv") - v("kk"), v("j") + v("kk"));
    let acc = |kind, base: &Expr| Access {
        alloc: cx.alloc,
        kind,
        pattern: Pattern::Owned {
            owner: v("kk"),
            base: base.clone(),
            len: k(1),
        },
        vars: vec![kk()],
        guards: Vec::new(),
        preds: Vec::new(),
    };
    EpochTemplate {
        name: "swap",
        vars,
        guards: Vec::new(),
        accesses: vec![
            acc(AccessKind::Read, &i1),
            acc(AccessKind::Read, &i2),
            acc(AccessKind::Write, &i1),
            acc(AccessKind::Write, &i2),
        ],
    }
}

/// Fused SCAL + rank-1 update epoch (`km > 0`): the reciprocal-pivot
/// broadcast and striped scale of the multipliers, then — per update
/// column `j + c`, `c in 1 ..= ju - j` — the broadcast of the row-`j`
/// multiplier and, when it is nonzero (`u_nz`), the striped triple
/// reading the scaled column and updating column `j + c`.
fn col_scal_ger(cx: &ColCtx) -> EpochTemplate {
    let mut vars = cx.base_vars();
    vars.push(VarDef::new(
        "ju",
        v("j"),
        emin(v("j") + v("kv"), v("n") - k(1)),
    ));
    let base = cx.lidx(v("kv"), v("j"));
    let dst = cx.lidx(v("kv") - v("c"), v("j") + v("c"));
    let cvar = || VarDef::new("c", k(1), v("ju") - v("j"));
    let u_nz = || {
        vec![Pred {
            name: "u_nz",
            args: vec![v("j"), v("c")],
        }]
    };
    let ger = |kind, b: &Expr, preds: Vec<Pred>| Access {
        alloc: cx.alloc,
        kind,
        pattern: Pattern::Striped {
            base: b.clone() + k(1),
            len: v("km"),
        },
        vars: vec![cvar()],
        guards: Vec::new(),
        preds,
    };
    EpochTemplate {
        name: "scal_ger",
        vars,
        guards: vec![v("km") - k(1)],
        accesses: vec![
            Access {
                alloc: cx.alloc,
                kind: AccessKind::Read,
                pattern: Pattern::Broadcast { off: base.clone() },
                vars: Vec::new(),
                guards: Vec::new(),
                preds: Vec::new(),
            },
            striped(cx.alloc, AccessKind::Read, base.clone() + k(1), v("km")),
            striped(cx.alloc, AccessKind::Write, base.clone() + k(1), v("km")),
            Access {
                alloc: cx.alloc,
                kind: AccessKind::Read,
                pattern: Pattern::Broadcast { off: dst.clone() },
                vars: vec![cvar()],
                guards: Vec::new(),
                preds: Vec::new(),
            },
            ger(AccessKind::Read, &base, u_nz()),
            ger(AccessKind::Read, &dst, u_nz()),
            ger(AccessKind::Write, &dst, u_nz()),
        ],
    }
}

/// Per-matrix factorization progress mirrored by the schedules — the
/// schedule-side twin of `gbatch_core::gbtf2::ColumnStepState`.
#[derive(Default)]
struct ColState {
    ju: usize,
    info: i32,
}

/// Emit the epochs of one column step exactly as
/// [`crate::step::smem_column_step`] does: the head epoch always; then,
/// only when the pivot is nonzero, a swap epoch (empty when `jp == 0`)
/// and — when `km > 0` — the scal/rank-1 epoch. A zero pivot emits no
/// further barriers and records `info`.
#[allow(clippy::too_many_arguments)]
fn push_column_epochs(
    out: &mut Vec<EpochInstance>,
    t_head: usize,
    t_swap: usize,
    t_sg: usize,
    shape: &Shape,
    oracle: &Oracle,
    j: usize,
    j0: usize,
    st: &mut ColState,
) {
    let n = shape.n;
    let km = shape.kl.min(n - 1 - j) as i64;
    let jp = oracle.jp[j];
    let jn = j as i64;
    let j0n = j0 as i64;
    out.push(inst(
        t_head,
        &[("j", jn), ("j0", j0n), ("km", km), ("jp", jp)],
    ));
    if oracle.flag("piv_nz", &[jn]) {
        st.ju = update_bound(st.ju.max(j), j, shape.ku, jp as usize, n);
        let ju = st.ju as i64;
        if jp != 0 {
            out.push(inst(
                t_swap,
                &[("j", jn), ("j0", j0n), ("km", km), ("jp", jp), ("ju", ju)],
            ));
        } else {
            out.push(empty());
        }
        if km > 0 {
            out.push(inst(
                t_sg,
                &[("j", jn), ("j0", j0n), ("km", km), ("ju", ju)],
            ));
        }
    } else if st.info == 0 {
        st.info = (j + 1) as i32;
    }
}

// ---------------------------------------------------------------------------
// Fused factorization
// ---------------------------------------------------------------------------

const F_LOAD: usize = 0;
const F_STORE: usize = 1;
const F_HEAD: usize = 2;
const F_SWAP: usize = 3;
const F_SG: usize = 4;

fn fused_schedule(shape: &Shape, oracle: &Oracle) -> Vec<EpochInstance> {
    let mut out = vec![inst(F_LOAD, &[])];
    let mut st = ColState::default();
    for j in 0..shape.n {
        push_column_epochs(&mut out, F_HEAD, F_SWAP, F_SG, shape, oracle, j, 0, &mut st);
    }
    out.push(inst(F_STORE, &[]));
    out.push(empty());
    out
}

/// Model of [`crate::fused::gbtrf_batch_fused`]: whole-band load, the
/// column steps, whole-band store.
pub fn fused_model(rigor: Rigor) -> KernelModel {
    let cx = ColCtx {
        alloc: 0,
        col0: k(0),
        extra: Vec::new(),
        j_lo: k(0),
        j_hi: v("n") - k(1),
        prologue_guards: Vec::new(),
    };
    let band_len = v("ldab") * v("n");
    KernelModel {
        family: "gbtrf_fused",
        label: "gbtrf_fused",
        allocs: vec![AllocModel {
            name: "band",
            elems: band_len.clone(),
        }],
        templates: vec![
            EpochTemplate {
                name: "load",
                vars: Vec::new(),
                guards: Vec::new(),
                accesses: vec![striped(0, AccessKind::Write, k(0), band_len.clone())],
            },
            EpochTemplate {
                name: "store",
                vars: Vec::new(),
                guards: Vec::new(),
                accesses: vec![striped(0, AccessKind::Read, k(0), band_len.clone())],
            },
            col_head(&cx),
            col_swap(&cx),
            col_scal_ger(&cx),
        ],
        smem_bytes: band_len * v("sbytes"),
        envelope: envelope(vec![
            ("kl", rigor.pick(&[0, 2], &[0, 1, 2, 3, 8])),
            ("ku", rigor.pick(&[1, 3], &[0, 1, 3, 7])),
        ]),
        schedule: Some(fused_schedule),
    }
}

// ---------------------------------------------------------------------------
// Sliding-window factorization
// ---------------------------------------------------------------------------

const W_LOAD: usize = 0;
const W_STORE: usize = 1;
const W_SHIFT: usize = 2;
const W_SHIFT_R: usize = 3;
const W_SHIFT_W: usize = 4;
const W_HEAD: usize = 5;
const W_SWAP: usize = 6;
const W_SG: usize = 7;

fn wcols_expr() -> Expr {
    emin(v("nb") + v("kv") + k(1), v("n"))
}

fn window_schedule(shape: &Shape, oracle: &Oracle) -> Vec<EpochInstance> {
    let n = shape.n;
    let wcols = (shape.nb + shape.kl + shape.ku + 1).min(n);
    let mut out = vec![inst(W_LOAD, &[("dst", 0), ("cnt", wcols as i64)])];
    let mut st = ColState::default();
    let mut loaded = wcols;
    let mut j0 = 0usize;
    loop {
        let jb = shape.nb.min(n - j0);
        for j in j0..j0 + jb {
            push_column_epochs(
                &mut out, W_HEAD, W_SWAP, W_SG, shape, oracle, j, j0, &mut st,
            );
        }
        out.push(inst(W_STORE, &[("src", 0), ("cnt", jb as i64)]));
        let next = j0 + jb;
        if next >= n {
            out.push(empty());
            break;
        }
        let keep = loaded - next;
        if keep > jb {
            out.push(inst(W_SHIFT_R, &[("j0", j0 as i64)]));
            out.push(inst(W_SHIFT_W, &[("j0", j0 as i64)]));
        } else {
            out.push(inst(W_SHIFT, &[("j0", j0 as i64)]));
        }
        let new_end = (next + wcols).min(n);
        if new_end > loaded {
            out.push(inst(
                W_LOAD,
                &[
                    ("dst", (loaded - next) as i64),
                    ("cnt", (new_end - loaded) as i64),
                ],
            ));
            loaded = new_end;
        } else {
            out.push(empty());
        }
        j0 = next;
    }
    out
}

/// Model of [`crate::window::gbtrf_batch_window`]: the column steps over a
/// resident window of `min(nb + kv + 1, n)` columns, with the in-kernel
/// left shift between blocks. The shift runs as one epoch only when the
/// kept range cannot overlap its destination (`keep <= jb`); otherwise the
/// kernel splits it into a read epoch and a write epoch — the exact
/// barrier PR 3 added, which [`fixtures`] removes again.
pub fn window_model(rigor: Rigor) -> KernelModel {
    let cx = ColCtx {
        alloc: 0,
        col0: v("j0"),
        extra: vec![VarDef::new("j0", k(0), v("n") - k(1))],
        j_lo: v("j0"),
        j_hi: emin(v("j0") + v("nb"), v("n")) - k(1),
        prologue_guards: vec![k(0) - v("j0")],
    };
    let shift_vars = || {
        vec![
            VarDef::new("j0", k(0), v("n") - k(1)),
            VarDef::fixed("jb", emin(v("nb"), v("n") - v("j0"))),
            VarDef::fixed("keep", emin(wcols_expr(), v("n") - v("j0")) - v("jb")),
        ]
    };
    let not_last = || v("n") - v("j0") - v("jb") - k(1);
    KernelModel {
        family: "gbtrf_window",
        label: "gbtrf_window",
        allocs: vec![AllocModel {
            name: "window",
            elems: v("ldab") * wcols_expr(),
        }],
        templates: vec![
            EpochTemplate {
                name: "load",
                vars: vec![
                    VarDef::new("dst", k(0), v("n")),
                    VarDef::new("cnt", k(0), v("n")),
                ],
                guards: Vec::new(),
                accesses: vec![striped(
                    0,
                    AccessKind::Write,
                    v("dst") * v("ldab"),
                    v("cnt") * v("ldab"),
                )],
            },
            EpochTemplate {
                name: "store",
                vars: vec![
                    VarDef::new("src", k(0), v("n")),
                    VarDef::new("cnt", k(0), v("n")),
                ],
                guards: Vec::new(),
                accesses: vec![striped(
                    0,
                    AccessKind::Read,
                    v("src") * v("ldab"),
                    v("cnt") * v("ldab"),
                )],
            },
            EpochTemplate {
                name: "shift",
                vars: shift_vars(),
                guards: vec![not_last(), v("jb") - v("keep")],
                accesses: vec![
                    striped(
                        0,
                        AccessKind::Read,
                        v("jb") * v("ldab"),
                        v("keep") * v("ldab"),
                    ),
                    striped(0, AccessKind::Write, k(0), v("keep") * v("ldab")),
                ],
            },
            EpochTemplate {
                name: "shift_read",
                vars: shift_vars(),
                guards: vec![not_last(), v("keep") - v("jb") - k(1)],
                accesses: vec![striped(
                    0,
                    AccessKind::Read,
                    v("jb") * v("ldab"),
                    v("keep") * v("ldab"),
                )],
            },
            EpochTemplate {
                name: "shift_write",
                vars: shift_vars(),
                guards: vec![not_last(), v("keep") - v("jb") - k(1)],
                accesses: vec![striped(0, AccessKind::Write, k(0), v("keep") * v("ldab"))],
            },
            col_head(&cx),
            col_swap(&cx),
            col_scal_ger(&cx),
        ],
        smem_bytes: v("ldab") * wcols_expr() * v("sbytes"),
        envelope: envelope(vec![
            ("kl", rigor.pick(&[0, 2], &[0, 1, 2, 3])),
            ("ku", rigor.pick(&[1], &[0, 1, 3])),
            ("nb", rigor.pick(&[1, 8], &[1, 2, 8])),
        ]),
        schedule: Some(window_schedule),
    }
}

// ---------------------------------------------------------------------------
// Fused factor + solve (GBSV)
// ---------------------------------------------------------------------------

const G_LOAD: usize = 0;
const G_STORE: usize = 1;
const G_HEAD: usize = 2;
const G_SWAP: usize = 3;
const G_SG: usize = 4;
const G_RHS_SWAP: usize = 5;
const G_FWD: usize = 6;
const G_BWD: usize = 7;

fn gbsv_schedule(shape: &Shape, oracle: &Oracle) -> Vec<EpochInstance> {
    let n = shape.n;
    let kl = shape.kl;
    let mut out = vec![inst(G_LOAD, &[])];
    let mut st = ColState::default();
    for j in 0..n {
        push_column_epochs(&mut out, G_HEAD, G_SWAP, G_SG, shape, oracle, j, 0, &mut st);
        if st.info != 0 && st.info as usize == j + 1 {
            continue; // zero pivot: no forward update from this column
        }
        if j < n - 1 && kl > 0 {
            let jn = j as i64;
            let jp = oracle.jp[j];
            if jp != 0 {
                out.push(inst(G_RHS_SWAP, &[("j", jn), ("jp", jp)]));
            }
            out.push(inst(G_FWD, &[("j", jn)]));
        }
    }
    if st.info == 0 {
        out.push(inst(G_BWD, &[]));
    }
    out.push(inst(G_STORE, &[]));
    out.push(empty());
    out
}

/// Model of [`crate::gbsv_fused::gbsv_batch_fused`]: the fused-factor
/// column steps interleaved with the forward solve on the resident RHS
/// block, then the in-shared backward substitution.
pub fn gbsv_model(rigor: Rigor) -> KernelModel {
    let cx = ColCtx {
        alloc: 0,
        col0: k(0),
        extra: Vec::new(),
        j_lo: k(0),
        j_hi: v("n") - k(1),
        prologue_guards: Vec::new(),
    };
    let band_len = v("ldab") * v("n");
    let rhs_len = v("n") * v("nrhs");
    let cvar = || VarDef::enumerated("c", k(0), v("nrhs") - k(1));
    let with_c = |mut a: Access| {
        a.vars.push(cvar());
        a
    };
    let bx_nz = || {
        vec![Pred {
            name: "bx_nz",
            args: vec![v("c"), v("j")],
        }]
    };
    KernelModel {
        family: "gbsv_fused",
        label: "gbsv_fused",
        allocs: vec![
            AllocModel {
                name: "band",
                elems: band_len.clone(),
            },
            AllocModel {
                name: "rhs",
                elems: rhs_len.clone(),
            },
        ],
        templates: vec![
            EpochTemplate {
                name: "load",
                vars: Vec::new(),
                guards: Vec::new(),
                accesses: vec![
                    striped(0, AccessKind::Write, k(0), band_len.clone()),
                    striped(1, AccessKind::Write, k(0), rhs_len.clone()),
                ],
            },
            EpochTemplate {
                name: "store",
                vars: Vec::new(),
                guards: Vec::new(),
                accesses: vec![
                    striped(0, AccessKind::Read, k(0), band_len.clone()),
                    striped(1, AccessKind::Read, k(0), rhs_len.clone()),
                ],
            },
            col_head(&cx),
            col_swap(&cx),
            col_scal_ger(&cx),
            // RHS pivot swap: lane c swaps rows j and j + jp of its column.
            EpochTemplate {
                name: "rhs_swap",
                vars: vec![
                    VarDef::new("j", k(0), v("n") - k(2)),
                    VarDef::fixed("km", emin(v("kl"), v("n") - k(1) - v("j"))),
                    VarDef::new("jp", k(1), v("km")),
                ],
                guards: vec![v("kl") - k(1)],
                accesses: vec![
                    with_c(owned(
                        1,
                        AccessKind::Read,
                        v("c"),
                        v("c") * v("n") + v("j") + v("jp"),
                        k(1),
                    )),
                    with_c(owned(
                        1,
                        AccessKind::Read,
                        v("c"),
                        v("c") * v("n") + v("j"),
                        k(1),
                    )),
                    with_c(owned(
                        1,
                        AccessKind::Write,
                        v("c"),
                        v("c") * v("n") + v("j") + v("jp"),
                        k(1),
                    )),
                    with_c(owned(
                        1,
                        AccessKind::Write,
                        v("c"),
                        v("c") * v("n") + v("j"),
                        k(1),
                    )),
                ],
            },
            // Forward rank-1 on the RHS: broadcast of b[j], then — when it
            // is nonzero — the striped multiplier read and row updates.
            EpochTemplate {
                name: "fwd",
                vars: vec![
                    VarDef::new("j", k(0), v("n") - k(2)),
                    VarDef::fixed("lm", emin(v("kl"), v("n") - k(1) - v("j"))),
                ],
                guards: vec![v("kl") - k(1)],
                accesses: vec![
                    with_c(Access {
                        alloc: 1,
                        kind: AccessKind::Read,
                        pattern: Pattern::Broadcast {
                            off: v("c") * v("n") + v("j"),
                        },
                        vars: Vec::new(),
                        guards: Vec::new(),
                        preds: Vec::new(),
                    }),
                    with_c(Access {
                        alloc: 0,
                        kind: AccessKind::Read,
                        pattern: Pattern::Striped {
                            base: v("j") * v("ldab") + v("kv") + k(1),
                            len: v("lm"),
                        },
                        vars: Vec::new(),
                        guards: Vec::new(),
                        preds: bx_nz(),
                    }),
                    with_c(Access {
                        alloc: 1,
                        kind: AccessKind::Read,
                        pattern: Pattern::Striped {
                            base: v("c") * v("n") + v("j") + k(1),
                            len: v("lm"),
                        },
                        vars: Vec::new(),
                        guards: Vec::new(),
                        preds: bx_nz(),
                    }),
                    with_c(Access {
                        alloc: 1,
                        kind: AccessKind::Write,
                        pattern: Pattern::Striped {
                            base: v("c") * v("n") + v("j") + k(1),
                            len: v("lm"),
                        },
                        vars: Vec::new(),
                        guards: Vec::new(),
                        preds: bx_nz(),
                    }),
                ],
            },
            // Backward substitution: lane c owns RHS column c outright and
            // reads the factor columns.
            EpochTemplate {
                name: "backward",
                vars: Vec::new(),
                guards: Vec::new(),
                accesses: vec![
                    with_c(owned(1, AccessKind::Read, v("c"), v("c") * v("n"), v("n"))),
                    with_c(owned(1, AccessKind::Write, v("c"), v("c") * v("n"), v("n"))),
                    with_c(owned(0, AccessKind::Read, v("c"), k(0), band_len.clone())),
                ],
            },
        ],
        smem_bytes: ceil8(band_len * v("sbytes")) + ceil8(rhs_len * v("sbytes")),
        envelope: envelope(vec![
            ("kl", rigor.pick(&[0, 2], &[0, 1, 2, 3])),
            ("ku", rigor.pick(&[1], &[0, 1, 3])),
            ("nrhs", rigor.pick(&[2], &[1, 2, 3])),
        ]),
        schedule: Some(gbsv_schedule),
    }
}

// ---------------------------------------------------------------------------
// Blocked GBTRS (forward / backward launches)
// ---------------------------------------------------------------------------

const S_INIT: usize = 0;
const S_COL: usize = 1;
const S_TAIL: usize = 2;
const S_TAIL_LAST: usize = 3;

fn fwd_cr() -> Expr {
    emin(v("nb") + v("kl"), v("n"))
}

fn bwd_cr() -> Expr {
    emin(v("nb") + v("kv"), v("n"))
}

fn colbase() -> Expr {
    v("c") * v("cr")
}

fn forward_schedule(shape: &Shape, oracle: &Oracle) -> Vec<EpochInstance> {
    let n = shape.n;
    let nb = shape.nb;
    let mut out = vec![inst(S_INIT, &[])];
    let mut j0 = 0usize;
    loop {
        let jb = nb.min(n - j0);
        for j in j0..(j0 + jb).min(n - 1) {
            out.push(inst(
                S_COL,
                &[("j", j as i64), ("j0", j0 as i64), ("jp", oracle.jp[j])],
            ));
        }
        if j0 + jb >= n {
            out.push(inst(S_TAIL_LAST, &[("j0", j0 as i64)]));
            break;
        }
        out.push(inst(S_TAIL, &[("j0", j0 as i64)]));
        j0 += jb;
    }
    out
}

/// Model of the forward (`L`-solve) launch of
/// [`crate::gbtrs_blocked::gbtrs_batch_blocked`]: lane `c` owns cached RHS
/// column `c` (rows `[j0, j0 + cr)` of the global RHS), so every epoch's
/// accesses stay inside per-lane column chunks. Only launched for
/// `kl > 0 && n > 1`, hence the `kl >= 1` envelope.
pub fn gbtrs_forward_model(rigor: Rigor) -> KernelModel {
    let cvar = || VarDef::enumerated("c", k(0), v("nrhs") - k(1));
    let with_c = |mut a: Access| {
        a.vars.push(cvar());
        a
    };
    let lj = || v("j") - v("j0");
    let fwd_nz = || {
        vec![Pred {
            name: "fwd_nz",
            args: vec![v("c"), v("j")],
        }]
    };
    let swap_guard = || vec![v("jp") - k(1)];
    let swap = |kind, off: Expr| {
        let mut a = owned(0, kind, v("c"), colbase() + off, k(1));
        a.guards = swap_guard();
        with_c(a)
    };
    KernelModel {
        family: "gbtrs_forward",
        label: "gbtrs_forward",
        allocs: vec![AllocModel {
            name: "cache",
            elems: fwd_cr() * v("nrhs"),
        }],
        templates: vec![
            EpochTemplate {
                name: "init",
                vars: vec![VarDef::fixed("cr", fwd_cr())],
                guards: Vec::new(),
                accesses: vec![with_c(owned(
                    0,
                    AccessKind::Write,
                    v("c"),
                    colbase(),
                    v("cr"),
                ))],
            },
            EpochTemplate {
                name: "colstep",
                vars: vec![
                    VarDef::fixed("cr", fwd_cr()),
                    VarDef::new("j", k(0), v("n") - k(2)),
                    VarDef::new("j0", emax(k(0), v("j") - v("nb") + k(1)), v("j")),
                    VarDef::new("jp", k(0), emin(v("kl"), v("cr") - k(1) - v("j") + v("j0"))),
                    VarDef::fixed("lm", emin(v("kl"), v("n") - k(1) - v("j"))),
                ],
                guards: Vec::new(),
                accesses: vec![
                    swap(AccessKind::Read, lj()),
                    swap(AccessKind::Read, lj() + v("jp")),
                    swap(AccessKind::Write, lj()),
                    swap(AccessKind::Write, lj() + v("jp")),
                    with_c(owned(0, AccessKind::Read, v("c"), colbase() + lj(), k(1))),
                    with_c(Access {
                        alloc: 0,
                        kind: AccessKind::Read,
                        pattern: Pattern::Owned {
                            owner: v("c"),
                            base: colbase() + lj() + k(1),
                            len: v("lm"),
                        },
                        vars: Vec::new(),
                        guards: Vec::new(),
                        preds: fwd_nz(),
                    }),
                    with_c(Access {
                        alloc: 0,
                        kind: AccessKind::Write,
                        pattern: Pattern::Owned {
                            owner: v("c"),
                            base: colbase() + lj() + k(1),
                            len: v("lm"),
                        },
                        vars: Vec::new(),
                        guards: Vec::new(),
                        preds: fwd_nz(),
                    }),
                ],
            },
            EpochTemplate {
                name: "tail",
                vars: vec![
                    VarDef::fixed("cr", fwd_cr()),
                    VarDef::new("j0", k(0), v("n") - k(1)),
                    VarDef::fixed("jb", emin(v("nb"), v("n") - v("j0"))),
                    VarDef::fixed("keep", emin(v("j0") + v("cr"), v("n")) - v("j0") - v("jb")),
                    VarDef::fixed(
                        "loadlen",
                        emin(v("j0") + v("jb") + v("cr"), v("n")) - emin(v("j0") + v("cr"), v("n")),
                    ),
                ],
                guards: vec![v("n") - v("j0") - v("jb") - k(1)],
                accesses: vec![
                    with_c(owned(0, AccessKind::Read, v("c"), colbase(), v("jb"))),
                    with_c(owned(
                        0,
                        AccessKind::Read,
                        v("c"),
                        colbase() + v("jb"),
                        v("keep"),
                    )),
                    with_c(owned(0, AccessKind::Write, v("c"), colbase(), v("keep"))),
                    with_c(owned(
                        0,
                        AccessKind::Write,
                        v("c"),
                        colbase() + v("keep"),
                        v("loadlen"),
                    )),
                ],
            },
            EpochTemplate {
                name: "tail_last",
                vars: vec![
                    VarDef::fixed("cr", fwd_cr()),
                    VarDef::new("j0", k(0), v("n") - k(1)),
                    VarDef::fixed("jb", emin(v("nb"), v("n") - v("j0"))),
                ],
                guards: vec![v("j0") + v("jb") - v("n")],
                accesses: vec![with_c(owned(
                    0,
                    AccessKind::Read,
                    v("c"),
                    colbase(),
                    v("jb"),
                ))],
            },
        ],
        smem_bytes: fwd_cr() * v("nrhs") * v("sbytes"),
        envelope: envelope(vec![
            ("kl", rigor.pick(&[1, 2], &[1, 2, 3, 8])),
            ("ku", rigor.pick(&[0], &[0, 3])),
            ("nb", rigor.pick(&[1, 8], &[1, 2, 8])),
            ("nrhs", rigor.pick(&[2], &[1, 3])),
        ]),
        schedule: Some(forward_schedule),
    }
}

fn backward_schedule(shape: &Shape, oracle: &Oracle) -> Vec<EpochInstance> {
    let n = shape.n;
    let nb = shape.nb;
    let cr = (nb + shape.kl + shape.ku).min(n);
    let _ = oracle;
    let mut out = vec![inst(S_INIT, &[])];
    let mut lo = n - cr;
    let mut j1 = n;
    loop {
        let jb = nb.min(j1);
        let j0 = j1 - jb;
        for j in (j0..j1).rev() {
            out.push(inst(S_COL, &[("j", j as i64), ("lo", lo as i64)]));
        }
        if j0 == 0 {
            out.push(inst(S_TAIL_LAST, &[("j1", j1 as i64)]));
            break;
        }
        out.push(inst(S_TAIL, &[("j1", j1 as i64)]));
        lo = j0.saturating_sub(cr);
        j1 = j0;
    }
    out
}

/// Model of the backward (`U`-solve) launch of
/// [`crate::gbtrs_blocked::gbtrs_batch_blocked`]: the cache covers global
/// rows `[lo, lo + cr)` and slides toward row 0, lane `c` owning column
/// chunk `c` throughout.
pub fn gbtrs_backward_model(rigor: Rigor) -> KernelModel {
    let cvar = || VarDef::enumerated("c", k(0), v("nrhs") - k(1));
    let with_c = |mut a: Access| {
        a.vars.push(cvar());
        a
    };
    let lj = || v("j") - v("lo");
    let bwd_nz = || {
        vec![Pred {
            name: "bwd_nz",
            args: vec![v("c"), v("j")],
        }]
    };
    KernelModel {
        family: "gbtrs_backward",
        label: "gbtrs_backward",
        allocs: vec![AllocModel {
            name: "cache",
            elems: bwd_cr() * v("nrhs"),
        }],
        templates: vec![
            EpochTemplate {
                name: "init",
                vars: vec![VarDef::fixed("cr", bwd_cr())],
                guards: Vec::new(),
                accesses: vec![with_c(owned(
                    0,
                    AccessKind::Write,
                    v("c"),
                    colbase(),
                    v("cr"),
                ))],
            },
            EpochTemplate {
                name: "colstep",
                vars: vec![
                    VarDef::fixed("cr", bwd_cr()),
                    VarDef::new("j", k(0), v("n") - k(1)),
                    VarDef::fixed("reach", emin(v("kv"), v("j"))),
                    VarDef::new(
                        "lo",
                        emax(k(0), v("j") - v("cr") + k(1)),
                        v("j") - v("reach"),
                    ),
                ],
                guards: Vec::new(),
                accesses: vec![
                    with_c(owned(0, AccessKind::Read, v("c"), colbase() + lj(), k(1))),
                    with_c(owned(0, AccessKind::Write, v("c"), colbase() + lj(), k(1))),
                    with_c(Access {
                        alloc: 0,
                        kind: AccessKind::Read,
                        pattern: Pattern::Owned {
                            owner: v("c"),
                            base: colbase() + lj() - v("reach"),
                            len: v("reach"),
                        },
                        vars: Vec::new(),
                        guards: vec![v("reach") - k(1)],
                        preds: bwd_nz(),
                    }),
                    with_c(Access {
                        alloc: 0,
                        kind: AccessKind::Write,
                        pattern: Pattern::Owned {
                            owner: v("c"),
                            base: colbase() + lj() - v("reach"),
                            len: v("reach"),
                        },
                        vars: Vec::new(),
                        guards: vec![v("reach") - k(1)],
                        preds: bwd_nz(),
                    }),
                ],
            },
            EpochTemplate {
                name: "tail",
                vars: vec![
                    VarDef::fixed("cr", bwd_cr()),
                    VarDef::new("j1", k(1), v("n")),
                    VarDef::fixed("jb", emin(v("nb"), v("j1"))),
                    VarDef::fixed("j0", v("j1") - v("jb")),
                    VarDef::fixed("lo", emax(v("j1") - v("cr"), k(0))),
                    VarDef::fixed("keep", v("j0") - v("lo")),
                    VarDef::fixed("shl", v("lo") - emax(v("j0") - v("cr"), k(0))),
                ],
                guards: vec![v("j0") - k(1)],
                accesses: vec![
                    with_c(owned(
                        0,
                        AccessKind::Read,
                        v("c"),
                        colbase() + v("j0") - v("lo"),
                        v("jb"),
                    )),
                    with_c(Access {
                        alloc: 0,
                        kind: AccessKind::Read,
                        pattern: Pattern::Owned {
                            owner: v("c"),
                            base: colbase(),
                            len: v("keep"),
                        },
                        vars: Vec::new(),
                        guards: vec![v("keep") - k(1), v("shl") - k(1)],
                        preds: Vec::new(),
                    }),
                    with_c(Access {
                        alloc: 0,
                        kind: AccessKind::Write,
                        pattern: Pattern::Owned {
                            owner: v("c"),
                            base: colbase() + v("shl"),
                            len: v("keep"),
                        },
                        vars: Vec::new(),
                        guards: vec![v("keep") - k(1), v("shl") - k(1)],
                        preds: Vec::new(),
                    }),
                    with_c(Access {
                        alloc: 0,
                        kind: AccessKind::Write,
                        pattern: Pattern::Owned {
                            owner: v("c"),
                            base: colbase(),
                            len: v("shl"),
                        },
                        vars: Vec::new(),
                        guards: vec![v("shl") - k(1)],
                        preds: Vec::new(),
                    }),
                ],
            },
            EpochTemplate {
                name: "tail_last",
                vars: vec![
                    VarDef::fixed("cr", bwd_cr()),
                    VarDef::new("j1", k(1), v("n")),
                    VarDef::fixed("jb", emin(v("nb"), v("j1"))),
                    VarDef::fixed("j0", v("j1") - v("jb")),
                    VarDef::fixed("lo", emax(v("j1") - v("cr"), k(0))),
                ],
                guards: vec![k(0) - v("j0")],
                accesses: vec![with_c(owned(
                    0,
                    AccessKind::Read,
                    v("c"),
                    colbase() + v("j0") - v("lo"),
                    v("jb"),
                ))],
            },
        ],
        smem_bytes: bwd_cr() * v("nrhs") * v("sbytes"),
        envelope: envelope(vec![
            ("kl", rigor.pick(&[0, 2], &[0, 2])),
            ("ku", rigor.pick(&[1], &[0, 1, 3])),
            ("nb", rigor.pick(&[1, 8], &[1, 2, 8])),
            ("nrhs", rigor.pick(&[2], &[1, 3])),
        ]),
        schedule: Some(backward_schedule),
    }
}

// ---------------------------------------------------------------------------
// Interleaved layout (lane-private: no tracked shared accesses)
// ---------------------------------------------------------------------------

/// Model of [`crate::interleaved::gbtrf_batch_interleaved`]. The
/// interleaved kernels keep every lane on its own matrix slice and make no
/// cross-lane shared-memory accesses at all, so the model has no
/// templates; conformance instead asserts the observed trace is empty.
/// The byte formula still participates in the smem audit.
pub fn interleaved_factor_model() -> KernelModel {
    KernelModel {
        family: "gbtrf_interleaved",
        label: "gbtrf_interleaved",
        allocs: Vec::new(),
        templates: Vec::new(),
        smem_bytes: emin(v("kv") + k(2), v("n")) * v("ldab") * v("lanes") * v("sbytes"),
        envelope: Envelope {
            grid: vec![
                ("kl", vec![0, 2]),
                ("ku", vec![1, 3]),
                ("lanes", vec![1, 2, 4]),
            ],
            derived: derived_band(),
            frees: vec![("n", 1, 1 << 20)],
            threads: vec![4],
            search_n: vec![1],
        },
        schedule: None,
    }
}

/// Model of [`crate::interleaved::gbtrs_batch_interleaved`] — lane-private
/// like the factor kernel; smem audit only.
pub fn interleaved_solve_model() -> KernelModel {
    KernelModel {
        family: "gbtrs_interleaved",
        label: "gbtrs_interleaved",
        allocs: Vec::new(),
        templates: Vec::new(),
        smem_bytes: v("n") * v("nrhs") * v("lanes") * v("sbytes"),
        envelope: Envelope {
            grid: vec![
                ("kl", vec![0, 2]),
                ("ku", vec![1, 3]),
                ("nrhs", vec![1, 3]),
                ("lanes", vec![1, 2, 4]),
            ],
            derived: derived_band(),
            frees: vec![("n", 1, 1 << 20)],
            threads: vec![4],
            search_n: vec![1],
        },
        schedule: None,
    }
}

// ---------------------------------------------------------------------------
// SPIKE coupling kernels
// ---------------------------------------------------------------------------

const X_STAGE: usize = 0;
const X_DRAIN: usize = 1;

/// Elements of the staged coupling corners: the `ku x ku` `B` corner plus
/// the `kl x kl` `C` corner (mirrors
/// [`crate::spike::extract_smem_bytes`]).
fn spike_corner_elems() -> Expr {
    v("kl") * v("kl") + v("ku") * v("ku")
}

fn spike_extract_schedule(_shape: &Shape, _oracle: &Oracle) -> Vec<EpochInstance> {
    vec![inst(X_STAGE, &[]), inst(X_DRAIN, &[]), empty()]
}

/// Model of the SPIKE coupling-corner extraction
/// ([`crate::spike`]'s `spike_extract_launch`): one block per cut
/// interface stages both corners through shared memory — the `B` and `C`
/// corners are disjoint striped sweeps within one write epoch, then a
/// barrier, then the matching striped drain epoch. The schedule is
/// data-independent (no pivoting happens here).
pub fn spike_extract_model(rigor: Rigor) -> KernelModel {
    let elems = spike_corner_elems();
    KernelModel {
        family: "spike_extract",
        label: "spike_extract",
        allocs: vec![AllocModel {
            name: "corners",
            elems: elems.clone(),
        }],
        templates: vec![
            EpochTemplate {
                name: "stage",
                vars: Vec::new(),
                guards: Vec::new(),
                accesses: vec![
                    striped(0, AccessKind::Write, k(0), v("ku") * v("ku")),
                    striped(0, AccessKind::Write, v("ku") * v("ku"), v("kl") * v("kl")),
                ],
            },
            EpochTemplate {
                name: "drain",
                vars: Vec::new(),
                guards: Vec::new(),
                accesses: vec![
                    striped(0, AccessKind::Read, k(0), v("ku") * v("ku")),
                    striped(0, AccessKind::Read, v("ku") * v("ku"), v("kl") * v("kl")),
                ],
            },
        ],
        smem_bytes: elems * v("sbytes"),
        envelope: envelope(vec![
            ("kl", rigor.pick(&[0, 2], &[0, 1, 2, 3, 8])),
            ("ku", rigor.pick(&[1, 3], &[1, 3, 7])),
        ]),
        schedule: Some(spike_extract_schedule),
    }
}

const C_STAGE: usize = 0;
const C_CONSUME: usize = 1;

fn spike_combine_schedule(_shape: &Shape, _oracle: &Oracle) -> Vec<EpochInstance> {
    vec![inst(C_STAGE, &[]), inst(C_CONSUME, &[]), empty()]
}

/// Model of the SPIKE back-substitution
/// ([`crate::spike`]'s `spike_combine_launch`): one block per partition
/// stages its `(kl + ku) x nrhs` interface slice of the solved reduced
/// vector (one striped sweep per RHS column, disjoint across columns),
/// barriers, then broadcast-reads each staged element exactly once before
/// the lane-private row sweep.
pub fn spike_combine_model(rigor: Rigor) -> KernelModel {
    let slice = v("kv") * v("nrhs");
    KernelModel {
        family: "spike_combine",
        label: "spike_combine",
        allocs: vec![AllocModel {
            name: "slice",
            elems: slice.clone(),
        }],
        templates: vec![
            EpochTemplate {
                name: "stage",
                vars: Vec::new(),
                guards: Vec::new(),
                accesses: vec![Access {
                    alloc: 0,
                    kind: AccessKind::Write,
                    pattern: Pattern::Striped {
                        base: v("cc") * v("kv"),
                        len: v("kv"),
                    },
                    vars: vec![VarDef::enumerated("cc", k(0), v("nrhs") - k(1))],
                    guards: Vec::new(),
                    preds: Vec::new(),
                }],
            },
            EpochTemplate {
                name: "consume",
                vars: Vec::new(),
                guards: Vec::new(),
                accesses: vec![Access {
                    alloc: 0,
                    kind: AccessKind::Read,
                    pattern: Pattern::Broadcast { off: v("q") },
                    vars: vec![VarDef::enumerated("q", k(0), slice.clone() - k(1))],
                    guards: Vec::new(),
                    preds: Vec::new(),
                }],
            },
        ],
        smem_bytes: slice * v("sbytes"),
        envelope: envelope(vec![
            ("kl", rigor.pick(&[0, 2], &[0, 1, 2, 3])),
            ("ku", rigor.pick(&[1], &[1, 3])),
            ("nrhs", rigor.pick(&[2], &[1, 2, 3])),
        ]),
        schedule: Some(spike_combine_schedule),
    }
}

/// Model of the SPIKE residual sweep ([`crate::spike`]'s
/// `spike_residual_launch`) — entirely lane-private like the interleaved
/// kernels: no shared memory, no barriers, so the model has no templates
/// and conformance asserts the observed trace is empty.
pub fn spike_residual_model() -> KernelModel {
    KernelModel {
        family: "spike_residual",
        label: "spike_residual",
        allocs: Vec::new(),
        templates: Vec::new(),
        smem_bytes: k(0),
        envelope: Envelope {
            grid: vec![("kl", vec![0, 2]), ("ku", vec![1, 3]), ("nrhs", vec![1, 2])],
            derived: derived_band(),
            frees: vec![("n", 1, 1 << 20)],
            threads: vec![4],
            search_n: vec![1],
        },
        schedule: None,
    }
}

/// Every registered kernel model, at the requested rigor.
pub fn registry(rigor: Rigor) -> Vec<KernelModel> {
    vec![
        fused_model(rigor),
        window_model(rigor),
        gbsv_model(rigor),
        gbtrs_forward_model(rigor),
        gbtrs_backward_model(rigor),
        interleaved_factor_model(),
        interleaved_solve_model(),
        spike_extract_model(rigor),
        spike_combine_model(rigor),
        spike_residual_model(),
    ]
}

// ---------------------------------------------------------------------------
// Negative fixtures: the two historical barrier bugs, re-introduced
// ---------------------------------------------------------------------------

/// Models of known-racy schedules the verifier must reject. Each is the
/// faulty pre-fix version of a shipped epoch: [`prove_model`] has to fail
/// on both and hand back a concrete counterexample shape.
///
/// 1. `fixture_window_shift_unsynced` — the window kernel's in-kernel
///    shift as one epoch even when the kept range overlaps its
///    destination (`keep > jb`): the missing barrier between the striped
///    read and the striped write.
/// 2. `fixture_gbsv_swap_fwd_unsynced` — the GBSV RHS pivot swap merged
///    into the same epoch as the forward update's broadcast read of
///    `b[j]`, which the swap writes from a different lane.
///
/// [`prove_model`]: gbatch_analyzer::prove_model
pub fn fixtures() -> Vec<KernelModel> {
    let shift_fixture = KernelModel {
        family: "fixture_window_shift_unsynced",
        label: "gbtrf_window",
        allocs: vec![AllocModel {
            name: "window",
            elems: v("ldab") * wcols_expr(),
        }],
        templates: vec![EpochTemplate {
            name: "shift_merged",
            vars: vec![
                VarDef::new("j0", k(0), v("n") - k(1)),
                VarDef::fixed("jb", emin(v("nb"), v("n") - v("j0"))),
                VarDef::fixed("keep", emin(wcols_expr(), v("n") - v("j0")) - v("jb")),
            ],
            // The real kernel adds `jb >= keep` here (or splits the epoch);
            // this fixture deliberately omits it.
            guards: vec![v("n") - v("j0") - v("jb") - k(1)],
            accesses: vec![
                striped(
                    0,
                    AccessKind::Read,
                    v("jb") * v("ldab"),
                    v("keep") * v("ldab"),
                ),
                striped(0, AccessKind::Write, k(0), v("keep") * v("ldab")),
            ],
        }],
        smem_bytes: v("ldab") * wcols_expr() * v("sbytes"),
        envelope: Envelope {
            grid: vec![("kl", vec![0]), ("ku", vec![1]), ("nb", vec![1])],
            derived: derived_band(),
            frees: vec![("n", 1, 1 << 20)],
            threads: vec![2, 3, 4],
            search_n: vec![1, 2, 3, 4],
        },
        schedule: None,
    };

    let cvar = || VarDef::enumerated("c", k(0), v("nrhs") - k(1));
    let with_c = |mut a: Access| {
        a.vars.push(cvar());
        a
    };
    let gbsv_fixture = KernelModel {
        family: "fixture_gbsv_swap_fwd_unsynced",
        label: "gbsv_fused",
        allocs: vec![AllocModel {
            name: "rhs",
            elems: v("n") * v("nrhs"),
        }],
        templates: vec![EpochTemplate {
            name: "swap_fwd_merged",
            vars: vec![
                VarDef::new("j", k(0), v("n") - k(2)),
                VarDef::fixed("km", emin(v("kl"), v("n") - k(1) - v("j"))),
                VarDef::new("jp", k(1), v("km")),
            ],
            guards: vec![v("kl") - k(1)],
            accesses: vec![
                with_c(owned(
                    0,
                    AccessKind::Read,
                    v("c"),
                    v("c") * v("n") + v("j") + v("jp"),
                    k(1),
                )),
                with_c(owned(
                    0,
                    AccessKind::Read,
                    v("c"),
                    v("c") * v("n") + v("j"),
                    k(1),
                )),
                with_c(owned(
                    0,
                    AccessKind::Write,
                    v("c"),
                    v("c") * v("n") + v("j") + v("jp"),
                    k(1),
                )),
                with_c(owned(
                    0,
                    AccessKind::Write,
                    v("c"),
                    v("c") * v("n") + v("j"),
                    k(1),
                )),
                // The forward update's broadcast of b[j] — in the real
                // kernel a barrier separates it from the swap above.
                with_c(Access {
                    alloc: 0,
                    kind: AccessKind::Read,
                    pattern: Pattern::Broadcast {
                        off: v("c") * v("n") + v("j"),
                    },
                    vars: Vec::new(),
                    guards: Vec::new(),
                    preds: Vec::new(),
                }),
            ],
        }],
        smem_bytes: ceil8(v("n") * v("nrhs") * v("sbytes")),
        envelope: Envelope {
            grid: vec![("kl", vec![1]), ("ku", vec![0]), ("nrhs", vec![1])],
            derived: derived_band(),
            frees: vec![("n", 1, 1 << 20)],
            threads: vec![2, 3, 4],
            search_n: vec![2, 3, 4],
        },
        schedule: None,
    };

    vec![shift_fixture, gbsv_fixture]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_every_family_once() {
        let models = registry(Rigor::Quick);
        let mut families: Vec<_> = models.iter().map(|m| m.family).collect();
        families.sort_unstable();
        families.dedup();
        assert_eq!(families.len(), models.len(), "duplicate family in registry");
        assert!(models.len() >= 5, "at least five modeled families");
    }

    #[test]
    fn envelopes_ground_the_derived_band_symbols() {
        for m in registry(Rigor::Quick) {
            for g in m.envelope.groundings() {
                let kl = g["kl"];
                let ku = g["ku"];
                assert_eq!(g["kv"], kl + ku);
                assert_eq!(g["ldab"], 2 * kl + ku + 1);
            }
        }
    }

    #[test]
    fn template_index_constants_match_names() {
        let fused = fused_model(Rigor::Quick);
        assert_eq!(fused.template_index("head"), F_HEAD);
        assert_eq!(fused.template_index("scal_ger"), F_SG);
        let win = window_model(Rigor::Quick);
        assert_eq!(win.template_index("shift"), W_SHIFT);
        assert_eq!(win.template_index("shift_write"), W_SHIFT_W);
        assert_eq!(win.template_index("head"), W_HEAD);
        let gbsv = gbsv_model(Rigor::Quick);
        assert_eq!(gbsv.template_index("rhs_swap"), G_RHS_SWAP);
        assert_eq!(gbsv.template_index("backward"), G_BWD);
        let fwd = gbtrs_forward_model(Rigor::Quick);
        assert_eq!(fwd.template_index("colstep"), S_COL);
        assert_eq!(fwd.template_index("tail_last"), S_TAIL_LAST);
        let bwd = gbtrs_backward_model(Rigor::Quick);
        assert_eq!(bwd.template_index("tail"), S_TAIL);
        let ext = spike_extract_model(Rigor::Quick);
        assert_eq!(ext.template_index("stage"), X_STAGE);
        assert_eq!(ext.template_index("drain"), X_DRAIN);
        let cmb = spike_combine_model(Rigor::Quick);
        assert_eq!(cmb.template_index("stage"), C_STAGE);
        assert_eq!(cmb.template_index("consume"), C_CONSUME);
    }
}
