//! Batched dense matrix–vector multiply — the memory-bound workload of the
//! paper's Figure 1 (bottom), and the instrument the paper uses in §8 to
//! measure sustained memory bandwidth ("by running very large dense matrix
//! vector products, we are able to estimate the sustained peak memory
//! bound": 1.92 TB/s on H100-PCIe, 1.31 TB/s on an MI250x GCD).

use gbatch_core::blas2;
use gbatch_gpu_sim::{launch, DeviceSpec, KernelCounters, LaunchConfig, LaunchError, LaunchReport};

/// Per-block (one matrix) counters: `y = A x` streams the whole matrix once.
pub fn gemv_block_counters(n: usize, threads: u32) -> KernelCounters {
    let reads = (n * n + n) * 8;
    let flops = 2 * n * n;
    KernelCounters {
        global_read: reads as u64,
        global_write: (n * 8) as u64,
        flops: flops as u64,
        smem_trips: 1,
        syncs: 1,
        cycles: (flops as f64 / threads as f64).max(1.0),
        smem_elems: 0.0,
        ..Default::default()
    }
}

/// Batched `y = A x` over `batch` independent `n x n` systems stored
/// contiguously.
pub fn gemv_batch(
    dev: &DeviceSpec,
    n: usize,
    a: &[f64],
    x: &[f64],
    y: &mut [f64],
    threads: u32,
) -> Result<LaunchReport, LaunchError> {
    let len = n * n;
    assert_eq!(a.len() % len, 0);
    let batch = a.len() / len;
    assert_eq!(x.len(), batch * n);
    assert_eq!(y.len(), batch * n);
    let cfg = LaunchConfig::new(threads, 0).with_label("gemv");
    let model = gemv_block_counters(n, threads);

    struct Prob<'a> {
        a: &'a [f64],
        x: &'a [f64],
        y: &'a mut [f64],
    }
    let mut probs: Vec<Prob<'_>> = y
        .chunks_mut(n)
        .enumerate()
        .map(|(id, yy)| Prob {
            a: &a[id * len..(id + 1) * len],
            x: &x[id * n..(id + 1) * n],
            y: yy,
        })
        .collect();

    launch(dev, &cfg, &mut probs, |p, ctx| {
        blas2::gemv(n, n, 1.0, p.a, n, p.x, 0.0, p.y);
        ctx.gld(model.global_read as usize);
        ctx.gst(model.global_write as usize);
        ctx.par_work(n * n, 2);
        ctx.sync();
    })
}

/// Sustained-bandwidth probe (§8): run one very large `gemv` that fills the
/// device and report achieved bytes/second from the timing model. On both
/// simulated devices this recovers the descriptor's sustained bandwidth,
/// reproducing the paper's 1.47x H100/MI250x ratio.
pub fn measure_sustained_bandwidth(dev: &DeviceSpec, n: usize) -> Result<f64, LaunchError> {
    // Split the big matrix into one row-panel per block so the launch fills
    // every SM: grid = 4 waves worth of blocks.
    let grid = (dev.sms * dev.max_blocks_per_sm) as usize;
    let rows_per_block = n.div_ceil(grid).max(1);
    let cfg = LaunchConfig::new(256, 0);
    let bytes_per_block = (rows_per_block * n + n + rows_per_block) * 8;
    let mut ids: Vec<usize> = (0..grid).collect();
    let rep = launch(dev, &cfg, &mut ids, |_, ctx| {
        ctx.gld(bytes_per_block - rows_per_block * 8);
        ctx.gst(rows_per_block * 8);
        ctx.par_work(rows_per_block * n, 2);
    })?;
    let total_bytes = rep.counters.global_bytes() as f64;
    Ok(total_bytes / (rep.time.secs() - dev.launch_overhead_s))
}

/// Achieved Gflop/s for a batched gemv run.
pub fn gemv_gflops(n: usize, batch: usize, time_s: f64) -> f64 {
    (2.0 * (n as f64).powi(2) * batch as f64) / time_s / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_gpu_sim::stream::simulate_streams;

    fn fill(len: usize, seed: f64) -> Vec<f64> {
        let mut v = seed;
        (0..len)
            .map(|_| {
                v = (v * 2.1 + 0.043).fract();
                v - 0.5
            })
            .collect()
    }

    #[test]
    fn computes_correct_products() {
        let dev = DeviceSpec::mi250x_gcd();
        let (n, batch) = (16, 4);
        let a = fill(n * n * batch, 0.6);
        let x = fill(n * batch, 0.8);
        let mut y = vec![0.0; n * batch];
        let _ = gemv_batch(&dev, n, &a, &x, &mut y, 64).unwrap();
        for id in 0..batch {
            let mut expect = vec![0.0; n];
            blas2::gemv(
                n,
                n,
                1.0,
                &a[id * n * n..(id + 1) * n * n],
                n,
                &x[id * n..(id + 1) * n],
                0.0,
                &mut expect,
            );
            assert_eq!(&y[id * n..(id + 1) * n], &expect[..]);
        }
    }

    #[test]
    fn bandwidth_probe_reproduces_paper_ratio() {
        let h = DeviceSpec::h100_pcie();
        let m = DeviceSpec::mi250x_gcd();
        let bw_h = measure_sustained_bandwidth(&h, 16384).unwrap();
        let bw_m = measure_sustained_bandwidth(&m, 16384).unwrap();
        // Large gemv saturates: within 10% of the descriptor numbers.
        assert!(
            (bw_h / 1.92e12 - 1.0).abs() < 0.1,
            "H100 sustained {bw_h:.3e}"
        );
        assert!(
            (bw_m / 1.31e12 - 1.0).abs() < 0.1,
            "MI250x sustained {bw_m:.3e}"
        );
        let ratio = bw_h / bw_m;
        assert!(
            (ratio - 1.47).abs() < 0.1,
            "paper quotes 1.47x, got {ratio:.2}x"
        );
    }

    #[test]
    fn figure1_shape_for_memory_bound_kernel() {
        let dev = DeviceSpec::h100_pcie();
        let batch = 500;
        let cfg = LaunchConfig::new(128, 0);
        let occ = gbatch_gpu_sim::engine::validate(&dev, &cfg).unwrap();
        let mut gaps = Vec::new();
        for n in [32usize, 512] {
            let per_block = gemv_block_counters(n, 128);
            let batched = gbatch_gpu_sim::timing::estimate(&dev, &occ, batch, &per_block);
            let streamed = simulate_streams(&dev, &cfg, batch, 16, &per_block);
            gaps.push(streamed.secs() / batched.secs());
        }
        assert!(gaps[0] > 3.0, "small-size gap, got {:.2}x", gaps[0]);
        assert!(gaps[1] < gaps[0], "gap shrinks with size: {gaps:?}");
    }
}
