//! Interleaved (batch-major) band LU kernels: `GBTRF`/`GBTRS` whose inner
//! loops sweep the *batch* index over contiguous lanes.
//!
//! The column-major designs (§5.1–§5.3) parallelize across matrices only at
//! block granularity; inside one matrix the column-step primitives stride
//! within a small `ldab x n` panel. With the batch transposed to
//! [`InterleavedBandBatch`] order, every primitive — IAMAX, SWAP, SCAL, the
//! rank-1 update, the triangular-solve updates — becomes a sweep over a
//! contiguous lane of `batch` doubles: the coalesced/auto-vectorizable
//! access pattern of "Efficient Interleaved Batch Matrix Solvers" (Gloster
//! et al., arXiv:1909.04539). One simulated block owns a contiguous chunk
//! of lanes, so the whole batch needs only `ceil(batch / lanes_per_block)`
//! blocks, no shared memory, and **no barriers**: lanes never communicate.
//!
//! Numerics: each lane executes exactly the scalar operation sequence of
//! [`gbatch_core::gbtf2`] / [`gbatch_core::gbtrs::gbtrs`], with per-lane
//! masks standing in for SIMT divergence — lanes whose pivot is zero skip
//! the masked ops of that column (recording `info`, like LAPACK) without
//! disturbing sibling lanes, and the `u == 0` column skip of
//! `rank_one_update` is replicated per lane. Factors, pivots and solutions
//! are therefore **bitwise identical** to the sequential reference on every
//! lane, singular or not.
//!
//! Memory model — two traffic modes, chosen per launch from the device's
//! shared-memory capacity ([`LaneTrafficMode`]):
//!
//! - **Windowed**: the factorization's active window spans at most
//!   `kv + 2` columns (fill-in injection at `j + kv`, swap/update reach
//!   `j + kv`), so the block keeps that window of its lanes resident in
//!   shared memory — lane-private, hence still barrier-free — and each
//!   band element streams through DRAM exactly once in and once out, like
//!   the fused kernel. The window footprint
//!   ([`factor_smem_bytes`]/[`solve_smem_bytes`]) is the launch's
//!   shared-memory request: it prices occupancy honestly and makes wide
//!   bands clamp `lanes_per_block` down.
//! - **Streaming**: when even one lane's window exceeds the block limit
//!   (very wide bands), the kernel runs with *zero* shared memory and
//!   every primitive touches DRAM directly — roughly 3× the once-through
//!   traffic, but still one launch with no barriers. This is precisely the
//!   regime where the column-major designs have already fallen off their
//!   own shared-memory cliff onto the per-column `reference` path (one
//!   launch overhead *per column*), which the streaming mode undercuts —
//!   the wide-band corner of the layout crossover.
//!
//! Cost recording is *structural* (mask-independent): a SIMT machine pays
//! a masked sweep at the worst lane's reach, so every column records the
//! worst-case `w = min(kl + ku, n - 1 - j)` sweep width regardless of the
//! data. Recorded counters are therefore exactly predictable by
//! [`crate::cost::predict_interleaved_factor`] /
//! [`crate::cost::predict_interleaved_solve`], which the layout-dispatch
//! crossover model relies on.

use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch_core::interleaved::InterleavedBandBatch;
use gbatch_core::lanes::{LaneMode, LANE_WIDTH};
use gbatch_core::layout::update_bound;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::{launch, DeviceSpec, LaunchConfig, LaunchError, LaunchReport, ParallelPolicy};

const I32: usize = std::mem::size_of::<i32>();

/// Tunable parameters of the interleaved kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterleavedParams {
    /// Batch lanes per simulated block (= per executor work item). The
    /// grid has `ceil(batch / lanes_per_block)` blocks; within a block the
    /// lane sweeps stripe over the threads.
    pub lanes_per_block: usize,
    /// Threads per block.
    pub threads: u32,
    /// Host scheduling of the lane-chunk blocks (results are
    /// bitwise-identical for every policy).
    pub parallel: ParallelPolicy,
    /// Loop shape of the batch-innermost lane sweeps (default
    /// [`LaneMode::Chunked`]). Chunked mode runs every masked sweep over
    /// fixed [`LANE_WIDTH`] groups with a scalar remainder — same per-lane
    /// operations, masks and order, so results are bitwise-identical to
    /// [`LaneMode::Scalar`] by construction.
    pub lane_mode: LaneMode,
}

impl Default for InterleavedParams {
    fn default() -> Self {
        InterleavedParams {
            lanes_per_block: 256,
            threads: 256,
            parallel: ParallelPolicy::Serial,
            lane_mode: LaneMode::default(),
        }
    }
}

/// Shared-memory footprint of the factor kernel's resident lane window:
/// `kv + 2` columns (capped at `n`) of `ldab` band rows for `lanes` lanes
/// of `S` elements.
pub fn factor_smem_bytes<S: Scalar>(l: &gbatch_core::BandLayout, lanes: usize) -> usize {
    (l.kv() + 2).min(l.n) * l.ldab * lanes * S::BYTES
}

/// Shared-memory footprint of the solve kernel's resident RHS scratch:
/// the chunk's full `n x nrhs` solution panel of `S` elements.
pub fn solve_smem_bytes<S: Scalar>(
    l: &gbatch_core::BandLayout,
    nrhs: usize,
    lanes: usize,
) -> usize {
    l.n * nrhs * lanes * S::BYTES
}

/// DRAM traffic mode of an interleaved kernel launch (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneTrafficMode {
    /// Lane window resident in shared memory; each band element streams
    /// through DRAM once in, once out.
    Windowed,
    /// Window exceeds the block's shared-memory limit: zero shared memory,
    /// every primitive reads/writes DRAM directly.
    Streaming,
}

/// Mode [`gbtrf_batch_interleaved`] will run in on `dev` with `lanes`
/// lanes per block.
pub fn factor_mode<S: Scalar>(
    dev: &DeviceSpec,
    l: &gbatch_core::BandLayout,
    lanes: usize,
) -> LaneTrafficMode {
    if factor_smem_bytes::<S>(l, lanes) <= dev.max_smem_per_block as usize {
        LaneTrafficMode::Windowed
    } else {
        LaneTrafficMode::Streaming
    }
}

/// Mode [`gbtrs_batch_interleaved`] will run in on `dev` with `lanes`
/// lanes per block.
pub fn solve_mode<S: Scalar>(
    dev: &DeviceSpec,
    l: &gbatch_core::BandLayout,
    nrhs: usize,
    lanes: usize,
) -> LaneTrafficMode {
    if solve_smem_bytes::<S>(l, nrhs, lanes) <= dev.max_smem_per_block as usize {
        LaneTrafficMode::Windowed
    } else {
        LaneTrafficMode::Streaming
    }
}

impl InterleavedParams {
    /// Lane-chunk geometry fitted to the device: as many lanes per block
    /// as the resident window allows (factor window, and the solve scratch
    /// when `nrhs > 0`), capped at one lane per thread. Wide bands shrink
    /// the chunk; when even one lane's window exceeds the block's
    /// shared-memory limit the kernels run in [`LaneTrafficMode::Streaming`]
    /// and the chunk goes back to one lane per thread (no window to fit).
    pub fn auto(dev: &DeviceSpec, l: &gbatch_core::BandLayout, nrhs: usize) -> Self {
        Self::auto_for::<f64>(dev, l, nrhs)
    }

    /// Precision-aware variant of [`Self::auto`]: the resident windows
    /// shrink with `S::BYTES`, so f32 fits twice the lanes per block.
    pub fn auto_for<S: Scalar>(dev: &DeviceSpec, l: &gbatch_core::BandLayout, nrhs: usize) -> Self {
        let threads = 256u32.min(dev.max_threads_per_block).max(dev.warp_size);
        let cap = dev.max_smem_per_block as usize;
        // Only windows that *can* fit one lane constrain the chunk: a
        // kernel whose single-lane window already exceeds the block limit
        // runs in streaming mode whatever the lane count, so its footprint
        // must not drag the sibling kernel out of windowed mode.
        let per_lane = [
            factor_smem_bytes::<S>(l, 1),
            solve_smem_bytes::<S>(l, nrhs, 1),
        ]
        .into_iter()
        .filter(|&b| b > 0 && b <= cap)
        .max();
        let lanes = match per_lane {
            Some(b) => (cap / b).clamp(1, threads as usize),
            None => threads as usize,
        };
        InterleavedParams {
            lanes_per_block: lanes,
            threads,
            parallel: ParallelPolicy::Serial,
            lane_mode: LaneMode::default(),
        }
    }

    /// Builder: set the host scheduling policy.
    pub fn with_parallel(mut self, parallel: ParallelPolicy) -> Self {
        self.parallel = parallel;
        self
    }

    /// Builder: set the lane-sweep loop shape.
    pub fn with_lane_mode(mut self, lane_mode: LaneMode) -> Self {
        self.lane_mode = lane_mode;
        self
    }

    pub(crate) fn lanes_clamped(&self, batch: usize) -> usize {
        self.lanes_per_block.max(1).min(batch)
    }
}

/// Contiguous `(lo, lanes)` chunks covering `batch` lanes.
fn lane_chunks(batch: usize, lanes_per_block: usize) -> Vec<(usize, usize)> {
    (0..batch)
        .step_by(lanes_per_block)
        .map(|lo| (lo, lanes_per_block.min(batch - lo)))
        .collect()
}

/// Run `f(b)` for every lane `b in 0..lanes`, in ascending order.
///
/// The index-driven analogue of `gbatch_core::lanes::zip_each` for the
/// kernels' masked multi-array sweeps: under [`LaneMode::Chunked`] the body
/// runs in fixed [`LANE_WIDTH`] groups (a constant-trip inner loop the
/// compiler can unroll and vectorize around the per-lane masks) plus a
/// scalar remainder. Lane order, operations and masks are unchanged, so
/// both modes are bitwise-identical by construction.
#[inline(always)]
fn sweep_lanes<F: FnMut(usize)>(mode: LaneMode, lanes: usize, mut f: F) {
    match mode {
        LaneMode::Scalar => {
            for b in 0..lanes {
                f(b);
            }
        }
        LaneMode::Chunked => {
            let whole = lanes - lanes % LANE_WIDTH;
            let mut lo = 0;
            while lo < whole {
                for k in 0..LANE_WIDTH {
                    f(lo + k);
                }
                lo += LANE_WIDTH;
            }
            for b in whole..lanes {
                f(b);
            }
        }
    }
}

/// Strided mutable view of one lane chunk of an interleaved array.
///
/// The interleaved storage is `[elem][batch]` with the batch index
/// innermost; a chunk owns lanes `lo .. lo + lanes` of **every** element
/// index. Because chunks partition the batch into disjoint lane ranges,
/// the per-element slices of two different chunks never overlap, so the
/// parallel executor can run chunks on different workers — the same
/// disjointness argument as `ProblemsPtr` in `gbatch_gpu_sim::executor`,
/// applied per element index instead of per problem index.
///
/// Invariants every constructor must uphold (and the accessors rely on):
///
/// 1. `base` points at the first element of a live `[S]` allocation of at
///    least `elems * batch` elements, obtained from a `&mut` borrow that
///    outlives every view into it (the launch holds the borrow of the
///    `InterleavedBandBatch` until all workers join).
/// 2. `lo + lanes <= batch`, so `offset(e, b) < elems * batch` for every
///    in-range `(e, b)` — no access leaves the allocation.
/// 3. Concurrently live views cover pairwise-disjoint `[lo, lo + lanes)`
///    ranges: no element offset is reachable from two views at once.
struct LaneView<S> {
    base: *mut S,
    batch: usize,
    lo: usize,
    lanes: usize,
    elems: usize,
}

// SAFETY: a `LaneView` only ever dereferences `base` inside its own
// `[lo, lo + lanes)` lane range (asserted below); views handed to different
// executor workers cover disjoint ranges, so sending one to another thread
// cannot race with its siblings.
unsafe impl<S: Scalar> Send for LaneView<S> {}

impl<S: Scalar> LaneView<S> {
    #[inline(always)]
    fn offset(&self, e: usize, b: usize) -> usize {
        debug_assert!(
            e < self.elems,
            "element {e} out of range (< {})",
            self.elems
        );
        debug_assert!(b < self.lanes, "lane {b} out of range (< {})", self.lanes);
        e * self.batch + self.lo + b
    }

    /// Lane slice of element `e`, immutable.
    #[inline(always)]
    fn row(&self, e: usize) -> &[S] {
        let off = self.offset(e, 0);
        // SAFETY: `[off, off + lanes)` lies inside this chunk's lane range
        // of element `e`; no other chunk touches it (struct invariant) and
        // `&self` prevents simultaneous mutation through this view.
        unsafe { std::slice::from_raw_parts(self.base.add(off), self.lanes) }
    }

    /// Lane slice of element `e`, mutable.
    #[inline(always)]
    fn row_mut(&mut self, e: usize) -> &mut [S] {
        let off = self.offset(e, 0);
        // SAFETY: as in `row`, plus `&mut self` serializes mutable access
        // within the chunk.
        unsafe { std::slice::from_raw_parts_mut(self.base.add(off), self.lanes) }
    }

    /// Element `e`, lane `b` (lane index local to the chunk).
    #[inline(always)]
    fn get(&self, e: usize, b: usize) -> S {
        let off = self.offset(e, b);
        // SAFETY: single in-range element of this chunk's lane range.
        unsafe { *self.base.add(off) }
    }

    /// Store element `e`, lane `b`.
    #[inline(always)]
    fn set(&mut self, e: usize, b: usize, v: S) {
        let off = self.offset(e, b);
        // SAFETY: single in-range element of this chunk's lane range.
        unsafe { *self.base.add(off) = v }
    }
}

/// Batched band LU factorization on interleaved storage.
///
/// Factors every lane of `a` in place (LAPACK factor storage), filling
/// `piv` and `info` exactly like [`gbatch_core::gbtf2::gbtf2`] would per
/// matrix — bitwise-identical pivots, factors and info codes, under every
/// [`ParallelPolicy`].
pub fn gbtrf_batch_interleaved<S: Scalar>(
    dev: &DeviceSpec,
    a: &mut InterleavedBandBatch<S>,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
    params: InterleavedParams,
) -> Result<LaunchReport, LaunchError> {
    let l = a.layout();
    let batch = a.batch();
    assert_eq!(piv.batch(), batch, "pivot batch mismatch");
    assert_eq!(info.len(), batch, "info batch mismatch");
    assert_eq!(
        l.row_offset,
        l.kv(),
        "interleaved gbtrf requires factor storage"
    );
    let per = l.m.min(l.n);
    assert_eq!(piv.per_matrix(), per, "pivot length mismatch");
    let lpb = params.lanes_clamped(batch);
    let windowed = factor_mode::<S>(dev, &l, lpb) == LaneTrafficMode::Windowed;
    let smem = if windowed {
        u32::try_from(factor_smem_bytes::<S>(&l, lpb)).unwrap_or(u32::MAX)
    } else {
        0
    };
    let cfg = LaunchConfig::new(params.threads, smem)
        .with_parallel(params.parallel)
        .with_label("gbtrf_interleaved")
        .with_precision(crate::flop_class::<S>());

    struct Chunk<'a, S> {
        view: LaneView<S>,
        piv: &'a mut [i32],
        info: &'a mut [i32],
    }

    let elems = l.len();
    let base = a.data_mut().as_mut_ptr();
    let mut chunks: Vec<Chunk<'_, S>> = lane_chunks(batch, lpb)
        .into_iter()
        .zip(piv.as_mut_slice().chunks_mut(per * lpb))
        .zip(info.as_mut_slice().chunks_mut(lpb))
        .map(|(((lo, lanes), piv), info)| Chunk {
            view: LaneView {
                base,
                batch,
                lo,
                lanes,
                elems,
            },
            piv,
            info,
        })
        .collect();

    launch(dev, &cfg, &mut chunks, |p, ctx| {
        let kv = l.kv();
        let (n, kl) = (l.n, l.kl);
        let lanes = p.view.lanes;
        let mode = params.lane_mode;

        // Windowed mode streams the chunk's band panel in once; the
        // `kv + 2`-column working window stays block-resident (the
        // launch's shared-memory footprint), so the column sweeps below
        // touch no DRAM. Streaming mode skips the panel stream and pays
        // DRAM per primitive instead.
        if windowed {
            ctx.gld(l.len() * lanes * S::BYTES);
            ctx.vec_work(l.len() * lanes, 0);
        }

        // DGBTF2 prologue: zero the partially-reachable fill rows.
        let mut fill_items = 0usize;
        for j in (l.ku + 1)..kv.min(n) {
            for r in (kv - j)..kl {
                p.view.row_mut(l.idx(r, j)).fill(S::ZERO);
                fill_items += 1;
            }
        }
        ctx.vec_work(fill_items * lanes, 0);
        if !windowed {
            ctx.gst(fill_items * lanes * S::BYTES);
        }

        // Per-lane factorization state.
        let mut ju = vec![0usize; lanes];
        let mut jp = vec![0usize; lanes];
        let mut best = vec![S::ZERO; lanes];
        let mut pivval = vec![S::ZERO; lanes];
        let mut inv = vec![S::ZERO; lanes];
        let mut lane_info = vec![0i32; lanes];
        let mut mult = vec![S::ZERO; kl * lanes];
        let mut uvec = vec![S::ZERO; lanes];
        let mut fixed = vec![S::ZERO; lanes];

        for j in 0..per {
            let km = l.km(j);
            let w = kv.min(n - 1 - j); // structural worst-case reach

            // SET_FILLIN for the incoming column.
            if j + kv < n {
                for r in 0..kl {
                    p.view.row_mut(l.idx(r, j + kv)).fill(S::ZERO);
                }
                ctx.vec_work(kl * lanes, 0);
                if !windowed {
                    ctx.gst(kl * lanes * S::BYTES);
                }
            }

            // IAMAX, k-outer / lane-inner: per lane this is the exact
            // first-max scan of `gbtf2::pivot_search` (strict `>` keeps
            // the earliest maximum).
            for b in 0..lanes {
                best[b] = S::from_f64(-1.0);
                jp[b] = 0;
            }
            for k in 0..=km {
                let row = p.view.row(l.idx(kv + k, j));
                sweep_lanes(mode, lanes, |b| {
                    let v = row[b].abs();
                    if v > best[b] {
                        best[b] = v;
                        jp[b] = k;
                    }
                });
            }
            ctx.vec_work((km + 1) * lanes, 0);
            if !windowed {
                ctx.gld((km + 1) * lanes * S::BYTES);
            }

            // Pivot gather + bookkeeping (singular lanes record info and
            // drop out of this column's masked ops only).
            for b in 0..lanes {
                pivval[b] = p.view.get(l.idx(kv + jp[b], j), b);
                p.piv[b * per + j] = (j + jp[b]) as i32;
                if pivval[b] != S::ZERO {
                    ju[b] = update_bound(ju[b].max(j), j, l.ku, jp[b], n);
                } else if lane_info[b] == 0 {
                    lane_info[b] = (j + 1) as i32;
                }
            }
            ctx.gst(lanes * I32);
            if !windowed {
                ctx.gld(lanes * S::BYTES); // pivot value re-read
            }

            // SWAP to the right: structural sweep over w + 1 columns;
            // lanes with jp == 0, a zero pivot, or a shorter per-lane
            // reach are masked (and, as on a SIMT machine, still paid
            // for by the sweep).
            for k in 0..=w {
                let e_lo = l.idx(kv - k, j + k);
                fixed.copy_from_slice(p.view.row(e_lo));
                let view = &mut p.view;
                sweep_lanes(mode, lanes, |b| {
                    if pivval[b] != S::ZERO && jp[b] != 0 && k <= ju[b] - j {
                        let e_hi = l.idx(kv + jp[b] - k, j + k);
                        view.set(e_lo, b, view.get(e_hi, b));
                        view.set(e_hi, b, fixed[b]);
                    }
                });
            }
            ctx.vec_work((w + 1) * lanes, 0);
            if !windowed {
                // Both swap rows of each column: read-modify-write.
                ctx.gld(2 * (w + 1) * lanes * S::BYTES);
                ctx.gst(2 * (w + 1) * lanes * S::BYTES);
            }

            if km > 0 {
                // SCAL by the reciprocal pivot (masked per lane).
                for b in 0..lanes {
                    inv[b] = if pivval[b] != S::ZERO {
                        S::ONE / pivval[b]
                    } else {
                        S::ZERO
                    };
                }
                for k in 1..=km {
                    let row = p.view.row_mut(l.idx(kv + k, j));
                    sweep_lanes(mode, lanes, |b| {
                        if pivval[b] != S::ZERO {
                            row[b] *= inv[b];
                        }
                    });
                }
                ctx.vec_work(km * lanes, 1);
                if !windowed {
                    ctx.gld(km * lanes * S::BYTES);
                    ctx.gst(km * lanes * S::BYTES);
                }

                // Snapshot the multipliers once; every update column
                // reuses them (they are not modified below).
                for k in 1..=km {
                    mult[(k - 1) * lanes..k * lanes].copy_from_slice(p.view.row(l.idx(kv + k, j)));
                }

                // RANK_ONE_UPDATE over the structural reach; per-lane
                // masks apply the true reach `ju[b] - j` and gbtf2's
                // `u == 0` column skip (needed for bitwise identity:
                // `x - 0.0 * m` is not always a no-op, e.g. for -0.0).
                for c in 1..=w {
                    uvec.copy_from_slice(p.view.row(l.idx(kv - c, j + c)));
                    for i in 1..=km {
                        let dst = p.view.row_mut(l.idx(kv - c + i, j + c));
                        let mrow = &mult[(i - 1) * lanes..i * lanes];
                        sweep_lanes(mode, lanes, |b| {
                            let u = uvec[b];
                            if pivval[b] != S::ZERO && u != S::ZERO && c <= ju[b] - j {
                                dst[b] -= mrow[b] * u;
                            }
                        });
                    }
                }
                ctx.vec_work(w * lanes, 0);
                ctx.vec_work(w * km * lanes, 2);
                if !windowed {
                    // Per update column: u row + multiplier re-read + dst
                    // read-modify-write (no register cache of `mult` in
                    // streaming mode — `km` can exceed any register file).
                    ctx.gld(w * (1 + 2 * km) * lanes * S::BYTES);
                    ctx.gst(w * km * lanes * S::BYTES);
                }
            }
        }

        // Windowed mode streams the factored panel back out.
        if windowed {
            ctx.gst(l.len() * lanes * S::BYTES);
            ctx.vec_work(l.len() * lanes, 0);
        }
        p.info.copy_from_slice(&lane_info);
        ctx.gst(lanes * I32);
    })
}

/// Batched band triangular solve (`A x = b`, no transpose) on interleaved
/// factors.
///
/// Lanes whose `info` code is non-zero (singular factorization) are masked
/// out entirely: their RHS blocks are left untouched, siblings are solved
/// normally — no divide-by-zero, no caller-side RHS restore needed. On
/// every healthy lane the solution is bitwise-identical to
/// [`gbatch_core::gbtrs::gbtrs`].
pub fn gbtrs_batch_interleaved<S: Scalar>(
    dev: &DeviceSpec,
    a: &InterleavedBandBatch<S>,
    piv: &PivotBatch,
    rhs: &mut RhsBatch<S>,
    info: &InfoArray,
    params: InterleavedParams,
) -> Result<LaunchReport, LaunchError> {
    let l = a.layout();
    let batch = a.batch();
    assert_eq!(l.m, l.n, "interleaved gbtrs requires square factorizations");
    assert_eq!(piv.batch(), batch, "pivot batch mismatch");
    assert_eq!(rhs.batch(), batch, "rhs batch mismatch");
    assert_eq!(info.len(), batch, "info batch mismatch");
    assert_eq!(rhs.n(), l.n, "rhs order mismatch");
    let n = l.n;
    let per = n;
    let (ldb, nrhs, bs) = (rhs.ldb(), rhs.nrhs(), rhs.block_stride());
    let lpb = params.lanes_clamped(batch);
    let windowed = solve_mode::<S>(dev, &l, nrhs, lpb) == LaneTrafficMode::Windowed;
    let smem = if windowed {
        u32::try_from(solve_smem_bytes::<S>(&l, nrhs, lpb)).unwrap_or(u32::MAX)
    } else {
        0
    };
    let cfg = LaunchConfig::new(params.threads, smem)
        .with_parallel(params.parallel)
        .with_label("gbtrs_interleaved")
        .with_precision(crate::flop_class::<S>());
    let fac = a.data();

    struct Chunk<'a, S> {
        lo: usize,
        lanes: usize,
        piv: &'a [i32],
        info: &'a [i32],
        rhs: &'a mut [S],
    }

    let mut chunks: Vec<Chunk<'_, S>> = lane_chunks(batch, lpb)
        .into_iter()
        .zip(rhs.data_mut().chunks_mut(bs * lpb))
        .zip(piv.as_slice().chunks(per * lpb))
        .zip(info.as_slice().chunks(lpb))
        .map(|((((lo, lanes), rhs), piv), info)| Chunk {
            lo,
            lanes,
            piv,
            info,
            rhs,
        })
        .collect();

    launch(dev, &cfg, &mut chunks, |p, ctx| {
        let kv = l.kv();
        let kl = l.kl;
        let (lo, lanes) = (p.lo, p.lanes);
        let mode = params.lane_mode;
        // Read-only lane slice of factor element `e` for this chunk.
        let frow = |e: usize| &fac[e * batch + lo..e * batch + lo + lanes];
        let active: Vec<bool> = p.info.iter().map(|&i| i == 0).collect();

        // Gather the chunk's RHS blocks into a batch-major scratch
        // `x[(c * n + i) * lanes + b]` (the transposing load a native
        // interleaved RHS layout would not need). In windowed mode the
        // scratch is the launch's shared-memory footprint and the sweeps
        // below touch DRAM only for the factor panel; in streaming mode
        // the scratch models in-place global updates, so every sweep pays
        // its RHS traffic too.
        let mut x = vec![S::ZERO; n * nrhs * lanes];
        for b in 0..lanes {
            let blk = &p.rhs[b * bs..(b + 1) * bs];
            for c in 0..nrhs {
                for i in 0..n {
                    x[(c * n + i) * lanes + b] = blk[c * ldb + i];
                }
            }
        }
        if windowed {
            ctx.gld(n * nrhs * lanes * S::BYTES);
            ctx.vec_work(n * nrhs * lanes, 0);
        }

        // Forward elimination with progressive pivoting (`forward_step`
        // per column, lane-innermost).
        if kl > 0 {
            for j in 0..n - 1 {
                let lm = kl.min(n - 1 - j);
                for c in 0..nrhs {
                    sweep_lanes(mode, lanes, |b| {
                        let pvt = p.piv[b * per + j] as usize;
                        if active[b] && pvt != j {
                            x.swap((c * n + pvt) * lanes + b, (c * n + j) * lanes + b);
                        }
                    });
                }
                ctx.gld(lanes * I32); // pivot row
                ctx.vec_work(nrhs * lanes, 0);
                if !windowed {
                    // Structural swap: both RHS rows, read-modify-write.
                    ctx.gld(2 * nrhs * lanes * S::BYTES);
                    ctx.gst(2 * nrhs * lanes * S::BYTES);
                }
                if lm > 0 {
                    for c in 0..nrhs {
                        for i in 1..=lm {
                            let m = frow(l.idx(kv + i, j));
                            sweep_lanes(mode, lanes, |b| {
                                let bj = x[(c * n + j) * lanes + b];
                                if active[b] && bj != S::ZERO {
                                    x[(c * n + j + i) * lanes + b] -= m[b] * bj;
                                }
                            });
                        }
                    }
                    ctx.gld(lm * lanes * S::BYTES); // L multipliers of column j
                    ctx.vec_work(lm * nrhs * lanes, 2);
                    if !windowed {
                        // `b[j]` re-read plus the `lm` updated rows.
                        ctx.gld((1 + lm) * nrhs * lanes * S::BYTES);
                        ctx.gst(lm * nrhs * lanes * S::BYTES);
                    }
                }
            }
        }

        // Backward substitution on the banded U (`backward_solve`,
        // lane-innermost).
        for c in 0..nrhs {
            for j in (0..n).rev() {
                let reach = kv.min(j);
                let diag = frow(l.idx(kv, j));
                let jrow = (c * n + j) * lanes;
                sweep_lanes(mode, lanes, |b| {
                    if active[b] {
                        x[jrow + b] /= diag[b];
                    }
                });
                ctx.gld(lanes * S::BYTES); // diagonal of U
                ctx.vec_work(lanes, 1);
                if !windowed {
                    // `x[j]` read-modify-write by the division.
                    ctx.gld(lanes * S::BYTES);
                    ctx.gst(lanes * S::BYTES);
                }
                if reach > 0 {
                    for i in 1..=reach {
                        let u = frow(l.idx(kv - i, j));
                        sweep_lanes(mode, lanes, |b| {
                            let bj = x[jrow + b];
                            if active[b] && bj != S::ZERO {
                                x[(c * n + j - i) * lanes + b] -= u[b] * bj;
                            }
                        });
                    }
                    ctx.gld(reach * lanes * S::BYTES); // U column above the diagonal
                    ctx.vec_work(reach * lanes, 2);
                    if !windowed {
                        // The `reach` updated rows, read-modify-write.
                        ctx.gld(reach * lanes * S::BYTES);
                        ctx.gst(reach * lanes * S::BYTES);
                    }
                }
            }
        }

        // Scatter solutions back; masked (singular) lanes keep their
        // original RHS. The store sweep is structural: masked lanes still
        // occupy their transaction slots. (Streaming mode updated the
        // global RHS in place — no final scatter to pay.)
        for b in 0..lanes {
            if !active[b] {
                continue;
            }
            let blk = &mut p.rhs[b * bs..(b + 1) * bs];
            for c in 0..nrhs {
                for i in 0..n {
                    blk[c * ldb + i] = x[(c * n + i) * lanes + b];
                }
            }
        }
        if windowed {
            ctx.gst(n * nrhs * lanes * S::BYTES);
            ctx.vec_work(n * nrhs * lanes, 0);
        }
    })
}

/// Transpose a column-major batch into interleaved storage as a modeled
/// kernel launch (the pack pass a dispatch-level layout switch pays).
pub fn interleave_launch<S: Scalar>(
    dev: &DeviceSpec,
    src: &BandBatch<S>,
    params: InterleavedParams,
) -> Result<(InterleavedBandBatch<S>, LaunchReport), LaunchError> {
    let l = src.layout();
    let batch = src.batch();
    let elems = l.len();
    let mut dst =
        InterleavedBandBatch::zeros_with_layout(l, batch).expect("source batch is non-empty");
    let lpb = params.lanes_clamped(batch);
    let cfg = LaunchConfig::new(params.threads, 0)
        .with_parallel(params.parallel)
        .with_label("interleave")
        .with_precision(crate::flop_class::<S>());

    struct Chunk<'a, S> {
        view: LaneView<S>,
        src: &'a [S],
    }

    let base = dst.data_mut().as_mut_ptr();
    let src_data = src.data();
    let mut chunks: Vec<Chunk<'_, S>> = lane_chunks(batch, lpb)
        .into_iter()
        .map(|(lo, lanes)| Chunk {
            view: LaneView {
                base,
                batch,
                lo,
                lanes,
                elems,
            },
            src: &src_data[lo * elems..(lo + lanes) * elems],
        })
        .collect();

    let rep = launch(dev, &cfg, &mut chunks, |p, ctx| {
        let lanes = p.view.lanes;
        for (b, m) in p.src.chunks(elems).enumerate() {
            for (e, &v) in m.iter().enumerate() {
                p.view.set(e, b, v);
            }
        }
        ctx.gld(elems * lanes * S::BYTES);
        ctx.gst(elems * lanes * S::BYTES);
        ctx.vec_work(elems * lanes, 0);
    })?;
    Ok((dst, rep))
}

/// Transpose interleaved storage back to a column-major batch as a modeled
/// kernel launch (the unpack pass of a dispatch-level layout switch).
pub fn deinterleave_launch<S: Scalar>(
    dev: &DeviceSpec,
    src: &InterleavedBandBatch<S>,
    params: InterleavedParams,
) -> Result<(BandBatch<S>, LaunchReport), LaunchError> {
    let l = src.layout();
    let batch = src.batch();
    let elems = l.len();
    let mut dst = BandBatch::zeros_with_layout(l, batch).expect("source batch is non-empty");
    let lpb = params.lanes_clamped(batch);
    let cfg = LaunchConfig::new(params.threads, 0)
        .with_parallel(params.parallel)
        .with_label("deinterleave")
        .with_precision(crate::flop_class::<S>());
    let src_data = src.data();

    struct Chunk<'a, S> {
        lo: usize,
        dst: &'a mut [S],
    }

    let mut chunks: Vec<Chunk<'_, S>> = lane_chunks(batch, lpb)
        .into_iter()
        .zip(dst.data_mut().chunks_mut(elems * lpb))
        .map(|((lo, _lanes), dst)| Chunk { lo, dst })
        .collect();

    let rep = launch(dev, &cfg, &mut chunks, |p, ctx| {
        let lanes = p.dst.len() / elems;
        for (bi, m) in p.dst.chunks_mut(elems).enumerate() {
            let b = p.lo + bi;
            for (e, v) in m.iter_mut().enumerate() {
                *v = src_data[e * batch + b];
            }
        }
        ctx.gld(elems * lanes * S::BYTES);
        ctx.gst(elems * lanes * S::BYTES);
        ctx.vec_work(elems * lanes, 0);
    })?;
    Ok((dst, rep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::gbtf2::gbtf2;
    use gbatch_core::gbtrs::{gbtrs, Transpose};

    const F64: usize = std::mem::size_of::<f64>();

    fn random_batch(batch: usize, m: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
        let mut v = 0.29f64;
        BandBatch::from_fn(batch, m, n, kl, ku, |id, mat| {
            for j in 0..n {
                let (s, e) = mat.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.1 + 0.063 + id as f64 * 1e-4).fract();
                    mat.set(i, j, v - 0.5);
                }
            }
        })
        .unwrap()
    }

    fn gbtf2_oracle(a: &BandBatch) -> (Vec<Vec<f64>>, Vec<Vec<i32>>, Vec<i32>) {
        let l = a.layout();
        let per = l.m.min(l.n);
        let mut fs = Vec::new();
        let mut ps = Vec::new();
        let mut is = Vec::new();
        for id in 0..a.batch() {
            let mut ab = a.matrix(id).data.to_vec();
            let mut p = vec![0i32; per];
            is.push(gbtf2(&l, &mut ab, &mut p));
            fs.push(ab);
            ps.push(p);
        }
        (fs, ps, is)
    }

    fn factor_interleaved(
        a: &BandBatch,
        params: InterleavedParams,
    ) -> (InterleavedBandBatch, PivotBatch, InfoArray, LaunchReport) {
        let dev = DeviceSpec::h100_pcie();
        let l = a.layout();
        let mut ia = InterleavedBandBatch::from_batch(a);
        let mut piv = PivotBatch::new(a.batch(), l.m, l.n);
        let mut info = InfoArray::new(a.batch());
        let rep = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params).unwrap();
        (ia, piv, info, rep)
    }

    #[test]
    fn factor_matches_gbtf2_bitwise() {
        for (m, n, kl, ku) in [
            (9, 9, 2, 3),
            (32, 32, 2, 3),
            (24, 24, 10, 7),
            (16, 16, 0, 3),
            (16, 16, 3, 0),
            (12, 12, 1, 1),
            (9, 6, 1, 2),
            (6, 9, 2, 1),
        ] {
            let batch = 7;
            let a = random_batch(batch, m, n, kl, ku);
            let (fs, ps, is) = gbtf2_oracle(&a);
            let (ia, piv, info, rep) = factor_interleaved(&a, InterleavedParams::default());
            assert_eq!(rep.grid, 1, "7 lanes fit one chunk");
            let back = ia.to_batch();
            for id in 0..batch {
                assert_eq!(back.matrix(id).data, &fs[id][..], "factors m={m} n={n}");
                assert_eq!(piv.pivots(id), &ps[id][..], "pivots m={m} n={n}");
                assert_eq!(info.get(id), is[id], "info m={m} n={n}");
            }
        }
    }

    #[test]
    fn factor_handles_mixed_singular_batch() {
        let n = 12;
        let mut a = random_batch(6, n, n, 2, 1);
        // Lane 2: zero the whole first pivot-candidate column.
        {
            let mut m = a.matrix_mut(2);
            for i in 0..=2usize {
                m.set(i, 0, 0.0);
            }
        }
        // Lane 4: zero column 5's candidates to hit a mid-factorization
        // singularity.
        {
            let mut m = a.matrix_mut(4);
            for i in 5..=(5 + 2usize).min(n - 1) {
                m.set(i, 5, 0.0);
            }
        }
        let (fs, ps, is) = gbtf2_oracle(&a);
        assert!(is.iter().any(|&i| i != 0), "test setup produces failures");
        let (ia, piv, info, _) = factor_interleaved(&a, InterleavedParams::default());
        let back = ia.to_batch();
        for id in 0..6 {
            assert_eq!(info.get(id), is[id], "info lane {id}");
            assert_eq!(back.matrix(id).data, &fs[id][..], "factors lane {id}");
            assert_eq!(piv.pivots(id), &ps[id][..], "pivots lane {id}");
        }
    }

    #[test]
    fn chunking_and_parallel_policies_are_bitwise_identical() {
        let (batch, n, kl, ku) = (37usize, 16usize, 2usize, 3usize);
        let a = random_batch(batch, n, n, kl, ku);
        let baseline = factor_interleaved(
            &a,
            InterleavedParams {
                lanes_per_block: 8,
                ..Default::default()
            },
        );
        for (lpb, policy) in [
            (8, ParallelPolicy::threads(2)),
            (8, ParallelPolicy::threads(8)),
            (5, ParallelPolicy::Serial),
            (37, ParallelPolicy::threads(4)),
            (64, ParallelPolicy::Serial),
        ] {
            let params = InterleavedParams {
                lanes_per_block: lpb,
                parallel: policy,
                ..Default::default()
            };
            let (ia, piv, info, _) = factor_interleaved(&a, params);
            assert_eq!(ia, baseline.0, "factors lpb={lpb} policy={policy:?}");
            assert_eq!(piv, baseline.1, "pivots lpb={lpb}");
            assert_eq!(info, baseline.2, "info lpb={lpb}");
        }
        // Same chunk geometry => identical counters for any policy.
        let serial = factor_interleaved(
            &a,
            InterleavedParams {
                lanes_per_block: 8,
                ..Default::default()
            },
        );
        let threaded = factor_interleaved(
            &a,
            InterleavedParams {
                lanes_per_block: 8,
                parallel: ParallelPolicy::threads(8),
                ..Default::default()
            },
        );
        // `threads_spawned` is deliberately policy-variant provenance
        // (serial spawns none); everything else must match exactly.
        assert_eq!(serial.3.counters.threads_spawned, 0);
        assert_eq!(threaded.3.counters.threads_spawned, 5, "5 chunks of 8");
        let mut tc = threaded.3.counters;
        tc.threads_spawned = serial.3.counters.threads_spawned;
        assert_eq!(serial.3.counters, tc);
    }

    #[test]
    fn lane_modes_are_bitwise_identical() {
        use gbatch_core::lanes::LaneMode;
        // Chunk sizes straddling LANE_WIDTH (remainder lanes included) and
        // a mid-batch singular lane: the chunked sweeps must reproduce the
        // scalar sweeps bit for bit, masks and all.
        let (batch, n, kl, ku, nrhs) = (37usize, 16usize, 2usize, 3usize, 2usize);
        let dev = DeviceSpec::h100_pcie();
        let mut a = random_batch(batch, n, n, kl, ku);
        {
            let mut m = a.matrix_mut(13);
            for i in 0..=kl {
                m.set(i, 0, 0.0);
            }
        }
        let rhs0 = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
            ((id * 17 + c * 5 + i) as f64 * 0.73).sin()
        })
        .unwrap();
        for lpb in [5usize, 8, 37] {
            let base = InterleavedParams {
                lanes_per_block: lpb,
                ..Default::default()
            };
            let runs: Vec<_> = [LaneMode::Scalar, LaneMode::Chunked]
                .into_iter()
                .map(|lane_mode| {
                    let params = base.with_lane_mode(lane_mode);
                    let (ia, piv, info, rep) = factor_interleaved(&a, params);
                    let mut rhs = rhs0.clone();
                    let srep =
                        gbtrs_batch_interleaved(&dev, &ia, &piv, &mut rhs, &info, params).unwrap();
                    (ia, piv, info, rhs, rep.counters, srep.counters)
                })
                .collect();
            assert_ne!(runs[0].2.get(13), 0, "lane 13 is singular");
            assert_eq!(runs[0], runs[1], "lpb={lpb}");
        }
    }

    #[test]
    fn solve_matches_gbtrs_bitwise() {
        for (n, kl, ku, nrhs) in [(12, 2, 3, 1), (20, 1, 1, 3), (16, 10, 7, 2), (9, 0, 2, 1)] {
            let dev = DeviceSpec::h100_pcie();
            let batch = 9;
            let a = random_batch(batch, n, n, kl, ku);
            let rhs0 = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
                ((id * 31 + c * 7 + i) as f64 * 0.57).sin()
            })
            .unwrap();
            let (fs, ps, is) = gbtf2_oracle(&a);
            let (ia, piv, info, _) = factor_interleaved(&a, InterleavedParams::default());
            let mut rhs = rhs0.clone();
            let _ = gbtrs_batch_interleaved(
                &dev,
                &ia,
                &piv,
                &mut rhs,
                &info,
                InterleavedParams::default(),
            )
            .unwrap();
            let l = a.layout();
            for id in 0..batch {
                assert_eq!(is[id], 0);
                let mut expect = rhs0.block(id).to_vec();
                gbtrs(Transpose::No, &l, &fs[id], &ps[id], &mut expect, n, nrhs);
                assert_eq!(
                    rhs.block(id),
                    &expect[..],
                    "solution n={n} kl={kl} ku={ku} id={id}"
                );
            }
        }
    }

    #[test]
    fn solve_masks_singular_lanes() {
        let dev = DeviceSpec::h100_pcie();
        let n = 10;
        let batch = 5;
        let mut a = random_batch(batch, n, n, 1, 1);
        {
            let mut m = a.matrix_mut(3);
            m.set(0, 0, 0.0);
            m.set(1, 0, 0.0);
        }
        let (fs, ps, is) = gbtf2_oracle(&a);
        let (ia, piv, info, _) = factor_interleaved(&a, InterleavedParams::default());
        assert_eq!(info.get(3), is[3]);
        assert_ne!(info.get(3), 0);
        let rhs0 = RhsBatch::from_fn(batch, n, 2, |id, i, c| (id + i + c) as f64 * 0.1).unwrap();
        let mut rhs = rhs0.clone();
        let _ = gbtrs_batch_interleaved(
            &dev,
            &ia,
            &piv,
            &mut rhs,
            &info,
            InterleavedParams {
                lanes_per_block: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let l = a.layout();
        for id in 0..batch {
            if id == 3 {
                assert_eq!(rhs.block(id), rhs0.block(id), "singular lane untouched");
            } else {
                let mut expect = rhs0.block(id).to_vec();
                gbtrs(Transpose::No, &l, &fs[id], &ps[id], &mut expect, n, 2);
                assert_eq!(rhs.block(id), &expect[..], "healthy lane {id}");
            }
        }
    }

    #[test]
    fn conversion_launches_round_trip() {
        let dev = DeviceSpec::h100_pcie();
        let a = random_batch(11, 9, 9, 2, 3);
        let params = InterleavedParams {
            lanes_per_block: 4,
            ..Default::default()
        };
        let (ia, rep_in) = interleave_launch(&dev, &a, params).unwrap();
        assert_eq!(ia, InterleavedBandBatch::from_batch(&a));
        let bytes = (a.layout().len() * 11 * F64) as u64;
        assert_eq!(rep_in.counters.global_read, bytes);
        assert_eq!(rep_in.counters.global_write, bytes);
        let (back, rep_out) = deinterleave_launch(&dev, &ia, params).unwrap();
        assert_eq!(back, a);
        assert_eq!(rep_out.counters.global_bytes(), 2 * bytes);
    }

    #[test]
    fn records_lane_utilization() {
        let (batch, n) = (64usize, 12usize);
        let a = random_batch(batch, n, n, 2, 1);
        let (_, _, _, rep) = factor_interleaved(
            &a,
            InterleavedParams {
                lanes_per_block: 64,
                ..Default::default()
            },
        );
        let c = rep.counters;
        assert!(c.lane_sweeps > 0, "lane sweeps recorded");
        // 64-lane chunks divide the width-8 vectors exactly.
        assert_eq!(c.lane_utilization(8), Some(1.0));
        assert_eq!(c.syncs, 0, "interleaved kernel needs no barriers");
        assert_eq!(c.smem_trips, 0, "no shared-memory round trips");
    }

    #[test]
    fn auto_params_respect_device_limits() {
        let dev = DeviceSpec::h100_pcie();
        // Narrow band: the window is tiny, one lane per thread.
        let tri = gbatch_core::BandLayout::factor(64, 64, 1, 1).unwrap();
        let p = InterleavedParams::auto(&dev, &tri, 0);
        assert!(p.threads <= dev.max_threads_per_block);
        assert_eq!(p.lanes_per_block, p.threads as usize);
        // Wide band: the resident window clamps the chunk well below the
        // thread count.
        let wide = gbatch_core::BandLayout::factor(512, 512, 24, 24).unwrap();
        let pw = InterleavedParams::auto(&dev, &wide, 0);
        assert!(pw.lanes_per_block < p.lanes_per_block);
        assert_eq!(
            pw.lanes_per_block,
            dev.max_smem_per_block as usize / factor_smem_bytes::<f64>(&wide, 1)
        );
        // A large solve scratch tightens the clamp further…
        let ps = InterleavedParams::auto(&dev, &wide, 32);
        assert!(solve_smem_bytes::<f64>(&wide, 32, 1) <= dev.max_smem_per_block as usize);
        assert!(ps.lanes_per_block < pw.lanes_per_block);
        // …but one that cannot fit even a single lane streams regardless
        // and must not shrink the factor's windowed chunk.
        assert!(solve_smem_bytes::<f64>(&wide, 128, 1) > dev.max_smem_per_block as usize);
        let px = InterleavedParams::auto(&dev, &wide, 128);
        assert_eq!(px.lanes_per_block, pw.lanes_per_block);
        // Absurd bandwidth: even one lane's window exceeds the block limit,
        // so the kernels will run in streaming mode — the chunk goes back
        // to one lane per thread.
        let huge = gbatch_core::BandLayout::factor(4096, 4096, 512, 512).unwrap();
        assert!(factor_smem_bytes::<f64>(&huge, 1) > dev.max_smem_per_block as usize);
        let ph = InterleavedParams::auto(&dev, &huge, 0);
        assert_eq!(ph.lanes_per_block, ph.threads as usize);
        assert_eq!(
            factor_mode::<f64>(&dev, &tri, 256),
            LaneTrafficMode::Windowed
        );
        assert_eq!(
            factor_mode::<f64>(&dev, &huge, ph.lanes_per_block),
            LaneTrafficMode::Streaming
        );
        assert_eq!(lane_chunks(10, 4), vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(lane_chunks(4, 8), vec![(0, 4)]);
    }

    #[test]
    fn oversized_window_streams_with_identical_numerics() {
        let dev = DeviceSpec::test_device(); // 16 KiB shared memory
        let n = 128;
        let batch = 4;
        let a = random_batch(batch, n, n, 40, 40);
        let l = a.layout();
        let mut ia = InterleavedBandBatch::from_batch(&a);
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let params = InterleavedParams {
            lanes_per_block: 4,
            threads: dev.max_threads_per_block,
            ..Default::default()
        };
        // The resident window does not fit, so the launch drops to
        // streaming mode: zero shared memory, per-primitive DRAM traffic,
        // same numerics.
        assert!(factor_smem_bytes::<f64>(&l, 4) > dev.max_smem_per_block as usize);
        assert_eq!(factor_mode::<f64>(&dev, &l, 4), LaneTrafficMode::Streaming);
        let rep = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params)
            .expect("streaming mode must not require shared memory");
        // More traffic than the once-through windowed stream…
        let once_through = 2 * l.len() * batch * std::mem::size_of::<f64>();
        assert!(rep.counters.global_bytes() as usize > once_through);
        // …but bitwise-identical factors, pivots and info codes.
        let (fs, ps, is) = gbtf2_oracle(&a);
        let out = ia.to_batch();
        for id in 0..batch {
            assert_eq!(out.matrix(id).data, &fs[id][..]);
            assert_eq!(piv.pivots(id), &ps[id][..]);
            assert_eq!(info.get(id), is[id]);
        }
        // The solve scratch does not fit either: the solve streams too and
        // still matches the reference bitwise.
        let nrhs = 33;
        assert_eq!(
            solve_mode::<f64>(&dev, &l, nrhs, 4),
            LaneTrafficMode::Streaming
        );
        let rhs0 = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
            ((id * 31 + c * 7 + i) as f64 * 0.137).sin()
        })
        .unwrap();
        let mut rhs = rhs0.clone();
        let _ = gbtrs_batch_interleaved(&dev, &ia, &piv, &mut rhs, &info, params)
            .expect("streaming solve must not require shared memory");
        for id in 0..batch {
            let mut expect = rhs0.block(id).to_vec();
            gbtrs(Transpose::No, &l, &fs[id], &ps[id], &mut expect, n, nrhs);
            assert_eq!(rhs.block(id), &expect[..]);
        }
    }

    /// Miri-sized exercises of the `LaneView` pointer plumbing: tiny shapes
    /// so `cargo miri test -p gbatch-kernels interleaved::tests::miri_sized`
    /// finishes quickly while still driving every `unsafe` accessor
    /// (`row`/`row_mut`/`get`/`set`) across worker threads.
    mod miri_sized {
        use super::super::*;
        use gbatch_core::gbtf2::gbtf2;
        use gbatch_core::BandBatch;

        #[test]
        fn lane_views_partition_without_aliasing() {
            // 5 lanes split into chunks of 2 => ranges [0,2), [2,4), [4,5):
            // every element of the interleaved array is written through
            // exactly one view, concurrently under the threaded policy.
            let dev = DeviceSpec::h100_pcie();
            let (n, kl, ku, batch) = (4usize, 1usize, 1usize, 5usize);
            let mut seed = 0.37f64;
            let aos = BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
                for j in 0..n {
                    let (s, e) = m.layout.col_rows(j);
                    for i in s..e {
                        seed = (seed * 1.7 + 0.11 + id as f64 * 1e-3).fract();
                        m.set(i, j, seed - 0.5 + if i == j { 1.0 } else { 0.0 });
                    }
                }
            })
            .unwrap();
            let expected: Vec<(Vec<f64>, Vec<i32>, i32)> = (0..batch)
                .map(|id| {
                    let mut ab = aos.matrix(id).data.to_vec();
                    let mut p = vec![0i32; n];
                    let info = gbtf2(&aos.layout(), &mut ab, &mut p);
                    (ab, p, info)
                })
                .collect();

            let mut ia = InterleavedBandBatch::from_batch(&aos);
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let params = InterleavedParams {
                lanes_per_block: 2,
                parallel: ParallelPolicy::threads(3),
                ..Default::default()
            };
            let _ = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params).unwrap();
            let back = ia.to_batch();
            for id in 0..batch {
                assert_eq!(back.matrix(id).data, &expected[id].0[..]);
                assert_eq!(piv.pivots(id), &expected[id].1[..]);
                assert_eq!(info.get(id), expected[id].2);
            }
        }

        #[test]
        fn lane_view_single_lane_chunks() {
            // Degenerate chunking (one lane per view) maximizes the number
            // of simultaneously live views over one allocation.
            let dev = DeviceSpec::h100_pcie();
            let (n, batch) = (3usize, 4usize);
            let aos = BandBatch::from_fn(batch, n, n, 1, 1, |id, m| {
                for j in 0..n {
                    let (s, e) = m.layout.col_rows(j);
                    for i in s..e {
                        m.set(i, j, 1.0 + (id + i + 2 * j) as f64 * 0.25);
                    }
                }
            })
            .unwrap();
            let mut ia = InterleavedBandBatch::from_batch(&aos);
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let params = InterleavedParams {
                lanes_per_block: 1,
                parallel: ParallelPolicy::threads(2),
                ..Default::default()
            };
            let _ = gbtrf_batch_interleaved(&dev, &mut ia, &mut piv, &mut info, params).unwrap();
            assert!(info.all_ok());
        }
    }
}
