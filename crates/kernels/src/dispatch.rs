//! The batched band routines' user interface (paper Section 4) and the
//! kernel-selection logic of §5.4 ("The Complete Picture").
//!
//! Selection policy, exactly as the paper describes:
//!
//! - **fused** for very small matrices (`n <= 64` by default): no window
//!   shifting, no extra synchronization;
//! - **sliding window** for everything else ("in most cases the sliding
//!   window approach is selected, since it covers a very wide range of band
//!   sizes regardless of the matrix size");
//! - **reference** as the safety net when even one window column set cannot
//!   fit in shared memory;
//! - for the driver, the fused factor+solve kernel handles `n <= 64`,
//!   `nrhs == 1` (§7).
//!
//! The C-style interface of the paper (`dgbtrf_batch`, `dgbtrs_batch`,
//! `dgbsv_batch` over `double**` pointer arrays) maps to the batch
//! containers of `gbatch_core`; the `info` array and per-matrix pivot
//! vectors are preserved verbatim.
//!
//! On top of the paper's algorithm dimension this dispatcher adds a
//! **storage-layout** dimension ([`MatrixLayout`]): the batch-major
//! interleaved kernels of [`crate::interleaved`] are priced against the
//! column-major choice by [`CrossoverModel`] — both sides through the same
//! analytic launch model — and selected when they win *including* the
//! pack/unpack conversion passes the column-major API forces on them.

use crate::cost::{
    predict_fused, predict_gbtrs_blocked, predict_reference_floor, predict_time, predict_window,
    CrossoverModel,
};
use crate::fused::{fused_smem_bytes, gbtrf_batch_fused, FusedParams};
use crate::gbsv_fused::{gbsv_batch_fused, gbsv_smem_bytes, FUSED_GBSV_MAX_N};
use crate::gbtrs_blocked::{gbtrs_batch_blocked, SolveParams};
use crate::gbtrs_cols::gbtrs_batch_cols;
use crate::gbtrs_trans::gbtrs_batch_blocked_trans;
use crate::interleaved::{
    deinterleave_launch, gbtrf_batch_interleaved, gbtrs_batch_interleaved, interleave_launch,
    InterleavedParams,
};
use crate::reference::gbtrf_batch_reference;
use crate::spike::{spike_gbsv_batch, SpikeParams};
use crate::window::{gbtrf_batch_window, window_smem_bytes, WindowParams};
use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch, RhsBatch};
use gbatch_core::gbtrs::Transpose;
use gbatch_core::layout::BandLayout;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::engine::validate;
use gbatch_gpu_sim::{
    DeviceSpec, EngineMode, EngineScope, LaunchConfig, LaunchError, ParallelPolicy, SimTime,
};

/// Factorization algorithm selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FactorAlgo {
    /// §5.4 policy: fused below the cutoff, window otherwise, reference as
    /// the safety net.
    #[default]
    Auto,
    /// Force the fully fused kernel (§5.2).
    Fused,
    /// Force the sliding-window kernel (§5.3).
    Window,
    /// Force the fork–join reference (§5.1).
    Reference,
}

/// Which kernel the dispatcher actually ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChosenAlgo {
    /// Fully fused factorization.
    Fused,
    /// Sliding-window factorization.
    Window,
    /// Fork–join reference factorization.
    Reference,
    /// Single-kernel factorize-and-solve (`GBSV` only).
    FusedGbsv,
    /// Band-specialized register-file kernel (§8.1 emulation, opt-in).
    Specialized,
    /// Batch-major interleaved kernels behind pack/unpack conversion
    /// passes ([`crate::interleaved`]).
    Interleaved,
    /// SPIKE-style split solve for large single systems
    /// ([`crate::spike`]): `P` diagonal blocks factored as an
    /// intra-matrix batch plus a small reduced coupling system.
    Spike,
}

/// Storage-layout selection for the batched routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatrixLayout {
    /// Price both layouts with the [`CrossoverModel`] and pick the
    /// predicted winner (conversion passes included on the interleaved
    /// side — the API accepts and returns column-major storage).
    #[default]
    Auto,
    /// Keep the paper's column-major kernels (§5.1–§5.3).
    ColumnMajor,
    /// Force the batch-major interleaved kernels (pack, factor/solve,
    /// unpack).
    Interleaved,
}

/// Options for the batched routines. `Default` reproduces the paper's
/// published configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct GbsvOptions {
    /// Factorization algorithm (default: auto).
    pub algo: FactorAlgo,
    /// Matrix-order cutoff for the fused kernels (default 64, §5.4/§7).
    pub fused_cutoff: Option<usize>,
    /// Sliding-window tuning parameters (default: [`WindowParams::auto`];
    /// the `gbatch-tuning` crate produces better values per band shape).
    pub window: Option<WindowParams>,
    /// Fused-kernel thread count (default: [`FusedParams::auto`]).
    pub fused_threads: Option<u32>,
    /// Blocked-solve tuning parameters (default: [`SolveParams::auto`]).
    pub solve: Option<SolveParams>,
    /// Allow the single-kernel fused GBSV for small single-RHS systems
    /// (default true; disable for the Figure 7 "standard" baseline).
    pub allow_fused_gbsv: Option<bool>,
    /// Prefer the band-specialized register-file kernels (the §8.1
    /// JIT-emulation of [`crate::specialized`]) when an instantiation for
    /// the batch's band shape exists (default false: the paper's published
    /// design does not include them).
    pub prefer_specialized: Option<bool>,
    /// Host-side scheduling of the per-matrix blocks inside the simulated
    /// engine (default: serial). Results are bitwise-identical for every
    /// policy; `Some(_)` overrides the policy carried by explicit
    /// `window`/`solve`/`interleaved` parameter structs.
    pub parallel: Option<ParallelPolicy>,
    /// Storage layout (default: [`MatrixLayout::Auto`]). The layout
    /// dimension is independent of `algo`: forcing a column-major `algo`
    /// pins the layout to column-major under `Auto`, while forcing
    /// [`MatrixLayout::Interleaved`] overrides `algo` entirely.
    pub layout: MatrixLayout,
    /// Crossover-model constants for the `Auto` layout decision (default:
    /// the calibrated constants of [`CrossoverModel::default`], refreshed
    /// by `bench/src/bin/calibrate.rs`).
    pub crossover: Option<CrossoverModel>,
    /// Interleaved-kernel geometry (default: [`InterleavedParams::auto`]).
    pub interleaved: Option<InterleavedParams>,
    /// SPIKE split-solve parameters. `Some(_)` *forces* the split driver
    /// for `gbsv` calls whose band storage it supports (square, LAPACK
    /// factor layout, `kl + ku >= 1`), regardless of matrix size or
    /// pricing; `None` (the default) lets the `Auto` policy route
    /// large-`n` systems (`n >= SPIKE_MIN_N`) through the split when the
    /// crossover model predicts a win.
    pub spike: Option<SpikeParams>,
    /// Engine mode for every launch this dispatch issues (default: the
    /// caller's ambient mode, i.e. [`EngineMode::PerLaunch`] unless the
    /// caller opened an [`EngineScope`]). `Some(Resident)` routes the
    /// launches through the persistent worker pool and prices them with
    /// the warm overhead; results stay bitwise-identical either way.
    pub engine: Option<EngineMode>,
}

impl GbsvOptions {
    fn cutoff(&self) -> usize {
        self.fused_cutoff.unwrap_or(FUSED_GBSV_MAX_N)
    }

    /// Ambient engine scope for this dispatch, if the options pin a mode.
    /// Held across the kernel calls so every internally-built
    /// `LaunchConfig` (and the crossover pricing) sees one engine mode.
    fn engine_scope(&self) -> Option<EngineScope> {
        self.engine.map(EngineScope::enter)
    }

    fn parallel_policy(&self) -> ParallelPolicy {
        self.parallel.unwrap_or_default()
    }

    fn interleaved_params(
        &self,
        dev: &DeviceSpec,
        l: &BandLayout,
        nrhs: usize,
    ) -> InterleavedParams {
        let mut p = self
            .interleaved
            .unwrap_or_else(|| InterleavedParams::auto(dev, l, nrhs));
        if let Some(pol) = self.parallel {
            p = p.with_parallel(pol);
        }
        p
    }
}

/// Decide the storage layout for a factor (`nrhs == 0`) or factor+solve
/// (`nrhs > 0`) call.
///
/// The column-major side is priced by mirroring the §5.4 algorithm choice
/// exactly (fused below the cutoff, window otherwise); when no column-major
/// factorization fits shared memory the price is
/// [`predict_reference_floor`] — a *lower bound* on the fork–join fallback
/// — so the interleaved layout only takes over when it certainly beats the
/// column path. A blocked solve that cannot be priced is likewise folded in
/// as a per-column-launch floor. Both floors bias the decision toward
/// column-major, never toward a slower interleaved pick.
fn choose_layout<S: Scalar>(
    dev: &DeviceSpec,
    l: &BandLayout,
    batch: usize,
    nrhs: usize,
    opts: &GbsvOptions,
    fused_params: &FusedParams,
    window_params: &WindowParams,
) -> MatrixLayout {
    match opts.layout {
        MatrixLayout::ColumnMajor => return MatrixLayout::ColumnMajor,
        MatrixLayout::Interleaved => return MatrixLayout::Interleaved,
        MatrixLayout::Auto => {}
    }
    // Forcing a column-major algorithm pins the layout; the interleaved
    // kernels also require LAPACK factor storage.
    if opts.algo != FactorAlgo::Auto || l.row_offset != l.kv() || batch == 0 {
        return MatrixLayout::ColumnMajor;
    }
    let iparams = opts.interleaved_params(dev, l, nrhs);
    let model = opts.crossover.unwrap_or_default();
    let Some(inter) = model.interleaved_time::<S>(dev, l, batch, nrhs, &iparams) else {
        return MatrixLayout::ColumnMajor;
    };
    let fused_cfg = LaunchConfig::new(
        fused_params.threads,
        fused_smem_bytes::<S>(l.ldab, l.n) as u32,
    )
    .with_precision(crate::flop_class::<S>());
    let window_cfg = LaunchConfig::new(
        window_params.threads,
        window_smem_bytes::<S>(l, window_params.nb) as u32,
    )
    .with_precision(crate::flop_class::<S>());
    let fused_fits = validate(dev, &fused_cfg).is_ok();
    let window_fits = validate(dev, &window_cfg).is_ok();
    let factor_time = if l.n.max(l.m) <= opts.cutoff() && fused_fits {
        predict_time(
            dev,
            &fused_cfg,
            batch,
            &predict_fused::<S>(l, fused_params.threads),
        )
    } else if window_fits {
        predict_time(
            dev,
            &window_cfg,
            batch,
            &predict_window::<S>(l, window_params.nb, window_params.threads),
        )
    } else if fused_fits {
        predict_time(
            dev,
            &fused_cfg,
            batch,
            &predict_fused::<S>(l, fused_params.threads),
        )
    } else {
        Some(predict_reference_floor::<S>(dev, l, batch))
    };
    let Some(mut column) = factor_time else {
        return MatrixLayout::ColumnMajor;
    };
    if nrhs > 0 {
        let sp = opts.solve.unwrap_or_else(|| SolveParams::auto(dev, l.kl));
        let smem = crate::gbtrs_blocked::forward_smem_bytes::<S>(l, sp.nb, nrhs).max(
            crate::gbtrs_blocked::backward_smem_bytes::<S>(l, sp.nb, nrhs),
        );
        let scfg =
            LaunchConfig::new(sp.threads, smem as u32).with_precision(crate::flop_class::<S>());
        match predict_time(
            dev,
            &scfg,
            batch,
            &predict_gbtrs_blocked::<S>(l, sp.nb, nrhs, sp.threads),
        ) {
            Some(t) => column += t,
            // Blocked solve cannot launch: the column path falls back to
            // the per-column solve kernels (~2n launches). Fold in their
            // launch-overhead floor plus a once-through pass over factors
            // and RHS.
            None => {
                let bytes = ((l.len() + 2 * l.n * nrhs) * batch * S::BYTES) as f64;
                column += SimTime(2.0 * l.n as f64 * dev.launch_overhead_s + bytes / dev.mem_bw);
            }
        }
    }
    if model.interleaved_wins(inter, column) {
        MatrixLayout::Interleaved
    } else {
        MatrixLayout::ColumnMajor
    }
}

/// Minimum matrix order for the SPIKE split regime under `Auto` routing.
/// Below this the per-matrix parallelism a split exposes cannot amortize
/// its extra launches (extract, combine, residual guard); an explicit
/// [`GbsvOptions::spike`] bypasses the floor.
pub const SPIKE_MIN_N: usize = 4096;

/// Decide whether a `gbsv` call routes through the SPIKE split driver,
/// returning the parameters to run it with. Structural requirements
/// (square LAPACK factor storage, a nonempty band) gate both the forced
/// and the `Auto` path; under `Auto` the split must additionally clear
/// the size floor and beat the unsplit window + blocked-solve price by
/// the [`CrossoverModel::spike_wins`] margin.
fn spike_choice<S: Scalar>(
    dev: &DeviceSpec,
    l: &BandLayout,
    batch: usize,
    nrhs: usize,
    opts: &GbsvOptions,
) -> Option<SpikeParams> {
    if batch == 0 || nrhs == 0 {
        return None;
    }
    // Structural requirements of the split driver.
    if l.m != l.n || l.row_offset != l.kv() || l.kl + l.ku == 0 {
        return None;
    }
    let minimal = BandLayout::factor(l.n, l.n, l.kl, l.ku).ok()?;
    if l.ldab != minimal.ldab {
        return None;
    }
    // A forced column-major algorithm or interleaved layout overrides
    // the split regime entirely.
    if opts.algo != FactorAlgo::Auto || opts.layout == MatrixLayout::Interleaved {
        return None;
    }
    let mut params = opts.spike.unwrap_or_else(|| SpikeParams::auto(dev, l.kl));
    if let Some(p) = opts.parallel {
        params = params.with_parallel(p);
    }
    if opts.spike.is_some() {
        return Some(params);
    }
    if l.n < SPIKE_MIN_N {
        return None;
    }
    let model = opts.crossover.unwrap_or_default();
    let spike = model.spike_time::<S>(dev, l, batch, nrhs, &params)?;
    // Unsplit column price: window factorization + blocked solve (large
    // `n` is far above the fused cutoff). If either side cannot be
    // priced, stay on the proven unsplit path.
    let wp = opts.window.unwrap_or_else(|| WindowParams::auto(dev, l.kl));
    let wcfg = LaunchConfig::new(wp.threads, window_smem_bytes::<S>(l, wp.nb) as u32)
        .with_precision(crate::flop_class::<S>());
    let mut column = predict_time(
        dev,
        &wcfg,
        batch,
        &predict_window::<S>(l, wp.nb, wp.threads),
    )?;
    let sp = opts.solve.unwrap_or_else(|| SolveParams::auto(dev, l.kl));
    let smem = crate::gbtrs_blocked::forward_smem_bytes::<S>(l, sp.nb, nrhs).max(
        crate::gbtrs_blocked::backward_smem_bytes::<S>(l, sp.nb, nrhs),
    );
    let scfg = LaunchConfig::new(sp.threads, smem as u32).with_precision(crate::flop_class::<S>());
    column += predict_time(
        dev,
        &scfg,
        batch,
        &predict_gbtrs_blocked::<S>(l, sp.nb, nrhs, sp.threads),
    )?;
    if model.spike_wins(spike, column) {
        Some(params)
    } else {
        None
    }
}

/// Outcome of a batched routine: which kernel ran, what it cost, and which
/// lanes (if any) hit a zero pivot.
#[derive(Debug, Clone)]
#[must_use = "carries per-lane singularity and modeled cost"]
pub struct BatchReport {
    /// Kernel design the dispatcher selected.
    pub algo: ChosenAlgo,
    /// Total modeled time (all launches).
    pub time: SimTime,
    /// Number of kernel launches issued.
    pub launches: usize,
    /// Problem ids whose factorization hit a zero pivot, ascending — the
    /// same lanes `info` flags, surfaced on the report so callers get
    /// per-problem granularity without re-scanning the `info` array. A
    /// singular lane is *not* a batch failure: its batchmates factor and
    /// solve normally (every kernel family masks singular lanes), so the
    /// routine still returns `Ok`. Solve-only entries
    /// ([`dgbtrs_batch`]) report the lanes the caller's `info` already
    /// flagged as skipped, or empty when all factors were healthy.
    pub singular: Vec<usize>,
}

impl BatchReport {
    /// True when every lane factored without a zero pivot.
    #[must_use]
    pub fn all_lanes_ok(&self) -> bool {
        self.singular.is_empty()
    }

    /// Number of lanes flagged singular.
    #[must_use]
    pub fn singular_lanes(&self) -> usize {
        self.singular.len()
    }
}

/// Batched band LU factorization (`dgbtrf_batch`, paper Section 4).
pub fn dgbtrf_batch(
    dev: &DeviceSpec,
    a: &mut BandBatch,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    gbtrf_batch::<f64>(dev, a, piv, info, opts)
}

/// Single-precision batched band LU factorization (`sgbtrf_batch`): the
/// same §5.4 selection logic instantiated over `f32` — halved shared
/// footprints shift every fit test and crossover.
pub fn sgbtrf_batch(
    dev: &DeviceSpec,
    a: &mut BandBatch<f32>,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    gbtrf_batch::<f32>(dev, a, piv, info, opts)
}

/// Precision-generic batched band LU factorization; `dgbtrf_batch` /
/// `sgbtrf_batch` are its two instantiations.
pub fn gbtrf_batch<S: Scalar>(
    dev: &DeviceSpec,
    a: &mut BandBatch<S>,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    let _engine = opts.engine_scope();
    let l = a.layout();
    let mut fused_params = opts
        .fused_threads
        .map(|threads| FusedParams {
            threads,
            ..Default::default()
        })
        .unwrap_or_else(|| FusedParams::auto(dev, l.kl));
    let mut window_params = opts.window.unwrap_or_else(|| WindowParams::auto(dev, l.kl));
    if let Some(p) = opts.parallel {
        fused_params = fused_params.with_parallel(p);
        window_params = window_params.with_parallel(p);
    }

    // Opt-in: the specialized register-file kernels (paper §8.1). Their
    // shape registry is instantiated for `f64` only, so other precisions
    // fall through to the generic selection below.
    if opts.prefer_specialized.unwrap_or(false) {
        if let Some(a64) = (a as &mut dyn std::any::Any).downcast_mut::<BandBatch<f64>>() {
            if let Some(res) =
                crate::specialized::specialized_gbtrf(dev, a64, piv, info, fused_params.threads)
            {
                let rep = res?;
                return Ok(BatchReport {
                    algo: ChosenAlgo::Specialized,
                    time: rep.time,
                    launches: 1,
                    singular: info.failures(),
                });
            }
        }
    }

    // Layout dimension: pack, factor batch-major, unpack the factors.
    let layout = choose_layout::<S>(dev, &l, a.batch(), 0, opts, &fused_params, &window_params);
    if layout == MatrixLayout::Interleaved {
        let iparams = opts.interleaved_params(dev, &l, 0);
        let (mut ia, pack) = interleave_launch(dev, a, iparams)?;
        let f = gbtrf_batch_interleaved(dev, &mut ia, piv, info, iparams)?;
        let (fa, unpack) = deinterleave_launch(dev, &ia, iparams)?;
        a.data_mut().copy_from_slice(fa.data());
        return Ok(BatchReport {
            algo: ChosenAlgo::Interleaved,
            time: pack.time + f.time + unpack.time,
            launches: 3,
            singular: info.failures(),
        });
    }

    let algo = match opts.algo {
        FactorAlgo::Fused => ChosenAlgo::Fused,
        FactorAlgo::Window => ChosenAlgo::Window,
        FactorAlgo::Reference => ChosenAlgo::Reference,
        FactorAlgo::Auto => {
            let fused_fits = validate(
                dev,
                &LaunchConfig::new(
                    fused_params.threads,
                    fused_smem_bytes::<S>(l.ldab, l.n) as u32,
                ),
            )
            .is_ok();
            let window_fits = validate(
                dev,
                &LaunchConfig::new(
                    window_params.threads,
                    window_smem_bytes::<S>(&l, window_params.nb) as u32,
                ),
            )
            .is_ok();
            if l.n.max(l.m) <= opts.cutoff() && fused_fits {
                ChosenAlgo::Fused
            } else if window_fits {
                ChosenAlgo::Window
            } else if fused_fits {
                ChosenAlgo::Fused
            } else {
                ChosenAlgo::Reference
            }
        }
    };

    match algo {
        ChosenAlgo::Fused => {
            let rep = gbtrf_batch_fused(dev, a, piv, info, fused_params)?;
            Ok(BatchReport {
                algo,
                time: rep.time,
                launches: 1,
                singular: info.failures(),
            })
        }
        ChosenAlgo::Window => {
            let rep = gbtrf_batch_window(dev, a, piv, info, window_params)?;
            Ok(BatchReport {
                algo,
                time: rep.time,
                launches: 1,
                singular: info.failures(),
            })
        }
        ChosenAlgo::Reference
        | ChosenAlgo::FusedGbsv
        | ChosenAlgo::Specialized
        | ChosenAlgo::Interleaved
        | ChosenAlgo::Spike => {
            let rep = gbtrf_batch_reference(dev, a, piv, info, opts.parallel_policy())?;
            Ok(BatchReport {
                algo: ChosenAlgo::Reference,
                time: rep.time,
                launches: rep.launches,
                singular: info.failures(),
            })
        }
    }
}

/// Batched band triangular solve (`dgbtrs_batch`, paper Section 4), with
/// the interface's `transpose_t transA` argument. Uses the blocked
/// kernels, falling back to the column-wise reference when the RHS cache
/// cannot fit in shared memory (no-transpose only; the transpose path's
/// cache is never larger).
pub fn dgbtrs_batch(
    dev: &DeviceSpec,
    trans: Transpose,
    l: &BandLayout,
    factors: &[f64],
    piv: &PivotBatch,
    rhs: &mut RhsBatch,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    gbtrs_batch::<f64>(dev, trans, l, factors, piv, rhs, opts)
}

/// Single-precision batched band triangular solve (`sgbtrs_batch`).
pub fn sgbtrs_batch(
    dev: &DeviceSpec,
    trans: Transpose,
    l: &BandLayout,
    factors: &[f32],
    piv: &PivotBatch,
    rhs: &mut RhsBatch<f32>,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    gbtrs_batch::<f32>(dev, trans, l, factors, piv, rhs, opts)
}

/// Precision-generic batched band triangular solve; `dgbtrs_batch` /
/// `sgbtrs_batch` are its two instantiations.
pub fn gbtrs_batch<S: Scalar>(
    dev: &DeviceSpec,
    trans: Transpose,
    l: &BandLayout,
    factors: &[S],
    piv: &PivotBatch,
    rhs: &mut RhsBatch<S>,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    let _engine = opts.engine_scope();
    let mut params = opts.solve.unwrap_or_else(|| SolveParams::auto(dev, l.kl));
    if let Some(p) = opts.parallel {
        params = params.with_parallel(p);
    }
    match trans {
        Transpose::No => match gbtrs_batch_blocked(dev, l, factors, piv, rhs, params) {
            Ok(rep) => {
                let launches = 1 + rep.forward.is_some() as usize;
                Ok(BatchReport {
                    algo: ChosenAlgo::Window,
                    time: rep.time(),
                    launches,
                    singular: Vec::new(),
                })
            }
            Err(LaunchError::SharedMemExceeded { .. }) => {
                let rep = gbtrs_batch_cols(dev, l, factors, piv, rhs, opts.parallel_policy())?;
                Ok(BatchReport {
                    algo: ChosenAlgo::Reference,
                    time: rep.time,
                    launches: rep.launches,
                    singular: Vec::new(),
                })
            }
            Err(e) => Err(e),
        },
        Transpose::Yes => {
            let rep = gbtrs_batch_blocked_trans(dev, l, factors, piv, rhs, params)?;
            let launches = 1 + rep.lt.is_some() as usize;
            Ok(BatchReport {
                algo: ChosenAlgo::Window,
                time: rep.time(),
                launches,
                singular: Vec::new(),
            })
        }
    }
}

/// [`gbtrs_batch_lanes`] for `f64`.
pub fn dgbtrs_batch_lanes(
    dev: &DeviceSpec,
    trans: Transpose,
    l: &BandLayout,
    lanes: &[(&[f64], &[i32])],
    rhs: &mut RhsBatch,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    gbtrs_batch_lanes::<f64>(dev, trans, l, lanes, rhs, opts)
}

/// [`gbtrs_batch_lanes`] for `f32`.
pub fn sgbtrs_batch_lanes(
    dev: &DeviceSpec,
    trans: Transpose,
    l: &BandLayout,
    lanes: &[(&[f32], &[i32])],
    rhs: &mut RhsBatch<f32>,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    gbtrs_batch_lanes::<f32>(dev, trans, l, lanes, rhs, opts)
}

/// Batched band triangular solve over **retained per-lane factors** —
/// the serving layer's factorization-reuse hot path.
///
/// Each lane arrives as `(factored band, 0-based pivots)` harvested from
/// an earlier `gbtrf_batch` run (e.g. out of a serve-layer factor
/// cache). The lanes are gathered into one contiguous batch and handed
/// to the exact same blocked/`gbtrs_cols`/`trans` dispatch as
/// [`gbtrs_batch`], so a cached-factor solve is bitwise-identical to the
/// solve that would have followed a fresh factorization of the same
/// operators. The gather is a host-side assembly pass, unpriced like
/// every other host-side batch assembly in the workspace — the returned
/// time is the device solve.
pub fn gbtrs_batch_lanes<S: Scalar>(
    dev: &DeviceSpec,
    trans: Transpose,
    l: &BandLayout,
    lanes: &[(&[S], &[i32])],
    rhs: &mut RhsBatch<S>,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    let batch = lanes.len();
    assert_eq!(batch, rhs.batch(), "one RHS block per retained lane");
    let stride = l.len();
    let mut factors = vec![S::ZERO; stride * batch];
    let mut piv = PivotBatch::new(batch, l.m, l.n);
    let npiv = piv.per_matrix();
    for (k, (ab, ipiv)) in lanes.iter().enumerate() {
        assert_eq!(ab.len(), stride, "lane {k}: factored band length");
        assert_eq!(ipiv.len(), npiv, "lane {k}: pivot length");
        factors[k * stride..(k + 1) * stride].copy_from_slice(ab);
        piv.pivots_mut(k).copy_from_slice(ipiv);
    }
    gbtrs_batch::<S>(dev, trans, l, &factors, &piv, rhs, opts)
}

/// Batched band factorize-and-solve (`dgbsv_batch`, paper Section 4 and
/// Section 7): a single fused kernel for small single-RHS systems,
/// otherwise `dgbtrf_batch` followed by `dgbtrs_batch`.
pub fn dgbsv_batch(
    dev: &DeviceSpec,
    a: &mut BandBatch,
    piv: &mut PivotBatch,
    rhs: &mut RhsBatch,
    info: &mut InfoArray,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    gbsv_batch::<f64>(dev, a, piv, rhs, info, opts)
}

/// Single-precision batched band factorize-and-solve (`sgbsv_batch`): the
/// f32 working set halves every shared-memory footprint, so the fused and
/// window kernels stay resident to roughly twice the bandwidth (§8).
pub fn sgbsv_batch(
    dev: &DeviceSpec,
    a: &mut BandBatch<f32>,
    piv: &mut PivotBatch,
    rhs: &mut RhsBatch<f32>,
    info: &mut InfoArray,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    gbsv_batch::<f32>(dev, a, piv, rhs, info, opts)
}

/// Precision-generic batched band factorize-and-solve; `dgbsv_batch` /
/// `sgbsv_batch` are its two instantiations.
pub fn gbsv_batch<S: Scalar>(
    dev: &DeviceSpec,
    a: &mut BandBatch<S>,
    piv: &mut PivotBatch,
    rhs: &mut RhsBatch<S>,
    info: &mut InfoArray,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    let _engine = opts.engine_scope();
    let l = a.layout();
    assert_eq!(l.m, l.n, "dgbsv_batch requires square systems");
    let allow_fused = opts.allow_fused_gbsv.unwrap_or(true);
    let threads = opts
        .fused_threads
        .unwrap_or_else(|| FusedParams::auto(dev, l.kl).threads);
    let fused_ok = allow_fused
        && l.n <= opts.cutoff()
        && rhs.nrhs() == 1
        && validate(
            dev,
            &LaunchConfig::new(threads, gbsv_smem_bytes::<S>(&l, rhs.nrhs()) as u32),
        )
        .is_ok();
    if fused_ok {
        // The fused kernel eliminates the RHS in lockstep with the
        // factorization, so a lane that hits a zero pivot mid-sweep has
        // already scrambled part of its RHS. Snapshot the (cheap,
        // host-side) RHS payload and restore failed lanes so the
        // dispatcher's contract is uniform across every path: a singular
        // lane is flagged in `info`/`singular` and its RHS is returned
        // untouched.
        let saved = rhs.data().to_vec();
        let rep = gbsv_batch_fused(dev, a, piv, rhs, info, threads, opts.parallel_policy())?;
        if !info.all_ok() {
            let stride = rhs.block_stride();
            for id in info.failures() {
                rhs.block_mut(id)
                    .copy_from_slice(&saved[id * stride..(id + 1) * stride]);
            }
        }
        return Ok(BatchReport {
            algo: ChosenAlgo::FusedGbsv,
            time: rep.time,
            launches: 1,
            singular: info.failures(),
        });
    }

    // Third regime: SPIKE split for large single systems (forced via
    // `opts.spike`, or priced in under `Auto` for `n >= SPIKE_MIN_N`).
    // The split driver handles singular blocks itself (per-lane unsplit
    // fallback) and leaves failed lanes' RHS untouched.
    if let Some(params) = spike_choice::<S>(dev, &l, a.batch(), rhs.nrhs(), opts) {
        let rep = spike_gbsv_batch(dev, a, piv, rhs, info, params)?;
        return Ok(BatchReport {
            algo: ChosenAlgo::Spike,
            time: rep.time,
            launches: rep.launches,
            singular: info.failures(),
        });
    }

    // Layout dimension, priced over the whole factor+solve call. The
    // native interleaved solve masks singular lanes itself (their RHS
    // blocks stay untouched), so no save/restore pass is needed.
    let mut fused_params = opts
        .fused_threads
        .map(|threads| FusedParams {
            threads,
            ..Default::default()
        })
        .unwrap_or_else(|| FusedParams::auto(dev, l.kl));
    let mut window_params = opts.window.unwrap_or_else(|| WindowParams::auto(dev, l.kl));
    if let Some(p) = opts.parallel {
        fused_params = fused_params.with_parallel(p);
        window_params = window_params.with_parallel(p);
    }
    let layout = choose_layout::<S>(
        dev,
        &l,
        a.batch(),
        rhs.nrhs(),
        opts,
        &fused_params,
        &window_params,
    );
    if layout == MatrixLayout::Interleaved {
        let iparams = opts.interleaved_params(dev, &l, rhs.nrhs());
        let (mut ia, pack) = interleave_launch(dev, a, iparams)?;
        let f = gbtrf_batch_interleaved(dev, &mut ia, piv, info, iparams)?;
        let s = gbtrs_batch_interleaved(dev, &ia, piv, rhs, info, iparams)?;
        let (fa, unpack) = deinterleave_launch(dev, &ia, iparams)?;
        a.data_mut().copy_from_slice(fa.data());
        return Ok(BatchReport {
            algo: ChosenAlgo::Interleaved,
            time: pack.time + f.time + s.time + unpack.time,
            launches: 4,
            singular: info.failures(),
        });
    }
    // The factor call below re-runs the layout decision with nrhs = 0;
    // pin it to the choice made here so factor and solve stay one plan.
    let opts = &GbsvOptions {
        layout: MatrixLayout::ColumnMajor,
        ..*opts
    };
    let f = gbtrf_batch::<S>(dev, a, piv, info, opts)?;
    if !info.all_ok() {
        // LAPACK semantics: no solve when any factorization is singular?
        // DGBSV is per-system; we solve only the healthy systems. The
        // triangular kernels would divide by zero on singular ones, so we
        // filter them out by solving everything and restoring the RHS of
        // failed systems afterwards.
        let saved: Vec<(usize, Vec<S>)> = info
            .failures()
            .into_iter()
            .map(|id| (id, rhs.block(id).to_vec()))
            .collect();
        let s = gbtrs_batch_skip_singular::<S>(dev, &l, a.data(), piv, rhs, info, opts)?;
        for (id, data) in saved {
            rhs.block_mut(id).copy_from_slice(&data);
        }
        return Ok(BatchReport {
            algo: f.algo,
            time: f.time + s.time,
            launches: f.launches + s.launches,
            singular: info.failures(),
        });
    }
    let s = gbtrs_batch::<S>(dev, Transpose::No, &l, a.data(), piv, rhs, opts)?;
    Ok(BatchReport {
        algo: f.algo,
        time: f.time + s.time,
        launches: f.launches + s.launches,
        singular: Vec::new(),
    })
}

/// Solve pass that tolerates singular factorizations by replacing their
/// divisions with no-ops (the RHS of failed systems is restored by the
/// caller anyway). Implementation: temporarily patch zero diagonals to 1.
fn gbtrs_batch_skip_singular<S: Scalar>(
    dev: &DeviceSpec,
    l: &BandLayout,
    factors: &[S],
    piv: &PivotBatch,
    rhs: &mut RhsBatch<S>,
    info: &InfoArray,
    opts: &GbsvOptions,
) -> Result<BatchReport, LaunchError> {
    let mut patched = factors.to_vec();
    let stride = l.len();
    let kv = l.kv();
    for id in info.failures() {
        let ab = &mut patched[id * stride..(id + 1) * stride];
        for j in 0..l.n {
            if ab[l.idx(kv, j)] == S::ZERO {
                ab[l.idx(kv, j)] = S::ONE;
            }
        }
    }
    gbtrs_batch::<S>(dev, Transpose::No, l, &patched, piv, rhs, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::residual::backward_error;

    fn random_system(
        batch: usize,
        n: usize,
        kl: usize,
        ku: usize,
        nrhs: usize,
    ) -> (BandBatch, RhsBatch) {
        let mut v = 0.53f64;
        let a = BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 2.6 + 0.077 + id as f64 * 1e-4).fract();
                    m.set(i, j, v - 0.5 + if i == j { 2.0 } else { 0.0 });
                }
            }
        })
        .unwrap();
        let b = RhsBatch::from_fn(batch, n, nrhs, |id, i, c| {
            ((id + c * 3 + i) as f64 * 0.41).sin()
        })
        .unwrap();
        (a, b)
    }

    fn solve_and_check(
        n: usize,
        kl: usize,
        ku: usize,
        nrhs: usize,
        opts: &GbsvOptions,
    ) -> ChosenAlgo {
        let dev = DeviceSpec::h100_pcie();
        let batch = 5;
        let (mut a, mut b) = random_system(batch, n, kl, ku, nrhs);
        let orig_a = a.clone();
        let orig_b = b.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, opts).unwrap();
        assert!(info.all_ok());
        for id in 0..batch {
            for c in 0..nrhs {
                let x = &b.block(id)[c * n..c * n + n];
                let rhs0 = &orig_b.block(id)[c * n..c * n + n];
                let berr = backward_error(orig_a.matrix(id), x, rhs0);
                // Strict on purpose: these diagonally-dominant systems are
                // well-conditioned and the kernels are bitwise-equal to
                // sequential gbtf2/gbtrs, so 1e-11 has margin; loosen only
                // if the test matrices change.
                assert!(
                    berr < 1e-11,
                    "n={n} kl={kl} ku={ku} id={id} c={c}: berr {berr:.2e}"
                );
            }
        }
        rep.algo
    }

    #[test]
    fn auto_uses_fused_gbsv_for_small_single_rhs() {
        let algo = solve_and_check(32, 2, 3, 1, &GbsvOptions::default());
        assert_eq!(algo, ChosenAlgo::FusedGbsv);
    }

    #[test]
    fn auto_uses_window_for_large_matrices() {
        // Pin the layout: this test exercises the §5.4 *algorithm* choice
        // among the column-major kernels (at batch = 5 the layout
        // dimension would pick interleaved).
        let opts = GbsvOptions {
            layout: MatrixLayout::ColumnMajor,
            ..Default::default()
        };
        let algo = solve_and_check(200, 2, 3, 1, &opts);
        assert_eq!(algo, ChosenAlgo::Window);
    }

    #[test]
    fn multi_rhs_uses_separate_factor_and_solve() {
        let algo = solve_and_check(32, 2, 3, 4, &GbsvOptions::default());
        assert_ne!(algo, ChosenAlgo::FusedGbsv);
    }

    #[test]
    fn forcing_algorithms_works() {
        for (force, expect) in [
            (FactorAlgo::Fused, ChosenAlgo::Fused),
            (FactorAlgo::Window, ChosenAlgo::Window),
            (FactorAlgo::Reference, ChosenAlgo::Reference),
        ] {
            let opts = GbsvOptions {
                algo: force,
                allow_fused_gbsv: Some(false),
                ..Default::default()
            };
            let algo = solve_and_check(48, 2, 3, 1, &opts);
            assert_eq!(algo, expect);
        }
    }

    #[test]
    fn forced_spike_routes_through_split_driver() {
        // Explicit `spike` bypasses the size floor and pricing; the split
        // driver must still deliver the dispatcher's accuracy contract.
        let opts = GbsvOptions {
            spike: Some(crate::spike::SpikeParams::default().with_parts(4)),
            ..Default::default()
        };
        let algo = solve_and_check(120, 2, 3, 2, &opts);
        assert_eq!(algo, ChosenAlgo::Spike);
    }

    #[test]
    fn auto_routes_large_systems_through_spike() {
        let dev = DeviceSpec::h100_pcie();
        let batch = 2;
        let (n, kl, ku, nrhs) = (4096, 8, 8, 1);
        let (mut a, mut b) = random_system(batch, n, kl, ku, nrhs);
        let orig_a = a.clone();
        let orig_b = b.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let opts = GbsvOptions::default();
        let rep = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &opts).unwrap();
        assert_eq!(rep.algo, ChosenAlgo::Spike);
        assert!(info.all_ok());
        for id in 0..batch {
            let x = &b.block(id)[..n];
            let berr = backward_error(orig_a.matrix(id), x, &orig_b.block(id)[..n]);
            assert!(berr < 1e-11, "id={id}: berr {berr:.2e}");
        }
    }

    #[test]
    fn auto_stays_unsplit_below_spike_floor() {
        let opts = GbsvOptions {
            layout: MatrixLayout::ColumnMajor,
            ..Default::default()
        };
        let algo = solve_and_check(1024, 4, 4, 1, &opts);
        assert_eq!(algo, ChosenAlgo::Window);
    }

    #[test]
    fn all_algorithms_agree_bitwise() {
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku, batch) = (40usize, 3usize, 2usize, 3usize);
        let (a0, _) = random_system(batch, n, kl, ku, 1);
        let mut results = Vec::new();
        for force in [FactorAlgo::Fused, FactorAlgo::Window, FactorAlgo::Reference] {
            let mut a = a0.clone();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let opts = GbsvOptions {
                algo: force,
                ..Default::default()
            };
            let _ = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &opts).unwrap();
            results.push((a, piv));
        }
        for k in 1..results.len() {
            assert_eq!(results[0].0.data(), results[k].0.data(), "factors differ");
            assert_eq!(results[0].1, results[k].1, "pivots differ");
        }
    }

    #[test]
    fn mi250x_falls_back_to_window_when_fused_cannot_fit() {
        // n = 2000 with (2, 3): fused needs 2000 * 8 * 8 B = 125 KB — over
        // the MI250x 64 KB LDS, but the window still runs.
        let dev = DeviceSpec::mi250x_gcd();
        let (n, kl, ku, batch) = (2000usize, 2usize, 3usize, 2usize);
        let (mut a, _) = random_system(batch, n, kl, ku, 1);
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let opts = GbsvOptions {
            layout: MatrixLayout::ColumnMajor,
            ..Default::default()
        };
        let rep = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &opts).unwrap();
        assert_eq!(rep.algo, ChosenAlgo::Window);
        assert!(info.all_ok());
    }

    #[test]
    fn reference_picked_when_nothing_fits() {
        // A pathological band so wide no window fits the 64 KB LDS:
        // kl = ku = 500 -> ldab = 1501, window cols >= kv + 2 = 1002 ->
        // far beyond LDS. Auto must fall back to the reference kernels.
        let dev = DeviceSpec::mi250x_gcd();
        let (n, kl, ku) = (1200usize, 500usize, 500usize);
        let mut v = 0.3f64;
        let mut a = BandBatch::from_fn(2, n, n, kl, ku, |_, m| {
            // Sparse fill for speed: diagonal plus a few bands.
            for j in 0..n {
                v = (v * 1.1 + 0.21).fract();
                m.set(j, j, 3.0 + v);
                if j + 200 < n {
                    m.set(j + 200, j, v - 0.5);
                }
                if j >= 300 {
                    m.set(j - 300, j, v - 0.25);
                }
            }
        })
        .unwrap();
        let mut piv = PivotBatch::new(2, n, n);
        let mut info = InfoArray::new(2);
        // Pin the layout: with `Auto` the streaming interleaved kernels
        // take this regime over (see
        // `auto_layout_picks_interleaved_when_nothing_column_major_fits`).
        let opts = GbsvOptions {
            layout: MatrixLayout::ColumnMajor,
            ..Default::default()
        };
        let rep = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &opts).unwrap();
        assert_eq!(rep.algo, ChosenAlgo::Reference);
        assert!(info.all_ok());
    }

    #[test]
    fn forced_interleaved_layout_matches_column_major_bitwise() {
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku, batch, nrhs) = (48usize, 3usize, 2usize, 6usize, 2usize);
        let (a0, b0) = random_system(batch, n, kl, ku, nrhs);

        let mut a_col = a0.clone();
        let mut b_col = b0.clone();
        let mut piv_col = PivotBatch::new(batch, n, n);
        let mut info_col = InfoArray::new(batch);
        let col_opts = GbsvOptions {
            layout: MatrixLayout::ColumnMajor,
            allow_fused_gbsv: Some(false),
            ..Default::default()
        };
        let _ = dgbsv_batch(
            &dev,
            &mut a_col,
            &mut piv_col,
            &mut b_col,
            &mut info_col,
            &col_opts,
        )
        .unwrap();

        let mut a_int = a0.clone();
        let mut b_int = b0.clone();
        let mut piv_int = PivotBatch::new(batch, n, n);
        let mut info_int = InfoArray::new(batch);
        let int_opts = GbsvOptions {
            layout: MatrixLayout::Interleaved,
            allow_fused_gbsv: Some(false),
            ..Default::default()
        };
        let rep = dgbsv_batch(
            &dev,
            &mut a_int,
            &mut piv_int,
            &mut b_int,
            &mut info_int,
            &int_opts,
        )
        .unwrap();
        assert_eq!(rep.algo, ChosenAlgo::Interleaved);
        assert_eq!(rep.launches, 4);
        assert_eq!(a_col.data(), a_int.data(), "factors differ across layouts");
        assert_eq!(piv_col, piv_int, "pivots differ across layouts");
        assert_eq!(
            b_col.data(),
            b_int.data(),
            "solutions differ across layouts"
        );
        assert!(info_int.all_ok());

        // Factor-only entry point round-trips the same way.
        let mut a_f = a0.clone();
        let mut piv_f = PivotBatch::new(batch, n, n);
        let mut info_f = InfoArray::new(batch);
        let rep = dgbtrf_batch(&dev, &mut a_f, &mut piv_f, &mut info_f, &int_opts).unwrap();
        assert_eq!(rep.algo, ChosenAlgo::Interleaved);
        assert_eq!(rep.launches, 3);
        assert_eq!(a_col.data(), a_f.data());
        assert_eq!(piv_col, piv_f);
    }

    #[test]
    fn auto_layout_picks_interleaved_when_nothing_column_major_fits() {
        // kl = ku = 40 at n = 96 on the MI250x: the fused kernel needs
        // 93 KB and a one-column window 79 KB — both over the 64 KB LDS,
        // so the column path is the 2n+1-launch reference fallback. At a
        // small batch the streaming interleaved kernels win despite the
        // pack/unpack conversion.
        let dev = DeviceSpec::mi250x_gcd();
        let (n, kl, ku, batch) = (96usize, 40usize, 40usize, 8usize);
        let (a0, _) = random_system(batch, n, kl, ku, 1);

        let mut a = a0.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &GbsvOptions::default()).unwrap();
        assert_eq!(rep.algo, ChosenAlgo::Interleaved);
        assert!(info.all_ok());

        // Bitwise-identical to the reference path it displaced.
        let mut a_ref = a0.clone();
        let mut piv_ref = PivotBatch::new(batch, n, n);
        let mut info_ref = InfoArray::new(batch);
        let opts = GbsvOptions {
            algo: FactorAlgo::Reference,
            ..Default::default()
        };
        let _ = dgbtrf_batch(&dev, &mut a_ref, &mut piv_ref, &mut info_ref, &opts).unwrap();
        assert_eq!(a.data(), a_ref.data());
        assert_eq!(piv, piv_ref);
    }

    #[test]
    fn auto_layout_never_picks_a_much_slower_layout() {
        // Acceptance gate for the crossover model: on a grid spanning all
        // three regimes, run both forced layouts and the auto decision;
        // the auto pick's executed time must be within 10% of the faster
        // forced side.
        let grid: &[(DeviceSpec, usize, usize, usize, usize)] = &[
            (DeviceSpec::h100_pcie(), 24, 1, 1, 64),
            (DeviceSpec::h100_pcie(), 96, 2, 3, 40),
            (DeviceSpec::h100_pcie(), 200, 6, 6, 16),
            (DeviceSpec::mi250x_gcd(), 96, 40, 40, 8),
            (DeviceSpec::mi250x_gcd(), 64, 3, 2, 48),
        ];
        for (dev, n, kl, ku, batch) in grid {
            let (a0, _) = random_system(*batch, *n, *kl, *ku, 1);
            let mut times = Vec::new();
            for layout in [
                MatrixLayout::Auto,
                MatrixLayout::ColumnMajor,
                MatrixLayout::Interleaved,
            ] {
                let mut a = a0.clone();
                let mut piv = PivotBatch::new(*batch, *n, *n);
                let mut info = InfoArray::new(*batch);
                let opts = GbsvOptions {
                    layout,
                    ..Default::default()
                };
                let rep = dgbtrf_batch(dev, &mut a, &mut piv, &mut info, &opts).unwrap();
                times.push(rep.time.secs());
            }
            let (auto, best) = (times[0], times[1].min(times[2]));
            assert!(
                auto <= best * 1.10,
                "n={n} kl={kl} ku={ku} batch={batch}: auto layout {:.1}us vs best forced {:.1}us",
                auto * 1e6,
                best * 1e6
            );
        }
    }

    #[test]
    fn resident_engine_option_is_bitwise_identical_and_prices_warm_launches() {
        let dev = DeviceSpec::h100_pcie();
        let (n, kl, ku, batch) = (100usize, 2usize, 3usize, 6usize);
        let (a0, b0) = random_system(batch, n, kl, ku, 1);
        let mut runs = Vec::new();
        for engine in [EngineMode::PerLaunch, EngineMode::Resident] {
            let mut a = a0.clone();
            let mut b = b0.clone();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            // Pin layout and algorithm so both modes run the same plan;
            // the engine dimension must not change the numerics anyway.
            let opts = GbsvOptions {
                layout: MatrixLayout::ColumnMajor,
                allow_fused_gbsv: Some(false),
                engine: Some(engine),
                ..Default::default()
            };
            let rep = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &opts).unwrap();
            assert!(info.all_ok());
            runs.push((a, b, piv, rep));
        }
        let (cold, warm) = (&runs[0], &runs[1]);
        assert_eq!(
            cold.0.data(),
            warm.0.data(),
            "factors differ across engines"
        );
        assert_eq!(cold.1.data(), warm.1.data(), "solutions differ");
        assert_eq!(cold.2, warm.2, "pivots differ");
        assert_eq!(cold.3.algo, warm.3.algo);
        assert_eq!(cold.3.launches, warm.3.launches);
        // Every launch trades the cold overhead for the warm one.
        let delta = dev.launch_overhead_s - dev.warm_launch_overhead_s;
        let expect = cold.3.launches as f64 * delta;
        let got = cold.3.time.secs() - warm.3.time.secs();
        assert!(
            (got - expect).abs() < 1e-15,
            "expected {expect:.3e}s saved, got {got:.3e}s over {} launches",
            cold.3.launches
        );
    }

    #[test]
    fn interleaved_dgbsv_masks_singular_systems_natively() {
        let dev = DeviceSpec::h100_pcie();
        let (n, batch) = (100usize, 4usize);
        let (mut a, mut b) = random_system(batch, n, 1, 1, 1);
        {
            let mut m = a.matrix_mut(2);
            m.set(0, 0, 0.0);
            m.set(1, 0, 0.0);
        }
        let b_orig = b.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let opts = GbsvOptions {
            layout: MatrixLayout::Interleaved,
            ..Default::default()
        };
        let rep = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &opts).unwrap();
        assert_eq!(rep.algo, ChosenAlgo::Interleaved);
        assert_eq!(info.get(2), 1);
        assert_eq!(b.block(2), b_orig.block(2), "failed system's RHS preserved");
        assert_eq!(info.get(0), 0);
        assert_ne!(b.block(0), b_orig.block(0), "healthy systems are solved");
    }

    #[test]
    fn one_singular_lane_in_a_batch_of_64_is_isolated() {
        // Error-granularity regression: a single poisoned matrix must be
        // reported per-lane (info + report.singular) while its 63
        // batchmates factor and solve normally — not as one coarse batch
        // failure. Exercised across the §5.4 regimes: fused-GBSV (n=32),
        // separate factor+solve (n=100), and the forced interleaved path.
        let dev = DeviceSpec::h100_pcie();
        let batch = 64usize;
        let poisoned = 17usize;
        for (n, opts) in [
            (32usize, GbsvOptions::default()),
            (100, GbsvOptions::default()),
            (
                100,
                GbsvOptions {
                    layout: MatrixLayout::Interleaved,
                    ..Default::default()
                },
            ),
        ] {
            let (mut a, mut b) = random_system(batch, n, 2, 3, 1);
            {
                // Zero the entire first column of one matrix: the first
                // pivot search finds no nonzero, info = 1.
                let mut m = a.matrix_mut(poisoned);
                for i in 0..=2usize {
                    m.set(i, 0, 0.0);
                }
            }
            let orig_a = a.clone();
            let orig_b = b.clone();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            let rep = dgbsv_batch(&dev, &mut a, &mut piv, &mut b, &mut info, &opts)
                .expect("one singular lane must not fail the batch");
            assert_eq!(rep.singular, vec![poisoned], "n={n}");
            assert_eq!(rep.singular_lanes(), 1);
            assert!(!rep.all_lanes_ok());
            assert_eq!(info.failures(), vec![poisoned]);
            assert_eq!(info.get(poisoned), 1, "first zero pivot at column 1");
            assert_eq!(
                b.block(poisoned),
                orig_b.block(poisoned),
                "poisoned lane's RHS preserved (n={n})"
            );
            for id in (0..batch).filter(|&id| id != poisoned) {
                assert_eq!(info.get(id), 0);
                let x = &b.block(id)[..n];
                let berr = backward_error(orig_a.matrix(id), x, &orig_b.block(id)[..n]);
                assert!(berr < 1e-11, "n={n} lane {id}: berr {berr:.2e}");
            }
        }
    }

    #[test]
    fn factor_report_surfaces_singular_lanes() {
        let dev = DeviceSpec::h100_pcie();
        let (n, batch) = (48usize, 8usize);
        let (mut a, _) = random_system(batch, n, 2, 3, 1);
        for id in [2usize, 5] {
            let mut m = a.matrix_mut(id);
            for i in 0..=2usize {
                m.set(i, 0, 0.0);
            }
        }
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let rep = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &GbsvOptions::default()).unwrap();
        assert_eq!(rep.singular, vec![2, 5]);
        assert_eq!(info.failures(), vec![2, 5]);
    }

    #[test]
    fn singular_systems_leave_rhs_untouched_and_flagged() {
        let dev = DeviceSpec::h100_pcie();
        let (n, batch) = (100usize, 3usize); // > cutoff: separate factor+solve
        let (mut a, mut b) = random_system(batch, n, 1, 1, 1);
        {
            // Make system 1 singular: zero its entire first column.
            let mut m = a.matrix_mut(1);
            m.set(0, 0, 0.0);
            m.set(1, 0, 0.0);
        }
        let b_orig = b.clone();
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let _ = dgbsv_batch(
            &dev,
            &mut a,
            &mut piv,
            &mut b,
            &mut info,
            &GbsvOptions::default(),
        )
        .unwrap();
        assert_eq!(info.get(1), 1);
        assert_eq!(b.block(1), b_orig.block(1), "failed system's RHS preserved");
        assert_eq!(info.get(0), 0);
        assert_ne!(b.block(0), b_orig.block(0), "healthy systems are solved");
    }

    #[test]
    fn lanes_driver_matches_contiguous_gbtrs_bitwise() {
        let dev = DeviceSpec::h100_pcie();
        let batch = 6;
        let (n, kl, ku, nrhs) = (24usize, 2usize, 3usize, 2usize);
        let (mut a, b0) = random_system(batch, n, kl, ku, nrhs);
        let mut piv = PivotBatch::new(batch, n, n);
        let mut info = InfoArray::new(batch);
        let opts = GbsvOptions::default();
        let _ = dgbtrf_batch(&dev, &mut a, &mut piv, &mut info, &opts).unwrap();
        assert!(info.all_ok());
        let l = a.layout();

        // Contiguous reference solve.
        let mut b_ref = b0.clone();
        let ref_rep =
            dgbtrs_batch(&dev, Transpose::No, &l, a.data(), &piv, &mut b_ref, &opts).unwrap();

        // Same factors scattered into per-lane retained slices (the shape
        // a serve-layer factor cache hands back), re-gathered by the
        // lanes driver.
        let stride = a.matrix_stride();
        let lanes: Vec<(&[f64], &[i32])> = (0..batch)
            .map(|k| (&a.data()[k * stride..(k + 1) * stride], piv.pivots(k)))
            .collect();
        let mut b_lanes = b0.clone();
        let lane_rep =
            dgbtrs_batch_lanes(&dev, Transpose::No, &l, &lanes, &mut b_lanes, &opts).unwrap();

        assert_eq!(b_lanes.data(), b_ref.data(), "solutions must be bitwise");
        assert_eq!(lane_rep.algo, ref_rep.algo);
        assert_eq!(lane_rep.time, ref_rep.time);
        assert_eq!(lane_rep.launches, ref_rep.launches);
    }
}
