//! Reference batched band LU: the fork–join design of paper §5.1.
//!
//! "The CPU manages the factorization loop, and launches the corresponding
//! GPU kernels at each iteration." Each column step issues two batched
//! kernels operating directly on global memory:
//!
//! 1. *pivot kernel* — fill-in zeroing, `IAMAX`, pivot recording, and the
//!    right-looking row swap;
//! 2. *update kernel* — `SCAL` of the multipliers and the rank-1 trailing
//!    update.
//!
//! With `min(m, n)` columns this costs `2 * min(m, n)` kernel launches —
//! the launch overhead alone dwarfs the arithmetic for thin bands, which is
//! why the paper calls this design "slower than a multicore CPU solution in
//! most cases". It is numerically identical to `gbatch_core::gbtf2` and is
//! kept as the safety net of the dispatch layer (§5.4).

use gbatch_core::batch::{BandBatch, InfoArray, PivotBatch};
use gbatch_core::gbtf2::{
    pivot_search, rank_one_update, scal_step, set_fillin_prologue, set_fillin_step, swap_step,
    ColumnStepState,
};
use gbatch_core::layout::update_bound;
use gbatch_core::scalar::Scalar;
use gbatch_gpu_sim::{launch, DeviceSpec, LaunchConfig, LaunchError, ParallelPolicy};

/// Aggregate result of the multi-launch reference factorization.
#[derive(Debug, Clone)]
pub struct ReferenceReport {
    /// Modeled total time (sum over every launch, including overheads).
    pub time: gbatch_gpu_sim::SimTime,
    /// Number of kernel launches issued.
    pub launches: usize,
}

/// Batched reference factorization (numerics identical to `gbtf2`).
///
/// `parallel` selects the host-side scheduling of the per-matrix blocks
/// inside every launch; results are bitwise-identical for every policy.
pub fn gbtrf_batch_reference<S: Scalar>(
    dev: &DeviceSpec,
    a: &mut BandBatch<S>,
    piv: &mut PivotBatch,
    info: &mut InfoArray,
    parallel: ParallelPolicy,
) -> Result<ReferenceReport, LaunchError> {
    let l = a.layout();
    let batch = a.batch();
    assert_eq!(piv.batch(), batch);
    assert_eq!(info.len(), batch);
    let threads = ((l.kl + 1) as u32).div_ceil(dev.warp_size) * dev.warp_size;
    let cfg = LaunchConfig::new(threads, 0)
        .with_parallel(parallel)
        .with_label("gbtrf_reference")
        .with_precision(crate::flop_class::<S>());

    // Host-side prologue (LAPACK zeroes these columns before the loop; on
    // the GPU this is one extra batched kernel).
    struct Prob<'a, S> {
        ab: &'a mut [S],
        piv: &'a mut [i32],
        st: &'a mut ColumnStepState,
    }
    let mut states = vec![ColumnStepState::default(); batch];
    let mut time = gbatch_gpu_sim::SimTime::ZERO;
    let mut launches = 0usize;

    {
        let mut probs: Vec<&mut [S]> = a.chunks_mut().collect();
        let rep = launch(dev, &cfg, &mut probs, |ab, ctx| {
            set_fillin_prologue(&l, ab);
            let elems =
                l.kl.saturating_mul(l.kv().min(l.n).saturating_sub(l.ku + 1));
            ctx.gst(elems * S::BYTES);
            ctx.par_work(elems, 0);
        })?;
        time += rep.time;
        launches += 1;
    }

    let kmin = l.m.min(l.n);
    for j in 0..kmin {
        // Kernel 1: fill-in, IAMAX, pivot write, swap-to-the-right.
        {
            let mut probs: Vec<Prob<'_, S>> = a
                .chunks_mut()
                .zip(piv.chunks_mut())
                .zip(states.iter_mut())
                .map(|((ab, piv), st)| Prob { ab, piv, st })
                .collect();
            let rep = launch(dev, &cfg, &mut probs, |p, ctx| {
                set_fillin_step(&l, p.ab, j);
                let km = l.km(j);
                ctx.gld((km + 1) * S::BYTES);
                let jp = pivot_search(&l, p.ab, j);
                ctx.par_work(km + 1, 0);
                p.piv[j] = (j + jp) as i32;
                ctx.gst(4);
                let pv = p.ab[l.idx(l.kv() + jp, j)];
                if pv != S::ZERO {
                    p.st.ju = update_bound(p.st.ju.max(j), j, l.ku, jp, l.n);
                    if jp != 0 {
                        swap_step(&l, p.ab, j, jp, p.st.ju);
                        let cols = p.st.ju - j + 1;
                        ctx.gld(2 * cols * S::BYTES);
                        ctx.gst(2 * cols * S::BYTES);
                        ctx.par_work(cols, 0);
                    }
                } else if p.st.info == 0 {
                    p.st.info = (j + 1) as i32;
                }
            })?;
            time += rep.time;
            launches += 1;
        }
        // Kernel 2: SCAL + rank-1 update.
        {
            let mut probs: Vec<Prob<'_, S>> = a
                .chunks_mut()
                .zip(piv.chunks_mut())
                .zip(states.iter_mut())
                .map(|((ab, piv), st)| Prob { ab, piv, st })
                .collect();
            let rep = launch(dev, &cfg, &mut probs, |p, ctx| {
                let km = l.km(j);
                let pv = p.ab[l.idx(l.kv(), j)];
                // A zero pivot was recorded by kernel 1; skip like LAPACK.
                if pv == S::ZERO || km == 0 {
                    return;
                }
                scal_step(&l, p.ab, j);
                ctx.gld((km + 1) * S::BYTES);
                ctx.gst(km * S::BYTES);
                ctx.par_work(km, 1);
                let ju = p.st.ju;
                if ju > j {
                    rank_one_update(&l, p.ab, j, ju);
                    let cols = ju - j;
                    ctx.gld((cols * (km + 1) + km) * S::BYTES);
                    ctx.gst(cols * km * S::BYTES);
                    ctx.par_work(cols * km, 2);
                }
            })?;
            time += rep.time;
            launches += 1;
        }
    }
    for (id, st) in states.iter().enumerate() {
        info.set(id, st.info);
    }
    Ok(ReferenceReport { time, launches })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::gbtf2::gbtf2;

    fn random_batch(batch: usize, n: usize, kl: usize, ku: usize) -> BandBatch {
        let mut v = 0.47f64;
        BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
            for j in 0..n {
                let (s, e) = m.layout.col_rows(j);
                for i in s..e {
                    v = (v * 3.1 + 0.013 + id as f64 * 2e-4).fract();
                    m.set(i, j, v - 0.5);
                }
            }
        })
        .unwrap()
    }

    #[test]
    fn matches_sequential_reference_bitwise() {
        let dev = DeviceSpec::h100_pcie();
        for (n, kl, ku) in [(16, 2, 3), (24, 10, 7), (12, 0, 2), (12, 2, 0)] {
            let batch = 3;
            let mut a = random_batch(batch, n, kl, ku);
            let expected: Vec<(Vec<f64>, Vec<i32>, i32)> = (0..batch)
                .map(|id| {
                    let mut ab = a.matrix(id).data.to_vec();
                    let mut p = vec![0i32; n];
                    let info = gbtf2(&a.layout(), &mut ab, &mut p);
                    (ab, p, info)
                })
                .collect();
            let mut piv = PivotBatch::new(batch, n, n);
            let mut info = InfoArray::new(batch);
            gbtrf_batch_reference(&dev, &mut a, &mut piv, &mut info, ParallelPolicy::Serial)
                .unwrap();
            for id in 0..batch {
                assert_eq!(a.matrix(id).data, &expected[id].0[..], "factors n={n}");
                assert_eq!(piv.pivots(id), &expected[id].1[..]);
                assert_eq!(info.get(id), expected[id].2);
            }
        }
    }

    #[test]
    fn launch_count_is_two_per_column_plus_prologue() {
        let dev = DeviceSpec::h100_pcie();
        let n = 20;
        let mut a = random_batch(2, n, 1, 1);
        let mut piv = PivotBatch::new(2, n, n);
        let mut info = InfoArray::new(2);
        let rep = gbtrf_batch_reference(&dev, &mut a, &mut piv, &mut info, ParallelPolicy::Serial)
            .unwrap();
        assert_eq!(rep.launches, 2 * n + 1);
        // Launch overhead must dominate: at least launches * overhead.
        assert!(rep.time.secs() >= rep.launches as f64 * dev.launch_overhead_s);
    }

    #[test]
    fn reference_is_much_slower_than_fused() {
        let dev = DeviceSpec::h100_pcie();
        let n = 64;
        let batch = 500;
        let mut a1 = random_batch(batch, n, 2, 3);
        let mut a2 = a1.clone();
        let mut p1 = PivotBatch::new(batch, n, n);
        let mut p2 = PivotBatch::new(batch, n, n);
        let mut i1 = InfoArray::new(batch);
        let mut i2 = InfoArray::new(batch);
        let slow =
            gbtrf_batch_reference(&dev, &mut a1, &mut p1, &mut i1, ParallelPolicy::Serial).unwrap();
        let fast = crate::fused::gbtrf_batch_fused(
            &dev,
            &mut a2,
            &mut p2,
            &mut i2,
            crate::fused::FusedParams::auto(&dev, 2),
        )
        .unwrap();
        assert!(
            slow.time.secs() > 5.0 * fast.time.secs(),
            "fork-join {:.3} ms should dwarf fused {:.3} ms",
            slow.time.ms(),
            fast.time.ms()
        );
    }
}
