//! Batched dense matrix multiply — the compute-bound workload of the
//! paper's Figure 1 (batched `cublas-dgemm` vs. 16-stream execution).
//!
//! A simple shared-memory-tiled `C = A * B` kernel, one block per matrix.
//! Real numerics (delegated to `gbatch_core::dense::gemm` per block) with
//! tile-accurate traffic accounting: every element of `A` and `B` is read
//! `n / tile` times, the classic tiled-GEMM reuse factor.

use gbatch_core::dense;
use gbatch_gpu_sim::{launch, DeviceSpec, KernelCounters, LaunchConfig, LaunchError, LaunchReport};

/// Tile edge used by the simulated kernel.
pub const GEMM_TILE: usize = 16;

/// Shared bytes for two tiles.
pub fn gemm_smem_bytes() -> usize {
    2 * GEMM_TILE * GEMM_TILE * 8
}

/// Per-block (one matrix) counters of the tiled kernel, used both by the
/// batched launch and by the streamed simulation.
pub fn gemm_block_counters(n: usize, threads: u32) -> KernelCounters {
    let tiles = n.div_ceil(GEMM_TILE);
    let reads = 2 * n * n * tiles * 8; // A and B, re-read once per tile row/col
    let flops = 2 * n * n * n;
    KernelCounters {
        global_read: reads as u64,
        global_write: (n * n * 8) as u64,
        flops: flops as u64,
        smem_trips: tiles as u64,
        syncs: 2 * tiles as u64,
        cycles: (flops as f64 / threads as f64).max(1.0),
        smem_elems: (2 * n * n) as f64 / threads as f64,
        ..Default::default()
    }
}

/// Batched `C = A * B` over `batch` independent `n x n` triples stored
/// contiguously (column-major each).
pub fn gemm_batch(
    dev: &DeviceSpec,
    n: usize,
    a: &[f64],
    b: &[f64],
    c: &mut [f64],
    threads: u32,
) -> Result<LaunchReport, LaunchError> {
    let len = n * n;
    assert_eq!(a.len() % len, 0, "batch payload must be a multiple of n*n");
    let batch = a.len() / len;
    assert_eq!(b.len(), batch * len);
    assert_eq!(c.len(), batch * len);
    let cfg = LaunchConfig::new(threads, gemm_smem_bytes() as u32).with_label("gemm");
    let model = gemm_block_counters(n, threads);

    struct Prob<'a> {
        a: &'a [f64],
        b: &'a [f64],
        c: &'a mut [f64],
    }
    let mut probs: Vec<Prob<'_>> = c
        .chunks_mut(len)
        .enumerate()
        .map(|(id, cc)| Prob {
            a: &a[id * len..(id + 1) * len],
            b: &b[id * len..(id + 1) * len],
            c: cc,
        })
        .collect();

    launch(dev, &cfg, &mut probs, |p, ctx| {
        dense::gemm(n, n, n, 1.0, p.a, n, p.b, n, 0.0, p.c, n);
        ctx.gld(model.global_read as usize);
        ctx.gst(model.global_write as usize);
        ctx.par_work(n * n * n, 2);
        ctx.smem_work(2 * n * n, 0); // tile staging through shared memory
        for _ in 0..model.syncs {
            ctx.sync();
        }
        for _ in 0..model.smem_trips {
            ctx.smem_trip();
        }
    })
}

/// Achieved Gflop/s of a batched run (the paper's Figure 1 y-axis).
pub fn gemm_gflops(n: usize, batch: usize, time_s: f64) -> f64 {
    (2.0 * (n as f64).powi(3) * batch as f64) / time_s / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_gpu_sim::stream::simulate_streams;

    fn fill(len: usize, seed: f64) -> Vec<f64> {
        let mut v = seed;
        (0..len)
            .map(|_| {
                v = (v * 1.3 + 0.177).fract();
                v - 0.5
            })
            .collect()
    }

    #[test]
    fn computes_correct_products() {
        let dev = DeviceSpec::h100_pcie();
        let (n, batch) = (8, 3);
        let a = fill(n * n * batch, 0.1);
        let b = fill(n * n * batch, 0.2);
        let mut c = vec![0.0; n * n * batch];
        let _ = gemm_batch(&dev, n, &a, &b, &mut c, 64).unwrap();
        for id in 0..batch {
            let mut expect = vec![0.0; n * n];
            dense::gemm(
                n,
                n,
                n,
                1.0,
                &a[id * n * n..(id + 1) * n * n],
                n,
                &b[id * n * n..(id + 1) * n * n],
                n,
                0.0,
                &mut expect,
                n,
            );
            assert_eq!(&c[id * n * n..(id + 1) * n * n], &expect[..]);
        }
    }

    #[test]
    fn figure1_shape_batch_beats_streams_small_sizes() {
        // Paper Figure 1 (top): batch-500 dgemm vs 16 streams; the gap is
        // large for small n and shrinks as n grows.
        let dev = DeviceSpec::h100_pcie();
        let batch = 500;
        let mut gaps = Vec::new();
        for n in [32usize, 512] {
            let a = fill(n * n * batch.min(4), 0.3); // numerics only need a few
            let _ = a;
            let cfg = LaunchConfig::new(256, gemm_smem_bytes() as u32);
            let per_block = gemm_block_counters(n, 256);
            // Batched launch time from the analytic path (avoid the O(n^3)
            // host compute for n = 512 here).
            let occ = gbatch_gpu_sim::engine::validate(&dev, &cfg).unwrap();
            let batched = gbatch_gpu_sim::timing::estimate(&dev, &occ, batch, &per_block);
            let streamed = simulate_streams(&dev, &cfg, batch, 16, &per_block);
            gaps.push(streamed.secs() / batched.secs());
        }
        assert!(
            gaps[0] > 5.0,
            "small-size gap should be large, got {:.1}x",
            gaps[0]
        );
        assert!(gaps[1] < gaps[0], "gap must shrink with size: {gaps:?}");
    }

    #[test]
    fn gflops_helper() {
        let g = gemm_gflops(100, 500, 1e-3);
        assert!((g - 2.0 * 1e6 * 500.0 / 1e-3 / 1e9).abs() < 1e-6);
    }
}
