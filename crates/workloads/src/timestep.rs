//! Repeated-operator (timestepping) request traffic.
//!
//! The factor cache's target consumers solve *the same operator* against
//! many right-hand sides: an implicit timestepper's system matrix is
//! frozen across steps until the Jacobian is refreshed, an ADI sweep
//! re-applies one tridiagonal operator per plane, a SUNDIALS integrator
//! keeps `I − γJ` until the step size changes. This module generates that
//! stream: Poisson arrivals over a small **pool** of distinct operators,
//! each request drawing one operator (band payload reused byte-for-byte,
//! so its content fingerprint repeats) with a fresh random right-hand
//! side, plus a configurable **churn** probability that regenerates the
//! drawn operator first — modeling Jacobian refreshes that retire a
//! cached factorization.
//!
//! Everything is deterministic given the RNG seed, like
//! [`poisson_traffic`](crate::traffic::poisson_traffic).

use gbatch_core::ShapeKey;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

use crate::traffic::{request_payload, Arrival};

/// Timestepping-traffic configuration.
#[derive(Debug, Clone)]
pub struct TimestepConfig {
    /// Mean arrival rate, requests per second.
    pub rate_hz: f64,
    /// Deadline budget per request, seconds from arrival.
    pub deadline_s: f64,
    /// Geometry of every request (one operator family per stream; mix
    /// streams for multi-shape traffic).
    pub shape: ShapeKey,
    /// Number of distinct live operators in the pool.
    pub operators: usize,
    /// Per-request probability that the drawn operator is regenerated
    /// before use (a Jacobian refresh): its band bytes change, so its
    /// fingerprint — and any cached factorization — is retired. `0.0`
    /// freezes the pool forever.
    pub churn: f64,
}

impl TimestepConfig {
    /// An implicit-timestepper profile: a small pool of operators reused
    /// across many steps with occasional Jacobian refreshes. With `k`
    /// operators and churn `c`, a long stream's expected fingerprint
    /// repeat rate is about `1 - c` (first-touch misses wash out).
    #[must_use]
    pub fn timestepper(shape: ShapeKey, operators: usize, churn: f64, rate_hz: f64) -> Self {
        TimestepConfig {
            rate_hz,
            deadline_s: 0.05,
            shape,
            operators,
            churn,
        }
    }
}

/// Generate `n` Poisson arrivals over a reused operator pool.
/// Deterministic for a given seed: pool initialization, inter-arrival
/// gaps, operator draws, churn decisions, and right-hand sides all come
/// from `rng` in a fixed order.
///
/// # Panics
/// Panics when the pool is empty, the rate is not positive, or `churn`
/// is outside `[0, 1]`.
pub fn timestep_traffic(rng: &mut impl Rng, n: usize, cfg: &TimestepConfig) -> Vec<Arrival> {
    assert!(cfg.operators > 0, "operator pool must not be empty");
    assert!(cfg.rate_hz > 0.0, "arrival rate must be positive");
    assert!(
        (0.0..=1.0).contains(&cfg.churn),
        "churn is a probability in [0, 1]"
    );
    let uni = Uniform::new(0.0f64, 1.0);
    // Initialize the pool; right-hand sides drawn here are discarded —
    // each arrival gets a fresh one below.
    let mut pool: Vec<Vec<f64>> = (0..cfg.operators)
        .map(|_| request_payload(rng, &cfg.shape, false).0)
        .collect();
    let rhs_uni = Uniform::new_inclusive(-1.0f64, 1.0);
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for id in 0..n as u64 {
        let u = uni.sample(rng);
        t += -(1.0 - u).ln() / cfg.rate_hz;
        let slot = (uni.sample(rng) * cfg.operators as f64) as usize % cfg.operators;
        if uni.sample(rng) < cfg.churn {
            pool[slot] = request_payload(rng, &cfg.shape, false).0;
        }
        let rhs: Vec<f64> = (0..cfg.shape.rhs_len())
            .map(|_| rhs_uni.sample(rng))
            .collect();
        out.push(Arrival {
            id,
            at_s: t,
            shape: cfg.shape,
            deadline_s: t + cfg.deadline_s,
            ab: pool[slot].clone(),
            rhs,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> TimestepConfig {
        TimestepConfig::timestepper(ShapeKey::gbsv(16, 2, 3, 1), 8, 0.08, 1e4)
    }

    #[test]
    fn deterministic_under_seed() {
        let a = timestep_traffic(&mut StdRng::seed_from_u64(5), 300, &cfg());
        let b = timestep_traffic(&mut StdRng::seed_from_u64(5), 300, &cfg());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_s, y.at_s);
            assert_eq!(x.ab, y.ab);
            assert_eq!(x.rhs, y.rhs);
        }
    }

    #[test]
    fn operators_repeat_and_rhs_is_fresh() {
        let a = timestep_traffic(&mut StdRng::seed_from_u64(9), 2000, &cfg());
        let mut seen: BTreeMap<Vec<u64>, u64> = BTreeMap::new();
        let mut repeats = 0u64;
        for r in &a {
            let bits: Vec<u64> = r.ab.iter().map(|v| v.to_bits()).collect();
            let count = seen.entry(bits).or_insert(0);
            if *count > 0 {
                repeats += 1;
            }
            *count += 1;
        }
        // 8 operators, 8 % churn: the overwhelming majority of arrivals
        // reuse a previously-seen operator byte-for-byte.
        let rate = repeats as f64 / a.len() as f64;
        assert!(rate > 0.85, "operator repeat rate {rate:.3}");
        // Right-hand sides never repeat (fresh randomness per request).
        let distinct_rhs: std::collections::BTreeSet<Vec<u64>> = a
            .iter()
            .map(|r| r.rhs.iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(distinct_rhs.len(), a.len());
    }

    #[test]
    fn churn_retires_operators() {
        let mut frozen = cfg();
        frozen.churn = 0.0;
        let a = timestep_traffic(&mut StdRng::seed_from_u64(3), 500, &frozen);
        let distinct: std::collections::BTreeSet<Vec<u64>> = a
            .iter()
            .map(|r| r.ab.iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(distinct.len(), frozen.operators, "frozen pool never grows");

        let mut churny = cfg();
        churny.churn = 1.0;
        let b = timestep_traffic(&mut StdRng::seed_from_u64(3), 500, &churny);
        let distinct: std::collections::BTreeSet<Vec<u64>> = b
            .iter()
            .map(|r| r.ab.iter().map(|v| v.to_bits()).collect())
            .collect();
        assert_eq!(distinct.len(), 500, "full churn regenerates every draw");
    }

    #[test]
    fn operators_factor_cleanly() {
        let c = cfg();
        let a = timestep_traffic(&mut StdRng::seed_from_u64(7), 50, &c);
        let l = c.shape.layout().unwrap();
        for r in &a {
            let mut ab = r.ab.clone();
            let mut piv = vec![0i32; l.n];
            assert_eq!(gbatch_core::gbtf2::gbtf2(&l, &mut ab, &mut piv), 0);
        }
    }
}
