//! # gbatch-workloads
//!
//! Synthetic application workloads exercising the batched band solver,
//! matching the descriptions of the paper's Section 2:
//!
//! - [`random`] — uniform random band batches (the paper's benchmark
//!   inputs for every figure), with optional diagonal dominance and
//!   condition-number control;
//! - [`pele`] — PELE-suite chemical-kinetics-like batches: orders ≤ 150
//!   (many ≤ 50), ~90 % in-band density, a wide spread of condition
//!   numbers (§2.1);
//! - [`xgc`] — WDMApp/XGC-like batches: 512 systems of order 193 from a
//!   Q3-finite-element-like 1-D band stencil (§2.2);
//! - [`sundials`] — SUNDIALS ReactEval-like batches: BDF Newton matrices
//!   `I − γJ` with banded Jacobians of a 1-D multi-species
//!   reaction–diffusion method-of-lines system initialized from a
//!   sinusoidal temperature profile (§2.3);
//! - [`rhs`] — right-hand-side builders (manufactured solutions);
//! - [`traffic`] — open-loop Poisson request streams for the serving
//!   layer (weighted shape mix, per-request deadlines, optional singular
//!   poisoning);
//! - [`timestep`] — repeated-operator (timestepping) streams over a
//!   reused operator pool with configurable churn, the factor cache's
//!   target traffic.
//!
//! ```
//! use gbatch_workloads::{pele_batch, pele::PeleConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let batch = pele_batch(&mut rng, 32, &PeleConfig::default());
//! assert_eq!(batch.batch(), 32);
//! assert_eq!(batch.layout().n, 50); // paper: "many are sized 50 or less"
//! ```

// Generators mirror the numerical kernels' indexed-loop style.
#![allow(clippy::needless_range_loop)]

pub mod pele;
pub mod random;
pub mod rhs;
pub mod sundials;
pub mod timestep;
pub mod traffic;
pub mod xgc;

pub use pele::pele_batch;
pub use random::{random_band_batch, BandDistribution};
pub use rhs::{manufactured_rhs, rhs_for_solutions};
pub use sundials::{react_eval_batch, ReactEvalConfig};
pub use timestep::{timestep_traffic, TimestepConfig};
pub use traffic::{
    adversarial_traffic, poisson_traffic, AdversarialConfig, Arrival, PoisonStorm, ShapeMix,
    TrafficConfig,
};
pub use xgc::{xgc_batch, XgcConfig};
