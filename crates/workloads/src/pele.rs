//! PELE-suite chemical-kinetics-like batches (paper §2.1).
//!
//! The paper describes the PELE workload as: many small linear systems
//! ("typical matrix sizes ... do not exceed 150 but many are sized 50 or
//! less"), with structural sparsity around 90 % nonzeros inside the band
//! ("approximately 90% of entries are non-zero, with only a few entries
//! dipping down to around 30%"), and numerical properties spanning "a large
//! range of condition numbers". This generator reproduces those statistics:
//! entries inside the band are kept with probability `density`, the
//! diagonal of each matrix is scaled by a per-matrix factor drawn
//! log-uniformly to spread the conditioning, and a dominance floor keeps
//! the batch nonsingular (kinetics Jacobians are shifted by `1/dt` in
//! practice).

use gbatch_core::batch::BandBatch;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Configuration of the PELE-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeleConfig {
    /// System order (paper: <= 150, often <= 50).
    pub n: usize,
    /// Lower bandwidth.
    pub kl: usize,
    /// Upper bandwidth.
    pub ku: usize,
    /// Probability an in-band entry is structurally nonzero (paper: ~0.9,
    /// occasionally down to 0.3).
    pub density: f64,
    /// Conditioning spread: per-matrix diagonal scale drawn log-uniformly
    /// from `[10^-spread_decades, 1]`.
    pub spread_decades: f64,
}

impl Default for PeleConfig {
    fn default() -> Self {
        PeleConfig {
            n: 50,
            kl: 4,
            ku: 4,
            density: 0.9,
            spread_decades: 6.0,
        }
    }
}

/// Generate a PELE-like batch.
pub fn pele_batch(rng: &mut impl Rng, batch: usize, cfg: &PeleConfig) -> BandBatch {
    assert!((0.0..=1.0).contains(&cfg.density));
    let uni = Uniform::new_inclusive(-1.0f64, 1.0);
    let log_u = Uniform::new(-cfg.spread_decades, 0.0f64);
    BandBatch::from_fn(batch, cfg.n, cfg.n, cfg.kl, cfg.ku, |_, m| {
        let layout = m.layout;
        let diag_scale = 10f64.powf(log_u.sample(rng));
        let mut row_sums = vec![0.0f64; cfg.n];
        for j in 0..cfg.n {
            let (s, e) = layout.col_rows(j);
            for i in s..e {
                if i != j && rng.gen::<f64>() < cfg.density {
                    let v = uni.sample(rng);
                    m.set(i, j, v);
                    row_sums[i] += v.abs();
                }
            }
        }
        // Diagonal: dominance floor (the 1/dt shift of an implicit
        // integrator) times the conditioning scale.
        for j in 0..cfg.n {
            m.set(
                j,
                j,
                (row_sums[j] + 1.0) * diag_scale.max(1e-8) + diag_scale,
            );
        }
    })
    .expect("valid batch dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::batch::{InfoArray, PivotBatch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn density_is_respected() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = PeleConfig {
            n: 100,
            kl: 6,
            ku: 6,
            density: 0.9,
            spread_decades: 3.0,
        };
        let b = pele_batch(&mut rng, 10, &cfg);
        let l = b.layout();
        let mut total = 0usize;
        let mut nonzero = 0usize;
        for id in 0..10 {
            let m = b.matrix(id);
            for j in 0..cfg.n {
                let (s, e) = l.col_rows(j);
                for i in s..e {
                    if i != j {
                        total += 1;
                        if m.get(i, j) != 0.0 {
                            nonzero += 1;
                        }
                    }
                }
            }
        }
        let density = nonzero as f64 / total as f64;
        assert!(
            (density - 0.9).abs() < 0.03,
            "measured density {density:.3}"
        );
    }

    #[test]
    fn all_matrices_factor_without_singularity() {
        let mut rng = StdRng::seed_from_u64(12);
        let cfg = PeleConfig::default();
        let mut b = pele_batch(&mut rng, 50, &cfg);
        let l = b.layout();
        let mut piv = PivotBatch::new(50, cfg.n, cfg.n);
        let mut info = InfoArray::new(50);
        for (id, (ab, pv)) in b.chunks_mut().zip(piv.chunks_mut()).enumerate() {
            info.set(id, gbatch_core::gbtf2::gbtf2(&l, ab, pv));
        }
        assert!(info.all_ok(), "failures: {:?}", info.failures());
    }

    #[test]
    fn conditioning_spreads_across_batch() {
        let mut rng = StdRng::seed_from_u64(13);
        let cfg = PeleConfig {
            spread_decades: 6.0,
            ..PeleConfig::default()
        };
        let b = pele_batch(&mut rng, 64, &cfg);
        // Diagonal magnitudes across the batch must span > 3 decades.
        let mags: Vec<f64> = (0..64)
            .map(|id| {
                (0..cfg.n)
                    .map(|j| b.matrix(id).get(j, j).abs())
                    .sum::<f64>()
                    / cfg.n as f64
            })
            .collect();
        let (lo, hi) = mags
            .iter()
            .fold((f64::MAX, 0.0f64), |(l, h), &v| (l.min(v), h.max(v)));
        assert!(hi / lo > 1e3, "spread {:.1e}", hi / lo);
    }

    #[test]
    fn paper_sizes_hold() {
        let cfg = PeleConfig::default();
        assert!(cfg.n <= 150);
    }
}
