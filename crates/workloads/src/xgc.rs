//! WDMApp/XGC-like plasma batches (paper §2.2).
//!
//! The paper's XGC single-species solve: "a 2D domain with Q3 finite
//! elements and AMR ... results in 512 sparse linear systems in a single
//! batch, each having M=N=193 equations". We synthesize the banded
//! equivalent: a 1-D line of the Q3 discretization couples each node to its
//! three neighbours on each side, so the element matrices assemble into a
//! band with `kl = ku = 3` (per species); multi-species setups widen the
//! band by the species count. The operator is a mass-plus-stiffness form
//! (collision operator is elliptic in velocity space), generated here as a
//! symmetric-positive stencil with smooth coefficient variation plus a
//! species-coupling perturbation.

use gbatch_core::batch::BandBatch;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Configuration of the XGC-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XgcConfig {
    /// Equations per system (paper: 193).
    pub n: usize,
    /// Polynomial degree of the elements (paper: Q3), giving
    /// `kl = ku = degree * species`.
    pub degree: usize,
    /// Number of plasma species sharing the mesh (paper's milestone runs:
    /// up to 10).
    pub species: usize,
    /// Magnitude of the random coefficient variation (AMR-induced).
    pub variation: f64,
}

impl Default for XgcConfig {
    fn default() -> Self {
        XgcConfig {
            n: 193,
            degree: 3,
            species: 1,
            variation: 0.2,
        }
    }
}

impl XgcConfig {
    /// Bandwidth implied by the discretization.
    pub fn bandwidth(&self) -> usize {
        self.degree * self.species
    }

    /// The paper's standard single-species batch: 512 systems of order 193.
    pub fn paper_single_species() -> (usize, Self) {
        (512, XgcConfig::default())
    }
}

/// Generate an XGC-like batch.
pub fn xgc_batch(rng: &mut impl Rng, batch: usize, cfg: &XgcConfig) -> BandBatch {
    let k = cfg.bandwidth();
    let uni = Uniform::new_inclusive(-cfg.variation, cfg.variation);
    BandBatch::from_fn(batch, cfg.n, cfg.n, k, k, |id, m| {
        // Smooth per-system coefficient field (each AMR patch sees its own
        // plasma profile).
        let phase = id as f64 * 0.37;
        for j in 0..cfg.n {
            let coeff = 1.0 + 0.5 * ((j as f64 * 0.05 + phase).sin());
            // Mass + stiffness stencil: positive diagonal, negative decaying
            // off-diagonals — plus AMR-driven perturbation.
            let mut off_sum = 0.0;
            for d in 1..=k {
                let w = coeff / (d as f64 * d as f64) + uni.sample(rng) * 0.1;
                if j + d < cfg.n {
                    m.set(j + d, j, -w);
                }
                if j >= d {
                    m.set(j - d, j, -w + uni.sample(rng) * 0.05);
                }
                off_sum += 2.0 * w.abs();
            }
            m.set(j, j, off_sum + 2.0 * coeff + uni.sample(rng).abs());
        }
    })
    .expect("valid batch dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::batch::{InfoArray, PivotBatch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_configuration_dimensions() {
        let (batch, cfg) = XgcConfig::paper_single_species();
        assert_eq!(batch, 512);
        assert_eq!(cfg.n, 193);
        assert_eq!(cfg.bandwidth(), 3);
    }

    #[test]
    fn multi_species_widens_band() {
        let cfg = XgcConfig {
            species: 10,
            ..Default::default()
        };
        assert_eq!(cfg.bandwidth(), 30);
        let mut rng = StdRng::seed_from_u64(21);
        let b = xgc_batch(&mut rng, 2, &cfg);
        assert_eq!(b.layout().kl, 30);
        assert_eq!(b.layout().ku, 30);
    }

    #[test]
    fn systems_factor_and_solve() {
        let mut rng = StdRng::seed_from_u64(22);
        let cfg = XgcConfig::default();
        let mut b = xgc_batch(&mut rng, 16, &cfg);
        let orig = b.clone();
        let l = b.layout();
        let mut piv = PivotBatch::new(16, cfg.n, cfg.n);
        let mut info = InfoArray::new(16);
        for (id, (ab, pv)) in b.chunks_mut().zip(piv.chunks_mut()).enumerate() {
            info.set(id, gbatch_core::gbtf2::gbtf2(&l, ab, pv));
        }
        assert!(info.all_ok());
        // Solve one system and verify the residual.
        let x_true: Vec<f64> = (0..cfg.n).map(|i| (i as f64 * 0.11).cos()).collect();
        let mut rhs = vec![0.0; cfg.n];
        gbatch_core::blas2::gbmv(1.0, orig.matrix(3), &x_true, 0.0, &mut rhs);
        gbatch_core::gbtrs::gbtrs(
            gbatch_core::gbtrs::Transpose::No,
            &l,
            b.matrix(3).data,
            piv.pivots(3),
            &mut rhs,
            cfg.n,
            1,
        );
        for i in 0..cfg.n {
            assert!((rhs[i] - x_true[i]).abs() < 1e-8);
        }
    }

    #[test]
    fn stencil_decays_away_from_diagonal() {
        let mut rng = StdRng::seed_from_u64(23);
        let b = xgc_batch(&mut rng, 1, &XgcConfig::default());
        let m = b.matrix(0);
        let mid = 100;
        let d1 = m.get(mid + 1, mid).abs();
        let d3 = m.get(mid + 3, mid).abs();
        assert!(d1 > d3, "stencil should decay: |{d1}| vs |{d3}|");
        assert!(m.get(mid, mid) > 0.0, "positive diagonal");
    }
}
