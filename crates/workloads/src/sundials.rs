//! SUNDIALS ReactEval-like batches (paper §2.3).
//!
//! ReactEval advances the reaction equations of a Pele problem from "a
//! sinusoidal temperature profile". Each AMR cell contributes one small
//! stiff ODE system (species mass fractions + temperature); an implicit BDF
//! step solves `(I - gamma * J) dx = r` per cell, where `J` is the local
//! chemistry Jacobian. With a method-of-lines layout the per-cell Newton
//! matrices assemble into band matrices whose bandwidth is the species
//! count (species couple within a cell and to neighbouring cells through
//! transport). "Changing both the size of the ODE and the size of batch"
//! maps to `species`/`cells_per_system` and `batch`.

use gbatch_core::batch::BandBatch;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Configuration of the ReactEval-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReactEvalConfig {
    /// Chemical species per cell (sets the bandwidth).
    pub species: usize,
    /// Grid cells chained into one system (sets `n = species * cells`).
    pub cells_per_system: usize,
    /// BDF step scaling `gamma = h * beta` applied to the Jacobian.
    pub gamma: f64,
    /// Stiffness spread of the reaction rates, in decades.
    pub stiffness_decades: f64,
}

impl Default for ReactEvalConfig {
    fn default() -> Self {
        ReactEvalConfig {
            species: 9,
            cells_per_system: 8,
            gamma: 1e-2,
            stiffness_decades: 4.0,
        }
    }
}

impl ReactEvalConfig {
    /// System order `n = species * cells_per_system`.
    pub fn n(&self) -> usize {
        self.species * self.cells_per_system
    }

    /// Bandwidth: species couple within a cell and to one neighbour cell.
    pub fn bandwidth(&self) -> usize {
        self.species
    }
}

/// Generate a batch of ReactEval-like Newton matrices `I - gamma * J`,
/// with per-cell initial states taken from a sinusoidal temperature
/// profile across the batch (cell `id` sits at phase `2*pi*id/batch`).
pub fn react_eval_batch(rng: &mut impl Rng, batch: usize, cfg: &ReactEvalConfig) -> BandBatch {
    let n = cfg.n();
    let k = cfg.bandwidth();
    let uni = Uniform::new_inclusive(-1.0f64, 1.0);
    let decades = cfg.stiffness_decades.max(0.0);
    let log_u = (decades > 0.0).then(|| Uniform::new(-decades, 0.0f64));
    BandBatch::from_fn(batch, n, n, k, k, |id, m| {
        // Sinusoidal initial temperature: hotter cells react faster, i.e.
        // larger |J| entries (stiffer Newton systems).
        let temp = 1.0 + 0.5 * (2.0 * std::f64::consts::PI * id as f64 / batch.max(1) as f64).sin();
        for j in 0..n {
            let (s, e) = m.layout.col_rows(j);
            let mut off_sum = 0.0;
            for i in s..e {
                if i == j {
                    continue;
                }
                // Reaction rates span several decades (stiff chemistry).
                let stiff = log_u
                    .as_ref()
                    .map(|u| 10f64.powf(u.sample(rng)))
                    .unwrap_or(1.0);
                let rate = temp * stiff * uni.sample(rng);
                let v = -cfg.gamma * rate;
                m.set(i, j, v);
                off_sum += v.abs();
            }
            // I - gamma * J_jj with J_jj < 0 (species consumption): the
            // diagonal stays >= 1 and dominates for reasonable gamma.
            let stiff = log_u
                .as_ref()
                .map(|u| 10f64.powf(u.sample(rng)))
                .unwrap_or(1.0);
            let jjj = -temp * stiff * (1.0 + uni.sample(rng).abs());
            m.set(j, j, 1.0 - cfg.gamma * jjj + off_sum * 0.01);
        }
    })
    .expect("valid batch dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::batch::{InfoArray, PivotBatch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dimensions_follow_configuration() {
        let cfg = ReactEvalConfig {
            species: 5,
            cells_per_system: 4,
            ..Default::default()
        };
        assert_eq!(cfg.n(), 20);
        assert_eq!(cfg.bandwidth(), 5);
        let mut rng = StdRng::seed_from_u64(31);
        let b = react_eval_batch(&mut rng, 3, &cfg);
        assert_eq!(b.layout().n, 20);
        assert_eq!(b.layout().kl, 5);
    }

    #[test]
    fn newton_matrices_are_nonsingular() {
        let mut rng = StdRng::seed_from_u64(32);
        let cfg = ReactEvalConfig::default();
        let mut b = react_eval_batch(&mut rng, 64, &cfg);
        let l = b.layout();
        let mut piv = PivotBatch::new(64, cfg.n(), cfg.n());
        let mut info = InfoArray::new(64);
        for (id, (ab, pv)) in b.chunks_mut().zip(piv.chunks_mut()).enumerate() {
            info.set(id, gbatch_core::gbtf2::gbtf2(&l, ab, pv));
        }
        assert!(info.all_ok());
    }

    #[test]
    fn diagonal_close_to_identity_for_small_gamma() {
        let mut rng = StdRng::seed_from_u64(33);
        let cfg = ReactEvalConfig {
            gamma: 1e-6,
            ..Default::default()
        };
        let b = react_eval_batch(&mut rng, 4, &cfg);
        for j in 0..cfg.n() {
            let d = b.matrix(0).get(j, j);
            assert!((d - 1.0).abs() < 0.05, "diagonal {d} should be near 1");
        }
    }

    #[test]
    fn sinusoidal_profile_varies_across_batch() {
        let mut rng = StdRng::seed_from_u64(34);
        let cfg = ReactEvalConfig {
            gamma: 0.5,
            stiffness_decades: 0.0,
            ..Default::default()
        };
        let batch = 32;
        let b = react_eval_batch(&mut rng, batch, &cfg);
        // Off-diagonal magnitude should track the temperature profile:
        // compare a "hot" system (quarter phase) to a "cold" one.
        let mag = |id: usize| -> f64 {
            let m = b.matrix(id);
            let l = b.layout();
            let mut s = 0.0;
            for j in 0..cfg.n() {
                let (a, e) = l.col_rows(j);
                for i in a..e {
                    if i != j {
                        s += m.get(i, j).abs();
                    }
                }
            }
            s
        };
        let hot = mag(batch / 4); // sin = 1 -> temp 1.5
        let cold = mag(3 * batch / 4); // sin = -1 -> temp 0.5
        assert!(hot > 1.5 * cold, "hot {hot:.2} vs cold {cold:.2}");
    }
}
