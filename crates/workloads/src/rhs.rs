//! Right-hand-side builders.

use gbatch_core::batch::{BandBatch, RhsBatch};
use gbatch_core::blas2::gbmv;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Random RHS batch with entries uniform in `[-1, 1]`.
pub fn manufactured_rhs(rng: &mut impl Rng, batch: usize, n: usize, nrhs: usize) -> RhsBatch {
    let uni = Uniform::new_inclusive(-1.0f64, 1.0);
    let mut b = RhsBatch::zeros(batch, n, nrhs).expect("valid rhs dims");
    for v in b.data_mut() {
        *v = uni.sample(rng);
    }
    b
}

/// Build `B = A * X` for known solutions `X` (manufactured-solution
/// testing): returns `(x, b)` where both are `RhsBatch`-shaped and
/// `solving A x = b` must recover `x`.
pub fn rhs_for_solutions(
    a: &BandBatch,
    make_x: impl Fn(usize, usize, usize) -> f64,
    nrhs: usize,
) -> (RhsBatch, RhsBatch) {
    let l = a.layout();
    let n = l.n;
    let batch = a.batch();
    let x = RhsBatch::from_fn(batch, n, nrhs, make_x).expect("dims");
    let mut b = RhsBatch::zeros(batch, n, nrhs).expect("dims");
    for id in 0..batch {
        for c in 0..nrhs {
            let xs = &x.block(id)[c * n..(c + 1) * n];
            let mut y = vec![0.0; n];
            gbmv(1.0, a.matrix(id), xs, 0.0, &mut y);
            b.block_mut(id)[c * n..(c + 1) * n].copy_from_slice(&y);
        }
    }
    (x, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random::{random_band_batch, BandDistribution};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn manufactured_rhs_shape() {
        let mut rng = StdRng::seed_from_u64(41);
        let b = manufactured_rhs(&mut rng, 3, 10, 2);
        assert_eq!(b.batch(), 3);
        assert_eq!(b.n(), 10);
        assert_eq!(b.nrhs(), 2);
        assert!(b.data().iter().any(|&v| v != 0.0));
    }

    #[test]
    fn solutions_round_trip() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = random_band_batch(
            &mut rng,
            2,
            12,
            2,
            1,
            BandDistribution::DiagonallyDominant { margin: 1.0 },
        );
        let (x, b) = rhs_for_solutions(&a, |id, i, c| (id + i + c) as f64, 2);
        // Solve and compare.
        let l = a.layout();
        for id in 0..2 {
            let mut ab = a.matrix(id).data.to_vec();
            let mut piv = vec![0i32; 12];
            let mut sol = b.block(id).to_vec();
            assert_eq!(
                gbatch_core::gbsv::gbsv(&l, &mut ab, &mut piv, &mut sol, 12, 2),
                0
            );
            for (got, want) in sol.iter().zip(x.block(id)) {
                assert!((got - want).abs() < 1e-9);
            }
        }
    }
}
