//! Random band batches — the benchmark inputs of every figure in the paper
//! ("batches of 1,000 matrices in double precision").

use gbatch_core::batch::BandBatch;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// How the random entries are shaped.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandDistribution {
    /// Entries uniform in `[-1, 1]`; partial pivoting will interchange rows
    /// frequently (the paper's general case — the operation count "depends
    /// on the pivoting pattern").
    Uniform,
    /// Column-diagonally-dominant: diagonal set to the column's absolute
    /// off-diagonal sum plus the given margin. Column dominance is
    /// preserved by Gaussian elimination, so partial pivoting never
    /// interchanges — the best-case update width.
    DiagonallyDominant {
        /// Extra dominance margin added to each diagonal entry.
        margin: f64,
    },
    /// Uniform entries with the diagonal of matrix `i` scaled by
    /// `decay^i`, producing a batch whose condition numbers span several
    /// orders of magnitude (the PELE scenario's "large range of condition
    /// numbers").
    ConditionSpread {
        /// Per-matrix diagonal decay factor in `(0, 1]`.
        decay: f64,
    },
}

/// Generate a uniform batch of `batch` random `n x n` band matrices with
/// bandwidths `(kl, ku)` in factor storage.
pub fn random_band_batch(
    rng: &mut impl Rng,
    batch: usize,
    n: usize,
    kl: usize,
    ku: usize,
    dist: BandDistribution,
) -> BandBatch {
    let uni = Uniform::new_inclusive(-1.0f64, 1.0);
    BandBatch::from_fn(batch, n, n, kl, ku, |id, m| {
        let layout = m.layout;
        for j in 0..n {
            let (s, e) = layout.col_rows(j);
            for i in s..e {
                m.set(i, j, uni.sample(rng));
            }
        }
        match dist {
            BandDistribution::Uniform => {}
            BandDistribution::DiagonallyDominant { margin } => {
                for j in 0..n {
                    let (s, e) = layout.col_rows(j);
                    let sum: f64 = (s..e).filter(|&i| i != j).map(|i| m.get(i, j).abs()).sum();
                    m.set(j, j, sum + margin);
                }
            }
            BandDistribution::ConditionSpread { decay } => {
                let scale = decay.powi(id as i32);
                for j in 0..n {
                    let d = m.get(j, j);
                    m.set(j, j, (d.abs() + 0.5) * scale * d.signum().max(-1.0));
                }
            }
        }
    })
    .expect("valid batch dimensions")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gbatch_core::batch::{InfoArray, PivotBatch};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_fills_whole_band() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = random_band_batch(&mut rng, 3, 16, 2, 3, BandDistribution::Uniform);
        let m = b.matrix(1);
        let l = b.layout();
        let mut nonzero = 0;
        for j in 0..16 {
            let (s, e) = l.col_rows(j);
            for i in s..e {
                if m.get(i, j) != 0.0 {
                    nonzero += 1;
                }
            }
        }
        assert_eq!(nonzero, l.nnz(), "every band entry drawn");
    }

    #[test]
    fn dominant_matrices_never_pivot() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut b = random_band_batch(
            &mut rng,
            4,
            24,
            2,
            3,
            BandDistribution::DiagonallyDominant { margin: 0.1 },
        );
        let l = b.layout();
        let mut piv = PivotBatch::new(4, 24, 24);
        let mut info = InfoArray::new(4);
        for (id, (ab, pv)) in b.chunks_mut().zip(piv.chunks_mut()).enumerate() {
            let i = gbatch_core::gbtf2::gbtf2(&l, ab, pv);
            info.set(id, i);
        }
        assert!(info.all_ok());
        for id in 0..4 {
            for (j, &p) in piv.pivots(id).iter().enumerate() {
                assert_eq!(p as usize, j, "dominant matrix must not interchange");
            }
        }
    }

    #[test]
    fn condition_spread_scales_diagonals() {
        let mut rng = StdRng::seed_from_u64(9);
        let b = random_band_batch(
            &mut rng,
            6,
            10,
            1,
            1,
            BandDistribution::ConditionSpread { decay: 0.5 },
        );
        // Diagonal magnitude must decay across the batch on average.
        let avg = |id: usize| -> f64 {
            (0..10).map(|j| b.matrix(id).get(j, j).abs()).sum::<f64>() / 10.0
        };
        assert!(
            avg(0) > 4.0 * avg(5),
            "decay 0.5^5 = 1/32 expected: {} vs {}",
            avg(0),
            avg(5)
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        let a = random_band_batch(&mut r1, 2, 8, 1, 2, BandDistribution::Uniform);
        let b = random_band_batch(&mut r2, 2, 8, 1, 2, BandDistribution::Uniform);
        assert_eq!(a.data(), b.data());
    }
}
